module pperf

go 1.22
