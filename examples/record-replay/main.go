// Record and replay: capture a live tool session's analysis-plane event
// stream into an archive, then re-run the Performance Consultant offline
// against the recording — no simulated cluster, no daemons — and check it
// reproduces the live diagnosis exactly (see REPLAY.md).
//
//	go run ./examples/record-replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pperf"
)

func main() {
	dir, err := os.MkdirTemp("", "pperf-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	archive := filepath.Join(dir, "run.pparch")

	// Live run: the recorder rides along, capturing every sample batch,
	// resource update, metric enable, and Consultant read barrier.
	rec := pperf.NewSessionRecorder()
	live, err := pperf.RunSuiteProgram("small-messages", pperf.SuiteOptions{
		Impl:   pperf.LAM,
		Seed:   7,
		Record: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Save(archive); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(archive)
	fmt.Printf("recorded %d events (%d bytes) to %s\n\n", rec.EventCount(), fi.Size(), archive)

	// Offline replay: the Consultant re-runs against the archive through
	// the same DataSource interface the live front end implements.
	a, err := pperf.LoadSessionArchive(archive)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := pperf.ReplaySuiteRun(a)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replayed Performance Consultant report:")
	fmt.Print(replayed.PC.Render())

	if live.PC.Render() == replayed.PC.Render() {
		fmt.Println("\nlive and replayed reports are byte-identical")
	} else {
		fmt.Println("\nWARNING: replay diverged from the live run")
	}
}
