// Verify findings: the paper's own validation methodology (§5) as a
// workflow. It runs one program three ways — under the tool's Performance
// Consultant, under MPE/Jumpshot-style tracing, and with the histogram-export
// arithmetic — and cross-checks that the independent methods agree, exactly
// how the paper verified Paradyn's measurements against Jumpshot and manual
// calculations.
//
//	go run ./examples/verify-findings
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"pperf"
)

const (
	procs = 3
	iters = 500
	work  = 10 * time.Millisecond
)

// program is the intensive-server shape: rank 0 is busy, clients wait.
func program(r *pperf.Rank, _ []string) {
	c := r.World()
	if r.Rank() == 0 {
		for i := 0; i < iters*(r.Size()-1); i++ {
			req, _ := c.Recv(r, nil, 4, pperf.Byte, pperf.AnySource, 1)
			r.Call("server.c", "waste_time", func() { r.Compute(work) })
			c.Send(r, nil, 4, pperf.Byte, req.Source(), 2)
		}
		return
	}
	for i := 0; i < iters; i++ {
		r.Call("client.c", "Grecv_message", func() {
			c.Send(r, nil, 4, pperf.Byte, 0, 1)
			c.Recv(r, nil, 4, pperf.Byte, 0, 2)
		})
	}
}

func main() {
	// --- Method 1: the tool's automated diagnosis --------------------------
	s, err := pperf.NewSession(pperf.Options{Impl: pperf.LAM, Nodes: 3, CPUsPerNode: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	s.Register("app", program)
	sync := s.MustEnable("sync_wait_inclusive", pperf.WholeProgram())
	if err := s.Launch("app", procs, nil); err != nil {
		log.Fatal(err)
	}
	pc := pperf.NewConsultant(s, pperf.DefaultConsultantConfig())
	if err := pc.Start(); err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	runtime := s.Eng.Now().Seconds()

	fmt.Println("Method 1 — Performance Consultant:")
	fmt.Print(pc.Render())

	// --- Method 2: histogram export and manual arithmetic (§5) -------------
	clientFrac := 0.0
	nClients := 0
	for _, p := range sync.Procs() {
		if strings.Contains(p, "{0}") {
			continue
		}
		clientFrac += sync.ProcHistogram(p).Total() / runtime
		nClients++
	}
	clientFrac /= float64(nClients)
	fmt.Printf("\nMethod 2 — exported histogram arithmetic:\n")
	fmt.Printf("  clients' average sync fraction: %.2f of wall time\n", clientFrac)
	csv := s.FE.ExportCSV(sync)
	fmt.Printf("  (CSV export: %d data rows, as the paper's authors worked from)\n",
		strings.Count(csv, "\n")-1)

	// --- Method 3: the independent MPE/Jumpshot comparator ----------------
	s2, err := pperf.NewSession(pperf.Options{Impl: pperf.LAM, Nodes: 3, CPUsPerNode: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer s2.Close()
	tr := pperf.AttachTracer(s2)
	s2.Register("app", program)
	if err := s2.Launch("app", procs, nil); err != nil {
		log.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		log.Fatal(err)
	}
	avgRecv := tr.AvgConcurrency("MPI_Recv")
	fmt.Printf("\nMethod 3 — Jumpshot-style statistical preview:\n")
	fmt.Printf("  average processes in MPI_Recv: %.2f of %d\n", avgRecv, procs)
	fmt.Print(tr.StatisticsTable())

	// --- Cross-check -------------------------------------------------------
	fmt.Println("\nCross-check:")
	agree := pc.TopLevelTrue(pperf.HypSync) && clientFrac > 0.5 && avgRecv > float64(procs)-1.5
	fmt.Printf("  PC says sync-bound: %v; histograms say clients wait %.0f%%; "+
		"trace says ≈%.1f of %d procs in MPI_Recv\n",
		pc.TopLevelTrue(pperf.HypSync), clientFrac*100, avgRecv, procs)
	if agree {
		fmt.Println("  all three methods agree — the §5 verification result.")
	} else {
		fmt.Println("  DISAGREEMENT — investigate!")
	}
}
