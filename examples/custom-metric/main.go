// Custom metric: extend the tool with a brand-new metric written in MDL —
// the extensibility Paradyn's Metric Description Language provides and the
// paper uses to add the Table-1 RMA metrics. Here we define a metric the
// standard library does not have: the number of *rendezvous-sized* messages
// (larger than a threshold count), then measure a mixed workload with it.
//
//	go run ./examples/custom-metric
package main

import (
	"fmt"
	"log"

	"pperf"
)

// The user-supplied MDL source. It compiles on top of the standard library:
// new function sets, a new counter metric with byte math via MPI_Type_size,
// and constrained statements that honour the standard focus constraints.
const userMDL = `
resourceList my_send_fns is procedure {
    "MPI_Send", "PMPI_Send", "MPI_Isend", "PMPI_Isend"
} flavor { mpi };

metric big_sends {
    name "big_sends";
    units msgs;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in my_send_fns {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                if (bytes * count >= 65536) big_sends++;
            *)
        }
    }
}

metric small_sends {
    name "small_sends";
    units msgs;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in my_send_fns {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                if (bytes * count < 65536) small_sends++;
            *)
        }
    }
}
`

func main() {
	s, err := pperf.NewSession(pperf.Options{
		Impl: pperf.LAM, Nodes: 2, CPUsPerNode: 1,
		UserMDL: userMDL,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	s.Register("mixed", func(r *pperf.Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(r, nil, 128, pperf.Byte, 1, 0) // small
				if i%4 == 0 {
					c.Send(r, nil, 100_000, pperf.Byte, 1, 1) // rendezvous-sized
				}
			}
		} else {
			for i := 0; i < 100; i++ {
				c.Recv(r, nil, 128, pperf.Byte, 0, 0)
				if i%4 == 0 {
					c.Recv(r, nil, 100_000, pperf.Byte, 0, 1)
				}
			}
		}
	})

	big := s.MustEnable("big_sends", pperf.WholeProgram())
	small := s.MustEnable("small_sends", pperf.WholeProgram())

	if err := s.Launch("mixed", 2, nil); err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("big sends (≥64 KiB, rendezvous protocol): %.0f\n", big.Total())
	fmt.Printf("small sends (eager protocol):             %.0f\n", small.Total())
	fmt.Println("\nBoth metrics were defined at run time in MDL — no tool rebuild,")
	fmt.Println("exactly how the paper added the Table-1 RMA metrics to Paradyn.")
}
