// RMA tuning: the paper's motivating use case (§1 cites NASA's 39%
// improvement from replacing two-sided communication with MPI-2 one-sided
// transfers). This example runs the same halo exchange three ways —
// two-sided Sendrecv, RMA with fence synchronization, and RMA with
// Start/Complete–Post/Wait — and uses the Table-1 RMA metrics to compare
// synchronization overhead, the workflow the paper's tool enables.
//
//	go run ./examples/rma-tuning
package main

import (
	"fmt"
	"log"

	"pperf"
)

const (
	ranks    = 4
	iters    = 300
	haloSize = 4096
)

// variantResult collects one communication strategy's measurements.
type variantResult struct {
	name     string
	runtime  pperf.Time
	syncWait float64 // seconds across all ranks
	rmaOps   float64
}

func main() {
	results := []variantResult{
		run("two-sided (MPI_Sendrecv)", twoSided, "sync_wait_inclusive"),
		run("one-sided, fence sync", fenceHalo, "rma_sync_wait"),
		run("one-sided, post/start/complete/wait", pscwHalo, "at_rma_sync_wait"),
	}

	fmt.Println("Halo exchange strategies under the MPICH2 personality:")
	fmt.Printf("%-38s %12s %16s %10s\n", "variant", "runtime", "sync wait (s)", "RMA ops")
	for _, r := range results {
		fmt.Printf("%-38s %12v %16.3f %10.0f\n", r.name, r.runtime, r.syncWait, r.rmaOps)
	}
	fence, pscw := results[1], results[2]
	fmt.Printf("\nPSCW cuts synchronization waiting by %.0f%% relative to fence:\n",
		(1-pscw.syncWait/fence.syncWait)*100)
	fmt.Println("a fence acts as a barrier, so rank 0's extra boundary work stalls")
	fmt.Println("every rank; with post/start/complete/wait only its neighbours wait —")
	fmt.Println("the effect the paper's Table-1 RMA metrics exist to expose.")
}

// run executes one variant under the tool and samples its sync metric.
func run(name string, prog pperf.Program, syncMetric string) variantResult {
	s, err := pperf.NewSession(pperf.Options{Impl: pperf.MPICH2, Nodes: ranks, CPUsPerNode: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	s.Register("halo", prog)
	sync := s.MustEnable(syncMetric, pperf.WholeProgram())
	ops := s.MustEnable("rma_ops", pperf.WholeProgram())
	if err := s.Launch("halo", ranks, nil); err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return variantResult{
		name:     name,
		runtime:  s.Eng.Now(),
		syncWait: sync.Total(),
		rmaOps:   ops.Total(),
	}
}

// compute models the per-iteration interior update: rank 0 owns the domain
// boundary and persistently does extra work, the usual cause of halo-exchange
// waiting.
func compute(r *pperf.Rank, i int) {
	d := pperf.Duration(2_000_000) // 2ms
	if r.Rank() == 0 {
		d += 1_500_000
	}
	r.Compute(d)
}

// twoSided exchanges halos with Sendrecv.
func twoSided(r *pperf.Rank, _ []string) {
	c := r.World()
	n := r.Size()
	up, down := (r.Rank()+1)%n, (r.Rank()-1+n)%n
	for i := 0; i < iters; i++ {
		compute(r, i)
		c.Sendrecv(r, nil, haloSize, pperf.Byte, up, 0, nil, haloSize, pperf.Byte, down, 0)
		c.Sendrecv(r, nil, haloSize, pperf.Byte, down, 1, nil, haloSize, pperf.Byte, up, 1)
	}
}

// fenceHalo uses MPI_Put between fences: simple, but every fence acts like a
// barrier across all ranks.
func fenceHalo(r *pperf.Rank, _ []string) {
	c := r.World()
	n := r.Size()
	win, err := c.WinCreate(r, 2*haloSize, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	win.SetName("haloWin")
	up, down := (r.Rank()+1)%n, (r.Rank()-1+n)%n
	for i := 0; i < iters; i++ {
		compute(r, i)
		win.Fence(0)
		win.Put(nil, haloSize, pperf.Byte, up, 0, haloSize, pperf.Byte)
		win.Put(nil, haloSize, pperf.Byte, down, haloSize, haloSize, pperf.Byte)
		win.Fence(0)
	}
	win.Free()
}

// pscwHalo uses Start/Complete–Post/Wait: only neighbours synchronize.
func pscwHalo(r *pperf.Rank, _ []string) {
	c := r.World()
	n := r.Size()
	win, err := c.WinCreate(r, 2*haloSize, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	win.SetName("haloWinPSCW")
	up, down := (r.Rank()+1)%n, (r.Rank()-1+n)%n
	for i := 0; i < iters; i++ {
		compute(r, i)
		win.Post([]int{up, down}, 0)
		win.Start([]int{up, down}, 0)
		win.Put(nil, haloSize, pperf.Byte, up, 0, haloSize, pperf.Byte)
		win.Put(nil, haloSize, pperf.Byte, down, haloSize, haloSize, pperf.Byte)
		win.Complete()
		win.WaitEpoch()
	}
	win.Free()
}
