// Quickstart: write a small MPI program, run it under the performance tool,
// and let the Performance Consultant tell you where the time goes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pperf"
)

func main() {
	// A simulated 3-node cluster with two CPUs per node, running the
	// LAM/MPI personality.
	s, err := pperf.NewSession(pperf.Options{Impl: pperf.LAM, Nodes: 3, CPUsPerNode: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// The application: rank 0 is a slow server; the other ranks wait on it.
	s.Register("app", func(r *pperf.Rank, _ []string) {
		world := r.World()
		const iters = 1200
		if r.Rank() == 0 {
			for i := 0; i < iters*(r.Size()-1); i++ {
				req, _ := world.Recv(r, nil, 1, pperf.Int, pperf.AnySource, 1)
				r.Call("server.c", "handle_request", func() {
					r.Compute(3 * time.Millisecond) // the planted bottleneck
				})
				world.Send(r, nil, 1, pperf.Int, req.Source(), 2)
			}
			return
		}
		for i := 0; i < iters; i++ {
			r.Call("client.c", "do_request", func() {
				world.Send(r, nil, 1, pperf.Int, 0, 1)
				world.Recv(r, nil, 1, pperf.Int, 0, 2)
			})
		}
	})

	// Ask the tool to count message bytes while the program runs.
	bytes := s.MustEnable("msg_bytes_sent", pperf.WholeProgram())

	if err := s.Launch("app", 4, nil); err != nil {
		log.Fatal(err)
	}

	// Attach the Performance Consultant: it inserts instrumentation
	// dynamically, tests hypotheses, and drills into whatever is true.
	pc := pperf.NewConsultant(s, pperf.DefaultConsultantConfig())
	if err := pc.Start(); err != nil {
		log.Fatal(err)
	}

	if err := s.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The Performance Consultant's findings:")
	fmt.Print(pc.Render())
	fmt.Printf("\nTotal message bytes sent: %.0f\n", bytes.Total())
	fmt.Println("\nResource hierarchy discovered at run time:")
	fmt.Print(s.FE.Hierarchy().Render())
}
