// Spawn monitor: watch the tool's resource hierarchy grow across an
// MPI_Comm_spawn, and compare the two spawn-support methods the paper
// implements (§4.2.2): intercept (wrap the spawn via PMPI — simple, but it
// inflates the measured cost of the spawn operation) and attach (discover
// the children afterwards — cheaper, but instrumentation starts late).
//
//	go run ./examples/spawn-monitor
package main

import (
	"fmt"
	"log"
	"time"

	"pperf"
	"pperf/internal/daemon"
)

func main() {
	interceptCost := measure(daemon.SpawnIntercept, true)
	attachCost := measure(daemon.SpawnAttach, false)

	fmt.Println("\nMeasured MPI_Comm_spawn duration by tool support method:")
	fmt.Printf("  intercept: %v (daemon startup rides on the spawn)\n", interceptCost)
	fmt.Printf("  attach:    %v (tool attaches after the fact)\n", attachCost)
	fmt.Printf("  intercept inflation: %v — the §4.2.2 trade-off\n", interceptCost-attachCost)
}

func measure(method daemon.SpawnMethod, show bool) pperf.Duration {
	dcfg := daemon.DefaultConfig()
	dcfg.Spawn = method
	s, err := pperf.NewSession(pperf.Options{
		Impl: pperf.LAM, Nodes: 4, CPUsPerNode: 1,
		Daemon: &dcfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	var spawnDur pperf.Duration
	s.Register("child", func(r *pperf.Rank, _ []string) {
		parent := r.GetParent()
		parent.Send(r, nil, 8, pperf.Byte, 0, 1)
	})
	s.Register("parent", func(r *pperf.Rank, _ []string) {
		t0 := r.Now()
		inter, err := r.World().Spawn(r, "child", nil, 3, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		spawnDur = r.Now().Sub(t0)
		inter.SetName(r, "Parent&Child")
		for i := 0; i < 3; i++ {
			inter.Recv(r, nil, 8, pperf.Byte, pperf.AnySource, 1)
		}
		r.Compute(100 * time.Millisecond)
	})

	// Count the spawn with the spawn_ops metric while it runs.
	spawnOps := s.MustEnable("spawn_ops", pperf.WholeProgram())

	if err := s.Launch("parent", 1, nil); err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}

	if show {
		fmt.Println("Resource hierarchy after the spawn (note the child{N} processes")
		fmt.Println("and the named intercommunicator):")
		fmt.Print(s.FE.Hierarchy().Render())
		fmt.Printf("spawn operations observed: %.0f\n", spawnOps.Total())
	}
	return spawnDur
}
