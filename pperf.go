// Package pperf is the public facade of the reproduction of "Performance
// Tool Support for MPI-2 on Linux" (Mohror & Karavanic, 2004): a
// dynamic-instrumentation performance tool (in the mould of Paradyn 4.0,
// extended with the paper's MPI-2 support) running over a deterministic
// simulated Linux cluster with LAM/MPI, MPICH and MPICH2 implementation
// personalities.
//
// The typical flow is:
//
//	s, _ := pperf.NewSession(pperf.Options{Impl: pperf.LAM})
//	s.Register("app", func(r *pperf.Rank, _ []string) { ... })
//	s.Launch("app", 4, nil)
//	pc := pperf.NewConsultant(s, pperf.DefaultConsultantConfig())
//	pc.Start()
//	s.Run()
//	fmt.Print(pc.Render())
//
// Deeper layers are exposed as aliases so library users get full
// functionality without importing internal packages.
package pperf

import (
	"pperf/internal/cluster"
	"pperf/internal/consultant"
	"pperf/internal/core"
	"pperf/internal/daemon"
	"pperf/internal/frontend"
	"pperf/internal/gprofsim"
	"pperf/internal/mdl"
	"pperf/internal/metric"
	"pperf/internal/mpe"
	"pperf/internal/mpi"
	"pperf/internal/perfdb"
	"pperf/internal/pperfmark"
	"pperf/internal/presta"
	"pperf/internal/resource"
	"pperf/internal/session"
	"pperf/internal/sim"
	"pperf/internal/stats"
)

// Core tool types.
type (
	// Session is a live tool instance: simulated cluster, MPI world,
	// daemons, front end.
	Session = core.Session
	// Options configure a Session.
	Options = core.Options
	// Consultant is the Performance Consultant bottleneck search.
	Consultant = consultant.Consultant
	// ConsultantConfig tunes its thresholds and pacing.
	ConsultantConfig = consultant.Config
	// DaemonConfig tunes the per-node daemons.
	DaemonConfig = daemon.Config
	// Series is one collected metric-focus data stream.
	Series = frontend.Series
	// Focus selects what part of the program a metric measures.
	Focus = resource.Focus
	// Histogram is the fixed-memory folding histogram.
	Histogram = metric.Histogram
)

// Simulated MPI types.
type (
	// Rank is a simulated MPI process handle (passed to Programs).
	Rank = mpi.Rank
	// Comm is a communicator.
	Comm = mpi.Comm
	// Win is an RMA window handle.
	Win = mpi.Win
	// Program is an MPI application body.
	Program = mpi.Program
	// Datatype is an MPI basic datatype.
	Datatype = mpi.Datatype
	// Info carries MPI-2 Info hints.
	Info = mpi.Info
)

// Implementation personalities.
const (
	LAM       = mpi.LAM
	MPICH     = mpi.MPICH
	MPICH2    = mpi.MPICH2
	Reference = mpi.Reference
)

// Datatypes and wildcards.
const (
	Byte      = mpi.Byte
	Char      = mpi.Char
	Int       = mpi.Int
	Float     = mpi.Float
	Double    = mpi.Double
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Hypothesis names for Consultant queries.
const (
	HypSync = consultant.HypSync
	HypIO   = consultant.HypIO
	HypCPU  = consultant.HypCPU
)

// Virtual time.
type (
	Time = sim.Time
	// Duration is virtual time; it equals time.Duration.
	Duration = sim.Duration
)

// NewSession builds a tool session (cluster, world, daemons, front end).
func NewSession(opts Options) (*Session, error) { return core.NewSession(opts) }

// NewConsultant attaches a Performance Consultant to a session.
func NewConsultant(s *Session, cfg ConsultantConfig) *Consultant {
	return consultant.New(s.FE, s.Eng, cfg)
}

// DefaultConsultantConfig returns the paper-faithful thresholds (sync 0.2,
// I/O 0.15, CPU 0.3).
func DefaultConsultantConfig() ConsultantConfig { return consultant.DefaultConfig() }

// WholeProgram is the unrestricted focus.
func WholeProgram() Focus { return resource.WholeProgram() }

// CompileMDL compiles user Metric Description Language source merged over
// the standard library.
func CompileMDL(src string) (*mdl.Library, error) { return mdl.NewLibraryWithStd(src) }

// Suite re-exports PPerfMark.
type (
	SuiteParams  = pperfmark.Params
	SuiteOptions = pperfmark.RunOptions
	SuiteResult  = pperfmark.Result
	SuiteVerdict = pperfmark.Verdict
)

// SuitePrograms lists the PPerfMark programs.
func SuitePrograms() []string { return pperfmark.Names() }

// RunSuiteProgram runs one PPerfMark program under the full tool.
func RunSuiteProgram(name string, opt SuiteOptions) (*SuiteResult, error) {
	return pperfmark.Run(name, opt)
}

// JudgeSuiteRun evaluates a suite run against the paper's expectations.
func JudgeSuiteRun(res *SuiteResult) *SuiteVerdict { return pperfmark.Judge(res) }

// Session recording and offline replay (see REPLAY.md).
type (
	// SessionRecorder captures the analysis-plane event stream of a live
	// run into a replayable archive (RunOptions.Record / Options.Recorder).
	SessionRecorder = session.Recorder
	// SessionArchive is a loaded session recording.
	SessionArchive = session.Archive
	// ReplaySource serves a recorded session through the DataSource
	// interface the Consultant consumes.
	ReplaySource = session.ReplaySource
)

// NewSessionRecorder returns an empty session recorder.
func NewSessionRecorder() *SessionRecorder { return session.NewRecorder() }

// LoadSessionArchive reads a recorded session archive from disk.
func LoadSessionArchive(path string) (*SessionArchive, error) { return session.Load(path) }

// ReplaySuiteRun re-runs the analysis plane of a recorded suite run
// offline, reproducing the live findings without the simulated cluster.
func ReplaySuiteRun(a *SessionArchive) (*SuiteResult, error) { return pperfmark.Replay(a) }

// ReplayOptions carry what-if threshold overrides for offline replay.
type ReplayOptions = pperfmark.ReplayOptions

// ReplaySuiteRunWith replays with what-if Consultant-threshold overrides
// applied over the recorded configuration.
func ReplaySuiteRunWith(a *SessionArchive, o ReplayOptions) (*SuiteResult, error) {
	return pperfmark.ReplayWith(a, o)
}

// The multi-run experiment store (see PERFDB.md).
type (
	// ExperimentStore is a directory of compacted run archives plus a
	// metadata index, with cross-run regression diagnosis.
	ExperimentStore = perfdb.Store
	// StoredRun is one stored run's index entry.
	StoredRun = perfdb.RunMeta
	// RunView is a stored run materialized for querying.
	RunView = perfdb.RunView
	// RunDiff is the ranked comparison of two stored runs.
	RunDiff = perfdb.DiffReport
	// StreamRecorder records a live session straight to a chunked
	// compacted archive in bounded memory.
	StreamRecorder = perfdb.StreamRecorder
)

// OpenExperimentStore opens (creating if needed) an experiment store.
func OpenExperimentStore(dir string) (*ExperimentStore, error) { return perfdb.Open(dir) }

// NewStreamRecorder opens a streaming session recorder writing to path.
func NewStreamRecorder(path string) (*StreamRecorder, error) { return perfdb.NewStreamRecorder(path) }

// LoadAnyArchive reads a session archive in either format: the flat v1
// .pparch or the chunked compacted form.
func LoadAnyArchive(path string) (*SessionArchive, error) { return perfdb.LoadAny(path) }

// DiffRuns compares two stored runs (base first) pair-by-pair with the
// paper's paired-difference significance test.
func DiffRuns(base, neu *RunView) *RunDiff { return perfdb.Diff(base, neu) }

// Comparators.
type (
	// Tracer is the MPE/Jumpshot-style trace comparator.
	Tracer = mpe.Tracer
	// FlatProfile is the gprof-style comparator.
	FlatProfile = gprofsim.Profile
	// PrestaConfig configures the Presta rma stress benchmark.
	PrestaConfig = presta.Config
	// PrestaComparison is a Presta-vs-tool measurement comparison.
	PrestaComparison = presta.Comparison
	// PairedResult is a paired-difference significance test outcome.
	PairedResult = stats.PairedResult
)

// AttachTracer installs MPE-style tracing on a session's world (before
// Launch).
func AttachTracer(s *Session) *Tracer { return mpe.Attach(s.World) }

// AttachProfiler installs gprof-style profiling on a session's world.
func AttachProfiler(s *Session) *gprofsim.Profiler { return gprofsim.Attach(s.World) }

// ComparePresta runs the Presta rma benchmark repeatedly under the tool and
// applies the paper's significance test.
func ComparePresta(impl mpi.ImplKind, cfg PrestaConfig, mode presta.Mode, runs int) (*PrestaComparison, error) {
	return presta.Compare(impl, cfg, mode, runs)
}

// ParseLAMMpirun exposes the LAM process-placement notation parser (§4.1.2).
func ParseLAMMpirun(spec *cluster.Spec, argv []string) (*cluster.LaunchPlan, error) {
	return cluster.ParseLAMMpirun(spec, argv)
}
