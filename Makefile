# Build and verification entry points. `make verify` is the full CI gate:
# tier-1 (build + tests), static analysis, and race-enabled tests of the
# packages with real concurrency (the TCP transport and the daemon/fault
# machinery it carries).

GO ?= go

.PHONY: build test vet race verify bench replay-golden chaos fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/frontend ./internal/daemon ./internal/faults ./internal/trace ./internal/core ./internal/session

verify: build vet test race

# Opt into the chaos sweep as part of verify with `make verify CHAOS=1`.
ifeq ($(CHAOS),1)
verify: chaos
endif

# chaos runs ~50 seeded random fault plans end-to-end under the race
# detector. Invariants per plan: the run terminates, coverage stays within
# [0,1], nothing panics, and an identical-seed re-run is byte-identical.
# Each failing case logs its plan text, which reproduces it exactly.
chaos:
	CHAOS=1 $(GO) test -race -run TestChaosPlans ./internal/faults

# fuzz hammers the fault-plan parser: no input may panic it, and every
# accepted plan must round-trip through its canonical String form.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/faults

bench:
	$(GO) test -bench=. -benchmem

# replay-golden records a seeded run with the CLI, replays the archive, and
# fails on any difference between the live and replayed reports (the
# "Trace written to" line names different files, so the report is compared
# with the trace paths normalized).
replay-golden:
	@tmp=$$(mktemp -d) && \
	trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/pperf -prog small-messages -seed 7 -hierarchy -critical-path \
		-trace "$$tmp/live.json" -record "$$tmp/run.pparch" 2>/dev/null \
		| sed "s#$$tmp/live.json#TRACE#" > "$$tmp/live.txt" && \
	$(GO) run ./cmd/pperf -replay "$$tmp/run.pparch" -hierarchy -critical-path \
		-trace "$$tmp/replay.json" 2>/dev/null \
		| sed "s#$$tmp/replay.json#TRACE#" > "$$tmp/replay.txt" && \
	diff "$$tmp/live.txt" "$$tmp/replay.txt" && \
	cmp "$$tmp/live.json" "$$tmp/replay.json" && \
	echo "replay-golden: live and replayed reports and trace exports are identical"
