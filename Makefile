# Build and verification entry points. `make verify` is the full CI gate:
# tier-1 (build + tests), static analysis, and race-enabled tests of the
# packages with real concurrency (the TCP transport and the daemon/fault
# machinery it carries).

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/frontend ./internal/daemon ./internal/faults ./internal/trace ./internal/core

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem
