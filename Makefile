# Build and verification entry points. `make verify` is the full CI gate:
# tier-1 (build + tests), static analysis, and race-enabled tests of the
# packages with real concurrency (the TCP transport and the daemon/fault
# machinery it carries).

GO ?= go

.PHONY: build test vet race verify bench replay-golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/frontend ./internal/daemon ./internal/faults ./internal/trace ./internal/core ./internal/session

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem

# replay-golden records a seeded run with the CLI, replays the archive, and
# fails on any difference between the live and replayed reports (the
# "Trace written to" line names different files, so the report is compared
# with the trace paths normalized).
replay-golden:
	@tmp=$$(mktemp -d) && \
	trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/pperf -prog small-messages -seed 7 -hierarchy -critical-path \
		-trace "$$tmp/live.json" -record "$$tmp/run.pparch" 2>/dev/null \
		| sed "s#$$tmp/live.json#TRACE#" > "$$tmp/live.txt" && \
	$(GO) run ./cmd/pperf -replay "$$tmp/run.pparch" -hierarchy -critical-path \
		-trace "$$tmp/replay.json" 2>/dev/null \
		| sed "s#$$tmp/replay.json#TRACE#" > "$$tmp/replay.txt" && \
	diff "$$tmp/live.txt" "$$tmp/replay.txt" && \
	cmp "$$tmp/live.json" "$$tmp/replay.json" && \
	echo "replay-golden: live and replayed reports and trace exports are identical"
