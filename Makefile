# Build and verification entry points. `make verify` is the full CI gate:
# tier-1 (build + tests), static analysis, and race-enabled tests of the
# packages with real concurrency (the TCP transport and the daemon/fault
# machinery it carries).

GO ?= go

.PHONY: build test vet race verify bench replay-golden perfdb-golden sync-golden wire-golden trend-golden chaos fuzz fuzz-perfdb fuzz-wire

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/wire ./internal/frontend ./internal/daemon ./internal/faults ./internal/trace ./internal/core ./internal/session ./internal/perfdb

verify: build vet test race sync-golden wire-golden trend-golden

# Opt into the chaos sweep as part of verify with `make verify CHAOS=1`.
ifeq ($(CHAOS),1)
verify: chaos
endif

# chaos runs ~50 seeded random fault plans end-to-end under the race
# detector. Invariants per plan: the run terminates, coverage stays within
# [0,1], nothing panics, and an identical-seed re-run is byte-identical.
# Each failing case logs its plan text, which reproduces it exactly.
chaos:
	CHAOS=1 $(GO) test -race -run TestChaosPlans ./internal/faults

# fuzz hammers the fault-plan parser: no input may panic it, and every
# accepted plan must round-trip through its canonical String form.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/faults

# wire-golden pins the shared reliability plane's observable behaviour: the
# exact backoff schedules every channel draws, and the cross-stack
# equivalence of ctl/bulk/sync resilience accounting under one fault plan.
wire-golden:
	$(GO) test -count=1 -run 'TestBackoffPinnedSchedules|TestCrossStackFaultPlanEquivalence' ./internal/wire
	@echo "wire-golden: backoff schedules pinned; ctl/bulk/sync accounting equivalent"

# fuzz-wire feeds arbitrary byte streams through the server-side frame read
# path: garbage, truncations and bit flips must error, never panic or hang.
fuzz-wire:
	$(GO) test -fuzz=FuzzWireFrame -fuzztime=30s ./internal/wire

# fuzz-perfdb holds the chunked-archive and sample-delta decoders total:
# arbitrary bytes must produce an archive or an error, never a panic.
fuzz-perfdb:
	$(GO) test -fuzz=FuzzChunkDecoder -fuzztime=30s ./internal/perfdb
	$(GO) test -fuzz=FuzzUnpackSamples -fuzztime=30s ./internal/perfdb

bench:
	$(GO) test -bench=. -benchmem

# replay-golden records a seeded run with the CLI, replays the archive, and
# fails on any difference between the live and replayed reports (the
# "Trace written to" line names different files, so the report is compared
# with the trace paths normalized).
replay-golden:
	@tmp=$$(mktemp -d) && \
	trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/pperf -prog small-messages -seed 7 -hierarchy -critical-path \
		-trace "$$tmp/live.json" -record "$$tmp/run.pparch" 2>/dev/null \
		| sed "s#$$tmp/live.json#TRACE#" > "$$tmp/live.txt" && \
	$(GO) run ./cmd/pperf -replay "$$tmp/run.pparch" -hierarchy -critical-path \
		-trace "$$tmp/replay.json" 2>/dev/null \
		| sed "s#$$tmp/replay.json#TRACE#" > "$$tmp/replay.txt" && \
	diff "$$tmp/live.txt" "$$tmp/replay.txt" && \
	cmp "$$tmp/live.json" "$$tmp/replay.json" && \
	echo "replay-golden: live and replayed reports and trace exports are identical"

# perfdb-golden records a healthy and a bandwidth-degraded run of the same
# seeded program into a fresh store, then cross-run-diffs them twice. The
# diff must flag significant REGRESSIONs (db diff exits 3 when it does) and
# the two reports must be byte-identical.
perfdb-golden:
	@tmp=$$(mktemp -d) && \
	trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/pperf" ./cmd/pperf && \
	"$$tmp/pperf" -prog big-message -seed 7 \
		-db "$$tmp/store" -db-label healthy >/dev/null 2>&1 && \
	"$$tmp/pperf" -prog big-message -seed 7 -faults 't=500ms degrade-link * bw=0.1' \
		-db "$$tmp/store" -db-label degraded >/dev/null 2>&1 && \
	{ "$$tmp/pperf" db -store "$$tmp/store" diff healthy degraded > "$$tmp/d1.txt"; [ $$? -eq 3 ]; } && \
	{ "$$tmp/pperf" db -store "$$tmp/store" diff healthy degraded > "$$tmp/d2.txt"; [ $$? -eq 3 ]; } && \
	cmp "$$tmp/d1.txt" "$$tmp/d2.txt" && \
	grep -q REGRESSION "$$tmp/d1.txt" && \
	echo "perfdb-golden: degraded run flagged with significant regressions; diff is byte-deterministic"

# trend-golden seeds a five-run store of one program — three healthy seeds,
# then two with a degraded link — and checks the store-wide trend query:
# it must flag DRIFTING series (db trend exits 3), attribute the changepoint
# to the first degraded run (first-bad r0004), be byte-deterministic, and
# say the same in its JSON form. A second store holds a same-seed pair whose
# fault fires at t=3s: with a 3% effect floor the full-run diff dilutes the
# post-fault regression away (exit 0, no REGRESSION) while -since-fault
# anchors the window at the fault and recovers it (exit 3).
trend-golden:
	@tmp=$$(mktemp -d) && \
	trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/pperf" ./cmd/pperf && \
	for s in 7 8 9; do \
		"$$tmp/pperf" -prog big-message -seed $$s \
			-db "$$tmp/trend" -db-label healthy-$$s >/dev/null 2>&1 || exit 1; \
	done && \
	for s in 10 11; do \
		"$$tmp/pperf" -prog big-message -seed $$s -faults 't=0s degrade-link * bw=0.5' \
			-db "$$tmp/trend" -db-label degraded-$$s >/dev/null 2>&1 || exit 1; \
	done && \
	{ "$$tmp/pperf" db -store "$$tmp/trend" trend -alpha=0.1 big-message > "$$tmp/t1.txt"; [ $$? -eq 3 ]; } && \
	{ "$$tmp/pperf" db -store "$$tmp/trend" trend -alpha=0.1 big-message > "$$tmp/t2.txt"; [ $$? -eq 3 ]; } && \
	cmp "$$tmp/t1.txt" "$$tmp/t2.txt" && \
	grep -q 'DRIFTING-UP' "$$tmp/t1.txt" && \
	grep -q 'first-bad r0004' "$$tmp/t1.txt" && \
	{ "$$tmp/pperf" db -store "$$tmp/trend" trend -alpha=0.1 -format=json big-message > "$$tmp/t.json"; [ $$? -eq 3 ]; } && \
	grep -q '"verdict": "DRIFTING-UP"' "$$tmp/t.json" && \
	grep -q '"first_bad": "r0004"' "$$tmp/t.json" && \
	"$$tmp/pperf" -prog big-message -seed 7 -db "$$tmp/pair" -db-label healthy >/dev/null 2>&1 && \
	"$$tmp/pperf" -prog big-message -seed 7 -faults 't=3s degrade-link * bw=0.25' \
		-db "$$tmp/pair" -db-label late-fault >/dev/null 2>&1 && \
	"$$tmp/pperf" db -store "$$tmp/pair" diff -min-effect=0.03 r0001 r0002 > "$$tmp/plain.txt" && \
	! grep -q REGRESSION "$$tmp/plain.txt" && \
	{ "$$tmp/pperf" db -store "$$tmp/pair" diff -since-fault -min-effect=0.03 r0001 r0002 > "$$tmp/since.txt"; [ $$? -eq 3 ]; } && \
	grep -q 'window: \[3.000s, end)' "$$tmp/since.txt" && \
	grep -q REGRESSION "$$tmp/since.txt" && \
	{ "$$tmp/pperf" db -store "$$tmp/pair" diff -since-fault -min-effect=0.03 -format=json r0001 r0002 > "$$tmp/since.json"; [ $$? -eq 3 ]; } && \
	grep -q '"since_fault": true' "$$tmp/since.json" && \
	grep -q '"verdict": "REGRESSION"' "$$tmp/since.json" && \
	echo "trend-golden: 5-run drift flagged with first-bad r0004; -since-fault recovers the late-fault regression a full-run diff dilutes"

# sync-golden exercises the store-sync plane end to end with the real CLI:
# record a run into store a, serve empty store b, push the run under a
# seeded fault plan (dropped frames + degraded link), check a re-push
# dedupes, pull into store c, and require all three archives to be
# byte-identical.
sync-golden:
	@set -e; tmp=$$(mktemp -d); \
	$(GO) build -o "$$tmp/pperf" ./cmd/pperf; \
	"$$tmp/pperf" -prog small-messages -seed 7 -db "$$tmp/a" -db-label golden >/dev/null 2>&1; \
	"$$tmp/pperf" db -store "$$tmp/b" -addr-file "$$tmp/addr" serve 127.0.0.1:0 >/dev/null 2>&1 & \
	srv=$$!; \
	trap 'kill "$$srv" 2>/dev/null; wait "$$srv" 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ]; \
	addr=$$(cat "$$tmp/addr"); \
	"$$tmp/pperf" db -store "$$tmp/a" \
		-sync-faults 'seed=7; t=0s drop-transport client n=2 chan=sync; t=0s degrade-link * lat=1 bw=0.9' \
		push golden "$$addr" >/dev/null; \
	"$$tmp/pperf" db -store "$$tmp/a" push golden "$$addr" | grep -q 'already has'; \
	"$$tmp/pperf" db -store "$$tmp/c" pull "$$addr" --all >/dev/null; \
	cmp "$$tmp/a/runs/r0001.ppdb" "$$tmp/b/runs/r0001.ppdb"; \
	cmp "$$tmp/a/runs/r0001.ppdb" "$$tmp/c/runs/r0001.ppdb"; \
	echo "sync-golden: pushed and pulled archives are byte-identical under a seeded fault plan"
