package pperf

// Facade-level integration tests: exercise the library exactly the way the
// README and examples do.

import (
	"strings"
	"testing"
	"time"

	"pperf/internal/presta"
)

func TestFacadeEndToEnd(t *testing.T) {
	s, err := NewSession(Options{Impl: LAM, Nodes: 3, CPUsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Register("app", func(r *Rank, _ []string) {
		world := r.World()
		const iters = 700
		if r.Rank() == 0 {
			for i := 0; i < iters*(r.Size()-1); i++ {
				req, _ := world.Recv(r, nil, 1, Int, AnySource, 1)
				r.Call("server.c", "handle", func() { r.Compute(3 * time.Millisecond) })
				world.Send(r, nil, 1, Int, req.Source(), 2)
			}
			return
		}
		for i := 0; i < iters; i++ {
			r.Call("client.c", "request", func() {
				world.Send(r, nil, 1, Int, 0, 1)
				world.Recv(r, nil, 1, Int, 0, 2)
			})
		}
	})

	bytes := s.MustEnable("msg_bytes_sent", WholeProgram())
	if err := s.Launch("app", 4, nil); err != nil {
		t.Fatal(err)
	}
	pc := NewConsultant(s, DefaultConsultantConfig())
	if err := pc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	if !pc.TopLevelTrue(HypSync) || !pc.TopLevelTrue(HypCPU) {
		t.Errorf("hypotheses: %s", pc.Render())
	}
	if !pc.HasFinding(HypCPU, "handle") {
		t.Errorf("missing handle finding:\n%s", pc.Render())
	}
	// 700 round trips × 3 clients × 4 bytes each way.
	if got := bytes.Total(); got != 700*3*4*2 {
		t.Errorf("bytes = %v", got)
	}
	if !strings.Contains(s.FE.Hierarchy().Render(), "handle") {
		t.Error("hierarchy missing the app function")
	}
}

func TestFacadeSuiteAccess(t *testing.T) {
	progs := SuitePrograms()
	if len(progs) < 17 {
		t.Errorf("suite programs = %d", len(progs))
	}
	res, err := RunSuiteProgram("hot-procedure", SuiteOptions{Impl: LAM})
	if err != nil {
		t.Fatal(err)
	}
	v := JudgeSuiteRun(res)
	if !v.Pass {
		t.Errorf("hot-procedure verdict: %v", v.Problems)
	}
}

func TestFacadeTracerAndProfiler(t *testing.T) {
	s, err := NewSession(Options{Impl: LAM, Nodes: 2, CPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := AttachTracer(s)
	prof := AttachProfiler(s)
	s.Register("x", func(r *Rank, _ []string) {
		c := r.World()
		r.Call("x.c", "work", func() { r.Compute(100 * time.Millisecond) })
		c.Barrier(r)
	})
	if err := s.Launch("x", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.StateTime("", "MPI_Barrier") <= 0 {
		t.Error("tracer saw no barrier time")
	}
	if prof.Snapshot().Percent("work") < 90 {
		t.Error("profiler missed the work function")
	}
}

func TestFacadeMDLCompile(t *testing.T) {
	lib, err := CompileMDL(`
resourceList fx is procedure { "MPI_Barrier" };
metric fx_count {
    name "fx_count"; units ops; unitstype unnormalized;
    aggregateOperator sum; style EventCounter;
    base is counter { foreach func in fx { append preinsn func.entry constrained (* fx_count++; *) } }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Metric("fx_count") == nil || lib.Metric("rma_put_ops") == nil {
		t.Error("merged library incomplete")
	}
}

func TestFacadePresta(t *testing.T) {
	cmp, err := ComparePresta(LAM, PrestaConfig{Bytes: 512, OpsPerEpoch: 100, Epochs: 10}, presta.UniPut, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OpsDiff.Significant {
		t.Error("op counts should agree")
	}
}

func TestFacadeMpirunParsing(t *testing.T) {
	s, err := NewSession(Options{Impl: LAM, Nodes: 5, CPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan, err := ParseLAMMpirun(s.Spec, []string{"n0-2,4", "prog"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumProcs() != 4 {
		t.Errorf("procs = %d", plan.NumProcs())
	}
}
