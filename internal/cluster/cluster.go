// Package cluster models the Linux cluster the paper's experiments ran on: a
// set of nodes with one or more CPUs, connected by a network whose cost is
// asymmetric between intra-node (shared memory / sysv) and inter-node (TCP)
// communication. It also implements the process-placement logic of the two
// MPI launchers the paper supports — LAM's mpirun notation (-np, N, C,
// nR[,R]*, cR[,R]* and mixtures, §4.1.2) and MPICH's machinefile-based
// mpirun (-m, -wdir, §4.1.1) — plus the LAM boot schema and MPICH machine
// file formats, and the non-shared-filesystem working-directory model.
package cluster

import (
	"fmt"
	"strings"

	"pperf/internal/sim"
)

// Node is one machine in the cluster.
type Node struct {
	Name string
	CPUs int
	// WorkDir is the node-local working directory. On a non-shared
	// filesystem each node may have a different one (§4.1); mpirun's -wdir
	// overrides it for MPICH runs.
	WorkDir string
}

// Spec describes a cluster: its nodes in boot-schema order. Node indexing
// follows the order nodes are listed in the machine file, as LAM defines.
type Spec struct {
	Nodes []Node
	// SharedFS reports whether the nodes share a filesystem. When false,
	// daemon definitions must carry the MPI implementation attribute so the
	// tool can start daemons without a generated script (§4.1).
	SharedFS bool
}

// NumNodes returns the number of nodes.
func (s *Spec) NumNodes() int { return len(s.Nodes) }

// NumCPUs returns the total CPU count across all nodes.
func (s *Spec) NumCPUs() int {
	n := 0
	for _, nd := range s.Nodes {
		n += nd.CPUs
	}
	return n
}

// CPUToNode maps a global CPU index (LAM's processor numbering: node 0's
// CPUs first, then node 1's, ...) to a node index. It returns -1 if the CPU
// index is out of range.
func (s *Spec) CPUToNode(cpu int) int {
	for i, nd := range s.Nodes {
		if cpu < nd.CPUs {
			return i
		}
		cpu -= nd.CPUs
	}
	return -1
}

// Placement is the node assignment for one MPI process.
type Placement struct {
	Rank int
	Node int // index into Spec.Nodes
}

// CostModel gives the virtual-time costs of computation and communication.
// Each MPI implementation personality carries its own instance, which is how
// the simulation reproduces behavioural differences such as MPICH ch_p4mpd
// using sockets even intra-node (no SMP support, §5.1.2).
type CostModel struct {
	// IntraNodeLatency/Bandwidth apply between ranks on the same node.
	IntraNodeLatency   sim.Duration
	IntraNodeBandwidth float64 // bytes per second
	// InterNodeLatency/Bandwidth apply between ranks on different nodes.
	InterNodeLatency   sim.Duration
	InterNodeBandwidth float64
	// EagerThreshold is the message size (bytes) above which the rendezvous
	// protocol is used: the sender blocks until the receiver has posted a
	// matching receive.
	EagerThreshold int
	// FlowCreditBytes bounds the eager payload bytes (plus per-message
	// header) in flight from one sender to one receiver before the sender
	// blocks, modelling the finite shared-memory FIFO / socket buffer.
	// Credits return when the receiver consumes a message, or immediately
	// when the receiver is blocked inside the MPI library and so is
	// draining its transport (which is why wrong-way completes while
	// small-messages' clients stall in MPI_Send).
	FlowCreditBytes int
	// MsgHeaderBytes is the per-message envelope charge against the flow
	// window.
	MsgHeaderBytes int
	// SendOverhead/RecvOverhead are per-call CPU costs of the library.
	SendOverhead sim.Duration
	RecvOverhead sim.Duration
	// RMAOverhead is the per-call CPU cost of Put/Get/Accumulate.
	RMAOverhead sim.Duration
}

// LinkParams returns the base latency and bandwidth applying between the
// given nodes (intra- vs inter-node).
func (c *CostModel) LinkParams(fromNode, toNode int) (sim.Duration, float64) {
	if fromNode == toNode {
		return c.IntraNodeLatency, c.IntraNodeBandwidth
	}
	return c.InterNodeLatency, c.InterNodeBandwidth
}

// MsgTime returns the network transit duration for a message of size bytes
// between the given nodes.
func (c *CostModel) MsgTime(fromNode, toNode, bytes int) sim.Duration {
	lat, bw := c.LinkParams(fromNode, toNode)
	return lat + sim.Duration(float64(bytes)/bw*float64(sim.Second))
}

// DefaultSpec returns a cluster like the paper's testbed slices: nNodes
// nodes with cpusPerNode CPUs each and no shared filesystem.
func DefaultSpec(nNodes, cpusPerNode int) *Spec {
	s := &Spec{SharedFS: false}
	for i := 0; i < nNodes; i++ {
		s.Nodes = append(s.Nodes, Node{
			Name:    fmt.Sprintf("node%d", i),
			CPUs:    cpusPerNode,
			WorkDir: fmt.Sprintf("/home/user/run/node%d", i),
		})
	}
	return s
}

// String renders the spec as a LAM boot schema.
func (s *Spec) String() string {
	var b strings.Builder
	for _, nd := range s.Nodes {
		fmt.Fprintf(&b, "%s cpu=%d\n", nd.Name, nd.CPUs)
	}
	return b.String()
}
