package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// LaunchPlan is the result of parsing an mpirun command line: where each MPI
// process starts, plus launcher options relevant to the tool.
type LaunchPlan struct {
	Placements []Placement
	// WorkDir is the working directory requested with -wdir (MPICH), empty
	// if unset.
	WorkDir string
	// Program and Args are the application command.
	Program string
	Args    []string
}

// NumProcs returns the number of processes in the plan.
func (lp *LaunchPlan) NumProcs() int { return len(lp.Placements) }

// ParseLAMMpirun implements the three process-count notations the paper adds
// support for (§4.1.2):
//
//  1. direct CPU count:       mpirun -np n prog      → first n processors
//  2. node specification:     mpirun N prog          → one per node
//     mpirun n0-2,4 prog     → one on each listed node
//  3. processor spec:         mpirun C prog          → one per processor
//     mpirun c0-2,5 prog     → one on each listed processor
//
// Node and processor specifications may be mixed on one command line; the
// processes are ranked in the order the specifications appear.
func ParseLAMMpirun(spec *Spec, argv []string) (*LaunchPlan, error) {
	lp := &LaunchPlan{}
	rank := 0
	addNode := func(node int) error {
		if node < 0 || node >= spec.NumNodes() {
			return fmt.Errorf("mpirun: node %d out of range [0,%d)", node, spec.NumNodes())
		}
		lp.Placements = append(lp.Placements, Placement{Rank: rank, Node: node})
		rank++
		return nil
	}
	addCPU := func(cpu int) error {
		node := spec.CPUToNode(cpu)
		if node < 0 {
			return fmt.Errorf("mpirun: processor %d out of range [0,%d)", cpu, spec.NumCPUs())
		}
		return addNode(node)
	}

	i := 0
	for ; i < len(argv); i++ {
		arg := argv[i]
		switch {
		case arg == "-np":
			if i+1 >= len(argv) {
				return nil, fmt.Errorf("mpirun: -np requires a count")
			}
			n, err := strconv.Atoi(argv[i+1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("mpirun: bad -np count %q", argv[i+1])
			}
			if n > spec.NumCPUs() {
				return nil, fmt.Errorf("mpirun: -np %d exceeds %d processors", n, spec.NumCPUs())
			}
			for cpu := 0; cpu < n; cpu++ {
				if err := addCPU(cpu); err != nil {
					return nil, err
				}
			}
			i++
		case arg == "N":
			for node := range spec.Nodes {
				if err := addNode(node); err != nil {
					return nil, err
				}
			}
		case arg == "C":
			for cpu := 0; cpu < spec.NumCPUs(); cpu++ {
				if err := addCPU(cpu); err != nil {
					return nil, err
				}
			}
		case len(arg) > 1 && arg[0] == 'n' && isRangeList(arg[1:]):
			ids, err := parseRangeList(arg[1:], spec.NumNodes(), "node")
			if err != nil {
				return nil, err
			}
			for _, node := range ids {
				if err := addNode(node); err != nil {
					return nil, err
				}
			}
		case len(arg) > 1 && arg[0] == 'c' && isRangeList(arg[1:]):
			ids, err := parseRangeList(arg[1:], spec.NumCPUs(), "processor")
			if err != nil {
				return nil, err
			}
			for _, cpu := range ids {
				if err := addCPU(cpu); err != nil {
					return nil, err
				}
			}
		case strings.HasPrefix(arg, "-"):
			return nil, fmt.Errorf("mpirun: unknown option %q", arg)
		default:
			// First non-option, non-specification argument is the program.
			lp.Program = arg
			lp.Args = argv[i+1:]
			i = len(argv)
		}
	}
	if lp.Program == "" {
		return nil, fmt.Errorf("mpirun: no program given")
	}
	if len(lp.Placements) == 0 {
		return nil, fmt.Errorf("mpirun: no process specification (-np, N, C, nR or cR)")
	}
	return lp, nil
}

// isRangeList reports whether s looks like a LAM R[,R]* range list (digits,
// commas and dashes only, starting with a digit).
func isRangeList(s string) bool {
	if s == "" || s[0] < '0' || s[0] > '9' {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && c != ',' && c != '-' {
			return false
		}
	}
	return true
}

// parseRangeList parses LAM's R[,R]* notation, where each R is either a
// single index or a lo-hi range, all within [0, limit).
func parseRangeList(s string, limit int, kind string) ([]int, error) {
	var ids []int
	for _, part := range strings.Split(s, ",") {
		lo, hi, isRange := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("mpirun: bad %s range %q", kind, part)
		}
		b := a
		if isRange {
			b, err = strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("mpirun: bad %s range %q", kind, part)
			}
		}
		for v := a; v <= b; v++ {
			if v < 0 || v >= limit {
				return nil, fmt.Errorf("mpirun: %s %d out of range [0,%d)", kind, v, limit)
			}
			ids = append(ids, v)
		}
	}
	return ids, nil
}

// ParseMPICHMpirun parses an MPICH-style mpirun command line:
//
//	mpirun -np n [-m machinefile] [-wdir dir] prog args...
//
// The -m and -wdir arguments are the ones §4.1.1 adds support for. When -m
// is given, its parsed contents replace spec; processes fill each node's CPU
// slots in order, wrapping around if n exceeds the total.
func ParseMPICHMpirun(spec *Spec, argv []string, readFile func(string) (string, error)) (*Spec, *LaunchPlan, error) {
	lp := &LaunchPlan{}
	n := 0
	i := 0
	for ; i < len(argv); i++ {
		arg := argv[i]
		switch arg {
		case "-np":
			if i+1 >= len(argv) {
				return nil, nil, fmt.Errorf("mpirun: -np requires a count")
			}
			v, err := strconv.Atoi(argv[i+1])
			if err != nil || v < 1 {
				return nil, nil, fmt.Errorf("mpirun: bad -np count %q", argv[i+1])
			}
			n = v
			i++
		case "-m", "-machinefile":
			if i+1 >= len(argv) {
				return nil, nil, fmt.Errorf("mpirun: %s requires a file", arg)
			}
			if readFile == nil {
				return nil, nil, fmt.Errorf("mpirun: no machine-file reader supplied")
			}
			text, err := readFile(argv[i+1])
			if err != nil {
				return nil, nil, fmt.Errorf("mpirun: reading machine file: %w", err)
			}
			spec, err = ParseMachineFile(text)
			if err != nil {
				return nil, nil, err
			}
			i++
		case "-wdir":
			if i+1 >= len(argv) {
				return nil, nil, fmt.Errorf("mpirun: -wdir requires a directory")
			}
			lp.WorkDir = argv[i+1]
			i++
		default:
			if strings.HasPrefix(arg, "-") {
				return nil, nil, fmt.Errorf("mpirun: unknown option %q", arg)
			}
			lp.Program = arg
			lp.Args = argv[i+1:]
			i = len(argv)
		}
	}
	if lp.Program == "" {
		return nil, nil, fmt.Errorf("mpirun: no program given")
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("mpirun: -np is required")
	}
	// Fill CPU slots node by node, wrapping if oversubscribed.
	total := spec.NumCPUs()
	for rank := 0; rank < n; rank++ {
		lp.Placements = append(lp.Placements, Placement{Rank: rank, Node: spec.CPUToNode(rank % total)})
	}
	return spec, lp, nil
}
