package cluster

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"pperf/internal/sim"
)

func nodesOf(lp *LaunchPlan) []int {
	var out []int
	for _, p := range lp.Placements {
		out = append(out, p.Node)
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseBootSchema(t *testing.T) {
	s, err := ParseBootSchema(`
# Wyeast cluster
node0 cpu=2
node1 cpu=2
node2 cpu=2  # trailing comment
node3
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 4 || s.NumCPUs() != 7 {
		t.Errorf("nodes=%d cpus=%d, want 4/7", s.NumNodes(), s.NumCPUs())
	}
	if s.Nodes[3].CPUs != 1 {
		t.Errorf("node3 cpus = %d, want default 1", s.Nodes[3].CPUs)
	}
}

func TestParseBootSchemaErrors(t *testing.T) {
	for _, bad := range []string{"", "node0 cpu=x", "node0 cpu=0", "node0 foo=1", "node0 junk"} {
		if _, err := ParseBootSchema(bad); err == nil {
			t.Errorf("ParseBootSchema(%q) should fail", bad)
		}
	}
}

func TestParseMachineFile(t *testing.T) {
	s, err := ParseMachineFile("host1:2\nhost2\n# c\nhost3:4\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 3 || s.NumCPUs() != 7 {
		t.Errorf("nodes=%d cpus=%d, want 3/7", s.NumNodes(), s.NumCPUs())
	}
	if _, err := ParseMachineFile("h:0"); err == nil {
		t.Error("cpu count 0 should fail")
	}
	if _, err := ParseMachineFile("# only comments\n"); err == nil {
		t.Error("empty machine file should fail")
	}
}

func TestLAMMpirunNp(t *testing.T) {
	spec := DefaultSpec(3, 2)
	lp, err := ParseLAMMpirun(spec, []string{"-np", "4", "prog", "arg1"})
	if err != nil {
		t.Fatal(err)
	}
	// first 4 processors: node0 has cpus 0,1; node1 has 2,3
	if !eqInts(nodesOf(lp), []int{0, 0, 1, 1}) {
		t.Errorf("placements = %v", nodesOf(lp))
	}
	if lp.Program != "prog" || len(lp.Args) != 1 || lp.Args[0] != "arg1" {
		t.Errorf("program parse: %q %v", lp.Program, lp.Args)
	}
}

func TestLAMMpirunNodeSpecN(t *testing.T) {
	lp, err := ParseLAMMpirun(DefaultSpec(3, 2), []string{"N", "prog"})
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(nodesOf(lp), []int{0, 1, 2}) {
		t.Errorf("placements = %v", nodesOf(lp))
	}
}

func TestLAMMpirunNodeRange(t *testing.T) {
	// The paper's example: n0-2,4 starts processes on nodes 0,1,2,4.
	lp, err := ParseLAMMpirun(DefaultSpec(5, 1), []string{"n0-2,4", "prog"})
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(nodesOf(lp), []int{0, 1, 2, 4}) {
		t.Errorf("placements = %v, want [0 1 2 4]", nodesOf(lp))
	}
}

func TestLAMMpirunProcessorSpecC(t *testing.T) {
	lp, err := ParseLAMMpirun(DefaultSpec(2, 2), []string{"C", "prog"})
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(nodesOf(lp), []int{0, 0, 1, 1}) {
		t.Errorf("placements = %v", nodesOf(lp))
	}
}

func TestLAMMpirunProcessorRange(t *testing.T) {
	lp, err := ParseLAMMpirun(DefaultSpec(3, 2), []string{"c1-2,5", "prog"})
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(nodesOf(lp), []int{0, 1, 2}) {
		t.Errorf("placements = %v, want [0 1 2]", nodesOf(lp))
	}
}

func TestLAMMpirunMixedSpecs(t *testing.T) {
	// Mixture of node and processor specifications on one command line.
	lp, err := ParseLAMMpirun(DefaultSpec(3, 2), []string{"n0", "c4-5", "prog"})
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(nodesOf(lp), []int{0, 2, 2}) {
		t.Errorf("placements = %v, want [0 2 2]", nodesOf(lp))
	}
}

func TestLAMMpirunErrors(t *testing.T) {
	spec := DefaultSpec(2, 1)
	cases := [][]string{
		{"-np", "9", "prog"}, // too many
		{"-np", "x", "prog"}, // bad count
		{"-np", "1"},         // no program
		{"n0-5", "prog"},     // node out of range
		{"c7", "prog"},       // cpu out of range
		{"n2-1", "prog"},     // inverted range
		{"-bogus", "prog"},   // unknown flag
		{"prog"},             // no process spec
		{"n0,abc", "prog"},   // malformed list is not a range list → treated as program, then spec missing... ensure error
	}
	for _, argv := range cases {
		if _, err := ParseLAMMpirun(spec, argv); err == nil {
			t.Errorf("ParseLAMMpirun(%v) should fail", argv)
		}
	}
}

func TestMPICHMpirun(t *testing.T) {
	files := map[string]string{"machines": "hostA:2\nhostB:2\n"}
	read := func(name string) (string, error) {
		if s, ok := files[name]; ok {
			return s, nil
		}
		return "", fmt.Errorf("no such file %q", name)
	}
	spec, lp, err := ParseMPICHMpirun(DefaultSpec(1, 1),
		[]string{"-np", "5", "-m", "machines", "-wdir", "/tmp/w", "prog", "x"}, read)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes[0].Name != "hostA" {
		t.Errorf("machine file did not replace spec: %+v", spec.Nodes)
	}
	if lp.WorkDir != "/tmp/w" {
		t.Errorf("wdir = %q", lp.WorkDir)
	}
	// 4 CPUs, 5 procs → wraps around.
	if !eqInts(nodesOf(lp), []int{0, 0, 1, 1, 0}) {
		t.Errorf("placements = %v", nodesOf(lp))
	}
}

func TestMPICHMpirunErrors(t *testing.T) {
	spec := DefaultSpec(2, 1)
	read := func(string) (string, error) { return "", fmt.Errorf("nope") }
	cases := [][]string{
		{"prog"},                     // no -np
		{"-np", "2"},                 // no program
		{"-np", "0", "prog"},         // bad count
		{"-m", "f", "-np", "1", "p"}, // unreadable machine file
		{"-wdir"},                    // missing value
		{"-zz", "prog"},              // unknown option
	}
	for _, argv := range cases {
		if _, _, err := ParseMPICHMpirun(spec, argv, read); err == nil {
			t.Errorf("ParseMPICHMpirun(%v) should fail", argv)
		}
	}
}

func TestCPUToNode(t *testing.T) {
	s := &Spec{Nodes: []Node{{Name: "a", CPUs: 2}, {Name: "b", CPUs: 1}, {Name: "c", CPUs: 3}}}
	want := []int{0, 0, 1, 2, 2, 2}
	for cpu, node := range want {
		if got := s.CPUToNode(cpu); got != node {
			t.Errorf("CPUToNode(%d) = %d, want %d", cpu, got, node)
		}
	}
	if s.CPUToNode(6) != -1 || s.CPUToNode(100) != -1 {
		t.Error("out-of-range CPU should map to -1")
	}
}

func TestCostModelMsgTime(t *testing.T) {
	cm := &CostModel{
		IntraNodeLatency: 1 * sim.Microsecond, IntraNodeBandwidth: 1e9,
		InterNodeLatency: 50 * sim.Microsecond, InterNodeBandwidth: 1e8,
	}
	intra := cm.MsgTime(0, 0, 1000)
	inter := cm.MsgTime(0, 1, 1000)
	if intra >= inter {
		t.Errorf("intra (%v) should be cheaper than inter (%v)", intra, inter)
	}
	if got, want := intra, 1*sim.Microsecond+1*sim.Microsecond; got != want {
		t.Errorf("intra = %v, want %v", got, want)
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	s := DefaultSpec(3, 2)
	s2, err := ParseBootSchema(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumNodes() != 3 || s2.NumCPUs() != 6 {
		t.Errorf("round trip lost nodes: %d/%d", s2.NumNodes(), s2.NumCPUs())
	}
}

// Property: for any valid -np n on any spec, placements are dense ranks
// 0..n-1, each on an in-range node, in non-decreasing node order.
func TestPropertyNpPlacement(t *testing.T) {
	f := func(nn, cc, np uint8) bool {
		nNodes := int(nn%6) + 1
		cpus := int(cc%4) + 1
		spec := DefaultSpec(nNodes, cpus)
		n := int(np%uint8(spec.NumCPUs())) + 1
		lp, err := ParseLAMMpirun(spec, []string{"-np", fmt.Sprint(n), "prog"})
		if err != nil {
			return false
		}
		if lp.NumProcs() != n {
			return false
		}
		prev := 0
		for i, p := range lp.Placements {
			if p.Rank != i || p.Node < 0 || p.Node >= nNodes || p.Node < prev {
				return false
			}
			prev = p.Node
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: range-list parsing accepts exactly what it generates.
func TestPropertyRangeList(t *testing.T) {
	f := func(ids []uint8) bool {
		if len(ids) == 0 {
			return true
		}
		parts := make([]string, len(ids))
		for i, v := range ids {
			parts[i] = fmt.Sprint(int(v % 16))
		}
		s := strings.Join(parts, ",")
		got, err := parseRangeList(s, 16, "node")
		if err != nil || len(got) != len(ids) {
			return false
		}
		for i, v := range ids {
			if got[i] != int(v%16) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
