package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBootSchema parses a LAM boot schema (the file given to lamboot):
// one host per line, optionally followed by cpu=N, with #-comments and blank
// lines ignored. Nodes are indexed in listing order.
func ParseBootSchema(text string) (*Spec, error) {
	s := &Spec{SharedFS: false}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		nd := Node{Name: fields[0], CPUs: 1}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("boot schema line %d: malformed attribute %q", lineNo+1, f)
			}
			switch key {
			case "cpu":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("boot schema line %d: bad cpu count %q", lineNo+1, val)
				}
				nd.CPUs = n
			case "user":
				// accepted and ignored, as lamboot does for scheduling purposes
			default:
				return nil, fmt.Errorf("boot schema line %d: unknown attribute %q", lineNo+1, key)
			}
		}
		s.Nodes = append(s.Nodes, nd)
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("boot schema: no hosts")
	}
	return s, nil
}

// ParseMachineFile parses an MPICH machine file: one "host[:ncpus]" per
// line, with #-comments and blank lines ignored.
func ParseMachineFile(text string) (*Spec, error) {
	s := &Spec{SharedFS: false}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		nd := Node{CPUs: 1}
		host, cpus, ok := strings.Cut(line, ":")
		nd.Name = host
		if ok {
			n, err := strconv.Atoi(cpus)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("machine file line %d: bad cpu count %q", lineNo+1, cpus)
			}
			nd.CPUs = n
		}
		s.Nodes = append(s.Nodes, nd)
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("machine file: no hosts")
	}
	return s, nil
}
