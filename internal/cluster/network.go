package cluster

import (
	"pperf/internal/sim"
)

// LinkState is the fault-injected condition of one node-pair link (or the
// whole fabric). The zero value means a healthy link.
type LinkState struct {
	// LatFactor multiplies the link's base latency (0 or 1 = unchanged).
	LatFactor float64
	// BWFactor multiplies the link's base bandwidth (0 or 1 = unchanged).
	// Values < 1 model bandwidth collapse.
	BWFactor float64
	// DownUntil, when nonzero, severs the link until the given virtual time:
	// traffic entering the link is held and delivered only after the link
	// comes back (plus its transit time).
	DownUntil sim.Time
}

// degraded reports whether the state differs from a healthy link.
func (ls LinkState) degraded() bool {
	return (ls.LatFactor != 0 && ls.LatFactor != 1) ||
		(ls.BWFactor != 0 && ls.BWFactor != 1) ||
		ls.DownUntil != 0
}

// Network overlays fault-injected link conditions on a cluster. A nil
// *Network means no faults; the cost-model fast path is unchanged. Keys are
// unordered node-index pairs; the special pair (-1,-1) applies to every
// link (including intra-node "links", which model a dying local interconnect
// only when explicitly targeted).
type Network struct {
	links map[[2]int]LinkState
}

// NewNetwork returns an empty (healthy) fault overlay.
func NewNetwork() *Network {
	return &Network{links: map[[2]int]LinkState{}}
}

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// SetLink installs a fault state on the a↔b link. Node order is irrelevant.
func (n *Network) SetLink(a, b int, st LinkState) {
	n.links[linkKey(a, b)] = st
}

// SetAll installs a fault state on every link.
func (n *Network) SetAll(st LinkState) {
	n.links[linkKey(-1, -1)] = st
}

// ClearLink restores the a↔b link to health.
func (n *Network) ClearLink(a, b int) {
	delete(n.links, linkKey(a, b))
}

// State returns the fault state of the a↔b link (pair-specific state wins
// over an all-links state).
func (n *Network) State(a, b int) (LinkState, bool) {
	if st, ok := n.links[linkKey(a, b)]; ok {
		return st, true
	}
	st, ok := n.links[linkKey(-1, -1)]
	return st, ok
}

// Degraded reports whether any link currently carries a fault state.
func (n *Network) Degraded() bool {
	for _, st := range n.links {
		if st.degraded() {
			return true
		}
	}
	return false
}

// Apply adjusts a message's base latency and bandwidth for the a↔b link at
// virtual time now. The returned hold is the extra delay a severed link adds
// (time until the link is restored); latency and bandwidth multipliers apply
// on top of it.
func (n *Network) Apply(now sim.Time, a, b int, lat sim.Duration, bw float64) (sim.Duration, float64, sim.Duration) {
	st, ok := n.State(a, b)
	if !ok {
		return lat, bw, 0
	}
	if st.LatFactor > 0 {
		lat = sim.Duration(float64(lat) * st.LatFactor)
	}
	if st.BWFactor > 0 {
		bw *= st.BWFactor
	}
	var hold sim.Duration
	if st.DownUntil > now {
		hold = st.DownUntil.Sub(now)
	}
	return lat, bw, hold
}
