package metric

import "pperf/internal/sim"

// Accumulator is the value cell behind one metric-focus instance on one
// process: instrumentation writes it, the daemon samples it. Sample returns
// the cumulative value in metric units (counts, bytes, or seconds) given the
// process's current wall clock and CPU clock; a running timer includes its
// in-progress interval.
type Accumulator interface {
	Sample(wall sim.Time, cpu sim.Duration) float64
}

// Counter is MDL's "counter": incremented by probe statements.
type Counter struct {
	v float64
}

// Add increments the counter.
func (c *Counter) Add(n float64) { c.v += n }

// Set assigns the counter (MDL allows plain assignment too).
func (c *Counter) Set(n float64) { c.v = n }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.v }

// Sample implements Accumulator.
func (c *Counter) Sample(sim.Time, sim.Duration) float64 { return c.v }

// WallTimer is MDL's "walltimer": accumulates elapsed wall-clock (virtual)
// time between start and stop. Start/stop pairs may nest (recursive
// functions); only the outermost pair defines the interval.
type WallTimer struct {
	acc     sim.Duration
	depth   int
	startAt sim.Time
}

// Start begins (or nests) timing at wall time t.
func (w *WallTimer) Start(t sim.Time) {
	if w.depth == 0 {
		w.startAt = t
	}
	w.depth++
}

// Stop ends one nesting level at wall time t; the outermost stop
// accumulates. Stopping a non-running timer is a no-op (Paradyn tolerates
// instrumentation inserted between a function's entry and return).
func (w *WallTimer) Stop(t sim.Time) {
	if w.depth == 0 {
		return
	}
	w.depth--
	if w.depth == 0 {
		w.acc += t.Sub(w.startAt)
	}
}

// Sample implements Accumulator: accumulated seconds, including the
// in-progress interval of a running timer.
func (w *WallTimer) Sample(wall sim.Time, _ sim.Duration) float64 {
	d := w.acc
	if w.depth > 0 {
		d += wall.Sub(w.startAt)
	}
	return d.Seconds()
}

// ProcessTimer is MDL's "processtimer": like WallTimer but it advances with
// the process's CPU time, so blocked time does not count. This is the basis
// of the cpu_inclusive metric.
type ProcessTimer struct {
	acc     sim.Duration
	depth   int
	startAt sim.Duration // CPU position at outermost start
}

// Start begins timing at CPU position cpu.
func (p *ProcessTimer) Start(cpu sim.Duration) {
	if p.depth == 0 {
		p.startAt = cpu
	}
	p.depth++
}

// Stop ends one nesting level at CPU position cpu.
func (p *ProcessTimer) Stop(cpu sim.Duration) {
	if p.depth == 0 {
		return
	}
	p.depth--
	if p.depth == 0 {
		p.acc += cpu - p.startAt
	}
}

// Sample implements Accumulator.
func (p *ProcessTimer) Sample(_ sim.Time, cpu sim.Duration) float64 {
	d := p.acc
	if p.depth > 0 {
		d += cpu - p.startAt
	}
	return d.Seconds()
}
