package metric

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pperf/internal/resource"
	"pperf/internal/sim"
)

func TestHistogramBasicBinning(t *testing.T) {
	h := NewHistogram(10, sim.Second)
	h.Add(sim.Time(0), 5)
	h.Add(sim.Time(1500*sim.Millisecond), 3)
	h.Add(sim.Time(1700*sim.Millisecond), 2)
	if h.Bin(0) != 5 || h.Bin(1) != 5 {
		t.Errorf("bins = %v %v", h.Bin(0), h.Bin(1))
	}
	if h.NumFilled() != 2 {
		t.Errorf("filled = %d", h.NumFilled())
	}
	if h.Total() != 10 {
		t.Errorf("total = %v", h.Total())
	}
}

func TestHistogramFoldDoublesWidth(t *testing.T) {
	h := NewHistogram(4, sim.Second)
	for i := 0; i < 4; i++ {
		h.Add(sim.Time(i)*sim.Time(sim.Second), 1)
	}
	// t=4s is out of range (4 bins × 1s) → one fold.
	h.Add(sim.Time(4*sim.Second), 1)
	if h.Folds() != 1 {
		t.Fatalf("folds = %d", h.Folds())
	}
	if h.BinWidth() != 2*sim.Second {
		t.Errorf("width = %v", h.BinWidth())
	}
	// Old bins pair-summed: [1,1,1,1] → [2,2,0,0]; new value at bin 2.
	if h.Bin(0) != 2 || h.Bin(1) != 2 || h.Bin(2) != 1 {
		t.Errorf("bins = %v %v %v", h.Bin(0), h.Bin(1), h.Bin(2))
	}
	if h.Total() != 5 {
		t.Errorf("total = %v", h.Total())
	}
}

func TestHistogramRepeatedFolding(t *testing.T) {
	h := NewHistogram(8, 200*sim.Millisecond)
	// Fill out to 100 seconds: needs several folds; paper granularity grows
	// 0.2 → 0.4 → 0.8 …
	for i := 0; i < 1000; i++ {
		h.Add(sim.Time(i)*sim.Time(100*sim.Millisecond), 1)
	}
	if h.Total() != 1000 {
		t.Errorf("total = %v (folding must conserve mass)", h.Total())
	}
	if h.BinWidth() <= 200*sim.Millisecond {
		t.Errorf("width = %v, should have grown", h.BinWidth())
	}
}

func TestMeanRateExcludingEnds(t *testing.T) {
	h := NewHistogram(100, sim.Second)
	// Partial first and last bins are the error source the paper works
	// around; interior bins carry 10/s.
	h.Add(sim.Time(900*sim.Millisecond), 1) // partial start
	for i := 1; i < 9; i++ {
		h.Add(sim.Time(i)*sim.Time(sim.Second), 10)
	}
	h.Add(sim.Time(9*sim.Second), 2) // partial end
	rate := h.MeanRateExcludingEnds()
	if rate != 10 {
		t.Errorf("rate = %v, want 10", rate)
	}
	// The paper's total estimate comes out slightly under the true value.
	est := h.TotalViaMeanRate(9*sim.Second + 100*sim.Millisecond)
	if est <= 0 || math.Abs(est-91) > 1e-9 {
		t.Errorf("estimate = %v", est)
	}
}

func TestActiveRunTimeAndInteriorTotal(t *testing.T) {
	h := NewHistogram(100, sim.Second)
	for i := 0; i < 10; i++ {
		h.Add(sim.Time(i)*sim.Time(sim.Second), 4)
	}
	if got := h.ActiveRunTime(); got != 8*sim.Second { // 10 filled minus 2 ends
		t.Errorf("active runtime = %v", got)
	}
	if got := h.InteriorTotal(); got != 32 {
		t.Errorf("interior total = %v", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(10, sim.Second)
	if h.Render(20) != "(empty)" {
		t.Error("empty render")
	}
	h.Add(0, 1)
	h.Add(sim.Time(5*sim.Second), 10)
	s := h.Render(20)
	if len([]rune(s)) != 20 {
		t.Errorf("render width = %d", len([]rune(s)))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(2.5)
	if c.Value() != 7.5 || c.Sample(0, 0) != 7.5 {
		t.Errorf("counter = %v", c.Value())
	}
	c.Set(1)
	if c.Value() != 1 {
		t.Errorf("after Set: %v", c.Value())
	}
}

func TestWallTimerAccumulates(t *testing.T) {
	var w WallTimer
	w.Start(sim.Time(1 * sim.Second))
	w.Stop(sim.Time(3 * sim.Second))
	w.Start(sim.Time(10 * sim.Second))
	w.Stop(sim.Time(11 * sim.Second))
	if got := w.Sample(sim.Time(20*sim.Second), 0); got != 3 {
		t.Errorf("wall = %v, want 3s", got)
	}
}

func TestWallTimerRunningIncluded(t *testing.T) {
	var w WallTimer
	w.Start(sim.Time(1 * sim.Second))
	if got := w.Sample(sim.Time(5*sim.Second), 0); got != 4 {
		t.Errorf("running sample = %v, want 4", got)
	}
}

func TestWallTimerNesting(t *testing.T) {
	var w WallTimer
	w.Start(sim.Time(0))
	w.Start(sim.Time(1 * sim.Second)) // recursive entry
	w.Stop(sim.Time(2 * sim.Second))
	w.Stop(sim.Time(4 * sim.Second))
	if got := w.Sample(sim.Time(10*sim.Second), 0); got != 4 {
		t.Errorf("nested wall = %v, want 4 (outermost interval only)", got)
	}
}

func TestWallTimerStopWithoutStart(t *testing.T) {
	var w WallTimer
	w.Stop(sim.Time(5 * sim.Second)) // must not panic or go negative
	if got := w.Sample(sim.Time(6*sim.Second), 0); got != 0 {
		t.Errorf("got %v", got)
	}
}

func TestProcessTimerIgnoresBlockedTime(t *testing.T) {
	var p ProcessTimer
	p.Start(2 * sim.Second) // cpu position at entry
	// Process blocks: wall advances, cpu doesn't.
	if got := p.Sample(sim.Time(100*sim.Second), 2*sim.Second); got != 0 {
		t.Errorf("blocked process timer = %v, want 0", got)
	}
	p.Stop(5 * sim.Second)
	if got := p.Sample(sim.Time(200*sim.Second), 5*sim.Second); got != 3 {
		t.Errorf("process timer = %v, want 3", got)
	}
}

func TestAggregate(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	cases := []struct {
		op   AggOp
		want float64
	}{{AggSum, 10}, {AggAvg, 2.5}, {AggMin, 1}, {AggMax, 4}}
	for _, tc := range cases {
		if got := Aggregate(tc.op, vals); got != tc.want {
			t.Errorf("op %v = %v, want %v", tc.op, got, tc.want)
		}
	}
	if Aggregate(AggSum, nil) != 0 {
		t.Error("empty aggregate should be 0")
	}
}

func TestInstanceSampleDelta(t *testing.T) {
	var c Counter
	in := &Instance{
		Def:   &Def{Name: "ops", Agg: AggSum, Style: EventCounter},
		Focus: resource.WholeProgram(),
		Acc:   &c,
	}
	c.Add(10)
	if d := in.SampleDelta(0, 0); d != 10 {
		t.Errorf("first delta = %v", d)
	}
	c.Add(5)
	if d := in.SampleDelta(0, 0); d != 5 {
		t.Errorf("second delta = %v", d)
	}
	if v := in.SampleValue(0, 0); v != 15 {
		t.Errorf("value = %v", v)
	}
}

// Property: folding conserves total mass and never loses the max bin index.
func TestPropertyFoldConservesMass(t *testing.T) {
	f := func(points []uint16) bool {
		h := NewHistogram(16, 100*sim.Millisecond)
		total := 0.0
		for _, p := range points {
			t := sim.Time(p) * sim.Time(10*sim.Millisecond)
			h.Add(t, 1)
			total++
		}
		return math.Abs(h.Total()-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a wall timer's samples are monotone while running.
func TestPropertyTimerMonotone(t *testing.T) {
	f := func(steps []uint8) bool {
		var w WallTimer
		now := sim.Time(0)
		w.Start(now)
		last := -1.0
		for _, s := range steps {
			now = now.Add(sim.Duration(s) * sim.Millisecond)
			v := w.Sample(now, 0)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinOutOfRange(t *testing.T) {
	h := NewHistogram(4, sim.Second)
	if h.Bin(-1) != 0 || h.Bin(99) != 0 {
		t.Error("out-of-range bins must read 0")
	}
	h.Add(-5, 3) // negative times clamp to bin 0
	if h.Bin(0) != 3 {
		t.Errorf("bin0 = %v", h.Bin(0))
	}
}

func TestHistogramStringAndFoldsCount(t *testing.T) {
	h := NewHistogram(2, sim.Second)
	h.Add(sim.Time(3*sim.Second), 1) // forces folding
	s := h.String()
	if !strings.Contains(s, "fold") {
		t.Errorf("string = %q", s)
	}
}

func TestMeanRateWithFewBins(t *testing.T) {
	h := NewHistogram(10, sim.Second)
	h.Add(sim.Time(500*sim.Millisecond), 7)
	// Only one filled bin: fall back includes it rather than dividing by 0.
	if r := h.MeanRateExcludingEnds(); r != 7 {
		t.Errorf("rate = %v", r)
	}
	empty := NewHistogram(10, sim.Second)
	if empty.MeanRateExcludingEnds() != 0 {
		t.Error("empty rate should be 0")
	}
}
