package metric

import (
	"fmt"

	"pperf/internal/resource"
	"pperf/internal/sim"
)

// Style distinguishes how a metric's values are produced, as in MDL.
type Style int

const (
	// EventCounter metrics accumulate monotonically (ops, bytes, seconds of
	// waiting); the tool charts the per-interval delta as a rate.
	EventCounter Style = iota
	// SampledFunction metrics are read directly at each sample.
	SampledFunction
)

// UnitsType matches MDL's unitstype attribute.
type UnitsType int

const (
	// Unnormalized rates are shown per second (ops/s, bytes/s).
	Unnormalized UnitsType = iota
	// Normalized rates are time/time (CPUs): a value of 1 means one full
	// processor's worth.
	Normalized
	// Sampled values are shown as-is.
	Sampled
)

// AggOp is how per-process values combine across a focus (MDL
// aggregateOperator).
type AggOp int

const (
	AggSum AggOp = iota
	AggAvg
	AggMin
	AggMax
)

// Aggregate combines values under the operator. An empty slice yields 0.
func Aggregate(op AggOp, vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	switch op {
	case AggAvg:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	default:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	}
}

// Def is a metric's metadata (its instrumentation recipe lives in the MDL
// layer; see internal/mdl).
type Def struct {
	Name        string
	Units       string
	UnitsType   UnitsType
	Agg         AggOp
	Style       Style
	Description string
}

func (d *Def) String() string { return fmt.Sprintf("metric %s (%s)", d.Name, d.Units) }

// Instance is one metric-focus pair enabled on one process: the accumulator
// the instrumentation writes plus the daemon's sampling cursor.
type Instance struct {
	Def   *Def
	Focus resource.Focus
	Proc  string
	Acc   Accumulator
	last  float64
}

// SampleDelta returns the metric's growth since the previous sample (for
// EventCounter metrics this is what lands in the histogram bin).
func (in *Instance) SampleDelta(wall sim.Time, cpu sim.Duration) float64 {
	v := in.Acc.Sample(wall, cpu)
	d := v - in.last
	in.last = v
	return d
}

// SampleValue returns the current cumulative value without moving the
// cursor.
func (in *Instance) SampleValue(wall sim.Time, cpu sim.Duration) float64 {
	return in.Acc.Sample(wall, cpu)
}
