// Package metric implements the tool's data side: accumulating counters and
// timers fed by instrumentation, metric definitions and metric-focus
// instances, and the fixed-memory folding histogram Paradyn stores
// performance data in (§5: bins start at 0.2 s of granularity and fold —
// neighbouring bins combine and the bin width doubles — whenever the
// preallocated array fills, so long runs fit in constant space at
// progressively coarser granularity).
package metric

import (
	"fmt"
	"math"

	"pperf/internal/sim"
)

// DefaultNumBins matches Paradyn's preallocated histogram size.
const DefaultNumBins = 1000

// DefaultBinWidth is the starting bin granularity (0.2 s, §5).
const DefaultBinWidth = 200 * sim.Millisecond

// Histogram accumulates per-time-bin totals of a metric's deltas. The value
// stored in a bin is the amount that occurred during the bin's interval
// (operations, bytes, seconds of waiting, ...); dividing by the bin width
// gives the rate the tool displays (ops/s, bytes/s, CPUs).
type Histogram struct {
	bins     []float64
	binWidth sim.Duration
	folds    int
	lastBin  int // highest bin index written
	any      bool
}

// NewHistogram creates a histogram with the given bin count and starting
// width; zero arguments select the Paradyn defaults.
func NewHistogram(numBins int, binWidth sim.Duration) *Histogram {
	if numBins <= 0 {
		numBins = DefaultNumBins
	}
	if binWidth <= 0 {
		binWidth = DefaultBinWidth
	}
	return &Histogram{bins: make([]float64, numBins), binWidth: binWidth}
}

// Add accumulates value v at time t, folding first if t falls beyond the
// array.
func (h *Histogram) Add(t sim.Time, v float64) {
	if t < 0 {
		t = 0
	}
	for int(sim.Duration(t)/h.binWidth) >= len(h.bins) {
		h.fold()
	}
	idx := int(sim.Duration(t) / h.binWidth)
	h.bins[idx] += v
	if idx > h.lastBin {
		h.lastBin = idx
	}
	h.any = true
}

// fold halves the resolution: neighbouring bins combine and the width
// doubles, freeing the upper half of the array (§5).
func (h *Histogram) fold() {
	n := len(h.bins)
	for i := 0; i < n/2; i++ {
		h.bins[i] = h.bins[2*i] + h.bins[2*i+1]
	}
	for i := n / 2; i < n; i++ {
		h.bins[i] = 0
	}
	h.binWidth *= 2
	h.lastBin /= 2
	h.folds++
}

// BinWidth returns the current bin granularity.
func (h *Histogram) BinWidth() sim.Duration { return h.binWidth }

// Folds returns how many times the histogram has folded.
func (h *Histogram) Folds() int { return h.folds }

// NumFilled returns the number of bins up to and including the last written
// one (0 if nothing was added).
func (h *Histogram) NumFilled() int {
	if !h.any {
		return 0
	}
	return h.lastBin + 1
}

// Bin returns the accumulated value of bin i.
func (h *Histogram) Bin(i int) float64 {
	if i < 0 || i >= len(h.bins) {
		return 0
	}
	return h.bins[i]
}

// Values returns a copy of the filled prefix of the bin array.
func (h *Histogram) Values() []float64 {
	return append([]float64(nil), h.bins[:h.NumFilled()]...)
}

// Rates returns the per-bin rates (bin value divided by bin width in
// seconds) over the filled prefix.
func (h *Histogram) Rates() []float64 {
	sec := h.binWidth.Seconds()
	vals := h.Values()
	for i := range vals {
		vals[i] /= sec
	}
	return vals
}

// Total returns the sum over all bins.
func (h *Histogram) Total() float64 {
	s := 0.0
	for _, v := range h.bins {
		s += v
	}
	return s
}

// --- the paper's export-and-calculate methodology (§5, §5.2.1.3) ---------

// MeanRateExcludingEnds computes the average per-second rate over the filled
// bins, eliminating the first and last bins: "we cannot know exactly when in
// the time interval represented by the end-point bins that the data
// collection actually began or ended" (§5).
func (h *Histogram) MeanRateExcludingEnds() float64 {
	n := h.NumFilled()
	if n <= 2 {
		// Not enough interior bins; fall back to everything.
		if n == 0 {
			return 0
		}
		return h.Total() / (float64(n) * h.binWidth.Seconds())
	}
	s := 0.0
	for i := 1; i < n-1; i++ {
		s += h.bins[i]
	}
	return s / (float64(n-2) * h.binWidth.Seconds())
}

// TotalViaMeanRate reproduces the paper's byte-count calculations (Figs 4,
// 6, 8): multiply the mean rate by the program's wall-clock runtime. Because
// the end bins are eliminated, the estimate characteristically comes out
// slightly below the true total.
func (h *Histogram) TotalViaMeanRate(runtime sim.Duration) float64 {
	return h.MeanRateExcludingEnds() * runtime.Seconds()
}

// ActiveRunTime estimates the duration of the activity the histogram
// records, as §5.2.1.3 does for the Presta comparison: count the bins with
// data, excluding the two endpoint bins, times the bin width.
func (h *Histogram) ActiveRunTime() sim.Duration {
	n := 0
	filled := h.NumFilled()
	for i := 1; i < filled-1; i++ {
		if h.bins[i] != 0 {
			n++
		}
	}
	return sim.Duration(n) * h.binWidth
}

// InteriorTotal sums the bins excluding the two endpoints.
func (h *Histogram) InteriorTotal() float64 {
	filled := h.NumFilled()
	s := 0.0
	for i := 1; i < filled-1; i++ {
		s += h.bins[i]
	}
	return s
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("histogram(%d bins @ %v, %d folds, total %.6g)",
		h.NumFilled(), h.binWidth, h.folds, h.Total())
}

// Render draws a text sparkline of the filled bins, the stand-in for the
// paper's histogram screenshots.
func (h *Histogram) Render(width int) string {
	n := h.NumFilled()
	if n == 0 {
		return "(empty)"
	}
	if width <= 0 {
		width = 60
	}
	// Downsample to the requested width.
	cells := make([]float64, width)
	for i := 0; i < n; i++ {
		cells[i*width/n] += h.bins[i]
	}
	max := 0.0
	for _, v := range cells {
		max = math.Max(max, v)
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	out := make([]rune, width)
	for i, v := range cells {
		lvl := 0
		if max > 0 {
			lvl = int(v / max * float64(len(levels)-1))
		}
		out[i] = levels[lvl]
	}
	return string(out)
}
