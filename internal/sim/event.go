package sim

import "container/heap"

// event is a scheduled callback in virtual time.
type event struct {
	at  Time
	seq uint64 // tie-break: earlier-scheduled events fire first
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *event) { heap.Push(h, ev) }

func (h *eventHeap) pop() *event { return heap.Pop(h).(*event) }

func (h eventHeap) peek() *event {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}
