package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine is a sequential discrete-event simulator. All simulated processes
// and event callbacks execute one at a time under the engine's control, so
// no locking is required anywhere in simulation code.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	evq     eventHeap
	seq     uint64
	procs   []*Proc
	live    int // procs not yet done
	cur     *Proc
	running bool
	stopped bool
	err     error
	rng     *RNG

	// onProcDone, if set, is invoked (in scheduler context) when a process
	// finishes. Used by higher layers for teardown notification.
	onProcDone func(*Proc)
}

// NewEngine returns a new simulation engine with the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time. During a process's execution this is
// the process's local clock; during an event callback it is the event time.
func (e *Engine) Now() Time {
	if e.cur != nil {
		return e.cur.now
	}
	return e.now
}

// RNG returns the engine's deterministic random-number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Procs returns all processes ever started, in start order.
func (e *Engine) Procs() []*Proc { return e.procs }

// At schedules fn to run at virtual time t. If t is before the current time,
// it runs at the current time (events cannot fire in the past). Events run in
// scheduler context: they must not block, but may wake processes, schedule
// further events, and start new processes.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.evq.push(&event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.At(e.Now().Add(d), fn) }

// Stop halts the simulation: Run returns after the currently executing
// process or event yields control.
func (e *Engine) Stop() { e.stopped = true }

// Run executes the simulation until no live processes remain, Stop is called,
// or a process panics. Pending pure events (e.g. periodic samplers) do not
// keep the simulation alive once all processes have finished. Run returns the
// first error encountered: a process panic or a deadlock (processes waiting
// with no event that can ever wake them).
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	for !e.stopped && e.err == nil && e.live > 0 {
		p := e.nextReadyProc()
		ev := e.evq.peek()

		switch {
		case p == nil && ev == nil:
			return e.deadlock()
		case p == nil || (ev != nil && ev.at <= p.readyAt):
			e.evq.pop()
			e.now = ev.at
			ev.fn()
		default:
			e.now = p.readyAt
			p.now = p.readyAt
			e.dispatch(p)
		}
	}
	return e.err
}

// RunFor runs the simulation until the given virtual time has elapsed (or
// the simulation ends earlier). It works by scheduling a Stop event.
func (e *Engine) RunFor(d Duration) error {
	e.At(e.now.Add(d), e.Stop)
	return e.Run()
}

// nextReadyProc returns the ready process with the earliest readyAt time,
// tie-broken by wake sequence, or nil if none are ready.
func (e *Engine) nextReadyProc() *Proc {
	var best *Proc
	for _, p := range e.procs {
		if p.state != stateReady {
			continue
		}
		if best == nil || p.readyAt < best.readyAt ||
			(p.readyAt == best.readyAt && p.readySeq < best.readySeq) {
			best = p
		}
	}
	return best
}

// dispatch hands control to p and blocks until p yields back.
func (e *Engine) dispatch(p *Proc) {
	p.state = stateRunning
	e.cur = p
	p.resume <- struct{}{}
	<-p.yield
	e.cur = nil
	if p.state == stateDone {
		e.live--
		if p.panicErr != nil && e.err == nil {
			e.err = p.panicErr
		}
		if e.onProcDone != nil {
			e.onProcDone(p)
		}
	}
}

// deadlock constructs the error reported when processes are waiting but no
// event can ever wake them.
func (e *Engine) deadlock() error {
	var waiting []string
	for _, p := range e.procs {
		if p.state == stateWaiting {
			waiting = append(waiting, fmt.Sprintf("%s (since %v, in %s)", p.name, p.waitSince, p.waitWhat))
		}
	}
	sort.Strings(waiting)
	e.err = fmt.Errorf("sim: deadlock at %v: %d process(es) waiting with no pending events: %s",
		e.now, len(waiting), strings.Join(waiting, "; "))
	return e.err
}
