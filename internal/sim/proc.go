package sim

import (
	"fmt"
	"runtime/debug"
)

type procState int

const (
	stateReady procState = iota // eligible to run at readyAt
	stateRunning
	stateWaiting // blocked until another party calls wake
	stateDone
)

// Proc is a simulated process: a goroutine whose execution is interleaved
// with other processes in virtual-time order. All Proc methods except WakeAt
// must be called from within the process's own body function.
type Proc struct {
	eng  *Engine
	id   int
	name string

	now      Time
	readyAt  Time
	readySeq uint64
	state    procState

	resume chan struct{}
	yield  chan struct{}

	waitSince Time
	waitWhat  string // description of what the proc is waiting for
	panicErr  error

	killed     bool
	killReason string

	// Val is an arbitrary slot for higher layers to attach per-process
	// context (e.g. the MPI rank state) without a map lookup.
	Val any
}

// procKilled is the panic sentinel used to unwind a killed process's
// goroutine. It is recovered in run and never escapes the package.
type procKilled struct{ reason string }

// StartProc creates a new simulated process named name whose body is fn; it
// becomes runnable at the current virtual time. May be called before Run or
// during the simulation (e.g. to model dynamically spawned MPI processes).
func (e *Engine) StartProc(name string, fn func(p *Proc)) *Proc {
	return e.StartProcAt(name, e.Now(), fn)
}

// StartProcAt is StartProc with an explicit start time (>= current time).
func (e *Engine) StartProcAt(name string, at Time, fn func(p *Proc)) *Proc {
	if at < e.Now() {
		at = e.Now()
	}
	e.seq++
	p := &Proc{
		eng:      e,
		id:       len(e.procs),
		name:     name,
		now:      at,
		readyAt:  at,
		readySeq: e.seq,
		state:    stateReady,
		resume:   make(chan struct{}),
		yield:    make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	e.live++
	go p.run(fn)
	return p
}

// run is the goroutine body wrapping the user function with scheduling
// handshakes and panic capture.
func (p *Proc) run(fn func(*Proc)) {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			if _, wasKill := r.(procKilled); !wasKill {
				p.panicErr = fmt.Errorf("sim: process %q panicked at %v: %v\n%s",
					p.name, p.now, r, debug.Stack())
			}
		}
		p.state = stateDone
		p.yield <- struct{}{}
	}()
	if p.killed {
		return // killed before first dispatch
	}
	fn(p)
}

// ID returns the process's engine-unique id (start order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at StartProc.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the process's local virtual clock.
func (p *Proc) Now() Time { return p.now }

// Sleep advances the process's clock by d, yielding to the scheduler so that
// events and other processes with earlier timestamps run first. d <= 0
// yields without advancing time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.seq++
	p.readyAt = p.now.Add(d)
	p.readySeq = p.eng.seq
	p.state = stateReady
	p.switchOut()
}

// Yield gives other ready processes and events at the current time a chance
// to run, without advancing this process's clock.
func (p *Proc) Yield() { p.Sleep(0) }

// Wait blocks the process until another party calls WakeAt. what is a short
// description used in deadlock reports. Wait returns the (possibly advanced)
// local time at wake-up.
func (p *Proc) Wait(what string) Time {
	p.state = stateWaiting
	p.waitSince = p.now
	p.waitWhat = what
	p.switchOut()
	return p.now
}

// WakeAt makes a waiting process runnable at time t (or at its current local
// clock if that is later). It must be called from scheduler context (an
// event callback) or from another running process. Waking a process that is
// not waiting is a no-op and returns false.
func (p *Proc) WakeAt(t Time) bool {
	if p.state != stateWaiting {
		return false
	}
	if t < p.now {
		t = p.now
	}
	p.eng.seq++
	p.now = t
	p.readyAt = t
	p.readySeq = p.eng.seq
	p.state = stateReady
	return true
}

// Kill forcibly terminates the process (modelling a node crash or a job
// abort): the next time the scheduler dispatches it, its goroutine unwinds —
// running deferred functions — without executing further application code,
// and the process counts as done without an error. Kill must be called from
// scheduler context (an event callback) or from another running process;
// killing an already-done or currently-running process is a no-op returning
// false.
func (p *Proc) Kill(reason string) bool {
	if p.state == stateDone || p.state == stateRunning || p.killed {
		return false
	}
	p.killed = true
	p.killReason = reason
	e := p.eng
	if t := e.Now(); t > p.now {
		p.now = t
	}
	e.seq++
	p.readyAt = p.now
	p.readySeq = e.seq
	p.state = stateReady
	return true
}

// Killed reports whether the process was terminated with Kill, and why.
func (p *Proc) Killed() (bool, string) { return p.killed, p.killReason }

// switchOut transfers control back to the scheduler and blocks until the
// scheduler dispatches this process again.
func (p *Proc) switchOut() {
	p.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
	if p.killed {
		panic(procKilled{reason: p.killReason})
	}
}

// Done reports whether the process has finished.
func (p *Proc) Done() bool { return p.state == stateDone }

// Status describes the process's scheduling state for diagnostics: "done",
// "ready", "running", or "waiting: <reason>".
func (p *Proc) Status() string {
	switch p.state {
	case stateDone:
		return "done"
	case stateRunning:
		return "running"
	case stateWaiting:
		return "waiting: " + p.waitWhat
	default:
		return "ready"
	}
}
