package sim

// RNG is a small deterministic pseudo-random generator (xorshift64*), used
// instead of math/rand so simulations are reproducible across Go versions
// and require no global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped to a fixed
// nonzero constant, since xorshift requires a nonzero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Fork returns a new generator deterministically derived from this one,
// useful for giving each process an independent stream.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
