package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSingleProcAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var end Time
	e.StartProc("p", func(p *Proc) {
		p.Sleep(5 * time.Second)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(5*Second) {
		t.Errorf("end = %v, want 5s", end)
	}
}

func TestProcsInterleaveInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []string
	mark := func(name string, p *Proc) {
		order = append(order, fmt.Sprintf("%s@%v", name, p.Now()))
	}
	e.StartProc("a", func(p *Proc) {
		p.Sleep(3 * time.Second)
		mark("a", p)
	})
	e.StartProc("b", func(p *Proc) {
		p.Sleep(1 * time.Second)
		mark("b", p)
		p.Sleep(4 * time.Second)
		mark("b", p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b@1.000s", "a@3.000s", "b@5.000s"}
	if got := strings.Join(order, ","); got != strings.Join(want, ",") {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestEventsFireAtScheduledTime(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(Time(2*Second), func() { fired = append(fired, e.Now()) })
	e.At(Time(1*Second), func() { fired = append(fired, e.Now()) })
	e.StartProc("p", func(p *Proc) { p.Sleep(3 * time.Second) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != Time(1*Second) || fired[1] != Time(2*Second) {
		t.Errorf("fired = %v, want [1s 2s]", fired)
	}
}

func TestEventsDoNotKeepSimAlive(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(Time(100*Second), func() { fired = true })
	e.StartProc("p", func(p *Proc) { p.Sleep(1 * time.Second) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event after last process exit should not fire")
	}
	if e.Now() != Time(1*Second) {
		t.Errorf("engine stopped at %v, want 1s", e.Now())
	}
}

func TestWaitAndWake(t *testing.T) {
	e := NewEngine(1)
	var c Cond
	var consumerTime Time
	e.StartProc("consumer", func(p *Proc) {
		c.Wait(p, "item")
		consumerTime = p.Now()
	})
	e.StartProc("producer", func(p *Proc) {
		p.Sleep(2 * time.Second)
		c.Broadcast(p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumerTime != Time(2*Second) {
		t.Errorf("consumer woke at %v, want 2s", consumerTime)
	}
}

func TestWakeNeverMovesClockBackward(t *testing.T) {
	e := NewEngine(1)
	var c Cond
	var woke Time
	e.StartProc("late", func(p *Proc) {
		p.Sleep(10 * time.Second)
		c.Wait(p, "thing")
		woke = p.Now()
	})
	e.StartProc("early", func(p *Proc) {
		p.Sleep(11 * time.Second)
		// Attempt to wake at a time earlier than the waiter's clock; the
		// waiter's clock must not go backward.
		c.Broadcast(Time(1 * Second))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(10*Second) {
		t.Errorf("woke at %v, want clamped to 10s", woke)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	var c Cond
	e.StartProc("stuck", func(p *Proc) { c.Wait(p, "a message that never comes") })
	err := e.Run()
	if err == nil {
		t.Fatal("want deadlock error, got nil")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "never comes") {
		t.Errorf("error %q should mention deadlock and the wait reason", err)
	}
}

func TestPanicIsCaptured(t *testing.T) {
	e := NewEngine(1)
	e.StartProc("bad", func(p *Proc) {
		p.Sleep(time.Second)
		panic("boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want panic error containing boom", err)
	}
}

func TestStartProcDuringRun(t *testing.T) {
	e := NewEngine(1)
	var childEnd Time
	e.StartProc("parent", func(p *Proc) {
		p.Sleep(1 * time.Second)
		e.StartProc("child", func(q *Proc) {
			q.Sleep(2 * time.Second)
			childEnd = q.Now()
		})
		p.Sleep(5 * time.Second)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != Time(3*Second) {
		t.Errorf("child ended at %v, want 3s (started at 1s + 2s)", childEnd)
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	e.StartProc("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := e.RunFor(10*time.Second + 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func() string {
		e := NewEngine(42)
		var b strings.Builder
		for i := 0; i < 5; i++ {
			e.StartProc(fmt.Sprintf("p%d", i), func(p *Proc) {
				r := e.RNG() // shared rng accessed in deterministic order
				for j := 0; j < 20; j++ {
					p.Sleep(Duration(r.Intn(1000)) * time.Millisecond)
					fmt.Fprintf(&b, "%s@%v;", p.Name(), p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := trace(), trace(); a != b {
		t.Error("two identical runs produced different traces")
	}
}

func TestTieBreakIsStartOrder(t *testing.T) {
	e := NewEngine(1)
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		e.StartProc(name, func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, p.Name())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "xyz" {
		t.Errorf("tie-break order = %q, want xyz (start order)", got)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine(1)
	var c Cond
	woken := 0
	for i := 0; i < 3; i++ {
		e.StartProc(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p, "signal")
			woken++
		})
	}
	e.StartProc("signaller", func(p *Proc) {
		p.Sleep(time.Second)
		if got := c.Signal(p.Now()); got == nil {
			t.Error("Signal returned nil with waiters present")
		}
		p.Sleep(time.Second)
		c.Broadcast(p.Now()) // release the rest so the sim can finish
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestEventAtPastTimeClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.StartProc("p", func(p *Proc) {
		p.Sleep(5 * time.Second)
		e.At(Time(1*Second), func() { at = e.Now() })
		p.Sleep(time.Second)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*Second) {
		t.Errorf("past event fired at %v, want clamped to 5s", at)
	}
}

func TestTimeConversions(t *testing.T) {
	tt := Time(1500 * Millisecond)
	if tt.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", tt.Seconds())
	}
	if tt.String() != "1.500s" {
		t.Errorf("String() = %q", tt.String())
	}
	if got := tt.Add(500 * Millisecond); got != Time(2*Second) {
		t.Errorf("Add = %v", got)
	}
	if got := tt.Sub(Time(1 * Second)); got != 500*Millisecond {
		t.Errorf("Sub = %v", got)
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v", FromSeconds(2.5))
	}
}

// Property: the sequence of (time, proc) dispatches is monotone in time.
func TestPropertyMonotoneDispatch(t *testing.T) {
	f := func(seed uint64, nProcs uint8, steps uint8) bool {
		n := int(nProcs%8) + 1
		k := int(steps%50) + 1
		e := NewEngine(seed)
		last := Time(-1)
		ok := true
		for i := 0; i < n; i++ {
			e.StartProc(fmt.Sprintf("p%d", i), func(p *Proc) {
				r := e.RNG()
				for j := 0; j < k; j++ {
					p.Sleep(Duration(r.Intn(100)) * time.Millisecond)
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RNG Intn always lands in range and Fork streams differ.
func TestPropertyRNG(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := NewRNG(seed)
		m := int(n%1000) + 1
		for i := 0; i < 100; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
			fl := r.Float64()
			if fl < 0 || fl >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	a, b := NewRNG(7).Fork(), NewRNG(7)
	if a.Uint64() == b.Uint64() {
		t.Error("forked stream should differ from parent stream")
	}
}
