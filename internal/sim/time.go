// Package sim implements a deterministic, sequential discrete-event
// simulation engine with process-oriented (coroutine) semantics.
//
// The engine stands in for the real Linux cluster the paper ran on: simulated
// processes are goroutines that advance a virtual clock, exchange timed
// events, and block on conditions. Exactly one simulated process (or event
// callback) executes at a time, scheduled in virtual-time order with a
// deterministic tie-break, so every run of a simulation is reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is deliberately the
// same representation as time.Duration so the standard constants
// (time.Millisecond etc.) can be used when constructing workloads.
type Duration = time.Duration

// Common durations, re-exported for convenience so that workload code does
// not need to import both sim and time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and s (t - s).
func (t Time) Sub(s Time) Duration { return Duration(t - s) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// FromSeconds converts a floating-point number of seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }
