package sim

// Cond is a virtual-time condition variable: processes wait on it and are
// woken by Signal or Broadcast at a given time. Unlike sync.Cond there is no
// lock, because the engine is sequential.
type Cond struct {
	waiters []*Proc
}

// Wait blocks the calling process on the condition. As with sync.Cond, the
// caller must re-check its predicate in a loop, because another process may
// run between the wake-up and the resumption. what describes the wait for
// deadlock reports.
func (c *Cond) Wait(p *Proc, what string) {
	c.waiters = append(c.waiters, p)
	p.Wait(what)
}

// Signal wakes the longest-waiting process at time t. It returns the woken
// process, or nil if none were waiting.
func (c *Cond) Signal(t Time) *Proc {
	for len(c.waiters) > 0 {
		p := c.waiters[0]
		c.waiters = c.waiters[1:]
		if p.WakeAt(t) {
			return p
		}
	}
	return nil
}

// Broadcast wakes all waiting processes at time t and returns how many were
// woken.
func (c *Cond) Broadcast(t Time) int {
	n := 0
	for _, p := range c.waiters {
		if p.WakeAt(t) {
			n++
		}
	}
	c.waiters = c.waiters[:0]
	return n
}

// Waiting returns the number of processes currently registered on the
// condition (some may already have been woken through other means).
func (c *Cond) Waiting() int { return len(c.waiters) }
