package pperfmark

// End-to-end record/replay equivalence: a replayed archive must reproduce
// the live session's entire analysis-plane output — Consultant report,
// judgement, query-plane state, Perfetto export — byte for byte.

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/faults"
	"pperf/internal/mpi"
	"pperf/internal/session"
	"pperf/internal/trace"
)

// snapshot renders everything a consumer can observe about a Result
// through its DataSource: the full query-plane output plus the rendered
// reports. Live and replayed snapshots of the same session must be equal.
func snapshot(t *testing.T, res *Result) string {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "program=%s impl=%s runtime=%v probes=%d coverage=%.4f\n",
		res.Program, res.Impl, res.RunTime, res.ProbeExecs, res.Coverage)
	for _, ev := range res.FaultLog {
		fmt.Fprintln(&b, "fault:", ev)
	}
	if res.PC != nil {
		b.WriteString(res.PC.Render())
	}
	ds := res.Source
	b.WriteString(ds.Hierarchy().Render())
	fmt.Fprintf(&b, "procs=%d live=%d lost=%d degradation=%q\n",
		ds.ProcessCount(), ds.LiveProcessCount(), ds.LostProcessCount(), ds.DegradationSummary())
	for _, p := range ds.Processes() {
		fmt.Fprintf(&b, "proc %s node=%s started=%v exited=%v end=%v lost=%v\n",
			p.Name, p.Node, p.Started, p.Exited, p.EndTime, p.Lost)
	}
	// Every verification/extra series, including its full per-bin CSV.
	csv := ds.(interface {
		ExportCSV(s *datasource.Series) string
	})
	series := map[string]*datasource.Series{
		"BytesSent": res.BytesSent, "PutOps": res.PutOps, "GetOps": res.GetOps,
		"AccOps": res.AccOps, "RMABytes": res.RMABytes,
	}
	for m, sr := range res.Extra {
		series["extra:"+m] = sr
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sr := series[n]
		if sr == nil {
			continue
		}
		fmt.Fprintf(&b, "series %s total=%.4f last=%v\n%s", n, sr.Total(), sr.LastSampleTime(), csv.ExportCSV(sr))
	}
	// The judged verdict.
	v := Judge(res)
	fmt.Fprintf(&b, "verdict pass=%v paper=%s details=%q problems=%q\n", v.Pass, v.PaperResult, v.Details, v.Problems)
	// The Perfetto export, counter tracks included.
	if res.Timeline != nil {
		var tr bytes.Buffer
		if err := trace.WriteChromeWith(&tr, res.Timeline, ds.CounterTracks()); err != nil {
			t.Fatal(err)
		}
		b.Write(tr.Bytes())
	}
	return b.String()
}

// recordAndReplay runs the program live with a recorder attached, replays
// the archive through a save/load cycle, and returns both results.
func recordAndReplay(t *testing.T, name string, opt RunOptions) (*Result, *Result) {
	t.Helper()
	rec := session.NewRecorder()
	opt.Record = rec
	live, err := Run(name, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/s.pparch"
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	a, err := session.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	return live, replayed
}

func diffSnapshots(t *testing.T, what, live, replayed string) {
	t.Helper()
	if live == replayed {
		return
	}
	// Locate the first divergence for a readable failure.
	i := 0
	for i < len(live) && i < len(replayed) && live[i] == replayed[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	end := func(s string) string {
		if i+120 < len(s) {
			return s[lo : i+120]
		}
		return s[lo:]
	}
	t.Errorf("%s: replay diverges from live at byte %d:\nlive    …%q\nreplay  …%q", what, i, end(live), end(replayed))
}

func TestReplayReproducesHealthyRun(t *testing.T) {
	live, replayed := recordAndReplay(t, "small-messages", RunOptions{
		Impl: mpi.LAM, Seed: 7, Trace: &trace.Config{},
		Metrics: []string{"msgs_sent"},
	})
	diffSnapshots(t, "small-messages", snapshot(t, live), snapshot(t, replayed))
	if replayed.Session != nil {
		t.Error("replayed result claims a live session")
	}
	if replayed.Timeline == nil {
		t.Error("traced run replayed without a timeline")
	}
}

func TestReplayReproducesFaultRun(t *testing.T) {
	plan, err := faults.Parse("t=2s kill-node node1")
	if err != nil {
		t.Fatal(err)
	}
	live, replayed := recordAndReplay(t, "small-messages", RunOptions{
		Impl: mpi.LAM, Seed: 7, Faults: plan,
	})
	liveSnap, repSnap := snapshot(t, live), snapshot(t, replayed)
	diffSnapshots(t, "small-messages+faults", liveSnap, repSnap)
	// The degraded run's partial-data markers must survive replay.
	if !bytes.Contains([]byte(liveSnap), []byte("[partial data]")) {
		t.Error("fault run produced no [partial data] markers")
	}
	if live.Coverage >= 1 || replayed.Coverage != live.Coverage {
		t.Errorf("coverage live=%v replayed=%v", live.Coverage, replayed.Coverage)
	}
	if len(replayed.FaultLog) == 0 {
		t.Error("fault log lost in replay")
	}
}

func TestReplayUnsupportedRun(t *testing.T) {
	// spawncount cannot run under MPICH; the skip must replay too.
	live, replayed := recordAndReplay(t, "spawncount", RunOptions{Impl: mpi.MPICH})
	if live.Unsupported == nil || replayed.Unsupported == nil {
		t.Fatalf("unsupported: live=%v replayed=%v", live.Unsupported, replayed.Unsupported)
	}
	if live.Unsupported.Error() != replayed.Unsupported.Error() {
		t.Errorf("messages differ: %q vs %q", live.Unsupported, replayed.Unsupported)
	}
}

// TestQueryPlaneDeterministic is the determinism audit's regression test:
// two identically-seeded live runs must produce identical full query
// output (hierarchy render, process lists, series CSVs, Consultant
// report, Perfetto export) — no map-iteration order may leak through.
func TestQueryPlaneDeterministic(t *testing.T) {
	run := func() string {
		res, err := Run("small-messages", RunOptions{Impl: mpi.LAM, Seed: 7, Trace: &trace.Config{}})
		if err != nil {
			t.Fatal(err)
		}
		return snapshot(t, res)
	}
	diffSnapshots(t, "determinism", run(), run())
}

// BenchmarkRunRecorderCold measures a full judged run with no recorder
// attached — the baseline showing the recording hooks cost nothing when
// cold (every hook is one nil test). Compare with BenchmarkRunRecording.
func BenchmarkRunRecorderCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run("small-messages", RunOptions{Impl: mpi.LAM, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunRecording(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		rec := session.NewRecorder()
		if _, err := Run("small-messages", RunOptions{Impl: mpi.LAM, Seed: 7, Record: rec}); err != nil {
			b.Fatal(err)
		}
		events += rec.EventCount()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
