package pperfmark

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"pperf/internal/consultant"
	"pperf/internal/frontend"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/session"
	"pperf/internal/sim"
)

// runInfo is the run description a recording stores in the archive
// header's Extra payload: everything Replay needs to re-drive the
// Performance Consultant against the recorded event stream, plus the
// live-only facts (fault log, probe counts) a replay cannot recompute.
type runInfo struct {
	Program string
	Impl    mpi.ImplKind
	Params  Params
	Seed    uint64
	Metrics []string

	DisablePC bool
	PC        consultant.Config

	Traced bool

	RunTime    sim.Time
	ProbeExecs int64
	FaultLog   []string

	// Unsupported carries the live run's "cannot run at all" message
	// (spawn on MPICH, passive target outside Reference), so replaying
	// such an archive reproduces the skip verdict.
	Unsupported string
}

// finishRecording stamps the archived run's description into the
// recorder's header. A no-op when the run is not recording.
func finishRecording(opt RunOptions, res *Result, pcCfg consultant.Config) {
	rec := opt.Record
	if rec == nil {
		return
	}
	info := runInfo{
		Program:    res.Program,
		Impl:       res.Impl,
		Params:     res.Params,
		Seed:       opt.Seed,
		Metrics:    opt.Metrics,
		DisablePC:  opt.DisablePC,
		PC:         pcCfg,
		Traced:     opt.Trace != nil,
		RunTime:    res.RunTime,
		ProbeExecs: res.ProbeExecs,
		FaultLog:   res.FaultLog,
	}
	if res.Unsupported != nil {
		info.Unsupported = res.Unsupported.Error()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&info); err != nil {
		// runInfo is all value types; an encode failure is a programming
		// error worth failing loudly on, not a recoverable condition.
		panic(fmt.Sprintf("pperfmark: encode run info: %v", err))
	}
	rec.SetExtra(buf.Bytes())
	rec.SetMeta("program", res.Program)
	rec.SetMeta("impl", res.Impl.String())
	rec.SetMeta("seed", fmt.Sprintf("%d", opt.Seed))
	// The experiment-store index (internal/perfdb) reads these without
	// decoding the harness payload.
	rec.SetMeta("procs", fmt.Sprintf("%d", res.Params.Procs))
	rec.SetMeta("nodes", fmt.Sprintf("%d", opt.Nodes))
	rec.SetMeta("runtime", res.RunTime.String())
	if opt.Faults != nil {
		rec.SetMeta("faults", opt.Faults.String())
	}
	// The fired-fault audit trail also lands in the header, one line per
	// entry, so store-level consumers (the diff plane's -since-fault
	// window anchor) can read fire times without decoding the harness
	// payload in Extra.
	if len(res.FaultLog) > 0 {
		rec.SetMeta("fault-log", strings.Join(res.FaultLog, "\n"))
	}
}

// ReplayOptions override pieces of the recorded analysis configuration
// for "what-if" replay: the same recorded event stream is re-analyzed
// under altered Performance Consultant thresholds, so a threshold change
// can be evaluated without re-running (or even having) the original
// cluster. Zero values keep the recorded configuration.
type ReplayOptions struct {
	// SyncThreshold, IOThreshold, CPUThreshold override the recorded
	// hypothesis-test fractions when > 0.
	SyncThreshold float64
	IOThreshold   float64
	CPUThreshold  float64
}

// override returns the recorded config with the non-zero overrides applied.
func (o ReplayOptions) override(cfg consultant.Config) consultant.Config {
	if o.SyncThreshold > 0 {
		cfg.SyncThreshold = o.SyncThreshold
	}
	if o.IOThreshold > 0 {
		cfg.IOThreshold = o.IOThreshold
	}
	if o.CPUThreshold > 0 {
		cfg.CPUThreshold = o.CPUThreshold
	}
	return cfg
}

// Replay re-runs the analysis plane of a recorded session offline with
// the recorded configuration: it rebuilds the DataSource view from the
// archive's event stream, re-drives the Performance Consultant on a fresh
// virtual clock, and returns a Result equivalent to the live one — same
// findings, same series, same hierarchy, same timeline — without
// simulating the cluster, the MPI implementation, or the daemons.
func Replay(a *session.Archive) (*Result, error) {
	return ReplayWith(a, ReplayOptions{})
}

// ReplayWith is Replay with what-if overrides applied over the recorded
// Consultant configuration (see ReplayOptions).
func ReplayWith(a *session.Archive, o ReplayOptions) (*Result, error) {
	if len(a.Header.Extra) == 0 {
		return nil, fmt.Errorf("pperfmark: archive carries no run description (not recorded by this harness?)")
	}
	var info runInfo
	if err := gob.NewDecoder(bytes.NewReader(a.Header.Extra)).Decode(&info); err != nil {
		return nil, fmt.Errorf("pperfmark: corrupt run description in archive: %v", err)
	}

	res := &Result{
		Program:    info.Program,
		Impl:       info.Impl,
		Params:     info.Params,
		RunTime:    info.RunTime,
		ProbeExecs: info.ProbeExecs,
		FaultLog:   info.FaultLog,
	}
	if info.Unsupported != "" {
		res.Unsupported = fmt.Errorf("%s", info.Unsupported)
		return res, nil
	}
	entry := Get(info.Program)
	if entry == nil {
		return nil, fmt.Errorf("pperfmark: archive records unknown program %q", info.Program)
	}

	rs := session.NewReplaySource(a)
	if info.Traced {
		// A traced live run has a timeline even if no shards arrived.
		rs.EnsureTimeline()
	}
	res.Source = rs

	// Re-enable the verification instrumentation in the live order; the
	// replay source serves each request from the recorded enables.
	whole := resource.WholeProgram()
	enable := func(dst **frontend.Series, expect func(Params) float64, metricName string) error {
		if expect == nil {
			return nil
		}
		sr, err := rs.EnableMetric(metricName, whole)
		if err != nil {
			return err
		}
		*dst = sr
		return nil
	}
	for _, e := range []struct {
		dst    **frontend.Series
		expect func(Params) float64
		metric string
	}{
		{&res.BytesSent, entry.ExpectedBytesSent, "msg_bytes_sent"},
		{&res.PutOps, entry.ExpectedPutOps, "rma_put_ops"},
		{&res.GetOps, entry.ExpectedGetOps, "rma_get_ops"},
		{&res.AccOps, entry.ExpectedAccOps, "rma_acc_ops"},
		{&res.RMABytes, entry.ExpectedRMABytes, "rma_bytes"},
	} {
		if err := enable(e.dst, e.expect, e.metric); err != nil {
			return nil, err
		}
	}
	res.Extra = map[string]*frontend.Series{}
	for _, m := range info.Metrics {
		sr, err := rs.EnableMetric(m, whole)
		if err != nil {
			return nil, err
		}
		res.Extra[m] = sr
	}

	// A fresh engine paces the Consultant exactly as the live one did:
	// evaluations fire on the same virtual-time grid, and each calls
	// Sync, which advances the replay to the matching recorded barrier.
	eng := sim.NewEngine(info.Seed)
	if !info.DisablePC {
		res.PC = consultant.New(rs, eng, o.override(info.PC))
		if err := res.PC.Start(); err != nil {
			return nil, err
		}
	}
	// The replay clock: a single proc sleeping for the recorded runtime
	// keeps the engine alive through the last live evaluation instant
	// (scheduled callbacks at a time T fire before a proc resuming at T).
	eng.StartProc("replay-clock", func(p *sim.Proc) {
		p.Sleep(sim.Duration(info.RunTime))
	})
	if err := eng.Run(); err != nil {
		return nil, err
	}
	// Apply the tail recorded after the last barrier (end-of-run sample
	// flushes, trace flushes, undelivered-span accounting).
	rs.Drain()

	res.Coverage = rs.Coverage()
	res.Timeline = rs.Timeline()
	return res, nil
}
