package pperfmark

// Cross-checks between the trace subsystem's critical-path analysis and the
// Performance Consultant: both observe the same run, so the function and
// process the path blames must appear in the Consultant's findings.

import (
	"testing"

	"pperf/internal/consultant"
	"pperf/internal/mpi"
	"pperf/internal/trace"
)

func runWithTrace(t *testing.T, name string) *Result {
	t.Helper()
	res, err := Run(name, RunOptions{Impl: mpi.LAM, Trace: &trace.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("no timeline")
	}
	return res
}

func TestCriticalPathAgreesWithConsultantSmallMessages(t *testing.T) {
	res := runWithTrace(t, "small-messages")
	cp := trace.Analyze(res.Timeline)
	if cp.Truncated {
		t.Error("walk hit the step cap")
	}
	fn, d := cp.Dominant()
	if fn != "MPI_Recv" && fn != "MPI_Send" {
		t.Fatalf("dominant function = %s (%v), want the p2p bottleneck", fn, d)
	}
	if !res.PC.HasFinding(consultant.HypSync, fn) {
		t.Errorf("critical path blames %s but the Consultant has no sync finding for it", fn)
	}
	proc, _ := cp.DominantResource()
	if !res.PC.HasFinding(consultant.HypSync, proc) {
		t.Errorf("critical path blames %s but the Consultant's sync findings never mention it", proc)
	}
}

func TestCriticalPathIntensiveServer(t *testing.T) {
	res := runWithTrace(t, "intensive-server")
	cp := trace.Analyze(res.Timeline)
	fn, d := cp.Dominant()
	switch fn {
	case "MPI_Recv":
		if !res.PC.HasFinding(consultant.HypSync, "MPI_Recv") {
			t.Error("path blames MPI_Recv; Consultant's sync findings do not")
		}
	case "compute":
		if !res.PC.TopLevelTrue(consultant.HypCPU) {
			t.Error("path blames compute; Consultant's CPU hypothesis is false")
		}
	default:
		t.Errorf("dominant function = %s (%v), want MPI_Recv or compute", fn, d)
	}
}
