package pperfmark

import (
	"testing"

	"pperf/internal/mpi"
)

func TestRegistryComplete(t *testing.T) {
	mpi1 := []string{"small-messages", "big-message", "wrong-way", "intensive-server",
		"random-barrier", "diffuse-procedure", "system-time", "hot-procedure", "sstwod"}
	mpi2 := []string{"allcount", "wincreate-blast", "winfence-sync", "winscpw-sync",
		"spawncount", "spawnsync", "spawnwin-sync", "oned"}
	ext := []string{"winlock-sync", "fileio-bound"}
	for _, n := range mpi1 {
		e := Get(n)
		if e == nil || e.MPI2 {
			t.Errorf("MPI-1 program %s missing or misfiled", n)
		}
	}
	for _, n := range mpi2 {
		e := Get(n)
		if e == nil || !e.MPI2 {
			t.Errorf("MPI-2 program %s missing or misfiled", n)
		}
	}
	for _, n := range ext {
		e := Get(n)
		if e == nil || !e.Extension {
			t.Errorf("extension program %s missing or misfiled", n)
		}
	}
	if len(MPI1Names()) != len(mpi1) || len(MPI2Names()) != len(mpi2) || len(ExtensionNames()) != len(ext) {
		t.Errorf("suite sizes: %d/%d/%d, want %d/%d/%d",
			len(MPI1Names()), len(MPI2Names()), len(ExtensionNames()), len(mpi1), len(mpi2), len(ext))
	}
}

func TestParamsMerge(t *testing.T) {
	d := Params{Iterations: 100, Procs: 4, MessageSize: 8}
	p := Params{Iterations: 5}.merged(d)
	if p.Iterations != 5 || p.Procs != 4 || p.MessageSize != 8 {
		t.Errorf("merged = %+v", p)
	}
}

func TestUnknownProgram(t *testing.T) {
	if _, _, err := Program("nope", Params{}); err == nil {
		t.Error("unknown program should error")
	}
	if _, err := Run("nope", RunOptions{Impl: mpi.LAM}); err == nil {
		t.Error("Run of unknown program should error")
	}
}

// judgePass runs a program with reduced iterations and asserts the verdict.
func judgePass(t *testing.T, name string, impl mpi.ImplKind, p Params) *Verdict {
	t.Helper()
	res, err := Run(name, RunOptions{Impl: impl, Params: p})
	if err != nil {
		t.Fatalf("%s/%s: %v", name, impl, err)
	}
	v := Judge(res)
	if !v.Pass {
		t.Errorf("%s/%s failed: %v\n%s", name, impl, v.Problems, res.PC.Render())
	}
	return v
}

func TestSmallMessagesLAM(t *testing.T) {
	v := judgePass(t, "small-messages", mpi.LAM, Params{Iterations: 15000})
	if len(v.Details) == 0 {
		t.Error("no details recorded")
	}
}

func TestSmallMessagesMPICHShowsIO(t *testing.T) {
	judgePass(t, "small-messages", mpi.MPICH, Params{Iterations: 15000})
}

func TestBigMessage(t *testing.T) {
	judgePass(t, "big-message", mpi.LAM, Params{Iterations: 800})
	judgePass(t, "big-message", mpi.MPICH, Params{Iterations: 800})
}

func TestWrongWay(t *testing.T) {
	judgePass(t, "wrong-way", mpi.LAM, Params{})
	judgePass(t, "wrong-way", mpi.MPICH, Params{})
}

func TestIntensiveServer(t *testing.T) {
	judgePass(t, "intensive-server", mpi.LAM, Params{Iterations: 100})
}

func TestRandomBarrier(t *testing.T) {
	judgePass(t, "random-barrier", mpi.LAM, Params{Iterations: 250})
	judgePass(t, "random-barrier", mpi.MPICH, Params{Iterations: 250})
}

func TestDiffuseProcedure(t *testing.T) {
	judgePass(t, "diffuse-procedure", mpi.LAM, Params{})
}

func TestSystemTimeExpectedFail(t *testing.T) {
	v := judgePass(t, "system-time", mpi.LAM, Params{})
	if v.PaperResult != "Fail" {
		t.Error("system-time should be recorded as the paper's designed failure")
	}
}

func TestHotProcedure(t *testing.T) {
	judgePass(t, "hot-procedure", mpi.LAM, Params{})
}

func TestSstwod(t *testing.T) {
	judgePass(t, "sstwod", mpi.LAM, Params{})
}

func TestAllcount(t *testing.T) {
	judgePass(t, "allcount", mpi.LAM, Params{})
	judgePass(t, "allcount", mpi.MPICH2, Params{})
}

func TestWincreateBlast(t *testing.T) {
	judgePass(t, "wincreate-blast", mpi.LAM, Params{})
}

func TestWinfenceSync(t *testing.T) {
	judgePass(t, "winfence-sync", mpi.LAM, Params{})
	judgePass(t, "winfence-sync", mpi.MPICH2, Params{})
}

func TestWinscpwSyncImplDifference(t *testing.T) {
	judgePass(t, "winscpw-sync", mpi.LAM, Params{})
	judgePass(t, "winscpw-sync", mpi.MPICH2, Params{})
}

func TestSpawncount(t *testing.T) {
	judgePass(t, "spawncount", mpi.LAM, Params{})
}

func TestSpawnsync(t *testing.T) {
	judgePass(t, "spawnsync", mpi.LAM, Params{})
}

func TestSpawnwinSync(t *testing.T) {
	judgePass(t, "spawnwin-sync", mpi.LAM, Params{})
}

func TestOned(t *testing.T) {
	judgePass(t, "oned", mpi.LAM, Params{})
	judgePass(t, "oned", mpi.MPICH2, Params{})
}

func TestWinlockSyncExtension(t *testing.T) {
	// The paper's unimplementable passive-target test, delivered on the
	// Reference personality.
	judgePass(t, "winlock-sync", mpi.Reference, Params{})
	// Under LAM (no passive target in 2004), it is skipped.
	res, err := Run("winlock-sync", RunOptions{Impl: mpi.LAM})
	if err != nil {
		t.Fatal(err)
	}
	if v := Judge(res); v.Skipped == "" {
		t.Error("winlock-sync under LAM should be skipped as unsupported")
	}
}

func TestFileioBound(t *testing.T) {
	judgePass(t, "fileio-bound", mpi.MPICH2, Params{})
	judgePass(t, "fileio-bound", mpi.LAM, Params{})
}

func TestSpawnProgramsSkippedOnMPICH2(t *testing.T) {
	res, err := Run("spawnsync", RunOptions{Impl: mpi.MPICH2})
	if err != nil {
		t.Fatal(err)
	}
	v := Judge(res)
	if v.Skipped == "" {
		t.Error("spawnsync under MPICH2 should be skipped as unsupported")
	}
}
