package pperfmark

// What-if replay: the same recorded event stream re-analyzed under
// altered Performance Consultant thresholds, so a threshold change can be
// evaluated without re-running the cluster.

import (
	"testing"

	"pperf/internal/consultant"
	"pperf/internal/mpi"
	"pperf/internal/session"
)

func TestWhatIfThresholdFlipsVerdict(t *testing.T) {
	rec := session.NewRecorder()
	if _, err := Run("small-messages", RunOptions{Impl: mpi.LAM, Seed: 7, Record: rec}); err != nil {
		t.Fatal(err)
	}
	a := rec.Archive()

	base, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	if !base.PC.TopLevelTrue(consultant.HypSync) {
		t.Fatal("baseline replay: ExcessiveSyncWaitingTime expected true")
	}

	// Raise the sync threshold above any achievable waiting fraction: the
	// identical archive must now test false.
	whatif, err := ReplayWith(a, ReplayOptions{SyncThreshold: 0.9999})
	if err != nil {
		t.Fatal(err)
	}
	if whatif.PC.TopLevelTrue(consultant.HypSync) {
		t.Error("what-if replay with SyncThreshold=0.9999: verdict did not flip to false")
	}
	// Untouched hypotheses keep their recorded configuration and verdicts.
	if whatif.PC.TopLevelTrue(consultant.HypIO) != base.PC.TopLevelTrue(consultant.HypIO) {
		t.Error("what-if sync override changed the io verdict")
	}
	if whatif.PC.TopLevelTrue(consultant.HypCPU) != base.PC.TopLevelTrue(consultant.HypCPU) {
		t.Error("what-if sync override changed the cpu verdict")
	}

	// The override lives in the replay, not the archive: a third replay
	// with no overrides reproduces the baseline exactly.
	again, err := Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	diffSnapshots(t, "replay after what-if", snapshot(t, base), snapshot(t, again))
}

func TestWhatIfZeroValuesKeepRecordedConfig(t *testing.T) {
	cfg := consultant.DefaultConfig()
	got := ReplayOptions{}.override(cfg)
	if got != cfg {
		t.Errorf("zero ReplayOptions changed the config: %+v vs %+v", got, cfg)
	}
	got = ReplayOptions{SyncThreshold: 0.5, IOThreshold: 0.6, CPUThreshold: 0.7}.override(cfg)
	if got.SyncThreshold != 0.5 || got.IOThreshold != 0.6 || got.CPUThreshold != 0.7 {
		t.Errorf("overrides not applied: %+v", got)
	}
}
