package pperfmark

import (
	"pperf/internal/mpi"
	"pperf/internal/sim"
)

// Extension programs beyond the paper's Table 3. The paper could not
// implement its passive-target test programs because neither LAM nor MPICH2
// supported passive-target synchronization at the time (§5.2.1.1); this
// reproduction carries a Reference personality that does, so the planned
// programs exist here as the paper's future work delivered. An MPI-I/O
// program likewise exercises the §3 discussion of I/O measurement.

func init() {
	register(&Entry{
		Name: "winlock-sync",
		MPI2: true,
		Description: "Passive-target synchronization: origins contend for an " +
			"exclusive lock on rank 0's window; waiting accrues in " +
			"MPI_Win_lock/MPI_Win_unlock (the paper's unimplemented passive-target test).",
		Defaults:     Params{Iterations: 200, TimeToWaste: 2, Procs: 3, MessageSize: 64, WasteUnit: 10 * sim.Millisecond},
		PaperParams:  "planned but unimplementable in 2004 (no passive-target support)",
		Make:         winlockSync,
		NeedsPassive: true,
		Extension:    true,
	})
	register(&Entry{
		Name: "fileio-bound",
		MPI2: true,
		Description: "Every rank writes and reads through MPI-I/O; the time " +
			"goes to I/O blocking, exercising the §3 MPI-I/O measurement discussion.",
		Defaults:    Params{Iterations: 600, MessageSize: 256 * 1024, Procs: 4},
		PaperParams: "discussed (§3) but not evaluated in the paper",
		Make:        fileioBound,
		Extension:   true,
	})
}

// winlockSync: origins lock rank 0's window exclusively, hold it while
// transferring (and computing briefly), unlock. Contention shows up as
// passive-target synchronization waiting time.
func winlockSync(p Params) mpi.Program {
	const mod = "winlocksync.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		win, err := c.WinCreate(r, p.MessageSize*c.Size(), 1, nil)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			win.SetName("LockedWin")
			// The target is not explicitly involved: it computes.
			for i := 0; i < p.Iterations; i++ {
				r.Call(mod, "target_work", func() { r.Compute(p.waste() / 4) })
			}
		} else {
			for i := 0; i < p.Iterations; i++ {
				r.Call(mod, "locked_update", func() {
					if err := win.Lock(mpi.LockExclusive, 0, 0); err != nil {
						panic(err)
					}
					win.Put(nil, p.MessageSize, mpi.Byte, 0, 0, p.MessageSize, mpi.Byte)
					r.Compute(p.waste()) // hold the lock while computing
					if err := win.Unlock(0); err != nil {
						panic(err)
					}
				})
			}
		}
		c.Barrier(r)
		win.Free()
	}
}

// fileioBound: collective open, then per-rank writes and reads.
func fileioBound(p Params) mpi.Program {
	const mod = "fileiobound.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		f, err := c.FileOpen(r, "dataset.out", mpi.ModeCreate|mpi.ModeRDWR, nil)
		if err != nil {
			panic(err)
		}
		stride := int64(p.MessageSize)
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "checkpoint", func() {
				off := int64(r.Rank())*stride + int64(i)*stride*int64(c.Size())
				if err := f.WriteAt(r, off, nil, p.MessageSize, mpi.Byte); err != nil {
					panic(err)
				}
			})
			if i%10 == 9 {
				r.Call(mod, "verify", func() {
					if err := f.ReadAt(r, 0, make([]byte, p.MessageSize), p.MessageSize, mpi.Byte); err != nil {
						panic(err)
					}
				})
			}
		}
		if err := f.Close(r); err != nil {
			panic(err)
		}
	}
}
