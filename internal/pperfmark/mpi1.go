package pperfmark

import (
	"fmt"

	"pperf/internal/mpi"
	"pperf/internal/sim"
)

// The MPI-1 half of PPerfMark (Table 2), ported from Grindstone. Paper
// parameters are noted per program; the runnable defaults are scaled so the
// whole suite executes quickly while leaving the Performance Consultant
// enough virtual time to converge.

func init() {
	register(&Entry{
		Name: "small-messages",
		Description: "Many small messages from client ranks to a rank-0 " +
			"server; the clients' sends throttle on the overloaded server.",
		Defaults:    Params{Iterations: 30000, MessageSize: 4, Procs: 6},
		PaperParams: "10,000,000 iterations, 4-byte messages, 6 processes on 3 nodes",
		Make:        smallMessages,
		ExpectedBytesSent: func(p Params) float64 {
			return float64(p.Iterations * (p.Procs - 1) * p.MessageSize)
		},
	})
	register(&Entry{
		Name: "big-message",
		Description: "Very large messages exchanged between two processes; " +
			"the bottleneck is rendezvous setup and transfer of each message.",
		Defaults:    Params{Iterations: 1500, MessageSize: 100000, Procs: 2},
		PaperParams: "1000 iterations, 100,000-byte messages, 2 processes",
		Make:        bigMessage,
		ExpectedBytesSent: func(p Params) float64 {
			return float64(2 * p.Iterations * p.MessageSize)
		},
	})
	register(&Entry{
		Name: "wrong-way",
		Description: "The receiver expects messages in the opposite order " +
			"from how the sender sends them, forcing unexpected-queue buildup.",
		Defaults:    Params{Iterations: 120, Messages: 600, MessageSize: 4, Procs: 2},
		PaperParams: "18,000 iterations, 1000 messages",
		Make:        wrongWay,
		ExpectedBytesSent: func(p Params) float64 {
			return float64(p.Iterations * p.Messages * p.MessageSize)
		},
	})
	register(&Entry{
		Name: "intensive-server",
		Description: "Clients repeatedly send a request and wait for the " +
			"reply from a deliberately slow rank-0 server.",
		Defaults:    Params{Iterations: 120, TimeToWaste: 1, Procs: 6, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "10,000 iterations, TIMETOWASTE=1, 6 processes on 3 nodes",
		Make:        intensiveServer,
	})
	register(&Entry{
		Name: "random-barrier",
		Description: "Each iteration a pseudo-random process wastes time " +
			"while the others wait in MPI_Barrier: a moving load imbalance.",
		Defaults:    Params{Iterations: 300, TimeToWaste: 5, Procs: 6, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "800 iterations, TIMETOWASTE=5, 6 processes on 3 nodes",
		Make:        randomBarrier,
	})
	register(&Entry{
		Name: "diffuse-procedure",
		Description: "bottleneckProcedure consumes one CPU's worth of time, " +
			"rotated round-robin across processes waiting in MPI_Barrier.",
		Defaults:    Params{Iterations: 500, Procs: 4, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "2000 iterations, 4 processes on 2 nodes",
		Make:        diffuseProcedure,
	})
	register(&Entry{
		Name: "system-time",
		Description: "The program spends its time in system calls, which " +
			"the tool's default metrics do not measure (the suite's designed failure).",
		Defaults:    Params{Iterations: 400, Procs: 4, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "10,000 iterations, 4 processes on 2 nodes",
		Make:        systemTime,
	})
	register(&Entry{
		Name: "hot-procedure",
		Description: "A single computational bottleneck in " +
			"bottleneckProcedure among twelve irrelevant procedures.",
		Defaults:    Params{Iterations: 500, Procs: 4, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "1,000,000 iterations, 4 processes on 2 nodes",
		Make:        hotProcedure,
	})
	register(&Entry{
		Name: "sstwod",
		Description: "The Using-MPI 2-D Poisson solver: neighbour exchange " +
			"in exchng2 over MPI_Sendrecv plus an MPI_Allreduce per sweep.",
		Defaults:    Params{Iterations: 400, MessageSize: 8192, Procs: 4, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "the book's example, run until convergence",
		Make:        sstwod,
	})
}

const tagWork = 0

// smallMessages: clients stream tiny messages at a rank-0 server.
func smallMessages(p Params) mpi.Program {
	const mod = "smallmessages.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			total := p.Iterations * (r.Size() - 1)
			for i := 0; i < total; i++ {
				r.Call(mod, "Grecv_message", func() {
					c.Recv(r, nil, p.MessageSize, mpi.Byte, mpi.AnySource, tagWork)
				})
			}
			return
		}
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "Gsend_message", func() {
				c.Send(r, nil, p.MessageSize, mpi.Byte, 0, tagWork)
			})
		}
	}
}

// bigMessage: two ranks exchange large (rendezvous) messages.
func bigMessage(p Params) mpi.Program {
	const mod = "bigmessage.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		other := 1 - r.Rank()
		for i := 0; i < p.Iterations; i++ {
			if r.Rank() == 0 {
				r.Call(mod, "Gsend_message", func() {
					c.Send(r, nil, p.MessageSize, mpi.Byte, other, tagWork)
				})
				r.Call(mod, "Grecv_message", func() {
					c.Recv(r, nil, p.MessageSize, mpi.Byte, other, tagWork)
				})
			} else {
				r.Call(mod, "Grecv_message", func() {
					c.Recv(r, nil, p.MessageSize, mpi.Byte, other, tagWork)
				})
				r.Call(mod, "Gsend_message", func() {
					c.Send(r, nil, p.MessageSize, mpi.Byte, other, tagWork)
				})
			}
		}
	}
}

// wrongWay: rank 0 sends tags ascending; rank 1 receives them descending.
func wrongWay(p Params) mpi.Program {
	const mod = "wrongway.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < p.Iterations; i++ {
			if r.Rank() == 0 {
				r.Call(mod, "Gsend_message", func() {
					for m := 0; m < p.Messages; m++ {
						c.Send(r, nil, p.MessageSize, mpi.Byte, 1, m)
					}
				})
			} else {
				r.Call(mod, "Grecv_message", func() {
					// The wrong way: ask for the newest tag first, so the
					// receive blocks until the whole burst has arrived and
					// the unexpected queue holds Messages-1 entries.
					for m := p.Messages - 1; m >= 0; m-- {
						c.Recv(r, nil, p.MessageSize, mpi.Byte, 0, m)
					}
				})
			}
		}
	}
}

// intensiveServer: request/reply against a server that wastes time.
func intensiveServer(p Params) mpi.Program {
	const mod = "intensiveserver.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := r.Size()
		if r.Rank() == 0 {
			for i := 0; i < p.Iterations*(n-1); i++ {
				rq, _ := c.Recv(r, nil, 4, mpi.Byte, mpi.AnySource, 1)
				r.Call(mod, "waste_time", func() { r.Compute(p.waste()) })
				c.Send(r, nil, 4, mpi.Byte, rq.Source(), 2)
			}
			return
		}
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "Gsend_message", func() {
				c.Send(r, nil, 4, mpi.Byte, 0, 1)
			})
			r.Call(mod, "Grecv_message", func() {
				c.Recv(r, nil, 4, mpi.Byte, 0, 2)
			})
		}
	}
}

// randomBarrier: a pseudo-random rank wastes, everyone barriers. The waster
// sequence is a deterministic hash so every rank agrees without
// communication, as the original uses a shared seed.
func randomBarrier(p Params) mpi.Program {
	const mod = "randombarrier.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := r.Size()
		for i := 0; i < p.Iterations; i++ {
			// Every process does the iteration's real work; one additionally
			// wastes. The work:waste ratio reproduces the paper's ≈61%
			// average inclusive synchronization time (Fig 18).
			r.Call(mod, "do_work", func() { r.Compute(3 * p.waste() / 10) })
			waster := int(uint32(i)*2654435761%uint32(n*7919)) % n
			if waster == r.Rank() {
				r.Call(mod, "waste_time", func() { r.Compute(p.waste()) })
			}
			c.Barrier(r)
		}
	}
}

// diffuseProcedure: the bottleneck procedure rotates round-robin, so it
// consumes exactly one CPU's worth across the application.
func diffuseProcedure(p Params) mpi.Program {
	const mod = "diffuseprocedure.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := r.Size()
		for i := 0; i < p.Iterations; i++ {
			if i%n == r.Rank() {
				r.Call(mod, "bottleneckProcedure", func() { r.Compute(p.WasteUnit) })
			}
			c.Barrier(r)
		}
	}
}

// systemTime: all the time goes to system calls; an occasional barrier keeps
// it a real MPI program.
func systemTime(p Params) mpi.Program {
	const mod = "systemtime.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "do_syscalls", func() { r.SystemCompute(p.WasteUnit) })
			if i%100 == 99 {
				c.Barrier(r)
			}
		}
	}
}

// hotProcedure: one hot procedure, twelve cold ones.
func hotProcedure(p Params) mpi.Program {
	const mod = "hotprocedure.c"
	return func(r *mpi.Rank, _ []string) {
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "bottleneckProcedure", func() { r.Compute(p.WasteUnit) })
			for k := 0; k < 12; k++ {
				r.Call(mod, fmt.Sprintf("irrelevantProcedure%d", k), func() {
					r.Compute(p.WasteUnit / 1000)
				})
			}
		}
	}
}

// sstwod: ring-decomposed sweep with neighbour Sendrecv in exchng2 and a
// per-sweep Allreduce; a mild load imbalance makes communication the
// bottleneck, as in the book's tuning lesson.
func sstwod(p Params) mpi.Program {
	const mod = "sstwod.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := r.Size()
		up := (r.Rank() + 1) % n
		down := (r.Rank() - 1 + n) % n
		base := p.WasteUnit / 4
		imbalanced := func(phase int, extra sim.Duration) {
			// Boundary-condition work moves around the decomposition, so
			// the halo exchange and the residual reduction both absorb
			// waiting time — the book's tuning lesson.
			d := base
			if phase%n == r.Rank() {
				d += extra
			}
			r.Compute(d)
		}
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "compute", func() { imbalanced(i, 3*base) })
			r.Call(mod, "exchng2", func() {
				c.Sendrecv(r, nil, p.MessageSize, mpi.Byte, up, 4,
					nil, p.MessageSize, mpi.Byte, down, 4)
				c.Sendrecv(r, nil, p.MessageSize, mpi.Byte, down, 5,
					nil, p.MessageSize, mpi.Byte, up, 5)
			})
			r.Call(mod, "compute", func() { imbalanced(i+1, 2*base) })
			if _, err := c.Allreduce(r, []float64{1.0 / float64(i+1)}, mpi.Double, mpi.OpSum); err != nil {
				panic(err)
			}
		}
	}
}
