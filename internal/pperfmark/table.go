package pperfmark

import (
	"fmt"
	"strings"

	"pperf/internal/mpi"
)

// TableRow is one judged program under one implementation.
type TableRow struct {
	Verdict *Verdict
	Err     error
}

// RunTable runs the given suite half under each implementation and returns
// the rows, reproducing Table 2 (mpi2=false) or Table 3 (mpi2=true).
func RunTable(mpi2 bool, impls []mpi.ImplKind, base RunOptions) []TableRow {
	names := MPI1Names()
	if mpi2 {
		names = MPI2Names()
	}
	var rows []TableRow
	for _, name := range names {
		for _, impl := range impls {
			opt := base
			opt.Impl = impl
			res, err := Run(name, opt)
			if err != nil {
				rows = append(rows, TableRow{Err: fmt.Errorf("%s/%s: %w", name, impl, err)})
				continue
			}
			rows = append(rows, TableRow{Verdict: Judge(res)})
		}
	}
	return rows
}

// RenderTable formats judged rows like the paper's Tables 2 and 3.
func RenderTable(title string, rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "%-18s %-8s %-6s %s\n", "Program", "Impl", "Result", "Details")
	for _, row := range rows {
		if row.Err != nil {
			fmt.Fprintf(&b, "%-18s %-8s %-6s %v\n", "-", "-", "ERROR", row.Err)
			continue
		}
		v := row.Verdict
		result := "Pass"
		if !v.Pass {
			result = "FAIL"
		} else if v.PaperResult == "Fail" {
			result = "Fail*" // matches the paper's designed failure
		}
		details := strings.Join(v.Details, "; ")
		if v.Skipped != "" {
			result = "skip"
			details = v.Skipped
		}
		if len(v.Problems) > 0 {
			details = "PROBLEMS: " + strings.Join(v.Problems, "; ")
		}
		fmt.Fprintf(&b, "%-18s %-8s %-6s %s\n", v.Program, v.Impl, result, details)
	}
	return b.String()
}
