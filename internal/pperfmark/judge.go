package pperfmark

import (
	"fmt"
	"math"
	"strings"

	"pperf/internal/consultant"
	"pperf/internal/core"
	"pperf/internal/daemon"
	"pperf/internal/datasource"
	"pperf/internal/faults"
	"pperf/internal/frontend"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/session"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// RunOptions configure a judged suite run.
type RunOptions struct {
	Impl   mpi.ImplKind
	Params Params
	Nodes  int
	CPUs   int
	Seed   uint64
	// Spawn selects the tool's dynamic-process-creation method.
	Spawn daemon.SpawnMethod
	// PC overrides the Performance Consultant configuration; nil selects
	// the scaled defaults.
	PC *consultant.Config
	// DisablePC runs without the Performance Consultant (for histogram
	// experiments that only need metric series).
	DisablePC bool
	// Metrics lists extra whole-program metric series to enable before
	// launch, retrievable from Result.Extra.
	Metrics []string
	// Faults arms a fault-injection plan on the session (nil = healthy run,
	// byte-identical to a build without fault support).
	Faults *faults.Plan
	// Trace arms the event-tracing subsystem (nil = no tracing, runs are
	// byte-identical to a build without trace support).
	Trace *trace.Config
	// Record, when non-nil, captures the run's analysis-plane event stream
	// into a session archive replayable with Replay (nil = no recording,
	// runs are byte-identical to a build without session support). Either
	// the in-memory session.Recorder or perfdb's streaming recorder works;
	// Run finalizes the recorder's header, the caller saves/closes it.
	// Assign only non-nil concrete recorders (a typed-nil pointer in the
	// interface would defeat the nil checks).
	Record session.Sink
}

// ScaledPCConfig is the Performance Consultant configuration used for the
// scaled-down suite runs: everything shrinks together (sampling 0.2 s→50 ms,
// evaluation 1 s→250 ms), preserving the ratios of the paper's setup.
func ScaledPCConfig() consultant.Config {
	cfg := consultant.DefaultConfig()
	cfg.EvalInterval = 250 * sim.Millisecond
	cfg.PruneEvals = 10
	return cfg
}

// Result is a completed tool-observed run of one suite program.
type Result struct {
	Program string
	Impl    mpi.ImplKind
	Params  Params
	Session *core.Session
	// Source is the analysis plane the run's findings were (or, for a
	// replayed archive, are) read from: the live front end or a
	// ReplaySource. Judge and the CLI query through it so they work
	// identically on live and replayed results.
	Source datasource.DataSource
	PC     *consultant.Consultant
	// Verification series enabled for the program's expected totals.
	BytesSent *frontend.Series
	PutOps    *frontend.Series
	GetOps    *frontend.Series
	AccOps    *frontend.Series
	RMABytes  *frontend.Series
	// Extra holds the series requested via RunOptions.Metrics.
	Extra map[string]*frontend.Series
	// RunTime is the program's virtual wall-clock duration.
	RunTime sim.Time
	// ProbeExecs totals probe executions across daemons (carried on the
	// Result so replayed runs can report it without a live Session).
	ProbeExecs int64
	// Coverage is the fraction of processes still reporting at the end of
	// the run (1.0 for a healthy run; < 1.0 after injected failures).
	Coverage float64
	// FaultLog lists the injected events that fired (empty without a plan).
	FaultLog []string
	// Timeline is the merged trace timeline (nil unless RunOptions.Trace).
	Timeline *trace.Timeline
	// Unsupported is set when the implementation cannot run the program at
	// all (spawn on MPICH/MPICH2), mirroring the paper's restrictions.
	Unsupported error
}

// Run executes one suite program under the full tool (daemons, front end,
// Performance Consultant) and returns the observed results.
func Run(name string, opt RunOptions) (*Result, error) {
	entry := Get(name)
	if entry == nil {
		return nil, fmt.Errorf("pperfmark: unknown program %q", name)
	}
	prog, params, err := Program(name, opt.Params)
	if err != nil {
		return nil, err
	}
	if opt.Nodes == 0 {
		// The paper's runs place at most two ranks per node; default to the
		// paper's layouts (2 procs → one per node; 6 procs → 2 per node).
		switch {
		case strings.HasPrefix(name, "spawn"):
			opt.Nodes = params.Children + 1
		case params.Procs <= 2:
			opt.Nodes = 2
		default:
			opt.Nodes = (params.Procs + 1) / 2
		}
	}
	if opt.CPUs == 0 {
		opt.CPUs = 2
		if params.Procs <= opt.Nodes {
			opt.CPUs = 1 // one rank per node
		}
	}

	dcfg := daemon.DefaultConfig()
	dcfg.SampleInterval = 50 * sim.Millisecond
	dcfg.Spawn = opt.Spawn
	// The effective Consultant configuration, hoisted so recording can
	// archive it even though the Consultant itself starts after launch.
	pcCfg := ScaledPCConfig()
	if opt.PC != nil {
		pcCfg = *opt.PC
	}
	if name == "diffuse-procedure" && opt.PC == nil {
		// §5.1.6: the 25%-per-process bottleneck needs the CPU
		// threshold lowered to 0.2 before the Consultant reports it.
		pcCfg.CPUThreshold = 0.2
	}

	s, err := core.NewSession(core.Options{
		Impl:        opt.Impl,
		Nodes:       opt.Nodes,
		CPUsPerNode: opt.CPUs,
		Seed:        opt.Seed,
		Daemon:      &dcfg,
		BinWidth:    50 * sim.Millisecond,
		Faults:      opt.Faults,
		Trace:       opt.Trace,
		Recorder:    opt.Record,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	res := &Result{Program: name, Impl: opt.Impl, Params: params, Session: s, Source: s.FE}

	// The spawn-based programs need an implementation with dynamic process
	// creation, as §5.2.2 notes (the paper uses only LAM for them).
	if strings.HasPrefix(name, "spawn") && !s.World.Impl.SupportsSpawn {
		res.Unsupported = &mpi.ErrUnsupported{Impl: opt.Impl, Feature: "dynamic process creation"}
		finishRecording(opt, res, pcCfg)
		return res, nil
	}
	// Passive-target programs were unimplementable in 2004; they run only
	// under the Reference personality (§5.2.1.1).
	if entry.NeedsPassive && !s.World.Impl.SupportsPassiveTarget {
		res.Unsupported = &mpi.ErrUnsupported{Impl: opt.Impl, Feature: "passive target synchronization"}
		finishRecording(opt, res, pcCfg)
		return res, nil
	}

	s.Register(name, prog)

	// Verification instrumentation for the program's known totals.
	whole := resource.WholeProgram()
	if entry.ExpectedBytesSent != nil {
		res.BytesSent = s.MustEnable("msg_bytes_sent", whole)
	}
	if entry.ExpectedPutOps != nil {
		res.PutOps = s.MustEnable("rma_put_ops", whole)
	}
	if entry.ExpectedGetOps != nil {
		res.GetOps = s.MustEnable("rma_get_ops", whole)
	}
	if entry.ExpectedAccOps != nil {
		res.AccOps = s.MustEnable("rma_acc_ops", whole)
	}
	if entry.ExpectedRMABytes != nil {
		res.RMABytes = s.MustEnable("rma_bytes", whole)
	}
	res.Extra = map[string]*frontend.Series{}
	for _, m := range opt.Metrics {
		sr, err := s.Enable(m, whole)
		if err != nil {
			return nil, err
		}
		res.Extra[m] = sr
	}

	if err := s.Launch(name, params.Procs, nil); err != nil {
		return nil, err
	}
	if !opt.DisablePC {
		res.PC = consultant.New(s.FE, s.Eng, pcCfg)
		if err := res.PC.Start(); err != nil {
			return nil, err
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	res.RunTime = s.Eng.Now()
	res.ProbeExecs = s.ProbeExecutions()
	res.Coverage = s.FE.Coverage()
	if s.Injector != nil {
		res.FaultLog = s.Injector.Log()
	}
	res.Timeline = s.FE.Timeline()
	finishRecording(opt, res, pcCfg)
	return res, nil
}

// Verdict is the judged outcome of one run — a row of Table 2 or 3.
type Verdict struct {
	Program string
	Impl    mpi.ImplKind
	// Pass means the tool behaved as the paper reports for this program
	// (including system-time, whose "correct" behaviour is failing to find
	// the bottleneck).
	Pass bool
	// PaperResult is the pass/fail the paper's Table records.
	PaperResult string
	// Details summarizes what was (or was not) found.
	Details []string
	// Problems lists expectation mismatches (empty when Pass).
	Problems []string
	// Skipped is non-empty when the implementation cannot run the program.
	Skipped string
}

// Judge evaluates a Result against the paper's expectations for the program.
func Judge(res *Result) *Verdict {
	v := &Verdict{Program: res.Program, Impl: res.Impl, PaperResult: "Pass"}
	if res.Unsupported != nil {
		v.Skipped = res.Unsupported.Error()
		v.Pass = true
		return v
	}
	pc := res.PC
	want := func(ok bool, detail, problem string) {
		if ok {
			v.Details = append(v.Details, detail)
		} else {
			v.Problems = append(v.Problems, problem)
		}
	}
	findSync := func(substr string) bool { return pc.HasFinding(consultant.HypSync, substr) }
	findCPU := func(substr string) bool { return pc.HasFinding(consultant.HypCPU, substr) }
	checkTotal := func(series *frontend.Series, expect func(Params) float64, what string) {
		if series == nil || expect == nil {
			return
		}
		wantV, got := expect(res.Params), series.Total()
		want(math.Abs(got-wantV) < 0.5,
			fmt.Sprintf("counted %s = %.0f (expected %.0f)", what, got, wantV),
			fmt.Sprintf("%s = %.0f, expected %.0f", what, got, wantV))
	}
	e := Get(res.Program)
	checkTotal(res.BytesSent, e.ExpectedBytesSent, "message bytes sent")
	checkTotal(res.PutOps, e.ExpectedPutOps, "Put ops")
	checkTotal(res.GetOps, e.ExpectedGetOps, "Get ops")
	checkTotal(res.AccOps, e.ExpectedAccOps, "Accumulate ops")
	checkTotal(res.RMABytes, e.ExpectedRMABytes, "RMA bytes")

	switch res.Program {
	case "small-messages":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("Gsend_message"), "drilled into Gsend_message", "Gsend_message not found")
		want(findSync("MPI_Send"), "found MPI_Send", "MPI_Send not found")
		want(findSync("/SyncObject/Message/comm-"), "identified the communicator", "communicator not identified")
		if res.Impl == mpi.MPICH {
			want(pc.TopLevelTrue(consultant.HypIO), "ExcessiveIOBlockingTime true (socket transport)", "IO hypothesis false under MPICH")
		}
	case "big-message":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("Gsend_message") || findSync("Grecv_message"),
			"drilled into Gsend_message/Grecv_message", "send/recv wrappers not found")
		want(findSync("MPI_Send") || findSync("MPI_Recv"), "found MPI_Send/MPI_Recv", "MPI p2p functions not found")
	case "wrong-way":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("Gsend_message") || findSync("Grecv_message"),
			"send_message/recv_message are the bottlenecks", "wrappers not found")
		want(findSync("MPI_Send") || findSync("MPI_Recv"), "found MPI_Send/MPI_Recv", "p2p functions not found")
	case "intensive-server":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("Grecv_message"), "drilled through Grecv_message", "Grecv_message not found")
		want(findSync("MPI_Recv"), "found MPI_Recv", "MPI_Recv not found")
		want(pc.TopLevelTrue(consultant.HypCPU), "CPUBound true", "CPU hypothesis false")
	case "random-barrier":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("MPI_Barrier"), "found MPI_Barrier", "MPI_Barrier not found")
		want(pc.TopLevelTrue(consultant.HypCPU), "CPUBound true", "CPU hypothesis false")
		want(findCPU("waste_time"), "pinpointed waste_time", "waste_time not found")
		if res.Impl == mpi.MPICH {
			want(findSync("MPI_Sendrecv"), "exposed PMPI_Sendrecv inside the barrier", "barrier internals not exposed")
		}
	case "diffuse-procedure":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("MPI_Barrier"), "found MPI_Barrier", "MPI_Barrier not found")
		want(findCPU("bottleneckProcedure"), "found bottleneckProcedure with CPU threshold 0.2", "bottleneckProcedure not found")
	case "system-time":
		v.PaperResult = "Fail"
		want(!pc.AnyTrue(), "all hypotheses tested false (no system-time metrics)", "a hypothesis unexpectedly tested true")
	case "hot-procedure":
		want(pc.TopLevelTrue(consultant.HypCPU), "CPUBound true", "CPU hypothesis false")
		want(findCPU("bottleneckProcedure"), "CPU bound in bottleneckProcedure", "bottleneckProcedure not found")
		want(!findCPU("irrelevantProcedure"), "irrelevant procedures not implicated", "an irrelevantProcedure was implicated")
	case "sstwod":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("exchng2"), "drilled into exchng2", "exchng2 not found")
		want(findSync("MPI_Sendrecv"), "found MPI_Sendrecv", "MPI_Sendrecv not found")
		want(findSync("MPI_Allreduce"), "found MPI_Allreduce", "MPI_Allreduce not found")
	case "allcount":
		// The totals checks above are the test.
		want(res.Source.Hierarchy().FindPath("/SyncObject/Window/0-1") != nil,
			"window incorporated into the resource hierarchy", "window resource missing")
	case "wincreate-blast":
		judgeWincreateBlast(res, v)
	case "winfence-sync":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("MPI_Win_fence"), "ranks wait in MPI_Win_fence", "MPI_Win_fence not found")
		want(findSync("/SyncObject/Window/"), "identified the RMA window", "window not identified")
		want(findCPU("waste_time"), "rank 0 CPU bound in waste_time", "waste_time not found")
	case "winscpw-sync":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		if res.Impl == mpi.LAM {
			want(findSync("MPI_Win_start"), "origins block in MPI_Win_start (LAM)", "MPI_Win_start not found")
		} else {
			want(findSync("MPI_Win_complete"), "origins block in MPI_Win_complete (MPICH2)", "MPI_Win_complete not found")
		}
		want(findSync("/SyncObject/Window/"), "identified the RMA window", "window not identified")
		want(findCPU("waste_time"), "rank 0 CPU bound in waste_time", "waste_time not found")
	case "spawncount":
		judgeSpawncount(res, v)
	case "spawnsync":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("childfunction"), "children wait inside childfunction", "childfunction not found")
		want(findSync("MPI_Recv"), "children wait in MPI_Recv", "MPI_Recv not found")
		want(findCPU("parentfunction"), "parent CPU bound in parentfunction", "parentfunction not found")
	case "spawnwin-sync":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("MPI_Win_fence"), "children wait in MPI_Win_fence", "MPI_Win_fence not found")
		want(findCPU("parentfunction"), "parent CPU bound in parentfunction", "parentfunction not found")
		if res.Impl == mpi.LAM {
			want(findSync("/SyncObject/Message") || findSync("MPI_Isend") || findSync("MPI_Waitall"),
				"message-passing sync from LAM's Isend/Waitall fence", "LAM fence message traffic not found")
		}
		named := false
		res.Source.Hierarchy().Root().Walk(func(n *resource.Node) {
			if n.DisplayName() == "ParentChildWindow" {
				named = true
			}
		})
		want(named, "friendly window name displayed", "window name missing")
	case "winlock-sync":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("MPI_Win_lock") || findSync("MPI_Win_unlock"),
			"origins contend in MPI_Win_lock/MPI_Win_unlock", "passive-target waiting not found")
		want(findSync("/SyncObject/Window/"), "identified the RMA window", "window not identified")
	case "fileio-bound":
		want(pc.TopLevelTrue(consultant.HypIO), "ExcessiveIOBlockingTime true", "IO hypothesis false")
		want(pc.HasFinding(consultant.HypIO, "MPI_File_write_at") ||
			pc.HasFinding(consultant.HypIO, "checkpoint"),
			"drilled into the MPI-I/O writes", "I/O code not found")
	case "oned":
		want(pc.TopLevelTrue(consultant.HypSync), "ExcessiveSyncWaitingTime true", "sync hypothesis false")
		want(findSync("exchng1"), "drilled into exchng1", "exchng1 not found")
		want(findSync("MPI_Win_fence"), "found MPI_Win_fence", "MPI_Win_fence not found")
		if res.Impl == mpi.LAM {
			want(findSync("/SyncObject/Barrier"), "LAM: Barrier sync object implicated (fence is a barrier)", "Barrier not implicated under LAM")
		}
	}
	v.Pass = len(v.Problems) == 0
	return v
}

func judgeWincreateBlast(res *Result, v *Verdict) {
	h := res.Source.Hierarchy()
	winRoot := h.Find(resource.SyncObject, resource.Window)
	total, retired := 0, 0
	seen := map[string]bool{}
	dups := false
	for _, w := range winRoot.Children() {
		total++
		if w.Retired() {
			retired++
		}
		if seen[w.Name()] {
			dups = true
		}
		seen[w.Name()] = true
	}
	wantWindows := res.Params.Windows
	if total == wantWindows && !dups {
		v.Details = append(v.Details, fmt.Sprintf("all %d windows detected with unique N-M ids", total))
	} else {
		v.Problems = append(v.Problems, fmt.Sprintf("windows detected = %d (dups=%v), want %d", total, dups, wantWindows))
	}
	if retired == wantWindows {
		v.Details = append(v.Details, "all windows retired after MPI_Win_free")
	} else {
		v.Problems = append(v.Problems, fmt.Sprintf("retired = %d, want %d", retired, wantWindows))
	}
}

func judgeSpawncount(res *Result, v *Verdict) {
	count := 0
	res.Source.Hierarchy().Find(resource.Machine).Walk(func(n *resource.Node) {
		if strings.Contains(n.Name(), "spawncount-child{") {
			count++
		}
	})
	if count == res.Params.Children {
		v.Details = append(v.Details, fmt.Sprintf("all %d spawned processes incorporated", count))
	} else {
		v.Problems = append(v.Problems, fmt.Sprintf("spawned processes detected = %d, want %d", count, res.Params.Children))
	}
}
