// Package pperfmark implements PPerfMark, the performance-tool benchmark
// suite the paper introduces (§5): a port of the Grindstone PVM test suite
// to MPI-1, extended with new MPI-2 programs for RMA, dynamic process
// creation, and window lifecycle. Each program has a precisely known
// behaviour — a synchronization bottleneck in a named function, a
// computational bottleneck, known message/byte/RMA-operation counts — so a
// performance tool can be judged by whether it finds what is planted
// (Tables 2 and 3).
package pperfmark

import (
	"fmt"
	"sort"

	"pperf/internal/mpi"
	"pperf/internal/sim"
)

// Params configures a PPerfMark program. The zero value of any field means
// "use the program's default". The paper's parameter values (§5.1, §5.2)
// are retained in each program's registry entry as PaperParams; the runnable
// defaults are scaled down so a full suite executes in seconds of wall time,
// with the scaling recorded in EXPERIMENTS.md.
type Params struct {
	// Iterations is the main loop count.
	Iterations int
	// MessageSize is the per-message payload in bytes.
	MessageSize int
	// Messages is the inner per-iteration message count (wrong-way).
	Messages int
	// TimeToWaste is the relative busy-work amount (TIMETOWASTE), in
	// WasteUnit units.
	TimeToWaste int
	// Procs is the MPI process count.
	Procs int
	// WasteUnit is the duration of one TimeToWaste unit.
	WasteUnit sim.Duration
	// Windows is the window count for wincreate-blast.
	Windows int
	// Children is the spawned process count for the spawn programs.
	Children int
}

// merged fills zero fields of p from d.
func (p Params) merged(d Params) Params {
	if p.Iterations == 0 {
		p.Iterations = d.Iterations
	}
	if p.MessageSize == 0 {
		p.MessageSize = d.MessageSize
	}
	if p.Messages == 0 {
		p.Messages = d.Messages
	}
	if p.TimeToWaste == 0 {
		p.TimeToWaste = d.TimeToWaste
	}
	if p.Procs == 0 {
		p.Procs = d.Procs
	}
	if p.WasteUnit == 0 {
		p.WasteUnit = d.WasteUnit
	}
	if p.Windows == 0 {
		p.Windows = d.Windows
	}
	if p.Children == 0 {
		p.Children = d.Children
	}
	return p
}

func (p Params) waste() sim.Duration {
	return sim.Duration(p.TimeToWaste) * p.WasteUnit
}

// Entry describes one suite program.
type Entry struct {
	Name string
	// MPI2 marks the MPI-2 portion of the suite (Table 3 vs Table 2).
	MPI2 bool
	// Description matches the paper's program characteristics column.
	Description string
	// Defaults are the scaled runnable parameters.
	Defaults Params
	// PaperParams are the values the paper used, for reference.
	PaperParams string
	// Make builds the program for the given (merged) parameters.
	Make func(p Params) mpi.Program
	// NeedsPassive marks programs requiring passive-target RMA, which only
	// the Reference personality provides (the paper's unimplementable
	// passive-target tests, §5.2.1.1).
	NeedsPassive bool
	// Extension marks programs beyond the paper's Tables (delivered future
	// work); RunTable excludes them unless asked.
	Extension bool
	// Expected totals for verification, given merged params; nil entries
	// are skipped.
	ExpectedBytesSent func(p Params) float64
	ExpectedPutOps    func(p Params) float64
	ExpectedGetOps    func(p Params) float64
	ExpectedAccOps    func(p Params) float64
	ExpectedRMABytes  func(p Params) float64
}

var registry = map[string]*Entry{}
var order []string

func register(e *Entry) {
	if _, dup := registry[e.Name]; dup {
		panic("pperfmark: duplicate program " + e.Name)
	}
	registry[e.Name] = e
	order = append(order, e.Name)
}

// Get returns the named program entry, or nil.
func Get(name string) *Entry { return registry[name] }

// Names lists all programs in suite order.
func Names() []string { return append([]string(nil), order...) }

// MPI1Names and MPI2Names list the two paper-suite halves (extensions
// excluded); ExtensionNames lists the delivered-future-work programs.
func MPI1Names() []string { return filterNames(false, false) }
func MPI2Names() []string { return filterNames(true, false) }

// ExtensionNames lists the programs beyond the paper's tables.
func ExtensionNames() []string {
	var out []string
	for _, n := range order {
		if registry[n].Extension {
			out = append(out, n)
		}
	}
	return out
}

func filterNames(mpi2, ext bool) []string {
	var out []string
	for _, n := range order {
		if registry[n].MPI2 == mpi2 && registry[n].Extension == ext {
			out = append(out, n)
		}
	}
	return out
}

// Program builds the named program with params merged over its defaults,
// returning the merged params used.
func Program(name string, p Params) (mpi.Program, Params, error) {
	e := registry[name]
	if e == nil {
		known := Names()
		sort.Strings(known)
		return nil, Params{}, fmt.Errorf("pperfmark: unknown program %q (known: %v)", name, known)
	}
	mp := p.merged(e.Defaults)
	return e.Make(mp), mp, nil
}
