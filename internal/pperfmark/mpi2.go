package pperfmark

import (
	"pperf/internal/mpi"
	"pperf/internal/sim"
)

// The MPI-2 half of PPerfMark (Table 3): the programs the paper designed to
// test RMA measurement, window lifecycle handling, dynamic process creation,
// and object naming.

func init() {
	register(&Entry{
		Name: "allcount",
		MPI2: true,
		Description: "Transfers a known amount of data with a known number " +
			"of Puts, Gets and Accumulates, to verify the RMA counting metrics.",
		Defaults:    Params{Iterations: 50, MessageSize: 256, Procs: 4},
		PaperParams: "known op and byte counts (unspecified)",
		Make:        allcount,
		ExpectedPutOps: func(p Params) float64 {
			return float64(p.Iterations * (p.Procs - 1))
		},
		ExpectedGetOps: func(p Params) float64 {
			return float64(p.Iterations * (p.Procs - 1))
		},
		ExpectedAccOps: func(p Params) float64 {
			return float64(p.Iterations * (p.Procs - 1))
		},
		ExpectedRMABytes: func(p Params) float64 {
			return float64(3 * p.Iterations * (p.Procs - 1) * p.MessageSize)
		},
	})
	register(&Entry{
		Name: "wincreate-blast",
		MPI2: true,
		Description: "Creates and deallocates a large number of RMA windows " +
			"very quickly; every one must appear (and retire) in the resource hierarchy.",
		Defaults:    Params{Windows: 24, Procs: 4},
		PaperParams: "a large number of windows (unspecified)",
		Make:        wincreateBlast,
	})
	register(&Entry{
		Name: "winfence-sync",
		MPI2: true,
		Description: "MPI_Win_fence synchronization with an artificial " +
			"bottleneck in rank 0, which arrives late at every fence.",
		Defaults:    Params{Iterations: 300, TimeToWaste: 4, Procs: 4, MessageSize: 64, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "artificial bottleneck in rank 0 (iterations unspecified)",
		Make:        winfenceSync,
	})
	register(&Entry{
		Name: "winscpw-sync",
		MPI2: true,
		Description: "Start/Complete–Post/Wait synchronization; rank 0 " +
			"wastes time between Win_wait and Win_post, so the origins block " +
			"in Win_start (LAM) or Win_complete (MPICH2).",
		Defaults:    Params{Iterations: 300, TimeToWaste: 4, Procs: 3, MessageSize: 64, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "artificial bottleneck in rank 0 (iterations unspecified)",
		Make:        winscpwSync,
	})
	register(&Entry{
		Name: "spawncount",
		MPI2: true,
		Description: "Spawns a known number of child processes that simply " +
			"exit; all must be detected and added to the resource hierarchy.",
		Defaults:    Params{Children: 4, Procs: 1},
		PaperParams: "a known number of children (unspecified)",
		Make:        spawncount,
	})
	register(&Entry{
		Name: "spawnsync",
		MPI2: true,
		Description: "Spawns children, then exchanges a known number of " +
			"messages parent↔children; an artificial computational bottleneck " +
			"sits in the parent, so the children wait in MPI_Recv.",
		Defaults:    Params{Iterations: 250, Children: 3, TimeToWaste: 3, Procs: 1, MessageSize: 4, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "known message count, bottleneck in parent",
		Make:        spawnsync,
		ExpectedBytesSent: func(p Params) float64 {
			// parent → each child, and each child's reply, per iteration
			return float64(2 * p.Iterations * p.Children * p.MessageSize)
		},
	})
	register(&Entry{
		Name: "spawnwin-sync",
		MPI2: true,
		Description: "Spawns children and creates an RMA window over the " +
			"merged parent+child intracommunicator; the parent's bottleneck " +
			"makes the children wait in MPI_Win_fence.",
		Defaults:    Params{Iterations: 250, Children: 3, TimeToWaste: 3, Procs: 1, MessageSize: 64, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "bottleneck in parent, window over parent+children",
		Make:        spawnwinSync,
	})
	register(&Entry{
		Name: "oned",
		MPI2: true,
		Description: "The Using-MPI-2 1-D decomposition example: halo " +
			"exchange via MPI_Put between MPI_Win_fence pairs in exchng1 " +
			"(LAM's fence is an MPI_Barrier, which surfaces as a Barrier bottleneck).",
		Defaults:    Params{Iterations: 400, MessageSize: 4096, Procs: 4, WasteUnit: 10 * sim.Millisecond},
		PaperParams: "the book's example",
		Make:        oned,
	})
}

// allcount: every non-zero rank performs known Puts/Gets/Accumulates against
// rank 0's window.
func allcount(p Params) mpi.Program {
	const mod = "allcount.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		win, err := c.WinCreate(r, p.MessageSize*4, 1, nil)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			win.SetName("AllCountWin")
		}
		for i := 0; i < p.Iterations; i++ {
			win.Fence(0)
			if r.Rank() != 0 {
				r.Call(mod, "do_rma", func() {
					win.Put(nil, p.MessageSize, mpi.Byte, 0, 0, p.MessageSize, mpi.Byte)
					win.Get(make([]byte, p.MessageSize), p.MessageSize, mpi.Byte, 0, 0, p.MessageSize, mpi.Byte)
					win.Accumulate(nil, p.MessageSize, mpi.Byte, 0, 0, p.MessageSize, mpi.Byte, mpi.OpReplace)
				})
			}
			win.Fence(0)
		}
		win.Free()
	}
}

// wincreateBlast: rapid create/free cycles; ids get reused, names must stay
// unique.
func wincreateBlast(p Params) mpi.Program {
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < p.Windows; i++ {
			win, err := c.WinCreate(r, 128, 1, nil)
			if err != nil {
				panic(err)
			}
			win.Fence(0)
			if r.Rank() == 0 && r.Rank()+1 < c.Size() {
				win.Put(nil, 16, mpi.Byte, 1, 0, 16, mpi.Byte)
			}
			win.Fence(0)
			if err := win.Free(); err != nil {
				panic(err)
			}
		}
	}
}

// winfenceSync: rank 0 wastes before each fence; the others wait in
// MPI_Win_fence.
func winfenceSync(p Params) mpi.Program {
	const mod = "winfencesync.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		win, err := c.WinCreate(r, p.MessageSize*c.Size(), 1, nil)
		if err != nil {
			panic(err)
		}
		for i := 0; i < p.Iterations; i++ {
			if r.Rank() == 0 {
				r.Call(mod, "waste_time", func() { r.Compute(p.waste()) })
			} else {
				win.Put(nil, p.MessageSize, mpi.Byte, 0, p.MessageSize*r.Rank(), p.MessageSize, mpi.Byte)
			}
			win.Fence(0)
		}
		win.Free()
	}
}

// winscpwSync: PSCW epochs with the target (rank 0) wasting time between
// Win_wait and the next Win_post.
func winscpwSync(p Params) mpi.Program {
	const mod = "winscpwsync.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		win, err := c.WinCreate(r, p.MessageSize*c.Size(), 1, nil)
		if err != nil {
			panic(err)
		}
		n := c.Size()
		if r.Rank() == 0 {
			origins := make([]int, 0, n-1)
			for i := 1; i < n; i++ {
				origins = append(origins, i)
			}
			for i := 0; i < p.Iterations; i++ {
				win.Post(origins, 0)
				win.WaitEpoch()
				r.Call(mod, "waste_time", func() { r.Compute(p.waste()) })
			}
		} else {
			for i := 0; i < p.Iterations; i++ {
				win.Start([]int{0}, 0)
				win.Put(nil, p.MessageSize, mpi.Byte, 0, p.MessageSize*r.Rank(), p.MessageSize, mpi.Byte)
				win.Complete()
			}
		}
		// Quiesce all epochs before the collective free.
		c.Barrier(r)
		win.Free()
	}
}

// spawncount: spawn children that just exit.
func spawncount(p Params) mpi.Program {
	return func(r *mpi.Rank, _ []string) {
		w := r.Universe()
		w.Register("spawncount-child", func(cr *mpi.Rank, _ []string) {})
		if _, err := r.World().Spawn(r, "spawncount-child", nil, p.Children, nil, 0); err != nil {
			panic(err)
		}
	}
}

// spawnsync: parent computes (the bottleneck) then messages each child;
// children wait in MPI_Recv inside childfunction.
func spawnsync(p Params) mpi.Program {
	const mod = "spawnsync.c"
	return func(r *mpi.Rank, _ []string) {
		w := r.Universe()
		w.Register("spawnsync-child", func(cr *mpi.Rank, args []string) {
			parent := cr.GetParent()
			iters := p.Iterations
			for i := 0; i < iters; i++ {
				cr.Call(mod, "childfunction", func() {
					parent.Recv(cr, nil, p.MessageSize, mpi.Byte, 0, 1)
					parent.Send(cr, nil, p.MessageSize, mpi.Byte, 0, 2)
				})
			}
		})
		inter, err := r.World().Spawn(r, "spawnsync-child", nil, p.Children, nil, 0)
		if err != nil {
			panic(err)
		}
		inter.SetName(r, "Parent&Child")
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "parentfunction", func() { r.Compute(p.waste()) })
			for ch := 0; ch < p.Children; ch++ {
				inter.Send(r, nil, p.MessageSize, mpi.Byte, ch, 1)
			}
			for ch := 0; ch < p.Children; ch++ {
				inter.Recv(r, nil, p.MessageSize, mpi.Byte, mpi.AnySource, 2)
			}
		}
	}
}

// spawnwinSync: window over the merged parent+children communicator; the
// parent's computation makes children wait in MPI_Win_fence.
func spawnwinSync(p Params) mpi.Program {
	const mod = "spawnwinsync.c"
	childBody := func(p Params) func(cr *mpi.Rank, _ []string) {
		return func(cr *mpi.Rank, _ []string) {
			parent := cr.GetParent()
			merged, err := parent.Merge(cr, true)
			if err != nil {
				panic(err)
			}
			win, err := merged.WinCreate(cr, p.MessageSize*merged.Size(), 1, nil)
			if err != nil {
				panic(err)
			}
			me := merged.RankOf(cr)
			for i := 0; i < p.Iterations; i++ {
				win.Put(nil, p.MessageSize, mpi.Byte, 0, p.MessageSize*me, p.MessageSize, mpi.Byte)
				win.Fence(0)
			}
			win.Free()
		}
	}
	return func(r *mpi.Rank, _ []string) {
		w := r.Universe()
		w.Register("spawnwinsync-child", childBody(p))
		inter, err := r.World().Spawn(r, "spawnwinsync-child", nil, p.Children, nil, 0)
		if err != nil {
			panic(err)
		}
		inter.SetName(r, "Parent&Child")
		merged, err := inter.Merge(r, false)
		if err != nil {
			panic(err)
		}
		win, err := merged.WinCreate(r, p.MessageSize*merged.Size(), 1, nil)
		if err != nil {
			panic(err)
		}
		win.SetName("ParentChildWindow")
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "parentfunction", func() { r.Compute(p.waste()) })
			win.Fence(0)
		}
		win.Free()
	}
}

// oned: halo exchange through MPI_Put between fences inside exchng1,
// interleaved with computation — the book's 1-D Poisson example.
func oned(p Params) mpi.Program {
	const mod = "oned.c"
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := c.Size()
		win, err := c.WinCreate(r, 2*p.MessageSize, 1, nil)
		if err != nil {
			panic(err)
		}
		up := (r.Rank() + 1) % n
		down := (r.Rank() - 1 + n) % n
		for i := 0; i < p.Iterations; i++ {
			r.Call(mod, "compute", func() {
				base := p.WasteUnit / 4
				r.Compute(base + sim.Duration(r.Rank())*base/sim.Duration(n))
			})
			r.Call(mod, "exchng1", func() {
				win.Fence(0)
				win.Put(nil, p.MessageSize, mpi.Byte, up, 0, p.MessageSize, mpi.Byte)
				win.Put(nil, p.MessageSize, mpi.Byte, down, p.MessageSize, p.MessageSize, mpi.Byte)
				win.Fence(0)
			})
		}
		win.Free()
	}
}
