package mpe

import (
	"math"
	"strings"
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/mpi"
	"pperf/internal/sim"
)

func runTraced(t *testing.T, kind mpi.ImplKind, n int, prog mpi.Program) *Tracer {
	t.Helper()
	eng := sim.NewEngine(5)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(n, 1), mpi.NewImpl(kind))
	tr := Attach(w)
	w.Register("main", prog)
	if _, err := w.LaunchN("main", n, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTracerRecordsIntervals(t *testing.T) {
	tr := runTraced(t, mpi.LAM, 2, func(r *mpi.Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			r.Compute(1 * sim.Second)
			c.Send(r, nil, 4, mpi.Byte, 1, 0)
		} else {
			c.Recv(r, nil, 4, mpi.Byte, 0, 0)
		}
	})
	if len(tr.Intervals()) == 0 {
		t.Fatal("no intervals recorded")
	}
	// rank 1 spent ≈1s in MPI_Recv.
	procs := tr.Procs()
	if len(procs) != 2 {
		t.Fatalf("procs = %v", procs)
	}
	recv := tr.StateTime(procs[1], "MPI_Recv")
	if recv < 900*sim.Millisecond {
		t.Errorf("recv state time = %v, want ≈1s", recv)
	}
}

func TestNestedCallsMergeIntoOutermostState(t *testing.T) {
	// LAM's barrier nests Isend/Waitall; Jumpshot-style logs show one
	// MPI_Barrier state, not the internals.
	tr := runTraced(t, mpi.LAM, 2, func(r *mpi.Rank, _ []string) {
		if r.Rank() == 0 {
			r.Compute(500 * sim.Millisecond)
		}
		r.World().Barrier(r)
	})
	for _, iv := range tr.Intervals() {
		if iv.State == "MPI_Isend" || iv.State == "MPI_Waitall" {
			t.Errorf("internal state %s leaked into the trace", iv.State)
		}
	}
	if tr.StateTime("", "MPI_Barrier") == 0 {
		t.Error("no MPI_Barrier state recorded")
	}
}

func TestPMPINamesCanonicalized(t *testing.T) {
	tr := runTraced(t, mpi.MPICH, 2, func(r *mpi.Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			c.Send(r, nil, 4, mpi.Byte, 1, 0)
		} else {
			c.Recv(r, nil, 4, mpi.Byte, 0, 0)
		}
	})
	for _, s := range tr.States() {
		if strings.HasPrefix(s, "PMPI_") {
			t.Errorf("state %s should display as MPI_*", s)
		}
	}
}

func TestAvgConcurrencyIntensiveServerShape(t *testing.T) {
	// Fig 12: with 3 processes (1 server + 2 clients), roughly 2 are inside
	// MPI_Recv at any time.
	tr := runTraced(t, mpi.LAM, 3, func(r *mpi.Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < 2*40; i++ {
				rq, _ := c.Recv(r, nil, 4, mpi.Byte, mpi.AnySource, 1)
				r.Compute(20 * sim.Millisecond) // busy server
				c.Send(r, nil, 4, mpi.Byte, rq.Source(), 2)
			}
		} else {
			for i := 0; i < 40; i++ {
				c.Send(r, nil, 4, mpi.Byte, 0, 1)
				c.Recv(r, nil, 4, mpi.Byte, 0, 2)
			}
		}
	})
	avg := tr.AvgConcurrency("MPI_Recv")
	if math.Abs(avg-2) > 0.35 {
		t.Errorf("avg processes in MPI_Recv = %.2f, want ≈2", avg)
	}
	out := tr.StatisticalPreview()
	if !strings.Contains(out, "MPI_Recv") {
		t.Errorf("preview missing MPI_Recv:\n%s", out)
	}
}

func TestTimeLinesRendering(t *testing.T) {
	tr := runTraced(t, mpi.LAM, 2, func(r *mpi.Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			r.Compute(1 * sim.Second)
			c.Send(r, nil, 4, mpi.Byte, 1, 0)
		} else {
			c.Recv(r, nil, 4, mpi.Byte, 0, 0)
		}
	})
	out := tr.TimeLines(40)
	if !strings.Contains(out, "|") || !strings.Contains(out, "R") {
		t.Errorf("timeline should show the receiver's R state:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 { // header + 2 procs + legend
		t.Errorf("timeline shape:\n%s", out)
	}
}

func TestMaxEventsTruncation(t *testing.T) {
	eng := sim.NewEngine(5)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(2, 1), mpi.NewImpl(mpi.LAM))
	tr := Attach(w)
	tr.MaxEvents = 10
	w.Register("main", func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < 50; i++ {
			if r.Rank() == 0 {
				c.Send(r, nil, 4, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 4, mpi.Byte, 0, 0)
			}
		}
	})
	if _, err := w.LaunchN("main", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals()) != 10 || !tr.Truncated() {
		t.Errorf("log should truncate at cap: %d events, truncated=%v",
			len(tr.Intervals()), tr.Truncated())
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Tracer{}
	if tr.TimeLines(20) != "(empty trace)" {
		t.Error("empty timeline")
	}
	if lo, hi := tr.Span(); lo != 0 || hi != 0 {
		t.Error("empty span")
	}
	if tr.AvgConcurrency("MPI_Recv") != 0 {
		t.Error("empty concurrency")
	}
}

func TestStatisticsTable(t *testing.T) {
	tr := runTraced(t, mpi.LAM, 2, func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < 5; i++ {
			if r.Rank() == 0 {
				c.Send(r, nil, 4, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 4, mpi.Byte, 0, 0)
			}
		}
	})
	if got := tr.StateCalls("", "MPI_Send"); got != 5 {
		t.Errorf("MPI_Send calls = %d", got)
	}
	table := tr.StatisticsTable()
	for _, want := range []string{"MPI_Send", "MPI_Recv", "calls", "mean(ms)"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
