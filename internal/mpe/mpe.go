// Package mpe is the reproduction's stand-in for the MPE logging libraries
// and the Jumpshot-3 viewer, which the paper uses as an independent
// comparator for the tool's findings (§5.1.4–5.1.6, Figs 12, 13, 16, 17):
// it renders every outermost MPI call as a state interval per process, in
// Jumpshot's Statistical Preview (average number of processes in each state
// over time) and Time Lines windows as text. The intervals come from the
// shared internal/trace event stream — mpe is a consumer of the tracing
// subsystem, not a second instrumentation layer.
package mpe

import (
	"fmt"
	"sort"
	"strings"

	"pperf/internal/mpi"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// Interval is one logged state: a process was inside an MPI call from Start
// to End.
type Interval struct {
	Proc  string
	State string // outermost MPI function name
	Start sim.Time
	End   sim.Time
}

// Tracer collects state intervals from every process of a world. Like MPE,
// it is link-time tracing: attach before launching programs.
type Tracer struct {
	intervals []Interval
	// MaxEvents caps the log (the paper had to shorten runs to keep trace
	// files usable, §5.1.4 — the cap models the same pressure). 0 means
	// unlimited.
	MaxEvents int
	truncated bool
}

// Attach subscribes an MPE tracer to the world's trace event stream, arming
// the stream first when no tracing was configured. Only outermost (depth 0)
// MPI spans become intervals: internal nested calls merge into the enclosing
// state, as Jumpshot shows.
func Attach(w *mpi.World) *Tracer {
	t := &Tracer{}
	tr := w.Tracer
	if tr == nil {
		tr = trace.New(nil)
		w.Tracer = tr
	}
	tr.AddObserver(func(s trace.Span) {
		if s.Kind != trace.MPISpan || s.Depth != 0 {
			return
		}
		if t.MaxEvents > 0 && len(t.intervals) >= t.MaxEvents {
			t.truncated = true
			return
		}
		t.intervals = append(t.intervals, Interval{
			Proc: s.Proc, State: displayState(s.Name), Start: s.Start, End: s.End,
		})
	})
	return t
}

// displayState canonicalizes PMPI_ symbols to the MPI_ state names Jumpshot
// displays.
func displayState(fn string) string {
	return strings.TrimPrefix(fn, "P")
}

// Intervals returns the logged state intervals.
func (t *Tracer) Intervals() []Interval { return t.intervals }

// Truncated reports whether the event cap was hit.
func (t *Tracer) Truncated() bool { return t.truncated }

// Procs lists the traced processes, sorted.
func (t *Tracer) Procs() []string {
	set := map[string]bool{}
	for _, iv := range t.intervals {
		set[iv.Proc] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// States lists the observed states, sorted by total time descending.
func (t *Tracer) States() []string {
	totals := map[string]sim.Duration{}
	for _, iv := range t.intervals {
		totals[iv.State] += iv.End.Sub(iv.Start)
	}
	out := make([]string, 0, len(totals))
	for s := range totals {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if totals[out[i]] != totals[out[j]] {
			return totals[out[i]] > totals[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Span returns the trace's time extent.
func (t *Tracer) Span() (sim.Time, sim.Time) {
	if len(t.intervals) == 0 {
		return 0, 0
	}
	lo, hi := t.intervals[0].Start, t.intervals[0].End
	for _, iv := range t.intervals {
		if iv.Start < lo {
			lo = iv.Start
		}
		if iv.End > hi {
			hi = iv.End
		}
	}
	return lo, hi
}

// StateTime returns the total time proc spent in state ("" proc = all).
func (t *Tracer) StateTime(proc, state string) sim.Duration {
	var d sim.Duration
	for _, iv := range t.intervals {
		if iv.State == state && (proc == "" || iv.Proc == proc) {
			d += iv.End.Sub(iv.Start)
		}
	}
	return d
}

// AvgConcurrency returns the average number of processes simultaneously in
// the state over the trace span — the number the paper reads off Jumpshot's
// Statistical Preview ("approximately three of them were executing in
// MPI_Barrier at any given time", Fig 17).
func (t *Tracer) AvgConcurrency(state string) float64 {
	lo, hi := t.Span()
	if hi <= lo {
		return 0
	}
	return t.StateTime("", state).Seconds() / hi.Sub(lo).Seconds()
}

// StatisticalPreview renders per-state average concurrency with bars, like
// Jumpshot-3's Statistical Preview window.
func (t *Tracer) StatisticalPreview() string {
	var b strings.Builder
	b.WriteString("Statistical Preview (average processes in state)\n")
	n := len(t.Procs())
	for _, s := range t.States() {
		avg := t.AvgConcurrency(s)
		bar := strings.Repeat("█", int(avg/float64(max(n, 1))*40+0.5))
		fmt.Fprintf(&b, "  %-18s %5.2f %s\n", s, avg, bar)
	}
	t.writeTruncated(&b)
	return b.String()
}

// writeTruncated appends the truncation notice when the event cap was hit,
// so the rendered windows never pass silently for a complete log.
func (t *Tracer) writeTruncated(b *strings.Builder) {
	if t.truncated {
		fmt.Fprintf(b, "  [log truncated at %d events]\n", len(t.intervals))
	}
}

// StateCalls returns how many intervals (outermost calls) were logged for a
// state, for proc ("" = all).
func (t *Tracer) StateCalls(proc, state string) int {
	n := 0
	for _, iv := range t.intervals {
		if iv.State == state && (proc == "" || iv.Proc == proc) {
			n++
		}
	}
	return n
}

// StatisticsTable renders a Vampir-style per-operation statistics table:
// operation count, total time, and mean time per call — the kind of MPI
// statistics §2 credits Vampir with for MPI-I/O.
func (t *Tracer) StatisticsTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %12s %12s\n", "state", "calls", "total(s)", "mean(ms)")
	for _, s := range t.States() {
		calls := t.StateCalls("", s)
		total := t.StateTime("", s)
		mean := 0.0
		if calls > 0 {
			mean = total.Seconds() * 1000 / float64(calls)
		}
		fmt.Fprintf(&b, "%-20s %8d %12.4f %12.4f\n", s, calls, total.Seconds(), mean)
	}
	return b.String()
}

// TimeLines renders a text Time Lines window: one row per process, one
// column per time bucket, the bucket's dominant state abbreviated to its
// initial (MPI_Recv → R). Idle/computing time is '.'.
func (t *Tracer) TimeLines(width int) string {
	lo, hi := t.Span()
	if hi <= lo || width <= 0 {
		return "(empty trace)"
	}
	procs := t.Procs()
	type cell map[string]sim.Duration
	grid := map[string][]cell{}
	for _, p := range procs {
		grid[p] = make([]cell, width)
	}
	span := hi.Sub(lo)
	bucketOf := func(ts sim.Time) int {
		i := int(float64(ts.Sub(lo)) / float64(span) * float64(width))
		if i >= width {
			i = width - 1
		}
		return i
	}
	for _, iv := range t.intervals {
		b0, b1 := bucketOf(iv.Start), bucketOf(iv.End)
		for b := b0; b <= b1; b++ {
			if grid[iv.Proc][b] == nil {
				grid[iv.Proc][b] = cell{}
			}
			grid[iv.Proc][b][iv.State] += iv.End.Sub(iv.Start) / sim.Duration(b1-b0+1)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Time Lines %v – %v\n", lo, hi)
	for _, p := range procs {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
			// Ties break on state name so the rendering is deterministic
			// (map iteration order is not).
			var best sim.Duration
			var bestState string
			for state, d := range grid[p][i] {
				if d > best || (d == best && bestState != "" && state < bestState) {
					best = d
					bestState = state
					line[i] = stateInitial(state)
				}
			}
		}
		fmt.Fprintf(&b, "  %-14s |%s|\n", p, line)
	}
	b.WriteString("  legend: initial letter of dominant MPI state per bucket; '.' = computing\n")
	t.writeTruncated(&b)
	return b.String()
}

// stateInitial abbreviates an MPI state for the timeline.
func stateInitial(state string) byte {
	s := strings.TrimPrefix(state, "MPI_")
	if s == "" {
		return '?'
	}
	switch {
	case strings.HasPrefix(s, "Win_"):
		return 'W'
	case strings.HasPrefix(s, "File_"):
		return 'F'
	}
	return s[0]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
