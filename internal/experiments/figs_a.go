package experiments

import (
	"fmt"
	"strings"

	"pperf/internal/core"
	"pperf/internal/daemon"
	"pperf/internal/frontend"
	"pperf/internal/mdl"
	"pperf/internal/mpe"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

func init() {
	register("fig1", fig1)
	register("fig2", fig2)
	register("fig3", fig3)
	register("fig4", fig4)
	register("fig5", fig5)
	register("fig6", fig6)
	register("fig7", fig7)
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
}

// metricPair names one metric-focus series to collect.
type metricPair struct {
	key    string
	metric string
	focus  resource.Focus
}

// runWithSeries runs a PPerfMark program under the tool without the PC,
// collecting the requested metric-focus series.
func runWithSeries(name string, impl mpi.ImplKind, p pperfmark.Params, pairs []metricPair) (map[string]*frontend.Series, sim.Time) {
	prog, params, err := pperfmark.Program(name, p)
	if err != nil {
		panic(err)
	}
	dcfg := daemon.DefaultConfig()
	dcfg.SampleInterval = 50 * sim.Millisecond
	nodes := (params.Procs + 1) / 2
	if nodes < 2 {
		nodes = 2
	}
	s, err := core.NewSession(core.Options{
		Impl: impl, Nodes: nodes, CPUsPerNode: 2,
		Daemon: &dcfg, BinWidth: 50 * sim.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	s.Register(name, prog)
	out := map[string]*frontend.Series{}
	for _, pr := range pairs {
		out[pr.key] = s.MustEnable(pr.metric, pr.focus)
	}
	if err := s.Launch(name, params.Procs, nil); err != nil {
		panic(err)
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return out, s.Eng.Now()
}

// traceProgram runs a program under the MPE-style tracer (no tool).
func traceProgram(impl mpi.ImplKind, n int, prog mpi.Program) *mpe.Tracer {
	eng := sim.NewEngine(17)
	w := mpi.NewWorld(eng, clusterSpec(n), mpi.NewImpl(impl))
	tr := mpe.Attach(w)
	w.Register("traced", prog)
	if _, err := w.LaunchN("traced", n, nil); err != nil {
		panic(err)
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return tr
}

// fig1 regenerates the RMA synchronization patterns: timeline traces of the
// four synchronization shapes the paper's Figure 1 diagrams.
func fig1() *Result {
	r := &Result{ID: "fig1", Title: "RMA synchronization patterns", OK: true,
		Paper: "late participants in Win_create/fence/PSCW/lock-unlock cause synchronization waiting"}
	var b strings.Builder

	// Fence with a late rank (top-right diagram).
	tr := traceProgram(mpi.MPICH2, 3, func(rk *mpi.Rank, _ []string) {
		win, _ := rk.World().WinCreate(rk, 64, 1, nil)
		if rk.Rank() == 1 {
			rk.Compute(400 * sim.Millisecond) // process B is late to the fence
		}
		win.Fence(0)
		win.Free()
	})
	b.WriteString("Late rank at MPI_Win_fence (others wait):\n" + tr.TimeLines(48))
	fenceWait := tr.StateTime("", "MPI_Win_fence")
	r.ok(fenceWait > 600*sim.Millisecond, "fence waiting %v too small", fenceWait)

	// PSCW with a late post (bottom-left diagram).
	tr2 := traceProgram(mpi.LAM, 2, func(rk *mpi.Rank, _ []string) {
		win, _ := rk.World().WinCreate(rk, 64, 1, nil)
		if rk.Rank() == 0 {
			rk.Compute(400 * sim.Millisecond)
			win.Post([]int{1}, 0)
			win.WaitEpoch()
		} else {
			win.Start([]int{0}, 0)
			win.Put(nil, 8, mpi.Byte, 0, 0, 8, mpi.Byte)
			win.Complete()
		}
		win.Free()
	})
	b.WriteString("\nLate MPI_Win_post (LAM origin blocks in Win_start):\n" + tr2.TimeLines(48))
	startWait := tr2.StateTime("", "MPI_Win_start")
	r.ok(startWait > 300*sim.Millisecond, "Win_start waiting %v too small", startWait)

	// Passive target (bottom-right) on the Reference personality.
	tr3 := traceProgram(mpi.Reference, 2, func(rk *mpi.Rank, _ []string) {
		win, _ := rk.World().WinCreate(rk, 64, 1, nil)
		win.Fence(0)
		if rk.Rank() == 0 {
			win.Lock(mpi.LockExclusive, 1, 0)
			win.Put(nil, 8, mpi.Byte, 1, 0, 8, mpi.Byte)
			win.Unlock(1)
		}
		win.Fence(0)
		win.Free()
	})
	b.WriteString("\nPassive target lock/unlock (reference implementation):\n" + tr3.TimeLines(48))
	r.ok(tr3.StateTime("", "MPI_Win_unlock") > 0, "no Win_unlock time traced")

	r.Measured = fmt.Sprintf("fence wait %v; Win_start wait %v", fenceWait, startWait)
	r.Output = b.String()
	return r
}

// fig2 verifies the paper's MDL examples compile and instrument.
func fig2() *Result {
	r := &Result{ID: "fig2", Title: "MDL metric definitions compile", OK: true,
		Paper: "rma_put_ops, rma_put_bytes, rma_sync_wait metrics and the RMA window constraint"}
	lib := mdl.StdLib()
	names := lib.MetricNames()
	r.ok(len(names) >= 20, "only %d metrics", len(names))
	for _, n := range []string{"rma_put_ops", "rma_put_bytes", "rma_sync_wait"} {
		r.ok(lib.Metric(n) != nil, "missing %s", n)
	}
	// The figure's user-extensibility claim: new metrics compile on top.
	_, err := mdl.NewLibraryWithStd(`
resourceList fig2_set is procedure { "MPI_Put", "PMPI_Put" };
metric fig2_metric {
    name "fig2_metric"; units ops; unitstype unnormalized;
    aggregateOperator sum; style EventCounter;
    base is counter {
        foreach func in fig2_set { append preinsn func.entry constrained (* fig2_metric++; *) }
    }
}`)
	r.ok(err == nil, "user MDL failed: %v", err)
	r.Measured = fmt.Sprintf("%d standard metrics; user extension compiles", len(names))
	r.Output = "standard metrics: " + strings.Join(names, ", ")
	return r
}

// fig3 compares the PC's small-messages diagnosis under LAM and MPICH.
func fig3() *Result {
	r := &Result{ID: "fig3", Title: "PC output for small-messages (LAM vs MPICH)", OK: true,
		Paper: "both: sync → Gsend_message → MPI_Send; LAM finds the communicator; MPICH adds ExcessiveIOBlockingTime"}
	lam := runSuite("small-messages", mpi.LAM, pperfmark.RunOptions{})
	mpich := runSuite("small-messages", mpi.MPICH, pperfmark.RunOptions{})
	for _, res := range []*pperfmark.Result{lam, mpich} {
		r.ok(hasSync(res, "Gsend_message"), "%s: Gsend_message missing", res.Impl)
		r.ok(hasSync(res, "MPI_Send"), "%s: MPI_Send missing", res.Impl)
	}
	r.ok(hasSync(lam, "/SyncObject/Message/comm-"), "LAM communicator missing")
	r.ok(mpich.PC.TopLevelTrue("ExcessiveIOBlockingTime"), "MPICH IO hypothesis false")
	r.ok(!lam.PC.TopLevelTrue("ExcessiveIOBlockingTime"), "LAM IO hypothesis unexpectedly true")
	r.Measured = "sync→Gsend_message→MPI_Send both; communicator under LAM; IO blocking only under MPICH"
	r.Output = pcSideBySide(lam, mpich)
	return r
}

// fig4 reproduces the server byte-count histogram calculation.
func fig4() *Result {
	r := &Result{ID: "fig4", Title: "small-messages server receive bytes", OK: true,
		Paper: "estimate 199,259,066 of 200,000,000 true bytes (-0.4%): slight undercount from end-bin elimination"}
	p := pperfmark.Params{} // suite defaults
	series, runtime := runWithSeries("small-messages", mpi.LAM, p,
		[]metricPair{{"recv", "msg_bytes_recv", resource.WholeProgram()}})
	params := pperfmark.Get("small-messages").Defaults
	truth := float64(params.Iterations * (params.Procs - 1) * params.MessageSize)
	server := series["recv"].ProcHistogram("small-messages{0}")
	r.ok(server != nil, "server histogram missing (procs: %v)", series["recv"].Procs())
	if server == nil {
		return r
	}
	est := server.TotalViaMeanRate(sim.Duration(runtime))
	relErr := (est - truth) / truth
	r.ok(server.Total() == truth, "exact counter %v != truth %v", server.Total(), truth)
	r.ok(relErr < 0.02 && relErr > -0.15, "estimate error %v out of band", relErr)
	r.Measured = fmt.Sprintf("true %d bytes; mean-rate estimate %.0f (%+.2f%%)", int64(truth), est, relErr*100)
	r.Output = fmt.Sprintf("server recv bytes/bin: |%s|\nexact total %v, estimate %.0f over %v runtime",
		server.Render(48), server.Total(), est, runtime)
	return r
}

// fig5 is the big-message PC comparison.
func fig5() *Result {
	r := &Result{ID: "fig5", Title: "PC output for big-message", OK: true,
		Paper: "identical findings both implementations: sync → Gsend_message/Grecv_message → MPI_Send/MPI_Recv + communicator"}
	lam := runSuite("big-message", mpi.LAM, pperfmark.RunOptions{})
	mpich := runSuite("big-message", mpi.MPICH, pperfmark.RunOptions{})
	for _, res := range []*pperfmark.Result{lam, mpich} {
		r.ok(hasSync(res, "Gsend_message") || hasSync(res, "Grecv_message"),
			"%s: wrappers missing", res.Impl)
		r.ok(hasSync(res, "MPI_Send") || hasSync(res, "MPI_Recv"),
			"%s: p2p functions missing", res.Impl)
		r.ok(hasSync(res, "/SyncObject/Message/comm-"), "%s: communicator missing", res.Impl)
	}
	r.Measured = "sync → send/recv wrappers → MPI p2p + communicator under both implementations"
	r.Output = pcSideBySide(lam, mpich)
	return r
}

// fig6 reproduces the big-message byte histogram calculation.
func fig6() *Result {
	r := &Result{ID: "fig6", Title: "big-message bytes sent/received", OK: true,
		Paper: "estimates 397.9M of 400M true bytes (-0.5%)"}
	series, runtime := runWithSeries("big-message", mpi.LAM, pperfmark.Params{},
		[]metricPair{
			{"sent", "msg_bytes_sent", resource.WholeProgram()},
			{"recv", "msg_bytes_recv", resource.WholeProgram()},
		})
	params := pperfmark.Get("big-message").Defaults
	truth := float64(2 * params.Iterations * params.MessageSize)
	sent := series["sent"].Histogram()
	estSent := sent.TotalViaMeanRate(sim.Duration(runtime))
	relErr := (estSent - truth) / truth
	r.ok(sent.Total() == truth, "counter %v != truth %v", sent.Total(), truth)
	r.ok(relErr < 0.02 && relErr > -0.15, "estimate error %v out of band", relErr)
	r.Measured = fmt.Sprintf("true %d bytes sent; estimate %.0f (%+.2f%%)", int64(truth), estSent, relErr*100)
	r.Output = fmt.Sprintf("bytes sent/bin: |%s|\nexact %v, estimate %.0f over %v",
		sent.Render(48), sent.Total(), estSent, runtime)
	return r
}

// fig7 is the wrong-way PC comparison, including MPICH's PMPI naming.
func fig7() *Result {
	r := &Result{ID: "fig7", Title: "PC output for wrong-way", OK: true,
		Paper: "sync → send/recv wrappers; MPICH drill-down reaches PMPI_Send/PMPI_Recv"}
	lam := runSuite("wrong-way", mpi.LAM, pperfmark.RunOptions{})
	mpich := runSuite("wrong-way", mpi.MPICH, pperfmark.RunOptions{})
	r.ok(hasSync(lam, "MPI_Send") || hasSync(lam, "MPI_Recv"), "LAM p2p missing")
	r.ok(hasSync(mpich, "PMPI_Send") || hasSync(mpich, "PMPI_Recv"), "MPICH PMPI symbols missing")
	r.Measured = "LAM shows MPI_*; MPICH's weak-symbol build surfaces PMPI_* names"
	r.Output = pcSideBySide(lam, mpich)
	return r
}

// fig8 reproduces the wrong-way byte calculation.
func fig8() *Result {
	r := &Result{ID: "fig8", Title: "wrong-way bytes sent/received", OK: true,
		Paper: "71.4M sent / 70.5M received of 72M true (-0.9%/-2.1%)"}
	series, runtime := runWithSeries("wrong-way", mpi.LAM, pperfmark.Params{},
		[]metricPair{{"sent", "msg_bytes_sent", resource.WholeProgram()}})
	params := pperfmark.Get("wrong-way").Defaults
	truth := float64(params.Iterations * params.Messages * params.MessageSize)
	sent := series["sent"].Histogram()
	est := sent.TotalViaMeanRate(sim.Duration(runtime))
	relErr := (est - truth) / truth
	r.ok(sent.Total() == truth, "counter %v != truth %v", sent.Total(), truth)
	r.ok(relErr < 0.02 && relErr > -0.15, "estimate error %v out of band", relErr)
	r.Measured = fmt.Sprintf("true %d bytes; estimate %.0f (%+.2f%%)", int64(truth), est, relErr*100)
	r.Output = fmt.Sprintf("bytes sent/bin: |%s|", sent.Render(48))
	return r
}

// fig9 is the random-barrier PC comparison, with MPICH's barrier internals.
func fig9() *Result {
	r := &Result{ID: "fig9", Title: "PC output for random-barrier", OK: true,
		Paper: "sync → MPI_Barrier; MPICH exposes PMPI_Sendrecv (+comm/tag) inside; CPUBound → waste_time"}
	lam := runSuite("random-barrier", mpi.LAM, pperfmark.RunOptions{})
	mpich := runSuite("random-barrier", mpi.MPICH, pperfmark.RunOptions{})
	for _, res := range []*pperfmark.Result{lam, mpich} {
		r.ok(hasSync(res, "MPI_Barrier"), "%s: MPI_Barrier missing", res.Impl)
		r.ok(hasCPU(res, "waste_time"), "%s: waste_time missing", res.Impl)
	}
	r.ok(hasSync(mpich, "MPI_Sendrecv"), "MPICH barrier internals missing")
	r.Measured = "barrier bottleneck both; MPICH shows PMPI_Barrier implemented over PMPI_Sendrecv; waste_time CPU bound"
	r.Output = pcSideBySide(lam, mpich)
	return r
}

// fig10 is the intensive-server PC comparison.
func fig10() *Result {
	r := &Result{ID: "fig10", Title: "PC output for intensive-server", OK: true,
		Paper: "sync → Grecv_message → MPI_Recv + communicator; CPUBound also true"}
	lam := runSuite("intensive-server", mpi.LAM, pperfmark.RunOptions{})
	mpich := runSuite("intensive-server", mpi.MPICH, pperfmark.RunOptions{})
	for _, res := range []*pperfmark.Result{lam, mpich} {
		r.ok(hasSync(res, "Grecv_message"), "%s: Grecv_message missing", res.Impl)
		r.ok(hasSync(res, "MPI_Recv"), "%s: MPI_Recv missing", res.Impl)
		r.ok(res.PC.TopLevelTrue("CPUBound"), "%s: CPUBound false", res.Impl)
	}
	r.Measured = "clients wait in Grecv_message/MPI_Recv; server CPU bound"
	r.Output = pcSideBySide(lam, mpich)
	return r
}
