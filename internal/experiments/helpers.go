package experiments

import (
	"fmt"
	"strings"

	"pperf/internal/cluster"
	"pperf/internal/consultant"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
)

// clusterSpec builds an n-rank paper-style layout (two ranks per node).
func clusterSpec(n int) *cluster.Spec {
	nodes := (n + 1) / 2
	if nodes < 2 {
		nodes = 2
	}
	return cluster.DefaultSpec(nodes, 2)
}

// runSuite executes one PPerfMark program under the full tool, panicking on
// harness errors (experiments are regeneration scripts, not servers).
func runSuite(name string, impl mpi.ImplKind, opt pperfmark.RunOptions) *pperfmark.Result {
	opt.Impl = impl
	res, err := pperfmark.Run(name, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%s: %v", name, impl, err))
	}
	return res
}

// pcSideBySide renders two implementations' condensed Performance Consultant
// outputs next to each other, the form the paper's PC figures take.
func pcSideBySide(left, right *pperfmark.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s ---\n%s", left.Impl, left.PC.Render())
	fmt.Fprintf(&b, "--- %s ---\n%s", right.Impl, right.PC.Render())
	return b.String()
}

// hasSync/hasCPU are finding probes on a result.
func hasSync(res *pperfmark.Result, substr string) bool {
	return res.PC.HasFinding(consultant.HypSync, substr)
}

func hasCPU(res *pperfmark.Result, substr string) bool {
	return res.PC.HasFinding(consultant.HypCPU, substr)
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
