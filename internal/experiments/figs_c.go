package experiments

import (
	"fmt"
	"strings"

	"pperf/internal/core"
	"pperf/internal/daemon"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
	"pperf/internal/presta"
	"pperf/internal/sim"
)

func init() {
	register("fig21", fig21)
	register("fig22", fig22)
	register("fig23", fig23)
	register("fig24", fig24)
	register("presta", prestaExp)
}

// fig21 compares the winscpw-sync diagnosis under LAM and MPICH2: the MPI-2
// standard lets either Win_start or Win_complete block, and the two
// implementations chose differently.
func fig21() *Result {
	r := &Result{ID: "fig21", Title: "PC output for winscpwsync (LAM vs MPICH2)", OK: true,
		Paper: "rank 0 CPU bound in waste_time; other ranks wait in MPI_Win_start (LAM) or MPI_Win_complete (MPICH2), on the identified window"}
	lam := runSuite("winscpw-sync", mpi.LAM, pperfmark.RunOptions{})
	m2 := runSuite("winscpw-sync", mpi.MPICH2, pperfmark.RunOptions{})
	r.ok(hasSync(lam, "MPI_Win_start"), "LAM: Win_start missing")
	r.ok(hasSync(m2, "MPI_Win_complete"), "MPICH2: Win_complete missing")
	for _, res := range []*pperfmark.Result{lam, m2} {
		r.ok(hasSync(res, "/SyncObject/Window/"), "%s: window missing", res.Impl)
		r.ok(hasCPU(res, "waste_time"), "%s: waste_time missing", res.Impl)
	}
	r.Measured = "LAM blocks in MPI_Win_start, MPICH2 in MPI_Win_complete; both pin the RMA window and rank 0's waste_time"
	r.Output = pcSideBySide(lam, m2)
	return r
}

// fig22 compares the Oned diagnosis: LAM's fence is a barrier.
func fig22() *Result {
	r := &Result{ID: "fig22", Title: "PC output for Oned", OK: true,
		Paper: "sync → exchng1 → MPI_Win_fence; LAM additionally implicates /SyncObject/Barrier (fence is MPI_Barrier)"}
	lam := runSuite("oned", mpi.LAM, pperfmark.RunOptions{})
	m2 := runSuite("oned", mpi.MPICH2, pperfmark.RunOptions{})
	for _, res := range []*pperfmark.Result{lam, m2} {
		r.ok(hasSync(res, "exchng1"), "%s: exchng1 missing", res.Impl)
		r.ok(hasSync(res, "MPI_Win_fence"), "%s: Win_fence missing", res.Impl)
	}
	r.ok(hasSync(lam, "/SyncObject/Barrier"), "LAM: Barrier sync object missing")
	r.ok(!hasSync(m2, "/SyncObject/Barrier"), "MPICH2 should not implicate Barrier")
	r.Measured = "both find exchng1→MPI_Win_fence; only LAM shows the Barrier sync object"
	r.Output = pcSideBySide(lam, m2)
	return r
}

// fig23 reproduces the resource hierarchy before/after a spawn operation,
// with MPI-2 object names.
func fig23() *Result {
	r := &Result{ID: "fig23", Title: "Resource hierarchy across MPI_Comm_spawn", OK: true,
		Paper: "three new processes appear; the parent+child window appears with its friendly name, also under Message (LAM stores window names in a communicator)"}
	prog, params, err := pperfmark.Program("spawnwin-sync", pperfmark.Params{Iterations: 40})
	if err != nil {
		panic(err)
	}
	dcfg := daemon.DefaultConfig()
	dcfg.SampleInterval = 50 * sim.Millisecond
	s, err := core.NewSession(core.Options{Impl: mpi.LAM, Nodes: params.Children + 1, CPUsPerNode: 1, Daemon: &dcfg})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	s.Register("spawnwin-sync", prog)
	var before string
	s.Eng.At(sim.Time(10*sim.Millisecond), func() { before = s.FE.Hierarchy().Render() })
	if err := s.Launch("spawnwin-sync", params.Procs, nil); err != nil {
		panic(err)
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	after := s.FE.Hierarchy().Render()

	childCount := strings.Count(after, "spawnwinsync-child{")
	r.ok(childCount >= params.Children, "after-hierarchy has %d children, want %d", childCount, params.Children)
	r.ok(!strings.Contains(before, "spawnwinsync-child{"), "children present before spawn")
	r.ok(strings.Contains(after, "ParentChildWindow"), "window friendly name missing")
	r.ok(strings.Contains(after, "Parent&Child"), "intercommunicator friendly name missing")
	// The LAM quirk: the window name also labels a Message resource.
	msgSection := after[strings.Index(after, "Message"):]
	r.ok(strings.Contains(msgSection, "ParentChildWindow"), "window name missing under Message")
	r.Measured = fmt.Sprintf("%d spawned processes incorporated; friendly names displayed, window name visible under Message", childCount)
	r.Output = "--- before spawn ---\n" + before + "--- after spawn ---\n" + after
	return r
}

// fig24 covers the spawnsync and spawnwin-sync PC outputs.
func fig24() *Result {
	r := &Result{ID: "fig24", Title: "PC output for spawnsync and spawnwinSync", OK: true,
		Paper: "children wait (message passing in childfunction / window fence); parent CPU bound in parentfunction"}
	ss := runSuite("spawnsync", mpi.LAM, pperfmark.RunOptions{})
	sw := runSuite("spawnwin-sync", mpi.LAM, pperfmark.RunOptions{})
	r.ok(hasSync(ss, "childfunction"), "spawnsync: childfunction missing")
	r.ok(hasSync(ss, "MPI_Recv"), "spawnsync: MPI_Recv missing")
	r.ok(hasCPU(ss, "parentfunction"), "spawnsync: parentfunction missing")
	r.ok(hasSync(sw, "MPI_Win_fence"), "spawnwin: Win_fence missing")
	r.ok(hasCPU(sw, "parentfunction"), "spawnwin: parentfunction missing")
	r.ok(hasSync(sw, "/SyncObject/Message") || hasSync(sw, "MPI_Isend") || hasSync(sw, "MPI_Waitall"),
		"spawnwin: LAM fence message traffic missing")
	r.Measured = "children's waits found (MPI_Recv / MPI_Win_fence with LAM's Isend/Waitall traffic); parent CPU bound"
	r.Output = "--- spawnsync ---\n" + ss.PC.Render() + "--- spawnwinSync ---\n" + sw.PC.Render()
	return r
}

// prestaExp reproduces the §5.2.1.3 Presta-vs-tool comparison.
func prestaExp() *Result {
	r := &Result{ID: "presta", Title: "Presta rma vs tool RMA metrics", OK: true,
		Paper: "op counts agree (except bidirectional Get); throughput/per-op differences ≤ ~0.6% and mostly not significant"}
	cfg := presta.Config{Bytes: 1024, OpsPerEpoch: 500, Epochs: 60}
	var b strings.Builder
	worstRel := 0.0
	for _, mode := range []presta.Mode{presta.UniPut, presta.UniGet, presta.BiPut, presta.BiGet} {
		cmp, err := presta.Compare(mpi.LAM, cfg, mode, 5)
		if err != nil {
			panic(err)
		}
		b.WriteString(cmp.Render())
		r.ok(!cmp.OpsDiff.Significant, "%s: op counts significantly differ", mode)
		rel := cmp.ThroughputDiff.RelDiff
		if rel < 0 {
			rel = -rel
		}
		if rel > worstRel {
			worstRel = rel
		}
	}
	r.ok(worstRel < 0.05, "worst throughput relative difference %.3f too large", worstRel)
	r.Measured = fmt.Sprintf("op counts agree in all four modes; worst throughput relative difference %.2f%%", worstRel*100)
	r.Output = b.String()
	return r
}
