package experiments

import (
	"fmt"
	"math"

	"pperf/internal/cluster"
	"pperf/internal/gprofsim"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/stats"
)

func init() {
	register("fig11", fig11)
	register("fig12", fig12)
	register("fig14", fig14)
	register("fig15", fig15)
	register("fig16", fig16)
	register("fig17", fig17)
	register("fig18", fig18)
	register("fig19", fig19)
	register("fig20", fig20)
}

// fig11 reproduces the intensive-server inclusive-synchronization
// histograms: clients spend almost all time in Grecv_message, almost none in
// Gsend_message; the server spends little in either.
func fig11() *Result {
	r := &Result{ID: "fig11", Title: "intensive-server inclusive sync time per function", OK: true,
		Paper: "client ≈0.98 of CPU time waiting in Grecv_message vs ≈0.02 in Gsend_message; server low in both"}
	series, runtime := runWithSeries("intensive-server", mpi.LAM, pperfmark.Params{},
		[]metricPair{
			{"recvWait", "sync_wait_inclusive",
				resource.WholeProgram().WithCode("/Code/intensiveserver.c/Grecv_message")},
			{"sendWait", "sync_wait_inclusive",
				resource.WholeProgram().WithCode("/Code/intensiveserver.c/Gsend_message")},
		})
	secs := sim.Time(runtime).Seconds()
	client := "intensive-server{1}"
	server := "intensive-server{0}"
	frac := func(key, proc string) float64 {
		h := series[key].ProcHistogram(proc)
		if h == nil {
			return 0
		}
		return h.Total() / secs
	}
	cr, cs := frac("recvWait", client), frac("sendWait", client)
	sr := frac("recvWait", server)
	r.ok(cr > 0.7, "client Grecv fraction %.2f too low", cr)
	r.ok(cs < 0.2, "client Gsend fraction %.2f too high", cs)
	r.ok(sr < 0.2, "server Grecv fraction %.2f too high", sr)
	r.Measured = fmt.Sprintf("client: Grecv %.2f vs Gsend %.2f; server Grecv %.2f", cr, cs, sr)
	r.Output = fmt.Sprintf("client Grecv_message sync/bin: |%s|\nclient Gsend_message sync/bin: |%s|",
		series["recvWait"].ProcHistogram(client).Render(48),
		series["sendWait"].ProcHistogram(client).Render(48))
	return r
}

// fig12 covers Figs 12 and 13: the Jumpshot comparator's view of
// intensive-server with 3 processes.
func fig12() *Result {
	r := &Result{ID: "fig12", Title: "Jumpshot views of intensive-server (3 procs)", OK: true,
		Paper: "of 3 processes, ≈2 are executing in MPI_Recv at any time; the timeline shows clients pinned in MPI_Recv"}
	tr := traceProgram(mpi.LAM, 3, func(rk *mpi.Rank, _ []string) {
		c := rk.World()
		if rk.Rank() == 0 {
			for i := 0; i < 2*60; i++ {
				rq, _ := c.Recv(rk, nil, 4, mpi.Byte, mpi.AnySource, 1)
				rk.Compute(10 * sim.Millisecond)
				c.Send(rk, nil, 4, mpi.Byte, rq.Source(), 2)
			}
			return
		}
		for i := 0; i < 60; i++ {
			c.Send(rk, nil, 4, mpi.Byte, 0, 1)
			c.Recv(rk, nil, 4, mpi.Byte, 0, 2)
		}
	})
	avg := tr.AvgConcurrency("MPI_Recv")
	r.ok(math.Abs(avg-2) < 0.4, "avg procs in MPI_Recv = %.2f, want ≈2", avg)
	r.Measured = fmt.Sprintf("average %.2f of 3 processes in MPI_Recv", avg)
	r.Output = tr.StatisticalPreview() + tr.TimeLines(56)
	return r
}

// fig14 is the diffuse-procedure PC run with the lowered CPU threshold.
func fig14() *Result {
	r := &Result{ID: "fig14", Title: "PC output for diffuse-procedure", OK: true,
		Paper: "sync → MPI_Barrier; CPU bound in bottleneckProcedure once the threshold is lowered to 0.2"}
	lam := runSuite("diffuse-procedure", mpi.LAM, pperfmark.RunOptions{})
	mpich := runSuite("diffuse-procedure", mpi.MPICH, pperfmark.RunOptions{})
	for _, res := range []*pperfmark.Result{lam, mpich} {
		r.ok(hasSync(res, "MPI_Barrier"), "%s: MPI_Barrier missing", res.Impl)
		r.ok(hasCPU(res, "bottleneckProcedure"), "%s: bottleneckProcedure missing", res.Impl)
	}
	r.Measured = "barrier sync + bottleneckProcedure found at threshold 0.2 under both implementations"
	r.Output = pcSideBySide(lam, mpich)
	return r
}

// fig15 reproduces the CPU-inclusive histogram: one CPU's worth of
// bottleneckProcedure across the application (25% per process at 4 procs,
// ~50% at 2 procs).
func fig15() *Result {
	r := &Result{ID: "fig15", Title: "diffuse-procedure CPU inclusive", OK: true,
		Paper: "≈1 CPU total in bottleneckProcedure → 25% per process with 4; ~50% with 2 processes"}
	focus := resource.WholeProgram().WithCode("/Code/diffuseprocedure.c/bottleneckProcedure")
	series4, runtime4 := runWithSeries("diffuse-procedure", mpi.LAM, pperfmark.Params{},
		[]metricPair{{"cpu", "cpu_inclusive", focus}})
	frac4 := series4["cpu"].Histogram().Total() / sim.Time(runtime4).Seconds() / 4
	series2, runtime2 := runWithSeries("diffuse-procedure", mpi.LAM, pperfmark.Params{Procs: 2},
		[]metricPair{{"cpu", "cpu_inclusive", focus}})
	frac2 := series2["cpu"].Histogram().Total() / sim.Time(runtime2).Seconds() / 2
	cpus4 := series4["cpu"].Histogram().Total() / sim.Time(runtime4).Seconds()
	r.ok(math.Abs(frac4-0.25) < 0.08, "4-proc per-process fraction %.2f ≉ 0.25", frac4)
	r.ok(math.Abs(frac2-0.5) < 0.12, "2-proc per-process fraction %.2f ≉ 0.5", frac2)
	r.ok(math.Abs(cpus4-1) < 0.25, "total CPUs %.2f ≉ 1", cpus4)
	r.Measured = fmt.Sprintf("total %.2f CPUs; per-process %s at 4 procs, %s at 2 procs",
		cpus4, pct(frac4), pct(frac2))
	r.Output = fmt.Sprintf("bottleneckProcedure CPU/bin (4 procs): |%s|",
		series4["cpu"].Histogram().Render(48))
	return r
}

// fig16 is the Jumpshot timeline of diffuse-procedure.
func fig16() *Result {
	r := &Result{ID: "fig16", Title: "Jumpshot timeline of diffuse-procedure", OK: true,
		Paper: "each process spends approximately the same total time in MPI_Barrier"}
	n := 3
	tr := traceProgram(mpi.LAM, n, func(rk *mpi.Rank, _ []string) {
		c := rk.World()
		for i := 0; i < 45; i++ {
			if i%n == rk.Rank() {
				rk.Compute(10 * sim.Millisecond)
			}
			c.Barrier(rk)
		}
	})
	var times []float64
	for _, p := range tr.Procs() {
		times = append(times, tr.StateTime(p, "MPI_Barrier").Seconds())
	}
	mean := stats.Mean(times)
	spread := stats.StdDev(times) / mean
	r.ok(spread < 0.2, "barrier time spread %.2f too uneven", spread)
	r.Measured = fmt.Sprintf("per-process MPI_Barrier times balanced within %.0f%% of the mean", spread*100)
	r.Output = tr.TimeLines(56)
	return r
}

// fig17 is the Jumpshot statistical preview of random-barrier.
func fig17() *Result {
	r := &Result{ID: "fig17", Title: "Jumpshot preview of random-barrier (4 procs)", OK: true,
		Paper: "of 4 processes, ≈3 are executing in MPI_Barrier at any given time"}
	n := 4
	tr := traceProgram(mpi.LAM, n, func(rk *mpi.Rank, _ []string) {
		c := rk.World()
		for i := 0; i < 80; i++ {
			if int(uint32(i)*2654435761%uint32(n*7919))%n == rk.Rank() {
				rk.Compute(50 * sim.Millisecond)
			}
			c.Barrier(rk)
		}
	})
	avg := tr.AvgConcurrency("MPI_Barrier")
	r.ok(avg > 2.4 && avg < 3.6, "avg procs in barrier %.2f, want ≈3", avg)
	r.Measured = fmt.Sprintf("average %.2f of 4 processes in MPI_Barrier", avg)
	r.Output = tr.StatisticalPreview()
	return r
}

// fig18 reproduces the random-barrier inclusive-sync averages: ≈61% under
// LAM and ≈62% under MPICH.
func fig18() *Result {
	r := &Result{ID: "fig18", Title: "random-barrier sync_wait_inclusive per process", OK: true,
		Paper: "average inclusive sync wait 61% (LAM) / 62% (MPICH), spread across all six processes"}
	measure := func(impl mpi.ImplKind) (float64, string) {
		series, runtime := runWithSeries("random-barrier", impl, pperfmark.Params{},
			[]metricPair{{"sync", "sync_wait_inclusive", resource.WholeProgram()}})
		secs := sim.Time(runtime).Seconds()
		var fr []float64
		for _, p := range series["sync"].Procs() {
			fr = append(fr, series["sync"].ProcHistogram(p).Total()/secs)
		}
		return stats.Mean(fr), series["sync"].Histogram().Render(48)
	}
	lamAvg, lamHist := measure(mpi.LAM)
	mpichAvg, _ := measure(mpi.MPICH)
	r.ok(lamAvg > 0.45 && lamAvg < 0.8, "LAM avg sync %.2f out of band", lamAvg)
	r.ok(mpichAvg > 0.45 && mpichAvg < 0.85, "MPICH avg sync %.2f out of band", mpichAvg)
	r.ok(mpichAvg >= lamAvg-0.05, "MPICH (%.2f) should be ≥ LAM (%.2f) - ε", mpichAvg, lamAvg)
	r.Measured = fmt.Sprintf("average inclusive sync %s (LAM) / %s (MPICH)", pct(lamAvg), pct(mpichAvg))
	r.Output = "LAM aggregate sync/bin: |" + lamHist + "|"
	return r
}

// fig19 is the gprof flat profile of a non-MPI hot-procedure run.
func fig19() *Result {
	r := &Result{ID: "fig19", Title: "gprof flat profile of hot-procedure", OK: true,
		Paper: "bottleneckProcedure 100% of time; equal call counts; irrelevantProcedures ≈0 µs/call"}
	eng := sim.NewEngine(3)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(1, 1), mpi.NewImpl(mpi.LAM))
	prof := gprofsim.Attach(w)
	w.Register("hot", func(rk *mpi.Rank, _ []string) {
		for i := 0; i < 500; i++ {
			rk.Call("hotprocedure.c", "bottleneckProcedure", func() { rk.Compute(10 * sim.Millisecond) })
			for k := 0; k < 12; k++ {
				rk.Call("hotprocedure.c", fmt.Sprintf("irrelevantProcedure%d", k), func() {
					rk.Compute(10 * sim.Microsecond)
				})
			}
		}
	})
	if _, err := w.LaunchN("hot", 1, nil); err != nil {
		panic(err)
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	snap := prof.Snapshot()
	top := snap.Percent("bottleneckProcedure")
	r.ok(top > 95, "bottleneckProcedure %.1f%%, want ≈100%%", top)
	r.ok(snap.Funcs[0].Name == "bottleneckProcedure", "top function %s", snap.Funcs[0].Name)
	r.Measured = fmt.Sprintf("bottleneckProcedure %.2f%% of self time, %d calls", top, snap.Funcs[0].Calls)
	r.Output = snap.Render()
	return r
}

// fig20 covers hot-procedure and sstwod PC outputs.
func fig20() *Result {
	r := &Result{ID: "fig20", Title: "PC output for hot-procedure and sstwod", OK: true,
		Paper: "hot-procedure: CPUBound → bottleneckProcedure; sstwod: sync → exchng2 → MPI_Sendrecv and MPI_Allreduce"}
	hot := runSuite("hot-procedure", mpi.LAM, pperfmark.RunOptions{})
	sst := runSuite("sstwod", mpi.LAM, pperfmark.RunOptions{})
	r.ok(hasCPU(hot, "bottleneckProcedure"), "hot: bottleneckProcedure missing")
	r.ok(!hasCPU(hot, "irrelevantProcedure"), "hot: irrelevant procedure implicated")
	r.ok(hasSync(sst, "exchng2"), "sstwod: exchng2 missing")
	r.ok(hasSync(sst, "MPI_Sendrecv"), "sstwod: MPI_Sendrecv missing")
	r.ok(hasSync(sst, "MPI_Allreduce"), "sstwod: MPI_Allreduce missing")
	r.Measured = "hot-procedure CPU bound in bottleneckProcedure; sstwod sync in exchng2→MPI_Sendrecv and MPI_Allreduce"
	r.Output = "--- hot-procedure ---\n" + hot.PC.Render() + "--- sstwod ---\n" + sst.PC.Render()
	return r
}
