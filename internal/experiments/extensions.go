package experiments

import (
	"fmt"

	"pperf/internal/consultant"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
)

func init() {
	register("extensions", extensions)
}

// extensions runs the delivered-future-work programs: the passive-target
// test the paper could not implement in 2004 (§5.2.1.1: neither LAM nor
// MPICH2 supported passive-target synchronization) and an MPI-I/O-bound
// program exercising the §3 discussion.
func extensions() *Result {
	r := &Result{ID: "extensions", Title: "Delivered future work (beyond the paper's tables)", OK: true,
		Paper: "passive-target PPerfMark programs planned but unimplementable; MPI-I/O measurement discussed (§3) but not evaluated"}

	// winlock-sync under the Reference personality.
	wl := runSuite("winlock-sync", mpi.Reference, pperfmark.RunOptions{})
	r.ok(wl.PC.TopLevelTrue(consultant.HypSync), "winlock: sync false")
	r.ok(hasSync(wl, "MPI_Win_lock") || hasSync(wl, "MPI_Win_unlock"), "winlock: lock waiting missing")
	// Under LAM it is skipped, preserving the paper's 2004 reality.
	lamRes, err := pperfmark.Run("winlock-sync", pperfmark.RunOptions{Impl: mpi.LAM})
	if err != nil {
		panic(err)
	}
	r.ok(lamRes.Unsupported != nil, "winlock should be unsupported under LAM")

	// fileio-bound: ExcessiveIOBlockingTime through MPI-I/O.
	fio := runSuite("fileio-bound", mpi.MPICH2, pperfmark.RunOptions{})
	r.ok(fio.PC.TopLevelTrue(consultant.HypIO), "fileio: IO hypothesis false")

	r.Measured = fmt.Sprintf(
		"winlock-sync: passive-target waiting diagnosed under Reference (sync %.2f), skipped under LAM; fileio-bound: IO blocking diagnosed (%.2f)",
		findingValue(wl, consultant.HypSync), findingValue(fio, consultant.HypIO))
	r.Output = "--- winlock-sync (Reference personality) ---\n" + wl.PC.Render() +
		"--- fileio-bound (MPICH2) ---\n" + fio.PC.Render()
	return r
}

// findingValue returns the top-level value of a hypothesis.
func findingValue(res *pperfmark.Result, hyp string) float64 {
	for _, root := range res.PC.Roots() {
		if root.Hypothesis == hyp {
			return root.Value
		}
	}
	return 0
}
