package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"fig24", "presta", "extensions"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

// runExp asserts one experiment reproduces the paper's shape.
func runExp(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Errorf("%s did not reproduce: %v", id, res.Notes)
	}
	if res.Measured == "" || res.Output == "" {
		t.Errorf("%s missing measured/output", id)
	}
	return res
}

func TestTable1(t *testing.T) { runExp(t, "table1") }
func TestFig1(t *testing.T)   { runExp(t, "fig1") }
func TestFig2(t *testing.T)   { runExp(t, "fig2") }

func TestFig4ByteEstimate(t *testing.T) {
	res := runExp(t, "fig4")
	// The estimate characteristically undershoots slightly (end-bin
	// elimination), as the paper's 199.3M-of-200M does.
	if !strings.Contains(res.Measured, "estimate") {
		t.Errorf("measured = %q", res.Measured)
	}
}

func TestFig12Jumpshot(t *testing.T)  { runExp(t, "fig12") }
func TestFig15CPUShares(t *testing.T) { runExp(t, "fig15") }
func TestFig17Preview(t *testing.T)   { runExp(t, "fig17") }
func TestFig19Gprof(t *testing.T)     { runExp(t, "fig19") }

func TestRenderShape(t *testing.T) {
	res := runExp(t, "fig2")
	out := res.Render()
	for _, want := range []string{"FIG2", "REPRODUCED", "paper:", "measured:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
