// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) on the simulated substrate, producing the
// condensed Performance Consultant outputs, histograms, Jumpshot-style
// views, gprof profile, PPerfMark tables and Presta comparison that
// EXPERIMENTS.md records. Each experiment returns its rendered artifact plus
// a shape check against what the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment key, e.g. "fig3", "table2".
	ID string
	// Title describes the artifact.
	Title string
	// Paper summarizes what the paper reports.
	Paper string
	// Measured summarizes what this reproduction measured.
	Measured string
	// Output is the rendered artifact (PC tree, table, histogram...).
	Output string
	// OK reports whether the paper's qualitative shape was reproduced.
	OK bool
	// Notes carries mismatches or caveats.
	Notes []string
}

func (r *Result) ok(cond bool, note string, args ...any) {
	if !cond {
		r.OK = false
		r.Notes = append(r.Notes, fmt.Sprintf(note, args...))
	}
}

// Render formats the result for the report.
func (r *Result) Render() string {
	var b strings.Builder
	status := "REPRODUCED"
	if !r.OK {
		status = "MISMATCH"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", strings.ToUpper(r.ID), r.Title, status)
	fmt.Fprintf(&b, "   paper:    %s\n", r.Paper)
	fmt.Fprintf(&b, "   measured: %s\n", r.Measured)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   note:     %s\n", n)
	}
	if r.Output != "" {
		for _, line := range strings.Split(strings.TrimRight(r.Output, "\n"), "\n") {
			b.WriteString("   | " + line + "\n")
		}
	}
	return b.String()
}

// registry of experiment runners by id.
var registry = map[string]func() *Result{}
var order []string

func register(id string, fn func() *Result) {
	registry[id] = fn
	order = append(order, id)
}

// IDs lists all experiment ids in evaluation order.
func IDs() []string { return append([]string(nil), order...) }

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	fn, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return fn(), nil
}

// RunAll executes every experiment in order.
func RunAll() []*Result {
	out := make([]*Result, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id]())
	}
	return out
}
