package experiments

import (
	"fmt"
	"strings"

	"pperf/internal/mdl"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
)

func init() {
	register("table1", table1)
	register("table2", table2)
	register("table3", table3)
}

// table1 verifies that every RMA metric of the paper's Table 1 exists in the
// standard library with the right kind of definition.
func table1() *Result {
	r := &Result{
		ID:    "table1",
		Title: "RMA metric definitions",
		Paper: "12 RMA metrics: op counts, byte counts, active/passive/general sync wait, sync ops",
		OK:    true,
	}
	lib := mdl.StdLib()
	rows := []struct {
		name  string
		units string
	}{
		{"rma_put_ops", "ops"}, {"rma_get_ops", "ops"}, {"rma_acc_ops", "ops"},
		{"rma_ops", "ops"},
		{"rma_put_bytes", "bytes"}, {"rma_get_bytes", "bytes"},
		{"rma_acc_bytes", "bytes"}, {"rma_bytes", "bytes"},
		{"at_rma_sync_wait", "CPUs"}, {"pt_rma_sync_wait", "CPUs"},
		{"rma_sync_wait", "CPUs"}, {"rma_sync_ops", "ops"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %s\n", "Metric", "Units")
	found := 0
	for _, row := range rows {
		m := lib.Metric(row.name)
		r.ok(m != nil, "metric %s missing", row.name)
		if m != nil {
			found++
			r.ok(m.Def().Units == row.units, "metric %s units %q, want %q", row.name, m.Def().Units, row.units)
			fmt.Fprintf(&b, "%-20s %s\n", row.name, m.Def().Units)
		}
	}
	r.Measured = fmt.Sprintf("%d/12 Table-1 metrics compiled from MDL", found)
	r.Output = b.String()
	return r
}

// table2 reruns the MPI-1 suite under LAM and MPICH.
func table2() *Result {
	r := &Result{
		ID:    "table2",
		Title: "PPerfMark MPI-1 results",
		Paper: "Pass for all programs except system-time (Fail: no system-time metrics)",
		OK:    true,
	}
	rows := pperfmark.RunTable(false, []mpi.ImplKind{mpi.LAM, mpi.MPICH}, pperfmark.RunOptions{})
	pass, fail := 0, 0
	for _, row := range rows {
		if row.Err != nil {
			r.ok(false, "run error: %v", row.Err)
			continue
		}
		if row.Verdict.Pass {
			pass++
		} else {
			fail++
			r.ok(false, "%s/%s: %v", row.Verdict.Program, row.Verdict.Impl, row.Verdict.Problems)
		}
	}
	r.Measured = fmt.Sprintf("%d rows as the paper reports, %d mismatched", pass, fail)
	r.Output = pperfmark.RenderTable("Table 2: PPerfMark MPI-1 program results", rows)
	return r
}

// table3 reruns the MPI-2 suite under LAM and MPICH2.
func table3() *Result {
	r := &Result{
		ID:    "table3",
		Title: "PPerfMark MPI-2 results",
		Paper: "Pass for all programs (spawn programs under LAM only)",
		OK:    true,
	}
	rows := pperfmark.RunTable(true, []mpi.ImplKind{mpi.LAM, mpi.MPICH2}, pperfmark.RunOptions{})
	pass, skip := 0, 0
	for _, row := range rows {
		if row.Err != nil {
			r.ok(false, "run error: %v", row.Err)
			continue
		}
		switch {
		case row.Verdict.Skipped != "":
			skip++
		case row.Verdict.Pass:
			pass++
		default:
			r.ok(false, "%s/%s: %v", row.Verdict.Program, row.Verdict.Impl, row.Verdict.Problems)
		}
	}
	r.Measured = fmt.Sprintf("%d rows reproduced, %d skipped (MPICH2 lacks spawn, as in the paper)", pass, skip)
	r.Output = pperfmark.RenderTable("Table 3: PPerfMark MPI-2 program results", rows)
	return r
}
