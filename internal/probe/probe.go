// Package probe implements the dynamic-instrumentation layer of the tool:
// the analogue of Paradyn's runtime code patching. Simulated programs route
// every traced function call (MPI routines and application procedures)
// through a per-process dispatch table; the performance tool inserts and
// deletes probe handlers at function entry and return points *while the
// program runs*, which is what lets the Performance Consultant pay the cost
// of measurement only where a problem is suspected.
package probe

import (
	"fmt"
	"sort"

	"pperf/internal/sim"
)

// Where identifies an instrumentation point within a function.
type Where int

const (
	// Entry instruments the function's entry (Paradyn's func.entry).
	Entry Where = iota
	// Return instruments the function's return (Paradyn's func.return).
	Return
)

func (w Where) String() string {
	if w == Entry {
		return "entry"
	}
	return "return"
}

// Order says where in an instrumentation point's probe list a new probe
// lands, matching MDL's append/prepend.
type Order int

const (
	Append Order = iota
	Prepend
)

// Function describes an instrumentable function: its symbol name and the
// module (source file or library) it belongs to, which is where it appears
// in the tool's Code resource hierarchy.
type Function struct {
	Name   string
	Module string
}

// Event is the information delivered to a probe handler when its
// instrumentation point executes.
type Event struct {
	Proc  *Process
	Func  *Function
	Where Where
	// Args are the traced call's arguments ($arg[n] in MDL). At Return
	// points the same argument vector as at Entry is visible, matching how
	// Paradyn reads registers/stack at the return point.
	Args []any
	// Time is the process-local virtual time of the event.
	Time sim.Time
	// CPUTime is the process's accumulated user CPU (process) time.
	CPUTime sim.Duration
}

// Arg returns Args[i], or nil if out of range (MDL's $arg[i]).
func (ev *Event) Arg(i int) any {
	if i < 0 || i >= len(ev.Args) {
		return nil
	}
	return ev.Args[i]
}

// Handler is a probe body. Handlers run synchronously in the traced
// process's context.
type Handler func(ev *Event)

// ID identifies an inserted probe so it can be deleted.
type ID int64

type probeRec struct {
	id ID
	fn Handler
}

type funcInstr struct {
	entry []probeRec
	ret   []probeRec
}

// Clock provides a process's notion of time to the probe layer.
type Clock interface {
	// Now is the process's local virtual time.
	Now() sim.Time
	// CPUTime is the process's accumulated user CPU time.
	CPUTime() sim.Duration
	// AddOverhead charges instrumentation-execution cost to the process.
	AddOverhead(d sim.Duration)
}

// Process holds one simulated process's instrumentation state. It is not
// safe for concurrent use; the simulation engine guarantees sequential
// execution.
type Process struct {
	name   string
	clock  Clock
	instr  map[string]*funcInstr
	nextID ID
	where  map[ID]string // probe id → function name, for removal

	// PerProbeCost is the virtual-time overhead charged to the process for
	// each probe execution (the instrumentation-perturbation model; see the
	// probe-overhead ablation).
	PerProbeCost sim.Duration

	// Executions counts probe-handler executions, for overhead reporting.
	Executions int64

	// stack is the dynamic call stack of traced functions, used for
	// call-graph discovery and inclusive-metric constraints.
	stack []*Function

	// edges records observed caller→callee pairs for the Performance
	// Consultant's call-graph-based search.
	edges map[[2]string]bool

	// OnFirstCall, if non-nil, is invoked the first time each distinct
	// function executes in this process (function resource discovery).
	OnFirstCall func(f *Function)

	// OnFire, if non-nil, is invoked after an instrumentation point runs its
	// handlers: fn is the function, w the point, n the handler count, t the
	// process-local time. The tracing subsystem uses it to record probe
	// firings without the probe layer depending on the trace package.
	OnFire func(fn string, w Where, n int, t sim.Time)

	seen map[string]bool
}

// NewProcess creates the instrumentation state for one process.
func NewProcess(name string, clock Clock) *Process {
	return &Process{
		name:  name,
		clock: clock,
		instr: map[string]*funcInstr{},
		where: map[ID]string{},
		edges: map[[2]string]bool{},
		seen:  map[string]bool{},
	}
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Insert adds a probe at the given point of the named function and returns
// its removal ID. Insertion takes effect immediately: the next execution of
// the point runs the handler. This is the "dynamic" in dynamic
// instrumentation — it happens mid-run.
func (p *Process) Insert(fn string, w Where, ord Order, h Handler) ID {
	fi := p.instr[fn]
	if fi == nil {
		fi = &funcInstr{}
		p.instr[fn] = fi
	}
	p.nextID++
	id := p.nextID
	rec := probeRec{id: id, fn: h}
	list := &fi.entry
	if w == Return {
		list = &fi.ret
	}
	if ord == Prepend {
		*list = append([]probeRec{rec}, *list...)
	} else {
		*list = append(*list, rec)
	}
	p.where[id] = fn
	return id
}

// Remove deletes a previously inserted probe. Removing an unknown ID is a
// no-op, mirroring how deleting already-removed instrumentation is harmless.
func (p *Process) Remove(id ID) {
	fn, ok := p.where[id]
	if !ok {
		return
	}
	delete(p.where, id)
	fi := p.instr[fn]
	if fi == nil {
		return
	}
	fi.entry = removeRec(fi.entry, id)
	fi.ret = removeRec(fi.ret, id)
}

func removeRec(list []probeRec, id ID) []probeRec {
	for i, r := range list {
		if r.id == id {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

// ActiveProbes returns the number of currently inserted probes.
func (p *Process) ActiveProbes() int { return len(p.where) }

// Enter fires the entry point of f. Programs and the MPI runtime call this
// (via higher-level wrappers) at the start of every traced function.
func (p *Process) Enter(f *Function, args ...any) {
	if !p.seen[f.Name] {
		p.seen[f.Name] = true
		if p.OnFirstCall != nil {
			p.OnFirstCall(f)
		}
	}
	if n := len(p.stack); n > 0 {
		p.edges[[2]string{p.stack[n-1].Name, f.Name}] = true
	}
	p.stack = append(p.stack, f)
	p.fire(f, Entry, args)
}

// Leave fires the return point of f and pops the call stack.
func (p *Process) Leave(f *Function, args ...any) {
	p.fire(f, Return, args)
	if n := len(p.stack); n > 0 && p.stack[n-1] == f {
		p.stack = p.stack[:n-1]
	}
}

// fire runs the probes installed at (f, w).
func (p *Process) fire(f *Function, w Where, args []any) {
	fi := p.instr[f.Name]
	if fi == nil {
		return
	}
	list := fi.entry
	if w == Return {
		list = fi.ret
	}
	if len(list) == 0 {
		return
	}
	ev := Event{
		Proc: p, Func: f, Where: w, Args: args,
		Time: p.clock.Now(), CPUTime: p.clock.CPUTime(),
	}
	for _, r := range list {
		r.fn(&ev)
		p.Executions++
	}
	if p.PerProbeCost > 0 {
		p.clock.AddOverhead(sim.Duration(len(list)) * p.PerProbeCost)
	}
	if p.OnFire != nil {
		p.OnFire(f.Name, w, len(list), p.clock.Now())
	}
}

// Stack returns the current traced call stack (innermost last).
func (p *Process) Stack() []*Function { return p.stack }

// InFunction reports whether the named function is anywhere on the current
// call stack — the predicate behind inclusive procedure constraints.
func (p *Process) InFunction(name string) bool {
	for _, f := range p.stack {
		if f.Name == name {
			return true
		}
	}
	return false
}

// CallEdges returns the observed caller→callee pairs, sorted, as
// "caller→callee" strings. The daemon forwards these to the front end for
// the Performance Consultant's call-graph search.
func (p *Process) CallEdges() [][2]string {
	out := make([][2]string, 0, len(p.edges))
	for e := range p.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// String describes the process's instrumentation state.
func (p *Process) String() string {
	return fmt.Sprintf("probe.Process(%s, %d probes)", p.name, len(p.where))
}
