package probe

import (
	"testing"
	"testing/quick"

	"pperf/internal/sim"
)

// fakeClock implements Clock for tests.
type fakeClock struct {
	now      sim.Time
	cpu      sim.Duration
	overhead sim.Duration
}

func (c *fakeClock) Now() sim.Time              { return c.now }
func (c *fakeClock) CPUTime() sim.Duration      { return c.cpu }
func (c *fakeClock) AddOverhead(d sim.Duration) { c.overhead += d }

var fSend = &Function{Name: "MPI_Send", Module: "libmpi"}
var fApp = &Function{Name: "Gsend_message", Module: "app.c"}

func TestInsertFireRemove(t *testing.T) {
	clk := &fakeClock{}
	p := NewProcess("p0", clk)
	count := 0
	id := p.Insert("MPI_Send", Entry, Append, func(ev *Event) { count++ })
	p.Enter(fSend, nil, 10)
	p.Leave(fSend, nil, 10)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	p.Remove(id)
	p.Enter(fSend)
	p.Leave(fSend)
	if count != 1 {
		t.Errorf("probe fired after removal")
	}
	if p.ActiveProbes() != 0 {
		t.Errorf("ActiveProbes = %d", p.ActiveProbes())
	}
}

func TestEntryAndReturnProbesSeparate(t *testing.T) {
	p := NewProcess("p0", &fakeClock{})
	var seq []string
	p.Insert("f", Entry, Append, func(*Event) { seq = append(seq, "entry") })
	p.Insert("f", Return, Append, func(*Event) { seq = append(seq, "return") })
	f := &Function{Name: "f"}
	p.Enter(f)
	p.Leave(f)
	if len(seq) != 2 || seq[0] != "entry" || seq[1] != "return" {
		t.Errorf("seq = %v", seq)
	}
}

func TestPrependOrdering(t *testing.T) {
	p := NewProcess("p0", &fakeClock{})
	var seq []int
	p.Insert("f", Entry, Append, func(*Event) { seq = append(seq, 1) })
	p.Insert("f", Entry, Append, func(*Event) { seq = append(seq, 2) })
	p.Insert("f", Entry, Prepend, func(*Event) { seq = append(seq, 0) })
	f := &Function{Name: "f"}
	p.Enter(f)
	if len(seq) != 3 || seq[0] != 0 || seq[1] != 1 || seq[2] != 2 {
		t.Errorf("seq = %v, want [0 1 2]", seq)
	}
}

func TestEventCarriesArgsAndTime(t *testing.T) {
	clk := &fakeClock{now: sim.Time(5 * sim.Second), cpu: 3 * sim.Second}
	p := NewProcess("p0", clk)
	var got *Event
	p.Insert("MPI_Send", Entry, Append, func(ev *Event) {
		e := *ev
		got = &e
	})
	p.Enter(fSend, "buf", 42, "MPI_INT")
	if got == nil {
		t.Fatal("probe did not fire")
	}
	if got.Arg(1) != 42 || got.Arg(2) != "MPI_INT" {
		t.Errorf("args = %v", got.Args)
	}
	if got.Arg(99) != nil || got.Arg(-1) != nil {
		t.Error("out-of-range Arg should be nil")
	}
	if got.Time != sim.Time(5*sim.Second) || got.CPUTime != 3*sim.Second {
		t.Errorf("time=%v cpu=%v", got.Time, got.CPUTime)
	}
}

func TestCallStackAndInFunction(t *testing.T) {
	p := NewProcess("p0", &fakeClock{})
	p.Enter(fApp)
	if !p.InFunction("Gsend_message") {
		t.Error("InFunction should see Gsend_message")
	}
	p.Enter(fSend)
	if len(p.Stack()) != 2 {
		t.Errorf("stack depth = %d", len(p.Stack()))
	}
	if !p.InFunction("Gsend_message") || !p.InFunction("MPI_Send") {
		t.Error("both functions should be on stack")
	}
	p.Leave(fSend)
	if p.InFunction("MPI_Send") {
		t.Error("MPI_Send should be popped")
	}
	p.Leave(fApp)
	if len(p.Stack()) != 0 {
		t.Error("stack should be empty")
	}
}

func TestCallEdges(t *testing.T) {
	p := NewProcess("p0", &fakeClock{})
	for i := 0; i < 3; i++ { // repeated calls produce one edge
		p.Enter(fApp)
		p.Enter(fSend)
		p.Leave(fSend)
		p.Leave(fApp)
	}
	edges := p.CallEdges()
	if len(edges) != 1 || edges[0] != [2]string{"Gsend_message", "MPI_Send"} {
		t.Errorf("edges = %v", edges)
	}
}

func TestFirstCallDiscovery(t *testing.T) {
	p := NewProcess("p0", &fakeClock{})
	var discovered []string
	p.OnFirstCall = func(f *Function) { discovered = append(discovered, f.Name) }
	p.Enter(fApp)
	p.Enter(fSend)
	p.Leave(fSend)
	p.Enter(fSend)
	p.Leave(fSend)
	p.Leave(fApp)
	if len(discovered) != 2 {
		t.Errorf("discovered = %v, want each function once", discovered)
	}
}

func TestProbeOverheadCharged(t *testing.T) {
	clk := &fakeClock{}
	p := NewProcess("p0", clk)
	p.PerProbeCost = 100 * sim.Nanosecond
	p.Insert("f", Entry, Append, func(*Event) {})
	p.Insert("f", Entry, Append, func(*Event) {})
	f := &Function{Name: "f"}
	p.Enter(f)
	p.Leave(f)
	if clk.overhead != 200*sim.Nanosecond {
		t.Errorf("overhead = %v, want 200ns", clk.overhead)
	}
	if p.Executions != 2 {
		t.Errorf("executions = %d", p.Executions)
	}
}

func TestNoProbesNoOverhead(t *testing.T) {
	clk := &fakeClock{}
	p := NewProcess("p0", clk)
	p.PerProbeCost = 100 * sim.Nanosecond
	f := &Function{Name: "f"}
	p.Enter(f)
	p.Leave(f)
	if clk.overhead != 0 || p.Executions != 0 {
		t.Error("uninstrumented calls must be free")
	}
}

func TestRemoveUnknownIDIsNoop(t *testing.T) {
	p := NewProcess("p0", &fakeClock{})
	p.Remove(ID(12345)) // must not panic
}

func TestInsertDuringRun(t *testing.T) {
	// Dynamic instrumentation: a probe inserted between calls takes effect
	// on the next call.
	p := NewProcess("p0", &fakeClock{})
	f := &Function{Name: "f"}
	count := 0
	p.Enter(f)
	p.Leave(f)
	p.Insert("f", Entry, Append, func(*Event) { count++ })
	p.Enter(f)
	p.Leave(f)
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

// Property: after any sequence of inserts and removes, ActiveProbes equals
// inserts minus removes, and firing runs exactly the live probes.
func TestPropertyInsertRemoveBalance(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewProcess("p", &fakeClock{})
		fn := &Function{Name: "f"}
		var ids []ID
		live := 0
		for _, ins := range ops {
			if ins || len(ids) == 0 {
				ids = append(ids, p.Insert("f", Entry, Append, func(*Event) {}))
				live++
			} else {
				p.Remove(ids[0])
				ids = ids[1:]
				live--
			}
		}
		if p.ActiveProbes() != live {
			return false
		}
		before := p.Executions
		p.Enter(fn)
		return p.Executions-before == int64(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
