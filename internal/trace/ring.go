package trace

// Recorder is a fixed-capacity ring buffer of spans for one track. When the
// track outruns its drains the oldest spans are evicted and counted, so a
// merged timeline can report exactly how much history was lost instead of
// silently rendering a partial trace.
//
// The simulation engine runs exactly one process at a time, and daemons
// drain recorders from engine context too, so Recorder needs no locking.
type Recorder struct {
	proc    string
	node    string
	buf     []Span
	start   int // index of oldest span
	n       int // live spans
	dropped int64
}

// NewRecorder returns a recorder for one track with the given capacity
// (DefaultRingCapacity if cap <= 0).
func NewRecorder(proc, node string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Recorder{proc: proc, node: node, buf: make([]Span, capacity)}
}

// Proc returns the track name.
func (r *Recorder) Proc() string { return r.proc }

// Node returns the track's cluster node.
func (r *Recorder) Node() string { return r.node }

// Record appends a span, evicting the oldest if the ring is full.
func (r *Recorder) Record(s Span) {
	s.Proc = r.proc
	s.Node = r.node
	if r.n == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.n--
		r.dropped++
	}
	r.buf[(r.start+r.n)%len(r.buf)] = s
	r.n++
}

// Len returns the number of undrained spans.
func (r *Recorder) Len() int { return r.n }

// Dropped returns the cumulative number of evicted spans.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Drain removes and returns all buffered spans in record order. It returns
// nil when the ring is empty so callers can skip empty shards cheaply.
func (r *Recorder) Drain() []Span {
	if r.n == 0 {
		return nil
	}
	out := make([]Span, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	r.start = 0
	r.n = 0
	return out
}
