package trace

// Tests for the three span-loss counters (ring eviction, outbox/bulk-queue
// eviction, undelivered-at-exit) and the exporters' incomplete-trace notice.

import (
	"bytes"
	"strings"
	"testing"
)

func TestTimelineLossCounters(t *testing.T) {
	tl := NewTimeline()
	// OutboxLost and Dropped are cumulative per-track counters: the timeline
	// keeps the maximum, not the sum of every shard's stamp.
	tl.Ingest(Shard{Proc: "p0", Node: "node0", Spans: make([]Span, 2), Dropped: 1, OutboxLost: 3})
	tl.Ingest(Shard{Proc: "p0", Node: "node0", Spans: make([]Span, 1), Dropped: 4, OutboxLost: 3})
	tl.Ingest(Shard{Proc: "p1", Node: "node1", Spans: make([]Span, 1), OutboxLost: 2})

	if got := tl.Dropped(); got != 4 {
		t.Errorf("Dropped = %d, want 4 (max per track)", got)
	}
	if got := tl.OutboxLost(); got != 5 {
		t.Errorf("OutboxLost = %d, want 5 (3 + 2)", got)
	}

	// NoteUndelivered is idempotent: re-notes of the same total don't grow
	// it, and a larger total replaces a smaller one.
	tl.NoteUndelivered("p0", 5)
	tl.NoteUndelivered("p0", 5)
	tl.NoteUndelivered("p0", 3)
	if got := tl.Undelivered(); got != 5 {
		t.Errorf("Undelivered = %d, want 5", got)
	}
	tl.NoteUndelivered("p0", 7)
	if got := tl.Undelivered(); got != 7 {
		t.Errorf("Undelivered after larger note = %d, want 7", got)
	}
	if got := tl.Lost(); got != 4+5+7 {
		t.Errorf("Lost = %d, want %d", got, 4+5+7)
	}
}

func TestExportersFlagIncompleteTrace(t *testing.T) {
	tl := NewTimeline()
	tl.Ingest(Shard{Proc: "p0", Node: "node0", Spans: []Span{{Kind: ComputeSpan, Name: "compute"}}})
	tl.NoteUndelivered("p0", 2)

	const want = "[trace incomplete: 2 spans undelivered]"
	var chrome bytes.Buffer
	if err := WriteChrome(&chrome, tl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), want) {
		t.Errorf("Chrome export missing %q", want)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, tl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), want) {
		t.Errorf("CSV export missing %q", want)
	}
}

func TestExportersOmitNoticeWhenComplete(t *testing.T) {
	tl := NewTimeline()
	tl.Ingest(Shard{Proc: "p0", Node: "node0", Spans: []Span{{Kind: ComputeSpan, Name: "compute"}}})

	var chrome, csv bytes.Buffer
	if err := WriteChrome(&chrome, tl); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, tl); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"chrome": chrome.String(), "csv": csv.String()} {
		if strings.Contains(out, "trace incomplete") {
			t.Errorf("%s export flags a complete trace as incomplete", name)
		}
	}
}
