package trace

import (
	"pperf/internal/sim"
)

// Tracer is the per-run recording hub. The MPI runtime, probe layer, and
// daemons call its hook methods (from simulation-engine context, so no
// locking); it routes each record into the owning track's ring Recorder,
// assigns the global Seq order, and notifies observers (the MPE renderer
// feeds off the same stream).
//
// A nil *Tracer means tracing is disabled; every call site guards with a
// single pointer check so the disabled hot path allocates nothing.
type Tracer struct {
	cfg       Config
	seq       uint64
	flowSeq   uint64
	recs      map[string]*Recorder
	order     []string // track creation order
	open      map[string][]Span
	syncs     map[any]*syncGroup
	observers []func(Span)

	// fillHooks maps a node to its daemon's drain callback: when a recorder
	// on that node reaches the fill watermark the daemon ships it over the
	// bulk channel immediately instead of waiting for the next tick.
	fillHooks map[string]func(*Recorder)
	watermark int
	filling   bool // reentrancy guard: a drain callback must not trigger itself
}

type syncGroup struct {
	procs []string
}

// New returns a Tracer with the given config (nil means defaults).
func New(cfg *Config) *Tracer {
	t := &Tracer{
		recs:      make(map[string]*Recorder),
		open:      make(map[string][]Span),
		syncs:     make(map[any]*syncGroup),
		fillHooks: make(map[string]func(*Recorder)),
	}
	if cfg != nil {
		t.cfg = *cfg
	}
	capacity := t.cfg.RingCapacity
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	switch {
	case t.cfg.FlushWatermark < 0:
		t.watermark = capacity + 1 // unreachable: eager shipping disabled
	case t.cfg.FlushWatermark == 0:
		t.watermark = capacity / 2
	default:
		t.watermark = t.cfg.FlushWatermark
	}
	return t
}

// SetFillHook registers the drain callback for one node's recorders. The
// daemon owning the node installs it when bulk streaming is available; the
// tracer invokes it (from engine context) whenever a recorder on the node
// reaches the fill watermark.
func (t *Tracer) SetFillHook(node string, fn func(*Recorder)) {
	t.fillHooks[node] = fn
}

// AddObserver registers a callback invoked synchronously for every recorded
// span, in record order.
func (t *Tracer) AddObserver(fn func(Span)) {
	t.observers = append(t.observers, fn)
}

// rec returns (creating on first use) the recorder for a track.
func (t *Tracer) rec(proc, node string) *Recorder {
	r := t.recs[proc]
	if r == nil {
		r = NewRecorder(proc, node, t.cfg.RingCapacity)
		t.recs[proc] = r
		t.order = append(t.order, proc)
	}
	return r
}

// record stamps the global sequence number, stores the span, and notifies
// observers.
func (t *Tracer) record(proc, node string, s Span) {
	s.Seq = t.seq
	t.seq++
	r := t.rec(proc, node)
	r.Record(s)
	s.Proc = r.proc
	s.Node = r.node
	for _, fn := range t.observers {
		fn(s)
	}
	if fn := t.fillHooks[r.node]; fn != nil && r.n >= t.watermark && !t.filling {
		t.filling = true
		fn(r)
		t.filling = false
	}
}

// NewFlow allocates a flow id linking a matched pair for exporters.
func (t *Tracer) NewFlow() uint64 {
	t.flowSeq++
	return t.flowSeq
}

// BeginMPI opens an MPI call span. Calls nest: the span closes at the
// matching EndMPI. peer/tag/bytes/obj carry the call's argument metadata
// (zero values when inapplicable).
func (t *Tracer) BeginMPI(proc, node, fn string, at sim.Time, peer string, tag, bytes int, obj string) {
	t.open[proc] = append(t.open[proc], Span{
		Kind:  MPISpan,
		Node:  node,
		Name:  fn,
		Start: at,
		Peer:  peer,
		Tag:   tag,
		Bytes: bytes,
		Obj:   obj,
	})
}

// EndMPI closes the innermost open MPI call span on proc.
func (t *Tracer) EndMPI(proc string, at sim.Time) {
	stack := t.open[proc]
	if len(stack) == 0 {
		return
	}
	s := stack[len(stack)-1]
	t.open[proc] = stack[:len(stack)-1]
	s.End = at
	s.Depth = len(stack) - 1
	t.record(proc, s.Node, s)
}

// Compute records an application compute interval (system=true for
// library/system CPU time).
func (t *Tracer) Compute(proc, node string, start, end sim.Time, system bool) {
	name := "compute"
	if system {
		name = "system"
	}
	// Depth mirrors MPI nesting so compute inside a library call (e.g. the
	// MPI_Init startup cost) stays off the depth-0 critical-path track.
	t.record(proc, node, Span{Kind: ComputeSpan, Name: name, Start: start, End: end, Depth: len(t.open[proc])})
}

// ProbeFired records a dynamic-instrumentation firing: n handlers ran at
// an instrumentation point of fn.
func (t *Tracer) ProbeFired(proc, node, fn string, at sim.Time, n int) {
	t.record(proc, node, Span{Kind: ProbeEvent, Name: fn, Start: at, End: at, Tag: n})
}

// DaemonSample records one sampling tick on a daemon track (n = processes
// sampled).
func (t *Tracer) DaemonSample(daemon, node string, at sim.Time, n int) {
	t.record(daemon, node, Span{Kind: DaemonSample, Name: "sample", Start: at, End: at, Tag: n})
}

// Transport records transport activity ("enqueue", "replay", "shard", ...)
// on a daemon track.
func (t *Tracer) Transport(daemon, node, what string, at sim.Time) {
	t.record(daemon, node, Span{Kind: TransportEvent, Name: what, Start: at, End: at})
}

// Edge records a happens-before edge on the destination track. kind names
// the mechanism ("msg", "rendezvous", "credit", "sync", "post", "complete",
// "rma", "spawn"); wait marks edges the destination actually blocked on
// (the ones critical-path analysis follows); flow links the pair for
// exporters (0 = none).
func (t *Tracer) Edge(kind, fromProc, toProc, toNode string, fromT, toT sim.Time, tag, bytes int, flow uint64, wait bool) {
	t.record(toProc, toNode, Span{
		Kind:  EdgeEvent,
		Name:  kind,
		Start: fromT,
		End:   toT,
		Peer:  fromProc,
		Tag:   tag,
		Bytes: bytes,
		Flow:  flow,
		Wait:  wait,
	})
}

// SyncArrive notes that proc reached the internal synchronization point
// identified by key (any stable pointer) and will block until released.
func (t *Tracer) SyncArrive(key any, proc string) {
	g := t.syncs[key]
	if g == nil {
		g = &syncGroup{}
		t.syncs[key] = g
	}
	g.procs = append(g.procs, proc)
}

// SyncRelease emits releaser→waiter wait edges for every process parked at
// key and clears the group. what names the synchronization ("barrier",
// "coll", "init", ...).
func (t *Tracer) SyncRelease(key any, what, releaser string, at sim.Time) {
	g := t.syncs[key]
	if g == nil {
		return
	}
	delete(t.syncs, key)
	for _, p := range g.procs {
		if p == releaser {
			continue
		}
		// The waiter's node is wherever its recorder lives; arrivals always
		// follow a BeginMPI on the same proc, so the recorder exists.
		node := ""
		if r := t.recs[p]; r != nil {
			node = r.node
		}
		t.record(p, node, Span{
			Kind:  EdgeEvent,
			Name:  what,
			Start: at,
			End:   at,
			Peer:  releaser,
			Wait:  true,
		})
	}
}

// Mark records a miscellaneous instant marker on a track.
func (t *Tracer) Mark(proc, node, name string, at sim.Time) {
	t.record(proc, node, Span{Kind: MarkEvent, Name: name, Start: at, End: at})
}

// Recorders returns the recorders for tracks on the given node, in track
// creation order ("" returns all).
func (t *Tracer) Recorders(node string) []*Recorder {
	var out []*Recorder
	for _, p := range t.order {
		r := t.recs[p]
		if node == "" || r.node == node {
			out = append(out, r)
		}
	}
	return out
}

// Recorder returns the recorder for one track, or nil.
func (t *Tracer) Recorder(proc string) *Recorder { return t.recs[proc] }

// Procs returns all track names in creation order.
func (t *Tracer) Procs() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Dropped returns the total spans evicted across all tracks.
func (t *Tracer) Dropped() int64 {
	var n int64
	for _, r := range t.recs {
		n += r.dropped
	}
	return n
}

// DropsByProc returns per-track eviction counts for tracks that lost spans,
// sorted by track name.
func (t *Tracer) DropsByProc() map[string]int64 {
	out := make(map[string]int64)
	for p, r := range t.recs {
		if r.dropped > 0 {
			out[p] = r.dropped
		}
	}
	return out
}
