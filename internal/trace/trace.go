// Package trace implements the tool's distributed event-tracing subsystem:
// the always-correct, low-overhead observability layer that complements the
// sampling/Performance-Consultant pipeline the same way the paper pairs the
// tool with MPE/Jumpshot traces as an independent comparator (§5.1.4–5.1.6).
//
// The design mirrors the tool's own data path. Every simulated process owns
// a fixed-capacity ring-buffered span Recorder stamped with the
// deterministic virtual clock; the MPI runtime records call spans (with
// argument metadata: peer, tag, bytes, communicator/window name), compute
// intervals, probe firings, and the happens-before edges that message
// matching, flow-control credits, internal sync points, RMA epochs and
// spawn create. Each node's daemon periodically drains its processes'
// recorders into Shards and ships them through the existing resilient
// outbox/transport path; the front end merges shards into one globally
// ordered Timeline. On top of the merged timeline sit the Chrome
// trace-event/Perfetto and CSV exporters (export.go) and the critical-path
// analyzer (critpath.go).
//
// When no tracer is installed the subsystem is fully inert: the hot paths
// guard on a single nil pointer and allocate nothing (asserted by
// BenchmarkTraceDisabled). See TRACING.md for the user-facing story.
package trace

import (
	"pperf/internal/sim"
)

// Kind classifies a Span.
type Kind uint8

const (
	// MPISpan is one MPI call interval on a process track (Depth 0 is the
	// outermost call; internals of collectives nest below it).
	MPISpan Kind = iota
	// ComputeSpan is an application compute interval (user or system CPU).
	ComputeSpan
	// ProbeEvent is an instant event: dynamic instrumentation executed at a
	// function entry/return point.
	ProbeEvent
	// DaemonSample is an instant event on a daemon track: one sampling tick.
	DaemonSample
	// TransportEvent is an instant event on a daemon track: transport
	// activity (a report buffered to the outbox, an outbox replay, a trace
	// shard flushed).
	TransportEvent
	// EdgeEvent is a happens-before edge recorded on the *destination*
	// process's track: Peer is the source process, Start the source-side
	// time, End the destination-side time. Name says what created it
	// ("msg", "rendezvous", "credit", "sync", "post", "complete", "rma",
	// "spawn").
	EdgeEvent
	// MarkEvent is a miscellaneous instant marker.
	MarkEvent
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case MPISpan:
		return "mpi"
	case ComputeSpan:
		return "compute"
	case ProbeEvent:
		return "probe"
	case DaemonSample:
		return "sample"
	case TransportEvent:
		return "transport"
	case EdgeEvent:
		return "edge"
	case MarkEvent:
		return "mark"
	}
	return "?"
}

// Span is one trace record. Instant events have End == Start. All fields are
// plain values so shards gob-encode over the daemon transport unchanged.
type Span struct {
	// Seq is the global record order assigned by the Tracer — the
	// deterministic tie-break that keeps merged timelines byte-identical
	// across runs of the same seed.
	Seq  uint64
	Kind Kind
	// Proc is the owning track: a process name ("prog{N}") or a daemon name
	// ("paradynd@nodeK").
	Proc string
	// Node is the cluster node the track lives on.
	Node  string
	Name  string
	Start sim.Time
	End   sim.Time
	// Depth is the MPI call nesting depth (0 = outermost).
	Depth int

	// Argument metadata (zero/empty when inapplicable).
	Peer  string // edge source process, or peer rank for p2p/RMA calls
	Tag   int
	Bytes int
	Obj   string // communicator or window display name

	// Flow links a matched pair for exporter flow events (send→recv,
	// RMA origin→target); 0 means no flow.
	Flow uint64
	// Wait marks an EdgeEvent the destination actually blocked on; only
	// these participate in critical-path analysis.
	Wait bool
}

// Shard is one drained batch of a single track's spans, shipped from daemon
// to front end through the bulk channel of the report transport.
type Shard struct {
	Daemon string
	Proc   string
	Node   string
	Spans  []Span
	// Dropped is the cumulative count of spans the track's ring recorder
	// evicted before they could be drained (trace back-pressure accounting).
	Dropped int64
	// OutboxLost is the cumulative count of the track's spans that had been
	// drained from the recorder but were then evicted from the daemon's
	// bounded outbox/bulk queue before delivery. Like Dropped it is a
	// monotone per-track counter; the timeline keeps the maximum seen.
	OutboxLost int64
}

// Config tunes the tracing subsystem.
type Config struct {
	// RingCapacity is the per-track span ring size; older spans are evicted
	// (and counted) when a track outruns its drains. 0 means
	// DefaultRingCapacity.
	RingCapacity int
	// FlushWatermark is the recorder fill level at which the owning daemon
	// is asked to drain and ship the track immediately over the bulk channel
	// instead of waiting for the next sampling tick. 0 means half the ring
	// capacity; negative disables eager shipping (shards then move only on
	// sampling ticks and the end-of-run flush, the pre-bulk-channel
	// behaviour).
	FlushWatermark int
}

// DefaultRingCapacity is the per-track recorder bound used when
// Config.RingCapacity is 0.
const DefaultRingCapacity = 1 << 15
