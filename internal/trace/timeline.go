package trace

import (
	"sort"
	"strings"
	"sync"
)

// Timeline is the front end's merged view of every shard the daemons
// shipped: one globally ordered span stream keyed by the deterministic
// virtual clock (ties broken by the Tracer's global Seq, so the merge is
// byte-identical across runs of the same seed).
//
// Unlike the Tracer (engine context only), shards can arrive from TCP
// listener goroutines, so Timeline locks.
type Timeline struct {
	mu         sync.Mutex
	byProc     map[string][]Span
	nodes      map[string]string
	dropped    map[string]int64
	outboxLost map[string]int64
	undeliv    map[string]int64
	shards     int
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{
		byProc:     make(map[string][]Span),
		nodes:      make(map[string]string),
		dropped:    make(map[string]int64),
		outboxLost: make(map[string]int64),
		undeliv:    make(map[string]int64),
	}
}

// Ingest merges one shard.
func (tl *Timeline) Ingest(sh Shard) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.shards++
	tl.byProc[sh.Proc] = append(tl.byProc[sh.Proc], sh.Spans...)
	tl.nodes[sh.Proc] = sh.Node
	if sh.Dropped > tl.dropped[sh.Proc] {
		tl.dropped[sh.Proc] = sh.Dropped
	}
	if sh.OutboxLost > tl.outboxLost[sh.Proc] {
		tl.outboxLost[sh.Proc] = sh.OutboxLost
	}
}

// Shards returns the number of shards ingested.
func (tl *Timeline) Shards() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.shards
}

// Dropped returns the total spans lost to ring eviction across all tracks.
func (tl *Timeline) Dropped() int64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var n int64
	for _, d := range tl.dropped {
		n += d
	}
	return n
}

// OutboxLost returns the total spans that were drained from recorders but
// evicted from a daemon's bounded outbox or bulk queue before delivery.
func (tl *Timeline) OutboxLost() int64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var n int64
	for _, d := range tl.outboxLost {
		n += d
	}
	return n
}

// NoteUndelivered records that n of proc's spans were still stranded in a
// daemon's queues when the run ended (the transport never recovered). The
// count is a per-track total, so repeated notes are idempotent (the maximum
// is kept).
func (tl *Timeline) NoteUndelivered(proc string, n int64) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if n > tl.undeliv[proc] {
		tl.undeliv[proc] = n
	}
}

// Undelivered returns the total spans stranded undelivered at end of run.
func (tl *Timeline) Undelivered() int64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var n int64
	for _, d := range tl.undeliv {
		n += d
	}
	return n
}

// Lost returns the total spans missing from the merged timeline for any
// reason: ring eviction, outbox/bulk-queue eviction, or stranded
// undelivered at exit.
func (tl *Timeline) Lost() int64 {
	return tl.Dropped() + tl.OutboxLost() + tl.Undelivered()
}

// Procs returns all track names: rank tracks first, then tool (daemon)
// tracks, each group ordered by first appearance in the global stream.
func (tl *Timeline) Procs() []string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.procsLocked()
}

func (tl *Timeline) procsLocked() []string {
	type first struct {
		proc string
		seq  uint64
	}
	var ranks, tools []first
	for p, spans := range tl.byProc {
		min := ^uint64(0)
		for _, s := range spans {
			if s.Seq < min {
				min = s.Seq
			}
		}
		f := first{p, min}
		if isToolTrack(p) {
			tools = append(tools, f)
		} else {
			ranks = append(ranks, f)
		}
	}
	order := func(fs []first) {
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].seq != fs[j].seq {
				return fs[i].seq < fs[j].seq
			}
			return fs[i].proc < fs[j].proc
		})
	}
	order(ranks)
	order(tools)
	out := make([]string, 0, len(ranks)+len(tools))
	for _, f := range ranks {
		out = append(out, f.proc)
	}
	for _, f := range tools {
		out = append(out, f.proc)
	}
	return out
}

// isToolTrack reports whether a track belongs to the tool (daemon) rather
// than an application rank.
func isToolTrack(proc string) bool { return strings.HasPrefix(proc, "paradynd@") }

// Node returns the cluster node a track lives on.
func (tl *Timeline) Node(proc string) string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.nodes[proc]
}

// Spans returns every merged span globally ordered by (Start, Seq).
func (tl *Timeline) Spans() []Span {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var out []Span
	for _, spans := range tl.byProc {
		out = append(out, spans...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ProcSpans returns one track's spans ordered by (Start, Seq).
func (tl *Timeline) ProcSpans(proc string) []Span {
	tl.mu.Lock()
	spans := tl.byProc[proc]
	out := make([]Span, len(spans))
	copy(out, spans)
	tl.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
