package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pperf/internal/sim"
)

func TestRingEvictionAndDropAccounting(t *testing.T) {
	r := NewRecorder("p0", "node0", 4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Seq: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	got := r.Drain()
	if len(got) != 4 {
		t.Fatalf("Drain len = %d, want 4", len(got))
	}
	for i, s := range got {
		if s.Seq != uint64(6+i) {
			t.Errorf("drained[%d].Seq = %d, want %d (oldest evicted first)", i, s.Seq, 6+i)
		}
	}
	if r.Len() != 0 || r.Drain() != nil {
		t.Error("Drain should reset the ring")
	}
	if r.Dropped() != 6 {
		t.Error("drop count must survive Drain (cumulative)")
	}
}

func TestTracerSeqAndNesting(t *testing.T) {
	tr := New(nil)
	tr.BeginMPI("p0", "node0", "MPI_Barrier", 10, "", 0, 0, "comm-0")
	tr.BeginMPI("p0", "node0", "MPI_Isend", 11, "1", 5, 4, "comm-0")
	tr.EndMPI("p0", 12)
	tr.EndMPI("p0", 20)
	spans := tr.Recorder("p0").Drain()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Inner call ends (and records) first, at depth 1.
	if spans[0].Name != "MPI_Isend" || spans[0].Depth != 1 {
		t.Errorf("inner span = %+v, want MPI_Isend at depth 1", spans[0])
	}
	if spans[1].Name != "MPI_Barrier" || spans[1].Depth != 0 {
		t.Errorf("outer span = %+v, want MPI_Barrier at depth 0", spans[1])
	}
	if spans[0].Seq >= spans[1].Seq {
		t.Error("seq must increase in record order")
	}
	if spans[1].Start != 10 || spans[1].End != 20 {
		t.Errorf("outer span times = [%d,%d], want [10,20]", spans[1].Start, spans[1].End)
	}
}

func TestSyncReleaseEmitsWaiterEdges(t *testing.T) {
	tr := New(nil)
	// Give every proc a recorder so the release can resolve nodes.
	for _, p := range []string{"p0", "p1", "p2"} {
		tr.Compute(p, "node0", 0, 1, false)
	}
	key := new(int)
	tr.SyncArrive(key, "p0")
	tr.SyncArrive(key, "p1")
	tr.SyncRelease(key, "barrier", "p2", 50)
	for _, waiter := range []string{"p0", "p1"} {
		spans := tr.Recorder(waiter).Drain()
		found := false
		for _, s := range spans {
			if s.Kind == EdgeEvent && s.Name == "barrier" && s.Peer == "p2" &&
				s.Start == 50 && s.End == 50 && s.Wait {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no sync wait edge from releaser, spans = %+v", waiter, spans)
		}
	}
	// The releaser itself never waits on its own release.
	for _, s := range tr.Recorder("p2").Drain() {
		if s.Kind == EdgeEvent && s.Name == "barrier" {
			t.Error("releaser must not receive a sync edge")
		}
	}
}

func TestTimelineMergeOrdering(t *testing.T) {
	tl := NewTimeline()
	// Shards arrive out of order; the merge keys on (Start, Seq).
	tl.Ingest(Shard{Proc: "b{1}", Node: "n1", Spans: []Span{
		{Seq: 4, Kind: MPISpan, Proc: "b{1}", Start: 20, End: 30},
		{Seq: 2, Kind: MPISpan, Proc: "b{1}", Start: 5, End: 9},
	}})
	tl.Ingest(Shard{Proc: "paradynd@n0", Node: "n0", Spans: []Span{
		{Seq: 9, Kind: DaemonSample, Proc: "paradynd@n0", Start: 1, End: 1},
	}})
	tl.Ingest(Shard{Proc: "a{0}", Node: "n0", Spans: []Span{
		{Seq: 1, Kind: MPISpan, Proc: "a{0}", Start: 5, End: 10},
	}, Dropped: 3})
	tl.Ingest(Shard{Proc: "a{0}", Node: "n0", Spans: nil, Dropped: 7})

	spans := tl.Spans()
	var order []uint64
	for _, s := range spans {
		order = append(order, s.Seq)
	}
	want := []uint64{9, 1, 2, 4} // start 1, then start 5 seq 1 before seq 2, then start 20
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merged order = %v, want %v", order, want)
		}
	}
	// Rank tracks first (by first Seq), tool tracks last.
	procs := tl.Procs()
	if len(procs) != 3 || procs[0] != "a{0}" || procs[1] != "b{1}" || procs[2] != "paradynd@n0" {
		t.Errorf("Procs = %v", procs)
	}
	if tl.Shards() != 4 {
		t.Errorf("Shards = %d, want 4", tl.Shards())
	}
	// Cumulative drop counts keep the maximum per proc, not the sum.
	if tl.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", tl.Dropped())
	}
}

// syntheticTimeline builds a two-proc exchange: p0 computes then sends,
// p1 blocks in MPI_Recv until the message lands, then computes.
func syntheticTimeline() *Timeline {
	tl := NewTimeline()
	tl.Ingest(Shard{Proc: "p0", Node: "n0", Spans: []Span{
		{Seq: 1, Kind: ComputeSpan, Proc: "p0", Node: "n0", Name: "compute", Start: 0, End: 10},
		{Seq: 2, Kind: MPISpan, Proc: "p0", Node: "n0", Name: "MPI_Send", Start: 10, End: 11, Peer: "p1", Bytes: 4},
	}})
	tl.Ingest(Shard{Proc: "p1", Node: "n1", Spans: []Span{
		{Seq: 3, Kind: MPISpan, Proc: "p1", Node: "n1", Name: "MPI_Recv", Start: 0, End: 12, Peer: "p0", Bytes: 4},
		{Seq: 4, Kind: EdgeEvent, Proc: "p1", Node: "n1", Name: "msg", Peer: "p0", Start: 10, End: 12, Flow: 1, Wait: true},
		{Seq: 5, Kind: ComputeSpan, Proc: "p1", Node: "n1", Name: "compute", Start: 12, End: 20},
	}})
	return tl
}

func TestCriticalPathSynthetic(t *testing.T) {
	cp := Analyze(syntheticTimeline())
	if cp.Total != 20 {
		t.Fatalf("Total = %v, want 20", cp.Total)
	}
	// Walk: p1 compute 12→20 (8), blocked MPI_Recv until edge at 12 (0),
	// transit 10→12 (2 network), jump to p0 at 10: compute 0→10 (10).
	if got := cp.ByFunc["compute"]; got != 18 {
		t.Errorf("compute = %v, want 18", got)
	}
	if got := cp.ByFunc["(network)"]; got != 2 {
		t.Errorf("(network) = %v, want 2", got)
	}
	if got := cp.ByResource["p1"]; got != 8 {
		t.Errorf("p1 = %v, want 8", got)
	}
	if got := cp.ByResource["p0"]; got != 10 {
		t.Errorf("p0 = %v, want 10", got)
	}
	var sum sim.Time
	for _, d := range cp.ByFunc {
		sum += d
	}
	if sum != cp.Total {
		t.Errorf("attributions sum to %v, want Total %v", sum, cp.Total)
	}
	if fn, _ := cp.Dominant(); fn != "compute" {
		t.Errorf("Dominant = %q", fn)
	}
	if res, _ := cp.DominantResource(); res != "p0" {
		t.Errorf("DominantResource = %q", res)
	}
	out := cp.Render()
	if !strings.Contains(out, "Critical path:") || !strings.Contains(out, "by function:") {
		t.Errorf("render:\n%s", out)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	cp := Analyze(NewTimeline())
	if cp.Total != 0 || cp.Steps != 0 {
		t.Errorf("empty analyze: %+v", cp)
	}
	if fn, _ := cp.Dominant(); fn != "" {
		t.Errorf("Dominant on empty = %q", fn)
	}
}

func TestWriteChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, syntheticTimeline()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e["ph"].(string)]++
	}
	if counts["X"] != 4 {
		t.Errorf("complete events = %d, want 4", counts["X"])
	}
	if counts["s"] != 1 || counts["f"] != 1 {
		t.Errorf("flow events s=%d f=%d, want 1/1", counts["s"], counts["f"])
	}
	if counts["M"] == 0 {
		t.Error("no metadata events")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, syntheticTimeline()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "seq,kind,proc,") {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 6 { // header + 5 spans
		t.Errorf("lines = %d, want 6:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(buf.String(), "MPI_Recv") {
		t.Error("CSV missing span names")
	}
}

func TestTracerDropsByProc(t *testing.T) {
	tr := New(&Config{RingCapacity: 2})
	for i := 0; i < 5; i++ {
		tr.Compute("p0", "n0", sim.Time(i), sim.Time(i+1), false)
	}
	tr.Compute("p1", "n0", 0, 1, false)
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
	byProc := tr.DropsByProc()
	if byProc["p0"] != 3 || byProc["p1"] != 0 {
		t.Errorf("DropsByProc = %v", byProc)
	}
	if got := len(tr.Recorders("")); got != 2 {
		t.Errorf("Recorders = %d, want 2", got)
	}
	if got := len(tr.Recorders("n0")); got != 2 {
		t.Errorf("Recorders(n0) = %d, want 2", got)
	}
}

func TestWriteChromeCounterTracks(t *testing.T) {
	counters := []CounterTrack{
		{Name: "mpi_sync_wait [/Code]", Points: []CounterPoint{{TsNs: 0, Value: 0}, {TsNs: 50, Value: 2.5}}},
		{Name: "msgs_sent [/Code]", Points: []CounterPoint{{TsNs: 0, Value: 1}}},
	}
	var plain, with bytes.Buffer
	if err := WriteChrome(&plain, syntheticTimeline()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeWith(&with, syntheticTimeline(), counters); err != nil {
		t.Fatal(err)
	}
	// Nil counters must leave the export byte-identical to WriteChrome.
	var nilCounters bytes.Buffer
	if err := WriteChromeWith(&nilCounters, syntheticTimeline(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), nilCounters.Bytes()) {
		t.Error("WriteChromeWith(nil) differs from WriteChrome")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(with.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var cEvents int
	var sawProcessName bool
	for _, e := range doc.TraceEvents {
		if e["ph"] == "C" {
			cEvents++
			if e["pid"].(float64) != counterPid {
				t.Errorf("counter event on pid %v", e["pid"])
			}
			if _, ok := e["args"].(map[string]any)["value"]; !ok {
				t.Errorf("counter event without value: %v", e)
			}
		}
		if e["ph"] == "M" && e["name"] == "process_name" && e["pid"].(float64) == counterPid {
			sawProcessName = true
		}
	}
	if cEvents != 3 {
		t.Errorf("counter events = %d, want 3", cEvents)
	}
	if !sawProcessName {
		t.Error("counter process not named")
	}
	// Span events must be untouched by the counter addition.
	if !bytes.Contains(with.Bytes(), []byte("MPI_Recv")) {
		t.Error("span events missing from counter export")
	}
}

// TestCriticalPathSlack pins the slack section: on-path functions report
// zero, and an off-path function's slack is its processes' smallest
// end-of-run idle tail.
func TestCriticalPathSlack(t *testing.T) {
	tl := syntheticTimeline()
	// p2 finishes at 14 and is never on the path (ends at 20 on p1): its
	// exclusive function waste_time has slack 20-14 = 6.
	tl.Ingest(Shard{Proc: "p2", Node: "n2", Spans: []Span{
		{Seq: 6, Kind: ComputeSpan, Proc: "p2", Node: "n2", Name: "waste_time", Start: 0, End: 14},
	}})
	cp := Analyze(tl)
	if got := cp.Slack["waste_time"]; got != 6 {
		t.Errorf("waste_time slack = %v, want 6", got)
	}
	if got, ok := cp.Slack["compute"]; !ok || got != 0 {
		t.Errorf("compute slack = %v (ok=%v), want 0 (on path)", got, ok)
	}
	if _, ok := cp.Slack["(app)"]; ok {
		t.Error("(app) bucket leaked into slack")
	}
	out := cp.Render()
	if !strings.Contains(out, "slack (how much a function could slow") ||
		!strings.Contains(out, "(on critical path)") {
		t.Errorf("render missing slack section:\n%s", out)
	}
}
