package trace

import (
	"fmt"
	"sort"
	"strings"

	"pperf/internal/sim"
)

// CriticalPath is the result of walking the merged timeline's
// happens-before edges backwards from the last event: an attribution of
// the end-to-end virtual runtime to the longest blocking chain, reported
// per function and per resource so it can be cross-checked against the
// Performance Consultant's diagnosis.
type CriticalPath struct {
	// Total is the walked virtual time (the global end of the trace); the
	// attributions below sum to exactly this.
	Total sim.Time
	// ByFunc charges time to MPI function names, "compute"/"system",
	// "(network)" for message transit on followed edges, and "(app)" for
	// untraced gaps.
	ByFunc map[string]sim.Time
	// ByResource charges the same time to the process it was spent on
	// ("(network)" for transit).
	ByResource map[string]sim.Time
	// Slack estimates, per traced function, how much the function could
	// slow down before the critical path shifts. Functions charged on the
	// path have zero slack by definition; an off-path function's slack is
	// the smallest end-of-run idle tail among the processes executing it —
	// the slowdown that would make one of those processes the new path
	// end. It is the per-process idle-tail approximation, not a full
	// what-if re-walk: it can overestimate when an interior wait edge
	// would shift the path before the process's finish line does.
	Slack map[string]sim.Time
	// Steps is the number of walk steps taken; Truncated reports the
	// safety cap fired (never in practice — edges strictly reduce time).
	Steps     int
	Truncated bool
}

// walk state: the per-proc depth-0 span and incoming wait-edge lists.
type procTrack struct {
	spans []Span // depth-0 MPI + compute, disjoint, sorted by Start
	edges []Span // incoming wait edges, sorted by End then Seq
}

const maxWalkSteps = 2_000_000

// Analyze walks the timeline's critical path. It returns a zero-total
// result for an empty timeline.
func Analyze(tl *Timeline) *CriticalPath {
	cp := &CriticalPath{
		ByFunc:     make(map[string]sim.Time),
		ByResource: make(map[string]sim.Time),
		Slack:      make(map[string]sim.Time),
	}
	tracks := make(map[string]*procTrack)
	var endProc string
	var endT sim.Time
	var endSeq uint64
	for _, p := range tl.Procs() {
		if isToolTrack(p) {
			continue // tool activity is not on the application's path
		}
		pt := &procTrack{}
		for _, s := range tl.ProcSpans(p) {
			switch s.Kind {
			case MPISpan, ComputeSpan:
				if s.Depth != 0 {
					continue
				}
				pt.spans = append(pt.spans, s)
				if s.End > endT || (s.End == endT && s.Seq < endSeq) || endProc == "" {
					endProc, endT, endSeq = p, s.End, s.Seq
				}
			case EdgeEvent:
				if s.Wait {
					pt.edges = append(pt.edges, s)
				}
			}
		}
		sort.Slice(pt.spans, func(i, j int) bool { return pt.spans[i].Start < pt.spans[j].Start })
		sort.Slice(pt.edges, func(i, j int) bool {
			if pt.edges[i].End != pt.edges[j].End {
				return pt.edges[i].End < pt.edges[j].End
			}
			return pt.edges[i].Seq < pt.edges[j].Seq
		})
		tracks[p] = pt
	}
	if endProc == "" {
		return cp
	}

	cp.Total = endT
	charge := func(fn, proc string, d sim.Time) {
		if d > 0 {
			cp.ByFunc[fn] += d
			cp.ByResource[proc] += d
		}
	}

	proc, t := endProc, endT
	for t > 0 {
		cp.Steps++
		if cp.Steps > maxWalkSteps {
			cp.Truncated = true
			break
		}
		pt := tracks[proc]
		var s *Span
		if pt != nil {
			// Latest depth-0 span starting strictly before t.
			i := sort.Search(len(pt.spans), func(i int) bool { return pt.spans[i].Start >= t })
			if i > 0 {
				s = &pt.spans[i-1]
			}
		}
		if s == nil {
			// Before the proc's first traced activity: follow a spawn edge
			// back to the parent if one exists, else the remainder is
			// untraced program time.
			if pt != nil {
				for i := range pt.edges {
					e := &pt.edges[i]
					if e.Name == "spawn" && e.End <= t {
						charge("(app)", proc, t-e.End)
						proc, t = e.Peer, e.Start
						goto next
					}
				}
			}
			charge("(app)", proc, t)
			t = 0
		next:
			continue
		}
		if s.End < t {
			// Gap between traced spans: application time.
			charge("(app)", proc, t-s.End)
			t = s.End
			continue
		}
		if s.Kind == MPISpan {
			// Latest incoming wait edge landing inside this span at or
			// before t: the call blocked until then, so the cause lives on
			// the peer.
			i := sort.Search(len(pt.edges), func(i int) bool { return pt.edges[i].End > t })
			var e *Span
			for i--; i >= 0; i-- {
				if pt.edges[i].End > s.Start {
					e = &pt.edges[i]
					break
				}
			}
			if e != nil && e.Start <= e.End && (e.End < t || e.Start < t || e.Peer != proc) {
				charge(s.Name, proc, t-e.End)
				charge("(network)", "(network)", e.End-e.Start)
				proc, t = e.Peer, e.Start
				continue
			}
		}
		charge(s.Name, proc, t-s.Start)
		t = s.Start
	}
	computeSlack(cp, tracks)
	return cp
}

// computeSlack fills cp.Slack: zero for every function charged on the
// walked path, and for the rest the minimum end-of-run idle tail among the
// processes that executed the function.
func computeSlack(cp *CriticalPath, tracks map[string]*procTrack) {
	for _, pt := range tracks {
		if len(pt.spans) == 0 {
			continue
		}
		var finish sim.Time
		for _, s := range pt.spans {
			if s.End > finish {
				finish = s.End
			}
		}
		tail := cp.Total - finish
		seen := map[string]bool{}
		for _, s := range pt.spans {
			if seen[s.Name] {
				continue
			}
			seen[s.Name] = true
			if cur, ok := cp.Slack[s.Name]; !ok || tail < cur {
				cp.Slack[s.Name] = tail
			}
		}
	}
	for fn, d := range cp.ByFunc {
		if d > 0 && fn != "(app)" && fn != "(network)" {
			cp.Slack[fn] = 0
		}
	}
}

// attribution is one sorted row for rendering.
type attribution struct {
	name string
	d    sim.Time
}

func sorted(m map[string]sim.Time) []attribution {
	out := make([]attribution, 0, len(m))
	for n, d := range m {
		out = append(out, attribution{n, d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d > out[j].d
		}
		return out[i].name < out[j].name
	})
	return out
}

// Dominant returns the MPI function (or compute state) carrying the
// largest share of the path, skipping the "(app)"/"(network)" buckets.
func (cp *CriticalPath) Dominant() (string, sim.Time) {
	for _, a := range sorted(cp.ByFunc) {
		if a.name == "(app)" || a.name == "(network)" {
			continue
		}
		return a.name, a.d
	}
	return "", 0
}

// DominantResource returns the process carrying the largest share.
func (cp *CriticalPath) DominantResource() (string, sim.Time) {
	for _, a := range sorted(cp.ByResource) {
		if a.name == "(network)" {
			continue
		}
		return a.name, a.d
	}
	return "", 0
}

// Render formats the attribution as the text report printed by
// `pperf -critical-path`.
func (cp *CriticalPath) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Critical path: %v end-to-end virtual time (%d steps)\n", cp.Total, cp.Steps)
	if cp.Truncated {
		b.WriteString("  [walk truncated at step cap]\n")
	}
	section := func(title string, m map[string]sim.Time) {
		fmt.Fprintf(&b, "  by %s:\n", title)
		for _, a := range sorted(m) {
			pct := 0.0
			if cp.Total > 0 {
				pct = 100 * float64(a.d) / float64(cp.Total)
			}
			fmt.Fprintf(&b, "    %-24s %10v %5.1f%%\n", a.name, a.d, pct)
		}
	}
	section("function", cp.ByFunc)
	section("resource", cp.ByResource)
	if len(cp.Slack) > 0 {
		b.WriteString("  slack (how much a function could slow before the path shifts):\n")
		rows := make([]attribution, 0, len(cp.Slack))
		for n, d := range cp.Slack {
			rows = append(rows, attribution{n, d})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].d != rows[j].d {
				return rows[i].d < rows[j].d
			}
			return rows[i].name < rows[j].name
		})
		for _, a := range rows {
			note := ""
			if a.d == 0 {
				note = "  (on critical path)"
			}
			fmt.Fprintf(&b, "    %-24s %10v%s\n", a.name, a.d, note)
		}
	}
	return b.String()
}
