package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// of objects" flavor inside {"traceEvents": [...]}), loadable in Perfetto
// and chrome://tracing. Timestamps are microseconds of virtual time.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	ranksPid   = 1 // process group for application rank tracks
	toolPid    = 2 // process group for daemon/transport tracks
	counterPid = 3 // process group for front-end histogram counter tracks
)

// usec converts virtual nanoseconds to trace-event microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// CounterTrack is one Perfetto counter track: a named value-over-time
// series rendered next to the span tracks. The front end derives one per
// whole-program metric series from its folding histograms.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// CounterPoint is one counter sample: the metric's rate over the histogram
// bin starting at TsNs.
type CounterPoint struct {
	TsNs  int64
	Value float64
}

// WriteChrome renders the merged timeline as Chrome trace-event JSON: one
// track per rank (pid 1) plus daemon/transport tracks (pid 2), complete
// ("X") events for MPI and compute spans, instants for probe firings and
// daemon activity, and flow ("s"/"f") events linking matched send→recv and
// RMA origin→target pairs.
func WriteChrome(w io.Writer, tl *Timeline) error {
	return WriteChromeWith(w, tl, nil)
}

// WriteChromeWith is WriteChrome plus counter tracks (pid 3): each
// CounterTrack becomes a "C"-phase series so histogram data lines up under
// the span tracks in Perfetto.
func WriteChromeWith(w io.Writer, tl *Timeline, counters []CounterTrack) error {
	procs := tl.Procs()
	type track struct{ pid, tid int }
	tracks := make(map[string]track, len(procs))
	var events []chromeEvent

	events = append(events,
		chromeEvent{Ph: "M", Pid: ranksPid, Name: "process_name", Args: map[string]any{"name": "MPI ranks"}},
		chromeEvent{Ph: "M", Pid: toolPid, Name: "process_name", Args: map[string]any{"name": "tool"}},
	)
	nextTid := map[int]int{}
	for _, p := range procs {
		pid := ranksPid
		if isToolTrack(p) {
			pid = toolPid
		}
		tr := track{pid, nextTid[pid]}
		nextTid[pid]++
		tracks[p] = tr
		label := p
		if node := tl.Node(p); node != "" {
			label = fmt.Sprintf("%s (%s)", p, node)
		}
		events = append(events,
			chromeEvent{Ph: "M", Pid: tr.pid, Tid: tr.tid, Name: "thread_name", Args: map[string]any{"name": label}},
			chromeEvent{Ph: "M", Pid: tr.pid, Tid: tr.tid, Name: "thread_sort_index", Args: map[string]any{"sort_index": tr.tid}},
		)
	}

	for _, s := range tl.Spans() {
		tr := tracks[s.Proc]
		switch s.Kind {
		case MPISpan, ComputeSpan:
			args := map[string]any{}
			if s.Kind == MPISpan {
				args["depth"] = s.Depth
				if s.Peer != "" {
					args["peer"] = s.Peer
				}
				if s.Tag != 0 {
					args["tag"] = s.Tag
				}
				if s.Bytes != 0 {
					args["bytes"] = s.Bytes
				}
				if s.Obj != "" {
					args["object"] = s.Obj
				}
			}
			events = append(events, chromeEvent{
				Ph: "X", Cat: s.Kind.String(), Pid: tr.pid, Tid: tr.tid,
				Name: s.Name, Ts: usec(int64(s.Start)), Dur: usec(int64(s.End - s.Start)),
				Args: args,
			})
		case ProbeEvent, DaemonSample, TransportEvent, MarkEvent:
			events = append(events, chromeEvent{
				Ph: "i", S: "t", Cat: s.Kind.String(), Pid: tr.pid, Tid: tr.tid,
				Name: s.Name, Ts: usec(int64(s.Start)),
			})
		case EdgeEvent:
			if s.Flow == 0 {
				continue
			}
			src, ok := tracks[s.Peer]
			if !ok {
				continue
			}
			events = append(events,
				chromeEvent{
					Ph: "s", Cat: "flow:" + s.Name, Pid: src.pid, Tid: src.tid,
					Name: s.Name, Ts: usec(int64(s.Start)), ID: s.Flow,
				},
				chromeEvent{
					Ph: "f", BP: "e", Cat: "flow:" + s.Name, Pid: tr.pid, Tid: tr.tid,
					Name: s.Name, Ts: usec(int64(s.End)), ID: s.Flow,
				},
			)
		}
	}

	if len(counters) > 0 {
		events = append(events, chromeEvent{
			Ph: "M", Pid: counterPid, Name: "process_name",
			Args: map[string]any{"name": "front-end histograms"},
		})
		for i, ct := range counters {
			events = append(events, chromeEvent{
				Ph: "M", Pid: counterPid, Tid: i, Name: "thread_sort_index",
				Args: map[string]any{"sort_index": i},
			})
			for _, p := range ct.Points {
				events = append(events, chromeEvent{
					Ph: "C", Cat: "histogram", Pid: counterPid, Tid: i,
					Name: ct.Name, Ts: usec(p.TsNs),
					Args: map[string]any{"value": p.Value},
				})
			}
		}
	}

	if notice := incompleteNotice(tl); notice != "" {
		// Mirror mpe's "[log truncated]": a run that ended with spans
		// stranded in daemon queues must never export as a complete trace.
		events = append(events, chromeEvent{
			Ph: "i", S: "g", Cat: "notice", Pid: toolPid,
			Name: notice,
		})
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// incompleteNotice returns the exporter-facing warning for spans stranded
// undelivered at end of run, or "" for a fully delivered trace.
func incompleteNotice(tl *Timeline) string {
	if n := tl.Undelivered(); n > 0 {
		return fmt.Sprintf("[trace incomplete: %d spans undelivered]", n)
	}
	return ""
}

// WriteCSV renders every merged span, one row each, with virtual times in
// integer nanoseconds (exact, byte-stable across runs of the same seed).
func WriteCSV(w io.Writer, tl *Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"seq", "kind", "proc", "node", "name", "start_ns", "end_ns",
		"depth", "peer", "tag", "bytes", "obj", "flow", "wait",
	}); err != nil {
		return err
	}
	for _, s := range tl.Spans() {
		err := cw.Write([]string{
			strconv.FormatUint(s.Seq, 10),
			s.Kind.String(),
			s.Proc,
			s.Node,
			s.Name,
			strconv.FormatInt(int64(s.Start), 10),
			strconv.FormatInt(int64(s.End), 10),
			strconv.Itoa(s.Depth),
			s.Peer,
			strconv.Itoa(s.Tag),
			strconv.Itoa(s.Bytes),
			s.Obj,
			strconv.FormatUint(s.Flow, 10),
			strconv.FormatBool(s.Wait),
		})
		if err != nil {
			return err
		}
	}
	if notice := incompleteNotice(tl); notice != "" {
		err := cw.Write([]string{
			"", "notice", "", "", notice, "", "", "", "", "", "", "", "", "",
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
