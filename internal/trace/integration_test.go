package trace_test

// End-to-end tests of the tracing subsystem through the full tool stack:
// deterministic merged timelines across identical runs (including under an
// injected daemon hang), and Chrome trace-event export validity.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pperf/internal/faults"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
	"pperf/internal/trace"
)

// runTraced executes a suite program with tracing armed and the Performance
// Consultant off (these tests exercise the trace path, not the diagnosis).
func runTraced(t *testing.T, name string, iters int, plan *faults.Plan) *pperfmark.Result {
	t.Helper()
	res, err := pperfmark.Run(name, pperfmark.RunOptions{
		Impl:      mpi.LAM,
		DisablePC: true,
		Params:    pperfmark.Params{Iterations: iters},
		Faults:    plan,
		Trace:     &trace.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("tracing armed but no timeline came back")
	}
	return res
}

func csvOf(t *testing.T, tl *trace.Timeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceDeterminism(t *testing.T) {
	a := runTraced(t, "small-messages", 1500, nil)
	b := runTraced(t, "small-messages", 1500, nil)
	if !bytes.Equal(csvOf(t, a.Timeline), csvOf(t, b.Timeline)) {
		t.Error("merged timelines differ across identical runs")
	}
	ra := trace.Analyze(a.Timeline).Render()
	rb := trace.Analyze(b.Timeline).Render()
	if ra != rb {
		t.Errorf("critical paths differ across identical runs:\n%s---\n%s", ra, rb)
	}
	if a.Timeline.Dropped() != 0 {
		t.Errorf("unexpected span drops: %d", a.Timeline.Dropped())
	}
}

func TestTraceDeterminismUnderFaults(t *testing.T) {
	plan := func() *faults.Plan {
		p, err := faults.Parse("t=20ms hang-daemon node1 for=30ms")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := runTraced(t, "small-messages", 1500, plan())
	b := runTraced(t, "small-messages", 1500, plan())
	if !bytes.Equal(csvOf(t, a.Timeline), csvOf(t, b.Timeline)) {
		t.Error("merged timelines differ across identical fault runs")
	}
	// The hung daemon resumed and its shards still merged: node1's ranks
	// must have spans recorded after the hang window (20–50 ms), and each
	// per-proc track must arrive in Seq order.
	covered := false
	for _, p := range a.Timeline.Procs() {
		spans := a.Timeline.ProcSpans(p)
		var lastSeq uint64
		for i, s := range spans {
			if i > 0 && s.Start == spans[i-1].Start && s.Seq < lastSeq {
				t.Errorf("%s: spans out of Seq order after merge", p)
			}
			lastSeq = s.Seq
			if a.Timeline.Node(p) == "node1" && s.Start > 50_000_000 {
				covered = true
			}
		}
	}
	if !covered {
		t.Error("no node1 spans after the hang window: shards were lost, not replayed")
	}
}

func TestChromeExportValidity(t *testing.T) {
	res := runTraced(t, "small-messages", 1500, nil)
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, res.Timeline); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			ID   uint64         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	rankTracks := 0
	flowStarts := map[uint64]bool{}
	flowEnds := map[uint64]bool{}
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name" && e.Pid == 1:
			rankTracks++
		case e.Ph == "s":
			flowStarts[e.ID] = true
		case e.Ph == "f":
			flowEnds[e.ID] = true
		}
	}
	if rankTracks != 6 {
		t.Errorf("rank tracks = %d, want one per rank (6)", rankTracks)
	}
	// Every matched send→recv pair is connected: 5 clients × 1500 messages,
	// each flow id appearing exactly once as a start and once as an end.
	if len(flowStarts) < 7500 {
		t.Errorf("flow pairs = %d, want ≥ 7500", len(flowStarts))
	}
	if len(flowStarts) != len(flowEnds) {
		t.Fatalf("flow starts = %d, ends = %d", len(flowStarts), len(flowEnds))
	}
	for id := range flowStarts {
		if !flowEnds[id] {
			t.Fatalf("flow %d has no matching finish event", id)
		}
	}
	if !strings.Contains(buf.String(), "displayTimeUnit") {
		t.Error("missing displayTimeUnit")
	}
}
