// Package pcl implements the Paradyn Configuration Language: the config
// files users customize the tool with (§4). A PCL file declares daemons
// (§4.1 adds the optional mpi_implementation attribute so the tool can start
// MPI jobs on non-shared filesystems without the generated-script
// intermediary), processes to run, tunable constants (the Performance
// Consultant thresholds §5.1.6 adjusts), and embedded MDL blocks for new
// metrics.
//
// Grammar (a faithful subset):
//
//	daemon <name> {
//	    command "<path>";
//	    flavor <id>;
//	    mpi_implementation "<lam|mpich|mpich2>";   // the paper's addition
//	}
//	process <name> {
//	    command "<mpirun command line>";
//	    daemon <daemon-name>;
//	}
//	tunable_constant { "<name>" <number>; ... }
//	mdl { ...MDL source... }
package pcl

import (
	"fmt"
	"strconv"
	"strings"
)

// DaemonDecl is a `daemon <name> { ... }` block.
type DaemonDecl struct {
	Name    string
	Command string
	Flavor  string
	// MPIImplementation is the §4.1 attribute naming the MPI implementation
	// the daemon should start processes with ("lam", "mpich", "mpich2").
	MPIImplementation string
}

// ProcessDecl is a `process <name> { ... }` block: an application to run.
type ProcessDecl struct {
	Name    string
	Command string // an mpirun command line, parsed by internal/cluster
	Daemon  string // the daemon definition to start it with
}

// Config is a parsed PCL file.
type Config struct {
	Daemons   []*DaemonDecl
	Processes []*ProcessDecl
	// Tunables are the tunable constants, e.g. PC_CPUThreshold.
	Tunables map[string]float64
	// MDL is the concatenated embedded metric-definition source.
	MDL string
}

// Daemon returns the named daemon declaration, or nil.
func (c *Config) Daemon(name string) *DaemonDecl {
	for _, d := range c.Daemons {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Tunable returns a tunable constant with a default.
func (c *Config) Tunable(name string, def float64) float64 {
	if v, ok := c.Tunables[name]; ok {
		return v
	}
	return def
}

// Parse parses PCL source.
func Parse(src string) (*Config, error) {
	cfg := &Config{Tunables: map[string]float64{}}
	p := &parser{src: src, line: 1}
	for {
		p.skipSpace()
		if p.done() {
			return cfg, nil
		}
		word, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch word {
		case "daemon":
			d, err := p.daemonBlock()
			if err != nil {
				return nil, err
			}
			if cfg.Daemon(d.Name) != nil {
				return nil, fmt.Errorf("pcl:%d: duplicate daemon %q", p.line, d.Name)
			}
			cfg.Daemons = append(cfg.Daemons, d)
		case "process":
			pr, err := p.processBlock()
			if err != nil {
				return nil, err
			}
			cfg.Processes = append(cfg.Processes, pr)
		case "tunable_constant":
			if err := p.tunableBlock(cfg); err != nil {
				return nil, err
			}
		case "mdl":
			body, err := p.rawBlock()
			if err != nil {
				return nil, err
			}
			cfg.MDL += body + "\n"
		default:
			return nil, fmt.Errorf("pcl:%d: unknown declaration %q", p.line, word)
		}
	}
}

type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) done() bool { return p.pos >= len(p.src) }

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", fmt.Errorf("pcl:%d: expected identifier", p.line)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.done() || p.src[p.pos] != c {
		return fmt.Errorf("pcl:%d: expected %q", p.line, string(c))
	}
	p.pos++
	return nil
}

func (p *parser) str() (string, error) {
	p.skipSpace()
	if p.done() || p.src[p.pos] != '"' {
		return "", fmt.Errorf("pcl:%d: expected string", p.line)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '"' {
		if p.src[p.pos] == '\n' {
			return "", fmt.Errorf("pcl:%d: unterminated string", p.line)
		}
		p.pos++
	}
	if p.done() {
		return "", fmt.Errorf("pcl:%d: unterminated string", p.line)
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' {
			p.pos++
		} else {
			break
		}
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("pcl:%d: bad number %q", p.line, p.src[start:p.pos])
	}
	return v, nil
}

func (p *parser) daemonBlock() (*DaemonDecl, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	d := &DaemonDecl{Name: name}
	for {
		p.skipSpace()
		if !p.done() && p.src[p.pos] == '}' {
			p.pos++
			return d, nil
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch attr {
		case "command":
			if d.Command, err = p.str(); err != nil {
				return nil, err
			}
		case "flavor":
			if d.Flavor, err = p.ident(); err != nil {
				return nil, err
			}
		case "mpi_implementation":
			v, err := p.str()
			if err != nil {
				return nil, err
			}
			switch strings.ToLower(v) {
			case "lam", "mpich", "mpich2", "reference":
				d.MPIImplementation = strings.ToLower(v)
			default:
				return nil, fmt.Errorf("pcl:%d: unknown mpi_implementation %q", p.line, v)
			}
		default:
			return nil, fmt.Errorf("pcl:%d: unknown daemon attribute %q", p.line, attr)
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
	}
}

func (p *parser) processBlock() (*ProcessDecl, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	pr := &ProcessDecl{Name: name}
	for {
		p.skipSpace()
		if !p.done() && p.src[p.pos] == '}' {
			p.pos++
			return pr, nil
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch attr {
		case "command":
			if pr.Command, err = p.str(); err != nil {
				return nil, err
			}
		case "daemon":
			if pr.Daemon, err = p.ident(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pcl:%d: unknown process attribute %q", p.line, attr)
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
	}
}

func (p *parser) tunableBlock(cfg *Config) error {
	if err := p.expect('{'); err != nil {
		return err
	}
	for {
		p.skipSpace()
		if !p.done() && p.src[p.pos] == '}' {
			p.pos++
			return nil
		}
		name, err := p.str()
		if err != nil {
			return err
		}
		v, err := p.number()
		if err != nil {
			return err
		}
		cfg.Tunables[name] = v
		if err := p.expect(';'); err != nil {
			return err
		}
	}
}

// rawBlock captures a brace-balanced { ... } body verbatim (for embedded
// MDL).
func (p *parser) rawBlock() (string, error) {
	if err := p.expect('{'); err != nil {
		return "", err
	}
	start := p.pos
	depth := 1
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				body := p.src[start:p.pos]
				p.pos++
				return body, nil
			}
		case '\n':
			p.line++
		}
		p.pos++
	}
	return "", fmt.Errorf("pcl:%d: unterminated block", p.line)
}
