package pcl

import (
	"strings"
	"testing"
)

const sample = `
// The paper's §4.1 daemon definition with the new attribute.
daemon pd_lam {
    command "paradynd";
    flavor mpi;
    mpi_implementation "lam";
}
daemon pd_mpich {
    command "paradynd";
    flavor mpi;
    mpi_implementation "mpich";
}
process smallmsg {
    command "mpirun -np 6 small-messages";
    daemon pd_lam;
}
tunable_constant {
    "PC_CPUThreshold" 0.2;
    "PC_SyncThreshold" 0.25;
}
mdl {
resourceList pclfns is procedure { "MPI_Barrier", "PMPI_Barrier" };
metric pcl_barriers {
    name "pcl_barriers"; units ops; unitstype unnormalized;
    aggregateOperator sum; style EventCounter;
    base is counter {
        foreach func in pclfns { append preinsn func.entry constrained (* pcl_barriers++; *) }
    }
}
}
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Daemons) != 2 {
		t.Fatalf("daemons = %d", len(cfg.Daemons))
	}
	d := cfg.Daemon("pd_lam")
	if d == nil || d.MPIImplementation != "lam" || d.Command != "paradynd" || d.Flavor != "mpi" {
		t.Errorf("pd_lam = %+v", d)
	}
	if cfg.Daemon("pd_mpich").MPIImplementation != "mpich" {
		t.Error("pd_mpich impl wrong")
	}
	if len(cfg.Processes) != 1 || cfg.Processes[0].Daemon != "pd_lam" {
		t.Errorf("processes = %+v", cfg.Processes)
	}
	if !strings.Contains(cfg.Processes[0].Command, "-np 6") {
		t.Errorf("command = %q", cfg.Processes[0].Command)
	}
	if cfg.Tunable("PC_CPUThreshold", 0.3) != 0.2 {
		t.Error("tunable not parsed")
	}
	if cfg.Tunable("PC_Missing", 0.7) != 0.7 {
		t.Error("tunable default")
	}
	if !strings.Contains(cfg.MDL, "pcl_barriers") {
		t.Error("embedded MDL missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`daemon d { command "x" }`,                            // missing ;
		`daemon d { mpi_implementation "openmpi"; }`,          // unknown impl
		`daemon d { bogus "x"; }`,                             // unknown attribute
		`widget w { }`,                                        // unknown decl
		`tunable_constant { "x" abc; }`,                       // bad number
		`daemon d { command "unterminated }`,                  // unterminated string
		`mdl { { }`,                                           // unbalanced braces
		`daemon d { command "a"; } daemon d { command "b"; }`, // duplicate
		`process p { daemon; }`,                               // missing ident... actually daemon then ; → ident fails
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("should fail: %s", src)
		}
	}
}

func TestEmptyAndComments(t *testing.T) {
	cfg, err := Parse("// nothing but comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Daemons) != 0 || len(cfg.Processes) != 0 {
		t.Error("empty config should be empty")
	}
}

func TestNestedBracesInMDLBlock(t *testing.T) {
	cfg, err := Parse(`mdl { metric m { base is counter { } } }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg.MDL, "base is counter") {
		t.Errorf("MDL body = %q", cfg.MDL)
	}
}
