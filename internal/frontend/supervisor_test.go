package frontend

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"pperf/internal/daemon"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// A daemon silent for EXACTLY the detection timeout is not yet stale: the
// liveness predicate is strictly greater-than, so the boundary tick leaves
// the daemon healthy and only the next one condemns it.
func TestLivenessExactTimeoutNotStale(t *testing.T) {
	fe := New()
	fe.Update(daemon.Update{Kind: daemon.UpHeartbeat, Daemon: "paradynd@node0", Time: 0})
	timeout := 500 * sim.Millisecond

	fe.checkLiveness(sim.Time(timeout), timeout) // silence == timeout exactly
	hs := fe.DaemonHealths()
	if len(hs) != 1 || hs[0].Stale {
		t.Fatalf("daemon stale after exactly-timeout silence: %+v", hs)
	}

	fe.checkLiveness(sim.Time(timeout)+1, timeout) // one tick past the boundary
	if hs = fe.DaemonHealths(); !hs[0].Stale {
		t.Fatalf("daemon not stale past the timeout: %+v", hs)
	}
}

// sendFrame pushes one wireMsg and waits for the ack.
func sendFrame(t *testing.T, enc *gob.Encoder, dec *gob.Decoder, msg wireMsg) {
	t.Helper()
	if err := enc.Encode(&msg); err != nil {
		t.Fatal(err)
	}
	var ack bool
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
}

// Frames from a dead daemon incarnation must be acknowledged (so the
// straggler sender unblocks) but never applied; a newer incarnation resets
// the channel's sequence space so the respawned daemon can number its
// frames from 1 again.
func TestListenerFencesStaleIncarnationFrames(t *testing.T) {
	fe := New()
	f := resource.WholeProgram()
	fe.RegisterSeries("m", f)
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	frame := func(inc, seq uint64, delta float64) wireMsg {
		return wireMsg{
			Daemon:  "paradynd@node0",
			Inc:     inc,
			Seq:     seq,
			Samples: []daemon.Sample{sample("m", f, "p0", sim.Time(sim.Second), delta)},
		}
	}

	sendFrame(t, enc, dec, frame(1, 1, 5)) // incarnation 1 applies
	sendFrame(t, enc, dec, frame(2, 1, 7)) // incarnation 2: seq space resets, applies
	sendFrame(t, enc, dec, frame(1, 2, 100)) // dead-incarnation straggler: acked, dropped
	if got := fe.Series("m", f).Total(); got != 12 {
		t.Errorf("total = %v, want 12 (stale-incarnation frame applied?)", got)
	}
	if l.StaleIncarnationFrames() != 1 {
		t.Errorf("stale frames = %d, want 1", l.StaleIncarnationFrames())
	}

	// Within the new incarnation, plain seq dedupe still works.
	sendFrame(t, enc, dec, frame(2, 1, 3))
	if got := fe.Series("m", f).Total(); got != 12 {
		t.Errorf("total = %v, want 12 (replayed frame applied twice?)", got)
	}
	if l.Duplicates() != 1 {
		t.Errorf("duplicates = %d, want 1", l.Duplicates())
	}
}

// A peer that connects and then goes mute must be dropped by the per-frame
// read deadline instead of parking a handler goroutine forever.
func TestListenerReadDeadlineDropsWedgedPeer(t *testing.T) {
	fe := New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetReadTimeout(30 * time.Millisecond)

	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send nothing; the listener must cut us loose.
	deadline := time.Now().Add(5 * time.Second)
	for l.ReadTimeouts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read deadline never fired for a mute peer")
		}
		time.Sleep(time.Millisecond)
	}
	// The listener closed its end: our next read observes it.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection still open after the read deadline fired")
	}
}
