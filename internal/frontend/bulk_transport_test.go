package frontend

// Tests for the dedicated bulk trace-streaming channel of the TCP transport:
// shard frames must never ride the control stream, each channel keeps its own
// sequence space and dedupe state, and injected bulk faults must leave the
// control path untouched while retry/backoff delivers every shard.

import (
	"testing"

	"pperf/internal/daemon"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

func TestBulkChannelCarriesShardsOffControlPath(t *testing.T) {
	fe := New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tr, err := DialTransportRetry(l.Addr(), "paradynd@node0", testRetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if err := tr.Update(daemon.Update{Kind: daemon.UpAddResource, Path: "/Machine/node0/p0"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); err != nil {
		t.Fatal(err)
	}
	sh := trace.Shard{Proc: "p0", Node: "node0", Spans: []trace.Span{{Name: "compute", Start: sim.Time(1)}}}
	if err := tr.BulkShard(sh); err != nil {
		t.Fatal(err)
	}
	// The legacy TraceSink entry point routes to the bulk channel too.
	if err := tr.TraceShard(sh); err != nil {
		t.Fatal(err)
	}

	if got := l.CtlShardFrames(); got != 0 {
		t.Errorf("shard frames on the control channel = %d, want 0", got)
	}
	if got := l.CtlFrames(); got != 2 {
		t.Errorf("control frames = %d, want 2 (the updates)", got)
	}
	if got := l.BulkFrames(); got != 2 {
		t.Errorf("bulk frames = %d, want 2 (the shards)", got)
	}
	// Both channels numbered their first frame Seq 1; per-(daemon,channel)
	// dedupe must not confuse them.
	if got := l.Duplicates(); got != 0 {
		t.Errorf("cross-channel frames misread as duplicates: %d", got)
	}
	tl := fe.Timeline()
	if tl == nil || len(tl.ProcSpans("p0")) != 2 {
		t.Errorf("shards not merged into the timeline: %+v", tl)
	}
}

func TestBulkFaultsLeaveControlFlowing(t *testing.T) {
	fe := New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tr, err := DialTransportRetry(l.Addr(), "paradynd@node0", testRetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.InjectBulkFailures(2)
	sh := trace.Shard{Proc: "p0", Node: "node0", Spans: []trace.Span{{Name: "compute"}}}
	if err := tr.BulkShard(sh); err != nil {
		t.Fatalf("bulk send should survive injected faults via retry: %v", err)
	}
	if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); err != nil {
		t.Fatal(err)
	}

	bst := tr.BulkStats()
	if bst.Frames != 1 || bst.Retries < 2 {
		t.Errorf("bulk stats = %+v, want Frames 1 with ≥2 retries", bst)
	}
	cst := tr.Stats()
	if cst.Frames != 1 || cst.Retries != 0 {
		t.Errorf("control stats = %+v — bulk faults leaked into the control channel", cst)
	}
	if len(fe.Timeline().ProcSpans("p0")) != 1 {
		t.Error("shard lost despite retry budget")
	}
}

func TestControlFaultsLeaveBulkFlowing(t *testing.T) {
	fe := New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tr, err := DialTransportRetry(l.Addr(), "paradynd@node0", testRetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.InjectFailures(2)
	if err := tr.BulkShard(trace.Shard{Proc: "p0", Node: "node0", Spans: make([]trace.Span, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := tr.BulkStats().Retries; got != 0 {
		t.Errorf("control faults leaked into the bulk channel: %d retries", got)
	}
	if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); err != nil {
		t.Fatalf("control send should survive via retry: %v", err)
	}
	if got := tr.Stats().Retries; got < 2 {
		t.Errorf("control retries = %d, want ≥2", got)
	}
}
