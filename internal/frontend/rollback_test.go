package frontend_test

// Regression test for the partial-enable leak: EnableMetric must be
// all-or-nothing. When a daemon rejects the metric, the daemons already
// instrumented must be rolled back and the series unregistered, leaving no
// orphaned probes charging overhead.

import (
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/daemon"
	"pperf/internal/frontend"
	"pperf/internal/mdl"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// limitedMDL defines a single metric, so a daemon built on it refuses every
// stdlib metric name.
const limitedMDL = `
resourceList send_only is procedure { "MPI_Send", "PMPI_Send" } flavor { mpi };
metric only_metric {
    name "only_metric";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    base is counter {
        foreach func in send_only {
            append preinsn func.entry constrained (* only_metric++; *)
        }
    }
}
`

func TestEnableMetricRollsBackPartialEnable(t *testing.T) {
	limited, err := mdl.CompileSource(limitedMDL)
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine(13)
	spec := cluster.DefaultSpec(2, 1)
	w := mpi.NewWorld(eng, spec, mpi.NewImpl(mpi.LAM))
	fe := frontend.New()
	libs := []*mdl.Library{mdl.StdLib(), limited}
	var ds []*daemon.Daemon
	for node := range spec.Nodes {
		d := daemon.New(eng, node, spec.Nodes[node].Name, libs[node], fe, daemon.DefaultConfig())
		ds = append(ds, d)
		fe.AddDaemon(d)
	}
	daemon.AttachAll(w, ds)
	w.Register("p", func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < 50; i++ {
			if r.Rank() == 0 {
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 1, mpi.Byte, 0, 0)
			}
		}
	})
	if _, err := w.LaunchN("p", 2, nil); err != nil {
		t.Fatal(err)
	}

	focus := resource.WholeProgram()
	if _, err := fe.EnableMetric("msgs_sent", focus); err == nil {
		t.Fatal("enable should fail: node1's library lacks msgs_sent")
	}
	if fe.Series("msgs_sent", focus) != nil {
		t.Error("failed enable left the series registered")
	}

	for _, d := range ds {
		d.Start()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Daemon 0's Enable succeeded before daemon 1 refused; the rollback must
	// have removed its instrumentation, so no probe ever fires.
	if n := ds[0].ProbeExecutions(); n != 0 {
		t.Errorf("rolled-back instrumentation still fired %d probes", n)
	}
}
