package frontend

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pperf/internal/daemon"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// The TCP transport carries daemon reports to the front end over a real
// socket with gob encoding — the shape of a deployment where daemons run on
// cluster nodes and the front end on the user's workstation. Each message is
// acknowledged before the daemon proceeds, so delivery order (and therefore
// front-end state) stays deterministic even though the listener runs on its
// own goroutine.
//
// The transport is built for misbehaving clusters: every message carries the
// sending daemon's identity and a per-daemon sequence number, each send has
// a wall-clock deadline, failures trigger bounded exponential backoff with
// seeded (deterministic) jitter and a reconnect, and the front end dedupes
// replayed messages by sequence number — so an ack lost to a half-closed
// socket cannot double-apply a sample batch, and a reconnect resyncs
// without disturbing determinism.

// wireMsg is the single message frame exchanged on the wire.
type wireMsg struct {
	// Daemon and Seq identify and order the frame for reconnect dedupe.
	// Seq is per-daemon and strictly increasing; Seq 0 (legacy senders)
	// bypasses dedupe.
	Daemon string
	Seq    uint64

	Samples []daemon.Sample
	Update  *daemon.Update
	Shard   *trace.Shard
}

// RetryConfig tunes the daemon-side transport's robustness behaviour.
type RetryConfig struct {
	// MsgTimeout is the wall-clock deadline for one attempt (encode + ack).
	MsgTimeout time.Duration
	// MaxAttempts bounds tries per message (first send included). When all
	// fail, Samples/Update return an error and the daemon's outbox takes
	// over.
	MaxAttempts int
	// BaseBackoff/MaxBackoff bound the exponential backoff between
	// attempts.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter RNG; equal seeds give identical backoff
	// schedules (deterministic retries).
	Seed uint64
}

// DefaultRetryConfig returns production-shaped retry behaviour.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{
		MsgTimeout:  2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Seed:        1,
	}
}

// TransportStats counts the resilience machinery's activity.
type TransportStats struct {
	Sent       int64 // messages acknowledged
	Duplicates int64 // (listener side only; unused on the daemon side)
	Retries    int64 // attempts beyond the first
	Reconnects int64 // successful redials
	Failures   int64 // messages given up on after MaxAttempts
	// Backoffs records every backoff delay chosen, in order — the observable
	// surface for determinism tests.
	Backoffs []time.Duration
}

// Listener accepts daemon connections for a front end.
type Listener struct {
	fe *FrontEnd
	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	lastSeq map[string]uint64 // per-daemon high-water mark for dedupe
	dups    int64
	acceptE int64 // transient accept errors retried
}

// Listen starts a TCP listener feeding the front end. Use addr "127.0.0.1:0"
// to pick a free port; Addr reports the chosen address.
func (fe *FrontEnd) Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen: %w", err)
	}
	l := &Listener{fe: fe, ln: ln, lastSeq: map[string]uint64{}}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to finish.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// Duplicates returns how many replayed frames the dedupe layer skipped.
func (l *Listener) Duplicates() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dups
}

// TransientAcceptErrors returns how many Accept errors were retried.
func (l *Listener) TransientAcceptErrors() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acceptE
}

// acceptLoop accepts daemon connections until the listener closes. A
// transient Accept error (resource exhaustion, aborted handshake) is retried
// with a short delay instead of silently killing the loop; only a closed
// listener — or persistent failure — ends it.
func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	consecutive := 0
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || l.isClosed() {
				return
			}
			consecutive++
			if consecutive > 10 {
				return // persistently failing listener; give up
			}
			l.mu.Lock()
			l.acceptE++
			l.mu.Unlock()
			time.Sleep(time.Duration(consecutive) * time.Millisecond)
			continue
		}
		consecutive = 0
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.handle(conn)
		}()
	}
}

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// seen reports (and records) whether the frame is a replay the front end
// already applied — the reconnect-resync dedupe.
func (l *Listener) seen(daemonName string, seq uint64) bool {
	if daemonName == "" || seq == 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.lastSeq[daemonName] {
		l.dups++
		return true
	}
	l.lastSeq[daemonName] = seq
	return false
}

func (l *Listener) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		// A frame the daemon re-sent after a lost ack was already applied:
		// skip the apply, but still acknowledge it.
		if !l.seen(msg.Daemon, msg.Seq) {
			if msg.Samples != nil {
				l.fe.Samples(msg.Samples)
			}
			if msg.Update != nil {
				l.fe.Update(*msg.Update)
			}
			if msg.Shard != nil {
				l.fe.TraceShard(*msg.Shard)
			}
		}
		if err := enc.Encode(true); err != nil { // ack
			return
		}
	}
}

// ErrTransportClosed is returned by sends on a Close()d transport.
var ErrTransportClosed = errors.New("frontend: transport closed")

// TCPTransport is the daemon-side transport: it gob-encodes each report,
// waits (with a deadline) for the front end's acknowledgement, and on
// failure retries with seeded-jitter exponential backoff, redialling as
// needed. When every attempt fails the error surfaces to the daemon, whose
// outbox buffers the report for later replay.
type TCPTransport struct {
	mu     sync.Mutex
	addr   string
	name   string // daemon identity stamped on frames ("" = legacy, no dedupe)
	cfg    RetryConfig
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	seq    uint64
	rng    *sim.RNG
	closed bool
	stats  TransportStats

	// FaultHook, when set, is consulted before each attempt; a non-nil
	// return simulates a transport fault for that attempt (the connection is
	// treated as failed). Used by the fault injector and tests to exercise
	// the retry path deterministically.
	FaultHook func(attempt int, msg *wireMsg) error
}

// DialTransport connects a daemon-side transport to a front-end listener
// with default retry behaviour and no identity (legacy callers).
func DialTransport(addr string) (*TCPTransport, error) {
	return DialTransportRetry(addr, "", DefaultRetryConfig())
}

// DialTransportRetry connects a daemon-side transport with explicit identity
// and retry configuration. name is the daemon identity used for reconnect
// dedupe; empty disables dedupe (every frame applies).
func DialTransportRetry(addr, name string, cfg RetryConfig) (*TCPTransport, error) {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	t := &TCPTransport{addr: addr, name: name, cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
	if err := t.redialLocked(); err != nil {
		return nil, fmt.Errorf("frontend: dial: %w", err)
	}
	return t, nil
}

// Close shuts the connection; subsequent sends fail fast.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.conn == nil {
		return nil
	}
	err := t.conn.Close()
	t.conn = nil
	return err
}

// Stats returns a snapshot of the transport's resilience counters.
func (t *TCPTransport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Backoffs = append([]time.Duration(nil), t.stats.Backoffs...)
	return s
}

// InjectFailures makes the next n attempts fail (deterministic fault
// injection): each failed attempt consumes one count, exercising timeout,
// backoff and reconnect exactly as a flaky network would.
func (t *TCPTransport) InjectFailures(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	remaining := n
	t.FaultHook = func(int, *wireMsg) error {
		if remaining <= 0 {
			return nil
		}
		remaining--
		return fmt.Errorf("injected transport fault (%d more)", remaining)
	}
}

// redialLocked (re)establishes the connection and fresh gob codecs. A gob
// stream is stateful, so any failed connection must be fully replaced.
func (t *TCPTransport) redialLocked() error {
	if t.conn != nil {
		t.conn.Close()
		t.conn = nil
	}
	timeout := t.cfg.MsgTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", t.addr, timeout)
	if err != nil {
		return err
	}
	t.conn = conn
	t.enc = gob.NewEncoder(conn)
	t.dec = gob.NewDecoder(conn)
	return nil
}

// backoffLocked computes the delay before retry attempt (1-based): bounded
// exponential growth with seeded jitter in [d/2, d). The schedule is a pure
// function of the seed and the failure sequence, so retries under simulated
// faults are reproducible.
func (t *TCPTransport) backoffLocked(attempt int) time.Duration {
	d := t.cfg.BaseBackoff
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if t.cfg.MaxBackoff > 0 && d >= t.cfg.MaxBackoff {
			d = t.cfg.MaxBackoff
			break
		}
	}
	half := d / 2
	jittered := half + time.Duration(t.rng.Uint64()%uint64(half+1))
	t.stats.Backoffs = append(t.stats.Backoffs, jittered)
	return jittered
}

// attemptLocked performs one deadline-bounded encode+ack round trip.
func (t *TCPTransport) attemptLocked(msg *wireMsg) error {
	if t.conn == nil {
		return errors.New("no connection")
	}
	if t.cfg.MsgTimeout > 0 {
		t.conn.SetDeadline(time.Now().Add(t.cfg.MsgTimeout))
		defer t.conn.SetDeadline(time.Time{})
	}
	if err := t.enc.Encode(msg); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	var ack bool
	if err := t.dec.Decode(&ack); err != nil {
		// A half-closed or dead socket surfaces here as an error (or a
		// deadline timeout) instead of a silent hang.
		return fmt.Errorf("awaiting ack: %w", err)
	}
	return nil
}

func (t *TCPTransport) send(msg wireMsg) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrTransportClosed
	}
	msg.Daemon = t.name
	t.seq++
	msg.Seq = t.seq

	var lastErr error
	for attempt := 1; attempt <= t.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			t.stats.Retries++
			time.Sleep(t.backoffLocked(attempt - 1))
			if err := t.redialLocked(); err != nil {
				lastErr = err
				continue
			}
			t.stats.Reconnects++
		}
		if t.FaultHook != nil {
			if err := t.FaultHook(attempt, &msg); err != nil {
				lastErr = err
				continue
			}
		}
		if err := t.attemptLocked(&msg); err != nil {
			lastErr = err
			// The gob stream is now poisoned; force a redial next attempt.
			if t.conn != nil {
				t.conn.Close()
				t.conn = nil
			}
			continue
		}
		t.stats.Sent++
		return nil
	}
	t.stats.Failures++
	return fmt.Errorf("frontend: send failed after %d attempts: %w", t.cfg.MaxAttempts, lastErr)
}

// Samples implements daemon.Transport.
func (t *TCPTransport) Samples(batch []daemon.Sample) error {
	return t.send(wireMsg{Samples: batch})
}

// Update implements daemon.Transport.
func (t *TCPTransport) Update(u daemon.Update) error {
	return t.send(wireMsg{Update: &u})
}

// TraceShard implements daemon.TraceSink: trace shards ride the same
// acknowledged, deduped, retrying frame stream as samples and updates.
func (t *TCPTransport) TraceShard(sh trace.Shard) error {
	return t.send(wireMsg{Shard: &sh})
}
