package frontend

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"pperf/internal/daemon"
)

// The TCP transport carries daemon reports to the front end over a real
// socket with gob encoding — the shape of a deployment where daemons run on
// cluster nodes and the front end on the user's workstation. Each message is
// acknowledged before the daemon proceeds, so delivery order (and therefore
// front-end state) stays deterministic even though the listener runs on its
// own goroutine.

// wireMsg is the single message frame exchanged on the wire.
type wireMsg struct {
	Samples []daemon.Sample
	Update  *daemon.Update
}

// Listener accepts daemon connections for a front end.
type Listener struct {
	fe *FrontEnd
	ln net.Listener
	wg sync.WaitGroup
}

// Listen starts a TCP listener feeding the front end. Use addr "127.0.0.1:0"
// to pick a free port; Addr reports the chosen address.
func (fe *FrontEnd) Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen: %w", err)
	}
	l := &Listener{fe: fe, ln: ln}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to finish.
func (l *Listener) Close() error {
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.handle(conn)
		}()
	}
}

func (l *Listener) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if msg.Samples != nil {
			l.fe.Samples(msg.Samples)
		}
		if msg.Update != nil {
			l.fe.Update(*msg.Update)
		}
		if err := enc.Encode(true); err != nil { // ack
			return
		}
	}
}

// TCPTransport is the daemon-side transport: it gob-encodes each report and
// waits for the front end's acknowledgement.
type TCPTransport struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialTransport connects a daemon-side transport to a front-end listener.
func DialTransport(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: dial: %w", err)
	}
	return &TCPTransport{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close shuts the connection.
func (t *TCPTransport) Close() error { return t.conn.Close() }

func (t *TCPTransport) send(msg wireMsg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(msg); err != nil {
		return
	}
	var ack bool
	_ = t.dec.Decode(&ack)
}

// Samples implements daemon.Transport.
func (t *TCPTransport) Samples(batch []daemon.Sample) { t.send(wireMsg{Samples: batch}) }

// Update implements daemon.Transport.
func (t *TCPTransport) Update(u daemon.Update) { t.send(wireMsg{Update: &u}) }
