package frontend

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"pperf/internal/daemon"
	"pperf/internal/trace"
	"pperf/internal/wire"
)

// The TCP transport carries daemon reports to the front end over real
// sockets with gob encoding — the shape of a deployment where daemons run on
// cluster nodes and the front end on the user's workstation. Each message is
// acknowledged before the daemon proceeds, so delivery order (and therefore
// front-end state) stays deterministic even though the listener runs on its
// own goroutine.
//
// Each daemon holds up to two independent channels to the front end:
//
//   - the control channel carries sample batches and resource updates — the
//     latency-sensitive sampling path;
//   - the bulk channel (dialed lazily on the first trace shard) carries
//     trace.Shard traffic, so arbitrarily large trace volume never queues
//     behind — or delays — a sample batch.
//
// Both channels are wire.Conns (see internal/wire): every message carries
// the sending daemon's identity, its channel, and a per-channel sequence
// number, each send has a wall-clock deadline, failures trigger bounded
// seeded-jitter retry with a reconnect, and the front end dedupes replayed
// messages per (daemon, channel) — so an ack lost to a half-closed socket
// cannot double-apply a sample batch or a shard, and a reconnect resyncs
// without disturbing determinism. This file owns only what the frames mean;
// the reliability discipline lives in the wire plane.

// Channel labels stamped on wire frames. The control channel uses the empty
// string so pre-bulk-channel captures decode (and dedupe) unchanged.
const (
	ctlChannel  = ""
	bulkChannel = wire.ChanBulk
)

// wireMsg is the single message frame exchanged on the wire.
type wireMsg struct {
	// Daemon, Chan and Seq identify and order the frame for reconnect
	// dedupe. Seq is per-daemon-per-channel and strictly increasing; Seq 0
	// (legacy senders) bypasses dedupe.
	Daemon string
	Chan   string
	Seq    uint64
	// Inc is the sending daemon incarnation. A frame from an incarnation
	// older than the newest one seen is a straggler from a dead daemon:
	// the listener acknowledges it (so the sender unblocks) but never
	// applies it. A newer incarnation resets the channel's seq space. Inc
	// 0 (legacy senders) keeps pure-seq dedupe.
	Inc uint64

	Samples []daemon.Sample
	Update  *daemon.Update
	Shard   *trace.Shard
}

// RetryConfig tunes the daemon-side transport's robustness behaviour. It is
// the wire plane's Config: equal seeds give identical retry schedules, and
// the bulk channel derives its own jitter stream from the same seed.
type RetryConfig = wire.Config

// DefaultRetryConfig returns production-shaped retry behaviour.
func DefaultRetryConfig() RetryConfig { return wire.DefaultConfig() }

// TransportStats counts one channel's resilience activity — the wire
// plane's uniform Stats block.
type TransportStats = wire.Stats

// Listener accepts daemon connections for a front end. Control and bulk
// connections land on the same listening socket; frames declare their
// channel, and dedupe state is kept per (daemon, channel) in a bounded
// wire.Dedupe window table.
type Listener struct {
	fe *FrontEnd
	ln net.Listener
	wg sync.WaitGroup

	// dedupe fences replays and dead-incarnation stragglers per
	// (daemon, channel); its window table is bounded, so a long-lived
	// listener fed ever-fresh daemon identities reaches a steady state.
	dedupe *wire.Dedupe

	// readTimeout bounds the wait for each incoming frame; a peer that
	// connects and then wedges is dropped instead of parking the handler
	// goroutine forever. Healthy-but-idle daemons that get dropped simply
	// redial on their next send (gob streams are per-connection, and the
	// dedupe layer absorbs any replays).
	readTimeout time.Duration

	mu           sync.Mutex
	closed       bool
	readTimeouts int64
	acceptE      int64 // transient accept errors retried
	ctlFrames    int64
	bulkFrames   int64
	ctlShards    int64 // shard frames that arrived on the control channel (should stay 0)
}

// DefaultReadTimeout is the per-frame read deadline new listeners start
// with — generous enough that an idle-but-healthy daemon is rarely cut,
// tight enough that a wedged peer cannot hold a handler goroutine forever.
const DefaultReadTimeout = wire.DefaultReadTimeout

// Listen starts a TCP listener feeding the front end. Use addr "127.0.0.1:0"
// to pick a free port; Addr reports the chosen address.
func (fe *FrontEnd) Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen: %w", err)
	}
	l := &Listener{
		fe: fe, ln: ln,
		dedupe:      wire.NewDedupe(0),
		readTimeout: DefaultReadTimeout,
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		wire.AcceptLoop(l.ln, l.isClosed, l.noteTransientAccept, &l.wg, l.handle)
	}()
	return l, nil
}

// SetReadTimeout adjusts the per-frame read deadline (0 disables it).
// Affects connections accepted after the call.
func (l *Listener) SetReadTimeout(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.readTimeout = d
}

// Addr returns the listening address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to finish.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// Duplicates returns how many replayed frames the dedupe layer skipped.
func (l *Listener) Duplicates() int64 { return l.dedupe.Duplicates() }

// StaleIncarnationFrames returns how many frames were fenced out because
// they came from a dead daemon incarnation.
func (l *Listener) StaleIncarnationFrames() int64 { return l.dedupe.StaleFrames() }

// ReadTimeouts returns how many connections the per-frame read deadline
// dropped.
func (l *Listener) ReadTimeouts() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readTimeouts
}

// TransientAcceptErrors returns how many Accept errors were retried.
func (l *Listener) TransientAcceptErrors() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acceptE
}

// CtlFrames returns how many frames arrived on the control channel.
func (l *Listener) CtlFrames() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctlFrames
}

// BulkFrames returns how many frames arrived on the bulk channel.
func (l *Listener) BulkFrames() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bulkFrames
}

// CtlShardFrames returns how many trace-shard frames arrived on the control
// channel — the invariant the bulk channel exists to keep at zero, asserted
// by tests and benchmarks.
func (l *Listener) CtlShardFrames() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctlShards
}

// WireStats returns the listener-side wire counters for one channel
// (wire.ChanCtl or wire.ChanBulk): frames received plus the dedupe layer's
// duplicate/stale accounting.
func (l *Listener) WireStats(ch string) wire.Stats {
	s := l.dedupe.ChannelStats(ch)
	l.mu.Lock()
	defer l.mu.Unlock()
	if ch == wire.ChanBulk {
		s.Frames = l.bulkFrames
	} else {
		s.Frames = l.ctlFrames
		s.ReadTimeouts = l.readTimeouts
	}
	return s
}

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

func (l *Listener) noteTransientAccept() {
	l.mu.Lock()
	l.acceptE++
	l.mu.Unlock()
}

// seen counts the frame for its channel and reports (via the wire dedupe
// table) whether it must be skipped — either a replay the front end already
// applied, or a straggler from a dead daemon incarnation. A frame from a
// newer incarnation resets the channel's seq space: the respawned daemon
// numbers its frames from 1 again.
func (l *Listener) seen(daemonName, ch string, inc, seq uint64) bool {
	l.mu.Lock()
	if ch == bulkChannel {
		l.bulkFrames++
	} else {
		l.ctlFrames++
	}
	l.mu.Unlock()
	return l.dedupe.Seen(daemonName, ch, inc, seq)
}

func (l *Listener) handle(conn net.Conn) {
	l.mu.Lock()
	readTimeout := l.readTimeout
	l.mu.Unlock()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var msg wireMsg
		if timedOut, err := wire.ReadFrame(conn, dec, readTimeout, &msg); err != nil {
			if timedOut {
				// Wedged (or merely idle) peer: drop the connection
				// instead of parking this goroutine forever. A live
				// daemon redials on its next send and the dedupe layer
				// absorbs any replays.
				l.mu.Lock()
				l.readTimeouts++
				l.mu.Unlock()
			}
			return
		}
		if msg.Shard != nil && msg.Chan != bulkChannel {
			l.mu.Lock()
			l.ctlShards++
			l.mu.Unlock()
		}
		// A frame the daemon re-sent after a lost ack was already applied —
		// and one a dead incarnation sent must never apply. Both are still
		// acknowledged so the sender unblocks.
		if !l.seen(msg.Daemon, msg.Chan, msg.Inc, msg.Seq) {
			if msg.Samples != nil {
				l.fe.Samples(msg.Samples)
			}
			if msg.Update != nil {
				l.fe.Update(*msg.Update)
			}
			if msg.Shard != nil {
				l.fe.TraceShard(*msg.Shard)
			}
		}
		if err := enc.Encode(true); err != nil { // ack
			return
		}
	}
}

// ErrTransportClosed is returned by sends on a Close()d transport.
var ErrTransportClosed = wire.ErrClosed

// tcpChannel is one independent acknowledged gob stream to the front end: a
// wire.Conn plus the identity (daemon name, channel label, incarnation) it
// stamps on every frame. The control and bulk channels of a TCPTransport
// are two of these, locked separately inside their Conns so a slow bulk
// send never blocks a sample send.
type tcpChannel struct {
	label string
	name  string
	inc   uint64
	conn  *wire.Conn
}

// send delivers one frame on channel c through the wire plane's retrying
// Exchange. hook points at the transport's fault-hook field for this
// channel, read fresh each attempt so tests can clear it mid-sequence.
func (c *tcpChannel) send(msg wireMsg, hook *func(attempt int, msg *wireMsg) error) error {
	var ack bool
	return c.conn.Exchange(wire.Request{
		Req: &msg,
		Stamp: func(seq uint64) {
			msg.Daemon = c.name
			msg.Chan = c.label
			msg.Inc = c.inc
			msg.Seq = seq
		},
		Resp: &ack,
		Fault: func(attempt int) error {
			if fh := *hook; fh != nil {
				return fh(attempt, &msg)
			}
			return nil
		},
		Label: "frontend: send",
	})
}

// TCPTransport is the daemon-side transport: it gob-encodes each report,
// waits (with a deadline) for the front end's acknowledgement, and on
// failure retries through the wire plane, redialling as needed. When every
// attempt fails the error surfaces to the daemon, whose outbox (control) or
// bulk queue (trace shards) buffers the report for later replay. Trace
// shards move on a dedicated bulk connection so the sampling path's latency
// is independent of trace volume.
type TCPTransport struct {
	addr string
	name string
	cfg  RetryConfig

	ctl tcpChannel

	bulkMu sync.Mutex // guards lazy creation of bulk
	bulk   *tcpChannel

	// FaultHook, when set, is consulted before each control-channel
	// attempt; a non-nil return simulates a transport fault for that
	// attempt. Used by the fault injector and tests to exercise the retry
	// path deterministically. BulkFaultHook is its bulk-channel twin.
	FaultHook     func(attempt int, msg *wireMsg) error
	BulkFaultHook func(attempt int, msg *wireMsg) error
}

// DialTransport connects a daemon-side transport to a front-end listener
// with default retry behaviour and no identity (legacy callers).
func DialTransport(addr string) (*TCPTransport, error) {
	return DialTransportRetry(addr, "", DefaultRetryConfig())
}

// DialTransportRetry connects a daemon-side transport with explicit identity
// and retry configuration. name is the daemon identity used for reconnect
// dedupe; empty disables dedupe (every frame applies). Only the control
// channel is dialed here; the bulk channel comes up lazily on the first
// trace shard. The control channel draws jitter from the seed unsalted; the
// bulk channel salts it, so the two schedules are independent yet each
// deterministic.
func DialTransportRetry(addr, name string, cfg RetryConfig) (*TCPTransport, error) {
	t := &TCPTransport{addr: addr, name: name, cfg: cfg}
	conn, err := wire.Dial(addr, cfg, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("frontend: dial: %w", err)
	}
	t.ctl = tcpChannel{label: ctlChannel, name: name, inc: cfg.Incarnation, conn: conn}
	return t, nil
}

// bulkChan returns the bulk channel, creating (and best-effort dialing) it
// on first use.
func (t *TCPTransport) bulkChan() *tcpChannel {
	t.bulkMu.Lock()
	defer t.bulkMu.Unlock()
	if t.bulk == nil {
		t.bulk = &tcpChannel{
			label: bulkChannel, name: t.name, inc: t.cfg.Incarnation,
			conn: wire.NewConn(t.addr, t.cfg, t.cfg.Seed^wire.SaltBulk),
		}
		t.bulk.conn.TryDial() // a failed dial retries inside send
	}
	return t.bulk
}

// Close shuts both channels; subsequent sends fail fast.
func (t *TCPTransport) Close() error {
	err := t.ctl.conn.Close()
	t.bulkMu.Lock()
	b := t.bulk
	t.bulkMu.Unlock()
	if b != nil {
		if berr := b.conn.Close(); err == nil {
			err = berr
		}
	}
	return err
}

// Stats returns a snapshot of the control channel's resilience counters.
func (t *TCPTransport) Stats() TransportStats { return t.ctl.conn.Stats() }

// BulkStats returns a snapshot of the bulk channel's resilience counters
// (all zero if no shard was ever sent).
func (t *TCPTransport) BulkStats() TransportStats {
	t.bulkMu.Lock()
	b := t.bulk
	t.bulkMu.Unlock()
	if b == nil {
		return TransportStats{}
	}
	return b.conn.Stats()
}

// InjectFailures makes the next n control-channel attempts fail
// (deterministic fault injection): each failed attempt consumes one count,
// exercising timeout, retry and reconnect exactly as a flaky network
// would. The hook swap happens under the channel's send lock so it can
// never race an in-flight send reading the hook.
func (t *TCPTransport) InjectFailures(n int) {
	t.ctl.conn.Sync(func() { t.FaultHook = countdownHook(n) })
}

// InjectBulkFailures is InjectFailures for the bulk channel: the next n
// shard attempts fail while control traffic flows untouched.
func (t *TCPTransport) InjectBulkFailures(n int) {
	c := t.bulkChan()
	c.conn.Sync(func() { t.BulkFaultHook = countdownHook(n) })
}

func countdownHook(n int) func(int, *wireMsg) error {
	cd := wire.Countdown(n)
	return func(attempt int, _ *wireMsg) error { return cd(attempt) }
}

// Samples implements daemon.Transport.
func (t *TCPTransport) Samples(batch []daemon.Sample) error {
	return t.ctl.send(wireMsg{Samples: batch}, &t.FaultHook)
}

// Update implements daemon.Transport.
func (t *TCPTransport) Update(u daemon.Update) error {
	return t.ctl.send(wireMsg{Update: &u}, &t.FaultHook)
}

// BulkShard implements daemon.BulkSink: trace shards ride their own
// acknowledged, deduped, retrying stream — never the sampling path.
func (t *TCPTransport) BulkShard(sh trace.Shard) error {
	return t.bulkChan().send(wireMsg{Shard: &sh}, &t.BulkFaultHook)
}

// TraceShard implements daemon.TraceSink for legacy callers; it routes to
// the bulk channel so shard bytes stay off the control stream either way.
func (t *TCPTransport) TraceShard(sh trace.Shard) error { return t.BulkShard(sh) }
