package frontend

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pperf/internal/daemon"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// The TCP transport carries daemon reports to the front end over real
// sockets with gob encoding — the shape of a deployment where daemons run on
// cluster nodes and the front end on the user's workstation. Each message is
// acknowledged before the daemon proceeds, so delivery order (and therefore
// front-end state) stays deterministic even though the listener runs on its
// own goroutine.
//
// Each daemon holds up to two independent channels to the front end:
//
//   - the control channel carries sample batches and resource updates — the
//     latency-sensitive sampling path;
//   - the bulk channel (dialed lazily on the first trace shard) carries
//     trace.Shard traffic, so arbitrarily large trace volume never queues
//     behind — or delays — a sample batch.
//
// Both channels are built for misbehaving clusters: every message carries
// the sending daemon's identity, its channel, and a per-channel sequence
// number, each send has a wall-clock deadline, failures trigger bounded
// exponential backoff with seeded (deterministic) jitter and a reconnect,
// and the front end dedupes replayed messages per (daemon, channel) — so an
// ack lost to a half-closed socket cannot double-apply a sample batch or a
// shard, and a reconnect resyncs without disturbing determinism.

// Channel labels stamped on wire frames. The control channel uses the empty
// string so pre-bulk-channel captures decode (and dedupe) unchanged.
const (
	ctlChannel  = ""
	bulkChannel = "bulk"
)

// wireMsg is the single message frame exchanged on the wire.
type wireMsg struct {
	// Daemon, Chan and Seq identify and order the frame for reconnect
	// dedupe. Seq is per-daemon-per-channel and strictly increasing; Seq 0
	// (legacy senders) bypasses dedupe.
	Daemon string
	Chan   string
	Seq    uint64
	// Inc is the sending daemon incarnation. A frame from an incarnation
	// older than the newest one seen is a straggler from a dead daemon:
	// the listener acknowledges it (so the sender unblocks) but never
	// applies it. A newer incarnation resets the channel's seq space. Inc
	// 0 (legacy senders) keeps pure-seq dedupe.
	Inc uint64

	Samples []daemon.Sample
	Update  *daemon.Update
	Shard   *trace.Shard
}

// RetryConfig tunes the daemon-side transport's robustness behaviour.
type RetryConfig struct {
	// MsgTimeout is the wall-clock deadline for one attempt (encode + ack).
	MsgTimeout time.Duration
	// MaxAttempts bounds tries per message (first send included). When all
	// fail, Samples/Update return an error and the daemon's outbox takes
	// over.
	MaxAttempts int
	// BaseBackoff/MaxBackoff bound the exponential backoff between
	// attempts.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter RNG; equal seeds give identical backoff
	// schedules (deterministic retries). The bulk channel derives its own
	// RNG stream from the same seed, so the two channels' schedules are
	// independent but both reproducible.
	Seed uint64
	// Incarnation is stamped on every frame so the listener can fence out
	// stragglers from dead daemon incarnations. 0 (the default) sends
	// legacy frames with pure-seq dedupe.
	Incarnation uint64
}

// DefaultRetryConfig returns production-shaped retry behaviour.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{
		MsgTimeout:  2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Seed:        1,
	}
}

// TransportStats counts one channel's resilience activity.
type TransportStats struct {
	Sent       int64 // messages acknowledged
	Duplicates int64 // (listener side only; unused on the daemon side)
	Retries    int64 // attempts beyond the first
	Reconnects int64 // successful redials
	Failures   int64 // messages given up on after MaxAttempts
	// Backoffs records every backoff delay chosen, in order — the observable
	// surface for determinism tests.
	Backoffs []time.Duration
}

// Listener accepts daemon connections for a front end. Control and bulk
// connections land on the same listening socket; frames declare their
// channel, and dedupe state is kept per (daemon, channel).
type Listener struct {
	fe *FrontEnd
	ln net.Listener
	wg sync.WaitGroup

	// readTimeout bounds the wait for each incoming frame; a peer that
	// connects and then wedges is dropped instead of parking the handler
	// goroutine forever. Healthy-but-idle daemons that get dropped simply
	// redial on their next send (gob streams are per-connection, and the
	// dedupe layer absorbs any replays).
	readTimeout time.Duration

	mu           sync.Mutex
	closed       bool
	lastSeq      map[string]uint64 // per-(daemon,channel) high-water mark for dedupe
	lastInc      map[string]uint64 // per-(daemon,channel) newest incarnation seen
	dups         int64
	staleFrames  int64 // frames fenced out as dead-incarnation stragglers
	readTimeouts int64 // connections dropped by the per-frame read deadline
	acceptE      int64 // transient accept errors retried
	ctlFrames    int64
	bulkFrames   int64
	ctlShards    int64 // shard frames that arrived on the control channel (should stay 0)
}

// DefaultReadTimeout is the per-frame read deadline new listeners start
// with — generous enough that an idle-but-healthy daemon is rarely cut,
// tight enough that a wedged peer cannot hold a handler goroutine forever.
const DefaultReadTimeout = 10 * time.Second

// Listen starts a TCP listener feeding the front end. Use addr "127.0.0.1:0"
// to pick a free port; Addr reports the chosen address.
func (fe *FrontEnd) Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen: %w", err)
	}
	l := &Listener{
		fe: fe, ln: ln,
		lastSeq:     map[string]uint64{},
		lastInc:     map[string]uint64{},
		readTimeout: DefaultReadTimeout,
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// SetReadTimeout adjusts the per-frame read deadline (0 disables it).
// Affects connections accepted after the call.
func (l *Listener) SetReadTimeout(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.readTimeout = d
}

// Addr returns the listening address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to finish.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// Duplicates returns how many replayed frames the dedupe layer skipped.
func (l *Listener) Duplicates() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dups
}

// StaleIncarnationFrames returns how many frames were fenced out because
// they came from a dead daemon incarnation.
func (l *Listener) StaleIncarnationFrames() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.staleFrames
}

// ReadTimeouts returns how many connections the per-frame read deadline
// dropped.
func (l *Listener) ReadTimeouts() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readTimeouts
}

// TransientAcceptErrors returns how many Accept errors were retried.
func (l *Listener) TransientAcceptErrors() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acceptE
}

// CtlFrames returns how many frames arrived on the control channel.
func (l *Listener) CtlFrames() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctlFrames
}

// BulkFrames returns how many frames arrived on the bulk channel.
func (l *Listener) BulkFrames() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bulkFrames
}

// CtlShardFrames returns how many trace-shard frames arrived on the control
// channel — the invariant the bulk channel exists to keep at zero, asserted
// by tests and benchmarks.
func (l *Listener) CtlShardFrames() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctlShards
}

// acceptLoop accepts daemon connections until the listener closes. A
// transient Accept error (resource exhaustion, aborted handshake) is retried
// with a short delay instead of silently killing the loop; only a closed
// listener — or persistent failure — ends it.
func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	consecutive := 0
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || l.isClosed() {
				return
			}
			consecutive++
			if consecutive > 10 {
				return // persistently failing listener; give up
			}
			l.mu.Lock()
			l.acceptE++
			l.mu.Unlock()
			time.Sleep(time.Duration(consecutive) * time.Millisecond)
			continue
		}
		consecutive = 0
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.handle(conn)
		}()
	}
}

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// seen reports (and records) whether the frame must be skipped — either a
// replay the front end already applied (reconnect-resync dedupe, tracked
// independently per (daemon, channel) since each channel numbers its own
// frames), or a straggler from a dead daemon incarnation. A frame from a
// newer incarnation resets the channel's seq space: the respawned daemon
// numbers its frames from 1 again.
func (l *Listener) seen(daemonName, ch string, inc, seq uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ch == bulkChannel {
		l.bulkFrames++
	} else {
		l.ctlFrames++
	}
	if daemonName == "" || seq == 0 {
		return false
	}
	key := daemonName + "\x00" + ch
	switch cur := l.lastInc[key]; {
	case inc < cur:
		l.staleFrames++
		return true
	case inc > cur:
		if l.lastInc == nil {
			l.lastInc = map[string]uint64{}
		}
		l.lastInc[key] = inc
		l.lastSeq[key] = 0
	}
	if seq <= l.lastSeq[key] {
		l.dups++
		return true
	}
	l.lastSeq[key] = seq
	return false
}

func (l *Listener) handle(conn net.Conn) {
	defer conn.Close()
	l.mu.Lock()
	readTimeout := l.readTimeout
	l.mu.Unlock()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(readTimeout))
		}
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// Wedged (or merely idle) peer: drop the connection
				// instead of parking this goroutine forever. A live
				// daemon redials on its next send and the dedupe layer
				// absorbs any replays.
				l.mu.Lock()
				l.readTimeouts++
				l.mu.Unlock()
			}
			return
		}
		if readTimeout > 0 {
			conn.SetReadDeadline(time.Time{})
		}
		if msg.Shard != nil && msg.Chan != bulkChannel {
			l.mu.Lock()
			l.ctlShards++
			l.mu.Unlock()
		}
		// A frame the daemon re-sent after a lost ack was already applied —
		// and one a dead incarnation sent must never apply. Both are still
		// acknowledged so the sender unblocks.
		if !l.seen(msg.Daemon, msg.Chan, msg.Inc, msg.Seq) {
			if msg.Samples != nil {
				l.fe.Samples(msg.Samples)
			}
			if msg.Update != nil {
				l.fe.Update(*msg.Update)
			}
			if msg.Shard != nil {
				l.fe.TraceShard(*msg.Shard)
			}
		}
		if err := enc.Encode(true); err != nil { // ack
			return
		}
	}
}

// ErrTransportClosed is returned by sends on a Close()d transport.
var ErrTransportClosed = errors.New("frontend: transport closed")

// tcpChannel is one independent acknowledged gob stream to the front end —
// its own connection, sequence space, backoff RNG, and stats. The control
// and bulk channels of a TCPTransport are two of these, locked separately
// so a slow bulk send never blocks a sample send.
type tcpChannel struct {
	mu     sync.Mutex
	label  string
	addr   string
	name   string
	cfg    RetryConfig
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	seq    uint64
	rng    *sim.RNG
	closed bool
	stats  TransportStats

	// faultHook, when set, is consulted before each attempt; a non-nil
	// return simulates a transport fault for that attempt (the connection
	// is treated as failed).
	faultHook func(attempt int, msg *wireMsg) error
}

// bulkSeedSalt derives the bulk channel's jitter stream from the configured
// seed, keeping the two channels' backoff schedules independent yet each
// deterministic.
const bulkSeedSalt = 0x62756c6b // "bulk"

// TCPTransport is the daemon-side transport: it gob-encodes each report,
// waits (with a deadline) for the front end's acknowledgement, and on
// failure retries with seeded-jitter exponential backoff, redialling as
// needed. When every attempt fails the error surfaces to the daemon, whose
// outbox (control) or bulk queue (trace shards) buffers the report for
// later replay. Trace shards move on a dedicated bulk connection so the
// sampling path's latency is independent of trace volume.
type TCPTransport struct {
	addr string
	name string
	cfg  RetryConfig

	ctl tcpChannel

	bulkMu sync.Mutex // guards lazy creation of bulk
	bulk   *tcpChannel

	// FaultHook, when set, is consulted before each control-channel
	// attempt; a non-nil return simulates a transport fault for that
	// attempt. Used by the fault injector and tests to exercise the retry
	// path deterministically. BulkFaultHook is its bulk-channel twin.
	FaultHook     func(attempt int, msg *wireMsg) error
	BulkFaultHook func(attempt int, msg *wireMsg) error
}

// DialTransport connects a daemon-side transport to a front-end listener
// with default retry behaviour and no identity (legacy callers).
func DialTransport(addr string) (*TCPTransport, error) {
	return DialTransportRetry(addr, "", DefaultRetryConfig())
}

// DialTransportRetry connects a daemon-side transport with explicit identity
// and retry configuration. name is the daemon identity used for reconnect
// dedupe; empty disables dedupe (every frame applies). Only the control
// channel is dialed here; the bulk channel comes up lazily on the first
// trace shard.
func DialTransportRetry(addr, name string, cfg RetryConfig) (*TCPTransport, error) {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	t := &TCPTransport{addr: addr, name: name, cfg: cfg}
	t.ctl = tcpChannel{label: ctlChannel, addr: addr, name: name, cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
	t.ctl.mu.Lock()
	err := t.ctl.redialLocked()
	t.ctl.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("frontend: dial: %w", err)
	}
	return t, nil
}

// bulkChan returns the bulk channel, creating (and best-effort dialing) it
// on first use.
func (t *TCPTransport) bulkChan() *tcpChannel {
	t.bulkMu.Lock()
	defer t.bulkMu.Unlock()
	if t.bulk == nil {
		t.bulk = &tcpChannel{
			label: bulkChannel, addr: t.addr, name: t.name, cfg: t.cfg,
			rng: sim.NewRNG(t.cfg.Seed ^ bulkSeedSalt),
		}
		t.bulk.mu.Lock()
		t.bulk.redialLocked() // a failed dial retries inside send
		t.bulk.mu.Unlock()
	}
	return t.bulk
}

// Close shuts both channels; subsequent sends fail fast.
func (t *TCPTransport) Close() error {
	err := t.ctl.close()
	t.bulkMu.Lock()
	b := t.bulk
	t.bulkMu.Unlock()
	if b != nil {
		if berr := b.close(); err == nil {
			err = berr
		}
	}
	return err
}

func (c *tcpChannel) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Stats returns a snapshot of the control channel's resilience counters.
func (t *TCPTransport) Stats() TransportStats { return t.ctl.snapshot() }

// BulkStats returns a snapshot of the bulk channel's resilience counters
// (all zero if no shard was ever sent).
func (t *TCPTransport) BulkStats() TransportStats {
	t.bulkMu.Lock()
	b := t.bulk
	t.bulkMu.Unlock()
	if b == nil {
		return TransportStats{}
	}
	return b.snapshot()
}

func (c *tcpChannel) snapshot() TransportStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Backoffs = append([]time.Duration(nil), c.stats.Backoffs...)
	return s
}

// InjectFailures makes the next n control-channel attempts fail
// (deterministic fault injection): each failed attempt consumes one count,
// exercising timeout, backoff and reconnect exactly as a flaky network
// would.
func (t *TCPTransport) InjectFailures(n int) {
	t.ctl.mu.Lock()
	defer t.ctl.mu.Unlock()
	t.FaultHook = countdownHook(n)
}

// InjectBulkFailures is InjectFailures for the bulk channel: the next n
// shard attempts fail while control traffic flows untouched.
func (t *TCPTransport) InjectBulkFailures(n int) {
	c := t.bulkChan()
	c.mu.Lock()
	defer c.mu.Unlock()
	t.BulkFaultHook = countdownHook(n)
}

func countdownHook(n int) func(int, *wireMsg) error {
	remaining := n
	return func(int, *wireMsg) error {
		if remaining <= 0 {
			return nil
		}
		remaining--
		return fmt.Errorf("injected transport fault (%d more)", remaining)
	}
}

// redialLocked (re)establishes the connection and fresh gob codecs. A gob
// stream is stateful, so any failed connection must be fully replaced.
func (c *tcpChannel) redialLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	timeout := c.cfg.MsgTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// backoffLocked computes the delay before retry attempt (1-based): bounded
// exponential growth with seeded jitter in [d/2, d). The schedule is a pure
// function of the seed and the failure sequence, so retries under simulated
// faults are reproducible.
func (c *tcpChannel) backoffLocked(attempt int) time.Duration {
	d := c.cfg.BaseBackoff
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if c.cfg.MaxBackoff > 0 && d >= c.cfg.MaxBackoff {
			d = c.cfg.MaxBackoff
			break
		}
	}
	half := d / 2
	jittered := half + time.Duration(c.rng.Uint64()%uint64(half+1))
	c.stats.Backoffs = append(c.stats.Backoffs, jittered)
	return jittered
}

// attemptLocked performs one deadline-bounded encode+ack round trip.
func (c *tcpChannel) attemptLocked(msg *wireMsg) error {
	if c.conn == nil {
		return errors.New("no connection")
	}
	if c.cfg.MsgTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.MsgTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(msg); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	var ack bool
	if err := c.dec.Decode(&ack); err != nil {
		// A half-closed or dead socket surfaces here as an error (or a
		// deadline timeout) instead of a silent hang.
		return fmt.Errorf("awaiting ack: %w", err)
	}
	return nil
}

// send delivers one frame on channel c, retrying with backoff. hook points
// at the transport's fault-hook field for this channel, read fresh each
// attempt so tests can clear it mid-sequence.
func (c *tcpChannel) send(msg wireMsg, hook *func(attempt int, msg *wireMsg) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrTransportClosed
	}
	msg.Daemon = c.name
	msg.Chan = c.label
	msg.Inc = c.cfg.Incarnation
	c.seq++
	msg.Seq = c.seq

	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.stats.Retries++
			time.Sleep(c.backoffLocked(attempt - 1))
			if err := c.redialLocked(); err != nil {
				lastErr = err
				continue
			}
			c.stats.Reconnects++
		}
		if fh := *hook; fh != nil {
			if err := fh(attempt, &msg); err != nil {
				lastErr = err
				continue
			}
		}
		if err := c.attemptLocked(&msg); err != nil {
			lastErr = err
			// The gob stream is now poisoned; force a redial next attempt.
			if c.conn != nil {
				c.conn.Close()
				c.conn = nil
			}
			continue
		}
		c.stats.Sent++
		return nil
	}
	c.stats.Failures++
	return fmt.Errorf("frontend: send failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// Samples implements daemon.Transport.
func (t *TCPTransport) Samples(batch []daemon.Sample) error {
	return t.ctl.send(wireMsg{Samples: batch}, &t.FaultHook)
}

// Update implements daemon.Transport.
func (t *TCPTransport) Update(u daemon.Update) error {
	return t.ctl.send(wireMsg{Update: &u}, &t.FaultHook)
}

// BulkShard implements daemon.BulkSink: trace shards ride their own
// acknowledged, deduped, retrying stream — never the sampling path.
func (t *TCPTransport) BulkShard(sh trace.Shard) error {
	return t.bulkChan().send(wireMsg{Shard: &sh}, &t.BulkFaultHook)
}

// TraceShard implements daemon.TraceSink for legacy callers; it routes to
// the bulk channel so shard bytes stay off the control stream either way.
func (t *TCPTransport) TraceShard(sh trace.Shard) error { return t.BulkShard(sh) }
