// Package frontend implements the tool's front-end process: the live
// implementation of the analysis plane's DataSource interface. It ingests
// the samples the per-node daemons forward into the shared datasource.View
// (folding histograms, the mirrored resource hierarchy, the observed call
// graph, process lifecycle), fans metric enable/disable requests out to the
// daemons, and — when a session recorder is attached — captures the whole
// event stream into a replayable archive.
package frontend

import (
	"fmt"
	"sync"

	"pperf/internal/daemon"
	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// Re-exported datasource types, so existing front-end consumers keep
// reading naturally while the definitions live in the shared plane.
type (
	// ProcInfo is what the front end knows about one application process.
	ProcInfo = datasource.ProcInfo
	// DaemonHealth is the front end's liveness view of one daemon.
	DaemonHealth = datasource.DaemonHealth
	// Series is the collected data of one enabled metric-focus pair.
	Series = datasource.Series
)

// FrontEnd is the tool's central state. It embeds the source-agnostic
// datasource.View (queries, series, hierarchy, liveness) and adds what only
// the live side has: the daemons to fan instrumentation requests out to,
// the trace timeline the daemons stream into, and the optional session
// recorder. It implements daemon.Transport for the in-process connection;
// the TCP transport delivers into the same methods.
type FrontEnd struct {
	*datasource.View

	daemons []*daemon.Daemon

	// tmu guards timeline (fe.View has its own lock for the query state).
	tmu      sync.Mutex
	timeline *trace.Timeline

	// rec, when non-nil, captures the analysis-plane event stream for
	// offline replay. Every hook below is a nil test when recording is off,
	// so a cold recorder costs nothing on the sampling path.
	rec datasource.Recorder

	// emu guards active — the currently-enabled metric-focus set, which
	// the supervisor replays onto respawned daemon incarnations.
	emu    sync.Mutex
	active []activeEnable

	// sv, when non-nil, is the daemon supervisor; the liveness monitor
	// feeds it detection verdicts. Nil (the default) keeps today's
	// permanent-loss semantics and costs one pointer test.
	sv *Supervisor
}

// activeEnable is one member of the active metric-focus set.
type activeEnable struct {
	metric string
	focus  resource.Focus
}

// FrontEnd must satisfy the full DataSource contract (the Consultant and
// everything else above the wire depends only on that interface).
var _ datasource.DataSource = (*FrontEnd)(nil)

// New creates an empty front end.
func New() *FrontEnd {
	return &FrontEnd{View: datasource.NewView()}
}

// SetRecorder attaches a session recorder; every subsequently ingested
// event is captured. Call before Launch so the archive holds the complete
// stream. A nil recorder detaches.
func (fe *FrontEnd) SetRecorder(rec datasource.Recorder) { fe.rec = rec }

// AddDaemon registers a daemon the front end controls.
func (fe *FrontEnd) AddDaemon(d *daemon.Daemon) {
	fe.daemons = append(fe.daemons, d)
}

// ReplaceDaemon swaps a respawned daemon incarnation in for its dead
// predecessor (matched by daemon identity), returning the daemon it
// displaced (nil if the identity is unknown — the replacement is then
// appended).
func (fe *FrontEnd) ReplaceDaemon(d *daemon.Daemon) *daemon.Daemon {
	for i, old := range fe.daemons {
		if old.Name() == d.Name() {
			fe.daemons[i] = d
			return old
		}
	}
	fe.daemons = append(fe.daemons, d)
	return nil
}

// EnableTrace prepares the front end to merge daemon trace shards.
func (fe *FrontEnd) EnableTrace() {
	fe.tmu.Lock()
	defer fe.tmu.Unlock()
	if fe.timeline == nil {
		fe.timeline = trace.NewTimeline()
	}
}

// Timeline returns the merged trace timeline (nil when tracing was never
// enabled).
func (fe *FrontEnd) Timeline() *trace.Timeline {
	fe.tmu.Lock()
	defer fe.tmu.Unlock()
	return fe.timeline
}

// TraceShard implements daemon.TraceSink: merge one streamed shard. Shards
// arriving over TCP before EnableTrace (ordering races are impossible in
// the simulation, but cheap to tolerate) lazily create the timeline.
func (fe *FrontEnd) TraceShard(sh trace.Shard) error {
	fe.tmu.Lock()
	if fe.timeline == nil {
		fe.timeline = trace.NewTimeline()
	}
	tl := fe.timeline
	fe.tmu.Unlock()
	tl.Ingest(sh)
	if fe.rec != nil {
		fe.rec.RecordShard(sh)
	}
	return nil
}

// BulkShard implements daemon.BulkSink: the in-process bulk channel is the
// same direct call as TraceShard — there is no wire to keep samples and
// shards apart on — but implementing the interface keeps the daemon's
// shard traffic in its dedicated bulk queue instead of the report outbox.
func (fe *FrontEnd) BulkShard(sh trace.Shard) error { return fe.TraceShard(sh) }

// NoteUndelivered folds end-of-run undelivered-span accounting into the
// timeline (and the session archive, when recording).
func (fe *FrontEnd) NoteUndelivered(proc string, n int64) {
	if tl := fe.Timeline(); tl != nil {
		tl.NoteUndelivered(proc, n)
	}
	if fe.rec != nil {
		fe.rec.RecordUndelivered(proc, n)
	}
}

// EnableMetric turns on a metric-focus pair across all daemons, returning
// its (possibly pre-existing) series. Enabling is all-or-nothing: if any
// daemon refuses, the daemons already instrumented are rolled back and the
// series is unregistered before the error returns, so a failed enable
// leaves no partially-enabled state behind (no orphaned probes charging
// overhead, no registered series silently collecting a subset of nodes).
func (fe *FrontEnd) EnableMetric(metricName string, focus resource.Focus) (*Series, error) {
	s, existed := fe.View.RegisterSeries(metricName, focus)
	if existed {
		return s, nil
	}
	for i, d := range fe.daemons {
		if _, err := d.Enable(metricName, focus); err != nil {
			for _, prev := range fe.daemons[:i] {
				prev.Disable(metricName, focus)
			}
			fe.View.DropSeries(metricName, focus)
			if fe.rec != nil {
				fe.rec.RecordEnable(metricName, focus, err.Error())
			}
			return nil, err
		}
	}
	fe.emu.Lock()
	fe.active = append(fe.active, activeEnable{metric: metricName, focus: focus})
	fe.emu.Unlock()
	if fe.rec != nil {
		fe.rec.RecordEnable(metricName, focus, "")
	}
	return s, nil
}

// DisableMetric removes a metric-focus pair's instrumentation. The
// collected series remains queryable.
func (fe *FrontEnd) DisableMetric(metricName string, focus resource.Focus) {
	for _, d := range fe.daemons {
		d.Disable(metricName, focus)
	}
	fe.emu.Lock()
	key := focus.Key()
	for i, e := range fe.active {
		if e.metric == metricName && e.focus.Key() == key {
			fe.active = append(fe.active[:i], fe.active[i+1:]...)
			break
		}
	}
	fe.emu.Unlock()
}

// activeEnables returns the currently-enabled metric-focus set in enable
// order — the state a respawned daemon incarnation must resynchronize to.
func (fe *FrontEnd) activeEnables() []activeEnable {
	fe.emu.Lock()
	defer fe.emu.Unlock()
	return append([]activeEnable(nil), fe.active...)
}

// resyncDaemon replays the active metric-focus set onto a freshly
// respawned daemon — the state-resynchronization half of the supervisor's
// re-attach. Enables are applied in original enable order so the daemon's
// instrumentation sequence (and any cost accounting derived from it) is
// deterministic. A failure — including the daemon dying mid-protocol —
// aborts immediately; the supervisor treats the respawn as failed and
// re-enters backoff with a brand-new incarnation, so no daemon object is
// ever enabled twice.
func (fe *FrontEnd) resyncDaemon(d *daemon.Daemon) error {
	for _, e := range fe.activeEnables() {
		if d.Crashed() {
			return fmt.Errorf("frontend: daemon %s died during resynchronization", d.Name())
		}
		if _, err := d.Enable(e.metric, e.focus); err != nil {
			return fmt.Errorf("frontend: resync enable %s %s: %w", e.metric, e.focus, err)
		}
	}
	if d.Crashed() {
		return fmt.Errorf("frontend: daemon %s died during resynchronization", d.Name())
	}
	return nil
}

// recordGap folds one unmeasured outage window into the view (and the
// session archive, when recording).
func (fe *FrontEnd) recordGap(g datasource.Gap) {
	fe.View.AddGap(g)
	if fe.rec != nil {
		fe.rec.RecordGap(g)
	}
}

// Sync implements the DataSource read barrier: consumers (the Performance
// Consultant) call it before each evaluation pass. Live state is always
// current, so the only work is stamping the barrier into the session
// archive — which is what lets a replay reproduce each evaluation's exact
// input state.
func (fe *FrontEnd) Sync() {
	if fe.rec != nil {
		fe.rec.RecordBarrier()
	}
}

// --- daemon.Transport implementation --------------------------------------

// Samples ingests a batch of sampled deltas. It implements
// daemon.Transport; the in-process path never fails.
func (fe *FrontEnd) Samples(batch []daemon.Sample) error {
	fe.View.ApplySamples(batch)
	if fe.rec != nil {
		fe.rec.RecordSamples(batch)
	}
	return nil
}

// Update ingests a resource-update report. It implements daemon.Transport;
// the in-process path never fails.
func (fe *FrontEnd) Update(u daemon.Update) error {
	fe.View.ApplyUpdate(u)
	if fe.rec != nil {
		fe.rec.RecordUpdate(u)
	}
	return nil
}

// --- liveness ---------------------------------------------------------------

// StartLiveness arms the periodic liveness monitor: every interval of
// virtual time it checks each known daemon's last contact, and one that has
// been silent longer than timeout is marked stale with all its un-exited
// processes lost. Daemons registered with AddDaemon are pre-seeded so a
// daemon that dies before its first report is still detected. The pre-seed
// flows through Update as a heartbeat report, so a recording session
// captures it like any other liveness evidence.
func (fe *FrontEnd) StartLiveness(eng interface {
	After(d sim.Duration, fn func())
	Now() sim.Time
}, interval, timeout sim.Duration) {
	now := eng.Now()
	for _, d := range fe.daemons {
		fe.Update(daemon.Update{Kind: daemon.UpHeartbeat, Daemon: d.Name(), Time: now})
	}
	var tick func()
	tick = func() {
		fe.checkLiveness(eng.Now(), timeout)
		eng.After(interval, tick)
	}
	eng.After(interval, tick)
}

// checkLiveness marks daemons silent for longer than timeout as stale and
// their processes as lost. Verdicts are applied in sorted daemon order
// (SilentDaemons sorts) so detection — and its recording — is independent
// of map layout.
func (fe *FrontEnd) checkLiveness(now sim.Time, timeout sim.Duration) {
	for _, name := range fe.View.SilentDaemons(now, timeout) {
		fe.View.MarkDaemonStale(name, now)
		if fe.rec != nil {
			fe.rec.RecordStale(name, now)
		}
		if fe.sv != nil {
			fe.sv.NoteDown(datasource.DaemonNode(name))
		}
	}
}
