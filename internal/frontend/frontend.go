// Package frontend implements the tool's front-end process: it aggregates
// the samples the per-node daemons forward into folding histograms, mirrors
// the dynamically discovered resource hierarchy (including user-friendly
// names and retirement), maintains the observed call graph, and serves
// queries for visualization and for the Performance Consultant's search.
package frontend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pperf/internal/daemon"
	"pperf/internal/metric"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// ProcInfo is what the front end knows about one application process.
type ProcInfo struct {
	Name    string
	Node    string
	Started sim.Time
	Exited  bool
	EndTime sim.Time
	// Lost marks a process that stopped reporting without a clean exit: its
	// daemon reported it forcibly terminated, or the daemon itself went
	// silent (crash/hang detected by the liveness monitor). Lost processes'
	// data is stale from LostTime on and they leave the Performance
	// Consultant's candidate set.
	Lost     bool
	LostTime sim.Time
}

// FrontEnd is the tool's central state. It implements daemon.Transport for
// the in-process connection; the TCP transport delivers into the same
// methods.
type FrontEnd struct {
	mu      sync.Mutex
	hier    *resource.Hierarchy
	daemons []*daemon.Daemon
	series  map[string]*Series
	edges   map[string]map[string]bool
	callees map[string]bool
	procs   map[string]*ProcInfo

	// liveness is per-daemon last-contact state (nil until a fault plan
	// arms the liveness monitor or a daemon-stamped report arrives).
	liveness map[string]*DaemonHealth

	// timeline, when non-nil, merges the trace shards the daemons stream
	// (nil unless tracing is enabled for the run).
	timeline *trace.Timeline

	// NumBins/BinWidth configure new histograms (defaults are Paradyn's).
	NumBins  int
	BinWidth sim.Duration
}

// New creates an empty front end.
func New() *FrontEnd {
	return &FrontEnd{
		hier:    resource.New(),
		series:  map[string]*Series{},
		edges:   map[string]map[string]bool{},
		callees: map[string]bool{},
		procs:   map[string]*ProcInfo{},
	}
}

// AddDaemon registers a daemon the front end controls.
func (fe *FrontEnd) AddDaemon(d *daemon.Daemon) {
	fe.daemons = append(fe.daemons, d)
}

// EnableTrace prepares the front end to merge daemon trace shards.
func (fe *FrontEnd) EnableTrace() {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.timeline == nil {
		fe.timeline = trace.NewTimeline()
	}
}

// Timeline returns the merged trace timeline (nil when tracing was never
// enabled).
func (fe *FrontEnd) Timeline() *trace.Timeline {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	return fe.timeline
}

// TraceShard implements daemon.TraceSink: merge one streamed shard. Shards
// arriving over TCP before EnableTrace (ordering races are impossible in
// the simulation, but cheap to tolerate) lazily create the timeline.
func (fe *FrontEnd) TraceShard(sh trace.Shard) error {
	fe.mu.Lock()
	if fe.timeline == nil {
		fe.timeline = trace.NewTimeline()
	}
	tl := fe.timeline
	fe.mu.Unlock()
	tl.Ingest(sh)
	return nil
}

// BulkShard implements daemon.BulkSink: the in-process bulk channel is the
// same direct call as TraceShard — there is no wire to keep samples and
// shards apart on — but implementing the interface keeps the daemon's
// shard traffic in its dedicated bulk queue instead of the report outbox.
func (fe *FrontEnd) BulkShard(sh trace.Shard) error { return fe.TraceShard(sh) }

// Series is the collected data of one enabled metric-focus pair: the
// aggregated histogram plus per-process histograms.
type Series struct {
	Metric  string
	Def     *metric.Def
	Focus   resource.Focus
	agg     *metric.Histogram
	perProc map[string]*metric.Histogram
	fe      *FrontEnd
	lastT   sim.Time
}

// LastSampleTime returns the time of the newest ingested sample, so
// consumers can align rate computations with actual data coverage.
func (s *Series) LastSampleTime() sim.Time { return s.lastT }

// Histogram returns the focus-aggregated histogram.
func (s *Series) Histogram() *metric.Histogram { return s.agg }

// ProcHistogram returns one process's histogram (nil if that process never
// reported).
func (s *Series) ProcHistogram(proc string) *metric.Histogram { return s.perProc[proc] }

// Procs lists the processes that have reported samples, sorted.
func (s *Series) Procs() []string {
	out := make([]string, 0, len(s.perProc))
	for p := range s.perProc {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Total returns the cumulative metric value across all samples.
func (s *Series) Total() float64 { return s.agg.Total() }

func seriesKey(m string, f resource.Focus) string { return m + "\x00" + f.Key() }

// EnableMetric turns on a metric-focus pair across all daemons, returning
// its (possibly pre-existing) series. Enabling is all-or-nothing: if any
// daemon refuses, the daemons already instrumented are rolled back and the
// series is unregistered before the error returns, so a failed enable
// leaves no partially-enabled state behind (no orphaned probes charging
// overhead, no registered series silently collecting a subset of nodes).
func (fe *FrontEnd) EnableMetric(metricName string, focus resource.Focus) (*Series, error) {
	fe.mu.Lock()
	if s, ok := fe.series[seriesKey(metricName, focus)]; ok {
		fe.mu.Unlock()
		return s, nil
	}
	s := &Series{
		Metric:  metricName,
		Focus:   focus,
		agg:     metric.NewHistogram(fe.NumBins, fe.BinWidth),
		perProc: map[string]*metric.Histogram{},
		fe:      fe,
	}
	fe.series[seriesKey(metricName, focus)] = s
	fe.mu.Unlock()

	for i, d := range fe.daemons {
		if _, err := d.Enable(metricName, focus); err != nil {
			for _, prev := range fe.daemons[:i] {
				prev.Disable(metricName, focus)
			}
			fe.mu.Lock()
			delete(fe.series, seriesKey(metricName, focus))
			fe.mu.Unlock()
			return nil, err
		}
	}
	return s, nil
}

// DisableMetric removes a metric-focus pair's instrumentation. The
// collected series remains queryable.
func (fe *FrontEnd) DisableMetric(metricName string, focus resource.Focus) {
	for _, d := range fe.daemons {
		d.Disable(metricName, focus)
	}
}

// Series returns the series for a metric-focus pair, or nil.
func (fe *FrontEnd) Series(metricName string, focus resource.Focus) *Series {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	return fe.series[seriesKey(metricName, focus)]
}

// --- daemon.Transport implementation --------------------------------------

// Samples ingests a batch of sampled deltas. It implements
// daemon.Transport; the in-process path never fails.
func (fe *FrontEnd) Samples(batch []daemon.Sample) error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	for _, sm := range batch {
		s, ok := fe.series[seriesKey(sm.Metric, sm.Focus)]
		if !ok {
			continue // disabled while in flight
		}
		s.agg.Add(sm.Time, sm.Delta)
		if sm.Time > s.lastT {
			s.lastT = sm.Time
		}
		ph, ok := s.perProc[sm.Proc]
		if !ok {
			ph = metric.NewHistogram(fe.NumBins, fe.BinWidth)
			s.perProc[sm.Proc] = ph
		}
		ph.Add(sm.Time, sm.Delta)
	}
	return nil
}

// Update ingests a resource-update report. It implements daemon.Transport;
// the in-process path never fails.
func (fe *FrontEnd) Update(u daemon.Update) error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if u.Daemon != "" {
		fe.noteDaemonLocked(u.Daemon, u.Time)
	}
	switch u.Kind {
	case daemon.UpAddResource:
		n := fe.hier.AddPath(u.Path)
		if u.Display != "" {
			n.SetDisplayName(u.Display)
		}
		if strings.HasPrefix(u.Path, "/Machine/") {
			parts := strings.Split(strings.TrimPrefix(u.Path, "/Machine/"), "/")
			if len(parts) == 2 {
				if _, ok := fe.procs[parts[1]]; !ok {
					fe.procs[parts[1]] = &ProcInfo{Name: parts[1], Node: parts[0], Started: u.Time}
				}
			}
		}
	case daemon.UpRetire:
		if n := fe.hier.FindPath(u.Path); n != nil {
			n.Retire()
		}
	case daemon.UpSetName:
		fe.hier.AddPath(u.Path).SetDisplayName(u.Display)
	case daemon.UpCallEdge:
		m, ok := fe.edges[u.Caller]
		if !ok {
			m = map[string]bool{}
			fe.edges[u.Caller] = m
		}
		m[u.Callee] = true
		fe.callees[u.Callee] = true
	case daemon.UpProcessExit:
		if p, ok := fe.procs[u.Proc]; ok {
			p.Exited = true
			p.EndTime = u.Time
		}
		if n := fe.hier.FindPath(u.Path); n != nil {
			n.Retire() // exited processes gray out and leave the PC's candidate set
		}
	case daemon.UpProcessLost:
		fe.markProcLostLocked(u.Proc, u.Path, u.Time)
	case daemon.UpHeartbeat:
		// Liveness was recorded above; nothing else to do.
	}
	return nil
}

// --- queries ----------------------------------------------------------------

// Hierarchy returns the front end's resource-hierarchy mirror.
func (fe *FrontEnd) Hierarchy() *resource.Hierarchy { return fe.hier }

// Callees returns the observed callees of a function, sorted.
func (fe *FrontEnd) Callees(caller string) []string {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	var out []string
	for c := range fe.edges[caller] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// IsCallee reports whether the function has been observed as someone's
// callee. Functions that never appear as callees are the program's
// call-graph roots — the entry points of the Performance Consultant's
// code-axis search.
func (fe *FrontEnd) IsCallee(fname string) bool {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	return fe.callees[fname]
}

// Processes returns known processes sorted by name.
func (fe *FrontEnd) Processes() []*ProcInfo {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	out := make([]*ProcInfo, 0, len(fe.procs))
	for _, p := range fe.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LiveProcessCount returns the number of processes that have not exited.
func (fe *FrontEnd) LiveProcessCount() int {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	n := 0
	for _, p := range fe.procs {
		if !p.Exited {
			n++
		}
	}
	return n
}

// ProcessCount returns the number of processes ever seen.
func (fe *FrontEnd) ProcessCount() int {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	return len(fe.procs)
}

// ExportCSV writes the series' per-bin data — time, aggregate value, and one
// column per process — the way the paper's authors exported Paradyn's
// histogram data to compute byte totals and averages (§5.1.2 etc.).
func (fe *FrontEnd) ExportCSV(s *Series) string {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	procs := make([]string, 0, len(s.perProc))
	for p := range s.perProc {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	var b strings.Builder
	b.WriteString("bin_start_s,all")
	for _, p := range procs {
		b.WriteString("," + p)
	}
	b.WriteByte('\n')
	width := s.agg.BinWidth().Seconds()
	for i := 0; i < s.agg.NumFilled(); i++ {
		fmt.Fprintf(&b, "%.3f,%g", float64(i)*width, s.agg.Bin(i))
		for _, p := range procs {
			ph := s.perProc[p]
			// Per-process histograms can fold at different times; export
			// the value at the aggregate's bin granularity.
			v := 0.0
			if ph.BinWidth() == s.agg.BinWidth() {
				v = ph.Bin(i)
			} else {
				// Re-bin: sum the process bins covering this interval.
				ratio := float64(s.agg.BinWidth()) / float64(ph.BinWidth())
				lo := int(float64(i) * ratio)
				hi := int(float64(i+1) * ratio)
				for j := lo; j < hi; j++ {
					v += ph.Bin(j)
				}
			}
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderSeries draws a series as text: the aggregate sparkline plus per-
// process lines — the stand-in for Paradyn's histogram visualizations.
func (fe *FrontEnd) RenderSeries(s *Series, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s\n", s.Metric, s.Focus)
	fmt.Fprintf(&b, "  all: |%s| total=%.6g (bin %v)\n", s.agg.Render(width), s.agg.Total(), s.agg.BinWidth())
	for _, p := range s.Procs() {
		h := s.perProc[p]
		fmt.Fprintf(&b, "  %-16s |%s| total=%.6g\n", p+":", h.Render(width), h.Total())
	}
	return b.String()
}
