package frontend

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pperf/internal/daemon"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/wire"
)

// testRetryConfig keeps wall-clock waits negligible in tests.
func testRetryConfig() RetryConfig {
	return RetryConfig{
		MsgTimeout:  500 * time.Millisecond,
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Seed:        42,
	}
}

func TestTCPTransportDeliversThroughInjectedFailures(t *testing.T) {
	fe := New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tr, err := DialTransportRetry(l.Addr(), "paradynd@node0", testRetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.InjectFailures(2)
	if err := tr.Update(daemon.Update{Kind: daemon.UpAddResource, Path: "/Machine/node0/p0", Time: 1}); err != nil {
		t.Fatalf("update after injected failures: %v", err)
	}
	if err := tr.Update(daemon.Update{Kind: daemon.UpCallEdge, Caller: "a", Callee: "b"}); err != nil {
		t.Fatal(err)
	}

	if fe.Hierarchy().FindPath("/Machine/node0/p0") == nil {
		t.Error("update not applied")
	}
	if !fe.IsCallee("b") {
		t.Error("second update not applied")
	}
	st := tr.Stats()
	if st.Frames != 2 || st.Retries < 2 || st.Failures != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Backoffs) < 2 {
		t.Errorf("backoffs not recorded: %+v", st.Backoffs)
	}
}

func TestTCPTransportGivesUpAfterMaxAttempts(t *testing.T) {
	fe := New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	cfg := testRetryConfig()
	cfg.MaxAttempts = 2
	tr, err := DialTransportRetry(l.Addr(), "paradynd@node0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.InjectFailures(5)
	if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if st := tr.Stats(); st.Failures != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The failure budget drains; the next send succeeds again (outbox-replay
	// scenario).
	tr.InjectFailures(0)
	tr.FaultHook = nil
	if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
}

func TestListenerDedupesReplayedFrames(t *testing.T) {
	fe := New()
	f := resource.WholeProgram()
	fe.RegisterSeries("m", f)
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	msg := wireMsg{
		Daemon:  "paradynd@node0",
		Seq:     1,
		Samples: []daemon.Sample{sample("m", f, "p0", sim.Time(sim.Second), 5)},
	}
	var ack bool
	// A daemon that lost the ack re-sends the same frame after reconnecting;
	// the listener must ack it again without re-applying.
	for i := 0; i < 2; i++ {
		if err := enc.Encode(&msg); err != nil {
			t.Fatal(err)
		}
		if err := dec.Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	if got := fe.Series("m", f).Total(); got != 5 {
		t.Errorf("total = %v, want 5 (replay applied twice?)", got)
	}
	if l.Duplicates() != 1 {
		t.Errorf("duplicates = %d, want 1", l.Duplicates())
	}
}

func TestBackoffScheduleDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		fe := New()
		l, err := fe.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		cfg := testRetryConfig()
		cfg.Seed = seed
		tr, err := DialTransportRetry(l.Addr(), "d", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		tr.InjectFailures(3)
		if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); err != nil {
			t.Fatal(err)
		}
		return tr.Stats().Backoffs
	}
	a, b := run(7), run(7)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("backoffs: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed, different backoff[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

// fakeListener scripts Accept results: a sequence of transient errors, then
// closure.
type fakeListener struct {
	mu     sync.Mutex
	errs   []error
	closed chan struct{}
	once   sync.Once
}

func (f *fakeListener) Accept() (net.Conn, error) {
	f.mu.Lock()
	if len(f.errs) > 0 {
		e := f.errs[0]
		f.errs = f.errs[1:]
		f.mu.Unlock()
		return nil, e
	}
	f.mu.Unlock()
	<-f.closed
	return nil, net.ErrClosed
}

func (f *fakeListener) Close() error {
	f.once.Do(func() { close(f.closed) })
	return nil
}

func (f *fakeListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

func TestAcceptLoopRetriesTransientErrors(t *testing.T) {
	fl := &fakeListener{
		errs:   []error{errors.New("accept: too many open files"), errors.New("accept: connection aborted")},
		closed: make(chan struct{}),
	}
	l := &Listener{fe: New(), ln: fl, dedupe: wire.NewDedupe(0)}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		wire.AcceptLoop(l.ln, l.isClosed, l.noteTransientAccept, &l.wg, l.handle)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for l.TransientAcceptErrors() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("transient errors retried = %d, want 2", l.TransientAcceptErrors())
		}
		time.Sleep(time.Millisecond)
	}
	// Closing ends the loop despite earlier errors.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHalfClosedSocketSurfacesErrorNotHang(t *testing.T) {
	// A server that accepts and never acknowledges: the per-message deadline
	// must surface an error instead of wedging the daemon.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c // hold the connection open, never read or write
		}
	}()

	cfg := testRetryConfig()
	cfg.MsgTimeout = 50 * time.Millisecond
	cfg.MaxAttempts = 2
	tr, err := DialTransportRetry(ln.Addr().String(), "d", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	done := make(chan error, 1)
	go func() { done <- tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("send to mute server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send hung on half-closed socket")
	}
}

func TestSendOnClosedTransportFailsFast(t *testing.T) {
	fe := New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tr, err := DialTransportRetry(l.Addr(), "d", testRetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); !errors.Is(err, ErrTransportClosed) {
		t.Errorf("err = %v, want ErrTransportClosed", err)
	}
}
