package frontend

import (
	"strings"
	"testing"

	"pperf/internal/daemon"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

func sample(metric string, f resource.Focus, proc string, t sim.Time, delta float64) daemon.Sample {
	return daemon.Sample{Metric: metric, Focus: f, Proc: proc, Time: t, Delta: delta}
}

func TestSamplesAggregateAndPerProc(t *testing.T) {
	fe := New()
	f := resource.WholeProgram()
	// Register the series without daemons via the view (the daemon fan-out
	// of EnableMetric is irrelevant to ingest behaviour).
	fe.RegisterSeries("m", f)
	fe.Samples([]daemon.Sample{
		sample("m", f, "p0", sim.Time(1*sim.Second), 5),
		sample("m", f, "p1", sim.Time(1*sim.Second), 3),
		sample("m", f, "p0", sim.Time(2*sim.Second), 2),
	})
	sr := fe.Series("m", f)
	if sr.Total() != 10 {
		t.Errorf("aggregate total = %v", sr.Total())
	}
	if sr.ProcHistogram("p0").Total() != 7 || sr.ProcHistogram("p1").Total() != 3 {
		t.Errorf("per-proc totals wrong")
	}
	if got := sr.Procs(); len(got) != 2 || got[0] != "p0" {
		t.Errorf("procs = %v", got)
	}
	if sr.LastSampleTime() != sim.Time(2*sim.Second) {
		t.Errorf("last sample = %v", sr.LastSampleTime())
	}
	// Samples for an unknown series are dropped harmlessly.
	fe.Samples([]daemon.Sample{sample("ghost", f, "p0", 0, 1)})
}

func TestUpdatesBuildHierarchy(t *testing.T) {
	fe := New()
	fe.Update(daemon.Update{Kind: daemon.UpAddResource, Path: "/Machine/node0/p0", Time: 1})
	fe.Update(daemon.Update{Kind: daemon.UpAddResource, Path: "/SyncObject/Window/0-1"})
	fe.Update(daemon.Update{Kind: daemon.UpSetName, Path: "/SyncObject/Window/0-1", Display: "MyWin"})
	fe.Update(daemon.Update{Kind: daemon.UpRetire, Path: "/SyncObject/Window/0-1"})
	fe.Update(daemon.Update{Kind: daemon.UpCallEdge, Caller: "a", Callee: "b"})
	fe.Update(daemon.Update{Kind: daemon.UpCallEdge, Caller: "a", Callee: "c"})
	fe.Update(daemon.Update{Kind: daemon.UpProcessExit, Proc: "p0", Path: "/Machine/node0/p0", Time: 9})

	n := fe.Hierarchy().FindPath("/SyncObject/Window/0-1")
	if n == nil || n.DisplayName() != "MyWin" || !n.Retired() {
		t.Errorf("window node: %+v", n)
	}
	if got := fe.Callees("a"); len(got) != 2 || got[0] != "b" {
		t.Errorf("callees = %v", got)
	}
	if !fe.IsCallee("b") || fe.IsCallee("a") {
		t.Error("callee classification wrong")
	}
	procs := fe.Processes()
	if len(procs) != 1 || !procs[0].Exited || procs[0].Node != "node0" {
		t.Errorf("procs = %+v", procs[0])
	}
	if fe.LiveProcessCount() != 0 || fe.ProcessCount() != 1 {
		t.Error("process counts wrong")
	}
	if !fe.Hierarchy().FindPath("/Machine/node0/p0").Retired() {
		t.Error("exited process should retire its machine node")
	}
}

func TestExportCSV(t *testing.T) {
	fe := New()
	f := resource.WholeProgram()
	fe.RegisterSeries("m", f)
	fe.Samples([]daemon.Sample{
		sample("m", f, "p0", sim.Time(100*sim.Millisecond), 4),
		sample("m", f, "p1", sim.Time(300*sim.Millisecond), 6),
	})
	csv := fe.ExportCSV(fe.Series("m", f))
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "bin_start_s,all,p0,p1" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("csv:\n%s", csv)
	}
	if !strings.HasPrefix(lines[1], "0.000,4,4,0") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0.200,6,0,6") {
		t.Errorf("row 2 = %q", lines[2])
	}
}
