package frontend

// Daemon liveness and degraded-coverage accounting. When a fault plan is
// active, daemons stamp every report with their identity and emit periodic
// heartbeats; the front end's liveness monitor (scheduled on the simulation
// engine, so detection is deterministic virtual time) marks daemons that go
// silent as stale and their processes as lost. Queries over this state give
// the Performance Consultant its coverage fraction, so diagnoses computed
// from partial data say so instead of hanging or lying.

import (
	"fmt"
	"sort"
	"strings"

	"pperf/internal/sim"
)

// DaemonHealth is the front end's liveness view of one daemon.
type DaemonHealth struct {
	Name     string
	Node     string // node the daemon serves ("" if not derivable)
	LastSeen sim.Time
	// Stale marks a daemon that has missed enough heartbeats to be presumed
	// crashed or hung. A later report from it clears the mark (recovery).
	Stale bool
}

// daemonNode derives the node name from the daemon identity convention
// ("paradynd@<node>").
func daemonNode(name string) string {
	if i := strings.IndexByte(name, '@'); i >= 0 {
		return name[i+1:]
	}
	return ""
}

// noteDaemonLocked records contact with a daemon; a stale daemon that
// reports again recovers, and its un-exited processes stop being lost.
// Caller holds fe.mu.
func (fe *FrontEnd) noteDaemonLocked(name string, t sim.Time) {
	if fe.liveness == nil {
		fe.liveness = map[string]*DaemonHealth{}
	}
	dh, ok := fe.liveness[name]
	if !ok {
		dh = &DaemonHealth{Name: name, Node: daemonNode(name)}
		fe.liveness[name] = dh
	}
	if t > dh.LastSeen {
		dh.LastSeen = t
	}
	if dh.Stale {
		dh.Stale = false
		// Recovery: data flows again for this daemon's processes.
		for _, p := range fe.procs {
			if p.Node == dh.Node && p.Lost && !p.Exited {
				p.Lost = false
				p.LostTime = 0
				if n := fe.hier.FindPath("/Machine/" + p.Node + "/" + p.Name); n != nil {
					n.Unretire()
				}
			}
		}
	}
}

// markProcLostLocked marks one process lost and retires its hierarchy node.
// Caller holds fe.mu.
func (fe *FrontEnd) markProcLostLocked(proc, path string, t sim.Time) {
	if p, ok := fe.procs[proc]; ok && !p.Exited && !p.Lost {
		p.Lost = true
		p.LostTime = t
	}
	if path != "" {
		if n := fe.hier.FindPath(path); n != nil {
			n.Retire()
		}
	}
}

// StartLiveness arms the periodic liveness monitor: every interval of
// virtual time it checks each known daemon's last contact, and one that has
// been silent longer than timeout is marked stale with all its un-exited
// processes lost. Daemons registered with AddDaemon are pre-seeded so a
// daemon that dies before its first report is still detected.
func (fe *FrontEnd) StartLiveness(eng interface {
	After(d sim.Duration, fn func())
	Now() sim.Time
}, interval, timeout sim.Duration) {
	fe.mu.Lock()
	now := eng.Now()
	for _, d := range fe.daemons {
		fe.noteDaemonLocked(d.Name(), now)
	}
	fe.mu.Unlock()
	var tick func()
	tick = func() {
		fe.checkLiveness(eng.Now(), timeout)
		eng.After(interval, tick)
	}
	eng.After(interval, tick)
}

// checkLiveness marks daemons silent for longer than timeout as stale and
// their processes as lost.
func (fe *FrontEnd) checkLiveness(now sim.Time, timeout sim.Duration) {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	for _, dh := range fe.liveness {
		if dh.Stale || now.Sub(dh.LastSeen) <= timeout {
			continue
		}
		dh.Stale = true
		for _, p := range fe.procs {
			if p.Node == dh.Node && !p.Exited && !p.Lost {
				p.Lost = true
				p.LostTime = now
				if n := fe.hier.FindPath("/Machine/" + p.Node + "/" + p.Name); n != nil {
					n.Retire()
				}
			}
		}
	}
}

// DaemonHealths returns the liveness view sorted by daemon name (empty when
// liveness tracking never engaged).
func (fe *FrontEnd) DaemonHealths() []DaemonHealth {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	out := make([]DaemonHealth, 0, len(fe.liveness))
	for _, dh := range fe.liveness {
		out = append(out, *dh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LostProcessCount returns how many processes are currently marked lost.
func (fe *FrontEnd) LostProcessCount() int {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	n := 0
	for _, p := range fe.procs {
		if p.Lost {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of known processes whose data is trustworthy
// (not lost): 1.0 for a healthy run, < 1.0 when node crashes or daemon
// failures left ranks unobserved. With no processes known it reports 1.0.
func (fe *FrontEnd) Coverage() float64 {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if len(fe.procs) == 0 {
		return 1.0
	}
	lost := 0
	for _, p := range fe.procs {
		if p.Lost {
			lost++
		}
	}
	return 1.0 - float64(lost)/float64(len(fe.procs))
}

// DegradationSummary describes data-coverage damage for reports: which
// processes are lost and the resulting coverage fraction. Empty string when
// coverage is full.
func (fe *FrontEnd) DegradationSummary() string {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	var lost []string
	for _, p := range fe.procs {
		if p.Lost {
			lost = append(lost, fmt.Sprintf("%s@%s (stale since %v)", p.Name, p.Node, p.LostTime))
		}
	}
	if len(lost) == 0 {
		return ""
	}
	sort.Strings(lost)
	cov := 1.0 - float64(len(lost))/float64(len(fe.procs))
	return fmt.Sprintf("coverage %.2f: %d of %d processes lost — %s",
		cov, len(lost), len(fe.procs), strings.Join(lost, ", "))
}
