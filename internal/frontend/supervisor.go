package frontend

// The daemon supervisor: the self-healing half of the resilience stack.
// Detection stays where it always was — the liveness monitor (heartbeat
// silence) and the fault injector (a restartable crash-daemon fault) both
// report a down daemon to NoteDown. The supervisor then runs the classic
// supervised-restart loop, all in virtual time so faulted runs stay
// exactly reproducible:
//
//	detect → backoff (seeded exponential) → respawn a new incarnation →
//	re-attach to the node's still-running processes → resynchronize state
//	(replay the active metric-focus set, restart heartbeats, fresh bulk
//	channel) → account the outage as an unmeasured gap.
//
// Bounded attempts (MaxRestarts) and a flap-quarantine (too many failures
// inside a sliding window) guarantee termination: a node that exhausts its
// budget falls back to the pre-supervisor permanent-loss semantics the
// liveness monitor already implements.

import (
	"sync"

	"pperf/internal/daemon"
	"pperf/internal/datasource"
	"pperf/internal/sim"
	"pperf/internal/wire"
)

// SupervisorConfig tunes the restart policy.
type SupervisorConfig struct {
	// MaxRestarts bounds respawn attempts per node (the plan's restarts=K).
	MaxRestarts int
	// BaseBackoff/MaxBackoff bound the exponential delay before each
	// respawn attempt (virtual time).
	BaseBackoff sim.Duration
	MaxBackoff  sim.Duration
	// Seed drives the backoff jitter RNG; equal seeds give identical
	// schedules.
	Seed uint64
	// FlapWindow/FlapMax implement the flap-quarantine: FlapMax failures
	// within FlapWindow quarantine the node (give up, permanent loss).
	// FlapMax 0 disables quarantine.
	FlapWindow sim.Duration
	FlapMax    int
}

// DefaultSupervisorConfig returns the policy a plan's restarts=K arms:
// quick first retry, bounded growth, quarantine after maxRestarts+2 rapid
// failures (so quarantine only triggers on pathological flapping, not on a
// plan that legitimately uses its whole restart budget).
func DefaultSupervisorConfig(maxRestarts int, seed uint64) SupervisorConfig {
	return SupervisorConfig{
		MaxRestarts: maxRestarts,
		BaseBackoff: 50 * sim.Millisecond,
		MaxBackoff:  sim.Second,
		Seed:        seed,
		FlapWindow:  5 * sim.Second,
		FlapMax:     maxRestarts + 2,
	}
}

// RespawnFunc builds, attaches and returns a new daemon incarnation for a
// node: the session layer implements it (crash the previous incarnation,
// dial a fresh transport stamped with the incarnation number, adopt the
// node's still-running processes, re-arm tracing). It must NOT start the
// daemon — the supervisor starts it only after resynchronization succeeds.
type RespawnFunc func(node string, incarnation int) (*daemon.Daemon, error)

// svEngine is the slice of the simulation engine the supervisor needs.
type svEngine interface {
	After(d sim.Duration, fn func())
	Now() sim.Time
}

// Supervisor owns the per-node restart state machine.
type Supervisor struct {
	fe      *FrontEnd
	eng     svEngine
	cfg     SupervisorConfig
	respawn RespawnFunc
	rng     *sim.RNG
	// notef, when non-nil, lands supervisor decisions in the fault
	// injector's audit log (the same trail the faults appear in).
	notef func(now sim.Time, format string, args ...any)

	mu    sync.Mutex
	nodes map[string]*nodeState
}

// nodeState is one node's restart ledger.
type nodeState struct {
	incarnation int  // current daemon incarnation (1 = original)
	restarts    int  // respawn attempts consumed
	pending     bool // a backoff/respawn is in flight
	quarantined bool // flap-quarantine tripped: permanent loss
	exhausted   bool // restart budget spent: permanent loss
	abandoned   bool // unrestartable failure (kill-node, bare crash-daemon)
	// down latches across failed respawn attempts so downSince keeps the
	// FIRST detection time: the eventual gap covers the whole outage, not
	// just the tail after the last retry.
	down      bool
	downSince sim.Time
	failures  []sim.Time // failure times inside the flap window
}

// NewSupervisor arms a supervisor on the front end. notef may be nil.
func NewSupervisor(fe *FrontEnd, eng svEngine, cfg SupervisorConfig, respawn RespawnFunc,
	notef func(now sim.Time, format string, args ...any)) *Supervisor {
	sv := &Supervisor{
		fe: fe, eng: eng, cfg: cfg, respawn: respawn,
		rng:   sim.NewRNG(cfg.Seed ^ 0x73757076), // "supv": own jitter stream
		notef: notef,
		nodes: map[string]*nodeState{},
	}
	fe.sv = sv
	return sv
}

// Supervisor returns the attached supervisor (nil when none is armed).
func (fe *FrontEnd) Supervisor() *Supervisor { return fe.sv }

func (sv *Supervisor) note(format string, args ...any) {
	if sv.notef != nil {
		sv.notef(sv.eng.Now(), format, args...)
	}
}

func (sv *Supervisor) state(node string) *nodeState {
	s, ok := sv.nodes[node]
	if !ok {
		s = &nodeState{incarnation: 1}
		sv.nodes[node] = s
	}
	return s
}

// MarkUnrestartable excludes a node from supervision: its failure mode
// (node kill, non-restartable daemon crash) is permanent by definition.
func (sv *Supervisor) MarkUnrestartable(node string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.state(node).abandoned = true
}

// Restarts returns how many respawn attempts the node has consumed.
func (sv *Supervisor) Restarts(node string) int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.state(node).restarts
}

// Quarantined reports whether the node tripped the flap-quarantine.
func (sv *Supervisor) Quarantined(node string) bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.state(node).quarantined
}

// Incarnation returns the node's current daemon incarnation number.
func (sv *Supervisor) Incarnation(node string) int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.state(node).incarnation
}

// NoteDown reports that a node's daemon is down. Both detection paths call
// it: the liveness monitor on heartbeat silence, and the session layer
// directly when a restartable crash-daemon fault fires (which also covers
// hb=0 plans, where heartbeat silence can never be observed). Duplicate
// verdicts while a respawn is already in flight are absorbed.
func (sv *Supervisor) NoteDown(node string) {
	sv.mu.Lock()
	s := sv.state(node)
	if s.pending || s.quarantined || s.exhausted || s.abandoned {
		sv.mu.Unlock()
		return
	}
	now := sv.eng.Now()

	// Flap-quarantine: count failures inside the sliding window.
	if sv.cfg.FlapMax > 0 {
		kept := s.failures[:0]
		for _, t := range s.failures {
			if now.Sub(t) <= sv.cfg.FlapWindow {
				kept = append(kept, t)
			}
		}
		s.failures = append(kept, now)
		if len(s.failures) >= sv.cfg.FlapMax {
			s.quarantined = true
			sv.mu.Unlock()
			sv.note("supervisor: quarantine %s (%d failures within %v); giving up", node, len(s.failures), sv.cfg.FlapWindow)
			return
		}
	}

	if s.restarts >= sv.cfg.MaxRestarts {
		s.exhausted = true
		sv.mu.Unlock()
		sv.note("supervisor: restart budget exhausted for %s (%d used); giving up", node, s.restarts)
		return
	}

	s.pending = true
	if !s.down {
		s.down = true
		s.downSince = now
	}
	attempt := s.restarts
	s.restarts++
	// Bounded exponential delay with seeded jitter, over virtual time — the
	// same wire-plane schedule the transports use over wall-clock time, so
	// respawn timing under simulated faults is exactly reproducible.
	delay := wire.Backoff(sv.cfg.BaseBackoff, sv.cfg.MaxBackoff, attempt, sv.rng)
	sv.mu.Unlock()

	sv.note("supervisor: daemon on %s down; respawn attempt %d in %v", node, attempt+1, delay)
	sv.eng.After(delay, func() { sv.doRespawn(node) })
}

// doRespawn runs one respawn + re-attach + resynchronize cycle. Any
// failure — the respawn itself, or the daemon dying mid-resync — re-enters
// NoteDown, which either schedules the next backoff or gives up. The
// failed incarnation is crashed and discarded; the next cycle builds a
// brand-new daemon object, so state (enables, queues) is never applied
// twice to the same incarnation.
func (sv *Supervisor) doRespawn(node string) {
	sv.mu.Lock()
	s := sv.state(node)
	s.incarnation++
	inc := s.incarnation
	downSince := s.downSince
	sv.mu.Unlock()

	now := sv.eng.Now()
	d, err := sv.respawn(node, inc)
	if err != nil {
		sv.note("supervisor: respawn of %s (incarnation %d) failed: %v", node, inc, err)
		sv.clearPending(node)
		sv.NoteDown(node)
		return
	}

	sv.fe.ReplaceDaemon(d)
	if err := sv.fe.resyncDaemon(d); err != nil {
		// The daemon died (or refused an enable) during the
		// resynchronization protocol: treat the whole respawn as failed.
		d.Crash()
		sv.note("supervisor: resync of %s (incarnation %d) failed: %v", node, inc, err)
		sv.clearPending(node)
		sv.NoteDown(node)
		return
	}
	d.Start()

	// The outage window [downSince, now] is unmeasured: samples for it
	// were never collected, and histogram zeros across it must not be
	// mistaken for idleness.
	sv.fe.recordGap(datasource.Gap{Node: node, From: downSince, To: now})
	sv.mu.Lock()
	s = sv.state(node)
	s.down = false
	sv.mu.Unlock()
	sv.clearPending(node)
	sv.note("supervisor: respawned daemon on %s (incarnation %d) after %v outage", node, inc, now.Sub(downSince))
}

func (sv *Supervisor) clearPending(node string) {
	sv.mu.Lock()
	sv.state(node).pending = false
	sv.mu.Unlock()
}
