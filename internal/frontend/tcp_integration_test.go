package frontend_test

// Integration: a full tool session over the real TCP transport, with and
// without injected transport failures. The retry/reconnect/dedupe machinery
// must make the faulted run's collected data identical to the clean run's.

import (
	"testing"

	"pperf/internal/core"
	"pperf/internal/faults"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

func pingProgram(r *mpi.Rank, _ []string) {
	c := r.World()
	for i := 0; i < 40; i++ {
		if r.Rank() == 0 {
			r.Compute(sim.Millisecond)
			c.Send(r, nil, 1024, mpi.Byte, 1, 0)
		} else {
			c.Recv(r, nil, 1024, mpi.Byte, 0, 0)
		}
	}
}

func runOverTCP(t *testing.T, plan *faults.Plan) float64 {
	t.Helper()
	s, err := core.NewSession(core.Options{
		Impl:        mpi.LAM,
		Nodes:       2,
		CPUsPerNode: 1,
		UseTCP:      true,
		Faults:      plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register("ping", pingProgram)
	sr := s.MustEnable("msg_bytes_sent", resource.WholeProgram())
	if err := s.Launch("ping", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return sr.Total()
}

func TestTCPSessionSurvivesTransportDrops(t *testing.T) {
	clean := runOverTCP(t, nil)
	if clean == 0 {
		t.Fatal("clean run collected no data")
	}
	plan, err := faults.Parse("t=5ms drop-transport node0 n=3; t=10ms drop-transport node1 n=2")
	if err != nil {
		t.Fatal(err)
	}
	faulted := runOverTCP(t, plan)
	if faulted != clean {
		t.Errorf("faulted run total = %v, clean = %v — transport drops lost data", faulted, clean)
	}
}
