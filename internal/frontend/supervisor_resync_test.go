package frontend_test

// Supervisor unit test for the hardest path: the respawned daemon dies
// during the state-resynchronization protocol. The supervisor must treat
// the attempt as failed, re-enter backoff, and resynchronize a BRAND-NEW
// incarnation — never re-enabling onto the dead one (the double-enable
// hazard) and never losing the outage's starting point for the gap.

import (
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/daemon"
	"pperf/internal/frontend"
	"pperf/internal/mdl"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

func TestSupervisorRetriesAfterResyncFailure(t *testing.T) {
	eng := sim.NewEngine(11)
	spec := cluster.DefaultSpec(2, 1)
	w := mpi.NewWorld(eng, spec, mpi.NewImpl(mpi.LAM))
	fe := frontend.New()
	lib := mdl.StdLib()
	var ds []*daemon.Daemon
	for node := range spec.Nodes {
		d := daemon.New(eng, node, spec.Nodes[node].Name, lib, fe, daemon.DefaultConfig())
		ds = append(ds, d)
		fe.AddDaemon(d)
	}
	daemon.AttachAll(w, ds)
	w.Register("busy", func(r *mpi.Rank, _ []string) {
		r.Compute(2 * sim.Second)
	})
	if _, err := w.LaunchN("busy", 2, nil); err != nil {
		t.Fatal(err)
	}
	focus := resource.WholeProgram()
	if _, err := fe.EnableMetric("msgs_sent", focus); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		d.Start()
	}

	// Respawn script: the first incarnation comes back already dead (resync
	// must fail), the second is healthy.
	node1 := spec.Nodes[1].Name
	var spawned []*daemon.Daemon
	respawn := func(node string, incarnation int) (*daemon.Daemon, error) {
		d := daemon.New(eng, 1, node, lib, fe, daemon.DefaultConfig())
		d.SetIncarnation(incarnation)
		if len(spawned) == 0 {
			d.Crash()
		}
		spawned = append(spawned, d)
		return d, nil
	}
	sv := frontend.NewSupervisor(fe, eng, frontend.DefaultSupervisorConfig(2, 7), respawn, nil)

	crashAt := sim.Time(100 * sim.Millisecond)
	eng.After(100*sim.Millisecond, func() {
		ds[1].Crash()
		sv.NoteDown(node1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if len(spawned) != 2 {
		t.Fatalf("respawn attempts = %d, want 2", len(spawned))
	}
	if got := sv.Restarts(node1); got != 2 {
		t.Errorf("restarts = %d, want 2", got)
	}
	if got := sv.Incarnation(node1); got != 3 {
		t.Errorf("incarnation = %d, want 3", got)
	}
	if sv.Quarantined(node1) {
		t.Error("node quarantined after a successful recovery")
	}
	// The dead incarnation was never enabled onto; the healthy one got the
	// active set exactly once.
	if got := spawned[0].EnabledCount(); got != 0 {
		t.Errorf("dead incarnation holds %d enables, want 0", got)
	}
	if got := spawned[1].EnabledCount(); got != 1 {
		t.Errorf("healthy incarnation holds %d enables, want 1 (double-enable?)", got)
	}
	// One gap, spanning the WHOLE outage: From is the first detection, not
	// the last retry.
	gaps := fe.UnmeasuredGaps()
	if len(gaps) != 1 {
		t.Fatalf("gaps = %+v, want exactly 1", gaps)
	}
	if gaps[0].Node != node1 || gaps[0].From != crashAt || gaps[0].To <= gaps[0].From {
		t.Errorf("gap = %+v, want Node %s, From %v, To after From", gaps[0], node1, crashAt)
	}
}
