package resource

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHasStandardStructure(t *testing.T) {
	h := New()
	for _, path := range []string{"/Code", "/Machine", "/SyncObject",
		"/SyncObject/Message", "/SyncObject/Barrier", "/SyncObject/Window"} {
		if h.FindPath(path) == nil {
			t.Errorf("standard resource %s missing", path)
		}
	}
}

func TestAddAndFind(t *testing.T) {
	h := New()
	n := h.Add(SyncObject, Window, "3-1")
	if n.Path() != "/SyncObject/Window/3-1" {
		t.Errorf("path = %q", n.Path())
	}
	if h.FindPath("/SyncObject/Window/3-1") != n {
		t.Error("FindPath did not return the added node")
	}
	// Adding again returns the same node.
	if h.Add(SyncObject, Window, "3-1") != n {
		t.Error("Add should be idempotent")
	}
}

func TestAddPathCreatesIntermediates(t *testing.T) {
	h := New()
	h.AddPath("/Code/app.c/bottleneckProcedure")
	if h.FindPath("/Code/app.c") == nil {
		t.Error("intermediate module node missing")
	}
	if got := h.FindPath("/Code/app.c/bottleneckProcedure").Parent().Name(); got != "app.c" {
		t.Errorf("parent = %q", got)
	}
}

func TestRetireAndActiveChildren(t *testing.T) {
	h := New()
	a := h.Add(SyncObject, Window, "0-1")
	h.Add(SyncObject, Window, "0-2")
	a.Retire()
	if !a.Retired() {
		t.Error("a should be retired")
	}
	win := h.Find(SyncObject, Window)
	if len(win.Children()) != 2 {
		t.Errorf("children = %d, want 2 (retired stays in tree)", len(win.Children()))
	}
	active := win.ActiveChildren()
	if len(active) != 1 || active[0].Name() != "0-2" {
		t.Errorf("active = %v", active)
	}
}

func TestDisplayNames(t *testing.T) {
	h := New()
	n := h.Add(SyncObject, Window, "1-4")
	if n.DisplayName() != "1-4" {
		t.Errorf("default display = %q", n.DisplayName())
	}
	n.SetDisplayName("ParentChildWin")
	if n.DisplayName() != "ParentChildWin" {
		t.Errorf("display = %q", n.DisplayName())
	}
	r := h.Render()
	if !strings.Contains(r, "ParentChildWin [1-4]") {
		t.Errorf("render should show friendly name with id:\n%s", r)
	}
}

func TestRenderMarksRetired(t *testing.T) {
	h := New()
	n := h.Add(SyncObject, Window, "2-9")
	n.Retire()
	if !strings.Contains(h.Render(), "2-9 (retired)") {
		t.Errorf("render missing retired annotation:\n%s", h.Render())
	}
}

func TestCount(t *testing.T) {
	h := New()
	base := h.Count(true) // 6 standard nodes
	h.Add(Code, "app.c", "main")
	if h.Count(true) != base+2 {
		t.Errorf("count = %d, want %d", h.Count(true), base+2)
	}
	h.FindPath("/Code/app.c/main").Retire()
	if h.Count(false) != base+1 {
		t.Errorf("active count = %d, want %d", h.Count(false), base+1)
	}
}

func TestWalkOrder(t *testing.T) {
	h := New()
	h.Add(Machine, "node0", "p0")
	h.Add(Machine, "node0", "p1")
	var seen []string
	h.Find(Machine).Walk(func(n *Node) { seen = append(seen, n.Name()) })
	want := "Machine,node0,p0,p1"
	if got := strings.Join(seen, ","); got != want {
		t.Errorf("walk = %q, want %q", got, want)
	}
}

func TestFocusWholeProgram(t *testing.T) {
	f := WholeProgram()
	if !f.IsWholeProgram() {
		t.Error("WholeProgram should be whole")
	}
	if f.Label() != "Whole Program" {
		t.Errorf("label = %q", f.Label())
	}
	var zero Focus
	if !zero.IsWholeProgram() {
		t.Error("zero focus should normalize to whole program")
	}
}

func TestFocusRefinement(t *testing.T) {
	f := WholeProgram().
		WithCode("/Code/app.c/Gsend_message").
		WithSync("/SyncObject/Message/comm-1/tag-5")
	if f.IsWholeProgram() {
		t.Error("refined focus should not be whole")
	}
	if f.CodeFunction() != "Gsend_message" || f.CodeModule() != "app.c" {
		t.Errorf("code parts: %q %q", f.CodeFunction(), f.CodeModule())
	}
	sp := f.SyncParts()
	if len(sp) != 3 || sp[0] != "Message" || sp[2] != "tag-5" {
		t.Errorf("sync parts = %v", sp)
	}
	if f.String() != "</Code/app.c/Gsend_message,/Machine,/SyncObject/Message/comm-1/tag-5>" {
		t.Errorf("string = %q", f.String())
	}
}

func TestFocusMachineParts(t *testing.T) {
	f := WholeProgram().WithMachine("/Machine/node2/p5")
	if f.MachineNode() != "node2" || f.MachineProcess() != "p5" {
		t.Errorf("machine parts: %q %q", f.MachineNode(), f.MachineProcess())
	}
	g := WholeProgram().WithMachine("/Machine/node2")
	if g.MachineProcess() != "" {
		t.Error("node-level focus has no process")
	}
}

func TestFocusKeyDistinguishes(t *testing.T) {
	a := WholeProgram().WithCode("/Code/x")
	b := WholeProgram().WithSync("/SyncObject/Barrier")
	if a.Key() == b.Key() {
		t.Error("different foci must have different keys")
	}
	if a.Key() != WholeProgram().WithCode("/Code/x").Key() {
		t.Error("equal foci must share a key")
	}
}

// Property: Path/AddPath round-trip for arbitrary component names.
func TestPropertyPathRoundTrip(t *testing.T) {
	f := func(raw []string) bool {
		comps := make([]string, 0, len(raw))
		for _, c := range raw {
			c = strings.Map(func(r rune) rune {
				if r == '/' || r == 0 {
					return -1
				}
				return r
			}, c)
			if c != "" {
				comps = append(comps, c)
			}
			if len(comps) == 4 {
				break
			}
		}
		if len(comps) == 0 {
			return true
		}
		h := New()
		n := h.Add(comps...)
		return h.FindPath(n.Path()) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
