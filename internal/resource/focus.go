package resource

import (
	"fmt"
	"strings"
)

// Focus selects what part of the program a metric measures: one resource
// path per top-level hierarchy, as in Paradyn's metric-focus pairs. The
// whole-program focus selects the root of every hierarchy.
type Focus struct {
	// CodePath selects a module or function, e.g. "/Code/app.c/Gsend_message".
	CodePath string
	// MachinePath selects a node or process, e.g. "/Machine/node1/p3".
	MachinePath string
	// SyncPath selects a synchronization object, e.g.
	// "/SyncObject/Window/3-1" or "/SyncObject/Message/comm-1/tag-5".
	SyncPath string
}

// WholeProgram returns the unrestricted focus.
func WholeProgram() Focus {
	return Focus{CodePath: "/Code", MachinePath: "/Machine", SyncPath: "/SyncObject"}
}

// normalize fills empty components with the hierarchy roots.
func (f Focus) normalize() Focus {
	if f.CodePath == "" {
		f.CodePath = "/Code"
	}
	if f.MachinePath == "" {
		f.MachinePath = "/Machine"
	}
	if f.SyncPath == "" {
		f.SyncPath = "/SyncObject"
	}
	return f
}

// IsWholeProgram reports whether the focus places no restriction.
func (f Focus) IsWholeProgram() bool {
	f = f.normalize()
	return f.CodePath == "/Code" && f.MachinePath == "/Machine" && f.SyncPath == "/SyncObject"
}

// WithCode/WithMachine/WithSync return a copy of the focus refined along one
// hierarchy.
func (f Focus) WithCode(path string) Focus    { f.CodePath = path; return f }
func (f Focus) WithMachine(path string) Focus { f.MachinePath = path; return f }
func (f Focus) WithSync(path string) Focus    { f.SyncPath = path; return f }

// String renders the focus in Paradyn's angle-bracket notation.
func (f Focus) String() string {
	f = f.normalize()
	return fmt.Sprintf("<%s,%s,%s>", f.CodePath, f.MachinePath, f.SyncPath)
}

// Key returns a canonical map key for the focus.
func (f Focus) Key() string {
	f = f.normalize()
	return f.CodePath + "\x00" + f.MachinePath + "\x00" + f.SyncPath
}

// Label renders a short human label: the non-root components only.
func (f Focus) Label() string {
	f = f.normalize()
	var parts []string
	for _, p := range []string{f.CodePath, f.MachinePath, f.SyncPath} {
		if p != "/Code" && p != "/Machine" && p != "/SyncObject" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return "Whole Program"
	}
	return strings.Join(parts, " ")
}

// CodeFunction returns the function name selected by the Code path
// ("/Code/<module>/<function>"), or "" if the focus selects a whole module
// or all code.
func (f Focus) CodeFunction() string {
	comps := splitPath(f.normalize().CodePath)
	if len(comps) == 3 {
		return comps[2]
	}
	return ""
}

// CodeModule returns the module selected by the Code path, or "".
func (f Focus) CodeModule() string {
	comps := splitPath(f.normalize().CodePath)
	if len(comps) >= 2 {
		return comps[1]
	}
	return ""
}

// MachineNode returns the node name selected by the Machine path, or "".
func (f Focus) MachineNode() string {
	comps := splitPath(f.normalize().MachinePath)
	if len(comps) >= 2 {
		return comps[1]
	}
	return ""
}

// MachineProcess returns the process name selected by the Machine path
// ("/Machine/<node>/<process>"), or "".
func (f Focus) MachineProcess() string {
	comps := splitPath(f.normalize().MachinePath)
	if len(comps) == 3 {
		return comps[2]
	}
	return ""
}

// SyncParts returns the components of the SyncObject path after the root:
// e.g. ["Window", "3-1"] or ["Message", "comm-1", "tag-5"].
func (f Focus) SyncParts() []string {
	comps := splitPath(f.normalize().SyncPath)
	if len(comps) <= 1 {
		return nil
	}
	return comps[1:]
}
