// Package resource implements the tool's Resource Hierarchy (§4): the tree
// of measurable program entities rooted at Whole Program, with the Code,
// Machine and SyncObject categories beneath it. Resources are discovered
// dynamically (new processes, communicators, RMA windows), can carry
// user-friendly display names (MPI-2 object naming, §4.2.3), and are retired
// rather than removed when deallocated so that historical data stays
// addressable while the Performance Consultant stops considering them.
package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Standard top-level categories and SyncObject subtypes.
const (
	Code       = "Code"
	Machine    = "Machine"
	SyncObject = "SyncObject"

	Message = "Message" // /SyncObject/Message/<comm>[/<tag>]
	Barrier = "Barrier" // /SyncObject/Barrier
	Window  = "Window"  // /SyncObject/Window/<N-M>
)

// Node is one resource in the hierarchy.
type Node struct {
	name     string // path component, unique among siblings
	display  string // user-friendly name, if set
	parent   *Node
	children []*Node
	byName   map[string]*Node
	retired  bool
}

// Hierarchy is the resource tree. The zero value is not usable; construct
// with New.
type Hierarchy struct {
	root *Node
}

// New returns a hierarchy pre-populated with the standard structure:
// /Code, /Machine, /SyncObject/{Message,Barrier,Window}.
func New() *Hierarchy {
	h := &Hierarchy{root: &Node{name: "", byName: map[string]*Node{}}}
	h.Add(Code)
	h.Add(Machine)
	h.Add(SyncObject, Message)
	h.Add(SyncObject, Barrier)
	h.Add(SyncObject, Window)
	return h
}

// Root returns the Whole Program node.
func (h *Hierarchy) Root() *Node { return h.root }

// Add creates (or returns, if present) the node at the given path of
// components from the root. Intermediate nodes are created as needed.
func (h *Hierarchy) Add(path ...string) *Node {
	n := h.root
	for _, comp := range path {
		child, ok := n.byName[comp]
		if !ok {
			child = &Node{name: comp, parent: n, byName: map[string]*Node{}}
			n.children = append(n.children, child)
			n.byName[comp] = child
		}
		n = child
	}
	return n
}

// AddPath is Add for a slash-separated path string like
// "/SyncObject/Window/3-1".
func (h *Hierarchy) AddPath(path string) *Node {
	return h.Add(splitPath(path)...)
}

// Find returns the node at the given path, or nil.
func (h *Hierarchy) Find(path ...string) *Node {
	n := h.root
	for _, comp := range path {
		n = n.byName[comp]
		if n == nil {
			return nil
		}
	}
	return n
}

// FindPath is Find for a slash-separated path string.
func (h *Hierarchy) FindPath(path string) *Node {
	return h.Find(splitPath(path)...)
}

func splitPath(path string) []string {
	var comps []string
	for _, c := range strings.Split(path, "/") {
		if c != "" {
			comps = append(comps, c)
		}
	}
	return comps
}

// Name returns the node's path component.
func (n *Node) Name() string { return n.name }

// DisplayName returns the user-friendly name if one was set, else the path
// component.
func (n *Node) DisplayName() string {
	if n.display != "" {
		return n.display
	}
	return n.name
}

// SetDisplayName attaches a user-friendly name (MPI object naming).
func (n *Node) SetDisplayName(d string) { n.display = d }

// Parent returns the parent node (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children in creation order.
func (n *Node) Children() []*Node { return append([]*Node(nil), n.children...) }

// ActiveChildren returns the non-retired children.
func (n *Node) ActiveChildren() []*Node {
	var out []*Node
	for _, c := range n.children {
		if !c.retired {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the named child, or nil.
func (n *Node) Child(name string) *Node { return n.byName[name] }

// Path returns the node's full path, e.g. "/SyncObject/Window/3-1". The
// root's path is "/".
func (n *Node) Path() string {
	if n.parent == nil {
		return "/"
	}
	parts := []string{}
	for m := n; m.parent != nil; m = m.parent {
		parts = append(parts, m.name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// Retire marks the node (and, conceptually, the resource it names) as
// deallocated. Retired resources are grayed out in displays and excluded
// from the Performance Consultant's candidate set (§4.2.3).
func (n *Node) Retire() { n.retired = true }

// Retired reports whether the node is retired.
func (n *Node) Retired() bool { return n.retired }

// Unretire reverses Retire — used when a presumed-dead resource recovers
// (e.g. a hung tool daemon resumes reporting).
func (n *Node) Unretire() { n.retired = false }

// Walk visits the subtree rooted at n in depth-first order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.children {
		c.Walk(visit)
	}
}

// Render draws the hierarchy as an indented tree, the textual counterpart of
// the paper's resource-hierarchy screenshots (Fig 23). Retired resources are
// annotated; display names are shown with the underlying id when they
// differ.
func (h *Hierarchy) Render() string {
	var b strings.Builder
	b.WriteString("Whole Program\n")
	var rec func(n *Node, indent string)
	rec = func(n *Node, indent string) {
		kids := n.children
		for i, c := range kids {
			connector, childIndent := "├─ ", indent+"│  "
			if i == len(kids)-1 {
				connector, childIndent = "└─ ", indent+"   "
			}
			label := c.DisplayName()
			if c.display != "" && c.display != c.name {
				label = fmt.Sprintf("%s [%s]", c.display, c.name)
			}
			if c.retired {
				label += " (retired)"
			}
			b.WriteString(indent + connector + label + "\n")
			rec(c, childIndent)
		}
	}
	rec(h.root, "")
	return b.String()
}

// Count returns the number of nodes (excluding the root), optionally
// including retired ones.
func (h *Hierarchy) Count(includeRetired bool) int {
	n := 0
	h.root.Walk(func(m *Node) {
		if m != h.root && (includeRetired || !m.retired) {
			n++
		}
	})
	return n
}

// Sorted returns all paths in the hierarchy, sorted (handy for tests).
func (h *Hierarchy) Sorted() []string {
	var out []string
	h.root.Walk(func(m *Node) {
		if m != h.root {
			out = append(out, m.Path())
		}
	})
	sort.Strings(out)
	return out
}
