package wire

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pperf/internal/sim"
)

// TestBackoffPinnedSchedules pins the exact delay sequences the stacks
// produce, per channel configuration. These literals are the observable
// retry behaviour of the tool as shipped: the TCP control channel draws
// from the unsalted seed, bulk and sync from their salted streams, and the
// supervisor from its own. Any change to the jitter formula, the doubling
// rule, or the cap shows up here as a byte-for-byte schedule change —
// exactly what the byte-identical-output constraint forbids.
func TestBackoffPinnedSchedules(t *testing.T) {
	cases := []struct {
		name string
		base time.Duration
		max  time.Duration
		seed uint64
		ns   []int // doubling counts, in draw order
		want []time.Duration
	}{
		{
			// Control channel, production defaults (DefaultConfig, Seed 1):
			// retry attempts 2..7 of consecutive failing frames.
			name: "ctl-default-seed1",
			base: 5 * time.Millisecond, max: 250 * time.Millisecond, seed: 1,
			ns: []int{0, 1, 2, 3, 4, 5},
			want: []time.Duration{
				2805961, 6617746, 11196105, 24960644, 56046282, 132022146,
			},
		},
		{
			// Bulk channel, production defaults: same seed, salted stream.
			name: "bulk-default-seed1",
			base: 5 * time.Millisecond, max: 250 * time.Millisecond, seed: 1 ^ SaltBulk,
			ns:   []int{0, 1, 2, 3},
			want: []time.Duration{2822155, 6352371, 18763343, 38624296},
		},
		{
			// Sync channel, production defaults under plan seed 1.
			name: "sync-default-seed1",
			base: 5 * time.Millisecond, max: 250 * time.Millisecond, seed: 1 ^ SaltSync,
			ns:   []int{0, 1, 2, 3},
			want: []time.Duration{4637436, 7831395, 16049282, 22444521},
		},
		{
			// The transport tests' tight config (seed 42).
			name: "test-config-seed42",
			base: 100 * time.Microsecond, max: time.Millisecond, seed: 42,
			ns:   []int{0, 1, 2, 3},
			want: []time.Duration{67001, 130996, 316270, 763565},
		},
		{
			// Supervisor respawn policy (0-based attempts: n == attempt).
			name: "supervisor-seed7",
			base: 50 * time.Millisecond, max: time.Second, seed: 7 ^ 0x73757076,
			ns:   []int{0, 1, 2, 3},
			want: []time.Duration{35320246, 55964234, 103340187, 290629406},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(tc.seed)
			for i, n := range tc.ns {
				got := Backoff(tc.base, tc.max, n, rng)
				if got != tc.want[i] {
					t.Errorf("delay[%d] = %v, want %v", i, got, tc.want[i])
				}
			}
		})
	}
}

// TestBackoffJitterBounds checks the schedule's envelope: delay n lies in
// [d/2, d) for d = base doubled n times, capped at max.
func TestBackoffJitterBounds(t *testing.T) {
	rng := sim.NewRNG(99)
	base, max := 4*time.Millisecond, 64*time.Millisecond
	for n := 0; n < 12; n++ {
		d := base
		for i := 0; i < n; i++ {
			d *= 2
			if d >= max {
				d = max
				break
			}
		}
		got := Backoff(base, max, n, rng)
		if got < d/2 || got > d {
			t.Errorf("n=%d: delay %v outside [%v, %v]", n, got, d/2, d)
		}
	}
}

func TestDedupeSemantics(t *testing.T) {
	d := NewDedupe(0)
	// Fresh frames apply in order.
	for seq := uint64(1); seq <= 3; seq++ {
		if d.Seen("d0", ChanBulk, 1, seq) {
			t.Fatalf("fresh frame seq %d treated as seen", seq)
		}
	}
	// Replay after a lost ack is a duplicate.
	if !d.Seen("d0", ChanBulk, 1, 3) {
		t.Error("replayed frame not deduped")
	}
	// Channels number independently.
	if d.Seen("d0", ChanCtl, 1, 1) {
		t.Error("other channel's seq space not independent")
	}
	// A newer incarnation resets the seq space...
	if d.Seen("d0", ChanBulk, 2, 1) {
		t.Error("new incarnation's seq 1 rejected")
	}
	// ...and the dead incarnation's stragglers are fenced out.
	if !d.Seen("d0", ChanBulk, 1, 4) {
		t.Error("stale-incarnation frame applied")
	}
	// Legacy frames (no identity / seq 0) bypass dedupe.
	if d.Seen("", ChanCtl, 0, 5) || d.Seen("d0", ChanCtl, 0, 0) {
		t.Error("legacy frame blocked by dedupe")
	}
	if d.Duplicates() != 1 || d.StaleFrames() != 1 {
		t.Errorf("dups=%d stale=%d, want 1/1", d.Duplicates(), d.StaleFrames())
	}
	bulk := d.ChannelStats(ChanBulk)
	if bulk.Duplicates != 1 || bulk.StaleFrames != 1 {
		t.Errorf("bulk channel stats = %+v, want 1 dup, 1 stale", bulk)
	}
}

// TestDedupeWindowsBounded is the regression test for the unbounded
// listener dedupe map: a receiver fed ever-fresh peer identities (redial
// churn under a chaos plan) must reach a steady-state window count, with
// the most recently active peers still protected.
func TestDedupeWindowsBounded(t *testing.T) {
	const limit = 8
	d := NewDedupe(limit)
	for i := 0; i < 100; i++ {
		peer := "d" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		d.Seen(peer, ChanCtl, 1, 1)
		if got := d.Windows(); got > limit {
			t.Fatalf("window table grew to %d, bound is %d", got, limit)
		}
	}
	if got := d.Windows(); got != limit {
		t.Errorf("steady-state windows = %d, want %d", got, limit)
	}
	// The most recent peer's window survived: its replay still dedupes.
	if !d.Seen("dvd", ChanCtl, 1, 1) {
		t.Error("most recently used window was evicted")
	}
}

// TestLockTableReapsEntries is the regression test for the unbounded
// per-hash upload-lock map: entries must vanish as soon as the last holder
// releases, even under concurrent same-key and fresh-key churn.
func TestLockTableReapsEntries(t *testing.T) {
	lt := NewLockTable()
	var wg sync.WaitGroup
	var counters [5]int // counters[k] is touched only under key k's lock
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 5
				release := lt.Acquire(string(rune('a' + k)))
				counters[k]++
				release()
			}
		}()
	}
	wg.Wait()
	if got := lt.Len(); got != 0 {
		t.Errorf("lock table holds %d entries after all releases, want 0", got)
	}
	total := 0
	for _, n := range counters {
		total += n
	}
	if total != 8*200 {
		t.Errorf("serialized increments = %d, want %d (lost update: lock not exclusive)", total, 8*200)
	}
}

func TestLockTableTracksWaiters(t *testing.T) {
	lt := NewLockTable()
	release := lt.Acquire("k")
	if lt.Len() != 1 {
		t.Fatalf("held key not tracked")
	}
	done := make(chan func(), 1)
	go func() { done <- lt.Acquire("k") }()
	// The waiter blocks until the holder releases; afterwards the entry is
	// reaped only when the waiter releases too.
	release()
	r2 := <-done
	if lt.Len() != 1 {
		t.Errorf("entry reaped while still held by the second acquirer")
	}
	r2()
	if lt.Len() != 0 {
		t.Errorf("entry survives with no holders")
	}
}

func TestInjectionDropsThenDegrade(t *testing.T) {
	in := NewInjection(ChanSync)
	in.SeedBW(1 ^ SaltSync ^ SaltBW)
	in.AddDrops(2)
	for i := 0; i < 2; i++ {
		if err := in.Check(); err == nil {
			t.Fatalf("armed drop %d did not fire", i)
		} else if !strings.Contains(err.Error(), "injected sync fault") {
			t.Fatalf("drop error = %v", err)
		}
	}
	if err := in.Check(); err != nil {
		t.Fatalf("drop budget overran: %v", err)
	}
	if in.Dropped() != 2 || in.Pending() != 0 {
		t.Errorf("dropped=%d pending=%d, want 2/0", in.Dropped(), in.Pending())
	}
	// Degrade-link failures draw from the seeded stream: equal seeds give
	// the identical pass/fail pattern.
	pattern := func(seed uint64) []bool {
		p := NewInjection(ChanSync)
		p.SeedBW(seed)
		p.Degrade(0, 0.5)
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, p.Check() != nil)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different failure pattern at draw %d", i)
		}
	}
}

func TestCountdownMessage(t *testing.T) {
	cd := Countdown(2)
	if err := cd(1); err == nil || err.Error() != "injected transport fault (1 more)" {
		t.Errorf("first countdown error = %v", err)
	}
	if err := cd(2); err == nil || err.Error() != "injected transport fault (0 more)" {
		t.Errorf("second countdown error = %v", err)
	}
	if err := cd(3); err != nil {
		t.Errorf("spent countdown still fails: %v", err)
	}
}

func TestStatsSummary(t *testing.T) {
	s := Stats{Frames: 12, Retries: 3, Duplicates: 1, StaleFrames: 0}
	if got := s.Summary(); got != "frames=12 retries=3 dups=1 stale=0" {
		t.Errorf("summary = %q", got)
	}
	s.Reconnects, s.Failures, s.InjectedDrops, s.ReadTimeouts = 3, 1, 2, 1
	want := "frames=12 retries=3 dups=1 stale=0 reconnects=3 failures=1 injected=2 read-timeouts=1"
	if got := s.Summary(); got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
}
