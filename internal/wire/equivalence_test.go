package wire_test

// Cross-stack equivalence: one fault plan, three stacks. The report
// transport's control and bulk channels and the PerfDB sync client used to
// carry three private retry/injection implementations; they now all ride
// internal/wire, so the same drop-transport budget must produce the
// identical resilience accounting — same retries, same injected-drop count,
// same backoff-schedule length, no failures — on every channel, reported
// through the one shared wire.Stats block.

import (
	"testing"
	"time"

	"pperf/internal/daemon"
	"pperf/internal/faults"
	"pperf/internal/frontend"
	"pperf/internal/perfdb"
	"pperf/internal/trace"
	"pperf/internal/wire"
)

const equivalencePlan = "seed=42; " +
	"t=0s drop-transport node0 n=2; " +
	"t=0s drop-transport node0 n=2 chan=bulk; " +
	"t=0s drop-transport node0 n=2 chan=sync"

func TestCrossStackFaultPlanEquivalence(t *testing.T) {
	plan, err := faults.Parse(equivalencePlan)
	if err != nil {
		t.Fatal(err)
	}

	// ctl + bulk: a TCP report transport armed from the plan's clauses,
	// the same translation the live session applies.
	fe := frontend.New()
	l, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg := frontend.RetryConfig{
		MsgTimeout:  500 * time.Millisecond,
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Seed:        plan.Seed,
	}
	tr, err := frontend.DialTransportRetry(l.Addr(), "paradynd@node0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, f := range plan.Faults {
		if f.Kind != faults.DropTransport {
			continue
		}
		switch f.Chan {
		case "", faults.ChanCtl:
			tr.InjectFailures(f.N)
		case faults.ChanBulk:
			tr.InjectBulkFailures(f.N)
		case faults.ChanBoth:
			tr.InjectFailures(f.N)
			tr.InjectBulkFailures(f.N)
		}
	}
	if err := tr.Update(daemon.Update{Kind: daemon.UpHeartbeat}); err != nil {
		t.Fatalf("ctl send under plan: %v", err)
	}
	sh := trace.Shard{Proc: "p0", Node: "node0", Spans: []trace.Span{{Name: "compute"}}}
	if err := tr.BulkShard(sh); err != nil {
		t.Fatalf("bulk send under plan: %v", err)
	}

	// sync: the same plan handed to the sync client, which arms its own
	// wire injection point from the chan=sync clause.
	remote, err := perfdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := perfdb.Serve(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	local, err := perfdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scfg := perfdb.SyncConfig{
		MsgTimeout:  500 * time.Millisecond,
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Faults:      plan,
	}
	_, syncStats, err := perfdb.Pull(local, srv.Addr(), "", scfg)
	if err != nil {
		t.Fatalf("sync under plan: %v", err)
	}

	// Every channel consumed its n=2 budget through the shared plane:
	// identical accounting, channel by channel.
	byChan := map[string]wire.Stats{
		wire.ChanCtl:  tr.Stats(),
		wire.ChanBulk: tr.BulkStats(),
		wire.ChanSync: *syncStats,
	}
	for ch, st := range byChan {
		if st.Retries != 2 || st.InjectedDrops != 2 || len(st.Backoffs) != 2 {
			t.Errorf("%s: retries=%d injected=%d backoffs=%d, want 2/2/2",
				ch, st.Retries, st.InjectedDrops, len(st.Backoffs))
		}
		if st.Failures != 0 || st.Duplicates != 0 || st.StaleFrames != 0 {
			t.Errorf("%s: failures=%d dups=%d stale=%d, want all 0",
				ch, st.Failures, st.Duplicates, st.StaleFrames)
		}
		if st.Frames == 0 {
			t.Errorf("%s: no frames delivered despite retry budget", ch)
		}
	}

	// Receiver side: the same replayed frame sequence through each
	// channel's dedupe label yields identical per-channel accounting —
	// one window engine, three labels.
	d := wire.NewDedupe(0)
	for _, ch := range []string{wire.ChanCtl, wire.ChanBulk, wire.ChanSync} {
		d.Seen("peer", ch, 1, 1)
		d.Seen("peer", ch, 1, 2)
		d.Seen("peer", ch, 1, 2) // replay after a lost ack
		d.Seen("peer", ch, 2, 1) // respawned sender
		d.Seen("peer", ch, 1, 3) // dead-incarnation straggler
	}
	want := wire.Stats{Duplicates: 1, StaleFrames: 1}
	for _, ch := range []string{wire.ChanCtl, wire.ChanBulk, wire.ChanSync} {
		got := d.ChannelStats(ch)
		if got.Duplicates != want.Duplicates || got.StaleFrames != want.StaleFrames {
			t.Errorf("%s dedupe stats = %+v, want %+v", ch, got, want)
		}
	}
}
