package wire

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"
	"time"
)

// fuzzFrame mirrors the shape every stack puts on the wire: peer identity,
// channel, seq/incarnation fencing fields, a payload, and its checksum.
type fuzzFrame struct {
	Daemon string
	Chan   string
	Seq    uint64
	Inc    uint64
	Data   []byte
	CRC    uint32
}

// FuzzWireFrame feeds arbitrary byte streams through the server-side frame
// read path (the same ReadFrame every listener runs): garbage, truncations
// and bit flips must surface as decode errors or checksum mismatches —
// never a panic, never a hang past the read deadline.
func FuzzWireFrame(f *testing.F) {
	payload := []byte("span data")
	valid := fuzzFrame{
		Daemon: "paradynd@node0", Chan: ChanBulk, Seq: 3, Inc: 2,
		Data: payload, CRC: Checksum(payload),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&valid); err != nil {
		f.Fatal(err)
	}
	enc := buf.Bytes()
	f.Add(append([]byte(nil), enc...)) // well-formed frame
	f.Add(enc[:len(enc)/2])            // truncated mid-frame
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/3] ^= 0x40 // bit flip in the middle
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd gob length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		go func() {
			client.Write(data)
			client.Close() // sender gone: reader sees EOF, not a hang
		}()
		dec := gob.NewDecoder(server)
		var fr fuzzFrame
		_, err := ReadFrame(server, dec, 2*time.Second, &fr)
		server.Close()
		if err != nil {
			return // rejected cleanly
		}
		// Decoded frames with corrupted payloads must be catchable by the
		// checksum the stacks verify before applying a chunk.
		if Checksum(fr.Data) != fr.CRC {
			return
		}
	})
}
