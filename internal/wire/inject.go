package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pperf/internal/sim"
)

// Injection is the wire plane's single fault-injection point: every
// channel (ctl, bulk, sync — in-process or TCP) consults one of these
// before an attempt, and the fault plan's drop-transport / degrade-link
// clauses arm it (see faults.Plan.ArmWire). Three independent copies of
// this state machine used to live in the transport, the bulk channel and
// the sync client.
type Injection struct {
	Chan string // channel label for error messages ("ctl", "bulk", "sync")

	mu      sync.Mutex
	drops   int           // remaining injected frame failures
	lat     time.Duration // per-frame degrade delay
	bwFail  float64       // per-frame failure probability (1 - bandwidth factor)
	bwRNG   *sim.RNG      // degrade-link failure draw (independent of retry jitter)
	dropped int64         // attempts failed so far
}

// NewInjection returns an idle injection point for the named channel.
func NewInjection(ch string) *Injection { return &Injection{Chan: ch} }

// SeedBW (re)seeds the degrade-link failure draw. Kept separate from the
// retry jitter stream so injected failures never perturb retry schedules.
func (in *Injection) SeedBW(seed uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.bwRNG = sim.NewRNG(seed)
}

// AddDrops arms n more frame failures (the drop-transport budget).
func (in *Injection) AddDrops(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.drops += n
}

// Degrade arms the degrade-link shaping: lat is slept before every frame,
// and bw < 1 fails each frame with probability 1-bw from the seeded draw.
func (in *Injection) Degrade(lat time.Duration, bw float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if lat > 0 {
		in.lat = lat
	}
	if bw > 0 && bw < 1 {
		in.bwFail = 1 - bw
	}
}

// Dropped returns how many attempts the injection point has failed.
func (in *Injection) Dropped() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dropped
}

// Pending returns the remaining drop budget.
func (in *Injection) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drops
}

// Check consults the armed state before one attempt: a non-nil return
// fails the attempt. Drop budgets are consumed first, then the seeded
// degraded-link draw; an attempt that survives both pays the configured
// per-frame latency.
func (in *Injection) Check() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.drops > 0 {
		in.drops--
		in.dropped++
		return fmt.Errorf("injected %s fault (%d more)", in.Chan, in.drops)
	}
	if in.bwFail > 0 && in.bwRNG != nil && float64(in.bwRNG.Uint64()%1000)/1000 < in.bwFail {
		in.dropped++
		return errors.New("injected degraded-link " + in.Chan + " fault")
	}
	if in.lat > 0 {
		time.Sleep(in.lat)
	}
	return nil
}

// Idle reports whether nothing is armed (the zero-cost fast path: callers
// may skip Check entirely).
func (in *Injection) Idle() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drops == 0 && in.bwFail == 0 && in.lat == 0
}
