package wire

import "sync"

// DefaultDedupeWindows bounds how many (peer, channel) dedupe windows a
// receiver keeps. Far above any deployment's live peer count, low enough
// that a listener fed ever-fresh peer identities (a redial storm of renamed
// daemons, a chaos harness) reaches a steady state instead of growing
// without bound.
const DefaultDedupeWindows = 1024

// dedupeWin is one (peer, channel) window: the newest sender incarnation
// seen and that incarnation's per-channel sequence high-water mark.
type dedupeWin struct {
	inc  uint64
	seq  uint64
	used uint64 // logical access tick, for least-recently-used eviction
}

// Dedupe is the receiver half of the wire plane's idempotent delivery: it
// tracks, per (peer, channel), the newest sender incarnation and its
// sequence high-water mark, so a frame replayed after a lost
// acknowledgement is recognized (and skipped) instead of double-applied,
// and a straggler frame from a dead sender incarnation is fenced out. A
// frame from a newer incarnation resets the channel's sequence space: the
// respawned sender numbers its frames from 1 again.
//
// The window table is bounded: beyond limit entries, the least recently
// used window is evicted. Evicting a live peer's window only weakens
// dedupe back to at-least-once for that peer's next frame — every frame
// consumer behind it is idempotent by construction — so a bounded table is
// safe, and a long-lived listener cannot accumulate state forever.
type Dedupe struct {
	mu    sync.Mutex
	limit int
	tick  uint64
	wins  map[string]*dedupeWin

	dups    int64
	stale   int64
	dupsBy  map[string]int64
	staleBy map[string]int64
}

// NewDedupe returns a window table bounded to limit (0 or negative selects
// DefaultDedupeWindows).
func NewDedupe(limit int) *Dedupe {
	if limit <= 0 {
		limit = DefaultDedupeWindows
	}
	return &Dedupe{
		limit:   limit,
		wins:    map[string]*dedupeWin{},
		dupsBy:  map[string]int64{},
		staleBy: map[string]int64{},
	}
}

// Seen reports (and records) whether the frame must be skipped — either a
// replay the receiver already applied, or a straggler from a dead sender
// incarnation. Frames with no peer identity or seq 0 (legacy senders)
// bypass dedupe and always apply.
func (d *Dedupe) Seen(peer, ch string, inc, seq uint64) bool {
	if peer == "" || seq == 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	key := peer + "\x00" + ch
	w := d.wins[key]
	if w == nil {
		d.evictLocked()
		w = &dedupeWin{}
		d.wins[key] = w
	}
	w.used = d.tick
	switch {
	case inc < w.inc:
		d.stale++
		d.staleBy[chanName(ch)]++
		return true
	case inc > w.inc:
		w.inc = inc
		w.seq = 0
	}
	if seq <= w.seq {
		d.dups++
		d.dupsBy[chanName(ch)]++
		return true
	}
	w.seq = seq
	return false
}

// evictLocked drops the least recently used window when the table is full.
// Eviction is rare (only at the bound), so a linear scan is fine.
func (d *Dedupe) evictLocked() {
	if len(d.wins) < d.limit {
		return
	}
	var victim string
	var oldest uint64
	for k, w := range d.wins {
		if victim == "" || w.used < oldest {
			victim, oldest = k, w.used
		}
	}
	delete(d.wins, victim)
}

// Windows returns how many (peer, channel) windows are currently tracked.
func (d *Dedupe) Windows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.wins)
}

// Duplicates returns how many replayed frames were skipped.
func (d *Dedupe) Duplicates() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// StaleFrames returns how many frames were fenced out as dead-incarnation
// stragglers.
func (d *Dedupe) StaleFrames() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stale
}

// ChannelStats returns the receiver-side counters for one channel name
// (ChanCtl, ChanBulk, ChanSync).
func (d *Dedupe) ChannelStats(ch string) Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Duplicates: d.dupsBy[chanName(ch)], StaleFrames: d.staleBy[chanName(ch)]}
}

// chanName normalizes the on-wire channel label ("" for the legacy control
// channel) to its reporting name.
func chanName(ch string) string {
	if ch == "" {
		return ChanCtl
	}
	return ch
}
