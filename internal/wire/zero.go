package wire

import "reflect"

// zero resets *v (v must be a non-nil pointer) to its zero value. Exchange
// uses it before every decode attempt: gob omits zero-valued fields, so
// decoding a retried reply into a struct still holding the previous
// attempt's fields would silently merge stale state.
func zero(v any) {
	if v == nil {
		return
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return
	}
	rv.Elem().Set(reflect.Zero(rv.Elem().Type()))
}
