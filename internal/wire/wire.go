// Package wire is the shared reliability plane under every byte stream the
// tool moves between machines: daemon→front-end control samples, bulk trace
// shards, and PerfDB store-sync transfers. The three stacks used to carry
// three independent copies of the same discipline; they now all ride this
// one implementation of it:
//
//   - framed gob streams with a per-connection sequence space, so a
//     receiver can recognize replays after a lost acknowledgement;
//   - incarnation fencing, so frames from a dead sender incarnation are
//     acknowledged (unblocking the straggler) but never applied;
//   - per-chunk CRC32-IEEE payload checksums (Checksum), the same
//     integrity check the PPDBA1 archive format uses on disk;
//   - bounded exponential retry with seeded jitter (Backoff) and a full
//     redial between attempts — a gob stream is stateful, so a failed
//     connection is always replaced, never resumed;
//   - per-(peer,channel) dedupe windows on the receiving side (Dedupe),
//     bounded so a long-lived listener cannot accumulate state forever;
//   - deterministic fault injection (Injection) keyed by the same plan
//     language every channel shares (chan=ctl|bulk|sync);
//   - one uniform Stats block (frames, retries, reconnects, duplicates,
//     stale-incarnation drops, read timeouts, injected drops) so every
//     channel reports resilience activity the same way.
//
// The package deliberately knows nothing about what the frames mean: frame
// types stay with their stacks (frontend's wireMsg, perfdb's syncReq), and
// wire moves them reliably.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"time"

	"pperf/internal/sim"
)

// Channel name constants shared across the planes. Ctl is the empty string
// on the wire (legacy frames), but reported as "ctl" in summaries.
const (
	ChanCtl  = "ctl"
	ChanBulk = "bulk"
	ChanSync = "sync"
)

// Seed salts deriving each channel's jitter stream from one configured
// seed, keeping the channels' schedules independent yet each deterministic.
// The control channel uses the seed unsalted (its historical stream).
const (
	SaltBulk = 0x62756c6b // "bulk"
	SaltSync = 0x73796e63 // "sync"
	// SaltBW further derives the degrade-link failure draw from the sync
	// stream so injected frame failures never perturb the retry schedule.
	SaltBW = 0xbead
)

// Checksum is the one payload checksum of the wire plane (and of the PPDBA1
// archive chunk format): CRC32 with the IEEE polynomial.
func Checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Config tunes a Conn's robustness behaviour.
type Config struct {
	// MsgTimeout is the wall-clock deadline for one attempt (encode + reply).
	MsgTimeout time.Duration
	// MaxAttempts bounds tries per frame (first send included). When all
	// fail, Exchange returns an error and the caller's fallback (outbox,
	// CLI error) takes over.
	MaxAttempts int
	// BaseBackoff/MaxBackoff bound the exponential delay between attempts.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter RNG; equal seeds give identical retry
	// schedules (deterministic retries). Channels salt it (SaltBulk,
	// SaltSync) to decorrelate their streams.
	Seed uint64
	// Incarnation is stamped on every frame by senders that participate in
	// incarnation fencing, so a receiver can fence out stragglers from dead
	// sender incarnations. 0 (the default) sends legacy frames with
	// pure-seq dedupe.
	Incarnation uint64
}

// DefaultConfig returns production-shaped retry behaviour.
func DefaultConfig() Config {
	return Config{
		MsgTimeout:  2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Seed:        1,
	}
}

// Stats is the uniform resilience-counter block every channel reports.
// Sender-side Conns fill the send counters; receiver-side Dedupe windows
// and listeners fill the receive counters; summaries merge the two views.
type Stats struct {
	Frames        int64 // frame exchanges acknowledged (sender) or applied (receiver)
	Retries       int64 // attempts beyond the first
	Reconnects    int64 // successful redials
	Failures      int64 // frames given up on after MaxAttempts
	Duplicates    int64 // receiver: replayed frames skipped by dedupe
	StaleFrames   int64 // receiver: frames fenced out as dead-incarnation stragglers
	ReadTimeouts  int64 // receiver: connections dropped by the per-frame read deadline
	InjectedDrops int64 // attempts failed by fault injection
	// Backoffs records every retry delay chosen, in order — the observable
	// surface for determinism tests.
	Backoffs []time.Duration
}

// Add folds o's counters into s (Backoffs are appended in order).
func (s *Stats) Add(o Stats) {
	s.Frames += o.Frames
	s.Retries += o.Retries
	s.Reconnects += o.Reconnects
	s.Failures += o.Failures
	s.Duplicates += o.Duplicates
	s.StaleFrames += o.StaleFrames
	s.ReadTimeouts += o.ReadTimeouts
	s.InjectedDrops += o.InjectedDrops
	s.Backoffs = append(s.Backoffs, o.Backoffs...)
}

// Summary renders the counters as the one-line per-channel form the CLI
// prints: frames/retries/dups/stale first (the headline numbers), then
// whatever else is non-zero.
func (s Stats) Summary() string {
	line := fmt.Sprintf("frames=%d retries=%d dups=%d stale=%d", s.Frames, s.Retries, s.Duplicates, s.StaleFrames)
	if s.Reconnects > 0 {
		line += fmt.Sprintf(" reconnects=%d", s.Reconnects)
	}
	if s.Failures > 0 {
		line += fmt.Sprintf(" failures=%d", s.Failures)
	}
	if s.InjectedDrops > 0 {
		line += fmt.Sprintf(" injected=%d", s.InjectedDrops)
	}
	if s.ReadTimeouts > 0 {
		line += fmt.Sprintf(" read-timeouts=%d", s.ReadTimeouts)
	}
	return line
}

// Backoff computes one retry delay: BaseBackoff doubled n times (n is the
// count of prior retries), capped at MaxBackoff, with seeded jitter drawn
// into [d/2, d). It is the single implementation of the schedule every
// stack used to carry privately (TCP channels, the sync client, and — over
// virtual time — the supervisor's respawn policy); the sequence is a pure
// function of the seed and the failure history, so retries under simulated
// faults are exactly reproducible.
func Backoff(base, max time.Duration, n int, rng *sim.RNG) time.Duration {
	d := base
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 0; i < n; i++ {
		d *= 2
		if max > 0 && d >= max {
			d = max
			break
		}
	}
	half := d / 2
	return half + time.Duration(rng.Uint64()%uint64(half+1))
}

// ErrClosed is returned by sends on a Close()d Conn.
var ErrClosed = errors.New("wire: transport closed")

// Countdown returns a fault hook failing the next n attempts — the
// deterministic injection used by drop-transport faults on the ctl and bulk
// channels. Each failed attempt consumes one count, exercising timeout,
// retry and reconnect exactly as a flaky network would.
func Countdown(n int) func(attempt int) error {
	remaining := n
	return func(int) error {
		if remaining <= 0 {
			return nil
		}
		remaining--
		return fmt.Errorf("injected transport fault (%d more)", remaining)
	}
}

// A Conn is one retrying, reconnecting, acknowledged gob frame channel to a
// peer — its own connection, sequence space, jitter RNG and stats. Both the
// report transport's channels and the sync client are Conns under thin
// frame-specific wrappers.
type Conn struct {
	mu     sync.Mutex
	addr   string
	cfg    Config
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	seq    uint64
	rng    *sim.RNG
	closed bool
	stats  Stats

	// poisonOnFault closes the live connection when an injected fault fails
	// an attempt (the sync client's discipline: the peer never saw the
	// frame, so the codec state is suspect). The report channels leave the
	// connection up — the next retry redials regardless, and a later frame
	// may reuse a still-healthy socket.
	poisonOnFault bool
}

// NewConn builds a channel to addr without dialing; seed is the (already
// salted) jitter seed. Use Dial for the connect-or-fail path, TryDial for
// best-effort lazy channels.
func NewConn(addr string, cfg Config, seed uint64) *Conn {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	return &Conn{addr: addr, cfg: cfg, rng: sim.NewRNG(seed)}
}

// Dial builds the channel and establishes its first connection.
func Dial(addr string, cfg Config, seed uint64) (*Conn, error) {
	c := NewConn(addr, cfg, seed)
	c.mu.Lock()
	err := c.redialLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// TryDial attempts the first connection but keeps the channel usable on
// failure: the first Exchange retries from scratch.
func (c *Conn) TryDial() {
	c.mu.Lock()
	c.redialLocked()
	c.mu.Unlock()
}

// SetPoisonOnFault selects the injected-fault discipline (see the field).
func (c *Conn) SetPoisonOnFault(on bool) { c.poisonOnFault = on }

// Sync runs fn while holding the channel's send lock. It is the
// hook-replacement discipline: a fault hook swapped inside Sync can never
// race an in-flight Exchange reading the hook between attempts.
func (c *Conn) Sync(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn()
}

// Config returns the channel's configuration.
func (c *Conn) Config() Config { return c.cfg }

// Close shuts the channel; subsequent Exchanges fail fast with ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Stats returns a snapshot of the channel's resilience counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Backoffs = append([]time.Duration(nil), c.stats.Backoffs...)
	return s
}

// redialLocked (re)establishes the connection and fresh gob codecs. A gob
// stream is stateful, so any failed connection must be fully replaced.
func (c *Conn) redialLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	timeout := c.cfg.MsgTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// attemptLocked performs one deadline-bounded encode+reply round trip.
func (c *Conn) attemptLocked(req, resp any) error {
	if c.conn == nil {
		return errors.New("no connection")
	}
	if c.cfg.MsgTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.MsgTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	if err := c.dec.Decode(resp); err != nil {
		// A half-closed or dead socket surfaces here as an error (or a
		// deadline timeout) instead of a silent hang.
		return fmt.Errorf("awaiting reply: %w", err)
	}
	return nil
}

// Request describes one frame exchange for Conn.Exchange.
type Request struct {
	// Req is the frame to encode. Stamp is called under the send lock with
	// the frame's assigned sequence number before the first attempt; the
	// caller copies it (and any identity fields) into Req there, so
	// concurrent senders cannot interleave seq assignment and delivery.
	Req   any
	Stamp func(seq uint64)
	// Resp is the pointer the reply is decoded into. It is zeroed before
	// every attempt: gob omits zero fields, so a retried decode into a
	// dirty struct would otherwise merge stale state.
	Resp any
	// Fault, when non-nil, is consulted before each attempt; a non-nil
	// return fails that attempt as an injected transport fault and is
	// counted in Stats.InjectedDrops. It is re-evaluated every attempt so
	// callers can clear their hooks mid-sequence.
	Fault func(attempt int) error
	// Label prefixes the exhaustion error, e.g. "frontend: send" or
	// "perfdb sync: push-chunk".
	Label string
}

// Exchange delivers one frame and decodes its reply, retrying with seeded
// jitter and a full redial between attempts. The retry schedule, stats
// accounting and failure semantics are the single implementation every
// channel shares.
func (c *Conn) Exchange(r Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.seq++
	if r.Stamp != nil {
		r.Stamp(c.seq)
	}

	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.stats.Retries++
			d := Backoff(c.cfg.BaseBackoff, c.cfg.MaxBackoff, attempt-2, c.rng)
			c.stats.Backoffs = append(c.stats.Backoffs, d)
			time.Sleep(d)
			if err := c.redialLocked(); err != nil {
				lastErr = err
				continue
			}
			c.stats.Reconnects++
		}
		if r.Fault != nil {
			if err := r.Fault(attempt); err != nil {
				lastErr = err
				c.stats.InjectedDrops++
				if c.poisonOnFault && c.conn != nil {
					// The peer never saw the frame; force a redial, as a
					// real transport fault would.
					c.conn.Close()
					c.conn = nil
				}
				continue
			}
		}
		zero(r.Resp)
		if err := c.attemptLocked(r.Req, r.Resp); err != nil {
			lastErr = err
			// The gob stream is now poisoned; force a redial next attempt.
			if c.conn != nil {
				c.conn.Close()
				c.conn = nil
			}
			continue
		}
		c.stats.Frames++
		return nil
	}
	c.stats.Failures++
	return fmt.Errorf("%s failed after %d attempts: %w", r.Label, c.cfg.MaxAttempts, lastErr)
}
