package wire

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"time"
)

// DefaultReadTimeout is the per-frame read deadline servers start with —
// generous enough that an idle-but-healthy peer is rarely cut, tight enough
// that a wedged peer cannot hold a handler goroutine forever.
const DefaultReadTimeout = 10 * time.Second

// AcceptLoop accepts connections on ln until it closes, handing each to
// handle on its own goroutine (tracked in wg; the connection is closed when
// handle returns). A transient Accept error (resource exhaustion, aborted
// handshake) is retried with a short linear delay — and reported through
// onTransient when non-nil — instead of silently killing the loop; only a
// closed listener, or persistent failure, ends it. Both the report listener
// and the sync server run this one loop.
func AcceptLoop(ln net.Listener, closed func() bool, onTransient func(), wg *sync.WaitGroup, handle func(net.Conn)) {
	consecutive := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || closed() {
				return
			}
			consecutive++
			if consecutive > 10 {
				return // persistently failing listener; give up
			}
			if onTransient != nil {
				onTransient()
			}
			time.Sleep(time.Duration(consecutive) * time.Millisecond)
			continue
		}
		consecutive = 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			handle(conn)
		}()
	}
}

// ReadFrame decodes one frame from the connection under an optional read
// deadline (0 disables it), clearing the deadline on success. timedOut
// reports whether a decode failure was the deadline expiring — a wedged (or
// merely idle) peer that should be dropped rather than parked on forever; a
// live sender redials on its next frame and the dedupe layer absorbs any
// replays.
func ReadFrame(conn net.Conn, dec *gob.Decoder, timeout time.Duration, frame any) (timedOut bool, err error) {
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout))
	}
	if err := dec.Decode(frame); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return true, err
		}
		return false, err
	}
	if timeout > 0 {
		conn.SetReadDeadline(time.Time{})
	}
	return false, nil
}

// LockTable hands out per-key mutexes (the sync server serializes writers
// of one partial upload by content hash). Entries are reference-counted and
// reaped as soon as the last holder releases, so the table's steady-state
// size is the number of concurrently held keys — a server fed ever-fresh
// hashes by redial churn no longer accumulates a mutex per hash forever.
type LockTable struct {
	mu   sync.Mutex
	ents map[string]*lockEnt
}

type lockEnt struct {
	mu   sync.Mutex
	refs int
}

// NewLockTable returns an empty table.
func NewLockTable() *LockTable { return &LockTable{ents: map[string]*lockEnt{}} }

// Acquire locks the key's mutex, creating it on first use, and returns the
// release that unlocks it (and deletes the entry once no holder or waiter
// remains). The reference is taken before blocking, so a waiter can never
// see its entry reaped underneath it.
func (t *LockTable) Acquire(key string) (release func()) {
	t.mu.Lock()
	e := t.ents[key]
	if e == nil {
		e = &lockEnt{}
		t.ents[key] = e
	}
	e.refs++
	t.mu.Unlock()
	e.mu.Lock()
	return func() {
		e.mu.Unlock()
		t.mu.Lock()
		e.refs--
		if e.refs == 0 {
			delete(t.ents, key)
		}
		t.mu.Unlock()
	}
}

// Len returns how many keys are currently held or awaited.
func (t *LockTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ents)
}

// ValidHash reports whether h is a well-formed lowercase-hex SHA-256
// content address — the validation every wire peer applies before trusting
// a hash in a filename.
func ValidHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for _, r := range h {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
