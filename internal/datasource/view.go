package datasource

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pperf/internal/metric"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// View is the source-agnostic analysis-plane state: metric series, the
// mirrored resource hierarchy, the observed call graph, process lifecycle
// and daemon liveness. The live front end feeds one from daemon reports;
// the replay source feeds one from a recorded archive. Both expose it as
// the query half of the DataSource interface.
type View struct {
	mu      sync.Mutex
	hier    *resource.Hierarchy
	series  map[string]*Series
	edges   map[string]map[string]bool
	callees map[string]bool
	procs   map[string]*ProcInfo

	// liveness is per-daemon last-contact state (nil until a fault plan
	// arms the liveness monitor or a daemon-stamped report arrives).
	liveness map[string]*DaemonHealth

	// gaps are the unmeasured outage windows recorded by the supervisor
	// (nil for runs without recoveries).
	gaps []Gap

	// NumBins/BinWidth configure new histograms (defaults are Paradyn's).
	NumBins  int
	BinWidth sim.Duration
}

// NewView creates an empty view.
func NewView() *View {
	return &View{
		hier:    resource.New(),
		series:  map[string]*Series{},
		edges:   map[string]map[string]bool{},
		callees: map[string]bool{},
		procs:   map[string]*ProcInfo{},
	}
}

// --- series registry --------------------------------------------------------

// Series returns the series for a metric-focus pair, or nil.
func (v *View) Series(metricName string, focus resource.Focus) *Series {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.series[SeriesKey(metricName, focus)]
}

// RegisterSeries returns the pair's series, creating it if needed. The
// second result reports whether the series already existed.
func (v *View) RegisterSeries(metricName string, focus resource.Focus) (*Series, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.series[SeriesKey(metricName, focus)]; ok {
		return s, true
	}
	s := &Series{
		Metric:  metricName,
		Focus:   focus,
		agg:     metric.NewHistogram(v.NumBins, v.BinWidth),
		perProc: map[string]*metric.Histogram{},
	}
	v.series[SeriesKey(metricName, focus)] = s
	return s, false
}

// DropSeries unregisters a pair (the live front end's rollback path for a
// failed all-or-nothing enable).
func (v *View) DropSeries(metricName string, focus resource.Focus) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.series, SeriesKey(metricName, focus))
}

// --- ingest -----------------------------------------------------------------

// ApplySamples folds a batch of sampled deltas into the registered series.
// Samples for unregistered pairs are skipped (disabled while in flight).
func (v *View) ApplySamples(batch []Sample) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, sm := range batch {
		s, ok := v.series[SeriesKey(sm.Metric, sm.Focus)]
		if !ok {
			continue // disabled while in flight
		}
		s.agg.Add(sm.Time, sm.Delta)
		if sm.Time > s.lastT {
			s.lastT = sm.Time
		}
		ph, ok := s.perProc[sm.Proc]
		if !ok {
			ph = metric.NewHistogram(v.NumBins, v.BinWidth)
			s.perProc[sm.Proc] = ph
		}
		ph.Add(sm.Time, sm.Delta)
	}
}

// ApplyUpdate folds one resource-update report into the view.
func (v *View) ApplyUpdate(u Update) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if u.Daemon != "" {
		v.noteDaemonLocked(u.Daemon, u.Time)
	}
	switch u.Kind {
	case UpAddResource:
		n := v.hier.AddPath(u.Path)
		if u.Display != "" {
			n.SetDisplayName(u.Display)
		}
		if strings.HasPrefix(u.Path, "/Machine/") {
			parts := strings.Split(strings.TrimPrefix(u.Path, "/Machine/"), "/")
			if len(parts) == 2 {
				if _, ok := v.procs[parts[1]]; !ok {
					v.procs[parts[1]] = &ProcInfo{Name: parts[1], Node: parts[0], Started: u.Time}
				}
			}
		}
	case UpRetire:
		if n := v.hier.FindPath(u.Path); n != nil {
			n.Retire()
		}
	case UpSetName:
		v.hier.AddPath(u.Path).SetDisplayName(u.Display)
	case UpCallEdge:
		m, ok := v.edges[u.Caller]
		if !ok {
			m = map[string]bool{}
			v.edges[u.Caller] = m
		}
		m[u.Callee] = true
		v.callees[u.Callee] = true
	case UpProcessExit:
		if p, ok := v.procs[u.Proc]; ok {
			p.Exited = true
			p.EndTime = u.Time
		}
		if n := v.hier.FindPath(u.Path); n != nil {
			n.Retire() // exited processes gray out and leave the PC's candidate set
		}
	case UpProcessLost:
		v.markProcLostLocked(u.Proc, u.Path, u.Time)
	case UpHeartbeat:
		// Liveness was recorded above; nothing else to do.
	}
}

// noteDaemonLocked records contact with a daemon; a stale daemon that
// reports again recovers, and its un-exited processes stop being lost.
// Caller holds v.mu.
func (v *View) noteDaemonLocked(name string, t sim.Time) {
	if v.liveness == nil {
		v.liveness = map[string]*DaemonHealth{}
	}
	dh, ok := v.liveness[name]
	if !ok {
		dh = &DaemonHealth{Name: name, Node: DaemonNode(name)}
		v.liveness[name] = dh
	}
	if t > dh.LastSeen {
		dh.LastSeen = t
	}
	if dh.Stale {
		dh.Stale = false
		// Recovery: data flows again for this daemon's processes.
		for _, p := range v.procs {
			if p.Node == dh.Node && p.Lost && !p.Exited {
				p.Lost = false
				p.LostTime = 0
				if n := v.hier.FindPath("/Machine/" + p.Node + "/" + p.Name); n != nil {
					n.Unretire()
				}
			}
		}
	}
}

// markProcLostLocked marks one process lost and retires its hierarchy node.
// Caller holds v.mu.
func (v *View) markProcLostLocked(proc, path string, t sim.Time) {
	if p, ok := v.procs[proc]; ok && !p.Exited && !p.Lost {
		p.Lost = true
		p.LostTime = t
	}
	if path != "" {
		if n := v.hier.FindPath(path); n != nil {
			n.Retire()
		}
	}
}

// SilentDaemons returns, sorted by name, the daemons silent for longer than
// timeout and not already marked stale — the liveness monitor's verdict set
// for one check. Sorted iteration keeps detection order (and anything
// recorded from it) independent of map layout.
func (v *View) SilentDaemons(now sim.Time, timeout sim.Duration) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []string
	for name, dh := range v.liveness {
		if !dh.Stale && now.Sub(dh.LastSeen) > timeout {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// MarkDaemonStale marks one daemon stale: its un-exited processes become
// lost at time now and their hierarchy nodes retire.
func (v *View) MarkDaemonStale(name string, now sim.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	dh := v.liveness[name]
	if dh == nil || dh.Stale {
		return
	}
	dh.Stale = true
	for _, p := range v.procs {
		if p.Node == dh.Node && !p.Exited && !p.Lost {
			p.Lost = true
			p.LostTime = now
			if n := v.hier.FindPath("/Machine/" + p.Node + "/" + p.Name); n != nil {
				n.Retire()
			}
		}
	}
}

// AddGap records one unmeasured outage window: no samples exist for the
// node between From and To, so histogram zeros across it are absence of
// measurement, not absence of activity.
func (v *View) AddGap(g Gap) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gaps = append(v.gaps, g)
}

// UnmeasuredGaps returns the recorded outage windows in record order.
func (v *View) UnmeasuredGaps() []Gap {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]Gap(nil), v.gaps...)
}

// GapOverlaps reports whether any unmeasured gap intersects the half-open
// interval (from, to].
func (v *View) GapOverlaps(from, to sim.Time) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, g := range v.gaps {
		if g.From < to && g.To > from {
			return true
		}
	}
	return false
}

// --- queries ----------------------------------------------------------------

// Hierarchy returns the resource-hierarchy mirror.
func (v *View) Hierarchy() *resource.Hierarchy { return v.hier }

// Callees returns the observed callees of a function, sorted.
func (v *View) Callees(caller string) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []string
	for c := range v.edges[caller] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// IsCallee reports whether the function has been observed as someone's
// callee. Functions that never appear as callees are the program's
// call-graph roots — the entry points of the Performance Consultant's
// code-axis search.
func (v *View) IsCallee(fname string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.callees[fname]
}

// Processes returns known processes sorted by name.
func (v *View) Processes() []*ProcInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*ProcInfo, 0, len(v.procs))
	for _, p := range v.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LiveProcessCount returns the number of processes that have not exited.
func (v *View) LiveProcessCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, p := range v.procs {
		if !p.Exited {
			n++
		}
	}
	return n
}

// ProcessCount returns the number of processes ever seen.
func (v *View) ProcessCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.procs)
}

// DaemonHealths returns the liveness view sorted by daemon name (empty when
// liveness tracking never engaged).
func (v *View) DaemonHealths() []DaemonHealth {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]DaemonHealth, 0, len(v.liveness))
	for _, dh := range v.liveness {
		out = append(out, *dh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LostProcessCount returns how many processes are currently marked lost.
func (v *View) LostProcessCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, p := range v.procs {
		if p.Lost {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of known processes whose data is trustworthy
// (not lost): 1.0 for a healthy run, < 1.0 when node crashes or daemon
// failures left ranks unobserved. With no processes known it reports 1.0.
func (v *View) Coverage() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.procs) == 0 {
		return 1.0
	}
	lost := 0
	for _, p := range v.procs {
		if p.Lost {
			lost++
		}
	}
	return 1.0 - float64(lost)/float64(len(v.procs))
}

// DegradationSummary describes data-coverage damage for reports: which
// processes are lost and the resulting coverage fraction. Empty string when
// coverage is full.
func (v *View) DegradationSummary() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var lost []string
	for _, p := range v.procs {
		if p.Lost {
			lost = append(lost, fmt.Sprintf("%s@%s (stale since %v)", p.Name, p.Node, p.LostTime))
		}
	}
	if len(lost) == 0 {
		return ""
	}
	sort.Strings(lost)
	cov := 1.0 - float64(len(lost))/float64(len(v.procs))
	return fmt.Sprintf("coverage %.2f: %d of %d processes lost — %s",
		cov, len(lost), len(v.procs), strings.Join(lost, ", "))
}

// ExportCSV writes the series' per-bin data — time, aggregate value, and one
// column per process — the way the paper's authors exported Paradyn's
// histogram data to compute byte totals and averages (§5.1.2 etc.).
func (v *View) ExportCSV(s *Series) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	procs := make([]string, 0, len(s.perProc))
	for p := range s.perProc {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	var b strings.Builder
	b.WriteString("bin_start_s,all")
	for _, p := range procs {
		b.WriteString("," + p)
	}
	b.WriteByte('\n')
	width := s.agg.BinWidth().Seconds()
	for i := 0; i < s.agg.NumFilled(); i++ {
		fmt.Fprintf(&b, "%.3f,%g", float64(i)*width, s.agg.Bin(i))
		for _, p := range procs {
			ph := s.perProc[p]
			// Per-process histograms can fold at different times; export
			// the value at the aggregate's bin granularity.
			val := 0.0
			if ph.BinWidth() == s.agg.BinWidth() {
				val = ph.Bin(i)
			} else {
				// Re-bin: sum the process bins covering this interval.
				ratio := float64(s.agg.BinWidth()) / float64(ph.BinWidth())
				lo := int(float64(i) * ratio)
				hi := int(float64(i+1) * ratio)
				for j := lo; j < hi; j++ {
					val += ph.Bin(j)
				}
			}
			fmt.Fprintf(&b, ",%g", val)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderSeries draws a series as text: the aggregate sparkline plus per-
// process lines — the stand-in for Paradyn's histogram visualizations.
func (v *View) RenderSeries(s *Series, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s\n", s.Metric, s.Focus)
	fmt.Fprintf(&b, "  all: |%s| total=%.6g (bin %v)\n", s.agg.Render(width), s.agg.Total(), s.agg.BinWidth())
	for _, p := range s.Procs() {
		h := s.perProc[p]
		fmt.Fprintf(&b, "  %-16s |%s| total=%.6g\n", p+":", h.Render(width), h.Total())
	}
	return b.String()
}

// CounterTracks renders every whole-program series as one Perfetto counter
// track: a point per filled histogram bin, valued as the bin's rate (the
// folding histogram's value divided by its bin width). Tracks are sorted by
// metric name so the export is byte-stable.
func (v *View) CounterTracks() []trace.CounterTrack {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.series))
	for k, s := range v.series {
		if s.Focus.IsWholeProgram() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]trace.CounterTrack, 0, len(keys))
	for _, k := range keys {
		s := v.series[k]
		ct := trace.CounterTrack{Name: s.Metric}
		h := s.agg
		width := h.BinWidth()
		secs := width.Seconds()
		for i := 0; i < h.NumFilled(); i++ {
			ct.Points = append(ct.Points, trace.CounterPoint{
				TsNs:  int64(i) * int64(width),
				Value: h.Bin(i) / secs,
			})
		}
		out = append(out, ct)
	}
	return out
}
