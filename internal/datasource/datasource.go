// Package datasource defines the analysis plane's data contract: the narrow
// DataSource interface everything above the wire (the Performance
// Consultant, the judge, exporters, visualization helpers) consumes, plus
// the source-agnostic state those consumers query — metric series folded
// into histograms, the mirrored resource hierarchy, the observed call
// graph, process lifecycle, and daemon liveness.
//
// Two implementations exist: the live front end (internal/frontend), which
// feeds a View from daemon reports as the program runs, and the offline
// ReplaySource (internal/session), which feeds an identical View from a
// recorded session archive. The Consultant cannot tell them apart — that is
// the point: record a run once, re-run the analysis offline forever.
package datasource

import (
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// DataSource is the complete query surface of the analysis plane. The
// Performance Consultant (and any other consumer above the wire) depends
// only on this interface, never on a concrete front end.
type DataSource interface {
	// EnableMetric turns on a metric-focus pair and returns its series. A
	// live source instruments the daemons; a replay source filters the
	// recorded sample stream instead.
	EnableMetric(metricName string, focus resource.Focus) (*Series, error)
	// DisableMetric removes a pair's instrumentation. The collected series
	// stays queryable. A replay source treats this as a no-op: the recorded
	// stream already reflects when sampling stopped.
	DisableMetric(metricName string, focus resource.Focus)
	// Series returns the series for a metric-focus pair, or nil.
	Series(metricName string, focus resource.Focus) *Series

	// Hierarchy returns the mirrored resource hierarchy.
	Hierarchy() *resource.Hierarchy
	// Callees returns the observed callees of a function, sorted.
	Callees(caller string) []string
	// IsCallee reports whether the function has been observed as someone's
	// callee (call-graph roots are the ones that never are).
	IsCallee(fname string) bool

	// Processes returns known processes sorted by name.
	Processes() []*ProcInfo
	// LiveProcessCount counts processes that have not exited.
	LiveProcessCount() int
	// ProcessCount counts processes ever seen.
	ProcessCount() int
	// LostProcessCount counts processes currently marked lost.
	LostProcessCount() int
	// Coverage is the fraction of known processes whose data is
	// trustworthy (1.0 when nothing was lost).
	Coverage() float64
	// DegradationSummary describes coverage damage, or "" when full.
	DegradationSummary() string
	// UnmeasuredGaps returns the outage windows (daemon death →
	// re-attach) recorded by the supervisor, in record order. Empty for
	// runs without recoveries.
	UnmeasuredGaps() []Gap
	// GapOverlaps reports whether any unmeasured gap intersects the
	// half-open interval (from, to].
	GapOverlaps(from, to sim.Time) bool

	// CounterTracks renders the whole-program series as Perfetto counter
	// tracks for the Chrome export.
	CounterTracks() []trace.CounterTrack

	// Sync is a read barrier: consumers call it before a batch of queries.
	// A live source records the barrier into the session archive; a replay
	// source applies recorded events up to the matching barrier, so the
	// k-th synchronized read in replay observes exactly the state the k-th
	// live read observed.
	Sync()
}

// Recorder receives the analysis-plane event stream a live source observes,
// in arrival order. The front end holds one nil-ably: when no recording is
// armed every hook is a pointer test, so the sampling path stays cold.
type Recorder interface {
	// RecordSamples captures one ingested sample batch.
	RecordSamples(batch []Sample)
	// RecordUpdate captures one resource-update report.
	RecordUpdate(u Update)
	// RecordEnable captures an EnableMetric outcome ("" errMsg = success),
	// so replay can answer the same request the same way.
	RecordEnable(metricName string, focus resource.Focus, errMsg string)
	// RecordStale captures a liveness-monitor staleness verdict.
	RecordStale(daemonName string, t sim.Time)
	// RecordGap captures one unmeasured outage window (daemon death →
	// re-attach) so replay reproduces the supervisor's gap accounting.
	RecordGap(g Gap)
	// RecordShard captures one streamed trace shard.
	RecordShard(sh trace.Shard)
	// RecordUndelivered captures end-of-run undelivered-span accounting.
	RecordUndelivered(proc string, n int64)
	// RecordBarrier marks a consumer read barrier (see DataSource.Sync).
	RecordBarrier()
}
