package datasource

import (
	"sort"

	"pperf/internal/metric"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// Series is the collected data of one enabled metric-focus pair: the
// aggregated histogram plus per-process histograms. It is filled by a
// View's ingest methods — identically whether the samples arrive live from
// daemons or out of a recorded session archive.
type Series struct {
	Metric  string
	Def     *metric.Def
	Focus   resource.Focus
	agg     *metric.Histogram
	perProc map[string]*metric.Histogram
	lastT   sim.Time
}

// LastSampleTime returns the time of the newest ingested sample, so
// consumers can align rate computations with actual data coverage.
func (s *Series) LastSampleTime() sim.Time { return s.lastT }

// Histogram returns the focus-aggregated histogram.
func (s *Series) Histogram() *metric.Histogram { return s.agg }

// ProcHistogram returns one process's histogram (nil if that process never
// reported).
func (s *Series) ProcHistogram(proc string) *metric.Histogram { return s.perProc[proc] }

// Procs lists the processes that have reported samples, sorted.
func (s *Series) Procs() []string {
	out := make([]string, 0, len(s.perProc))
	for p := range s.perProc {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Total returns the cumulative metric value across all samples.
func (s *Series) Total() float64 { return s.agg.Total() }

// SeriesKey is the registry key of a metric-focus pair.
func SeriesKey(m string, f resource.Focus) string { return m + "\x00" + f.Key() }
