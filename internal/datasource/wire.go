package datasource

// The wire report types daemons send and every data source ingests. They
// live here (rather than in internal/daemon) so the replay machinery can
// decode an archive without linking the daemon; internal/daemon aliases
// them, keeping daemon call sites and the gob wire encoding unchanged.

import (
	"strings"

	"pperf/internal/resource"
	"pperf/internal/sim"
)

// Sample is one sampled metric delta for one process.
type Sample struct {
	Metric string
	Focus  resource.Focus
	Proc   string
	Time   sim.Time
	Delta  float64
	Value  float64 // cumulative value, for SampledFunction-style reads
}

// UpdateKind enumerates resource-update reports (§4.2.3).
type UpdateKind int

const (
	// UpAddResource announces a new resource at Path.
	UpAddResource UpdateKind = iota
	// UpRetire marks the resource at Path deallocated.
	UpRetire
	// UpSetName attaches a user-friendly display name to Path.
	UpSetName
	// UpCallEdge reports an observed caller→callee pair.
	UpCallEdge
	// UpProcessExit reports that the process named Proc finished.
	UpProcessExit
	// UpProcessLost reports that the process named Proc was forcibly
	// terminated (node crash, job abort) without exiting cleanly.
	UpProcessLost
	// UpHeartbeat is a periodic liveness beacon carrying no resource change;
	// the front end uses it (and any other report stamped with Daemon) to
	// detect crashed or hung daemons.
	UpHeartbeat
)

// Update is a resource-update report from daemon to front end.
type Update struct {
	Kind           UpdateKind
	Path           string
	Display        string
	Proc           string
	Caller, Callee string
	Time           sim.Time
	// Daemon identifies the sending daemon (liveness tracking). The in-
	// process transport and old captures leave it empty.
	Daemon string
}

// ProcInfo is what a data source knows about one application process.
type ProcInfo struct {
	Name    string
	Node    string
	Started sim.Time
	Exited  bool
	EndTime sim.Time
	// Lost marks a process that stopped reporting without a clean exit: its
	// daemon reported it forcibly terminated, or the daemon itself went
	// silent (crash/hang detected by the liveness monitor). Lost processes'
	// data is stale from LostTime on and they leave the Performance
	// Consultant's candidate set.
	Lost     bool
	LostTime sim.Time
}

// DaemonHealth is the liveness view of one daemon.
type DaemonHealth struct {
	Name     string
	Node     string // node the daemon serves ("" if not derivable)
	LastSeen sim.Time
	// Stale marks a daemon that has missed enough heartbeats to be presumed
	// crashed or hung. A later report from it clears the mark (recovery).
	Stale bool
}

// Gap is one unmeasured window on a node: the span between a daemon
// incarnation dying and its successor re-attaching. Samples for the window
// were never collected, so histograms silently read zero across it; the
// Consultant consults the gap list to mark hypotheses whose evaluation
// interval overlaps one as partial instead of trusting the zeros.
type Gap struct {
	Node string
	From sim.Time
	To   sim.Time
}

// DaemonNode derives the node name from the daemon identity convention
// ("paradynd@<node>").
func DaemonNode(name string) string {
	if i := strings.IndexByte(name, '@'); i >= 0 {
		return name[i+1:]
	}
	return ""
}
