package presta

import (
	"strings"
	"testing"

	"pperf/internal/mpi"
)

var quickCfg = Config{Bytes: 1024, OpsPerEpoch: 200, Epochs: 20}

func TestRunOnceCountsAgree(t *testing.T) {
	rep, tm, err := RunOnce(mpi.LAM, quickCfg, UniPut, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := float64(quickCfg.OpsPerEpoch * quickCfg.Epochs)
	if float64(rep.TotalOps) != wantOps {
		t.Errorf("presta ops = %d, want %v", rep.TotalOps, wantOps)
	}
	// The tool's raw histogram total counts every operation exactly.
	if tm.Ops != wantOps {
		t.Errorf("tool ops = %v, want %v", tm.Ops, wantOps)
	}
	if tm.Bytes != wantOps*float64(quickCfg.Bytes) {
		t.Errorf("tool bytes = %v", tm.Bytes)
	}
	if rep.Throughput() <= 0 || tm.Throughput <= 0 {
		t.Errorf("throughputs: presta %v tool %v", rep.Throughput(), tm.Throughput)
	}
}

func TestBidirectionalDoublesTraffic(t *testing.T) {
	uni, _, err := RunOnce(mpi.LAM, quickCfg, UniPut, 1)
	if err != nil {
		t.Fatal(err)
	}
	bi, tm, err := RunOnce(mpi.LAM, quickCfg, BiPut, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bi.TotalOps != 2*uni.TotalOps {
		t.Errorf("bi ops = %d, want 2×%d", bi.TotalOps, uni.TotalOps)
	}
	if tm.Ops != float64(bi.TotalOps) {
		t.Errorf("tool sees %v ops, presta reports %d", tm.Ops, bi.TotalOps)
	}
}

func TestGetModes(t *testing.T) {
	rep, tm, err := RunOnce(mpi.MPICH2, quickCfg, UniGet, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 || tm.Ops != float64(rep.TotalOps) {
		t.Errorf("get ops: presta %d tool %v", rep.TotalOps, tm.Ops)
	}
}

func TestCompareProducesAllRows(t *testing.T) {
	cmp, err := Compare(mpi.LAM, Config{Bytes: 1024, OpsPerEpoch: 100, Epochs: 10}, UniPut, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OpsDiff == nil || cmp.ThroughputDiff == nil || cmp.PerOpDiff == nil {
		t.Fatal("missing paired results")
	}
	// Operation counts must match exactly: not statistically significant.
	if cmp.OpsDiff.Significant {
		t.Errorf("op counts should agree: %+v", cmp.OpsDiff)
	}
	out := cmp.Render()
	for _, want := range []string{"throughput", "per-op time", "unidirectional Put"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNeedsRuns(t *testing.T) {
	if _, err := Compare(mpi.LAM, quickCfg, UniPut, 1); err == nil {
		t.Error("single run should be rejected")
	}
}

func TestEpochThroughputSamples(t *testing.T) {
	rep, _, err := RunOnce(mpi.LAM, quickCfg, UniPut, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EpochSeconds) != quickCfg.Epochs {
		t.Fatalf("epoch samples = %d", len(rep.EpochSeconds))
	}
	for _, v := range rep.EpochThroughputs() {
		if v <= 0 {
			t.Fatal("non-positive epoch throughput")
		}
	}
}
