// Package presta reimplements the ASCI Purple Presta Stress Test
// Benchmark's rma program (§5.2.1.3): unidirectional and bidirectional
// MPI_Put/MPI_Get throughput and per-operation time over fenced epochs,
// measured by the benchmark's own internal timing. The paper validates the
// tool by comparing Paradyn's RMA metrics against these self-reported
// numbers.
package presta

import (
	"fmt"

	"pperf/internal/mpi"
	"pperf/internal/sim"
)

// Mode selects the rma benchmark's transfer pattern.
type Mode int

const (
	UniPut Mode = iota
	UniGet
	BiPut
	BiGet
)

func (m Mode) String() string {
	switch m {
	case UniPut:
		return "unidirectional Put"
	case UniGet:
		return "unidirectional Get"
	case BiPut:
		return "bidirectional Put"
	case BiGet:
		return "bidirectional Get"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config mirrors the rma program's command-line arguments; the paper used
// 1024 bytes, 3000 operations per epoch, 200 epochs, 2 processes.
type Config struct {
	Bytes       int
	OpsPerEpoch int
	Epochs      int
}

// PaperConfig returns the paper's parameters.
func PaperConfig() Config { return Config{Bytes: 1024, OpsPerEpoch: 3000, Epochs: 200} }

// Report is the benchmark's self-measured output for one mode.
type Report struct {
	Mode   Mode
	Config Config
	// TotalOps and TotalBytes are the issued operation and byte counts
	// (origin side; both sides for bidirectional).
	TotalOps   int
	TotalBytes int64
	// Elapsed is the wall time over all epochs (rank 0's clock).
	Elapsed sim.Duration
	// EpochSeconds are the per-epoch durations, for confidence intervals.
	EpochSeconds []float64
}

// Throughput returns bytes/second over the whole run.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalBytes) / r.Elapsed.Seconds()
}

// PerOpTime returns seconds per operation.
func (r *Report) PerOpTime() float64 {
	if r.TotalOps == 0 {
		return 0
	}
	return r.Elapsed.Seconds() / float64(r.TotalOps)
}

// EpochThroughputs returns per-epoch bytes/second samples.
func (r *Report) EpochThroughputs() []float64 {
	opsPerEpoch := r.Config.OpsPerEpoch
	if r.Mode == BiPut || r.Mode == BiGet {
		opsPerEpoch *= 2
	}
	bytesPerEpoch := float64(opsPerEpoch * r.Config.Bytes)
	out := make([]float64, len(r.EpochSeconds))
	for i, s := range r.EpochSeconds {
		if s > 0 {
			out[i] = bytesPerEpoch / s
		}
	}
	return out
}

// Program builds the rma benchmark as a 2-rank MPI program writing its
// self-measured results into report.
func Program(cfg Config, mode Mode, report *Report) mpi.Program {
	const mod = "presta_rma.c"
	report.Mode = mode
	report.Config = cfg
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		if c.Size() < 2 {
			panic("presta: rma needs 2 processes")
		}
		win, err := c.WinCreate(r, cfg.Bytes*2, 1, nil)
		if err != nil {
			panic(err)
		}
		win.SetName("prestaWin")
		me := r.Rank()
		peer := 1 - me
		active := me == 0 || mode == BiPut || mode == BiGet
		buf := make([]byte, cfg.Bytes)

		win.Fence(0)
		start := r.Now()
		for e := 0; e < cfg.Epochs; e++ {
			e0 := r.Now()
			if me <= 1 && active {
				r.Call(mod, "runEpoch", func() {
					for op := 0; op < cfg.OpsPerEpoch; op++ {
						switch mode {
						case UniPut, BiPut:
							win.Put(buf, cfg.Bytes, mpi.Byte, peer, 0, cfg.Bytes, mpi.Byte)
						case UniGet, BiGet:
							win.Get(buf, cfg.Bytes, mpi.Byte, peer, 0, cfg.Bytes, mpi.Byte)
						}
					}
				})
			}
			win.Fence(0)
			if me == 0 {
				report.EpochSeconds = append(report.EpochSeconds, r.Now().Sub(e0).Seconds())
				report.TotalOps += cfg.OpsPerEpoch
				report.TotalBytes += int64(cfg.OpsPerEpoch * cfg.Bytes)
				if mode == BiPut || mode == BiGet {
					report.TotalOps += cfg.OpsPerEpoch
					report.TotalBytes += int64(cfg.OpsPerEpoch * cfg.Bytes)
				}
			}
		}
		if me == 0 {
			report.Elapsed = r.Now().Sub(start)
		}
		win.Free()
	}
}
