package presta

import (
	"fmt"
	"strings"

	"pperf/internal/core"
	"pperf/internal/daemon"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/stats"
)

// ToolMeasurement is what the tool derives for one run using the paper's
// histogram methodology (§5.2.1.3): values in each bin are multiplied by the
// bin's represented time and summed for totals; run time is estimated from
// the count of data-bearing bins excluding the endpoints; throughput and
// per-op time follow.
type ToolMeasurement struct {
	Ops        float64
	Bytes      float64
	RunTime    sim.Duration
	Throughput float64
	PerOpTime  float64
}

// RunOnce executes the rma benchmark under the full tool and returns both
// the benchmark's self-report and the tool's derivation.
func RunOnce(impl mpi.ImplKind, cfg Config, mode Mode, seed uint64) (*Report, *ToolMeasurement, error) {
	dcfg := daemon.DefaultConfig()
	dcfg.SampleInterval = 50 * sim.Millisecond
	s, err := core.NewSession(core.Options{
		Impl: impl, Nodes: 2, CPUsPerNode: 1, Seed: seed,
		Daemon: &dcfg, BinWidth: 100 * sim.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()

	report := &Report{}
	s.Register("presta-rma", Program(cfg, mode, report))

	whole := resource.WholeProgram()
	opsMetric, bytesMetric := "rma_put_ops", "rma_put_bytes"
	if mode == UniGet || mode == BiGet {
		opsMetric, bytesMetric = "rma_get_ops", "rma_get_bytes"
	}
	opsSeries := s.MustEnable(opsMetric, whole)
	bytesSeries := s.MustEnable(bytesMetric, whole)

	if err := s.Launch("presta-rma", 2, nil); err != nil {
		return nil, nil, err
	}
	if err := s.Run(); err != nil {
		return nil, nil, err
	}

	tm := &ToolMeasurement{
		Ops:     opsSeries.Histogram().Total(),
		Bytes:   bytesSeries.Histogram().Total(),
		RunTime: bytesSeries.Histogram().ActiveRunTime(),
	}
	opsTotal, bytesTotal := opsSeries.Histogram().InteriorTotal(), bytesSeries.Histogram().InteriorTotal()
	if tm.RunTime <= 0 {
		// Run too short for the endpoint-elimination methodology; fall back
		// to the full span.
		tm.RunTime = sim.Duration(bytesSeries.Histogram().NumFilled()) * bytesSeries.Histogram().BinWidth()
		opsTotal, bytesTotal = tm.Ops, tm.Bytes
	}
	if tm.RunTime > 0 {
		tm.Throughput = bytesTotal / tm.RunTime.Seconds()
		if opsTotal > 0 {
			tm.PerOpTime = tm.RunTime.Seconds() / opsTotal
		}
	}
	return report, tm, nil
}

// Comparison is the per-mode outcome across repeated runs.
type Comparison struct {
	Mode Mode
	Runs int
	// Per-run samples.
	PrestaOps, ToolOps               []float64
	PrestaThroughput, ToolThroughput []float64
	PrestaPerOp, ToolPerOp           []float64
	// Paired results.
	OpsDiff        *stats.PairedResult
	ThroughputDiff *stats.PairedResult
	PerOpDiff      *stats.PairedResult
}

// Compare runs the benchmark `runs` times with distinct seeds and applies
// the paper's significance test to the paired Presta-vs-tool measurements.
func Compare(impl mpi.ImplKind, cfg Config, mode Mode, runs int) (*Comparison, error) {
	if runs < 2 {
		return nil, fmt.Errorf("presta: need at least 2 runs for a confidence interval")
	}
	cmp := &Comparison{Mode: mode, Runs: runs}
	for i := 0; i < runs; i++ {
		rep, tm, err := RunOnce(impl, cfg, mode, uint64(1000+i*37))
		if err != nil {
			return nil, err
		}
		cmp.PrestaOps = append(cmp.PrestaOps, float64(rep.TotalOps))
		cmp.ToolOps = append(cmp.ToolOps, tm.Ops)
		cmp.PrestaThroughput = append(cmp.PrestaThroughput, rep.Throughput())
		cmp.ToolThroughput = append(cmp.ToolThroughput, tm.Throughput)
		cmp.PrestaPerOp = append(cmp.PrestaPerOp, rep.PerOpTime())
		cmp.ToolPerOp = append(cmp.ToolPerOp, tm.PerOpTime)
	}
	var err error
	if cmp.OpsDiff, err = stats.PairedDiff(cmp.PrestaOps, cmp.ToolOps); err != nil {
		return nil, err
	}
	if cmp.ThroughputDiff, err = stats.PairedDiff(cmp.PrestaThroughput, cmp.ToolThroughput); err != nil {
		return nil, err
	}
	if cmp.PerOpDiff, err = stats.PairedDiff(cmp.PrestaPerOp, cmp.ToolPerOp); err != nil {
		return nil, err
	}
	return cmp, nil
}

// Render formats the comparison like the paper reports it.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Presta rma vs tool, %s (%d runs)\n", c.Mode, c.Runs)
	row := func(what string, presta, tool []float64, d *stats.PairedResult) {
		sig := "not significant"
		if d.Significant {
			sig = "SIGNIFICANT"
		}
		fmt.Fprintf(&b, "  %-12s presta %.6g, tool %.6g, rel diff %+.3f%% (%s, CI %s)\n",
			what, stats.Mean(presta), stats.Mean(tool), d.RelDiff*100, sig, d.CI)
	}
	row("ops", c.PrestaOps, c.ToolOps, c.OpsDiff)
	row("throughput", c.PrestaThroughput, c.ToolThroughput, c.ThroughputDiff)
	row("per-op time", c.PrestaPerOp, c.ToolPerOp, c.PerOpDiff)
	return b.String()
}
