package core

import (
	"fmt"
	"strings"

	"pperf/internal/cluster"
	"pperf/internal/consultant"
	"pperf/internal/mpi"
	"pperf/internal/pcl"
	"pperf/internal/sim"
)

// OptionsFromPCL builds session options from a PCL configuration, using the
// named daemon definition's mpi_implementation attribute (the §4.1
// extension) and merging any embedded MDL. base supplies everything PCL
// does not configure (cluster size, seed).
func OptionsFromPCL(cfg *pcl.Config, daemonName string, base Options) (Options, error) {
	d := cfg.Daemon(daemonName)
	if d == nil {
		return base, fmt.Errorf("core: PCL has no daemon %q", daemonName)
	}
	switch d.MPIImplementation {
	case "lam":
		base.Impl = mpi.LAM
	case "mpich":
		base.Impl = mpi.MPICH
	case "mpich2":
		base.Impl = mpi.MPICH2
	case "reference":
		base.Impl = mpi.Reference
	case "":
		return base, fmt.Errorf("core: daemon %q has no mpi_implementation attribute (required on non-shared filesystems, §4.1)", daemonName)
	}
	if cfg.MDL != "" {
		base.UserMDL += "\n" + cfg.MDL
	}
	return base, nil
}

// ConsultantConfigFromPCL applies the PCL tunable constants the paper
// adjusts (§5.1.6 lowers PC_CPUThreshold to 0.2) over the defaults.
func ConsultantConfigFromPCL(cfg *pcl.Config) consultant.Config {
	c := consultant.DefaultConfig()
	c.CPUThreshold = cfg.Tunable("PC_CPUThreshold", c.CPUThreshold)
	c.SyncThreshold = cfg.Tunable("PC_SyncThreshold", c.SyncThreshold)
	c.IOThreshold = cfg.Tunable("PC_IOThreshold", c.IOThreshold)
	if v, ok := cfg.Tunables["PC_EvalIntervalMS"]; ok {
		c.EvalInterval = sim.Duration(v) * sim.Millisecond
	}
	return c
}

// LaunchMpirun launches a registered program from an mpirun command line,
// parsed with the launcher syntax of the session's MPI implementation: LAM's
// -np/N/C/nR/cR placement notation, or MPICH's -np/-m/-wdir (§4.1). Machine
// files named by -m are looked up in the world's in-memory FS.
func (s *Session) LaunchMpirun(commandLine string) error {
	argv := strings.Fields(commandLine)
	if len(argv) > 0 && argv[0] == "mpirun" {
		argv = argv[1:]
	}
	var plan *cluster.LaunchPlan
	var err error
	switch s.World.Impl.Kind {
	case mpi.MPICH, mpi.MPICH2:
		readFile := func(name string) (string, error) {
			if text, ok := s.World.FS[name]; ok {
				return text, nil
			}
			return "", fmt.Errorf("no machine file %q in session FS", name)
		}
		_, plan, err = cluster.ParseMPICHMpirun(s.Spec, argv, readFile)
		if err != nil {
			return err
		}
		// The session's cluster stays authoritative: remap machine-file
		// node indices into its bounds.
		for i := range plan.Placements {
			plan.Placements[i].Node %= s.Spec.NumNodes()
		}
	default:
		plan, err = cluster.ParseLAMMpirun(s.Spec, argv)
		if err != nil {
			return err
		}
	}
	return s.LaunchPlacements(plan.Program, plan.Placements, plan.Args)
}
