package core

import (
	"fmt"

	"pperf/internal/daemon"
	"pperf/internal/mpi"
	"pperf/internal/probe"
)

// maxTagsPerComm bounds the number of message-tag resources discovered per
// communicator, so programs cycling through tag values cannot flood the
// resource hierarchy.
const maxTagsPerComm = 32

// installTagDiscovery arms lightweight standing instrumentation that
// discovers (communicator, tag) pairs as messages flow, populating
// /SyncObject/Message/<comm>/<tag> resources — what lets the Performance
// Consultant refine a message-passing bottleneck down to the tag, as in
// Figs 3 and 9.
func installTagDiscovery(s *Session) {
	seen := map[string]int{} // comm path → #tags discovered
	reported := map[string]bool{}
	report := func(c *mpi.Comm, tag int) {
		if c == nil || tag < 0 {
			return
		}
		commPath := fmt.Sprintf("/SyncObject/Message/comm-%d", c.ID())
		full := fmt.Sprintf("%s/tag-%d", commPath, tag)
		if reported[full] || seen[commPath] >= maxTagsPerComm {
			return
		}
		reported[full] = true
		seen[commPath]++
		s.FE.Update(daemon.Update{
			Kind: daemon.UpAddResource, Time: s.Eng.Now(), Path: full,
		})
	}
	asComm := func(v any) *mpi.Comm {
		c, _ := v.(*mpi.Comm)
		return c
	}
	asInt := func(v any) int {
		if n, ok := v.(int); ok {
			return n
		}
		return -1
	}
	p2p := func(ev *probe.Event) { report(asComm(ev.Arg(5)), asInt(ev.Arg(4))) }
	sendrecv := func(ev *probe.Event) {
		report(asComm(ev.Arg(10)), asInt(ev.Arg(4)))
		report(asComm(ev.Arg(10)), asInt(ev.Arg(9)))
	}
	s.World.AddHooks(&mpi.Hooks{
		ProcessStarted: func(r *mpi.Rank) {
			for _, base := range []string{"MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv"} {
				r.Probes().Insert(base, probe.Entry, probe.Append, p2p)
				r.Probes().Insert("P"+base, probe.Entry, probe.Append, p2p)
			}
			r.Probes().Insert("MPI_Sendrecv", probe.Entry, probe.Append, sendrecv)
			r.Probes().Insert("PMPI_Sendrecv", probe.Entry, probe.Append, sendrecv)
		},
	})
}
