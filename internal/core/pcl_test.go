package core

import (
	"strings"
	"testing"

	"pperf/internal/mpi"
	"pperf/internal/pcl"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

const pclSrc = `
daemon pd_mpich {
    command "paradynd";
    flavor mpi;
    mpi_implementation "mpich";
}
tunable_constant {
    "PC_CPUThreshold" 0.2;
    "PC_EvalIntervalMS" 250;
}
mdl {
resourceList pcl_send is procedure { "MPI_Send", "PMPI_Send" };
metric pcl_sends {
    name "pcl_sends"; units ops; unitstype unnormalized;
    aggregateOperator sum; style EventCounter;
    base is counter {
        foreach func in pcl_send { append preinsn func.entry constrained (* pcl_sends++; *) }
    }
}
}
`

func TestSessionFromPCL(t *testing.T) {
	cfg, err := pcl.Parse(pclSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := OptionsFromPCL(cfg, "pd_mpich", Options{Nodes: 2, CPUsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Impl != mpi.MPICH {
		t.Fatalf("impl = %v", opts.Impl)
	}
	s := newTestSession(t, opts)
	s.Register("pp", pingPong(60, 5*sim.Millisecond))
	// The PCL-embedded metric is available.
	sr := s.MustEnable("pcl_sends", resource.WholeProgram())
	if err := s.Launch("pp", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sr.Total() != 60 {
		t.Errorf("pcl_sends = %v, want 60", sr.Total())
	}
	ccfg := ConsultantConfigFromPCL(cfg)
	if ccfg.CPUThreshold != 0.2 || ccfg.EvalInterval != 250*sim.Millisecond {
		t.Errorf("consultant config = %+v", ccfg)
	}
}

func TestOptionsFromPCLErrors(t *testing.T) {
	cfg, _ := pcl.Parse(`daemon d { command "x"; }`)
	if _, err := OptionsFromPCL(cfg, "missing", Options{}); err == nil {
		t.Error("missing daemon should error")
	}
	if _, err := OptionsFromPCL(cfg, "d", Options{}); err == nil ||
		!strings.Contains(err.Error(), "mpi_implementation") {
		t.Errorf("missing attribute should error, got %v", err)
	}
}

func TestLaunchMpirunLAMNotation(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 4, CPUsPerNode: 1})
	nodes := map[int]bool{}
	s.Register("spread", func(r *mpi.Rank, _ []string) {
		nodes[r.Node()] = true
	})
	// The paper's n0-2,4 style notation, trimmed to this cluster.
	if err := s.LaunchMpirun("mpirun n0-1,3 spread"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !nodes[0] || !nodes[1] || !nodes[3] || nodes[2] {
		t.Errorf("placement nodes = %v, want 0,1,3", nodes)
	}
}

func TestLaunchMpirunMPICHMachineFile(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.MPICH, Nodes: 2, CPUsPerNode: 2})
	s.World.FS["machines"] = "hostA:2\nhostB:2\n"
	ranks := 0
	s.Register("mm", func(r *mpi.Rank, _ []string) { ranks++ })
	if err := s.LaunchMpirun("mpirun -np 3 -m machines -wdir /tmp mm"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ranks != 3 {
		t.Errorf("ranks = %d", ranks)
	}
}

func TestLaunchMpirunErrors(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1})
	if err := s.LaunchMpirun("mpirun -np 99 nothing"); err == nil {
		t.Error("oversubscribed -np should error")
	}
	if err := s.LaunchMpirun("mpirun -np 1 unregistered"); err == nil {
		t.Error("unregistered program should error")
	}
}
