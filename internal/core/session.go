// Package core assembles the enhanced performance tool the paper describes:
// a simulated cluster and MPI implementation, one tool daemon per node, the
// front end with its folding histograms and resource hierarchy, the MDL
// metric library (Table 1's RMA metrics included), and the Performance
// Consultant. A Session is the top-level object applications, benchmarks and
// the experiment harness drive.
package core

import (
	"fmt"

	"pperf/internal/cluster"
	"pperf/internal/daemon"
	"pperf/internal/frontend"
	"pperf/internal/mdl"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// Options configure a Session.
type Options struct {
	// Impl selects the MPI implementation personality (LAM, MPICH, MPICH2,
	// Reference).
	Impl mpi.ImplKind
	// Nodes and CPUsPerNode describe the cluster (defaults 3×2, the paper's
	// usual slice).
	Nodes       int
	CPUsPerNode int
	// Seed drives the deterministic RNG.
	Seed uint64
	// Daemon configures the per-node daemons.
	Daemon *daemon.Config
	// NumBins/BinWidth configure front-end histograms (defaults: 1000 bins
	// at 0.2 s, Paradyn's).
	NumBins  int
	BinWidth sim.Duration
	// UserMDL is extra metric-definition source merged over the standard
	// library.
	UserMDL string
	// UseTCP routes daemon traffic over a real localhost TCP socket with
	// gob encoding instead of in-process calls.
	UseTCP bool
	// DiscoverTags enables the daemons' message-tag discovery
	// instrumentation (on by default), which populates
	// /SyncObject/Message/<comm>/<tag> resources.
	DiscoverTags *bool
}

// Session is a live tool instance around one simulated cluster.
type Session struct {
	Eng     *sim.Engine
	Spec    *cluster.Spec
	World   *mpi.World
	FE      *frontend.FrontEnd
	Daemons []*daemon.Daemon
	Lib     *mdl.Library

	listener   *frontend.Listener
	transports []*frontend.TCPTransport
	launched   bool
}

// NewSession builds the cluster, world, front end and daemons.
func NewSession(opts Options) (*Session, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 3
	}
	if opts.CPUsPerNode == 0 {
		opts.CPUsPerNode = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 20040401
	}
	dcfg := daemon.DefaultConfig()
	if opts.Daemon != nil {
		dcfg = *opts.Daemon
	}
	dcfg.MPIImplName = opts.Impl.String()

	lib, err := mdl.NewLibraryWithStd(opts.UserMDL)
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine(opts.Seed)
	spec := cluster.DefaultSpec(opts.Nodes, opts.CPUsPerNode)
	world := mpi.NewWorld(eng, spec, mpi.NewImpl(opts.Impl))

	fe := frontend.New()
	fe.NumBins = opts.NumBins
	fe.BinWidth = opts.BinWidth

	s := &Session{Eng: eng, Spec: spec, World: world, FE: fe, Lib: lib}

	if opts.UseTCP {
		l, err := fe.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		s.listener = l
	}

	for node := range spec.Nodes {
		var tr daemon.Transport = fe
		if opts.UseTCP {
			t, err := frontend.DialTransport(s.listener.Addr())
			if err != nil {
				s.Close()
				return nil, err
			}
			s.transports = append(s.transports, t)
			tr = t
		}
		d := daemon.New(eng, node, spec.Nodes[node].Name, lib, tr, dcfg)
		s.Daemons = append(s.Daemons, d)
		fe.AddDaemon(d)
	}
	daemon.AttachAll(world, s.Daemons)
	if opts.DiscoverTags == nil || *opts.DiscoverTags {
		installTagDiscovery(s)
	}
	return s, nil
}

// Register adds a program to the world's registry.
func (s *Session) Register(name string, prog mpi.Program) { s.World.Register(name, prog) }

// Launch starts np copies of a registered program with block placement and
// begins daemon sampling.
func (s *Session) Launch(prog string, np int, args []string) error {
	if _, err := s.World.LaunchN(prog, np, args); err != nil {
		return err
	}
	s.startSampling()
	return nil
}

// LaunchPlacements starts a program on explicit placements (from mpirun
// parsing).
func (s *Session) LaunchPlacements(prog string, placements []cluster.Placement, args []string) error {
	if _, err := s.World.Launch(prog, placements, args); err != nil {
		return err
	}
	s.startSampling()
	return nil
}

func (s *Session) startSampling() {
	if s.launched {
		return
	}
	s.launched = true
	for _, d := range s.Daemons {
		d.Start()
	}
}

// Enable turns on a metric-focus pair and returns its series.
func (s *Session) Enable(metricName string, focus resource.Focus) (*frontend.Series, error) {
	return s.FE.EnableMetric(metricName, focus)
}

// MustEnable is Enable for known-good pairs (panics on error).
func (s *Session) MustEnable(metricName string, focus resource.Focus) *frontend.Series {
	sr, err := s.Enable(metricName, focus)
	if err != nil {
		panic(fmt.Sprintf("core: enable %s %s: %v", metricName, focus, err))
	}
	return sr
}

// Run executes the simulation to completion.
func (s *Session) Run() error { return s.Eng.Run() }

// RunFor executes the simulation for a bounded virtual duration.
func (s *Session) RunFor(d sim.Duration) error { return s.Eng.RunFor(d) }

// Close releases TCP resources (no-op for in-process transport).
func (s *Session) Close() {
	for _, t := range s.transports {
		t.Close()
	}
	if s.listener != nil {
		s.listener.Close()
	}
}

// ProbeExecutions totals probe executions across daemons.
func (s *Session) ProbeExecutions() int64 {
	var n int64
	for _, d := range s.Daemons {
		n += d.ProbeExecutions()
	}
	return n
}
