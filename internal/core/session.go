// Package core assembles the enhanced performance tool the paper describes:
// a simulated cluster and MPI implementation, one tool daemon per node, the
// front end with its folding histograms and resource hierarchy, the MDL
// metric library (Table 1's RMA metrics included), and the Performance
// Consultant. A Session is the top-level object applications, benchmarks and
// the experiment harness drive.
package core

import (
	"fmt"
	"sort"

	"pperf/internal/cluster"
	"pperf/internal/daemon"
	"pperf/internal/faults"
	"pperf/internal/frontend"
	"pperf/internal/mdl"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/session"
	"pperf/internal/sim"
	"pperf/internal/trace"
	"pperf/internal/wire"
)

// Options configure a Session.
type Options struct {
	// Impl selects the MPI implementation personality (LAM, MPICH, MPICH2,
	// Reference).
	Impl mpi.ImplKind
	// Nodes and CPUsPerNode describe the cluster (defaults 3×2, the paper's
	// usual slice).
	Nodes       int
	CPUsPerNode int
	// Seed drives the deterministic RNG.
	Seed uint64
	// Daemon configures the per-node daemons.
	Daemon *daemon.Config
	// NumBins/BinWidth configure front-end histograms (defaults: 1000 bins
	// at 0.2 s, Paradyn's).
	NumBins  int
	BinWidth sim.Duration
	// UserMDL is extra metric-definition source merged over the standard
	// library.
	UserMDL string
	// UseTCP routes daemon traffic over a real localhost TCP socket with
	// gob encoding instead of in-process calls.
	UseTCP bool
	// DiscoverTags enables the daemons' message-tag discovery
	// instrumentation (on by default), which populates
	// /SyncObject/Message/<comm>/<tag> resources.
	DiscoverTags *bool
	// Faults arms a fault-injection plan: heartbeats and the liveness
	// monitor switch on, the network overlay is installed, and the plan's
	// faults are scheduled. Nil (the default) leaves every fault hook cold —
	// runs are byte-identical to a build without the fault subsystem.
	Faults *faults.Plan
	// Trace arms the event-tracing subsystem: every process records spans
	// into a ring buffer, daemons stream shards to the front end, and the
	// merged timeline becomes available from FrontEnd.Timeline. Nil (the
	// default) leaves every trace hook cold — runs are byte-identical to a
	// build without the trace subsystem.
	Trace *trace.Config
	// Recorder, when non-nil, is attached to the front end before launch
	// and captures the full analysis-plane event stream for offline replay
	// (see internal/session). Either the in-memory session.Recorder or
	// perfdb's bounded-memory StreamRecorder satisfies it. Nil leaves
	// every recording hook cold.
	Recorder session.Sink
}

// Session is a live tool instance around one simulated cluster.
type Session struct {
	Eng     *sim.Engine
	Spec    *cluster.Spec
	World   *mpi.World
	FE      *frontend.FrontEnd
	Daemons []*daemon.Daemon
	Lib     *mdl.Library

	// Injector is non-nil when a fault plan is armed; its Log records what
	// fired.
	Injector *faults.Injector
	// Tracer is non-nil when tracing is armed (Options.Trace).
	Tracer *trace.Tracer

	listener   *frontend.Listener
	transports []*frontend.TCPTransport
	flaky      map[string]*faults.FlakyTransport // node name → wrapper (fault runs only)
	launched   bool

	// Respawn support (supervisor runs only). nodeIdx/byName are the
	// mutable routing maps the fault hooks read through, so a fault
	// targeting a respawned node reaches the live incarnation, and
	// registry re-routes the world's discovery hooks the same way.
	dcfg     daemon.Config
	plan     *faults.Plan
	registry *daemon.Registry
	nodeIdx  map[string]int
	byName   map[string]*daemon.Daemon
}

// NewSession builds the cluster, world, front end and daemons.
func NewSession(opts Options) (*Session, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 3
	}
	if opts.CPUsPerNode == 0 {
		opts.CPUsPerNode = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 20040401
	}
	dcfg := daemon.DefaultConfig()
	if opts.Daemon != nil {
		dcfg = *opts.Daemon
	}
	dcfg.MPIImplName = opts.Impl.String()
	plan := opts.Faults
	if plan != nil && plan.Heartbeat > 0 {
		dcfg.Heartbeat = plan.Heartbeat
	}

	lib, err := mdl.NewLibraryWithStd(opts.UserMDL)
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine(opts.Seed)
	spec := cluster.DefaultSpec(opts.Nodes, opts.CPUsPerNode)
	world := mpi.NewWorld(eng, spec, mpi.NewImpl(opts.Impl))
	if plan != nil {
		world.Net = cluster.NewNetwork() // nil otherwise: zero-cost fast path
	}

	fe := frontend.New()
	fe.NumBins = opts.NumBins
	fe.BinWidth = opts.BinWidth
	if opts.Recorder != nil {
		opts.Recorder.SetHistogram(opts.NumBins, opts.BinWidth)
		fe.SetRecorder(opts.Recorder)
	}

	s := &Session{Eng: eng, Spec: spec, World: world, FE: fe, Lib: lib, dcfg: dcfg, plan: plan}

	if opts.UseTCP {
		l, err := fe.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		s.listener = l
	}

	for node := range spec.Nodes {
		nodeName := spec.Nodes[node].Name
		var tr daemon.Transport = fe
		if opts.UseTCP {
			rcfg := frontend.DefaultRetryConfig()
			if plan != nil {
				rcfg.Seed = plan.Seed + uint64(node) // per-daemon jitter streams
			}
			rcfg.Incarnation = 1
			t, err := frontend.DialTransportRetry(s.listener.Addr(), daemon.NameFor(nodeName), rcfg)
			if err != nil {
				s.Close()
				return nil, err
			}
			s.transports = append(s.transports, t)
			tr = t
		} else if plan != nil {
			// In-process transport: interpose the injector's failure wrapper.
			ft := &faults.FlakyTransport{Inner: tr}
			if s.flaky == nil {
				s.flaky = map[string]*faults.FlakyTransport{}
			}
			s.flaky[nodeName] = ft
			tr = ft
		}
		d := daemon.New(eng, node, nodeName, lib, tr, dcfg)
		s.Daemons = append(s.Daemons, d)
		fe.AddDaemon(d)
	}
	s.registry = daemon.AttachAll(world, s.Daemons)
	if opts.Trace != nil {
		s.Tracer = trace.New(opts.Trace)
		world.Tracer = s.Tracer
		fe.EnableTrace()
		for _, d := range s.Daemons {
			d.EnableTracing(s.Tracer)
		}
	}
	if opts.DiscoverTags == nil || *opts.DiscoverTags {
		installTagDiscovery(s)
	}
	if plan != nil {
		s.armFaults(plan)
	}
	return s, nil
}

// armFaults switches on the resilience machinery and schedules the plan.
func (s *Session) armFaults(plan *faults.Plan) {
	s.nodeIdx = map[string]int{}
	s.byName = map[string]*daemon.Daemon{}
	for i := range s.Spec.Nodes {
		s.nodeIdx[s.Spec.Nodes[i].Name] = i
		s.byName[s.Spec.Nodes[i].Name] = s.Daemons[i]
	}
	if plan.Heartbeat > 0 {
		s.FE.StartLiveness(s.Eng, plan.Heartbeat, plan.Detect)
	}
	s.Injector = faults.Arm(plan, s.Eng, faults.Hooks{
		KillNode: func(node, reason string) {
			s.World.KillNode(node, reason)
			if d := s.byName[node]; d != nil {
				d.Crash() // the node's daemon dies with it
			}
			if sv := s.FE.Supervisor(); sv != nil {
				sv.MarkUnrestartable(node) // hardware is gone; nothing to re-attach to
			}
		},
		Abort: func(reason string) { s.World.AbortAll(reason) },
		CrashDaemon: func(node string, restartable bool) {
			if d := s.byName[node]; d != nil {
				d.Crash()
			}
			if sv := s.FE.Supervisor(); sv != nil {
				if restartable {
					// Direct notification: covers hb=0 plans, where the
					// liveness monitor can never observe the silence.
					sv.NoteDown(node)
				} else {
					sv.MarkUnrestartable(node)
				}
			}
		},
		HangDaemon: func(node string, dur sim.Duration) {
			if d := s.byName[node]; d != nil {
				d.Hang(dur)
			}
		},
		SetLink: func(a, b string, lat, bw float64, downFor sim.Duration) {
			st := cluster.LinkState{LatFactor: lat, BWFactor: bw}
			if downFor > 0 {
				st.DownUntil = s.Eng.Now().Add(downFor)
			}
			if a == "*" {
				s.World.Net.SetAll(st)
				return
			}
			ai, aok := s.nodeIdx[a]
			bi, bok := s.nodeIdx[b]
			if aok && bok {
				s.World.Net.SetLink(ai, bi, st)
			}
		},
		DelayAttach: func(node string, dur sim.Duration) {
			if d := s.byName[node]; d != nil {
				d.DelayAttachUntil(s.Eng.Now().Add(dur))
			}
		},
		DropTransport: func(node string, n int, ch string) {
			ctl := ch == "" || ch == faults.ChanCtl || ch == faults.ChanBoth
			bulk := ch == faults.ChanBulk || ch == faults.ChanBoth
			if i, ok := s.nodeIdx[node]; ok && i < len(s.transports) {
				if ctl {
					s.transports[i].InjectFailures(n)
				}
				if bulk {
					s.transports[i].InjectBulkFailures(n)
				}
				return
			}
			if ft := s.flaky[node]; ft != nil {
				if ctl {
					ft.InjectFailures(n)
				}
				if bulk {
					ft.InjectBulkFailures(n)
				}
			}
		},
	})
	if plan.Restarts > 0 {
		// The supervisor is constructed only when the plan budgets
		// restarts; every other run keeps a nil supervisor pointer and
		// today's permanent-loss semantics, byte for byte.
		frontend.NewSupervisor(s.FE, s.Eng, frontend.DefaultSupervisorConfig(plan.Restarts, plan.Seed),
			s.respawnDaemon,
			func(now sim.Time, format string, args ...any) { s.Injector.Notef(now, format, args...) })
	}
}

// respawnDaemon is the supervisor's RespawnFunc: build a fresh daemon
// incarnation for the node and re-attach it to the node's still-running
// application processes. The previous incarnation is crashed first (a
// supervisor kills a wedged process before starting its replacement), the
// replacement gets its own transport stamped with the incarnation number
// (fresh control and bulk channels, fresh seq spaces), and the session's
// routing state — world hooks, fault-hook maps, Daemons slice — is
// re-pointed so everything downstream reaches the live incarnation.
// Adoption re-reports the node's resources, which is what clears the front
// end's lost marks and recovers Coverage. The supervisor starts the daemon
// itself after resynchronization succeeds.
func (s *Session) respawnDaemon(node string, incarnation int) (*daemon.Daemon, error) {
	idx, ok := s.nodeIdx[node]
	if !ok {
		return nil, fmt.Errorf("core: respawn on unknown node %q", node)
	}
	if old := s.byName[node]; old != nil {
		old.Crash()
	}

	var tr daemon.Transport = s.FE
	if s.listener != nil {
		rcfg := frontend.DefaultRetryConfig()
		rcfg.Seed = s.plan.Seed + uint64(idx) + uint64(incarnation)<<16 // own jitter stream per incarnation
		rcfg.Incarnation = uint64(incarnation)
		t, err := frontend.DialTransportRetry(s.listener.Addr(), daemon.NameFor(node), rcfg)
		if err != nil {
			return nil, fmt.Errorf("core: respawn dial: %w", err)
		}
		s.transports[idx].Close() // dead incarnation's channels: fail fast, free the sockets
		s.transports[idx] = t
		tr = t
	} else {
		ft := &faults.FlakyTransport{Inner: tr}
		if s.flaky == nil {
			s.flaky = map[string]*faults.FlakyTransport{}
		}
		s.flaky[node] = ft
		tr = ft
	}

	d := daemon.New(s.Eng, idx, node, s.Lib, tr, s.dcfg)
	d.SetIncarnation(incarnation)
	if s.Tracer != nil {
		// Re-arm trace streaming; registering the fill hook also displaces
		// the dead incarnation's hook, so shards resume on the new bulk
		// channel.
		d.EnableTracing(s.Tracer)
	}
	s.registry.Replace(d)
	s.byName[node] = d
	s.Daemons[idx] = d

	// Re-attach: adopt every application process on the node that is still
	// running. Lost or finished ranks stay with their (retired) records.
	for _, r := range s.World.Ranks() {
		if r.Node() == idx && !r.Lost() && !r.Finished() {
			d.Adopt(r)
		}
	}
	return d, nil
}

// Register adds a program to the world's registry.
func (s *Session) Register(name string, prog mpi.Program) { s.World.Register(name, prog) }

// Launch starts np copies of a registered program with block placement and
// begins daemon sampling.
func (s *Session) Launch(prog string, np int, args []string) error {
	if _, err := s.World.LaunchN(prog, np, args); err != nil {
		return err
	}
	s.startSampling()
	return nil
}

// LaunchPlacements starts a program on explicit placements (from mpirun
// parsing).
func (s *Session) LaunchPlacements(prog string, placements []cluster.Placement, args []string) error {
	if _, err := s.World.Launch(prog, placements, args); err != nil {
		return err
	}
	s.startSampling()
	return nil
}

func (s *Session) startSampling() {
	if s.launched {
		return
	}
	s.launched = true
	for _, d := range s.Daemons {
		d.Start()
	}
}

// Enable turns on a metric-focus pair and returns its series.
func (s *Session) Enable(metricName string, focus resource.Focus) (*frontend.Series, error) {
	return s.FE.EnableMetric(metricName, focus)
}

// MustEnable is Enable for known-good pairs (panics on error).
func (s *Session) MustEnable(metricName string, focus resource.Focus) *frontend.Series {
	sr, err := s.Enable(metricName, focus)
	if err != nil {
		panic(fmt.Sprintf("core: enable %s %s: %v", metricName, focus, err))
	}
	return sr
}

// Run executes the simulation to completion.
func (s *Session) Run() error {
	err := s.Eng.Run()
	s.flushTrace()
	return err
}

// RunFor executes the simulation for a bounded virtual duration.
func (s *Session) RunFor(d sim.Duration) error {
	err := s.Eng.RunFor(d)
	s.flushTrace()
	return err
}

// flushTrace ships spans recorded after each daemon's last sampling tick
// (the end-of-run flush), then folds each daemon's undelivered-span counts
// into the timeline so exporters can flag an incomplete trace. A no-op when
// tracing is not armed.
func (s *Session) flushTrace() {
	if s.Tracer == nil {
		return
	}
	for _, d := range s.Daemons {
		d.FlushTrace()
	}
	if s.FE.Timeline() == nil {
		return
	}
	for _, d := range s.Daemons {
		und := d.UndeliveredSpans()
		procs := make([]string, 0, len(und))
		for proc := range und {
			procs = append(procs, proc)
		}
		// Sorted so the notes land in the timeline — and the session
		// archive, when recording — in an order independent of map layout.
		sort.Strings(procs)
		for _, proc := range procs {
			s.FE.NoteUndelivered(proc, und[proc])
		}
	}
}

// Close releases TCP resources (no-op for in-process transport).
func (s *Session) Close() {
	for _, t := range s.transports {
		t.Close()
	}
	if s.listener != nil {
		s.listener.Close()
	}
}

// WireStats aggregates the session's wire-plane resilience counters per
// channel (wire.ChanCtl, wire.ChanBulk). TCP sessions merge every daemon
// transport's sender counters with the listener's receive-side dedupe
// accounting; in-process fault runs report the flaky-transport injection
// counters. One uniform wire.Stats block per channel replaces the three
// bespoke counter sets the stacks used to keep.
func (s *Session) WireStats() map[string]wire.Stats {
	out := map[string]wire.Stats{}
	add := func(ch string, st wire.Stats) {
		cur := out[ch]
		cur.Add(st)
		out[ch] = cur
	}
	for _, t := range s.transports {
		add(wire.ChanCtl, t.Stats())
		add(wire.ChanBulk, t.BulkStats())
	}
	if s.listener != nil {
		for _, ch := range []string{wire.ChanCtl, wire.ChanBulk} {
			ls := s.listener.WireStats(ch)
			// Sender side already counts acknowledged frames; take only the
			// receiver-side accounting from the listener.
			ls.Frames = 0
			add(ch, ls)
		}
	}
	for _, ft := range s.flaky {
		for ch, st := range ft.WireStats() {
			add(ch, st)
		}
	}
	return out
}

// ProbeExecutions totals probe executions across daemons.
func (s *Session) ProbeExecutions() int64 {
	var n int64
	for _, d := range s.Daemons {
		n += d.ProbeExecutions()
	}
	return n
}
