package core

// Acceptance tests for the dedicated bulk trace-streaming channel: with
// tracing armed, shard traffic moves only on the bulk channel and the control
// path's frame count is untouched; eager (watermark-triggered) shipping
// produces a merged timeline byte-identical to the tick-coupled path, with
// and without injected bulk-channel faults.

import (
	"bytes"
	"testing"

	"pperf/internal/faults"
	"pperf/internal/mpi"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

func runTracedSession(t testing.TB, useTCP bool, tcfg *trace.Config, plan *faults.Plan) *Session {
	t.Helper()
	s, err := NewSession(Options{
		Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1,
		UseTCP: useTCP,
		Trace:  tcfg,
		Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Register("pp", pingPong(300, sim.Millisecond))
	if err := s.Launch("pp", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func timelineCSV(t testing.TB, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, s.FE.Timeline()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceBytesStayOffControlChannel(t *testing.T) {
	untraced := runTracedSession(t, true, nil, nil)
	traced := runTracedSession(t, true, &trace.Config{}, nil)

	if got := traced.listener.CtlShardFrames(); got != 0 {
		t.Errorf("shard frames on the control channel = %d, want 0", got)
	}
	if got := traced.listener.BulkFrames(); got == 0 {
		t.Error("no bulk frames despite armed tracing")
	}
	// Arming tracing must not change what the sampling path sends: the
	// control channel carries exactly the frames of the untraced run.
	if tc, uc := traced.listener.CtlFrames(), untraced.listener.CtlFrames(); tc != uc {
		t.Errorf("control frames with tracing = %d, without = %d — trace load leaked into the sampling path", tc, uc)
	}
	if traced.FE.Timeline().Lost() != 0 {
		t.Errorf("spans lost on a healthy run: %d", traced.FE.Timeline().Lost())
	}
}

func TestEagerShippingMatchesTickCoupledTimeline(t *testing.T) {
	// FlushWatermark < 0 is the pre-bulk-channel behaviour: shards move only
	// on sampling ticks and the end-of-run flush.
	tick := runTracedSession(t, false, &trace.Config{FlushWatermark: -1}, nil)
	eager := runTracedSession(t, false, &trace.Config{FlushWatermark: 16}, nil)

	tickCSV, eagerCSV := timelineCSV(t, tick), timelineCSV(t, eager)
	if !bytes.Equal(tickCSV, eagerCSV) {
		t.Error("eager shipping changed the merged timeline")
	}
	ct := trace.Analyze(tick.FE.Timeline()).Render()
	ce := trace.Analyze(eager.FE.Timeline()).Render()
	if ct != ce {
		t.Errorf("critical paths differ:\n%s---\n%s", ct, ce)
	}

	// Same equivalence under injected bulk-channel faults: the bulk queue
	// absorbs the failures and replays, so nothing is lost and the timeline
	// stays byte-identical — while the control path keeps flowing.
	plan := func() *faults.Plan {
		p, err := faults.Parse("t=50ms drop-transport node0 n=4 chan=bulk; t=120ms drop-transport node1 n=2 chan=bulk")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	faulted := runTracedSession(t, false, &trace.Config{FlushWatermark: 16}, plan())
	if got := timelineCSV(t, faulted); !bytes.Equal(got, eagerCSV) {
		t.Error("bulk-channel faults changed the merged timeline")
	}
	if got := faulted.FE.Timeline().Lost(); got != 0 {
		t.Errorf("spans lost to absorbed bulk faults: %d", got)
	}
	ft := faulted.flaky["node0"]
	if ft == nil || ft.DroppedBulk() == 0 {
		t.Error("fault plan never exercised the bulk path")
	}
	if ft.Dropped() != 0 {
		t.Errorf("chan=bulk leaked %d failures onto the control channel", ft.Dropped())
	}
}

func TestEagerShippingMatchesOverTCP(t *testing.T) {
	tick := runTracedSession(t, true, &trace.Config{FlushWatermark: -1}, nil)
	eager := runTracedSession(t, true, &trace.Config{FlushWatermark: 16}, nil)
	if !bytes.Equal(timelineCSV(t, tick), timelineCSV(t, eager)) {
		t.Error("eager shipping changed the merged timeline over TCP")
	}
	if eager.listener.CtlShardFrames() != 0 {
		t.Error("eager shards leaked onto the control channel")
	}
}

// BenchmarkSamplingPathWithTracing measures a full traced session over TCP
// under heavy span load and reports the control-channel frame count per run —
// the payload the bulk channel exists to keep constant. Compare with
// BenchmarkSamplingPathUntraced: ctl-frames/op must match.
func BenchmarkSamplingPathWithTracing(b *testing.B) {
	benchSession(b, &trace.Config{})
}

func BenchmarkSamplingPathUntraced(b *testing.B) {
	benchSession(b, nil)
}

func benchSession(b *testing.B, tcfg *trace.Config) {
	var ctlFrames, bulkFrames int64
	for i := 0; i < b.N; i++ {
		s := runTracedSession(b, true, tcfg, nil)
		ctlFrames += s.listener.CtlFrames()
		bulkFrames += s.listener.BulkFrames()
		s.Close()
	}
	b.ReportMetric(float64(ctlFrames)/float64(b.N), "ctl-frames/op")
	b.ReportMetric(float64(bulkFrames)/float64(b.N), "bulk-frames/op")
}
