package core

import (
	"strings"
	"testing"

	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// pingPong registers a 2-rank program: rank 0 computes and sends, rank 1
// receives inside a traced procedure.
func pingPong(iters int, work sim.Duration) mpi.Program {
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < iters; i++ {
			if r.Rank() == 0 {
				r.Call("app.c", "produce", func() { r.Compute(work) })
				c.Send(r, nil, 25, mpi.Int, 1, 3)
			} else {
				r.Call("app.c", "consume", func() {
					c.Recv(r, nil, 25, mpi.Int, 0, 3)
				})
			}
		}
	}
}

func newTestSession(t *testing.T, opts Options) *Session {
	t.Helper()
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSessionCollectsSeries(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1})
	s.Register("pp", pingPong(200, 50*sim.Millisecond))
	sr := s.MustEnable("msg_bytes_sent", resource.WholeProgram())
	if err := s.Launch("pp", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 200 sends × 100 bytes.
	if got := sr.Total(); got != 20000 {
		t.Errorf("bytes sent total = %v, want 20000", got)
	}
	if len(sr.Procs()) != 2 { // both ranks report (receiver with zero deltas)
		t.Errorf("procs reporting sends = %v", sr.Procs())
	}
	if sr.Histogram().NumFilled() < 10 {
		t.Errorf("histogram filled bins = %d, want a time series", sr.Histogram().NumFilled())
	}
}

func TestSessionResourceDiscovery(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1})
	s.Register("pp", pingPong(50, 10*sim.Millisecond))
	if err := s.Launch("pp", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	h := s.FE.Hierarchy()
	for _, path := range []string{
		"/Machine/node0/pp{0}",
		"/Machine/node1/pp{1}",
		"/Code/app.c/produce",
		"/Code/app.c/consume",
		"/Code/liblammpi.so/MPI_Send",
		"/SyncObject/Message/comm-1",
		"/SyncObject/Message/comm-1/tag-3",
	} {
		if h.FindPath(path) == nil {
			t.Errorf("resource %s not discovered\n%s", path, h.Render())
		}
	}
	// Call graph: consume → MPI_Recv observed.
	callees := s.FE.Callees("consume")
	if len(callees) == 0 || callees[0] != "MPI_Recv" {
		t.Errorf("callees of consume = %v", callees)
	}
}

func TestSessionEnableMidRunAndDisable(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1})
	s.Register("pp", pingPong(400, 10*sim.Millisecond))
	if err := s.Launch("pp", 2, nil); err != nil {
		t.Fatal(err)
	}
	var sr interface{ Total() float64 }
	// Enable after ~1s of virtual time — dynamic instrumentation mid-run.
	s.Eng.At(sim.Time(1*sim.Second), func() {
		series, err := s.Enable("msgs_sent", resource.WholeProgram())
		if err != nil {
			t.Error(err)
			return
		}
		sr = series
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	total := sr.Total()
	if total <= 0 || total >= 400 {
		t.Errorf("mid-run enabled counter = %v, want partial count in (0,400)", total)
	}
}

func TestSessionTCPTransport(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.MPICH, Nodes: 2, CPUsPerNode: 1, UseTCP: true})
	s.Register("pp", pingPong(100, 10*sim.Millisecond))
	sr := s.MustEnable("msgs_sent", resource.WholeProgram())
	if err := s.Launch("pp", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sr.Total(); got != 100 {
		t.Errorf("msgs over TCP transport = %v, want 100", got)
	}
	if s.FE.Hierarchy().FindPath("/Machine/node0/pp{0}") == nil {
		t.Error("resource updates should flow over TCP")
	}
}

func TestSessionWindowDiscoveryAndRetirement(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1})
	s.Register("rma", func(r *mpi.Rank, _ []string) {
		win, _ := r.World().WinCreate(r, 64, 1, nil)
		if r.Rank() == 0 {
			win.SetName("MyWindow")
		}
		win.Fence(0)
		if r.Rank() == 0 {
			win.Put(nil, 8, mpi.Byte, 1, 0, 8, mpi.Byte)
		}
		win.Fence(0)
		win.Free()
	})
	if err := s.Launch("rma", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	h := s.FE.Hierarchy()
	winNode := h.FindPath("/SyncObject/Window/0-1")
	if winNode == nil {
		t.Fatalf("window resource missing:\n%s", h.Render())
	}
	if winNode.DisplayName() != "MyWindow" {
		t.Errorf("window display name = %q", winNode.DisplayName())
	}
	if !winNode.Retired() {
		t.Error("freed window should be retired")
	}
	// LAM quirk: the window's internal communicator surfaces under Message
	// with the window's name (Fig 23).
	found := false
	for _, c := range h.Find(resource.SyncObject, resource.Message).Children() {
		if c.DisplayName() == "MyWindow" {
			found = true
		}
	}
	if !found {
		t.Error("LAM window name should appear under /SyncObject/Message")
	}
}

func TestSessionSpawnDiscovery(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 3, CPUsPerNode: 1})
	s.Register("child", func(r *mpi.Rank, _ []string) {
		parent := r.GetParent()
		parent.Send(r, nil, 1, mpi.Byte, 0, 9)
	})
	s.Register("parent", func(r *mpi.Rank, _ []string) {
		inter, err := r.World().Spawn(r, "child", nil, 3, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		inter.SetName(r, "Parent&Child")
		for i := 0; i < 3; i++ {
			inter.Recv(r, nil, 1, mpi.Byte, mpi.AnySource, 9)
		}
	})
	if err := s.Launch("parent", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	h := s.FE.Hierarchy()
	// The resource hierarchy grew by the three child processes (Fig 23).
	count := 0
	h.Find(resource.Machine).Walk(func(n *resource.Node) {
		if strings.HasPrefix(n.Name(), "child{") {
			count++
		}
	})
	if count != 3 {
		t.Errorf("found %d child process resources, want 3\n%s", count, h.Render())
	}
	// The named intercommunicator is visible.
	named := false
	h.Find(resource.SyncObject, resource.Message).Walk(func(n *resource.Node) {
		if n.DisplayName() == "Parent&Child" {
			named = true
		}
	})
	if !named {
		t.Error("intercommunicator friendly name missing")
	}
}

func TestSessionUserMDL(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1, UserMDL: `
resourceList barrier_fns is procedure { "MPI_Barrier", "PMPI_Barrier" };
metric barrier_count {
    name "barrier_count";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    base is counter {
        foreach func in barrier_fns {
            append preinsn func.entry constrained (* barrier_count++; *)
        }
    }
}`})
	s.Register("b", func(r *mpi.Rank, _ []string) {
		for i := 0; i < 7; i++ {
			r.World().Barrier(r)
		}
	})
	sr := s.MustEnable("barrier_count", resource.WholeProgram())
	if err := s.Launch("b", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sr.Total(); got != 14 { // 7 per rank × 2 ranks
		t.Errorf("barrier_count = %v, want 14", got)
	}
}

func TestSessionPerProcessHistograms(t *testing.T) {
	s := newTestSession(t, Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1})
	s.Register("pp", pingPong(100, 20*sim.Millisecond))
	sr := s.MustEnable("sync_wait_inclusive", resource.WholeProgram())
	if err := s.Launch("pp", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The receiver (pp{1}) waits for the producer's compute: its sync time
	// dominates the producer's.
	h0, h1 := sr.ProcHistogram("pp{0}"), sr.ProcHistogram("pp{1}")
	if h0 == nil || h1 == nil {
		t.Fatalf("per-proc histograms missing: %v", sr.Procs())
	}
	if h1.Total() <= h0.Total() {
		t.Errorf("receiver sync %.3f should exceed sender sync %.3f", h1.Total(), h0.Total())
	}
	out := s.FE.RenderSeries(sr, 40)
	if !strings.Contains(out, "pp{1}") {
		t.Errorf("render missing per-proc lines:\n%s", out)
	}
}
