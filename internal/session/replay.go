package session

import (
	"fmt"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/trace"
)

// ReplaySource re-presents a recorded session through the DataSource
// interface. It embeds a datasource.View — the same query plane the live
// front end uses — and fills it by applying archived events instead of
// live daemon reports.
//
// Replay is driven by the read barriers the live run stamped into the
// stream: each Sync call applies events up to and including the next
// EvBarrier, so a consumer that calls Sync once per evaluation (the
// Performance Consultant does) sees, on its k-th evaluation, exactly the
// state the k-th live evaluation saw. Events recorded after the last
// barrier (end-of-run flushes, undelivered-span accounting) are applied
// by Drain.
type ReplaySource struct {
	*datasource.View

	events []Event
	pos    int

	// enables indexes the recorded enable outcomes by series key
	// (first occurrence wins): "" means the live enable succeeded, any
	// other value is the error the live daemons returned.
	enables map[string]string

	timeline *trace.Timeline
}

// ReplaySource must satisfy the same contract the live front end does.
var _ datasource.DataSource = (*ReplaySource)(nil)

// NewReplaySource builds a replay source over a loaded archive. A
// truncated archive (front end killed mid-run) replays up to its last
// complete read barrier: the tail past that barrier is a fragment of an
// evaluation window no live consumer ever observed, so it is dropped
// rather than presented as end-of-run state.
func NewReplaySource(a *Archive) *ReplaySource {
	v := datasource.NewView()
	v.NumBins = a.Header.NumBins
	v.BinWidth = a.Header.BinWidth
	events := a.Events
	if a.Truncated {
		last := 0
		for i := range events {
			if events[i].Kind == EvBarrier {
				last = i + 1
			}
		}
		events = events[:last]
	}
	rs := &ReplaySource{View: v, events: events, enables: make(map[string]string)}
	// The enable index is built from the FULL stream, trimmed or not: an
	// enable outcome is metadata about what the live session requested, so
	// a request that succeeded live still succeeds on a truncated replay —
	// it just reads whatever complete windows survive.
	for i := range a.Events {
		ev := &a.Events[i]
		if ev.Kind != EvEnable {
			continue
		}
		k := datasource.SeriesKey(ev.Metric, ev.Focus)
		if _, ok := rs.enables[k]; !ok {
			rs.enables[k] = ev.Err
		}
	}
	return rs
}

// EnsureTimeline creates the (initially empty) trace timeline, matching a
// live run that armed tracing: the live front end's timeline exists even
// when zero shards arrive, so a replay of a traced run must expose one
// too. Replay of an untraced run leaves Timeline nil — unless the archive
// holds shard events, which lazily create it.
func (rs *ReplaySource) EnsureTimeline() {
	if rs.timeline == nil {
		rs.timeline = trace.NewTimeline()
	}
}

// Timeline returns the replayed trace timeline (nil when the recorded
// session did not trace).
func (rs *ReplaySource) Timeline() *trace.Timeline { return rs.timeline }

// EnableMetric replays a metric enable. There are no daemons to
// instrument: a request the live session answered is answered identically
// (success registers the series, which subsequent Syncs fill from the
// recorded samples; failure returns the recorded error), and a request
// the live session never made cannot be served — the samples were never
// collected.
func (rs *ReplaySource) EnableMetric(metricName string, focus resource.Focus) (*datasource.Series, error) {
	if s := rs.View.Series(metricName, focus); s != nil {
		return s, nil
	}
	errMsg, ok := rs.enables[datasource.SeriesKey(metricName, focus)]
	if !ok {
		return nil, fmt.Errorf("session: metric %s at focus %s was not enabled in the recorded session", metricName, focus)
	}
	if errMsg != "" {
		return nil, fmt.Errorf("%s", errMsg)
	}
	s, _ := rs.View.RegisterSeries(metricName, focus)
	return s, nil
}

// DisableMetric is a no-op on replay: the recorded stream already
// reflects every disable the live session performed (the samples simply
// stop).
func (rs *ReplaySource) DisableMetric(metricName string, focus resource.Focus) {}

// Sync implements the DataSource read barrier: apply archived events up
// to and including the next recorded barrier.
func (rs *ReplaySource) Sync() {
	for rs.pos < len(rs.events) {
		ev := &rs.events[rs.pos]
		rs.pos++
		if ev.Kind == EvBarrier {
			return
		}
		rs.apply(ev)
	}
}

// Drain applies every remaining event — the tail recorded after the last
// consumer barrier (end-of-run trace flushes, undelivered-span counts,
// final sample batches). Call it after the replay clock finishes.
func (rs *ReplaySource) Drain() {
	for rs.pos < len(rs.events) {
		rs.apply(&rs.events[rs.pos])
		rs.pos++
	}
}

func (rs *ReplaySource) apply(ev *Event) {
	switch ev.Kind {
	case EvSamples:
		rs.View.ApplySamples(ev.Samples)
	case EvUpdate:
		rs.View.ApplyUpdate(ev.Update)
	case EvStale:
		rs.View.MarkDaemonStale(ev.Daemon, ev.Time)
	case EvShard:
		rs.EnsureTimeline()
		rs.timeline.Ingest(ev.Shard)
	case EvUndelivered:
		rs.EnsureTimeline()
		rs.timeline.NoteUndelivered(ev.Proc, ev.N)
	case EvGap:
		rs.View.AddGap(ev.Gap)
	case EvEnable, EvBarrier:
		// EvEnable is consumed through the prebuilt index; a stray
		// barrier here (inside Drain) carries no state.
	}
}
