// Package session records and replays the analysis plane's event stream.
//
// A live run attaches a Recorder to the front end (it implements
// datasource.Recorder); every report the front end ingests — sample
// batches, resource updates, metric enables, liveness verdicts, trace
// shards, undelivered-span accounting — plus the Consultant's read
// barriers is captured in order into a versioned on-disk archive. A
// ReplaySource (replay.go) then re-presents the archive through the same
// DataSource interface the live front end implements, so the Performance
// Consultant can be re-run offline and reproduce the live findings
// byte for byte.
//
// Archive format (see REPLAY.md):
//
//	6 bytes  magic "PPARCH"
//	gob      Header{Version, NumEvents, NumBins, BinWidth, Meta, Extra}
//	gob      Event × NumEvents
//
// The header carries the event count so truncation — even truncation that
// happens to land exactly on an event boundary — is detected at load time
// instead of silently shortening the session.
package session

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// magic identifies a pperf session archive.
var magic = []byte("PPARCH")

// Version is the archive format version this build reads and writes.
// Bump it on any incompatible change to Header or Event; Load refuses
// archives whose version differs, with an error naming both versions.
const Version = 1

// Header is the archive preamble.
type Header struct {
	// Version is the format version the archive was written with.
	Version int
	// NumEvents is the number of Event records following the header; a
	// stream with fewer is truncated, one with more is corrupt.
	NumEvents int
	// NumBins and BinWidth mirror the front end's histogram configuration
	// so a replayed View folds samples into identical bins.
	NumBins  int
	BinWidth sim.Duration
	// Meta holds free-form descriptive pairs (program name, seed, …) for
	// humans and tools that inspect archives without replaying them.
	Meta map[string]string
	// Extra is an opaque payload for the recording harness; pperfmark
	// stores the gob-encoded run parameters needed to re-drive the
	// Consultant here.
	Extra []byte
}

// EventKind discriminates the Event union.
type EventKind int

const (
	// EvSamples is a batch of sampled metric deltas.
	EvSamples EventKind = iota
	// EvUpdate is one resource-update report.
	EvUpdate
	// EvEnable records a metric-enable outcome (Err empty on success).
	EvEnable
	// EvStale is a liveness verdict: the named daemon went stale at Time.
	EvStale
	// EvShard is one streamed trace shard.
	EvShard
	// EvUndelivered is end-of-run undelivered-span accounting for Proc.
	EvUndelivered
	// EvBarrier is a consumer read barrier (one per Consultant
	// evaluation); replay applies events up to the next barrier so the
	// k-th replayed evaluation sees exactly the state the k-th live
	// evaluation saw.
	EvBarrier
	// EvGap is one unmeasured outage window recorded by the daemon
	// supervisor (death → re-attach of the next incarnation).
	EvGap
)

func (k EventKind) String() string {
	switch k {
	case EvSamples:
		return "samples"
	case EvUpdate:
		return "update"
	case EvEnable:
		return "enable"
	case EvStale:
		return "stale"
	case EvShard:
		return "shard"
	case EvUndelivered:
		return "undelivered"
	case EvBarrier:
		return "barrier"
	case EvGap:
		return "gap"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one record of the analysis-plane stream. Only the fields for
// its Kind are meaningful; the flat union keeps the gob stream to a
// single concrete type.
type Event struct {
	Kind EventKind

	Samples []datasource.Sample // EvSamples
	Update  datasource.Update   // EvUpdate

	Metric string         // EvEnable
	Focus  resource.Focus // EvEnable
	Err    string         // EvEnable: daemon refusal message, "" = success

	Daemon string   // EvStale
	Time   sim.Time // EvStale

	Shard trace.Shard // EvShard

	Proc string // EvUndelivered
	N    int64  // EvUndelivered

	Gap datasource.Gap // EvGap
}

// Archive is a fully loaded session recording.
type Archive struct {
	Header Header
	Events []Event
	// Truncated marks an archive whose stream ended before the header's
	// declared event count (front end killed mid-run): Events holds only
	// the complete prefix. Replay proceeds up to the last complete read
	// barrier; see TruncationNote.
	Truncated bool
}

// TruncationNote returns the human-readable replay warning for a truncated
// archive, or "" when the archive is complete.
func (a *Archive) TruncationNote() string {
	if !a.Truncated {
		return ""
	}
	return fmt.Sprintf("[replay truncated after %d events]", len(a.Events))
}

// Sink is the full recording surface a session harness drives: the
// datasource event hooks plus header finalization and accounting. Two
// implementations exist — the in-memory Recorder below (buffer
// everything, write on Save) and perfdb's streaming recorder (bounded
// memory, chunks flushed to disk as the run progresses). core.Options
// and pperfmark.RunOptions accept either.
type Sink interface {
	datasource.Recorder
	// SetHistogram records the front end's histogram configuration so
	// replay folds samples into identical bins.
	SetHistogram(numBins int, binWidth sim.Duration)
	// SetMeta stores one descriptive header key/value pair.
	SetMeta(k, v string)
	// SetExtra stores the harness's opaque run-description payload.
	SetExtra(b []byte)
	// EventCount returns the number of events captured so far.
	EventCount() int
}

// Recorder buffers the event stream in memory and writes the archive on
// Save. It implements datasource.Recorder; attach it with
// FrontEnd.SetRecorder (core.Options.Recorder does this) before Launch so
// the stream is complete.
type Recorder struct {
	mu     sync.Mutex
	header Header
	events []Event
}

var _ Sink = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{header: Header{Version: Version, Meta: map[string]string{}}}
}

// SetHistogram records the front end's histogram configuration so replay
// folds into identical bins.
func (r *Recorder) SetHistogram(numBins int, binWidth sim.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.header.NumBins, r.header.BinWidth = numBins, binWidth
}

// SetMeta stores one descriptive key/value pair in the header.
func (r *Recorder) SetMeta(k, v string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.header.Meta[k] = v
}

// SetExtra stores the harness's opaque payload in the header.
func (r *Recorder) SetExtra(b []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.header.Extra = b
}

// EventCount returns the number of events captured so far.
func (r *Recorder) EventCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

func (r *Recorder) append(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// RecordSamples captures a sample batch. The batch is copied: the caller
// keeps ownership of its slice.
func (r *Recorder) RecordSamples(batch []datasource.Sample) {
	cp := make([]datasource.Sample, len(batch))
	copy(cp, batch)
	r.append(Event{Kind: EvSamples, Samples: cp})
}

// RecordUpdate captures one resource-update report.
func (r *Recorder) RecordUpdate(u datasource.Update) {
	r.append(Event{Kind: EvUpdate, Update: u})
}

// RecordEnable captures a metric-enable outcome.
func (r *Recorder) RecordEnable(metricName string, focus resource.Focus, errMsg string) {
	r.append(Event{Kind: EvEnable, Metric: metricName, Focus: focus, Err: errMsg})
}

// RecordStale captures a liveness verdict.
func (r *Recorder) RecordStale(daemonName string, t sim.Time) {
	r.append(Event{Kind: EvStale, Daemon: daemonName, Time: t})
}

// RecordGap captures one unmeasured outage window.
func (r *Recorder) RecordGap(g datasource.Gap) {
	r.append(Event{Kind: EvGap, Gap: g})
}

// RecordShard captures one trace shard.
func (r *Recorder) RecordShard(sh trace.Shard) {
	r.append(Event{Kind: EvShard, Shard: sh})
}

// RecordUndelivered captures undelivered-span accounting.
func (r *Recorder) RecordUndelivered(proc string, n int64) {
	r.append(Event{Kind: EvUndelivered, Proc: proc, N: n})
}

// RecordBarrier stamps a consumer read barrier into the stream.
func (r *Recorder) RecordBarrier() {
	r.append(Event{Kind: EvBarrier})
}

// Archive snapshots the recording as an in-memory archive (the events
// slice is shared, not copied: do not keep recording into r afterwards).
func (r *Recorder) Archive() *Archive {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.header
	h.NumEvents = len(r.events)
	return &Archive{Header: h, Events: r.events}
}

// Encode serializes the archive to w.
func (r *Recorder) Encode(w io.Writer) error {
	a := r.Archive()
	if _, err := w.Write(magic); err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&a.Header); err != nil {
		return fmt.Errorf("session: encode header: %w", err)
	}
	for i := range a.Events {
		if err := enc.Encode(&a.Events[i]); err != nil {
			return fmt.Errorf("session: encode event %d: %w", i, err)
		}
	}
	return nil
}

// Save writes the archive to path (atomically, via a temp file rename).
func (r *Recorder) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Read parses a session archive from rd. It validates the magic, the
// format version, and the event count, returning descriptive errors (not
// panics) for truncated, corrupt, or incompatible input.
func Read(rd io.Reader) (*Archive, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(rd, got); err != nil {
		return nil, fmt.Errorf("session: not a pperf session archive (short file: %v)", err)
	}
	if !bytes.Equal(got, magic) {
		return nil, errors.New("session: not a pperf session archive (bad magic)")
	}
	dec := gob.NewDecoder(rd)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("session: corrupt archive header: %v", err)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("session: archive format version %d; this build reads version %d", h.Version, Version)
	}
	if h.NumEvents < 0 {
		return nil, fmt.Errorf("session: corrupt archive header: negative event count %d", h.NumEvents)
	}
	a := &Archive{Header: h, Events: make([]Event, 0, h.NumEvents)}
	for i := 0; i < h.NumEvents; i++ {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// The front end died mid-run: the complete prefix is
				// still a faithful (if shorter) session. Surface it with
				// the truncation mark instead of refusing the file.
				a.Truncated = true
				return a, nil
			}
			return nil, fmt.Errorf("session: corrupt archive at event %d of %d: %v", i, h.NumEvents, err)
		}
		a.Events = append(a.Events, ev)
	}
	// Anything after the declared events means the count lies (or two
	// archives were concatenated); refuse rather than guess.
	var extra Event
	if err := dec.Decode(&extra); err == nil {
		return nil, fmt.Errorf("session: corrupt archive: data beyond the declared %d events", h.NumEvents)
	} else if err != io.EOF {
		return nil, fmt.Errorf("session: corrupt archive trailer: %v", err)
	}
	return a, nil
}

// Load reads a session archive from path.
func Load(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
