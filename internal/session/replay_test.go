package session

import (
	"strings"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/trace"
)

func TestReplaySyncAppliesUpToBarrier(t *testing.T) {
	f := resource.WholeProgram()
	r := NewRecorder()
	r.RecordEnable("m", f, "")
	r.RecordSamples([]datasource.Sample{{Metric: "m", Focus: f, Proc: "p0", Time: 1, Delta: 3}})
	r.RecordBarrier()
	r.RecordSamples([]datasource.Sample{{Metric: "m", Focus: f, Proc: "p0", Time: 2, Delta: 4}})
	r.RecordBarrier()
	r.RecordSamples([]datasource.Sample{{Metric: "m", Focus: f, Proc: "p0", Time: 3, Delta: 5}})

	rs := NewReplaySource(r.Archive())
	sr, err := rs.EnableMetric("m", f)
	if err != nil {
		t.Fatal(err)
	}
	rs.Sync()
	if sr.Total() != 3 {
		t.Errorf("after barrier 1: total = %v, want 3", sr.Total())
	}
	rs.Sync()
	if sr.Total() != 7 {
		t.Errorf("after barrier 2: total = %v, want 7", sr.Total())
	}
	// The tail past the last barrier is Drain's job.
	rs.Sync()
	if sr.Total() != 12 {
		t.Errorf("final sync: total = %v, want 12", sr.Total())
	}
	rs.Drain() // idempotent once exhausted
	if sr.Total() != 12 {
		t.Errorf("drain after exhaustion: total = %v", sr.Total())
	}
}

// A truncated archive replays only up to its last complete read barrier:
// the tail fragment past it belongs to an evaluation window no live
// consumer ever observed, and must not leak into replayed state — not even
// through Drain.
func TestReplayTruncatedArchiveStopsAtLastBarrier(t *testing.T) {
	f := resource.WholeProgram()
	r := NewRecorder()
	r.RecordEnable("m", f, "")
	r.RecordSamples([]datasource.Sample{{Metric: "m", Focus: f, Proc: "p0", Time: 1, Delta: 3}})
	r.RecordBarrier()
	r.RecordSamples([]datasource.Sample{{Metric: "m", Focus: f, Proc: "p0", Time: 2, Delta: 4}})
	r.RecordBarrier()
	r.RecordSamples([]datasource.Sample{{Metric: "m", Focus: f, Proc: "p0", Time: 3, Delta: 5}})

	a := r.Archive()
	a.Truncated = true // as Read flags a cut stream
	rs := NewReplaySource(a)
	sr, err := rs.EnableMetric("m", f)
	if err != nil {
		t.Fatal(err)
	}
	rs.Sync()
	rs.Sync()
	rs.Drain()
	// The post-barrier Delta 5 fragment is dropped; the two complete
	// windows replay.
	if sr.Total() != 7 {
		t.Errorf("total = %v, want 7 (tail fragment replayed?)", sr.Total())
	}
}

// A truncated archive with no complete barrier replays nothing: every
// recorded event belongs to the first, unfinished evaluation window. The
// enable index still serves (metadata, not window state), so the consumer
// fails on absent data rather than on a refused enable.
func TestReplayTruncatedArchiveNoBarrier(t *testing.T) {
	f := resource.WholeProgram()
	r := NewRecorder()
	r.RecordEnable("m", f, "")
	r.RecordSamples([]datasource.Sample{{Metric: "m", Focus: f, Proc: "p0", Time: 1, Delta: 3}})

	a := r.Archive()
	a.Truncated = true
	rs := NewReplaySource(a)
	sr, err := rs.EnableMetric("m", f)
	if err != nil {
		t.Fatal(err)
	}
	rs.Sync()
	rs.Drain()
	if sr.Total() != 0 {
		t.Errorf("total = %v, want 0 (unfinished window replayed)", sr.Total())
	}
}

func TestReplayEnableSemantics(t *testing.T) {
	f := resource.WholeProgram()
	r := NewRecorder()
	r.RecordEnable("good", f, "")
	r.RecordEnable("refused", f, "daemon node1: unknown metric")
	rs := NewReplaySource(r.Archive())

	if _, err := rs.EnableMetric("good", f); err != nil {
		t.Errorf("recorded success replayed as error: %v", err)
	}
	// Re-enabling an already-registered series succeeds, as live.
	if _, err := rs.EnableMetric("good", f); err != nil {
		t.Errorf("second enable: %v", err)
	}
	_, err := rs.EnableMetric("refused", f)
	if err == nil || err.Error() != "daemon node1: unknown metric" {
		t.Errorf("recorded failure replayed as %v", err)
	}
	_, err = rs.EnableMetric("never_enabled", f)
	if err == nil || !strings.Contains(err.Error(), "not enabled in the recorded session") {
		t.Errorf("unrecorded enable: err = %v", err)
	}
	// DisableMetric is a recorded-stream no-op; it must not unregister.
	rs.DisableMetric("good", f)
	if rs.Series("good", f) == nil {
		t.Error("disable dropped the replayed series")
	}
}

func TestReplayTimelinePresence(t *testing.T) {
	r := NewRecorder()
	r.RecordBarrier()
	rs := NewReplaySource(r.Archive())
	if rs.Timeline() != nil {
		t.Error("untraced archive grew a timeline")
	}
	r.RecordShard(trace.Shard{Daemon: "paradynd@node0", Proc: "p0", Node: "node0"})
	r.RecordUndelivered("p0", 2)
	rs = NewReplaySource(r.Archive())
	rs.Drain()
	tl := rs.Timeline()
	if tl == nil {
		t.Fatal("shard events did not create the timeline")
	}
	if tl.Undelivered() != 2 {
		t.Errorf("undelivered = %d, want 2", tl.Undelivered())
	}
}
