package session

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// testRecorder returns a recorder holding one event of every kind.
func testRecorder() *Recorder {
	r := NewRecorder()
	r.SetHistogram(100, 50*sim.Millisecond)
	r.SetMeta("program", "small-messages")
	r.SetExtra([]byte{1, 2, 3})
	f := resource.WholeProgram()
	r.RecordEnable("msg_bytes_sent", f, "")
	r.RecordUpdate(datasource.Update{Kind: datasource.UpAddResource, Path: "/Machine/node0/p0", Time: 1})
	r.RecordSamples([]datasource.Sample{{Metric: "msg_bytes_sent", Focus: f, Proc: "p0", Time: 2, Delta: 5}})
	r.RecordShard(trace.Shard{Daemon: "paradynd@node0", Proc: "p0", Node: "node0"})
	r.RecordBarrier()
	r.RecordStale("paradynd@node1", sim.Time(3*sim.Second))
	r.RecordUndelivered("p1", 7)
	return r
}

func TestArchiveRoundTrip(t *testing.T) {
	r := testRecorder()
	path := filepath.Join(t.TempDir(), "s.pparch")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	a, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Header.Version != Version || a.Header.NumBins != 100 || a.Header.BinWidth != 50*sim.Millisecond {
		t.Errorf("header = %+v", a.Header)
	}
	if a.Header.Meta["program"] != "small-messages" || !bytes.Equal(a.Header.Extra, []byte{1, 2, 3}) {
		t.Errorf("meta/extra = %+v", a.Header)
	}
	want := []EventKind{EvEnable, EvUpdate, EvSamples, EvShard, EvBarrier, EvStale, EvUndelivered}
	if len(a.Events) != len(want) {
		t.Fatalf("events = %d, want %d", len(a.Events), len(want))
	}
	for i, k := range want {
		if a.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, a.Events[i].Kind, k)
		}
	}
	if a.Events[2].Samples[0].Delta != 5 {
		t.Errorf("sample round-trip: %+v", a.Events[2].Samples[0])
	}
}

func TestRecordSamplesCopiesBatch(t *testing.T) {
	r := NewRecorder()
	batch := []datasource.Sample{{Metric: "m", Proc: "p0", Delta: 1}}
	r.RecordSamples(batch)
	batch[0].Delta = 99 // caller reuses its buffer
	if got := r.Archive().Events[0].Samples[0].Delta; got != 1 {
		t.Errorf("recorded delta = %v; recorder aliased the caller's batch", got)
	}
}

// encodeArchive serializes the test recorder's archive to bytes.
func encodeArchive(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := testRecorder().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestArchiveRobustness(t *testing.T) {
	full := encodeArchive(t)

	versioned := func(v int) []byte {
		var buf bytes.Buffer
		buf.Write(magic)
		if err := gob.NewEncoder(&buf).Encode(&Header{Version: v}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"empty file", nil, "not a pperf session archive"},
		{"short magic", full[:3], "not a pperf session archive"},
		{"bad magic", append([]byte("NOTPPA"), full[6:]...), "bad magic"},
		{"header cut mid-gob", full[:len(magic)+4], "corrupt archive header"},
		{"garbage header", append(append([]byte{}, magic...), 0xde, 0xad, 0xbe, 0xef), "corrupt archive header"},
		{"future version", versioned(Version + 41), "version 42"},
		{"trailing garbage", append(append([]byte{}, full...), 1, 2, 3), "corrupt archive trailer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A decode must fail descriptively, never panic.
			a, err := Read(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("Read accepted %s (header %+v, %d events)", tc.name, a.Header, len(a.Events))
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestTruncatedMidEvent verifies that a stream cut in the middle of an
// event record still loads: the complete prefix is kept and the archive is
// flagged Truncated (the front end died mid-run; the prefix is a faithful,
// if shorter, session).
func TestTruncatedMidEvent(t *testing.T) {
	full := encodeArchive(t)
	a, err := Read(bytes.NewReader(full[:len(full)-15]))
	if err != nil {
		t.Fatalf("mid-event truncation refused: %v", err)
	}
	if !a.Truncated {
		t.Error("archive not flagged Truncated")
	}
	if len(a.Events) >= a.Header.NumEvents {
		t.Errorf("events = %d, want fewer than declared %d", len(a.Events), a.Header.NumEvents)
	}
	want := "[replay truncated after"
	if note := a.TruncationNote(); !strings.Contains(note, want) {
		t.Errorf("TruncationNote() = %q, want substring %q", note, want)
	}
}

// TestTruncationAtEventBoundary covers the case a bare gob stream cannot
// detect: the file ends cleanly but early. The header's event count catches
// it, and the archive loads as a flagged-truncated prefix.
func TestTruncationAtEventBoundary(t *testing.T) {
	full := encodeArchive(t)
	// Build a prefix that decodes some-but-not-all events with a clean EOF
	// by re-encoding a shorter event stream under the full header.
	r := testRecorder()
	a := r.Archive()
	var buf bytes.Buffer
	buf.Write(magic)
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&a.Header); err != nil { // claims len(a.Events) events
		t.Fatal(err)
	}
	for i := 0; i < len(a.Events)-2; i++ {
		if err := enc.Encode(&a.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("boundary truncation refused: %v", err)
	}
	if !got.Truncated {
		t.Error("archive not flagged Truncated")
	}
	if len(got.Events) != len(a.Events)-2 {
		t.Errorf("events = %d, want %d", len(got.Events), len(a.Events)-2)
	}
	if len(buf.Bytes()) >= len(full) {
		t.Fatal("test bug: boundary-truncated stream is not shorter than the full one")
	}
	// A complete archive must NOT be flagged.
	whole, err := Read(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if whole.Truncated || whole.TruncationNote() != "" {
		t.Errorf("complete archive flagged truncated (note %q)", whole.TruncationNote())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.pparch")); !os.IsNotExist(err) {
		t.Errorf("err = %v, want not-exist", err)
	}
}
