package faults

// Random plan generation for chaos testing: GenPlan draws a syntactically
// valid, seeded fault plan from the full clause space — every verb, every
// option, restart budgets included — so the chaos harness (make chaos) can
// hammer the resilience stack with schedules nobody hand-wrote. Equal
// generator seeds produce equal plans, so a failing chaos case is
// reproducible from its seed alone.

import (
	"fmt"

	"pperf/internal/sim"
)

// genSeedSalt decorrelates the generator's RNG stream from the plan's own
// Seed knob (both derive from the chaos case number).
const genSeedSalt = 0x6368616f // "chao"

// GenPlan deterministically generates a random fault plan from seed. The
// generated plan always parses (it is rendered through the same clause
// grammar Parse reads), targets only the given node names, and schedules
// one to maxFaults faults inside the first horizon of virtual time.
func GenPlan(seed uint64, nodes []string, maxFaults int, horizon sim.Duration) *Plan {
	rng := sim.NewRNG(seed ^ genSeedSalt)
	p := New()
	p.Seed = seed

	// Resilience knobs: occasionally stretch or disable detection to cover
	// the no-liveness paths.
	switch rng.Intn(4) {
	case 0:
		p.Heartbeat = 0 // no liveness monitor at all
	case 1:
		p.Heartbeat = sim.Duration(50+rng.Intn(400)) * sim.Millisecond
		p.Detect = 2 * p.Heartbeat
	}
	if rng.Intn(2) == 0 {
		p.Restarts = 1 + rng.Intn(3)
	}

	pick := func() string { return nodes[rng.Intn(len(nodes))] }
	pair := func() (string, string) {
		a := rng.Intn(len(nodes))
		b := (a + 1 + rng.Intn(len(nodes)-1)) % len(nodes)
		return nodes[a], nodes[b]
	}

	// Fault times land on millisecond boundaries from 10ms up to the
	// horizon: early enough to hit attach and warm-up paths, never at the
	// exact t=0 instant before anything has launched.
	horizonMs := int(horizon / sim.Millisecond)
	n := 1 + rng.Intn(maxFaults)
	for i := 0; i < n; i++ {
		f := Fault{At: sim.Duration(10+rng.Intn(horizonMs-10)) * sim.Millisecond}
		switch rng.Intn(7) {
		case 0:
			f.Kind, f.Node = KillNode, pick()
		case 1:
			f.Kind, f.Node = CrashDaemon, pick()
			f.Restartable = rng.Intn(2) == 0
		case 2:
			f.Kind, f.Node = HangDaemon, pick()
			f.For = sim.Duration(10+rng.Intn(900)) * sim.Millisecond
		case 3:
			f.Kind = SeverLink
			f.Node, f.Peer = pair()
			f.For = sim.Duration(10+rng.Intn(500)) * sim.Millisecond
		case 4:
			f.Kind = DegradeLink
			f.Node, f.Peer = pair()
			f.Lat = 1 + float64(rng.Intn(20))
			if rng.Intn(2) == 0 {
				f.BW = 0.1 + 0.4*rng.Float64()
			}
		case 5:
			f.Kind, f.Node = DelayAttach, pick()
			f.For = sim.Duration(10+rng.Intn(400)) * sim.Millisecond
		default:
			f.Kind, f.Node = DropTransport, pick()
			f.N = 1 + rng.Intn(8)
			f.Chan = []string{"", ChanCtl, ChanBulk, ChanBoth, ChanSync}[rng.Intn(5)]
		}
		p.Faults = append(p.Faults, f)
	}
	return p
}

// MustGenParse is GenPlan plus a round-trip through the text grammar — the
// generated plan rendered by String and re-read by Parse. It panics if the
// round trip fails, which would mean the generator and the grammar have
// diverged (a chaos-harness bug, not a chaos finding).
func MustGenParse(seed uint64, nodes []string, maxFaults int, horizon sim.Duration) *Plan {
	g := GenPlan(seed, nodes, maxFaults, horizon)
	p, err := Parse(g.String())
	if err != nil {
		panic(fmt.Sprintf("faults: generated plan %q does not parse: %v", g.String(), err))
	}
	return p
}
