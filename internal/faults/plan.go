// Package faults implements deterministic fault injection for the simulated
// cluster and tool. A Plan is a seedable schedule of faults expressed in
// virtual time — node crashes, daemon crashes and hangs, link degradation,
// severed links, delayed daemon attach, transport failures — parsed from a
// compact text format (the --faults flag). Arm schedules the plan on the
// simulation engine; because everything keys off virtual time and the seeded
// RNG, a faulted run is exactly reproducible.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pperf/internal/sim"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// KillNode terminates every application process and the tool daemon on a
	// node at time T — the hardware-failure case. The plan's Detect timeout
	// later aborts the (now un-completable) MPI job, as a real failure
	// detector would.
	KillNode Kind = iota
	// CrashDaemon kills only the tool daemon; the application keeps running
	// unobserved (coverage loss without job loss).
	CrashDaemon
	// HangDaemon stalls the daemon for a duration; it buffers nothing while
	// hung and resumes (replaying its outbox) afterwards.
	HangDaemon
	// SeverLink takes a cluster link down for a duration; traffic queues
	// until the link returns.
	SeverLink
	// DegradeLink multiplies a link's latency and/or bandwidth factors.
	DegradeLink
	// DelayAttach postpones a daemon's adoption of its node's processes —
	// a slow tool startup; early execution goes unmeasured.
	DelayAttach
	// DropTransport makes the daemon's next n report sends fail, exercising
	// retry/backoff (TCP) or the outbox (in-process).
	DropTransport
)

var kindNames = map[Kind]string{
	KillNode:      "kill-node",
	CrashDaemon:   "crash-daemon",
	HangDaemon:    "hang-daemon",
	SeverLink:     "sever-link",
	DegradeLink:   "degrade-link",
	DelayAttach:   "delay-attach",
	DropTransport: "drop-transport",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Transport channels a DropTransport fault can target. The empty string is
// equivalent to ChanCtl, keeping pre-bulk-channel plan texts meaning what
// they always meant (shards moved to their own channel, so failing the
// control channel exercises exactly the sampling path those plans tested).
// ChanSync targets the PerfDB store-sync channel (`pperf db push/pull`);
// it is interpreted by the sync client, not the in-run injector, which
// ignores it.
const (
	ChanCtl  = "ctl"
	ChanBulk = "bulk"
	ChanBoth = "both"
	ChanSync = "sync"
)

// Fault is one scheduled fault.
type Fault struct {
	At   sim.Duration // virtual-time offset from the start of the run
	Kind Kind
	Node string       // target node (all kinds; first link endpoint, or "*" for all links)
	Peer string       // second link endpoint (SeverLink, DegradeLink)
	For  sim.Duration // duration (HangDaemon, SeverLink, DelayAttach)
	Lat  float64      // latency multiplier (DegradeLink; 0 = unchanged)
	BW   float64      // bandwidth multiplier (DegradeLink; 0 = unchanged)
	N    int          // failure count (DropTransport)
	Chan string       // target channel (DropTransport): ctl | bulk | both ("" = ctl)
	// Restartable marks a CrashDaemon as recoverable: the front end's
	// supervisor (when the plan arms one with restarts=K) may respawn a
	// fresh daemon incarnation instead of treating the data loss as
	// permanent.
	Restartable bool
}

// Plan is a full fault schedule plus the resilience knobs it implies.
type Plan struct {
	// Seed drives every RNG the fault machinery touches (retry jitter).
	Seed uint64
	// Detect is the failure-detection timeout: how long after last contact a
	// daemon is presumed dead, and how long after a node kill the job is
	// aborted.
	Detect sim.Duration
	// Heartbeat is the daemon heartbeat interval armed by the plan.
	Heartbeat sim.Duration
	// Restarts bounds how many times the supervisor may respawn any one
	// daemon (0 = no supervisor; today's permanent-loss semantics).
	Restarts int
	Faults   []Fault
}

// Defaults for the plan knobs when the plan text doesn't set them.
const (
	DefaultDetect    = 500 * sim.Millisecond
	DefaultHeartbeat = 250 * sim.Millisecond
	DefaultSeed      = 1
)

// New returns an empty plan with default knobs — the base for
// programmatic construction.
func New() *Plan {
	return &Plan{Seed: DefaultSeed, Detect: DefaultDetect, Heartbeat: DefaultHeartbeat}
}

// Parse reads the fault-plan text format: semicolon-separated clauses.
//
//	seed=7; detect=500ms; hb=250ms;
//	t=2s kill-node node1;
//	t=1s crash-daemon node0;
//	t=1s hang-daemon node0 for=500ms;
//	t=1s sever-link node0:node1 for=1s;
//	t=1s degrade-link node0:node1 lat=10 bw=0.1;
//	t=0s delay-attach node2 for=100ms;
//	t=1.5s drop-transport node0 n=3;
//	t=1.5s drop-transport node0 n=3 chan=bulk
//
// A link endpoint pair of "*" targets every link. drop-transport's chan=
// option picks the channel to fail: ctl (samples/updates — the default),
// bulk (trace shards), both, or sync (the PerfDB store-sync channel,
// interpreted by `db push/pull` rather than the in-run injector).
// Whitespace is free; clauses may appear in any order.
func Parse(text string) (*Plan, error) {
	p := New()
	for _, clause := range strings.Split(text, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.parseClause(clause); err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
	}
	return p, nil
}

func (p *Plan) parseClause(clause string) error {
	fields := strings.Fields(clause)
	kv := func(f, key string) (string, bool) {
		if strings.HasPrefix(f, key+"=") {
			return f[len(key)+1:], true
		}
		return "", false
	}

	// Knob clauses.
	if len(fields) == 1 {
		if v, ok := kv(fields[0], "seed"); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed: %w", err)
			}
			p.Seed = n
			return nil
		}
		if v, ok := kv(fields[0], "detect"); ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("bad detect: %w", err)
			}
			p.Detect = d
			return nil
		}
		if v, ok := kv(fields[0], "hb"); ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("bad hb: %w", err)
			}
			p.Heartbeat = d
			return nil
		}
		if v, ok := kv(fields[0], "restarts"); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("bad restarts %q: want a non-negative integer", v)
			}
			p.Restarts = n
			return nil
		}
	}

	// Fault clauses: t=DUR <verb> <target> [opts...]
	if len(fields) < 3 {
		return fmt.Errorf("want t=DUR verb target")
	}
	tv, ok := kv(fields[0], "t")
	if !ok {
		return fmt.Errorf("want t=DUR first, got %q", fields[0])
	}
	at, err := time.ParseDuration(tv)
	if err != nil {
		return fmt.Errorf("bad t: %w", err)
	}
	f := Fault{At: at}

	verb := fields[1]
	var found bool
	for k, name := range kindNames {
		if name == verb {
			f.Kind, found = k, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown fault %q", verb)
	}

	target := fields[2]
	switch f.Kind {
	case SeverLink, DegradeLink:
		if target == "*" {
			f.Node, f.Peer = "*", "*"
		} else {
			a, b, ok := strings.Cut(target, ":")
			if !ok || a == "" || b == "" {
				return fmt.Errorf("link target must be A:B or *, got %q", target)
			}
			f.Node, f.Peer = a, b
		}
	default:
		f.Node = target
	}

	for _, opt := range fields[3:] {
		switch {
		case strings.HasPrefix(opt, "for="):
			d, err := time.ParseDuration(opt[4:])
			if err != nil {
				return fmt.Errorf("bad for: %w", err)
			}
			f.For = d
		case strings.HasPrefix(opt, "lat="):
			v, err := strconv.ParseFloat(opt[4:], 64)
			if err != nil {
				return fmt.Errorf("bad lat: %w", err)
			}
			f.Lat = v
		case strings.HasPrefix(opt, "bw="):
			v, err := strconv.ParseFloat(opt[3:], 64)
			if err != nil {
				return fmt.Errorf("bad bw: %w", err)
			}
			f.BW = v
		case strings.HasPrefix(opt, "n="):
			v, err := strconv.Atoi(opt[2:])
			if err != nil {
				return fmt.Errorf("bad n: %w", err)
			}
			f.N = v
		case strings.HasPrefix(opt, "chan="):
			v := opt[5:]
			if v != ChanCtl && v != ChanBulk && v != ChanBoth && v != ChanSync {
				return fmt.Errorf("bad chan %q: want ctl, bulk, both or sync", v)
			}
			f.Chan = v
		case opt == "restartable":
			f.Restartable = true
		default:
			return fmt.Errorf("unknown option %q", opt)
		}
	}

	// Per-kind requirements.
	switch f.Kind {
	case HangDaemon, SeverLink, DelayAttach:
		if f.For <= 0 {
			return fmt.Errorf("%s needs for=DUR", f.Kind)
		}
	case DegradeLink:
		if f.Lat == 0 && f.BW == 0 {
			return fmt.Errorf("degrade-link needs lat= and/or bw=")
		}
	case DropTransport:
		if f.N <= 0 {
			return fmt.Errorf("drop-transport needs n=K > 0")
		}
	}
	if f.Chan != "" && f.Kind != DropTransport {
		return fmt.Errorf("chan= only applies to drop-transport")
	}
	if f.Restartable && f.Kind != CrashDaemon {
		return fmt.Errorf("restartable only applies to crash-daemon")
	}

	p.Faults = append(p.Faults, f)
	return nil
}

// String renders the plan back into the Parse format (canonical order:
// knobs first, faults in plan order).
func (p *Plan) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed),
		fmt.Sprintf("detect=%v", p.Detect),
		fmt.Sprintf("hb=%v", p.Heartbeat))
	if p.Restarts > 0 {
		parts = append(parts, fmt.Sprintf("restarts=%d", p.Restarts))
	}
	for _, f := range p.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, "; ")
}

// String renders one fault in the Parse clause format.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v %s ", f.At, f.Kind)
	switch f.Kind {
	case SeverLink, DegradeLink:
		if f.Node == "*" {
			b.WriteString("*")
		} else {
			b.WriteString(f.Node + ":" + f.Peer)
		}
	default:
		b.WriteString(f.Node)
	}
	if f.For > 0 {
		fmt.Fprintf(&b, " for=%v", f.For)
	}
	if f.Lat != 0 {
		fmt.Fprintf(&b, " lat=%g", f.Lat)
	}
	if f.BW != 0 {
		fmt.Fprintf(&b, " bw=%g", f.BW)
	}
	if f.N != 0 {
		fmt.Fprintf(&b, " n=%d", f.N)
	}
	if f.Chan != "" {
		fmt.Fprintf(&b, " chan=%s", f.Chan)
	}
	if f.Restartable {
		b.WriteString(" restartable")
	}
	return b.String()
}
