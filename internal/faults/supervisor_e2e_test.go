package faults_test

// End-to-end tests for the self-healing daemon supervisor: a restartable
// crash-daemon fault under a restarts=K budget must end the run fully
// recovered (Coverage 1.0), with the outage visible only as an unmeasured
// gap — and the whole faulted run must stay byte-identically reproducible.

import (
	"strings"
	"testing"
)

const acceptancePlan = "restarts=2; t=1s crash-daemon node1 restartable"

func TestSupervisorRecoversRestartableCrash(t *testing.T) {
	res := runFaulted(t, acceptancePlan)
	if res.Coverage != 1.0 {
		t.Errorf("coverage = %v, want 1.0 (supervisor did not recover)", res.Coverage)
	}

	var respawned, detected bool
	for _, ev := range res.FaultLog {
		if strings.Contains(ev, "supervisor: respawned daemon on node1") {
			respawned = true
		}
		if strings.Contains(ev, "supervisor: daemon on node1 down") {
			detected = true
		}
	}
	if !detected || !respawned {
		t.Fatalf("fault log lacks the detect/respawn cycle:\n%s", strings.Join(res.FaultLog, "\n"))
	}

	sv := res.Session.FE.Supervisor()
	if sv == nil {
		t.Fatal("no supervisor armed despite restarts=2")
	}
	if got := sv.Restarts("node1"); got != 1 {
		t.Errorf("restarts = %d, want 1", got)
	}
	if got := sv.Incarnation("node1"); got != 2 {
		t.Errorf("incarnation = %d, want 2", got)
	}

	render := res.PC.Render()
	// The outage surfaces as a gap warning — but NOT as the lost-process
	// degradation block, because nothing stayed lost.
	if !strings.Contains(render, "unmeasured gap on node1") {
		t.Errorf("report lacks the gap warning:\n%s", render)
	}
	if strings.Contains(render, "surviving processes only") {
		t.Errorf("recovered run still carries the lost-process warning:\n%s", render)
	}
	if len(res.Session.FE.UnmeasuredGaps()) != 1 {
		t.Errorf("gaps = %+v, want exactly 1", res.Session.FE.UnmeasuredGaps())
	}
}

func TestSupervisorRunsDeterministic(t *testing.T) {
	a := runFaulted(t, acceptancePlan)
	b := runFaulted(t, acceptancePlan)
	if ra, rb := a.PC.Render(), b.PC.Render(); ra != rb {
		t.Errorf("reports differ:\n%s\n---\n%s", ra, rb)
	}
	if a.Coverage != b.Coverage || a.RunTime != b.RunTime {
		t.Errorf("coverage/runtime differ: %v/%v vs %v/%v", a.Coverage, a.RunTime, b.Coverage, b.RunTime)
	}
	if la, lb := strings.Join(a.FaultLog, "\n"), strings.Join(b.FaultLog, "\n"); la != lb {
		t.Errorf("fault logs differ:\n%s\n---\n%s", la, lb)
	}
}

// With heartbeats disabled the liveness monitor can never observe the
// silence; the restartable crash's direct supervisor notification is the
// only detection path, and it must suffice.
func TestSupervisorHbZeroRecoversViaDirectNotification(t *testing.T) {
	res := runFaulted(t, "hb=0s; restarts=2; t=500ms crash-daemon node1 restartable")
	if res.Coverage != 1.0 {
		t.Errorf("coverage = %v, want 1.0", res.Coverage)
	}
	var respawned bool
	for _, ev := range res.FaultLog {
		if strings.Contains(ev, "supervisor: respawned daemon on node1") {
			respawned = true
		}
	}
	if !respawned {
		t.Fatalf("hb=0 crash never recovered:\n%s", strings.Join(res.FaultLog, "\n"))
	}
	if got := res.Session.FE.Supervisor().Restarts("node1"); got != 1 {
		t.Errorf("restarts = %d, want 1", got)
	}
}

// A bare (non-restartable) crash-daemon under a restart budget keeps the
// pre-supervisor permanent-loss semantics: the supervisor must not touch
// it.
func TestSupervisorLeavesUnrestartableCrashAlone(t *testing.T) {
	res := runFaulted(t, "restarts=2; t=500ms crash-daemon node1")
	if res.Coverage >= 1.0 {
		t.Errorf("coverage = %v, want < 1.0 (unrestartable crash was healed?)", res.Coverage)
	}
	for _, ev := range res.FaultLog {
		if strings.Contains(ev, "supervisor: respawned") {
			t.Fatalf("supervisor respawned an unrestartable crash:\n%s", strings.Join(res.FaultLog, "\n"))
		}
	}
	if got := res.Session.FE.Supervisor().Restarts("node1"); got != 0 {
		t.Errorf("restarts = %d, want 0", got)
	}
}
