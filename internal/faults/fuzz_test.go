package faults_test

// Fuzz target for the fault-plan grammar: Parse must never panic on
// arbitrary input, and any input it accepts must round-trip — the canonical
// String form reparses, and reparsing is a fixed point. Run with
//
//	go test -fuzz=FuzzParse ./internal/faults
//
// The seed corpus covers every verb, every option, and the knob clauses.

import (
	"testing"

	"pperf/internal/faults"
)

func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"seed=7; detect=400ms; hb=100ms",
		"restarts=2; t=1s crash-daemon node1 restartable",
		"hb=0s; restarts=2; t=500ms crash-daemon node1 restartable",
		"t=2s kill-node node1",
		"t=1s hang-daemon node0 for=500ms",
		"t=1s sever-link node0:node1 for=1s",
		"t=1s degrade-link node0:node1 lat=10 bw=0.1",
		"t=1s degrade-link * lat=2",
		"t=0s delay-attach node2 for=100ms",
		"t=1.5s drop-transport node0 n=3 chan=bulk",
		"t=1s drop-transport node0 n=3 chan=both",
		"; ;; t=1s kill-node n0 ;",
		"t=1s explode node0",
		"seed=x",
		"restarts=-1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := faults.Parse(text) // must not panic
		if err != nil {
			return
		}
		// Accepted plans round-trip through the canonical form.
		canon := p.String()
		q, err := faults.Parse(canon)
		if err != nil {
			t.Fatalf("accepted %q but canonical form %q does not reparse: %v", text, canon, err)
		}
		if q.String() != canon {
			t.Fatalf("String not a fixed point for %q:\n%s\n%s", text, canon, q.String())
		}
	})
}
