package faults

import (
	"strings"
	"time"

	"pperf/internal/sim"
)

// The injector's audit log is the durable record of what actually fired:
// each line is the virtual-time stamp (sim.Time's "%.3fs" form) followed
// by the event description, and recording harnesses persist the log with
// the run. These helpers parse the stamps back out so offline consumers —
// the PerfDB diff plane's -since-fault window anchor in particular — can
// recover when a run's faults fired without replaying it.

// LogTime parses the virtual-time stamp off one audit-log line. ok is
// false when the line does not start with a parseable stamp.
func LogTime(line string) (sim.Time, bool) {
	stamp, _, found := strings.Cut(line, " ")
	if !found {
		stamp = line
	}
	d, err := time.ParseDuration(stamp)
	if err != nil || d < 0 {
		return 0, false
	}
	return sim.Time(d), true
}

// fired reports whether an audit-log line records a fault that actually
// fired (as opposed to one skipped for lack of a hook).
func fired(line string) bool {
	return !strings.HasSuffix(line, "skipped")
}

// FirstFireTime returns the virtual time of the first fault that actually
// fired in the audit log. ok is false when nothing fired — an empty log,
// or one holding only skipped entries.
func FirstFireTime(log []string) (sim.Time, bool) {
	for _, line := range log {
		if !fired(line) {
			continue
		}
		if t, ok := LogTime(line); ok {
			return t, true
		}
	}
	return 0, false
}
