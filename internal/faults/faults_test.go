package faults_test

import (
	"strings"
	"testing"

	"pperf/internal/faults"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
	"pperf/internal/sim"
)

// --- plan parsing -----------------------------------------------------------

func TestParseFullPlan(t *testing.T) {
	text := `seed=7; detect=400ms; hb=100ms;
		t=2s kill-node node1;
		t=1s crash-daemon node0;
		t=1s hang-daemon node0 for=500ms;
		t=1s sever-link node0:node1 for=1s;
		t=1s degrade-link node0:node1 lat=10 bw=0.1;
		t=0s delay-attach node2 for=100ms;
		t=1.5s drop-transport node0 n=3`
	p, err := faults.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Detect != 400*sim.Millisecond || p.Heartbeat != 100*sim.Millisecond {
		t.Errorf("knobs: %+v", p)
	}
	if len(p.Faults) != 7 {
		t.Fatalf("faults = %d, want 7", len(p.Faults))
	}
	f := p.Faults[4]
	if f.Kind != faults.DegradeLink || f.Node != "node0" || f.Peer != "node1" || f.Lat != 10 || f.BW != 0.1 {
		t.Errorf("degrade-link fault: %+v", f)
	}
	if p.Faults[6].N != 3 {
		t.Errorf("drop-transport n = %d", p.Faults[6].N)
	}

	// Round trip: String() output parses back to the same plan.
	p2, err := faults.Parse(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Errorf("round trip:\n%s\n%s", p.String(), p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"t=1s explode node0",             // unknown verb
		"t=oops kill-node node0",         // bad duration
		"t=1s hang-daemon node0",         // missing for=
		"t=1s sever-link node0 for=1s",   // not A:B
		"t=1s degrade-link node0:node1",  // no factors
		"t=1s drop-transport node0",      // missing n=
		"t=1s kill-node node0 wat=1",     // unknown option
		"seed=x",                         // bad seed
		"t=1s drop-transport node0 n=-1", // non-positive n
	}
	for _, text := range bad {
		if _, err := faults.Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestParseWildcardLink(t *testing.T) {
	p, err := faults.Parse("t=1s degrade-link * lat=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults[0].Node != "*" || p.Faults[0].Peer != "*" {
		t.Errorf("wildcard link: %+v", p.Faults[0])
	}
}

// --- injector scheduling ----------------------------------------------------

func TestArmFiresInVirtualTimeOrder(t *testing.T) {
	p, err := faults.Parse("detect=100ms; t=300ms crash-daemon n0; t=100ms hang-daemon n1 for=50ms; t=200ms kill-node n2")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	var fired []string
	h := faults.Hooks{
		CrashDaemon: func(node string, restartable bool) { fired = append(fired, "crash:"+node) },
		HangDaemon:  func(node string, d sim.Duration) { fired = append(fired, "hang:"+node) },
		KillNode:    func(node, reason string) { fired = append(fired, "kill:"+node) },
		Abort:       func(reason string) { fired = append(fired, "abort") },
	}
	in := faults.Arm(p, eng, h)
	// Pending events alone don't keep the simulation alive; a process must
	// outlive the schedule.
	eng.StartProc("idle", func(pr *sim.Proc) { pr.Sleep(sim.Second) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"hang:n1", "kill:n2", "crash:n0", "abort"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	log := in.Log()
	if len(log) != 4 || !strings.Contains(log[3], "abort-job") {
		t.Errorf("log = %v", log)
	}
	// The abort fires Detect after the kill.
	if !strings.HasPrefix(log[3], "0.300s") {
		t.Errorf("abort time: %q", log[3])
	}
}

func TestArmMissingHooksSkipsSafely(t *testing.T) {
	p, _ := faults.Parse("t=10ms kill-node n0; t=20ms sever-link a:b for=1s")
	eng := sim.NewEngine(1)
	in := faults.Arm(p, eng, faults.Hooks{})
	eng.StartProc("idle", func(pr *sim.Proc) { pr.Sleep(sim.Second) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, line := range in.Log() {
		if !strings.Contains(line, "skipped") {
			t.Errorf("expected skip note, got %q", line)
		}
	}
}

// --- end-to-end: PPerfMark runs under each fault type ----------------------

// runFaulted executes random-barrier under LAM with the given plan.
func runFaulted(t *testing.T, planText string) *pperfmark.Result {
	t.Helper()
	var plan *faults.Plan
	if planText != "" {
		var err error
		plan, err = faults.Parse(planText)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := pperfmark.Run("random-barrier", pperfmark.RunOptions{
		Impl:   mpi.LAM,
		Faults: plan,
	})
	if err != nil {
		t.Fatalf("run with plan %q: %v", planText, err)
	}
	return res
}

func TestEndToEndFaults(t *testing.T) {
	cases := []struct {
		name string
		plan string
		// wantFullCoverage: the tool should recover every process's data.
		wantFullCoverage bool
		// wantDegraded: some processes must end up lost.
		wantDegraded bool
	}{
		{name: "node crash mid-run", plan: "t=1s kill-node node1", wantDegraded: true},
		{name: "daemon crash", plan: "t=500ms crash-daemon node1", wantDegraded: true},
		{name: "daemon hang and reconnect", plan: "t=500ms hang-daemon node1 for=800ms", wantFullCoverage: true},
		{name: "link degradation", plan: "t=200ms degrade-link node0:node1 lat=5 bw=0.25", wantFullCoverage: true},
		{name: "link severed briefly", plan: "t=200ms sever-link node0:node1 for=100ms", wantFullCoverage: true},
		{name: "transport drops", plan: "t=300ms drop-transport node1 n=5", wantFullCoverage: true},
		{name: "delayed attach", plan: "t=0s delay-attach node1 for=200ms", wantFullCoverage: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := runFaulted(t, tc.plan)
			if len(res.FaultLog) == 0 {
				t.Fatal("no injected events logged")
			}
			if tc.wantDegraded {
				if res.Coverage >= 1.0 {
					t.Errorf("coverage = %v, want < 1.0", res.Coverage)
				}
				render := res.PC.Render()
				if !strings.Contains(render, "WARNING") || !strings.Contains(render, "partial data") {
					t.Errorf("degraded report lacks warnings:\n%s", render)
				}
			}
			if tc.wantFullCoverage && res.Coverage != 1.0 {
				t.Errorf("coverage = %v, want 1.0", res.Coverage)
			}
		})
	}
}

func TestNodeCrashDegradesOnlyCrashedNode(t *testing.T) {
	res := runFaulted(t, "t=1s kill-node node1")
	// 6 procs on 3 nodes: node1's 2 die unobserved, the rest are aborted by
	// the failure detector as observed exits.
	if res.Coverage <= 0.5 || res.Coverage >= 1.0 {
		t.Errorf("coverage = %v, want in (0.5, 1.0)", res.Coverage)
	}
	found := false
	for _, ev := range res.FaultLog {
		if strings.Contains(ev, "abort-job") {
			found = true
		}
	}
	if !found {
		t.Errorf("failure detector never aborted the job: %v", res.FaultLog)
	}
}

func TestFaultedRunsDeterministic(t *testing.T) {
	a := runFaulted(t, "seed=3; t=1s kill-node node1")
	b := runFaulted(t, "seed=3; t=1s kill-node node1")
	if ra, rb := a.PC.Render(), b.PC.Render(); ra != rb {
		t.Errorf("reports differ:\n%s\n---\n%s", ra, rb)
	}
	if a.Coverage != b.Coverage || a.RunTime != b.RunTime {
		t.Errorf("coverage/runtime differ: %v/%v vs %v/%v", a.Coverage, a.RunTime, b.Coverage, b.RunTime)
	}
	la, lb := a.FaultLog, b.FaultLog
	if len(la) != len(lb) {
		t.Fatalf("fault logs differ: %v vs %v", la, lb)
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Errorf("fault logs differ at %d: %q vs %q", i, la[i], lb[i])
		}
	}
}

func TestHealthyRunUnaffected(t *testing.T) {
	res := runFaulted(t, "")
	if res.Coverage != 1.0 {
		t.Errorf("coverage = %v", res.Coverage)
	}
	if len(res.FaultLog) != 0 {
		t.Errorf("fault log = %v", res.FaultLog)
	}
	render := res.PC.Render()
	if strings.Contains(render, "WARNING") || strings.Contains(render, "partial data") {
		t.Errorf("healthy report carries degradation markers:\n%s", render)
	}
}
