package faults

import (
	"testing"

	"pperf/internal/sim"
)

func TestLogTime(t *testing.T) {
	if tm, ok := LogTime("2.000s kill-node node1"); !ok || tm != sim.Time(2*sim.Second) {
		t.Errorf("LogTime = %v, %v", tm, ok)
	}
	if tm, ok := LogTime("0.500s degrade-link *:* lat=1 bw=0.9"); !ok || tm != sim.Time(500*sim.Millisecond) {
		t.Errorf("LogTime = %v, %v", tm, ok)
	}
	for _, bad := range []string{"", "kill-node node1", "notatime x", "-1s y"} {
		if _, ok := LogTime(bad); ok {
			t.Errorf("LogTime(%q) accepted", bad)
		}
	}
}

func TestFirstFireTime(t *testing.T) {
	log := []string{
		"1.000s hang-daemon node2: no hook, skipped",
		"2.500s crash-daemon node1 (restartable)",
		"3.000s kill-node node3",
	}
	if tm, ok := FirstFireTime(log); !ok || tm != sim.Time(2500*sim.Millisecond) {
		t.Errorf("FirstFireTime = %v, %v; want 2.5s", tm, ok)
	}
	if _, ok := FirstFireTime(nil); ok {
		t.Error("empty log reported a fire time")
	}
	if _, ok := FirstFireTime([]string{"1.000s sever-link: no hook, skipped"}); ok {
		t.Error("skipped-only log reported a fire time")
	}
}

// TestInjectorLogRoundTrips pins the contract between the injector's
// note format and the offline parser: every fired entry of a real armed
// plan must carry a recoverable stamp.
func TestInjectorLogRoundTrips(t *testing.T) {
	plan, err := Parse("t=2s kill-node node1; t=500ms degrade-link * bw=0.1")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	in := Arm(plan, eng, Hooks{
		KillNode: func(node, reason string) {},
		SetLink:  func(a, b string, lat, bw float64, downFor sim.Duration) {},
	})
	eng.StartProc("clock", func(p *sim.Proc) { p.Sleep(5 * sim.Second) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	log := in.Log()
	if len(log) == 0 {
		t.Fatal("no log entries")
	}
	for _, line := range log {
		if _, ok := LogTime(line); !ok {
			t.Errorf("unparseable log line %q", line)
		}
	}
	if tm, ok := FirstFireTime(log); !ok || tm != sim.Time(500*sim.Millisecond) {
		t.Errorf("FirstFireTime = %v, %v; want 0.5s (log %v)", tm, ok, log)
	}
}
