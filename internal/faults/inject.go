package faults

import (
	"fmt"
	"sync"

	"pperf/internal/daemon"
	"pperf/internal/sim"
	"pperf/internal/trace"
	"pperf/internal/wire"
)

// Hooks are the actions the injector drives. The session layer wires them to
// the world, daemons, network overlay and transports — the faults package
// itself knows only the schedule, keeping it free of upward dependencies.
type Hooks struct {
	// KillNode terminates the node's processes and daemon (reason is for
	// reports).
	KillNode func(node, reason string)
	// Abort terminates the whole job — fired Detect after a node kill, as
	// the failure detector of the launcher would.
	Abort func(reason string)
	// CrashDaemon stops the node's daemon. restartable reports whether the
	// fault allows a supervisor to respawn it; without a supervisor (or for
	// a non-restartable crash) the loss is permanent.
	CrashDaemon func(node string, restartable bool)
	// HangDaemon stalls the node's daemon for the duration.
	HangDaemon func(node string, d sim.Duration)
	// SetLink applies latency/bandwidth factors and an outage window to the
	// a–b link (a == "*" targets all links). Zero factors leave that
	// dimension unchanged; downFor > 0 severs the link for that long.
	SetLink func(a, b string, lat, bw float64, downFor sim.Duration)
	// DelayAttach postpones the node's daemon adopting processes.
	DelayAttach func(node string, d sim.Duration)
	// DropTransport makes the node's daemon transport fail its next n
	// sends. ch selects the channel: ChanCtl (samples/updates, the
	// default), ChanBulk (trace shards), or ChanBoth. ChanSync targets the
	// PerfDB sync plane instead and is armed through SyncConfig.Faults
	// rather than this session hook, which ignores it.
	DropTransport func(node string, n int, ch string)
}

// Injector is an armed plan: it has scheduled every fault on the engine and
// records what actually fired.
type Injector struct {
	plan *Plan

	mu  sync.Mutex
	log []string
}

// Plan returns the armed plan.
func (in *Injector) Plan() *Plan { return in.plan }

// Log returns the injected events in firing order, each stamped with the
// virtual time it fired — the audit trail for reports and tests.
func (in *Injector) Log() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.log...)
}

func (in *Injector) note(now sim.Time, format string, args ...any) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.log = append(in.log, fmt.Sprintf("%v %s", now, fmt.Sprintf(format, args...)))
}

// Notef appends an external event to the audit log, stamped with the
// virtual time it happened. The supervisor uses it so respawn and
// quarantine decisions appear in the same trail as the faults that
// triggered them.
func (in *Injector) Notef(now sim.Time, format string, args ...any) {
	in.note(now, format, args...)
}

// Arm schedules every fault in the plan on the engine. Hook fields left nil
// are skipped (the fault is logged as unsupported rather than panicking).
// Faults fire in virtual time, so runs are exactly reproducible.
func Arm(plan *Plan, eng *sim.Engine, h Hooks) *Injector {
	in := &Injector{plan: plan}
	for _, f := range plan.Faults {
		f := f
		eng.At(sim.Time(f.At), func() { in.fire(eng.Now(), f, plan, eng, h) })
	}
	return in
}

func (in *Injector) fire(now sim.Time, f Fault, plan *Plan, eng *sim.Engine, h Hooks) {
	switch f.Kind {
	case KillNode:
		if h.KillNode == nil {
			in.note(now, "kill-node %s: no hook, skipped", f.Node)
			return
		}
		reason := fmt.Sprintf("node %s failed", f.Node)
		h.KillNode(f.Node, reason)
		in.note(now, "kill-node %s", f.Node)
		if h.Abort != nil {
			// The failure detector notices Detect later and aborts the job:
			// MPI_Finalize is collective, so survivors can never complete.
			eng.After(plan.Detect, func() {
				h.Abort(fmt.Sprintf("job aborted: %s", reason))
				in.note(eng.Now(), "abort-job (detector: %s)", reason)
			})
		}
	case CrashDaemon:
		if h.CrashDaemon == nil {
			in.note(now, "crash-daemon %s: no hook, skipped", f.Node)
			return
		}
		h.CrashDaemon(f.Node, f.Restartable)
		if f.Restartable {
			in.note(now, "crash-daemon %s (restartable)", f.Node)
		} else {
			in.note(now, "crash-daemon %s", f.Node)
		}
	case HangDaemon:
		if h.HangDaemon == nil {
			in.note(now, "hang-daemon %s: no hook, skipped", f.Node)
			return
		}
		h.HangDaemon(f.Node, f.For)
		in.note(now, "hang-daemon %s for %v", f.Node, f.For)
	case SeverLink:
		if h.SetLink == nil {
			in.note(now, "sever-link: no hook, skipped")
			return
		}
		h.SetLink(f.Node, f.Peer, 0, 0, f.For)
		in.note(now, "sever-link %s:%s for %v", f.Node, f.Peer, f.For)
	case DegradeLink:
		if h.SetLink == nil {
			in.note(now, "degrade-link: no hook, skipped")
			return
		}
		h.SetLink(f.Node, f.Peer, f.Lat, f.BW, 0)
		in.note(now, "degrade-link %s:%s lat=%g bw=%g", f.Node, f.Peer, f.Lat, f.BW)
	case DelayAttach:
		if h.DelayAttach == nil {
			in.note(now, "delay-attach %s: no hook, skipped", f.Node)
			return
		}
		h.DelayAttach(f.Node, f.For)
		in.note(now, "delay-attach %s for %v", f.Node, f.For)
	case DropTransport:
		if h.DropTransport == nil {
			in.note(now, "drop-transport %s: no hook, skipped", f.Node)
			return
		}
		h.DropTransport(f.Node, f.N, f.Chan)
		if f.Chan != "" {
			in.note(now, "drop-transport %s n=%d chan=%s", f.Node, f.N, f.Chan)
		} else {
			in.note(now, "drop-transport %s n=%d", f.Node, f.N)
		}
	}
}

// FlakyTransport wraps a daemon.Transport so the injector can fail sends on
// the in-process path (the TCP transport has its own InjectFailures /
// InjectBulkFailures). Each channel's failure state is a wire.Injection —
// the same injection point the TCP and sync channels consult — so control
// and bulk failures are counted separately, mirroring the wire transport's
// two channels, and a plan can sever the trace stream while samples keep
// flowing — or vice versa. While failures remain on a channel, every send
// on it errors; the daemon's outbox (or bulk queue) absorbs the reports and
// replays them once the flakiness is spent.
type FlakyTransport struct {
	Inner daemon.Transport

	once sync.Once
	ctl  *wire.Injection
	bulk *wire.Injection
}

func (ft *FlakyTransport) init() {
	ft.once.Do(func() {
		ft.ctl = wire.NewInjection(wire.ChanCtl)
		ft.bulk = wire.NewInjection(wire.ChanBulk)
	})
}

// InjectFailures makes the next n control-channel sends fail.
func (ft *FlakyTransport) InjectFailures(n int) {
	ft.init()
	ft.ctl.AddDrops(n)
}

// InjectBulkFailures makes the next n bulk-channel (trace shard) sends
// fail.
func (ft *FlakyTransport) InjectBulkFailures(n int) {
	ft.init()
	ft.bulk.AddDrops(n)
}

// Dropped returns how many control-channel sends were failed so far.
func (ft *FlakyTransport) Dropped() int64 {
	ft.init()
	return ft.ctl.Dropped()
}

// DroppedBulk returns how many bulk-channel sends were failed so far.
func (ft *FlakyTransport) DroppedBulk() int64 {
	ft.init()
	return ft.bulk.Dropped()
}

// WireStats reports each channel's injection accounting in the wire plane's
// uniform counter block (keyed wire.ChanCtl / wire.ChanBulk).
func (ft *FlakyTransport) WireStats() map[string]wire.Stats {
	ft.init()
	return map[string]wire.Stats{
		wire.ChanCtl:  {InjectedDrops: ft.ctl.Dropped()},
		wire.ChanBulk: {InjectedDrops: ft.bulk.Dropped()},
	}
}

func (ft *FlakyTransport) fail() bool {
	ft.init()
	return ft.ctl.Check() != nil
}

func (ft *FlakyTransport) failBulk() bool {
	ft.init()
	return ft.bulk.Check() != nil
}

// Samples implements daemon.Transport.
func (ft *FlakyTransport) Samples(batch []daemon.Sample) error {
	if ft.fail() {
		return fmt.Errorf("faults: injected transport failure")
	}
	return ft.Inner.Samples(batch)
}

// Update implements daemon.Transport.
func (ft *FlakyTransport) Update(u daemon.Update) error {
	if ft.fail() {
		return fmt.Errorf("faults: injected transport failure")
	}
	return ft.Inner.Update(u)
}

// TraceShard implements daemon.TraceSink when the wrapped transport does;
// injected control failures hit these shards exactly like samples and
// updates (the legacy shared-path behaviour).
func (ft *FlakyTransport) TraceShard(sh trace.Shard) error {
	ts, ok := ft.Inner.(daemon.TraceSink)
	if !ok {
		return nil
	}
	if ft.fail() {
		return fmt.Errorf("faults: injected transport failure")
	}
	return ts.TraceShard(sh)
}

// BulkShard implements daemon.BulkSink when the wrapped transport does;
// injected bulk failures hit only this channel.
func (ft *FlakyTransport) BulkShard(sh trace.Shard) error {
	bs, ok := ft.Inner.(daemon.BulkSink)
	if !ok {
		return nil
	}
	if ft.failBulk() {
		return fmt.Errorf("faults: injected bulk transport failure")
	}
	return bs.BulkShard(sh)
}
