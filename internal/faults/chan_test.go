package faults_test

// Tests for the drop-transport chan= option and the FlakyTransport's
// independent control/bulk failure budgets.

import (
	"testing"

	"pperf/internal/daemon"
	"pperf/internal/faults"
	"pperf/internal/trace"
)

func TestParseDropTransportChan(t *testing.T) {
	p, err := faults.Parse("t=1s drop-transport node0 n=3 chan=bulk; t=2s drop-transport node1 n=1 chan=both")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 2 {
		t.Fatalf("faults = %d, want 2", len(p.Faults))
	}
	if p.Faults[0].Chan != faults.ChanBulk || p.Faults[1].Chan != faults.ChanBoth {
		t.Errorf("chans = %q, %q", p.Faults[0].Chan, p.Faults[1].Chan)
	}
	// String round-trips through Parse.
	q, err := faults.Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if q.Faults[0].Chan != faults.ChanBulk || q.Faults[1].Chan != faults.ChanBoth {
		t.Errorf("round-trip lost chan: %q", q.String())
	}
	// An unadorned clause keeps the legacy meaning (empty = control).
	p, err = faults.Parse("t=1s drop-transport node0 n=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults[0].Chan != "" {
		t.Errorf("default chan = %q, want empty (control)", p.Faults[0].Chan)
	}
}

func TestParseChanErrors(t *testing.T) {
	for _, text := range []string{
		"t=1s drop-transport node0 n=3 chan=wifi", // unknown channel
		"t=1s hang-daemon node0 for=1s chan=bulk", // wrong verb
	} {
		if _, err := faults.Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

// bulkFE is a minimal Transport+BulkSink backend for FlakyTransport tests.
type bulkFE struct {
	samples int
	shards  int
}

func (f *bulkFE) Samples([]daemon.Sample) error { f.samples++; return nil }
func (f *bulkFE) Update(daemon.Update) error    { return nil }
func (f *bulkFE) BulkShard(trace.Shard) error   { f.shards++; return nil }

func TestFlakyTransportChannelsFailIndependently(t *testing.T) {
	fe := &bulkFE{}
	ft := &faults.FlakyTransport{Inner: fe}

	ft.InjectBulkFailures(2)
	var bs daemon.BulkSink = ft
	if err := bs.BulkShard(trace.Shard{}); err == nil {
		t.Fatal("bulk send should fail while bulk budget remains")
	}
	if err := ft.Samples(nil); err != nil {
		t.Fatalf("control send failed under bulk-only faults: %v", err)
	}
	if err := bs.BulkShard(trace.Shard{}); err == nil {
		t.Fatal("second bulk send should consume the remaining budget")
	}
	if err := bs.BulkShard(trace.Shard{}); err != nil {
		t.Fatalf("bulk send after budget drained: %v", err)
	}
	if ft.DroppedBulk() != 2 || ft.Dropped() != 0 {
		t.Errorf("dropped ctl=%d bulk=%d, want 0 and 2", ft.Dropped(), ft.DroppedBulk())
	}

	ft.InjectFailures(1)
	if err := ft.Samples(nil); err == nil {
		t.Fatal("control send should fail while control budget remains")
	}
	if err := bs.BulkShard(trace.Shard{}); err != nil {
		t.Fatalf("bulk send failed under control-only faults: %v", err)
	}
	if fe.samples != 1 || fe.shards != 2 {
		t.Errorf("inner saw samples=%d shards=%d, want 1 and 2", fe.samples, fe.shards)
	}
}
