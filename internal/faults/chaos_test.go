package faults_test

// Chaos harness: ~50 seeded random fault plans, each run end-to-end under
// the full tool. The invariants are deliberately coarse — the point is not
// that any particular plan produces any particular finding, but that NO
// valid plan can break the tool's contract:
//
//   1. the run terminates without error or panic,
//   2. reported data coverage stays within [0, 1],
//   3. an identical-seed re-run is byte-identical (report, coverage,
//      runtime, fault log).
//
// The full sweep is expensive (~50 simulated runs, doubled for the
// determinism check), so it is gated behind CHAOS=1 and wired to
// `make chaos`. The generator round-trip test below always runs.

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"pperf/internal/faults"
	"pperf/internal/sim"
)

// chaosNodes are the node names of pperfmark's default 3-node cluster.
var chaosNodes = []string{"node0", "node1", "node2"}

const (
	chaosPlans     = 50
	chaosMaxFaults = 3
	chaosHorizon   = 2 * sim.Second
)

// Every generated plan must survive a round trip through the text grammar
// with String as a fixed point — otherwise a chaos failure could not be
// reproduced from its printed plan. This is cheap and always runs.
func TestGenPlanRoundTrips(t *testing.T) {
	for seed := uint64(0); seed < 250; seed++ {
		p := faults.MustGenParse(seed, chaosNodes, chaosMaxFaults, chaosHorizon)
		q, err := faults.Parse(p.String())
		if err != nil {
			t.Fatalf("seed %d: reparse %q: %v", seed, p.String(), err)
		}
		if q.String() != p.String() {
			t.Fatalf("seed %d: String not a fixed point:\n%s\n%s", seed, p.String(), q.String())
		}
	}
}

func TestChaosPlans(t *testing.T) {
	if os.Getenv("CHAOS") != "1" {
		t.Skip("chaos sweep disabled; run via 'make chaos' (CHAOS=1)")
	}
	for seed := uint64(1); seed <= chaosPlans; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			plan := faults.MustGenParse(seed, chaosNodes, chaosMaxFaults, chaosHorizon)
			text := plan.String()
			t.Logf("plan: %s", text)

			a := runFaulted(t, text) // Fatals on run error; panics fail the test
			if a.Coverage < 0 || a.Coverage > 1 {
				t.Errorf("coverage = %v, want within [0, 1]", a.Coverage)
			}

			b := runFaulted(t, text)
			if ra, rb := a.PC.Render(), b.PC.Render(); ra != rb {
				t.Errorf("re-run report differs:\n%s\n---\n%s", ra, rb)
			}
			if a.Coverage != b.Coverage || a.RunTime != b.RunTime {
				t.Errorf("re-run coverage/runtime differ: %v/%v vs %v/%v",
					a.Coverage, a.RunTime, b.Coverage, b.RunTime)
			}
			if la, lb := strings.Join(a.FaultLog, "\n"), strings.Join(b.FaultLog, "\n"); la != lb {
				t.Errorf("re-run fault logs differ:\n%s\n---\n%s", la, lb)
			}
		})
	}
}
