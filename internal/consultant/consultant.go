// Package consultant implements the Performance Consultant: Paradyn's
// automated bottleneck search (§1, §5). It tests a small set of top-level
// hypotheses — ExcessiveSyncWaitingTime, ExcessiveIOBlockingTime, CPUBound —
// against thresholds while the program runs, and refines every true
// hypothesis along the "where" axes: the Code hierarchy (via the observed
// call graph), the Machine hierarchy (nodes, then processes), and the
// SyncObject hierarchy (Message communicators and tags, Barrier, RMA
// windows). Instrumentation is enabled only for foci under test and removed
// when a hypothesis is refuted, which is the point of dynamic
// instrumentation.
package consultant

import (
	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// Hypothesis names.
const (
	HypSync = "ExcessiveSyncWaitingTime"
	HypIO   = "ExcessiveIOBlockingTime"
	HypCPU  = "CPUBound"
)

// normKind says how per-process fractions aggregate into a hypothesis value.
type normKind int

const (
	// normAvg averages the per-process fractions (synchronization and I/O
	// waiting: "how much of the program's time is lost").
	normAvg normKind = iota
	// normMax takes the worst process (CPUBound: one hot process is a
	// bottleneck even if the others idle).
	normMax
)

type hypoSpec struct {
	name       string
	metricName string
	norm       normKind
	axes       []axis
}

type axis int

const (
	axisCode axis = iota
	axisMachine
	axisSync
)

// Config tunes the search.
type Config struct {
	// SyncThreshold, IOThreshold, CPUThreshold are the hypothesis-test
	// fractions. The paper lowers the CPU threshold from its default to 0.2
	// for diffuse-procedure (§5.1.6); the defaults here are 0.2/0.15/0.3.
	SyncThreshold float64
	IOThreshold   float64
	CPUThreshold  float64
	// EvalInterval is how often hypotheses are evaluated.
	EvalInterval sim.Duration
	// MinEvals is how many evaluations a node needs before it can test
	// true.
	MinEvals int
	// PruneEvals is how many consecutive false evaluations before a node's
	// instrumentation is removed.
	PruneEvals int
	// MaxDepth bounds refinement depth per axis chain.
	MaxDepth int
	// MaxNodes bounds the total search size.
	MaxNodes int
}

// DefaultConfig returns the standard thresholds and pacing.
func DefaultConfig() Config {
	return Config{
		SyncThreshold: 0.20,
		IOThreshold:   0.15,
		CPUThreshold:  0.30,
		EvalInterval:  1 * sim.Second,
		MinEvals:      2,
		PruneEvals:    12,
		MaxDepth:      5,
		MaxNodes:      400,
	}
}

// Engine is the scheduling surface the Consultant needs (satisfied by
// *sim.Engine).
type Engine interface {
	After(d sim.Duration, fn func())
	Now() sim.Time
}

// Consultant runs the search. It reads exclusively through the DataSource
// interface, so the same search runs against the live front end or an
// offline session replay.
type Consultant struct {
	ds    datasource.DataSource
	eng   Engine
	cfg   Config
	roots []*Node
	nodes int
	// seen dedupes (hypothesis, focus) across refinement paths: the same
	// focus is reachable by refining axes in different orders, and testing
	// it once suffices.
	seen    map[string]bool
	stopped bool
}

// Node is one point of the search: a hypothesis tested at a focus.
type Node struct {
	Hypothesis string
	Focus      resource.Focus
	Label      string // short display label for the refinement step

	spec     hypoSpec
	series   *datasource.Series
	lastVals map[string]float64 // per-proc cumulative cursor
	lastTime sim.Time           // sample-aligned cursor
	evals    int
	falseRun int
	trueRun  int

	// Value is the latest aggregated fraction.
	Value float64
	// True latches once the hypothesis tests true (the paper notes
	// random-barrier's waster moves around; a process stays diagnosed once
	// caught).
	True bool
	// Pruned marks nodes whose instrumentation was removed after repeated
	// false tests.
	Pruned bool
	// Partial marks a node that was evaluated while data coverage was
	// incomplete (processes lost to node or daemon failures): its verdict
	// rests on the surviving processes only.
	Partial bool
	// GapPartial marks a node whose evaluation interval overlapped an
	// unmeasured outage gap (daemon death → supervisor re-attach): the
	// interval's histogram zeros include windows where nothing was
	// collected, so the verdict understates activity on the gapped node.
	// Nodes evaluated entirely outside the gaps stay clean — gap damage
	// is scoped, not global.
	GapPartial bool

	Parent   *Node
	Children []*Node
	expanded bool
	depth    int
	c        *Consultant
}

// New creates a Consultant over any data source — the live front end or a
// session replay.
func New(ds datasource.DataSource, eng Engine, cfg Config) *Consultant {
	return &Consultant{ds: ds, eng: eng, cfg: cfg, seen: map[string]bool{}}
}

// specs returns the top-level hypothesis set.
func (c *Consultant) specs() []hypoSpec {
	return []hypoSpec{
		{HypSync, "sync_wait_inclusive", normAvg, []axis{axisCode, axisSync, axisMachine}},
		{HypIO, "io_wait", normAvg, []axis{axisCode, axisMachine}},
		{HypCPU, "cpu_inclusive", normMax, []axis{axisCode, axisMachine}},
	}
}

// Start arms the top-level hypotheses and begins periodic evaluation.
func (c *Consultant) Start() error {
	for _, hs := range c.specs() {
		n, err := c.newNode(hs, resource.WholeProgram(), hs.name, nil)
		if err != nil {
			return err
		}
		c.roots = append(c.roots, n)
	}
	c.schedule()
	return nil
}

// Stop halts evaluation.
func (c *Consultant) Stop() { c.stopped = true }

// Roots returns the top-level hypothesis nodes.
func (c *Consultant) Roots() []*Node { return c.roots }

func (c *Consultant) schedule() {
	c.eng.After(c.cfg.EvalInterval, func() {
		if c.stopped {
			return
		}
		c.evaluate()
		c.schedule()
	})
}

func (c *Consultant) newNode(hs hypoSpec, f resource.Focus, label string, parent *Node) (*Node, error) {
	key := hs.name + "\x00" + f.Key()
	if c.seen[key] {
		return nil, nil
	}
	c.seen[key] = true
	series, err := c.ds.EnableMetric(hs.metricName, f)
	if err != nil {
		return nil, err
	}
	n := &Node{
		Hypothesis: hs.name,
		Focus:      f,
		Label:      label,
		spec:       hs,
		series:     series,
		lastVals:   map[string]float64{},
		lastTime:   c.eng.Now(),
		Parent:     parent,
		c:          c,
	}
	// If the series pre-existed, start the cursors at its current state so
	// history before this node does not spike the first evaluation.
	for _, proc := range series.Procs() {
		n.lastVals[proc] = series.ProcHistogram(proc).Total()
	}
	if parent != nil {
		n.depth = parent.depth + 1
		parent.Children = append(parent.Children, n)
	}
	c.nodes++
	return n, nil
}

// evaluate walks every live node, updates its value over the last interval,
// latches true results (expanding them), and prunes persistent falses. The
// leading Sync is the evaluation's read barrier: a recording source stamps
// it into the archive, and a replaying source applies the recorded stream
// up to the matching barrier — so the k-th replayed evaluation reads
// exactly the state the k-th live evaluation read.
func (c *Consultant) evaluate() {
	c.ds.Sync()
	now := c.eng.Now()
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, ch := range n.Children {
			walk(ch)
		}
		if n.Pruned {
			return
		}
		n.update(now)
		if n.True && !n.expanded {
			c.expand(n)
		}
		if !n.True && n.falseRun >= c.cfg.PruneEvals {
			n.Pruned = true
			c.ds.DisableMetric(n.spec.metricName, n.Focus)
		}
	}
	for _, r := range c.roots {
		walk(r)
	}
}

// update computes the node's fraction over the interval since its last
// evaluation from the series' per-process histograms. The interval is
// aligned to the newest ingested sample so numerator and denominator cover
// exactly the same span.
func (n *Node) update(now sim.Time) {
	upto := n.series.LastSampleTime()
	interval := upto.Sub(n.lastTime).Seconds()
	if interval <= 0 {
		return
	}
	now = upto
	if n.c.ds.GapOverlaps(n.lastTime, upto) {
		n.GapPartial = true
	}
	var fractions []float64
	for _, proc := range n.series.Procs() {
		h := n.series.ProcHistogram(proc)
		cum := h.Total()
		delta := cum - n.lastVals[proc]
		n.lastVals[proc] = cum
		fractions = append(fractions, delta/interval)
	}
	n.lastTime = now
	n.evals++
	if n.c.ds.LostProcessCount() > 0 {
		n.Partial = true
	}
	if len(fractions) == 0 {
		n.falseRun++
		return
	}
	switch n.spec.norm {
	case normMax:
		n.Value = 0
		for _, f := range fractions {
			if f > n.Value {
				n.Value = f
			}
		}
	default:
		s := 0.0
		for _, f := range fractions {
			s += f
		}
		n.Value = s / float64(len(fractions))
	}
	if n.Value > n.threshold() {
		n.trueRun++
		n.falseRun = 0
	} else {
		n.trueRun = 0
		n.falseRun++
	}
	// Latch true only after MinEvals consecutive over-threshold intervals,
	// so a single noisy window does not flag a hypothesis.
	if n.trueRun >= n.c.cfg.MinEvals {
		n.True = true
	}
}

func (n *Node) threshold() float64 {
	switch n.Hypothesis {
	case HypIO:
		return n.c.cfg.IOThreshold
	case HypCPU:
		return n.c.cfg.CPUThreshold
	default:
		return n.c.cfg.SyncThreshold
	}
}
