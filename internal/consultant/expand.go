package consultant

import (
	"strings"

	"pperf/internal/resource"
)

// candidate is one proposed refinement of a node's focus.
type candidate struct {
	focus resource.Focus
	label string
}

// expand generates and arms the child foci of a node that tested true,
// along each axis the hypothesis refines over.
func (c *Consultant) expand(n *Node) {
	n.expanded = true
	if n.depth >= c.cfg.MaxDepth || c.nodes >= c.cfg.MaxNodes {
		return
	}
	for _, ax := range n.spec.axes {
		for _, cand := range c.candidates(n, ax) {
			if c.nodes >= c.cfg.MaxNodes {
				return
			}
			// Unconstrainable metric/focus combinations are skipped, as the
			// real tool refuses them.
			_, _ = c.newNode(n.spec, cand.focus, cand.label, n)
		}
	}
}

func (c *Consultant) candidates(n *Node, ax axis) []candidate {
	switch ax {
	case axisCode:
		return c.codeCandidates(n)
	case axisMachine:
		return c.machineCandidates(n)
	case axisSync:
		return c.syncCandidates(n)
	}
	return nil
}

// codeCandidates refines the Code axis: from the whole program to the
// application's procedures, then down the observed call graph (which is how
// the tool drills from Gsend_message into MPI_Send).
func (c *Consultant) codeCandidates(n *Node) []candidate {
	h := c.ds.Hierarchy()
	var out []candidate
	if fn := n.Focus.CodeFunction(); fn != "" {
		// Refine to callees, avoiding functions already on this chain.
		for _, callee := range c.ds.Callees(fn) {
			if n.onCodeChain(callee) {
				continue
			}
			if path := findFunctionPath(h, callee); path != "" {
				out = append(out, candidate{n.Focus.WithCode(path), callee})
			}
		}
		return out
	}
	// Top level: the application's own procedures plus the call-graph roots
	// (library routines the program invokes directly, e.g. MPI_Barrier at
	// the top of a loop). Library functions reached from inside application
	// procedures are found by the callee refinement instead.
	code := h.Find(resource.Code)
	if code == nil {
		return nil
	}
	skip := map[string]bool{"MPI_Init": true, "PMPI_Init": true,
		"MPI_Finalize": true, "PMPI_Finalize": true}
	for _, mod := range code.ActiveChildren() {
		lib := isLibraryModule(mod.Name())
		for _, fn := range mod.ActiveChildren() {
			if skip[fn.Name()] {
				continue
			}
			if lib && c.ds.IsCallee(fn.Name()) {
				continue
			}
			out = append(out, candidate{n.Focus.WithCode(fn.Path()), fn.Name()})
		}
	}
	return out
}

// onCodeChain reports whether fname is already a refinement step on the
// node's ancestry (prevents call-graph cycles).
func (n *Node) onCodeChain(fname string) bool {
	for m := n; m != nil; m = m.Parent {
		if m.Focus.CodeFunction() == fname {
			return true
		}
	}
	return false
}

// isLibraryModule classifies Code modules: MPI libraries and libc are
// reached via the call graph rather than enumerated at the top.
func isLibraryModule(name string) bool { return strings.HasPrefix(name, "lib") }

// findFunctionPath locates a function by name anywhere under /Code.
func findFunctionPath(h *resource.Hierarchy, fname string) string {
	code := h.Find(resource.Code)
	if code == nil {
		return ""
	}
	for _, mod := range code.Children() {
		if fn := mod.Child(fname); fn != nil {
			return fn.Path()
		}
	}
	return ""
}

// machineCandidates refines the Machine axis: whole → nodes → processes.
func (c *Consultant) machineCandidates(n *Node) []candidate {
	h := c.ds.Hierarchy()
	var out []candidate
	if n.Focus.MachineProcess() != "" {
		return nil
	}
	if nodeName := n.Focus.MachineNode(); nodeName != "" {
		nd := h.Find(resource.Machine, nodeName)
		if nd == nil {
			return nil
		}
		for _, p := range nd.ActiveChildren() {
			out = append(out, candidate{n.Focus.WithMachine(p.Path()), p.Name()})
		}
		return out
	}
	machine := h.Find(resource.Machine)
	if machine == nil {
		return nil
	}
	for _, nd := range machine.ActiveChildren() {
		out = append(out, candidate{n.Focus.WithMachine(nd.Path()), nd.Name()})
	}
	return out
}

// syncCandidates refines the SyncObject axis: categories, then specific
// communicators/windows, then message tags. Retired resources (freed
// windows) are excluded from the candidate set (§4.2.3).
func (c *Consultant) syncCandidates(n *Node) []candidate {
	h := c.ds.Hierarchy()
	parts := n.Focus.SyncParts()
	var out []candidate
	switch len(parts) {
	case 0:
		for _, cat := range []string{resource.Message, resource.Barrier, resource.Window} {
			nd := h.Find(resource.SyncObject, cat)
			if nd == nil {
				continue
			}
			if cat != resource.Barrier && len(nd.ActiveChildren()) == 0 {
				continue
			}
			out = append(out, candidate{n.Focus.WithSync(nd.Path()), cat})
		}
	case 1:
		nd := h.FindPath(n.Focus.SyncPath)
		if nd == nil || parts[0] == resource.Barrier {
			return nil
		}
		for _, obj := range nd.ActiveChildren() {
			out = append(out, candidate{n.Focus.WithSync(obj.Path()), obj.DisplayName()})
		}
	case 2:
		if parts[0] != resource.Message {
			return nil
		}
		nd := h.FindPath(n.Focus.SyncPath)
		if nd == nil {
			return nil
		}
		// Cap tag enumeration: programs cycling through many tags would
		// otherwise dominate the search budget.
		const maxTagCandidates = 12
		for _, tag := range nd.ActiveChildren() {
			if len(out) >= maxTagCandidates {
				break
			}
			out = append(out, candidate{n.Focus.WithSync(tag.Path()), tag.Name()})
		}
	}
	return out
}
