package consultant_test

import (
	"strings"
	"testing"

	"pperf/internal/consultant"
	"pperf/internal/core"
	"pperf/internal/mpi"
	"pperf/internal/sim"
)

// runPC builds a session for the program, starts the Performance Consultant
// with the given config, runs to completion, and returns the consultant.
func runPC(t *testing.T, impl mpi.ImplKind, np int, cfg consultant.Config, prog mpi.Program) *consultant.Consultant {
	t.Helper()
	s, err := core.NewSession(core.Options{Impl: impl, Nodes: 3, CPUsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register("main", prog)
	if err := s.Launch("main", np, nil); err != nil {
		t.Fatal(err)
	}
	pc := consultant.New(s.FE, s.Eng, cfg)
	if err := pc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return pc
}

// intensiveServerProg mimics the PPerfMark intensive-server shape: rank 0
// wastes time before replying, clients wait in MPI_Recv inside
// Grecv_message.
func intensiveServerProg(iters int) mpi.Program {
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := r.Size()
		if r.Rank() == 0 {
			for i := 0; i < iters*(n-1); i++ {
				rq, _ := c.Recv(r, nil, 1, mpi.Int, mpi.AnySource, 1)
				r.Call("server.c", "waste_time", func() { r.Compute(20 * sim.Millisecond) })
				c.Send(r, nil, 1, mpi.Int, rq.Source(), 2)
			}
		} else {
			for i := 0; i < iters; i++ {
				r.Call("client.c", "Gsend_message", func() {
					c.Send(r, nil, 1, mpi.Int, 0, 1)
				})
				r.Call("client.c", "Grecv_message", func() {
					c.Recv(r, nil, 1, mpi.Int, 0, 2)
				})
			}
		}
	}
}

func TestPCFindsSyncBottleneckAndDrillsDown(t *testing.T) {
	pc := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), intensiveServerProg(400))

	if !pc.TopLevelTrue(consultant.HypSync) {
		t.Fatalf("ExcessiveSyncWaitingTime should be true:\n%s", pc.Render())
	}
	// Drill-down: Grecv_message, then MPI_Recv, then the communicator.
	if !pc.HasFinding(consultant.HypSync, "Grecv_message") {
		t.Errorf("missing Grecv_message finding:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypSync, "MPI_Recv") {
		t.Errorf("missing MPI_Recv finding:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypSync, "/SyncObject/Message/comm-1") {
		t.Errorf("missing communicator finding:\n%s", pc.Render())
	}
	// CPUBound should be true too (the server is busy in waste_time).
	if !pc.TopLevelTrue(consultant.HypCPU) {
		t.Errorf("CPUBound should be true:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypCPU, "waste_time") {
		t.Errorf("missing waste_time CPU finding:\n%s", pc.Render())
	}
	// LAM should NOT show I/O blocking (shared-memory transport).
	if pc.TopLevelTrue(consultant.HypIO) {
		t.Errorf("LAM should not be IO bound:\n%s", pc.Render())
	}
}

func TestPCMPICHShowsIOBlocking(t *testing.T) {
	// Under MPICH the same program's message waiting goes through socket
	// read/write, so ExcessiveIOBlockingTime also tests true (Fig 3).
	pc := runPC(t, mpi.MPICH, 4, consultant.DefaultConfig(), intensiveServerProg(400))
	if !pc.TopLevelTrue(consultant.HypIO) {
		t.Errorf("MPICH should show IO blocking:\n%s", pc.Render())
	}
	if !pc.TopLevelTrue(consultant.HypSync) {
		t.Errorf("sync should also be true:\n%s", pc.Render())
	}
}

func TestPCAllFalseForQuietProgram(t *testing.T) {
	// A program that only does modest system-time work: all hypotheses
	// false — the system-time result (Table 2).
	pc := runPC(t, mpi.LAM, 2, consultant.DefaultConfig(), func(r *mpi.Rank, _ []string) {
		for i := 0; i < 100; i++ {
			r.SystemCompute(100 * sim.Millisecond)
		}
	})
	if pc.AnyTrue() {
		t.Errorf("all hypotheses should be false:\n%s", pc.Render())
	}
}

func TestPCCPUBoundHotProcedure(t *testing.T) {
	pc := runPC(t, mpi.LAM, 2, consultant.DefaultConfig(), func(r *mpi.Rank, _ []string) {
		for i := 0; i < 100; i++ {
			r.Call("hot.c", "bottleneckProcedure", func() { r.Compute(95 * sim.Millisecond) })
			r.Call("hot.c", "irrelevantProcedure0", func() { r.Compute(1 * sim.Millisecond) })
		}
	})
	if !pc.TopLevelTrue(consultant.HypCPU) {
		t.Fatalf("CPUBound should be true:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypCPU, "bottleneckProcedure") {
		t.Errorf("missing bottleneckProcedure:\n%s", pc.Render())
	}
	if pc.HasFinding(consultant.HypCPU, "irrelevantProcedure0") {
		t.Errorf("irrelevantProcedure0 should not be a finding:\n%s", pc.Render())
	}
}

func TestPCThresholdSensitivity(t *testing.T) {
	// diffuse-procedure shape: with 4 processes the bottleneck procedure
	// uses ~25% of each process — under the default 0.3 threshold it is
	// missed; at 0.2 it is found (§5.1.6).
	prog := func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := r.Size()
		for i := 0; i < 200; i++ {
			if i%n == r.Rank() {
				r.Call("diffuse.c", "bottleneckProcedure", func() { r.Compute(50 * sim.Millisecond) })
			}
			c.Barrier(r)
		}
	}
	def := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), prog)
	if def.HasFinding(consultant.HypCPU, "bottleneckProcedure") {
		t.Errorf("default threshold should miss the 25%% bottleneck:\n%s", def.Render())
	}
	low := consultant.DefaultConfig()
	low.CPUThreshold = 0.2
	found := runPC(t, mpi.LAM, 4, low, prog)
	if !found.HasFinding(consultant.HypCPU, "bottleneckProcedure") {
		t.Errorf("0.2 threshold should find the bottleneck:\n%s", found.Render())
	}
}

func TestPCWindowRefinement(t *testing.T) {
	// winfenceSync shape: rank 0 late to the fence; others wait. The PC
	// should pin the sync waiting on the RMA window resource.
	prog := func(r *mpi.Rank, _ []string) {
		c := r.World()
		win, _ := c.WinCreate(r, 64, 1, nil)
		for i := 0; i < 300; i++ {
			if r.Rank() == 0 {
				r.Call("wf.c", "waste_time", func() { r.Compute(40 * sim.Millisecond) })
			}
			if r.Rank() != 0 {
				win.Put(nil, 4, mpi.Byte, 0, 0, 4, mpi.Byte)
			}
			win.Fence(0)
		}
		win.Free()
	}
	pc := runPC(t, mpi.MPICH2, 3, consultant.DefaultConfig(), prog)
	if !pc.TopLevelTrue(consultant.HypSync) {
		t.Fatalf("sync should be true:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypSync, "MPI_Win_fence") {
		t.Errorf("missing MPI_Win_fence finding:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypSync, "/SyncObject/Window/0-1") {
		t.Errorf("missing window resource finding:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypCPU, "waste_time") {
		t.Errorf("missing waste_time CPU finding:\n%s", pc.Render())
	}
}

func TestPCBarrierRefinement(t *testing.T) {
	// random-barrier-like: everyone waits in MPI_Barrier for a rotating
	// waster. Sync should refine to /SyncObject/Barrier.
	prog := func(r *mpi.Rank, _ []string) {
		c := r.World()
		n := r.Size()
		for i := 0; i < 120; i++ {
			if i%n == r.Rank() {
				r.Call("rb.c", "waste_time", func() { r.Compute(60 * sim.Millisecond) })
			}
			c.Barrier(r)
		}
	}
	pc := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), prog)
	if !pc.HasFinding(consultant.HypSync, "/SyncObject/Barrier") {
		t.Errorf("missing Barrier refinement:\n%s", pc.Render())
	}
	if !pc.HasFinding(consultant.HypSync, "MPI_Barrier") {
		t.Errorf("missing MPI_Barrier code finding:\n%s", pc.Render())
	}
}

func TestPCRenderShape(t *testing.T) {
	pc := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), intensiveServerProg(300))
	out := pc.Render()
	if !strings.Contains(out, "TopLevelHypothesis") {
		t.Errorf("render header missing:\n%s", out)
	}
	if !strings.Contains(out, "ExcessiveSyncWaitingTime: true") {
		t.Errorf("render should state sync true:\n%s", out)
	}
	// False hypotheses are listed but not expanded.
	if !strings.Contains(out, "ExcessiveIOBlockingTime: false") {
		t.Errorf("render should state io false:\n%s", out)
	}
}

func TestPCMachineRefinement(t *testing.T) {
	// One process (rank 0 on node0) hogging CPU: the machine axis should
	// identify the node and process.
	pc := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), func(r *mpi.Rank, _ []string) {
		if r.Rank() == 0 {
			r.Call("m.c", "spin", func() { r.Compute(10 * sim.Second) })
		} else {
			r.IdleWait(10 * sim.Second)
		}
	})
	if !pc.HasFinding(consultant.HypCPU, "/Machine/node0") {
		t.Errorf("missing machine refinement:\n%s", pc.Render())
	}
}

func TestPCPrunesFalseNodes(t *testing.T) {
	cfg := consultant.DefaultConfig()
	cfg.PruneEvals = 3
	pc := runPC(t, mpi.LAM, 2, cfg, func(r *mpi.Rank, _ []string) {
		r.IdleWait(30 * sim.Second) // nothing happening at all
	})
	for _, root := range pc.Roots() {
		if !root.Pruned {
			t.Errorf("%s should be pruned after persistent false", root.Hypothesis)
		}
	}
}

func TestRenderFullAndStats(t *testing.T) {
	pc := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), intensiveServerProg(400))
	full := pc.RenderFull()
	if !strings.Contains(full, "TRUE") {
		t.Errorf("full render should mark true nodes:\n%s", full)
	}
	if !strings.Contains(full, "false") && !strings.Contains(full, "pruned") {
		t.Errorf("full render should include refuted nodes:\n%s", full)
	}
	tested, trueCount, _ := pc.Stats()
	if tested <= trueCount || trueCount == 0 {
		t.Errorf("stats tested=%d true=%d", tested, trueCount)
	}
}

func TestPCDedupesConvergentFoci(t *testing.T) {
	// The same focus is reachable by refining axes in different orders; it
	// must be tested once. Every (hypothesis, focus) in the tree is unique.
	pc := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), intensiveServerProg(400))
	seen := map[string]int{}
	var walk func(n *consultant.Node)
	walk = func(n *consultant.Node) {
		seen[n.Hypothesis+n.Focus.Key()]++
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, r := range pc.Roots() {
		walk(r)
	}
	for k, count := range seen {
		if count > 1 {
			t.Errorf("focus tested %d times: %s", count, k)
		}
	}
}

func TestPCRefinesToProcessLevel(t *testing.T) {
	// The machine axis must reach individual processes (the paper's PC
	// identifies which process is the waster).
	pc := runPC(t, mpi.LAM, 4, consultant.DefaultConfig(), intensiveServerProg(500))
	if !pc.HasFinding(consultant.HypSync, "/Machine/node") {
		t.Fatalf("no machine refinement:\n%s", pc.Render())
	}
	found := false
	for _, f := range pc.Findings() {
		if strings.Contains(f.FocusStr, "/Machine/") && strings.Contains(f.FocusStr, "main{") {
			found = true
		}
	}
	if !found {
		t.Errorf("no process-level finding:\n%s", pc.Render())
	}
}

func TestPCPruningRemovesInstrumentation(t *testing.T) {
	// After persistent-false pruning, the pruned foci's probes are deleted:
	// total active probes drop.
	cfg := consultant.DefaultConfig()
	cfg.PruneEvals = 3
	s, err := core.NewSession(core.Options{Impl: mpi.LAM, Nodes: 2, CPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Register("idle", func(r *mpi.Rank, _ []string) {
		r.IdleWait(30 * sim.Second)
	})
	if err := s.Launch("idle", 2, nil); err != nil {
		t.Fatal(err)
	}
	pc := consultant.New(s.FE, s.Eng, cfg)
	if err := pc.Start(); err != nil {
		t.Fatal(err)
	}
	var midProbes, endProbes int
	s.Eng.At(sim.Time(2*sim.Second), func() {
		for _, r := range s.World.Ranks() {
			midProbes += r.Probes().ActiveProbes()
		}
	})
	s.Eng.At(sim.Time(25*sim.Second), func() {
		for _, r := range s.World.Ranks() {
			endProbes += r.Probes().ActiveProbes()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if endProbes >= midProbes {
		t.Errorf("probes did not shrink after pruning: %d → %d", midProbes, endProbes)
	}
}

func TestPCConfigThresholdsRespected(t *testing.T) {
	// With an absurdly high sync threshold nothing tests true.
	cfg := consultant.DefaultConfig()
	cfg.SyncThreshold = 5
	cfg.CPUThreshold = 5
	cfg.IOThreshold = 5
	pc := runPC(t, mpi.LAM, 4, cfg, intensiveServerProg(200))
	if pc.AnyTrue() {
		t.Errorf("nothing should pass a threshold of 5:\n%s", pc.Render())
	}
}
