package consultant

import (
	"fmt"
	"sort"
	"strings"
)

// Finding is one true hypothesis node, for programmatic inspection.
type Finding struct {
	Hypothesis string
	FocusStr   string
	Label      string
	Value      float64
	Depth      int
	// Partial marks a finding evaluated on incomplete data (some processes
	// were lost to injected or real failures while it was tested).
	Partial bool
	// GapPartial marks a finding whose evaluation interval overlapped an
	// unmeasured outage gap (daemon respawned by the supervisor).
	GapPartial bool
}

// Findings returns every node that tested true, shallowest first.
func (c *Consultant) Findings() []Finding {
	var out []Finding
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.True {
			out = append(out, Finding{
				Hypothesis: n.Hypothesis,
				FocusStr:   n.Focus.String(),
				Label:      n.Label,
				Value:      n.Value,
				Depth:      n.depth,
				Partial:    n.Partial,
				GapPartial: n.GapPartial,
			})
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, r := range c.roots {
		walk(r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Depth < out[j].Depth })
	return out
}

// TopVerdict is one top-level hypothesis outcome in an Export.
type TopVerdict struct {
	Hypothesis string
	True       bool
	Value      float64
}

// Export is the machine-readable verdict of one completed search: the
// top-level hypothesis outcomes, every true finding, and the search-size
// counters. The experiment store (internal/perfdb) persists its String
// form in the run index so stored runs can be compared without replay.
type Export struct {
	TopLevel []TopVerdict
	Findings []Finding
	Tested   int
	True     int
	Pruned   int
}

// Export summarizes the search for storage and cross-run comparison.
func (c *Consultant) Export() Export {
	e := Export{Findings: c.Findings()}
	for _, r := range c.roots {
		e.TopLevel = append(e.TopLevel, TopVerdict{Hypothesis: r.Hypothesis, True: r.True, Value: r.Value})
	}
	e.Tested, e.True, e.Pruned = c.Stats()
	return e
}

// shortHyp maps hypothesis names to the compact labels Export.String uses.
var shortHyp = map[string]string{
	HypSync: "sync",
	HypIO:   "io",
	HypCPU:  "cpu",
}

// String renders the export as one deterministic line, e.g.
// "sync=true(0.43) io=false(0.01) cpu=true(0.38); 7 findings, 23 tested, 9 pruned".
func (e Export) String() string {
	var b strings.Builder
	for i, tv := range e.TopLevel {
		if i > 0 {
			b.WriteByte(' ')
		}
		name := shortHyp[tv.Hypothesis]
		if name == "" {
			name = tv.Hypothesis
		}
		fmt.Fprintf(&b, "%s=%s(%.2f)", name, boolWord(tv.True), tv.Value)
	}
	fmt.Fprintf(&b, "; %d findings, %d tested, %d pruned", len(e.Findings), e.Tested, e.Pruned)
	return b.String()
}

// HasFinding reports whether some true node under the given hypothesis has
// a focus containing substr (e.g. "MPI_Send", "/SyncObject/Window/0-1").
// Empty hypothesis matches any.
func (c *Consultant) HasFinding(hypothesis, substr string) bool {
	for _, f := range c.Findings() {
		if hypothesis != "" && f.Hypothesis != hypothesis {
			continue
		}
		if strings.Contains(f.FocusStr, substr) || strings.Contains(f.Label, substr) {
			return true
		}
	}
	return false
}

// TopLevelTrue reports whether the named top-level hypothesis tested true.
func (c *Consultant) TopLevelTrue(hypothesis string) bool {
	for _, r := range c.roots {
		if r.Hypothesis == hypothesis {
			return r.True
		}
	}
	return false
}

// AnyTrue reports whether any top-level hypothesis tested true (system-time
// expects none).
func (c *Consultant) AnyTrue() bool {
	for _, r := range c.roots {
		if r.True {
			return true
		}
	}
	return false
}

// Render produces the condensed form of the Performance Consultant's
// findings, as the paper's figures show: the top-level hypotheses with their
// truth values, and beneath each true one the tree of true refinements.
func (c *Consultant) Render() string {
	degraded := c.ds.LostProcessCount() > 0
	gaps := c.ds.UnmeasuredGaps()
	var b strings.Builder
	b.WriteString("TopLevelHypothesis\n")
	for i, r := range c.roots {
		last := i == len(c.roots)-1
		connector, indent := "├─ ", "│  "
		if last {
			connector, indent = "└─ ", "   "
		}
		mark := ""
		// A hypothesis is flagged when its data is untrustworthy right now
		// (processes still lost) or when any of its evaluation intervals
		// overlapped an unmeasured outage gap. Gap marks are scoped to the
		// overlapping hypotheses — a recovered run's other verdicts render
		// clean.
		if (degraded && r.Partial) || r.GapPartial {
			mark = " [partial data]"
		}
		fmt.Fprintf(&b, "%s%s: %s (%.2f)%s\n", connector, r.Hypothesis, boolWord(r.True), r.Value, mark)
		if r.True {
			renderTrueChildren(&b, r, indent)
		}
	}
	// In a healthy run neither block ever renders, so default reports are
	// unchanged; in a degraded or gap-recovered run the verdicts carry
	// their caveat.
	if degraded {
		fmt.Fprintf(&b, "WARNING: %s\n", c.ds.DegradationSummary())
		b.WriteString("WARNING: hypotheses marked [partial data] were evaluated on surviving processes only\n")
	}
	if len(gaps) > 0 {
		for _, g := range gaps {
			fmt.Fprintf(&b, "WARNING: unmeasured gap on %s from %v to %v (daemon respawned)\n", g.Node, g.From, g.To)
		}
		if !degraded {
			b.WriteString("WARNING: hypotheses marked [partial data] overlapped an unmeasured gap\n")
		}
	}
	return b.String()
}

// Coverage reports the front end's data-coverage fraction at render time
// (1.0 = every known process reporting).
func (c *Consultant) Coverage() float64 { return c.ds.Coverage() }

func boolWord(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// renderTrueChildren draws the true descendants of a node, labelling each
// refinement step, with duplicate foci collapsed.
func renderTrueChildren(b *strings.Builder, n *Node, indent string) {
	var kids []*Node
	seen := map[string]bool{}
	for _, ch := range n.Children {
		if ch.True && !seen[ch.Focus.Key()] {
			seen[ch.Focus.Key()] = true
			kids = append(kids, ch)
		}
	}
	for i, ch := range kids {
		last := i == len(kids)-1
		connector, childIndent := "├─ ", indent+"│  "
		if last {
			connector, childIndent = "└─ ", indent+"   "
		}
		fmt.Fprintf(b, "%s%s%s (%.2f)\n", indent, connector, ch.describe(), ch.Value)
		renderTrueChildren(b, ch, childIndent)
	}
}

// RenderFull draws the complete search history — every tested node with its
// truth state and value, refuted and pruned ones included — like Paradyn's
// full Performance Consultant window (the condensed Render shows only the
// true path, as the paper's figures do).
func (c *Consultant) RenderFull() string {
	var b strings.Builder
	b.WriteString("Performance Consultant search history\n")
	var rec func(n *Node, indent string, last bool)
	rec = func(n *Node, indent string, last bool) {
		connector, childIndent := "├─ ", indent+"│  "
		if last {
			connector, childIndent = "└─ ", indent+"   "
		}
		state := "testing"
		switch {
		case n.True:
			state = "TRUE"
		case n.Pruned:
			state = "pruned"
		case n.evals > 0:
			state = "false"
		}
		fmt.Fprintf(&b, "%s%s%s [%s %.2f]\n", indent, connector, n.describe(), state, n.Value)
		for i, ch := range n.Children {
			rec(ch, childIndent, i == len(n.Children)-1)
		}
	}
	for i, r := range c.roots {
		rec(r, "", i == len(c.roots)-1)
	}
	return b.String()
}

// Stats summarizes the search: nodes tested, true, pruned.
func (c *Consultant) Stats() (tested, trueCount, pruned int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		tested++
		if n.True {
			trueCount++
		}
		if n.Pruned {
			pruned++
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, r := range c.roots {
		walk(r)
	}
	return
}

// describe renders the refinement step this node adds over its parent.
func (n *Node) describe() string {
	if n.Parent == nil {
		return n.Hypothesis
	}
	p := n.Parent.Focus
	f := n.Focus
	switch {
	case f.CodePath != p.CodePath:
		return n.Label
	case f.SyncPath != p.SyncPath:
		return f.SyncPath + nameSuffix(n)
	case f.MachinePath != p.MachinePath:
		return f.MachinePath
	default:
		return n.Label
	}
}

// nameSuffix appends a friendly name when the resource has one.
func nameSuffix(n *Node) string {
	h := n.c.ds.Hierarchy()
	if res := h.FindPath(n.Focus.SyncPath); res != nil {
		if res.DisplayName() != res.Name() {
			return fmt.Sprintf(" (%s)", res.DisplayName())
		}
	}
	return ""
}
