package mdl

import "sync"

// StdSource is the standard metric library in MDL, containing the paper's
// Table 1 RMA metrics (rma_*_ops, rma_*_bytes, at/pt/general rma_sync_wait,
// rma_sync_ops), the MPI-1 metrics the Performance Consultant searches with
// (sync_wait_inclusive, io_wait, cpu_inclusive, message counters), and the
// resource constraints of Fig 2 (the RMA window constraint plus message
// communicator/tag constraints). Function sets list both MPI_ and PMPI_
// symbols — the §4.1.1 fix for MPICH's weak-symbol builds.
const StdSource = `
// ---- function sets -------------------------------------------------------

resourceList mpi_put is procedure { "MPI_Put", "PMPI_Put" } flavor { mpi };
resourceList mpi_get is procedure { "MPI_Get", "PMPI_Get" } flavor { mpi };
resourceList mpi_acc is procedure { "MPI_Accumulate", "PMPI_Accumulate" } flavor { mpi };

resourceList mpi_at_rma_sync is procedure {
    "MPI_Win_fence", "PMPI_Win_fence",
    "MPI_Win_start", "PMPI_Win_start",
    "MPI_Win_complete", "PMPI_Win_complete",
    "MPI_Win_wait", "PMPI_Win_wait"
} flavor { mpi };

resourceList mpi_pt_rma_sync is procedure {
    "MPI_Win_lock", "PMPI_Win_lock",
    "MPI_Win_unlock", "PMPI_Win_unlock"
} flavor { mpi };

resourceList mpi_rma_sync is procedure {
    "MPI_Win_fence", "PMPI_Win_fence",
    "MPI_Win_create", "PMPI_Win_create",
    "MPI_Win_free", "PMPI_Win_free",
    "MPI_Win_start", "PMPI_Win_start",
    "MPI_Win_complete", "PMPI_Win_complete",
    "MPI_Win_wait", "PMPI_Win_wait",
    "MPI_Win_lock", "PMPI_Win_lock",
    "MPI_Win_unlock", "PMPI_Win_unlock",
    "MPI_Put", "PMPI_Put",
    "MPI_Get", "PMPI_Get",
    "MPI_Accumulate", "PMPI_Accumulate"
} flavor { mpi };

resourceList mpi_rma_sync_ops_fns is procedure {
    "MPI_Win_fence", "PMPI_Win_fence",
    "MPI_Win_start", "PMPI_Win_start",
    "MPI_Win_complete", "PMPI_Win_complete",
    "MPI_Win_wait", "PMPI_Win_wait",
    "MPI_Win_lock", "PMPI_Win_lock",
    "MPI_Win_unlock", "PMPI_Win_unlock"
} flavor { mpi };

resourceList mpi_sync_calls is procedure {
    "MPI_Send", "PMPI_Send",
    "MPI_Recv", "PMPI_Recv",
    "MPI_Wait", "PMPI_Wait",
    "MPI_Waitall", "PMPI_Waitall",
    "MPI_Sendrecv", "PMPI_Sendrecv",
    "MPI_Barrier", "PMPI_Barrier",
    "MPI_Bcast", "PMPI_Bcast",
    "MPI_Reduce", "PMPI_Reduce",
    "MPI_Allreduce", "PMPI_Allreduce",
    "MPI_Comm_spawn", "PMPI_Comm_spawn",
    "MPI_Win_fence", "PMPI_Win_fence",
    "MPI_Win_create", "PMPI_Win_create",
    "MPI_Win_free", "PMPI_Win_free",
    "MPI_Win_start", "PMPI_Win_start",
    "MPI_Win_complete", "PMPI_Win_complete",
    "MPI_Win_wait", "PMPI_Win_wait",
    "MPI_Win_lock", "PMPI_Win_lock",
    "MPI_Win_unlock", "PMPI_Win_unlock"
} flavor { mpi };

resourceList mpi_send_entry is procedure {
    "MPI_Send", "PMPI_Send", "MPI_Isend", "PMPI_Isend"
} flavor { mpi };

resourceList mpi_recv_entry is procedure {
    "MPI_Recv", "PMPI_Recv", "MPI_Irecv", "PMPI_Irecv"
} flavor { mpi };

resourceList mpi_sendrecv_fns is procedure {
    "MPI_Sendrecv", "PMPI_Sendrecv"
} flavor { mpi };

resourceList mpi_p2p_comm5 is procedure {
    "MPI_Send", "PMPI_Send", "MPI_Recv", "PMPI_Recv",
    "MPI_Isend", "PMPI_Isend", "MPI_Irecv", "PMPI_Irecv"
} flavor { mpi };

resourceList io_fns is procedure {
    "read", "write",
    "MPI_File_open", "PMPI_File_open",
    "MPI_File_close", "PMPI_File_close",
    "MPI_File_read_at", "PMPI_File_read_at",
    "MPI_File_write_at", "PMPI_File_write_at"
} flavor { mpi };

resourceList mpi_file_write is procedure {
    "MPI_File_write_at", "PMPI_File_write_at"
} flavor { mpi };

resourceList mpi_file_read is procedure {
    "MPI_File_read_at", "PMPI_File_read_at"
} flavor { mpi };

resourceList mpi_win_arg1 is procedure {
    "MPI_Win_fence", "PMPI_Win_fence", "MPI_Win_unlock", "PMPI_Win_unlock"
} flavor { mpi };

resourceList mpi_win_arg2 is procedure {
    "MPI_Win_start", "PMPI_Win_start", "MPI_Win_post", "PMPI_Win_post"
} flavor { mpi };

resourceList mpi_win_arg0 is procedure {
    "MPI_Win_complete", "PMPI_Win_complete",
    "MPI_Win_wait", "PMPI_Win_wait",
    "MPI_Win_free", "PMPI_Win_free"
} flavor { mpi };

resourceList mpi_win_arg3 is procedure {
    "MPI_Win_lock", "PMPI_Win_lock"
} flavor { mpi };

resourceList mpi_spawn is procedure {
    "MPI_Comm_spawn", "PMPI_Comm_spawn"
} flavor { mpi };

// ---- constraints (Fig 2) -------------------------------------------------

constraint mpi_windowConstraint /SyncObject/Window is counter {
    foreach func in mpi_get {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_put {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_acc {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[8]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg1 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[1]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg2 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[2]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg0 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[0]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg3 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[3]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
}

constraint mpi_msgConstraint /SyncObject/Message is counter {
    foreach func in mpi_p2p_comm5 {
        prepend preinsn func.entry (*
            if (DYNINSTComm_FindId($arg[5]) == $constraint[0]) mpi_msgConstraint = 1;
        *)
        append preinsn func.return (* mpi_msgConstraint = 0; *)
    }
    foreach func in mpi_sendrecv_fns {
        prepend preinsn func.entry (*
            if (DYNINSTComm_FindId($arg[10]) == $constraint[0]) mpi_msgConstraint = 1;
        *)
        append preinsn func.return (* mpi_msgConstraint = 0; *)
    }
}

constraint mpi_msgTagConstraint /SyncObject/Message/* is counter {
    foreach func in mpi_p2p_comm5 {
        prepend preinsn func.entry (*
            if (DYNINSTTagName($arg[4]) == $constraint[0]) mpi_msgTagConstraint = 1;
        *)
        append preinsn func.return (* mpi_msgTagConstraint = 0; *)
    }
    foreach func in mpi_sendrecv_fns {
        prepend preinsn func.entry (*
            if (DYNINSTTagName($arg[4]) == $constraint[0]) mpi_msgTagConstraint = 1;
        *)
        prepend preinsn func.entry (*
            if (DYNINSTTagName($arg[9]) == $constraint[0]) mpi_msgTagConstraint = 1;
        *)
        append preinsn func.return (* mpi_msgTagConstraint = 0; *)
    }
}

// ---- Table 1: RMA metrics -------------------------------------------------

metric mpi_rma_put_ops {
    name "rma_put_ops";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (* mpi_rma_put_ops++; *)
        }
    }
}

metric mpi_rma_get_ops {
    name "rma_get_ops";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_get {
            append preinsn func.entry constrained (* mpi_rma_get_ops++; *)
        }
    }
}

metric mpi_rma_acc_ops {
    name "rma_acc_ops";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_acc {
            append preinsn func.entry constrained (* mpi_rma_acc_ops++; *)
        }
    }
}

metric mpi_rma_ops {
    name "rma_ops";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (* mpi_rma_ops++; *)
        }
        foreach func in mpi_get {
            append preinsn func.entry constrained (* mpi_rma_ops++; *)
        }
        foreach func in mpi_acc {
            append preinsn func.entry constrained (* mpi_rma_ops++; *)
        }
    }
}

metric mpi_rma_put_bytes {
    name "rma_put_bytes";
    units bytes;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_rma_put_bytes += bytes * count;
            *)
        }
    }
}

metric mpi_rma_get_bytes {
    name "rma_get_bytes";
    units bytes;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_get {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_rma_get_bytes += bytes * count;
            *)
        }
    }
}

metric mpi_rma_acc_bytes {
    name "rma_acc_bytes";
    units bytes;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_acc {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_rma_acc_bytes += bytes * count;
            *)
        }
    }
}

metric mpi_rma_bytes {
    name "rma_bytes";
    units bytes;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_rma_bytes += bytes * count;
            *)
        }
        foreach func in mpi_get {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_rma_bytes += bytes * count;
            *)
        }
        foreach func in mpi_acc {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_rma_bytes += bytes * count;
            *)
        }
    }
}

metric mpi_at_rma_syncwait {
    name "at_rma_sync_wait";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_at_rma_sync {
            append preinsn func.entry constrained (* startWalltimer(mpi_at_rma_syncwait); *)
            prepend preinsn func.return constrained (* stopWalltimer(mpi_at_rma_syncwait); *)
        }
    }
}

metric mpi_pt_rma_syncwait {
    name "pt_rma_sync_wait";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_pt_rma_sync {
            append preinsn func.entry constrained (* startWalltimer(mpi_pt_rma_syncwait); *)
            prepend preinsn func.return constrained (* stopWalltimer(mpi_pt_rma_syncwait); *)
        }
    }
}

metric mpi_rma_syncwait {
    name "rma_sync_wait";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is walltimer {
        foreach func in mpi_rma_sync {
            append preinsn func.entry constrained (* startWalltimer(mpi_rma_syncwait); *)
            prepend preinsn func.return constrained (* stopWalltimer(mpi_rma_syncwait); *)
        }
    }
}

metric mpi_rma_sync_ops {
    name "rma_sync_ops";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_rma_sync_ops_fns {
            append preinsn func.entry constrained (* mpi_rma_sync_ops++; *)
        }
    }
}

// ---- MPI-1 metrics --------------------------------------------------------

metric mpi_sync_wait {
    name "sync_wait_inclusive";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgTagConstraint;
    base is walltimer {
        foreach func in mpi_sync_calls {
            append preinsn func.entry constrained (* startWalltimer(mpi_sync_wait); *)
            prepend preinsn func.return constrained (* stopWalltimer(mpi_sync_wait); *)
        }
    }
}

metric mpi_io_wait {
    name "io_wait";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is walltimer {
        foreach func in io_fns {
            append preinsn func.entry constrained (* startWalltimer(mpi_io_wait); *)
            prepend preinsn func.return constrained (* stopWalltimer(mpi_io_wait); *)
        }
    }
}

metric mpi_io_ops {
    name "io_ops";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is counter {
        foreach func in mpi_file_write {
            append preinsn func.entry constrained (* mpi_io_ops++; *)
        }
        foreach func in mpi_file_read {
            append preinsn func.entry constrained (* mpi_io_ops++; *)
        }
    }
}

metric mpi_io_bytes {
    name "io_bytes";
    units bytes;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_file_write {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[4], &bytes);
                count = $arg[3];
                mpi_io_bytes += bytes * count;
            *)
        }
        foreach func in mpi_file_read {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[4], &bytes);
                count = $arg[3];
                mpi_io_bytes += bytes * count;
            *)
        }
    }
}

metric mpi_msgs_sent {
    name "msgs_sent";
    units msgs;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgTagConstraint;
    base is counter {
        foreach func in mpi_send_entry {
            append preinsn func.entry constrained (* mpi_msgs_sent++; *)
        }
        foreach func in mpi_sendrecv_fns {
            append preinsn func.entry constrained (* mpi_msgs_sent++; *)
        }
    }
}

metric mpi_msgs_recv {
    name "msgs_recv";
    units msgs;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgTagConstraint;
    base is counter {
        foreach func in mpi_recv_entry {
            append preinsn func.entry constrained (* mpi_msgs_recv++; *)
        }
        foreach func in mpi_sendrecv_fns {
            append preinsn func.entry constrained (* mpi_msgs_recv++; *)
        }
    }
}

metric mpi_msg_bytes_sent {
    name "msg_bytes_sent";
    units bytes;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgTagConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_send_entry {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_msg_bytes_sent += bytes * count;
            *)
        }
        foreach func in mpi_sendrecv_fns {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_msg_bytes_sent += bytes * count;
            *)
        }
    }
}

metric mpi_msg_bytes_recv {
    name "msg_bytes_recv";
    units bytes;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_msgConstraint;
    constraint mpi_msgTagConstraint;
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_recv_entry {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                mpi_msg_bytes_recv += bytes * count;
            *)
        }
        foreach func in mpi_sendrecv_fns {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[7], &bytes);
                count = $arg[6];
                mpi_msg_bytes_recv += bytes * count;
            *)
        }
    }
}

metric mpi_spawn_ops {
    name "spawn_ops";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is counter {
        foreach func in mpi_spawn {
            append preinsn func.entry constrained (* mpi_spawn_ops++; *)
        }
    }
}

metric mpi_spawn_wait {
    name "spawn_wait";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is walltimer {
        foreach func in mpi_spawn {
            append preinsn func.entry constrained (* startWalltimer(mpi_spawn_wait); *)
            prepend preinsn func.return constrained (* stopWalltimer(mpi_spawn_wait); *)
        }
    }
}

// ---- code metrics ----------------------------------------------------------

metric cpu_inclusive {
    name "cpu_inclusive";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    base is processtimer {
        foreach func in focusCode {
            append preinsn func.entry (* startProcessTimer(cpu_inclusive); *)
            prepend preinsn func.return (* stopProcessTimer(cpu_inclusive); *)
        }
    }
}

metric wall_inclusive {
    name "wall_inclusive";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    base is walltimer {
        foreach func in focusCode {
            append preinsn func.entry (* startWalltimer(wall_inclusive); *)
            prepend preinsn func.return (* stopWalltimer(wall_inclusive); *)
        }
    }
}

metric procedure_calls {
    name "procedure_calls";
    units calls;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    base is counter {
        foreach func in focusCode {
            append preinsn func.entry (* procedure_calls++; *)
        }
    }
}

// exec_time reads the process wall clock directly; the Performance
// Consultant divides other metrics by it.
metric exec_time {
    name "exec_time";
    units seconds;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    base is wallclock {
    }
}

// system_time is the extension metric whose absence made the paper's
// system-time benchmark fail (Table 2): Paradyn's default metrics did not
// measure kernel time. It is provided here as an opt-in extra and is not
// part of the Performance Consultant's default hypothesis set, preserving
// the paper's result.
metric system_time {
    name "system_time";
    units CPUs;
    unitstype normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    base is sysclock {
    }
}
`

var (
	stdOnce sync.Once
	stdLib  *Library
	stdErr  error
)

// StdLib returns the compiled standard metric library. Compilation happens
// once; an error in the embedded source is a programming bug and panics.
func StdLib() *Library {
	stdOnce.Do(func() {
		stdLib, stdErr = CompileSource(StdSource)
	})
	if stdErr != nil {
		panic("mdl: standard library does not compile: " + stdErr.Error())
	}
	return stdLib
}

// NewLibraryWithStd compiles user MDL source and merges it on top of a fresh
// copy of the standard library (how Paradyn users extend the tool, §4).
func NewLibraryWithStd(userSrc string) (*Library, error) {
	base, err := CompileSource(StdSource)
	if err != nil {
		return nil, err
	}
	if userSrc != "" {
		user, err := CompileSource(userSrc)
		if err != nil {
			return nil, err
		}
		if err := base.MergeFrom(user); err != nil {
			return nil, err
		}
	}
	return base, nil
}
