package mdl

import (
	"fmt"
	"strings"

	"pperf/internal/metric"
	"pperf/internal/probe"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// Target is the per-process context a metric is instantiated against. The
// daemon implements it around one simulated process.
type Target interface {
	// Probes is the process's dynamic-instrumentation state.
	Probes() *probe.Process
	// FunctionsOfModule lists the functions discovered so far in a source
	// module (for module-level Code foci).
	FunctionsOfModule(module string) []string
	// WallNow/CPUNow/SystemNow expose the process clocks for direct-reading
	// accumulators.
	WallNow() sim.Time
	CPUNow() sim.Duration
	SystemNow() sim.Duration
}

// Library is a compiled set of MDL declarations: function sets, constraints,
// and metrics, ready to instantiate on processes.
type Library struct {
	sets        map[string][]string
	constraints map[string]*ConstraintDecl
	metrics     map[string]*CompiledMetric // keyed by display name
	order       []string
}

// CompileSource parses and compiles MDL text into a Library.
func CompileSource(src string) (*Library, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// Compile builds a Library from a parsed file, checking set and constraint
// references.
func Compile(f *File) (*Library, error) {
	lib := &Library{
		sets:        map[string][]string{},
		constraints: map[string]*ConstraintDecl{},
		metrics:     map[string]*CompiledMetric{},
	}
	for _, rl := range f.ResourceLists {
		if _, dup := lib.sets[rl.Name]; dup {
			return nil, fmt.Errorf("mdl:%d: duplicate resourceList %s", rl.Line, rl.Name)
		}
		lib.sets[rl.Name] = rl.Items
	}
	for _, c := range f.Constraints {
		if _, dup := lib.constraints[c.Name]; dup {
			return nil, fmt.Errorf("mdl:%d: duplicate constraint %s", c.Line, c.Name)
		}
		for _, fe := range c.Foreachs {
			if err := lib.checkSet(fe.SetName, c.Line); err != nil {
				return nil, err
			}
		}
		lib.constraints[c.Name] = c
	}
	for _, m := range f.Metrics {
		if m.DisplayName == "" {
			m.DisplayName = m.ID
		}
		if _, dup := lib.metrics[m.DisplayName]; dup {
			return nil, fmt.Errorf("mdl:%d: duplicate metric %s", m.Line, m.DisplayName)
		}
		for _, fe := range m.Foreachs {
			if err := lib.checkSet(fe.SetName, m.Line); err != nil {
				return nil, err
			}
		}
		for _, cn := range m.Constraints {
			if !isBuiltinConstraint(cn) {
				if _, ok := lib.constraints[cn]; !ok {
					return nil, fmt.Errorf("mdl:%d: metric %s references unknown constraint %s", m.Line, m.ID, cn)
				}
			}
		}
		cm := &CompiledMetric{lib: lib, decl: m, def: defFromDecl(m)}
		lib.metrics[m.DisplayName] = cm
		lib.order = append(lib.order, m.DisplayName)
	}
	return lib, nil
}

// checkSet validates a function-set reference; "focusCode" is the magic set
// bound to the focus's Code selection at instantiation time.
func (lib *Library) checkSet(name string, line int) error {
	if name == "focusCode" {
		return nil
	}
	if _, ok := lib.sets[name]; !ok {
		return fmt.Errorf("mdl:%d: unknown function set %s", line, name)
	}
	return nil
}

// isBuiltinConstraint recognizes the native (non-MDL) constraints.
func isBuiltinConstraint(name string) bool {
	switch name {
	case "procedureConstraint", "moduleConstraint", "machineConstraint", "processConstraint":
		return true
	}
	return false
}

// Metric returns the compiled metric with the given display name, or nil.
func (lib *Library) Metric(name string) *CompiledMetric { return lib.metrics[name] }

// MetricNames lists the library's metrics in declaration order.
func (lib *Library) MetricNames() []string { return append([]string(nil), lib.order...) }

// MergeFrom adds the other library's declarations (user-supplied MDL on top
// of the standard library, as Paradyn's PCL allows). Duplicates are errors.
func (lib *Library) MergeFrom(other *Library) error {
	for name, items := range other.sets {
		if _, dup := lib.sets[name]; dup {
			return fmt.Errorf("mdl: duplicate resourceList %s", name)
		}
		lib.sets[name] = items
	}
	for name, c := range other.constraints {
		if _, dup := lib.constraints[name]; dup {
			return fmt.Errorf("mdl: duplicate constraint %s", name)
		}
		lib.constraints[name] = c
	}
	for _, name := range other.order {
		if _, dup := lib.metrics[name]; dup {
			return fmt.Errorf("mdl: duplicate metric %s", name)
		}
		cm := other.metrics[name]
		lib.metrics[name] = &CompiledMetric{lib: lib, decl: cm.decl, def: cm.def}
		lib.order = append(lib.order, name)
	}
	return nil
}

func defFromDecl(m *MetricDecl) *metric.Def {
	d := &metric.Def{Name: m.DisplayName, Units: m.Units}
	switch strings.ToLower(m.UnitsType) {
	case "normalized":
		d.UnitsType = metric.Normalized
	case "sampled":
		d.UnitsType = metric.Sampled
	default:
		d.UnitsType = metric.Unnormalized
	}
	switch strings.ToLower(m.AggOp) {
	case "avg":
		d.Agg = metric.AggAvg
	case "min":
		d.Agg = metric.AggMin
	case "max":
		d.Agg = metric.AggMax
	default:
		d.Agg = metric.AggSum
	}
	if strings.EqualFold(m.Style, "SampledFunction") {
		d.Style = metric.SampledFunction
	}
	return d
}

// CompiledMetric is an instantiable metric.
type CompiledMetric struct {
	lib  *Library
	decl *MetricDecl
	def  *metric.Def
}

// Def returns the metric's metadata.
func (cm *CompiledMetric) Def() *metric.Def { return cm.def }

// Instance is a live metric-focus pair on one process: the accumulator
// instrumentation feeds and the probes to remove on disable.
type Instance struct {
	Acc      metric.Accumulator
	target   Target
	probeIDs []probe.ID
	// moduleWatch, when non-empty, asks the daemon to call ExtendFunction
	// for newly discovered functions of this module (module-level foci see
	// functions that have not executed yet).
	moduleWatch string
	extendSpecs []*ProbeSpec
	env         *env
}

// Remove deletes the instance's instrumentation from the process —
// Paradyn's dynamic deletion of measurement instructions.
func (in *Instance) Remove() {
	for _, id := range in.probeIDs {
		in.target.Probes().Remove(id)
	}
	in.probeIDs = nil
}

// ModuleWatch returns the module whose future function discoveries should
// extend this instance ("" if none).
func (in *Instance) ModuleWatch() string { return in.moduleWatch }

// ExtendFunction instruments a newly discovered function of the watched
// module.
func (in *Instance) ExtendFunction(fname string) {
	for _, ps := range in.extendSpecs {
		in.probeIDs = append(in.probeIDs, in.insertSpec(fname, ps))
	}
}

func (in *Instance) insertSpec(fname string, ps *ProbeSpec) probe.ID {
	h := in.env.handler(ps)
	return in.target.Probes().Insert(fname, ps.Where, ps.Order, h)
}

// Instantiate compiles the metric for one focus on one process: allocates
// its counters/timers, instantiates the applicable constraints, and inserts
// all probes. The returned instance is live immediately.
func (cm *CompiledMetric) Instantiate(t Target, f resource.Focus) (*Instance, error) {
	e := newEnv(t)
	in := &Instance{target: t, env: e}

	// Primary accumulator named by the metric id.
	switch strings.ToLower(cm.decl.BaseKind) {
	case "counter":
		c := &metric.Counter{}
		e.counters[cm.decl.ID] = c
		in.Acc = c
	case "walltimer":
		w := &metric.WallTimer{}
		e.wallTimers[cm.decl.ID] = w
		in.Acc = w
	case "processtimer":
		p := &metric.ProcessTimer{}
		e.procTimers[cm.decl.ID] = p
		in.Acc = p
	case "cpuclock":
		in.Acc = funcAcc(func() float64 { return t.CPUNow().Seconds() })
	case "wallclock":
		in.Acc = funcAcc(func() float64 { return t.WallNow().Seconds() })
	case "sysclock":
		in.Acc = funcAcc(func() float64 { return t.SystemNow().Seconds() })
	default:
		return nil, fmt.Errorf("mdl: metric %s: unknown base kind %q", cm.decl.ID, cm.decl.BaseKind)
	}
	for _, cn := range cm.decl.Counters {
		e.counters[cn] = &metric.Counter{}
	}

	// Code-hierarchy constraints (native): restrict constrained statements
	// to when the selected function/module is on the call stack. Metrics
	// instrumented over the magic focusCode set instead place their probes
	// directly on the selected code, so no predicate is needed.
	if !cm.usesFocusCode() {
		if fn := f.CodeFunction(); fn != "" {
			if !cm.hasConstraint("procedureConstraint") {
				return nil, fmt.Errorf("mdl: metric %s cannot be constrained to a procedure", cm.def.Name)
			}
			e.preds = append(e.preds, func(ev *probe.Event) bool { return ev.Proc.InFunction(fn) })
		} else if mod := f.CodeModule(); mod != "" {
			if !cm.hasConstraint("moduleConstraint") {
				return nil, fmt.Errorf("mdl: metric %s cannot be constrained to a module", cm.def.Name)
			}
			e.preds = append(e.preds, func(ev *probe.Event) bool { return inModule(ev.Proc, mod) })
		}
	}

	// SyncObject-hierarchy constraints.
	if err := cm.applySyncConstraints(e, in, f); err != nil {
		return nil, err
	}

	// Base instrumentation.
	for _, fe := range cm.decl.Foreachs {
		fns, watch, err := cm.resolveSet(t, fe.SetName, f)
		if err != nil {
			return nil, err
		}
		if watch != "" {
			in.moduleWatch = watch
			in.extendSpecs = append(in.extendSpecs, fe.Probes...)
		}
		if fe.SetName == "focusCode" && len(fns) == 0 && watch == "" {
			// Whole-program Code focus on a focusCode-based timer metric:
			// fall back to reading the process clock directly.
			switch in.Acc.(type) {
			case *metric.ProcessTimer:
				in.Acc = funcAcc(func() float64 { return t.CPUNow().Seconds() })
			case *metric.WallTimer:
				in.Acc = funcAcc(func() float64 { return t.WallNow().Seconds() })
			}
			continue
		}
		for _, fname := range fns {
			for _, ps := range fe.Probes {
				in.probeIDs = append(in.probeIDs, in.insertSpec(fname, ps))
			}
		}
	}
	return in, nil
}

// resolveSet expands a function-set name. For the magic focusCode set it
// returns the focus's function, the discovered functions of its module (with
// a watch for future ones), or nothing for a whole-program focus.
func (cm *CompiledMetric) resolveSet(t Target, set string, f resource.Focus) (fns []string, moduleWatch string, err error) {
	if set != "focusCode" {
		return cm.lib.sets[set], "", nil
	}
	if fn := f.CodeFunction(); fn != "" {
		return []string{fn}, "", nil
	}
	if mod := f.CodeModule(); mod != "" {
		return t.FunctionsOfModule(mod), mod, nil
	}
	return nil, "", nil
}

// usesFocusCode reports whether any foreach targets the magic focusCode set.
func (cm *CompiledMetric) usesFocusCode() bool {
	for _, fe := range cm.decl.Foreachs {
		if fe.SetName == "focusCode" {
			return true
		}
	}
	return false
}

func (cm *CompiledMetric) hasConstraint(name string) bool {
	for _, c := range cm.decl.Constraints {
		if c == name {
			return true
		}
	}
	return false
}

// applySyncConstraints instantiates the constraints implied by the focus's
// SyncObject selection.
func (cm *CompiledMetric) applySyncConstraints(e *env, in *Instance, f resource.Focus) error {
	parts := f.SyncParts()
	if len(parts) == 0 {
		return nil
	}
	category, rest := parts[0], parts[1:]
	// Category-level restriction: constrain to the category's functions.
	catFns, ok := syncCategoryFunctions[category]
	if !ok {
		return fmt.Errorf("mdl: unknown SyncObject category %q", category)
	}
	e.preds = append(e.preds, func(ev *probe.Event) bool { return inAnyFunction(ev.Proc, catFns) })
	if len(rest) == 0 {
		return nil
	}
	// Deeper components bind MDL constraints declared for this path.
	basePath := "/SyncObject/" + category
	bound := 0
	for _, cn := range cm.decl.Constraints {
		cd := cm.lib.constraints[cn]
		if cd == nil || cd.Path != basePath {
			continue
		}
		var args []string
		if cd.Deep {
			if len(rest) < 2 {
				continue // e.g. tag constraint with a comm-only focus
			}
			args = rest[1:]
		} else {
			args = rest[:1]
		}
		if err := cm.instantiateConstraint(e, in, cd, args); err != nil {
			return err
		}
		bound++
	}
	if bound == 0 {
		return fmt.Errorf("mdl: metric %s cannot be constrained to %s", cm.def.Name, f.SyncPath)
	}
	return nil
}

// instantiateConstraint allocates the constraint's flag counter, binds its
// $constraint arguments, and inserts its probes.
func (cm *CompiledMetric) instantiateConstraint(e *env, in *Instance, cd *ConstraintDecl, args []string) error {
	flag := &metric.Counter{}
	e.counters[cd.Name] = flag
	e.flags = append(e.flags, flag)
	cenv := e.scoped(args)
	for _, fe := range cd.Foreachs {
		fns := cm.lib.sets[fe.SetName]
		for _, fname := range fns {
			for _, ps := range fe.Probes {
				h := cenv.handler(ps)
				in.probeIDs = append(in.probeIDs, in.target.Probes().Insert(fname, ps.Where, ps.Order, h))
			}
		}
	}
	return nil
}

// syncCategoryFunctions maps SyncObject categories to the traced functions
// whose time/ops belong to that category.
var syncCategoryFunctions = map[string][]string{
	resource.Message: withPMPI("MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv",
		"MPI_Wait", "MPI_Waitall", "MPI_Sendrecv"),
	resource.Barrier: withPMPI("MPI_Barrier"),
	resource.Window: withPMPI("MPI_Win_create", "MPI_Win_free", "MPI_Win_fence",
		"MPI_Win_start", "MPI_Win_complete", "MPI_Win_post", "MPI_Win_wait",
		"MPI_Win_lock", "MPI_Win_unlock", "MPI_Put", "MPI_Get", "MPI_Accumulate"),
}

func withPMPI(names ...string) []string {
	out := make([]string, 0, 2*len(names))
	for _, n := range names {
		out = append(out, n, "P"+n)
	}
	return out
}

func inModule(p *probe.Process, module string) bool {
	for _, f := range p.Stack() {
		if f.Module == module {
			return true
		}
	}
	return false
}

func inAnyFunction(p *probe.Process, names []string) bool {
	for _, f := range p.Stack() {
		for _, n := range names {
			if f.Name == n {
				return true
			}
		}
	}
	return false
}

// funcAcc adapts a closure into an Accumulator.
type funcAcc func() float64

func (f funcAcc) Sample(sim.Time, sim.Duration) float64 { return f() }
