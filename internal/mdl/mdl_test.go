package mdl

import (
	"strings"
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/metric"
	"pperf/internal/mpi"
	"pperf/internal/probe"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// --- parser tests ----------------------------------------------------------

func TestParseFig2PutOps(t *testing.T) {
	src := `
resourceList mpi_put is procedure { "MPI_Put", "PMPI_Put" } flavor { mpi };
metric mpi_rma_put_ops {
    name "rma_put_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (* mpi_rma_put_ops++; *)
        }
    }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.ResourceLists) != 1 || len(f.Metrics) != 1 {
		t.Fatalf("parsed %d lists, %d metrics", len(f.ResourceLists), len(f.Metrics))
	}
	m := f.Metrics[0]
	if m.DisplayName != "rma_put_ops" || m.BaseKind != "counter" {
		t.Errorf("metric: %+v", m)
	}
	if len(m.Foreachs) != 1 || m.Foreachs[0].SetName != "mpi_put" {
		t.Errorf("foreach: %+v", m.Foreachs)
	}
	ps := m.Foreachs[0].Probes[0]
	if !ps.Constrained || ps.Where != probe.Entry || ps.Order != probe.Append {
		t.Errorf("probe spec: %+v", ps)
	}
	if _, ok := ps.Stmts[0].(*IncStmt); !ok {
		t.Errorf("stmt: %T", ps.Stmts[0])
	}
}

func TestParseConstraintWithBuiltinCall(t *testing.T) {
	src := `
resourceList mpi_put is procedure { "MPI_Put" };
constraint mpi_windowConstraint /SyncObject/Window is counter {
    foreach func in mpi_put {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Constraints[0]
	if c.Path != "/SyncObject/Window" || c.Deep {
		t.Errorf("constraint: %+v", c)
	}
	ifs, ok := c.Foreachs[0].Probes[0].Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("stmt: %T", c.Foreachs[0].Probes[0].Stmts[0])
	}
	bin, ok := ifs.Cond.(*BinExpr)
	if !ok || bin.Op != "==" {
		t.Fatalf("cond: %#v", ifs.Cond)
	}
	if _, ok := bin.L.(*CallExpr); !ok {
		t.Errorf("lhs: %T", bin.L)
	}
	if ce, ok := bin.R.(*ConstraintExpr); !ok || ce.Index != 0 {
		t.Errorf("rhs: %#v", bin.R)
	}
}

func TestParseDeepConstraintPath(t *testing.T) {
	src := `
resourceList fns is procedure { "MPI_Send" };
constraint tagC /SyncObject/Message/* is counter {
    foreach func in fns {
        prepend preinsn func.entry (* tagC = 1; *)
    }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Constraints[0].Deep || f.Constraints[0].Path != "/SyncObject/Message" {
		t.Errorf("deep constraint: %+v", f.Constraints[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`metric m { base is counter { foreach func in nope { } } }`, // checked at compile, parse ok; see below
		`metric m { }`,                      // no base
		`metric m { name nope; }`,           // name wants string
		`resourceList r is widget { "x" };`, // bad kind
		`constraint c /P is counter { foreach func in x { append preinsn func.middle (* x++; *) } }`,
		`metric m { base is counter { foreach func in s { append preinsn func.entry (* x++ *) } } }`, // missing ;
		`junk`,
	}
	for i, src := range cases {
		if i == 0 {
			continue // compile-time error, not parse-time
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail to parse: %s", i, src)
		}
	}
}

func TestCompileChecksReferences(t *testing.T) {
	if _, err := CompileSource(`metric m { name "m"; base is counter { foreach func in nope { } } }`); err == nil {
		t.Error("unknown set should fail compile")
	}
	if _, err := CompileSource(`metric m { name "m"; constraint ghost; base is counter { } }`); err == nil {
		t.Error("unknown constraint should fail compile")
	}
	dup := `resourceList a is procedure { "X" };
resourceList a is procedure { "Y" };`
	if _, err := CompileSource(dup); err == nil {
		t.Error("duplicate resourceList should fail")
	}
}

func TestStdLibCompiles(t *testing.T) {
	lib := StdLib()
	want := []string{
		"rma_put_ops", "rma_get_ops", "rma_acc_ops", "rma_ops",
		"rma_put_bytes", "rma_get_bytes", "rma_acc_bytes", "rma_bytes",
		"at_rma_sync_wait", "pt_rma_sync_wait", "rma_sync_wait", "rma_sync_ops",
		"sync_wait_inclusive", "io_wait", "cpu_inclusive",
		"msgs_sent", "msgs_recv", "msg_bytes_sent", "msg_bytes_recv",
	}
	for _, name := range want {
		if lib.Metric(name) == nil {
			t.Errorf("stdlib missing metric %s", name)
		}
	}
}

func TestUserLibraryMerge(t *testing.T) {
	lib, err := NewLibraryWithStd(`
resourceList my_fns is procedure { "MPI_Barrier", "PMPI_Barrier" };
metric my_barriers {
    name "my_barriers";
    units ops;
    unitstype unnormalized;
    aggregateOperator sum;
    style EventCounter;
    base is counter {
        foreach func in my_fns {
            append preinsn func.entry constrained (* my_barriers++; *)
        }
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Metric("my_barriers") == nil || lib.Metric("rma_put_ops") == nil {
		t.Error("merged library should hold both user and std metrics")
	}
	// Duplicating a std metric name must fail.
	if _, err := NewLibraryWithStd(`metric x { name "rma_put_ops"; base is counter { } }`); err == nil {
		t.Error("duplicate metric name should fail merge")
	}
}

// --- instrumentation tests over the real MPI runtime -----------------------

// rankTarget adapts an mpi.Rank to the mdl.Target interface (as the daemon
// does in production).
type rankTarget struct{ r *mpi.Rank }

func (t rankTarget) Probes() *probe.Process            { return t.r.Probes() }
func (t rankTarget) FunctionsOfModule(string) []string { return nil }
func (t rankTarget) WallNow() sim.Time                 { return t.r.Now() }
func (t rankTarget) CPUNow() sim.Duration              { return t.r.CPUTime() }
func (t rankTarget) SystemNow() sim.Duration           { return t.r.SystemTime() }

// runInstrumented launches prog on n LAM ranks, instruments every rank with
// the named metric at the given focus before the clock starts, runs, and
// returns the final per-rank values.
func runInstrumented(t *testing.T, kind mpi.ImplKind, n int, name string, f resource.Focus, prog mpi.Program) []float64 {
	t.Helper()
	eng := sim.NewEngine(11)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(n, 1), mpi.NewImpl(kind))
	w.Register("main", prog)
	if _, err := w.LaunchN("main", n, nil); err != nil {
		t.Fatal(err)
	}
	cm := StdLib().Metric(name)
	if cm == nil {
		t.Fatalf("no metric %s", name)
	}
	var insts []*Instance
	var ranks []*mpi.Rank
	for _, r := range w.Ranks() {
		in, err := cm.Instantiate(rankTarget{r}, f)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, in)
		ranks = append(ranks, r)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, len(insts))
	for i, in := range insts {
		vals[i] = in.Acc.Sample(ranks[i].Now(), ranks[i].CPUTime())
	}
	return vals
}

func TestRMAPutOpsCounts(t *testing.T) {
	vals := runInstrumented(t, mpi.LAM, 2, "rma_put_ops", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			win, _ := r.World().WinCreate(r, 64, 1, nil)
			win.Fence(0)
			if r.Rank() == 0 {
				for i := 0; i < 7; i++ {
					win.Put(nil, 4, mpi.Byte, 1, 0, 4, mpi.Byte)
				}
			}
			win.Fence(0)
			win.Free()
		})
	if vals[0] != 7 || vals[1] != 0 {
		t.Errorf("put ops = %v, want [7 0]", vals)
	}
}

func TestRMAPutBytesUsesTypeSize(t *testing.T) {
	vals := runInstrumented(t, mpi.LAM, 2, "rma_put_bytes", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			win, _ := r.World().WinCreate(r, 1024, 1, nil)
			win.Fence(0)
			if r.Rank() == 0 {
				// 5 puts of 16 doubles = 5*16*8 = 640 bytes.
				for i := 0; i < 5; i++ {
					win.Put(nil, 16, mpi.Double, 1, 0, 16, mpi.Double)
				}
			}
			win.Fence(0)
			win.Free()
		})
	if vals[0] != 640 {
		t.Errorf("put bytes = %v, want 640", vals[0])
	}
}

func TestWindowConstraintSelectsOneWindow(t *testing.T) {
	// Two windows; focus on the first: only its 3 puts count, not the other
	// window's 5.
	var focusID string
	prog := func(r *mpi.Rank, _ []string) {
		c := r.World()
		w1, _ := c.WinCreate(r, 64, 1, nil)
		w2, _ := c.WinCreate(r, 64, 1, nil)
		if r.Rank() == 0 && focusID == "" {
			focusID = w1.UniqueID()
		}
		w1.Fence(0)
		w2.Fence(0)
		if r.Rank() == 0 {
			for i := 0; i < 3; i++ {
				w1.Put(nil, 1, mpi.Byte, 1, 0, 1, mpi.Byte)
			}
			for i := 0; i < 5; i++ {
				w2.Put(nil, 1, mpi.Byte, 1, 0, 1, mpi.Byte)
			}
		}
		w1.Fence(0)
		w2.Fence(0)
		w1.Free()
		w2.Free()
	}
	// First run discovers the window id deterministically; the id of the
	// first window is "0-1" (first alloc, first serial).
	vals := runInstrumented(t, mpi.LAM, 2, "rma_put_ops",
		resource.WholeProgram().WithSync("/SyncObject/Window/0-1"), prog)
	if vals[0] != 3 {
		t.Errorf("focused put ops = %v, want 3", vals[0])
	}
}

func TestSyncWaitMeasuresBlocking(t *testing.T) {
	// Rank 1 blocks ~2s in MPI_Recv; rank 0 computes then sends.
	vals := runInstrumented(t, mpi.LAM, 2, "sync_wait_inclusive", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				r.Compute(2 * sim.Second)
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 1, mpi.Byte, 0, 0)
			}
		})
	if vals[1] < 1.9 || vals[1] > 2.2 {
		t.Errorf("rank1 sync wait = %v, want ≈2s", vals[1])
	}
	if vals[0] > 0.5 {
		t.Errorf("rank0 sync wait = %v, should be small", vals[0])
	}
}

func TestProcedureConstraintRestrictsSyncWait(t *testing.T) {
	// Sync waiting inside Grecv_message counts; identical waiting inside
	// Gother does not when the focus selects Grecv_message.
	focus := resource.WholeProgram().WithCode("/Code/app.c/Grecv_message")
	vals := runInstrumented(t, mpi.LAM, 2, "sync_wait_inclusive", focus,
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				r.Compute(1 * sim.Second)
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
				r.Compute(1 * sim.Second)
				c.Send(r, nil, 1, mpi.Byte, 1, 1)
			} else {
				r.Call("app.c", "Grecv_message", func() {
					c.Recv(r, nil, 1, mpi.Byte, 0, 0)
				})
				r.Call("app.c", "Gother", func() {
					c.Recv(r, nil, 1, mpi.Byte, 0, 1)
				})
			}
		})
	if vals[1] < 0.9 || vals[1] > 1.3 {
		t.Errorf("constrained sync wait = %v, want ≈1s (only Grecv_message)", vals[1])
	}
}

func TestMsgMetricsAndCommConstraint(t *testing.T) {
	// Whole-program byte counting.
	vals := runInstrumented(t, mpi.LAM, 2, "msg_bytes_sent", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				for i := 0; i < 10; i++ {
					c.Send(r, nil, 25, mpi.Int, 1, 0) // 100 bytes each
				}
			} else {
				for i := 0; i < 10; i++ {
					c.Recv(r, nil, 25, mpi.Int, 0, 0)
				}
			}
		})
	if vals[0] != 1000 {
		t.Errorf("bytes sent = %v, want 1000", vals[0])
	}
}

func TestTagConstraint(t *testing.T) {
	// Focus on comm-1 (the world comm) tag-7: only tag-7 sends count.
	focus := resource.WholeProgram().WithSync("/SyncObject/Message/comm-1/tag-7")
	vals := runInstrumented(t, mpi.LAM, 2, "msgs_sent", focus,
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				for i := 0; i < 4; i++ {
					c.Send(r, nil, 1, mpi.Byte, 1, 7)
				}
				for i := 0; i < 9; i++ {
					c.Send(r, nil, 1, mpi.Byte, 1, 8)
				}
			} else {
				for i := 0; i < 13; i++ {
					c.Recv(r, nil, 1, mpi.Byte, 0, mpi.AnyTag)
				}
			}
		})
	if vals[0] != 4 {
		t.Errorf("tag-constrained msgs = %v, want 4", vals[0])
	}
}

func TestCPUInclusiveOnFunction(t *testing.T) {
	focus := resource.WholeProgram().WithCode("/Code/app.c/bottleneckProcedure")
	vals := runInstrumented(t, mpi.LAM, 1, "cpu_inclusive", focus,
		func(r *mpi.Rank, _ []string) {
			r.Call("app.c", "bottleneckProcedure", func() { r.Compute(3 * sim.Second) })
			r.Call("app.c", "irrelevantProcedure0", func() { r.Compute(1 * sim.Second) })
		})
	if vals[0] < 2.9 || vals[0] > 3.1 {
		t.Errorf("cpu_inclusive = %v, want ≈3", vals[0])
	}
}

func TestCPUInclusiveWholeProgramReadsClock(t *testing.T) {
	vals := runInstrumented(t, mpi.LAM, 1, "cpu_inclusive", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			r.Compute(2 * sim.Second)
			r.IdleWait(5 * sim.Second) // not CPU
		})
	if vals[0] < 1.9 || vals[0] > 2.2 {
		t.Errorf("whole-program cpu = %v, want ≈2", vals[0])
	}
}

func TestSystemTimeMetric(t *testing.T) {
	vals := runInstrumented(t, mpi.LAM, 1, "system_time", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			r.SystemCompute(4 * sim.Second)
			r.Compute(1 * sim.Second)
		})
	// MPI_Init's library startup also accrues a sliver of system time.
	if vals[0] < 4 || vals[0] > 4.01 {
		t.Errorf("system_time = %v, want ≈4", vals[0])
	}
}

func TestIOWaitUnderMPICH(t *testing.T) {
	// MPICH blocking recv goes through read(): io_wait sees it.
	vals := runInstrumented(t, mpi.MPICH, 2, "io_wait", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				r.Compute(1 * sim.Second)
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 1, mpi.Byte, 0, 0)
			}
		})
	if vals[1] < 0.9 {
		t.Errorf("io_wait = %v, want ≈1s of socket blocking", vals[1])
	}
}

func TestInstanceRemoveStopsCounting(t *testing.T) {
	eng := sim.NewEngine(3)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(2, 1), mpi.NewImpl(mpi.LAM))
	var inst *Instance
	w.Register("main", func(r *mpi.Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
			}
			inst.Remove() // dynamic deletion mid-run
			for i := 0; i < 5; i++ {
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
			}
		} else {
			for i := 0; i < 10; i++ {
				c.Recv(r, nil, 1, mpi.Byte, 0, 0)
			}
		}
	})
	if _, err := w.LaunchN("main", 2, nil); err != nil {
		t.Fatal(err)
	}
	r0 := w.Ranks()[0]
	var err error
	inst, err = StdLib().Metric("msgs_sent").Instantiate(rankTarget{r0}, resource.WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := inst.Acc.Sample(r0.Now(), r0.CPUTime()); got != 5 {
		t.Errorf("msgs after mid-run removal = %v, want 5", got)
	}
}

func TestBarrierFocusRestrictsSyncWait(t *testing.T) {
	// sync_wait focused on /SyncObject/Barrier counts barrier time but not
	// plain message waiting.
	focus := resource.WholeProgram().WithSync("/SyncObject/Barrier")
	vals := runInstrumented(t, mpi.LAM, 2, "sync_wait_inclusive", focus,
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			// Message wait: rank1 waits 1s for a message — must NOT count.
			if r.Rank() == 0 {
				r.Compute(1 * sim.Second)
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 1, mpi.Byte, 0, 0)
			}
			// Barrier wait: rank0 late by 2s — rank1's barrier time counts.
			if r.Rank() == 0 {
				r.Compute(2 * sim.Second)
			}
			c.Barrier(r)
		})
	if vals[1] < 1.8 || vals[1] > 2.4 {
		t.Errorf("barrier-focused sync wait = %v, want ≈2s", vals[1])
	}
}

func TestMetricNamesOrdered(t *testing.T) {
	names := StdLib().MetricNames()
	if len(names) < 15 {
		t.Errorf("stdlib has %d metrics", len(names))
	}
	if names[0] != "rma_put_ops" {
		t.Errorf("first metric = %q", names[0])
	}
	joined := strings.Join(names, ",")
	if strings.Contains(joined, "mpi_rma_put_ops") {
		t.Error("MetricNames should use display names")
	}
}

func TestUnconstrainableFocusErrors(t *testing.T) {
	eng := sim.NewEngine(3)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(1, 1), mpi.NewImpl(mpi.LAM))
	w.Register("main", func(r *mpi.Rank, _ []string) {})
	if _, err := w.LaunchN("main", 1, nil); err != nil {
		t.Fatal(err)
	}
	r0 := w.Ranks()[0]
	// io_wait has no window constraint: focusing it on a window must fail.
	_, err := StdLib().Metric("io_wait").Instantiate(rankTarget{r0},
		resource.WholeProgram().WithSync("/SyncObject/Window/0-1"))
	if err == nil {
		t.Error("io_wait focused on a window should error")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventCounterDeltaSampling(t *testing.T) {
	var c metric.Counter
	c.Add(3)
	in := &metric.Instance{Def: &metric.Def{Name: "x"}, Acc: &c}
	if d := in.SampleDelta(0, 0); d != 3 {
		t.Errorf("delta = %v", d)
	}
}

func TestIOBytesMetricCountsFileTraffic(t *testing.T) {
	vals := runInstrumented(t, mpi.MPICH2, 2, "io_bytes", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			f, err := c.FileOpen(r, "x", mpi.ModeCreate|mpi.ModeRDWR, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				f.WriteAt(r, int64(i*1000), nil, 250, mpi.Int) // 1000 bytes each
			}
			f.ReadAt(r, 0, make([]byte, 500), 500, mpi.Byte)
			f.Close(r)
		})
	// Per rank: 5×1000 written + 500 read = 5500 bytes.
	if vals[0] != 5500 || vals[1] != 5500 {
		t.Errorf("io_bytes = %v, want [5500 5500]", vals)
	}
}

func TestIOOpsMetric(t *testing.T) {
	vals := runInstrumented(t, mpi.LAM, 1, "io_ops", resource.WholeProgram(),
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			f, _ := c.FileOpen(r, "y", mpi.ModeCreate|mpi.ModeRDWR, nil)
			f.WriteAt(r, 0, nil, 1, mpi.Byte)
			f.WriteAt(r, 1, nil, 1, mpi.Byte)
			f.ReadAt(r, 0, make([]byte, 1), 1, mpi.Byte)
			f.Close(r)
		})
	if vals[0] != 3 {
		t.Errorf("io_ops = %v, want 3", vals[0])
	}
}

func TestBrokenMetricSurfacesAsSimError(t *testing.T) {
	// A metric whose snippet references an undeclared counter fails at
	// probe execution; the engine surfaces the panic as a run error with
	// context instead of silently miscounting.
	lib, err := NewLibraryWithStd(`
resourceList bfns is procedure { "MPI_Barrier" };
metric broken {
    name "broken"; units ops; unitstype unnormalized;
    aggregateOperator sum; style EventCounter;
    base is counter {
        foreach func in bfns { append preinsn func.entry constrained (* ghost++; *) }
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(2, 1), mpi.NewImpl(mpi.LAM))
	w.Register("main", func(r *mpi.Rank, _ []string) { r.World().Barrier(r) })
	if _, err := w.LaunchN("main", 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Metric("broken").Instantiate(rankTarget{w.Ranks()[0]}, resource.WholeProgram()); err != nil {
		t.Fatal(err)
	}
	err = eng.Run()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("run error = %v, want unknown-counter panic surfaced", err)
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		`metric m { name "unterminated`,
		`metric m { base is counter { foreach func in s { append preinsn func.entry (* x++; } } }`,
		`metric m ! {}`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("should fail: %q", src)
		}
	}
}

func TestWindowConstraintIgnoresOtherWindows(t *testing.T) {
	// Explicit check of the Fig 2 flag protocol: the constraint's prepended
	// entry probe runs before the metric's appended start, and the metric's
	// prepended stop runs before the constraint's appended clear.
	focus := resource.WholeProgram().WithSync("/SyncObject/Window/0-1")
	vals := runInstrumented(t, mpi.MPICH2, 2, "rma_sync_wait", focus,
		func(r *mpi.Rank, _ []string) {
			c := r.World()
			w1, _ := c.WinCreate(r, 32, 1, nil) // 0-1
			w2, _ := c.WinCreate(r, 32, 1, nil) // 1-2
			// Rank 0 late to w2's fence only: that wait must NOT count
			// toward the focus on w1.
			if r.Rank() == 0 {
				r.Compute(2 * sim.Second)
			}
			w2.Fence(0)
			w1.Fence(0) // w1's fence: everyone arrives together
			w1.Free()
			w2.Free()
		})
	// Rank 1 waited ≈2s at w2's fence; focused on w1 it must see ≈0.
	if vals[1] > 0.2 {
		t.Errorf("w1-focused sync wait = %v, should exclude w2's fence wait", vals[1])
	}
}
