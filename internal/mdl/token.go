// Package mdl implements Paradyn's Metric Description Language: the
// extension language users write new metrics and resource constraints in
// (§4, Fig 2). The package contains a lexer, parser, and compiler that turn
// MDL source into executable instrumentation — probe handlers inserted into
// running processes — plus the standard metric library covering the paper's
// Table 1 RMA metrics and the MPI-1 metrics the Performance Consultant uses.
package mdl

import "fmt"

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // "..."
	tokNumber
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokLBracket
	tokRBracket
	tokSemi
	tokComma
	tokPath     // /SyncObject/Window or /SyncObject/Message/*
	tokDollar   // $
	tokSnippet  // (* ... *) raw instrumentation code
	tokPlusPlus // ++
	tokPlusEq   // +=
	tokAssign   // =
	tokEq       // ==
	tokNe       // !=
	tokStar     // *
	tokPlus     // +
	tokAmp      // &
	tokDot      // .
	tokGe       // >=
	tokLe       // <=
	tokGt       // >
	tokLt       // <
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	return fmt.Sprintf("%d:%q", t.kind, t.text)
}

// lexer tokenizes MDL source. The unusual part is the (* ... *) snippet
// delimiter: instrumentation code blocks are lexed twice — once as a raw
// snippet token to find the block, then statement-lexed by the parser.
type lexer struct {
	src  string
	pos  int
	line int
	// inSnippet switches the lexer into statement mode, where '/' is not a
	// path starter.
	inSnippet bool
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return lx.lexToken()
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil
}

func (lx *lexer) lexToken() (token, error) {
	start, line := lx.pos, lx.line
	c := lx.src[lx.pos]
	mk := func(k tokKind, n int) (token, error) {
		lx.pos += n
		return token{kind: k, text: lx.src[start : start+n], line: line}, nil
	}
	switch {
	case c == '(' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
		return lx.lexSnippet()
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: line}, nil
	case isDigit(c):
		for lx.pos < len(lx.src) && (isDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.') {
			lx.pos++
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], line: line}, nil
	case c == '"':
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			if lx.src[lx.pos] == '\n' {
				return token{}, fmt.Errorf("mdl:%d: unterminated string", line)
			}
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, fmt.Errorf("mdl:%d: unterminated string", line)
		}
		lx.pos++
		return token{kind: tokString, text: lx.src[start+1 : lx.pos-1], line: line}, nil
	case c == '/' && !lx.inSnippet:
		// A resource path: /Comp/Comp or /Comp/*
		lx.pos++
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			if isIdentChar(d) || d == '/' || d == '-' || d == '*' {
				lx.pos++
			} else {
				break
			}
		}
		return token{kind: tokPath, text: lx.src[start:lx.pos], line: line}, nil
	case c == '{':
		return mk(tokLBrace, 1)
	case c == '}':
		return mk(tokRBrace, 1)
	case c == '(':
		return mk(tokLParen, 1)
	case c == ')':
		return mk(tokRParen, 1)
	case c == '[':
		return mk(tokLBracket, 1)
	case c == ']':
		return mk(tokRBracket, 1)
	case c == ';':
		return mk(tokSemi, 1)
	case c == ',':
		return mk(tokComma, 1)
	case c == '$':
		return mk(tokDollar, 1)
	case c == '.':
		return mk(tokDot, 1)
	case c == '*':
		return mk(tokStar, 1)
	case c == '&':
		return mk(tokAmp, 1)
	case c == '+':
		if lx.peekAt(1) == '+' {
			return mk(tokPlusPlus, 2)
		}
		if lx.peekAt(1) == '=' {
			return mk(tokPlusEq, 2)
		}
		return mk(tokPlus, 1)
	case c == '=':
		if lx.peekAt(1) == '=' {
			return mk(tokEq, 2)
		}
		return mk(tokAssign, 1)
	case c == '!':
		if lx.peekAt(1) == '=' {
			return mk(tokNe, 2)
		}
		return token{}, fmt.Errorf("mdl:%d: unexpected '!'", line)
	case c == '>':
		if lx.peekAt(1) == '=' {
			return mk(tokGe, 2)
		}
		return mk(tokGt, 1)
	case c == '<':
		if lx.peekAt(1) == '=' {
			return mk(tokLe, 2)
		}
		return mk(tokLt, 1)
	default:
		return token{}, fmt.Errorf("mdl:%d: unexpected character %q", line, string(c))
	}
}

func (lx *lexer) peekAt(n int) byte {
	if lx.pos+n < len(lx.src) {
		return lx.src[lx.pos+n]
	}
	return 0
}

// lexSnippet captures a (* ... *) instrumentation block as one raw token;
// the parser re-lexes its contents in snippet mode.
func (lx *lexer) lexSnippet() (token, error) {
	line := lx.line
	lx.pos += 2 // skip (*
	start := lx.pos
	for lx.pos+1 < len(lx.src) {
		if lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == ')' {
			text := lx.src[start:lx.pos]
			lx.pos += 2
			return token{kind: tokSnippet, text: text, line: line}, nil
		}
		if lx.src[lx.pos] == '\n' {
			lx.line++
		}
		lx.pos++
	}
	return token{}, fmt.Errorf("mdl:%d: unterminated (* ... *) block", line)
}

// lexAll tokenizes an entire source (snippet mode per inSnippet).
func lexAll(src string, snippetMode bool) ([]token, error) {
	lx := newLexer(src)
	lx.inSnippet = snippetMode
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
