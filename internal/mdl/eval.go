package mdl

import (
	"fmt"

	"pperf/internal/metric"
	"pperf/internal/mpi"
	"pperf/internal/probe"
)

// env is the evaluation environment shared by all of one instance's probe
// handlers: its variables, timers, bound constraint flags, and native
// predicates.
type env struct {
	target     Target
	counters   map[string]*metric.Counter
	wallTimers map[string]*metric.WallTimer
	procTimers map[string]*metric.ProcessTimer
	// flags are the MDL constraint flag counters that must all be nonzero
	// for constrained statements to execute.
	flags []*metric.Counter
	// preds are native constraint predicates (procedure/module/sync
	// category) with the same gating role.
	preds []func(ev *probe.Event) bool
	// cargs are the bound $constraint components for the snippet being
	// evaluated (set per scope).
	cargs []string
}

func newEnv(t Target) *env {
	return &env{
		target:     t,
		counters:   map[string]*metric.Counter{},
		wallTimers: map[string]*metric.WallTimer{},
		procTimers: map[string]*metric.ProcessTimer{},
	}
}

// scoped returns a view of the environment with constraint arguments bound
// (for evaluating a constraint's own snippets). Variables are shared.
func (e *env) scoped(cargs []string) *env {
	se := *e
	se.cargs = cargs
	return &se
}

// satisfied reports whether all constraints hold for a constrained
// statement at this event.
func (e *env) satisfied(ev *probe.Event) bool {
	for _, p := range e.preds {
		if !p(ev) {
			return false
		}
	}
	for _, f := range e.flags {
		if f.Value() == 0 {
			return false
		}
	}
	return true
}

// handler compiles a probe spec into a probe handler closure.
func (e *env) handler(ps *ProbeSpec) probe.Handler {
	stmts := ps.Stmts
	constrained := ps.Constrained
	return func(ev *probe.Event) {
		if constrained && !e.satisfied(ev) {
			return
		}
		for _, s := range stmts {
			e.exec(s, ev)
		}
	}
}

// exec runs one statement. MDL runtime errors (unknown variable, bad types)
// panic; they indicate a broken metric definition and surface as simulation
// errors with full context.
func (e *env) exec(s Stmt, ev *probe.Event) {
	switch st := s.(type) {
	case *IncStmt:
		e.counter(st.Var).Add(1)
	case *AddAssignStmt:
		e.counter(st.Var).Add(e.evalNum(st.Val, ev))
	case *AssignStmt:
		e.counter(st.Var).Set(e.evalNum(st.Val, ev))
	case *IfStmt:
		if truthy(e.eval(st.Cond, ev)) {
			e.exec(st.Then, ev)
		}
	case *CallStmt:
		e.call(st, ev)
	default:
		panic(fmt.Sprintf("mdl: unknown statement %T", s))
	}
}

func (e *env) counter(name string) *metric.Counter {
	c, ok := e.counters[name]
	if !ok {
		panic(fmt.Sprintf("mdl: unknown counter %q", name))
	}
	return c
}

func (e *env) call(st *CallStmt, ev *probe.Event) {
	switch st.Fn {
	case "startWalltimer", "startWallTimer":
		e.wallTimer(st).Start(ev.Time)
	case "stopWalltimer", "stopWallTimer":
		e.wallTimer(st).Stop(ev.Time)
	case "startProcessTimer", "startProcesstimer":
		e.procTimer(st).Start(ev.CPUTime)
	case "stopProcessTimer", "stopProcesstimer":
		e.procTimer(st).Stop(ev.CPUTime)
	case "MPI_Type_size":
		// MPI_Type_size(datatype, &out): writes the size to counter out.
		if len(st.Args) != 1 || st.Out == "" {
			panic("mdl: MPI_Type_size needs (datatype, &out)")
		}
		e.counter(st.Out).Set(typeSize(e.eval(st.Args[0], ev)))
	default:
		panic(fmt.Sprintf("mdl: unknown call %q", st.Fn))
	}
}

func (e *env) wallTimer(st *CallStmt) *metric.WallTimer {
	name := timerArgName(st)
	t, ok := e.wallTimers[name]
	if !ok {
		panic(fmt.Sprintf("mdl: unknown walltimer %q", name))
	}
	return t
}

func (e *env) procTimer(st *CallStmt) *metric.ProcessTimer {
	name := timerArgName(st)
	t, ok := e.procTimers[name]
	if !ok {
		panic(fmt.Sprintf("mdl: unknown processtimer %q", name))
	}
	return t
}

func timerArgName(st *CallStmt) string {
	if len(st.Args) != 1 {
		panic(fmt.Sprintf("mdl: %s needs one timer argument", st.Fn))
	}
	v, ok := st.Args[0].(*VarExpr)
	if !ok {
		panic(fmt.Sprintf("mdl: %s argument must be a timer name", st.Fn))
	}
	return v.Name
}

// eval computes an expression; results are float64, string, or bool.
func (e *env) eval(x Expr, ev *probe.Event) any {
	switch ex := x.(type) {
	case *NumExpr:
		return ex.V
	case *StrExpr:
		return ex.V
	case *VarExpr:
		return e.counter(ex.Name).Value()
	case *ArgExpr:
		return ev.Arg(ex.Index)
	case *ConstraintExpr:
		if ex.Index < 0 || ex.Index >= len(e.cargs) {
			return ""
		}
		return e.cargs[ex.Index]
	case *CallExpr:
		return e.evalCall(ex, ev)
	case *BinExpr:
		return e.evalBin(ex, ev)
	default:
		panic(fmt.Sprintf("mdl: unknown expression %T", x))
	}
}

func (e *env) evalNum(x Expr, ev *probe.Event) float64 {
	return asNum(e.eval(x, ev))
}

func (e *env) evalCall(c *CallExpr, ev *probe.Event) any {
	arg := func(i int) any {
		if i >= len(c.Args) {
			return nil
		}
		return e.eval(c.Args[i], ev)
	}
	switch c.Fn {
	case "DYNINSTWindow_FindUniqueId", "DYNINSTTWindow_FindUniqueId":
		// The runtime lookup from a window handle to the tool's N-M id.
		if w, ok := arg(0).(*mpi.Win); ok && w != nil {
			return w.UniqueID()
		}
		return ""
	case "DYNINSTComm_FindId":
		if cm, ok := arg(0).(*mpi.Comm); ok && cm != nil {
			return fmt.Sprintf("comm-%d", cm.ID())
		}
		return ""
	case "DYNINSTTagName":
		return fmt.Sprintf("tag-%d", int(asNum(arg(0))))
	case "MPI_Type_size":
		return typeSize(arg(0))
	default:
		panic(fmt.Sprintf("mdl: unknown builtin %q", c.Fn))
	}
}

func (e *env) evalBin(b *BinExpr, ev *probe.Event) any {
	l, r := e.eval(b.L, ev), e.eval(b.R, ev)
	switch b.Op {
	case "==":
		return equalVals(l, r)
	case "!=":
		return !equalVals(l, r)
	case "+":
		return asNum(l) + asNum(r)
	case "*":
		return asNum(l) * asNum(r)
	case ">":
		return asNum(l) > asNum(r)
	case "<":
		return asNum(l) < asNum(r)
	case ">=":
		return asNum(l) >= asNum(r)
	case "<=":
		return asNum(l) <= asNum(r)
	default:
		panic(fmt.Sprintf("mdl: unknown operator %q", b.Op))
	}
}

func equalVals(l, r any) bool {
	if ls, ok := l.(string); ok {
		rs, ok2 := r.(string)
		return ok2 && ls == rs
	}
	if _, ok := r.(string); ok {
		return false
	}
	return asNum(l) == asNum(r)
}

func truthy(v any) bool {
	switch t := v.(type) {
	case bool:
		return t
	case float64:
		return t != 0
	case string:
		return t != ""
	case nil:
		return false
	default:
		return true
	}
}

// asNum coerces probe argument values to float64 for MDL arithmetic.
func asNum(v any) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case int:
		return float64(t)
	case int64:
		return float64(t)
	case bool:
		if t {
			return 1
		}
		return 0
	case mpi.Datatype:
		return float64(int(t))
	case nil:
		return 0
	default:
		return 0
	}
}

// typeSize is the MPI_Type_size builtin over a probe datatype argument.
func typeSize(v any) float64 {
	if dt, ok := v.(mpi.Datatype); ok {
		return float64(dt.Size())
	}
	return 0
}
