package mdl

import "pperf/internal/probe"

// File is a parsed MDL source: declarations in order.
type File struct {
	ResourceLists []*ResourceListDecl
	Constraints   []*ConstraintDecl
	Metrics       []*MetricDecl
}

// ResourceListDecl is `resourceList <id> is procedure { "A", "B" } flavor { mpi };`
type ResourceListDecl struct {
	Name   string
	Kind   string // "procedure"
	Items  []string
	Flavor []string
	Line   int
}

// ConstraintDecl is `constraint <id> <path> is counter { foreach ... }`.
// The path may end in /* to indicate the constraint binds a deeper focus
// component (e.g. /SyncObject/Message/* for message tags).
type ConstraintDecl struct {
	Name     string
	Path     string // without trailing /*
	Deep     bool   // had trailing /*
	Foreachs []*Foreach
	Line     int
}

// MetricDecl is a `metric <id> { ... }` block.
type MetricDecl struct {
	ID          string // internal identifier, also the primary variable name
	DisplayName string // name "..." attribute
	Units       string
	UnitsType   string // normalized | unnormalized | sampled
	AggOp       string // sum | avg | min | max
	Style       string // EventCounter | SampledFunction
	Flavor      []string
	Constraints []string // referenced constraint names (incl. built-ins)
	Counters    []string // auxiliary counter declarations
	BaseKind    string   // counter | walltimer | processtimer | cpuclock
	Foreachs    []*Foreach
	Line        int
}

// Foreach is `foreach func in <set> { <probes> }`.
type Foreach struct {
	SetName string
	Probes  []*ProbeSpec
	Line    int
}

// ProbeSpec is `append|prepend preinsn func.entry|func.return [constrained]
// (* stmts *)`.
type ProbeSpec struct {
	Order       probe.Order
	Where       probe.Where
	Constrained bool
	Stmts       []Stmt
	Line        int
}

// --- statements inside (* ... *) blocks -----------------------------------

// Stmt is an instrumentation statement.
type Stmt interface{ stmt() }

// IncStmt is `x++;`.
type IncStmt struct{ Var string }

// AddAssignStmt is `x += expr;`.
type AddAssignStmt struct {
	Var string
	Val Expr
}

// AssignStmt is `x = expr;`.
type AssignStmt struct {
	Var string
	Val Expr
}

// CallStmt is `fn(args...);` — startWalltimer(t), stopWalltimer(t),
// startProcessTimer(t), stopProcessTimer(t), MPI_Type_size(dt, &out).
type CallStmt struct {
	Fn   string
	Args []Expr
	Out  string // name after &, if any
}

// IfStmt is `if (cond) stmt`.
type IfStmt struct {
	Cond Expr
	Then Stmt
}

func (*IncStmt) stmt()       {}
func (*AddAssignStmt) stmt() {}
func (*AssignStmt) stmt()    {}
func (*CallStmt) stmt()      {}
func (*IfStmt) stmt()        {}

// --- expressions ----------------------------------------------------------

// Expr is an instrumentation expression; evaluation yields float64 or
// string.
type Expr interface{ expr() }

// NumExpr is a numeric literal.
type NumExpr struct{ V float64 }

// StrExpr is a string literal.
type StrExpr struct{ V string }

// VarExpr references a counter variable.
type VarExpr struct{ Name string }

// ArgExpr is `$arg[i]`: the probed call's i-th argument.
type ArgExpr struct{ Index int }

// ConstraintExpr is `$constraint[i]`: the i-th bound focus component.
type ConstraintExpr struct{ Index int }

// CallExpr is a builtin call used as a value, e.g.
// DYNINSTWindow_FindUniqueId($arg[7]).
type CallExpr struct {
	Fn   string
	Args []Expr
}

// BinExpr is a binary operation: == != * + >= <= > <.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*NumExpr) expr()        {}
func (*StrExpr) expr()        {}
func (*VarExpr) expr()        {}
func (*ArgExpr) expr()        {}
func (*ConstraintExpr) expr() {}
func (*CallExpr) expr()       {}
func (*BinExpr) expr()        {}
