package mdl

import (
	"fmt"
	"strconv"
	"strings"

	"pperf/internal/probe"
)

// Parse turns MDL source into a File.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src, false)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF) {
		switch {
		case p.atIdent("resourceList"):
			d, err := p.resourceList()
			if err != nil {
				return nil, err
			}
			f.ResourceLists = append(f.ResourceLists, d)
		case p.atIdent("constraint"):
			d, err := p.constraint()
			if err != nil {
				return nil, err
			}
			f.Constraints = append(f.Constraints, d)
		case p.atIdent("metric"):
			d, err := p.metric()
			if err != nil {
				return nil, err
			}
			f.Metrics = append(f.Metrics, d)
		default:
			return nil, p.errf("expected resourceList, constraint, or metric, got %q", p.cur().text)
		}
	}
	return f, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token        { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }
func (p *parser) atIdent(s string) bool {
	return p.cur().kind == tokIdent && p.cur().text == s
}
func (p *parser) advance() token { t := p.cur(); p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("mdl:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, got %q", what, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) expectIdent(s string) error {
	if !p.atIdent(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "identifier")
	return t.text, err
}

// resourceList := "resourceList" id "is" kind "{" str ("," str)* "}"
//
//	["flavor" "{" id ("," id)* "}"] ";"
func (p *parser) resourceList() (*ResourceListDecl, error) {
	line := p.cur().line
	p.advance() // resourceList
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("is"); err != nil {
		return nil, err
	}
	kind, err := p.ident()
	if err != nil {
		return nil, err
	}
	if kind != "procedure" {
		return nil, p.errf("unsupported resourceList kind %q", kind)
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	d := &ResourceListDecl{Name: name, Kind: kind, Line: line}
	for !p.at(tokRBrace) {
		t, err := p.expect(tokString, "string")
		if err != nil {
			return nil, err
		}
		d.Items = append(d.Items, t.text)
		if p.at(tokComma) {
			p.advance()
		}
	}
	p.advance() // }
	if p.atIdent("flavor") {
		fl, err := p.flavor()
		if err != nil {
			return nil, err
		}
		d.Flavor = fl
	}
	if _, err := p.expect(tokSemi, ";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) flavor() ([]string, error) {
	p.advance() // flavor
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	var out []string
	for !p.at(tokRBrace) {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.at(tokComma) {
			p.advance()
		}
	}
	p.advance()
	return out, nil
}

// constraint := "constraint" id path "is" "counter" "{" foreach* "}"
func (p *parser) constraint() (*ConstraintDecl, error) {
	line := p.cur().line
	p.advance()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	pt, err := p.expect(tokPath, "resource path")
	if err != nil {
		return nil, err
	}
	d := &ConstraintDecl{Name: name, Path: pt.text, Line: line}
	if strings.HasSuffix(d.Path, "/*") {
		d.Path = strings.TrimSuffix(d.Path, "/*")
		d.Deep = true
	}
	if err := p.expectIdent("is"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("counter"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	for !p.at(tokRBrace) {
		fe, err := p.foreach()
		if err != nil {
			return nil, err
		}
		d.Foreachs = append(d.Foreachs, fe)
	}
	p.advance()
	return d, nil
}

// metric := "metric" id "{" attr* base "}"
func (p *parser) metric() (*MetricDecl, error) {
	line := p.cur().line
	p.advance()
	id, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	d := &MetricDecl{ID: id, Line: line}
	for !p.at(tokRBrace) {
		switch {
		case p.atIdent("name"):
			p.advance()
			t, err := p.expect(tokString, "string")
			if err != nil {
				return nil, err
			}
			d.DisplayName = t.text
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("units"):
			p.advance()
			u, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.Units = u
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("unitstype"):
			p.advance()
			u, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.UnitsType = u
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("aggregateOperator") || p.atIdent("aggregateoperator"):
			p.advance()
			u, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.AggOp = u
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("style"):
			p.advance()
			u, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.Style = u
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("flavor"):
			fl, err := p.flavor()
			if err != nil {
				return nil, err
			}
			d.Flavor = fl
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("constraint"):
			p.advance()
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.Constraints = append(d.Constraints, c)
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("counter"):
			p.advance()
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.Counters = append(d.Counters, c)
			if _, err := p.expect(tokSemi, ";"); err != nil {
				return nil, err
			}
		case p.atIdent("base"):
			p.advance()
			if err := p.expectIdent("is"); err != nil {
				return nil, err
			}
			kind, err := p.ident()
			if err != nil {
				return nil, err
			}
			d.BaseKind = kind
			if _, err := p.expect(tokLBrace, "{"); err != nil {
				return nil, err
			}
			for !p.at(tokRBrace) {
				fe, err := p.foreach()
				if err != nil {
					return nil, err
				}
				d.Foreachs = append(d.Foreachs, fe)
			}
			p.advance() // }
		default:
			return nil, p.errf("unexpected %q in metric body", p.cur().text)
		}
	}
	p.advance() // }
	if d.BaseKind == "" {
		return nil, fmt.Errorf("mdl:%d: metric %s has no base", line, id)
	}
	return d, nil
}

// foreach := "foreach" "func" "in" set "{" probeSpec* "}"
func (p *parser) foreach() (*Foreach, error) {
	line := p.cur().line
	if err := p.expectIdent("foreach"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("func"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("in"); err != nil {
		return nil, err
	}
	set, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	fe := &Foreach{SetName: set, Line: line}
	for !p.at(tokRBrace) {
		ps, err := p.probeSpec()
		if err != nil {
			return nil, err
		}
		fe.Probes = append(fe.Probes, ps)
	}
	p.advance()
	return fe, nil
}

// probeSpec := ("append"|"prepend") "preinsn" "func" "." ("entry"|"return")
//
//	["constrained"] snippet
func (p *parser) probeSpec() (*ProbeSpec, error) {
	line := p.cur().line
	ps := &ProbeSpec{Line: line}
	switch {
	case p.atIdent("append"):
		ps.Order = probe.Append
	case p.atIdent("prepend"):
		ps.Order = probe.Prepend
	default:
		return nil, p.errf("expected append or prepend, got %q", p.cur().text)
	}
	p.advance()
	if err := p.expectIdent("preinsn"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("func"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot, "."); err != nil {
		return nil, err
	}
	switch {
	case p.atIdent("entry"):
		ps.Where = probe.Entry
	case p.atIdent("return"):
		ps.Where = probe.Return
	default:
		return nil, p.errf("expected entry or return, got %q", p.cur().text)
	}
	p.advance()
	if p.atIdent("constrained") {
		ps.Constrained = true
		p.advance()
	}
	sn, err := p.expect(tokSnippet, "(* ... *) block")
	if err != nil {
		return nil, err
	}
	stmts, err := parseSnippet(sn.text, sn.line)
	if err != nil {
		return nil, err
	}
	ps.Stmts = stmts
	return ps, nil
}

// --- snippet (statement) parsing ------------------------------------------

func parseSnippet(src string, line int) ([]Stmt, error) {
	toks, err := lexAll(src, true)
	if err != nil {
		return nil, err
	}
	sp := &parser{toks: toks}
	var stmts []Stmt
	for !sp.at(tokEOF) {
		s, err := sp.stmt()
		if err != nil {
			return nil, fmt.Errorf("%w (in snippet starting line %d)", err, line)
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) stmt() (Stmt, error) {
	if p.atIdent("if") {
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &IfStmt{Cond: cond, Then: then}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokPlusPlus:
		p.advance()
		if _, err := p.expect(tokSemi, ";"); err != nil {
			return nil, err
		}
		return &IncStmt{Var: name}, nil
	case tokPlusEq:
		p.advance()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, ";"); err != nil {
			return nil, err
		}
		return &AddAssignStmt{Var: name, Val: v}, nil
	case tokAssign:
		p.advance()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Var: name, Val: v}, nil
	case tokLParen:
		p.advance()
		cs := &CallStmt{Fn: name}
		for !p.at(tokRParen) {
			if p.at(tokAmp) {
				p.advance()
				out, err := p.ident()
				if err != nil {
					return nil, err
				}
				cs.Out = out
			} else {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				cs.Args = append(cs.Args, a)
			}
			if p.at(tokComma) {
				p.advance()
			}
		}
		p.advance() // )
		if _, err := p.expect(tokSemi, ";"); err != nil {
			return nil, err
		}
		return cs, nil
	default:
		return nil, p.errf("expected statement after %q", name)
	}
}

// expr := cmp ( ("=="|"!="|">="|"<="|">"|"<") cmp )?
func (p *parser) expr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokEq, tokNe, tokGe, tokLe, tokGt, tokLt:
		op := p.advance().text
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

// addExpr := mulExpr ( "+" mulExpr )*
func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) {
		p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "+", L: l, R: r}
	}
	return l, nil
}

// mulExpr := primary ( "*" primary )*
func (p *parser) mulExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) {
		p.advance()
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "*", L: l, R: r}
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	switch p.cur().kind {
	case tokNumber:
		t := p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("mdl:%d: bad number %q", t.line, t.text)
		}
		return &NumExpr{V: v}, nil
	case tokString:
		return &StrExpr{V: p.advance().text}, nil
	case tokDollar:
		p.advance()
		kind, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBracket, "["); err != nil {
			return nil, err
		}
		idx, err := p.expect(tokNumber, "index")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(idx.text)
		if err != nil {
			return nil, fmt.Errorf("mdl:%d: bad index %q", idx.line, idx.text)
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
		switch kind {
		case "arg":
			return &ArgExpr{Index: n}, nil
		case "constraint":
			return &ConstraintExpr{Index: n}, nil
		default:
			return nil, p.errf("unknown $%s", kind)
		}
	case tokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name := p.advance().text
		if p.at(tokLParen) {
			p.advance()
			ce := &CallExpr{Fn: name}
			for !p.at(tokRParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				ce.Args = append(ce.Args, a)
				if p.at(tokComma) {
					p.advance()
				}
			}
			p.advance()
			return ce, nil
		}
		return &VarExpr{Name: name}, nil
	default:
		return nil, p.errf("unexpected %q in expression", p.cur().text)
	}
}
