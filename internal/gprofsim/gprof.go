// Package gprofsim reproduces the gprof flat profile the paper uses to
// verify Paradyn's CPU measurements on a non-MPI build of hot-procedure
// (Fig 19): per-function call counts, self seconds, and microseconds per
// call, rendered in gprof's column format.
package gprofsim

import (
	"fmt"
	"sort"
	"strings"

	"pperf/internal/mpi"
	"pperf/internal/probe"
	"pperf/internal/sim"
)

// FuncStat is one row of the flat profile.
type FuncStat struct {
	Name    string
	Calls   int64
	Self    sim.Duration // CPU time attributed to the function itself
	PerCall sim.Duration
}

// Profile is a completed flat profile.
type Profile struct {
	Total sim.Duration
	Funcs []FuncStat
}

// Profiler samples self-CPU per function by bracketing traced calls, the
// moral equivalent of gprof's PC sampling plus mcount call counting.
type Profiler struct {
	calls map[string]int64
	self  map[string]sim.Duration
	// stack of (function, cpu-at-entry, callee-cpu-accumulator)
	stack []frame
}

type frame struct {
	name      string
	cpuEnter  sim.Duration
	calleeCPU sim.Duration
}

// Attach instruments every current and future process of the world.
// (gprof profiles a single process; attaching to a 1-rank world reproduces
// the paper's non-MPI run.)
func Attach(w *mpi.World) *Profiler {
	p := &Profiler{calls: map[string]int64{}, self: map[string]sim.Duration{}}
	w.AddHooks(&mpi.Hooks{
		ProcessStarted: func(r *mpi.Rank) {
			r.Probes().OnFirstCall = func(f *probe.Function) {
				p.hook(r, f.Name)
			}
		},
	})
	return p
}

// hook instruments one function the first time it is seen.
func (p *Profiler) hook(r *mpi.Rank, fname string) {
	r.Probes().Insert(fname, probe.Entry, probe.Prepend, func(ev *probe.Event) {
		p.calls[fname]++
		p.stack = append(p.stack, frame{name: fname, cpuEnter: ev.CPUTime})
	})
	r.Probes().Insert(fname, probe.Return, probe.Append, func(ev *probe.Event) {
		n := len(p.stack)
		if n == 0 || p.stack[n-1].name != fname {
			return
		}
		fr := p.stack[n-1]
		p.stack = p.stack[:n-1]
		total := ev.CPUTime - fr.cpuEnter
		p.self[fname] += total - fr.calleeCPU
		if n > 1 {
			p.stack[n-2].calleeCPU += total
		}
	})
}

// Snapshot produces the flat profile, sorted by self time descending (then
// name), exactly as gprof orders its output.
func (p *Profiler) Snapshot() *Profile {
	prof := &Profile{}
	for name := range p.calls {
		st := FuncStat{Name: name, Calls: p.calls[name], Self: p.self[name]}
		if st.Calls > 0 {
			st.PerCall = st.Self / sim.Duration(st.Calls)
		}
		prof.Total += st.Self
		prof.Funcs = append(prof.Funcs, st)
	}
	sort.Slice(prof.Funcs, func(i, j int) bool {
		if prof.Funcs[i].Self != prof.Funcs[j].Self {
			return prof.Funcs[i].Self > prof.Funcs[j].Self
		}
		return prof.Funcs[i].Name < prof.Funcs[j].Name
	})
	return prof
}

// Percent returns the fraction of total self time in the named function.
func (pr *Profile) Percent(name string) float64 {
	if pr.Total == 0 {
		return 0
	}
	for _, f := range pr.Funcs {
		if f.Name == name {
			return f.Self.Seconds() / pr.Total.Seconds() * 100
		}
	}
	return 0
}

// Render formats the profile in gprof's flat-profile layout (Fig 19).
func (pr *Profile) Render() string {
	var b strings.Builder
	b.WriteString("  %   cumulative   self              self     total\n")
	b.WriteString(" time   seconds   seconds    calls  us/call  us/call  name\n")
	var cum sim.Duration
	for _, f := range pr.Funcs {
		cum += f.Self
		pct := 0.0
		if pr.Total > 0 {
			pct = f.Self.Seconds() / pr.Total.Seconds() * 100
		}
		us := float64(f.PerCall) / 1e3
		fmt.Fprintf(&b, "%6.2f %9.2f %9.2f %8d %8.2f %8.2f  %s\n",
			pct, cum.Seconds(), f.Self.Seconds(), f.Calls, us, us, f.Name)
	}
	return b.String()
}
