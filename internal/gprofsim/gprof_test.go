package gprofsim

import (
	"fmt"
	"strings"
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/mpi"
	"pperf/internal/sim"
)

func profile(t *testing.T, prog mpi.Program) *Profile {
	t.Helper()
	eng := sim.NewEngine(9)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(1, 1), mpi.NewImpl(mpi.LAM))
	p := Attach(w)
	w.Register("main", prog)
	if _, err := w.LaunchN("main", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return p.Snapshot()
}

func TestHotProcedureProfileShape(t *testing.T) {
	// Fig 19: bottleneckProcedure consumes ~100% of the program's time;
	// the irrelevantProcedures take ~0 µs/call despite equal call counts.
	prof := profile(t, func(r *mpi.Rank, _ []string) {
		for i := 0; i < 200; i++ {
			r.Call("hot.c", "bottleneckProcedure", func() { r.Compute(10 * sim.Millisecond) })
			for k := 0; k < 12; k++ {
				r.Call("hot.c", fmt.Sprintf("irrelevantProcedure%d", k), func() {
					r.Compute(10 * sim.Microsecond)
				})
			}
		}
	})
	if prof.Funcs[0].Name != "bottleneckProcedure" {
		t.Fatalf("top function = %s", prof.Funcs[0].Name)
	}
	if pct := prof.Percent("bottleneckProcedure"); pct < 95 {
		t.Errorf("bottleneckProcedure = %.1f%%, want ≈100%%", pct)
	}
	if prof.Funcs[0].Calls != 200 {
		t.Errorf("calls = %d", prof.Funcs[0].Calls)
	}
	// Equal call counts for the irrelevant procedures.
	for _, f := range prof.Funcs[1:] {
		if strings.HasPrefix(f.Name, "irrelevantProcedure") && f.Calls != 200 {
			t.Errorf("%s calls = %d, want 200", f.Name, f.Calls)
		}
	}
}

func TestSelfTimeExcludesCallees(t *testing.T) {
	prof := profile(t, func(r *mpi.Rank, _ []string) {
		r.Call("a.c", "outer", func() {
			r.Compute(100 * sim.Millisecond)
			r.Call("a.c", "inner", func() { r.Compute(900 * sim.Millisecond) })
		})
	})
	if prof.Funcs[0].Name != "inner" {
		t.Fatalf("top = %s (self time must exclude callees)", prof.Funcs[0].Name)
	}
	outer := prof.Percent("outer")
	if outer > 15 {
		t.Errorf("outer self = %.1f%%, want ≈10%%", outer)
	}
}

func TestRenderGprofFormat(t *testing.T) {
	prof := profile(t, func(r *mpi.Rank, _ []string) {
		r.Call("x.c", "f", func() { r.Compute(50 * sim.Millisecond) })
	})
	out := prof.Render()
	if !strings.Contains(out, "us/call") || !strings.Contains(out, "  f") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRecursionDoesNotPanic(t *testing.T) {
	prof := profile(t, func(r *mpi.Rank, _ []string) {
		var rec func(depth int)
		rec = func(depth int) {
			r.Call("r.c", "recur", func() {
				r.Compute(time1ms)
				if depth > 0 {
					rec(depth - 1)
				}
			})
		}
		rec(5)
	})
	if prof.Percent("recur") < 90 {
		t.Errorf("recursive self = %.1f%%", prof.Percent("recur"))
	}
}

const time1ms = 1 * sim.Millisecond
