package mpi

import (
	"pperf/internal/cluster"
	"pperf/internal/sim"
)

// ImplKind identifies which real MPI implementation a personality models.
type ImplKind int

const (
	// LAM models LAM/MPI 7.0 with the sysv RPI (shared memory intra-node).
	LAM ImplKind = iota
	// MPICH models MPICH 1.2.x with the ch_p4mpd device: socket
	// communication even between ranks on one node (no SMP support), PMPI
	// weak-symbol name resolution.
	MPICH
	// MPICH2 models the MPICH2 0.96p2 beta with the sock channel and mpd
	// process manager: most of MPI-2 but no full dynamic process creation.
	MPICH2
	// Reference is a fourth personality modelling a complete MPI-2
	// implementation, including passive-target RMA, which neither LAM nor
	// MPICH2 supported at the time of the paper. It exists so the
	// passive-target metrics can be exercised (a paper "future work" item).
	Reference
)

func (k ImplKind) String() string {
	switch k {
	case LAM:
		return "LAM/MPI"
	case MPICH:
		return "MPICH"
	case MPICH2:
		return "MPICH2"
	case Reference:
		return "Reference"
	default:
		return "unknown"
	}
}

// Impl is an MPI implementation personality: a cost model plus the
// behavioural switches that make the tool's findings differ between
// implementations, as they do throughout the paper's Section 5.
type Impl struct {
	Kind ImplKind
	// LibModule is the module name MPI functions appear under in the Code
	// resource hierarchy.
	LibModule string
	// UsesPMPINames: with MPICH's default weak-symbol configuration, the
	// symbols in the binary resolve to the PMPI_* names (§4.1.1), so the
	// tool observes PMPI_Send rather than MPI_Send.
	UsesPMPINames bool
	// SocketIO: the implementation's transport blocks in read/write socket
	// calls, so message waiting also shows up as I/O blocking time (what
	// makes ExcessiveIOBlockingTime test true for MPICH in Fig. 3).
	SocketIO bool
	// BarrierViaSendrecv: MPI_Barrier is implemented as a collective
	// communication over MPI_Sendrecv (MPICH), visible to the tool (Fig 9).
	// When false, Barrier is a linear fan-in/fan-out over visible
	// MPI_Isend/MPI_Irecv/MPI_Waitall (LAM).
	BarrierViaSendrecv bool
	// FenceViaBarrier: MPI_Win_fence internally calls MPI_Barrier (LAM;
	// gives Oned its /SyncObject/Barrier finding, Fig 22).
	FenceViaBarrier bool
	// BlockingWinStart: MPI_Win_start blocks until matching MPI_Win_post
	// calls execute (the MPI-2 standard allows either; which routine blocks
	// differs between LAM and MPICH2, §5.2.1.1).
	BlockingWinStart bool
	// SupportsSpawn: MPICH2 0.96p2 beta did not fully support dynamic
	// process creation (§5.2.2).
	SupportsSpawn bool
	// SupportsPassiveTarget: neither LAM nor MPICH2 supported passive
	// target synchronization at the time (§5.2.1.1).
	SupportsPassiveTarget bool
	// ReusesWindowIDs: the implementation reuses a window identifier after
	// MPI_Win_free, which is why the tool's resource hierarchy must qualify
	// window ids as N-M pairs (§4.2.1).
	ReusesWindowIDs bool
	// WinNameInComm: LAM stores RMA window names in the communicator
	// structure inside its MPI_Win, so a named window also surfaces under
	// /SyncObject/Message (Fig 23).
	WinNameInComm bool

	// Cost is the communication/computation cost model.
	Cost cluster.CostModel
	// SpawnBase and SpawnPerProc are the process-creation overheads of
	// MPI_Comm_spawn.
	SpawnBase    sim.Duration
	SpawnPerProc sim.Duration
	// CollectiveOverhead is the per-call bookkeeping cost of collectives
	// and window creation.
	CollectiveOverhead sim.Duration
	// IOBandwidth and IOLatency model the filesystem for MPI-I/O.
	IOBandwidth float64
	IOLatency   sim.Duration
}

// NewImpl returns the personality for the given implementation kind, with
// the cost-model constants used across the reproduction's experiments.
func NewImpl(kind ImplKind) *Impl {
	// Constants are sized for the paper's 2004-era cluster: tens of
	// microseconds of per-call library overhead, ~100 MB/s TCP, sub-GB/s
	// shared memory.
	base := cluster.CostModel{
		IntraNodeLatency:   8 * sim.Microsecond,
		IntraNodeBandwidth: 800e6,
		InterNodeLatency:   60 * sim.Microsecond,
		InterNodeBandwidth: 100e6,
		EagerThreshold:     64 * 1024,
		FlowCreditBytes:    64 * 1024,
		MsgHeaderBytes:     64,
		SendOverhead:       25 * sim.Microsecond,
		RecvOverhead:       25 * sim.Microsecond,
		RMAOverhead:        30 * sim.Microsecond,
	}
	im := &Impl{
		Kind:               kind,
		Cost:               base,
		SpawnBase:          30 * sim.Millisecond,
		SpawnPerProc:       12 * sim.Millisecond,
		CollectiveOverhead: 20 * sim.Microsecond,
		IOBandwidth:        60e6,
		IOLatency:          200 * sim.Microsecond,
	}
	switch kind {
	case LAM:
		im.LibModule = "liblammpi.so"
		im.BarrierViaSendrecv = false
		im.FenceViaBarrier = true
		im.BlockingWinStart = true
		im.SupportsSpawn = true
		im.SupportsPassiveTarget = false
		im.ReusesWindowIDs = true
		im.WinNameInComm = true
	case MPICH:
		im.LibModule = "libmpich.so"
		im.UsesPMPINames = true
		im.SocketIO = true
		im.BarrierViaSendrecv = true
		im.SupportsSpawn = false // ch_p4mpd is MPI-1 only
		// ch_p4mpd has no SMP support: intra-node goes over sockets too.
		im.Cost.IntraNodeLatency = 45 * sim.Microsecond
		im.Cost.IntraNodeBandwidth = 150e6
		im.Cost.SendOverhead = 35 * sim.Microsecond
		im.Cost.RecvOverhead = 35 * sim.Microsecond
	case MPICH2:
		im.LibModule = "libmpich2.so"
		im.SocketIO = true
		im.BarrierViaSendrecv = true
		im.BlockingWinStart = false
		im.SupportsSpawn = false
		im.SupportsPassiveTarget = false
		im.ReusesWindowIDs = true
		im.Cost.IntraNodeLatency = 35 * sim.Microsecond
		im.Cost.IntraNodeBandwidth = 200e6
	case Reference:
		im.LibModule = "libmpiref.so"
		im.BarrierViaSendrecv = true
		im.SupportsSpawn = true
		im.SupportsPassiveTarget = true
		im.ReusesWindowIDs = true
	}
	return im
}
