package mpi

import (
	"testing"

	"pperf/internal/sim"
)

func TestCommDup(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 2)
	var dupID int
	runProgram(t, w, 4, func(r *Rank, _ []string) {
		c := r.World()
		dup, err := c.Dup(r)
		if err != nil {
			t.Error(err)
			return
		}
		if dup == c || dup.Size() != c.Size() {
			t.Error("dup should be a same-size fresh communicator")
		}
		if r.Rank() == 0 {
			dupID = dup.ID()
		}
		// Messages on the dup do not match receives on the original.
		if r.Rank() == 0 {
			dup.Send(r, nil, 1, Byte, 1, 7)
		} else if r.Rank() == 1 {
			if _, err := dup.Recv(r, nil, 1, Byte, 0, 7); err != nil {
				t.Error(err)
			}
		}
	})
	if dupID == 0 {
		t.Error("dup id missing")
	}
}

func TestCommSplit(t *testing.T) {
	w := newTestWorld(t, MPICH2, 3, 2)
	sizes := make([]int, 6)
	ranks := make([]int, 6)
	runProgram(t, w, 6, func(r *Rank, _ []string) {
		c := r.World()
		// Even ranks → color 0, odd ranks → color 1; key reverses order.
		sub, err := c.Split(r, r.Rank()%2, -r.Rank())
		if err != nil {
			t.Error(err)
			return
		}
		sizes[r.Rank()] = sub.Size()
		ranks[r.Rank()] = sub.RankOf(r)
		// The subgroup is a working communicator: barrier within it.
		if err := sub.Barrier(r); err != nil {
			t.Error(err)
		}
	})
	for i, sz := range sizes {
		if sz != 3 {
			t.Errorf("rank %d subcomm size = %d, want 3", i, sz)
		}
	}
	// Key = -rank reverses: world rank 4 (highest even) gets subrank 0.
	if ranks[4] != 0 || ranks[0] != 2 {
		t.Errorf("subranks = %v", ranks)
	}
}

func TestCommSplitUndefined(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 2)
	runProgram(t, w, 4, func(r *Rank, _ []string) {
		color := 0
		if r.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := r.World().Split(r, color, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if r.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color should yield nil communicator")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("subcomm size = %d", sub.Size())
		}
	})
}

func TestCommSplitRepeated(t *testing.T) {
	// Consecutive collectives on the same communicator must not corrupt
	// each other's staging state.
	w := newTestWorld(t, LAM, 2, 1)
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		for i := 0; i < 5; i++ {
			sub, err := c.Split(r, 0, r.Rank())
			if err != nil || sub.Size() != 2 {
				t.Errorf("iter %d: %v size=%v", i, err, sub.Size())
				return
			}
		}
	})
}

func TestIntercommDupRejected(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 2)
	var dupErr, splitErr error
	w.Register("child", func(r *Rank, _ []string) {
		parent := r.GetParent()
		_, dupErr = parent.Dup(r)
		_, splitErr = parent.Split(r, 0, 0)
	})
	runProgram(t, w, 1, func(r *Rank, _ []string) {
		if _, err := r.World().Spawn(r, "child", nil, 1, nil, 0); err != nil {
			t.Error(err)
		}
	})
	if dupErr == nil || splitErr == nil {
		t.Error("dup/split of intercommunicator should error")
	}
}

func TestMergeProducesWorkingIntracomm(t *testing.T) {
	w := newTestWorld(t, LAM, 3, 2)
	var mergedSize int
	var order []int
	w.Register("child", func(r *Rank, _ []string) {
		parent := r.GetParent()
		merged, err := parent.Merge(r, true)
		if err != nil {
			t.Error(err)
			return
		}
		merged.Barrier(r)
		order = append(order, merged.RankOf(r))
	})
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		inter, err := r.World().Spawn(r, "child", nil, 2, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		merged, err := inter.Merge(r, false)
		if err != nil {
			t.Error(err)
			return
		}
		mergedSize = merged.Size()
		merged.Barrier(r)
	})
	if mergedSize != 4 {
		t.Errorf("merged size = %d, want 4", mergedSize)
	}
	// Children (high side) rank after the 2 parents.
	for _, rk := range order {
		if rk < 2 {
			t.Errorf("child merged rank %d should be ≥ 2", rk)
		}
	}
}

func TestDupTimingIsCollective(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var after sim.Time
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		if r.Rank() == 0 {
			r.Compute(1 * sim.Second)
		}
		if _, err := r.World().Dup(r); err != nil {
			t.Error(err)
		}
		if r.Rank() == 1 {
			after = r.Now()
		}
	})
	if after < sim.Time(1*sim.Second) {
		t.Errorf("rank 1 left Dup at %v, before rank 0 arrived", after)
	}
}
