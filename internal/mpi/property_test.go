package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pperf/internal/cluster"
	"pperf/internal/sim"
)

// qc returns a reproducible quick.Check config: property failures replay
// identically instead of depending on the test run's random seed.
func qc(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(20040401))}
}

// Property: for any random pattern of sends from rank 0 (mixed sizes, so
// both eager and rendezvous paths run), every message arrives exactly once,
// in per-pair FIFO order, with its payload intact.
func TestPropertyMessageConservation(t *testing.T) {
	f := func(sizes []uint16, seed uint64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		eng := sim.NewEngine(seed)
		w := NewWorld(eng, cluster.DefaultSpec(2, 1), NewImpl(LAM))
		// Mix eager and rendezvous: scale sizes across the threshold.
		byteSizes := make([]int, len(sizes))
		for i, s := range sizes {
			byteSizes[i] = int(s)*3 + 1 // up to ~196K, threshold is 64K
		}
		okCh := true
		w.Register("main", func(r *Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				for i, n := range byteSizes {
					data := []byte{byte(i), byte(i >> 8)}
					c.Send(r, data, n, Byte, 1, i%5)
				}
				return
			}
			for i, n := range byteSizes {
				rq, err := c.Recv(r, nil, n, Byte, 0, i%5)
				if err != nil {
					okCh = false
					return
				}
				d := rq.Data()
				if len(d) < 2 || d[0] != byte(i) || d[1] != byte(i>>8) {
					okCh = false
					return
				}
			}
			if r.UnexpectedCount() != 0 {
				okCh = false
			}
		})
		if _, err := w.LaunchN("main", 2, nil); err != nil {
			return false
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return okCh
	}
	if err := quick.Check(f, qc(25)); err != nil {
		t.Error(err)
	}
}

// Property: receives by wildcard preserve per-(sender,tag) FIFO order even
// with several interleaved senders.
func TestPropertyFIFOPerPair(t *testing.T) {
	f := func(counts [3]uint8, seed uint64) bool {
		total := 0
		for _, c := range counts {
			total += int(c % 20)
		}
		if total == 0 {
			return true
		}
		eng := sim.NewEngine(seed)
		w := NewWorld(eng, cluster.DefaultSpec(4, 1), NewImpl(MPICH2))
		ok := true
		w.Register("main", func(r *Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				lastSeq := map[int]int{}
				for i := 0; i < total; i++ {
					rq, err := c.Recv(r, nil, 4, Byte, AnySource, AnyTag)
					if err != nil {
						ok = false
						return
					}
					src := rq.Source()
					seq := int(rq.Data()[0]) | int(rq.Data()[1])<<8
					if seq != lastSeq[src] {
						ok = false // out of order from this sender
						return
					}
					lastSeq[src] = seq + 1
				}
				return
			}
			n := int(counts[r.Rank()-1] % 20)
			for i := 0; i < n; i++ {
				c.Send(r, []byte{byte(i), byte(i >> 8), 0, 0}, 4, Byte, 0, 0)
			}
		})
		if _, err := w.LaunchN("main", 4, nil); err != nil {
			return false
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, qc(25)); err != nil {
		t.Error(err)
	}
}

// Property: collectives agree across implementations: for any vector and
// group size, Allreduce(sum) equals the serial sum under every personality.
func TestPropertyAllreduceAgreesAcrossImpls(t *testing.T) {
	f := func(vals [6]int8, np uint8) bool {
		n := int(np%5) + 2
		want := 0.0
		for i := 0; i < n; i++ {
			want += float64(vals[i%6])
		}
		for _, kind := range []ImplKind{LAM, MPICH, MPICH2} {
			eng := sim.NewEngine(3)
			w := NewWorld(eng, cluster.DefaultSpec(4, 2), NewImpl(kind))
			ok := true
			w.Register("main", func(r *Rank, _ []string) {
				got, err := r.World().Allreduce(r, []float64{float64(vals[r.Rank()%6])}, Double, OpSum)
				if err != nil || got[0] != want {
					ok = false
				}
			})
			if _, err := w.LaunchN("main", n, nil); err != nil {
				return false
			}
			if err := eng.Run(); err != nil {
				return false
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qc(20)); err != nil {
		t.Error(err)
	}
}

// Property: RMA put+get round trips preserve data for any offsets within
// bounds.
func TestPropertyRMARoundTrip(t *testing.T) {
	f := func(vals []byte, off uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		disp := int(off % 32)
		eng := sim.NewEngine(9)
		w := NewWorld(eng, cluster.DefaultSpec(2, 1), NewImpl(Reference))
		got := make([]byte, len(vals))
		w.Register("main", func(r *Rank, _ []string) {
			win, err := r.World().WinCreate(r, 128, 1, nil)
			if err != nil {
				panic(err)
			}
			win.Fence(0)
			if r.Rank() == 0 {
				win.Put(vals, len(vals), Byte, 1, disp, len(vals), Byte)
			}
			win.Fence(0)
			if r.Rank() == 0 {
				win.Get(got, len(vals), Byte, 1, disp, len(vals), Byte)
			}
			win.Fence(0)
			win.Free()
		})
		if _, err := w.LaunchN("main", 2, nil); err != nil {
			return false
		}
		if err := eng.Run(); err != nil {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qc(25)); err != nil {
		t.Error(err)
	}
}
