package mpi

import (
	"fmt"

	"pperf/internal/probe"
	"pperf/internal/sim"
)

// Rank is one simulated MPI process. Application programs receive a *Rank
// and use it for computation (Compute, Call) and communication (through its
// communicators, starting from World()).
type Rank struct {
	w          *World
	proc       *sim.Proc
	global     int // world-unique process id
	rank       int // rank within its group's MPI_COMM_WORLD
	node       int
	world      *Comm
	parentComm *Comm // intercommunicator to the spawning group, if spawned
	progName   string
	probes     *probe.Process

	cpuUser sim.Duration
	cpuSys  sim.Duration
	// busyFrom/busyUntil describe an in-progress Compute/SystemCompute
	// window so samplers can read progressive CPU time mid-computation.
	busyFrom  sim.Time
	busyUntil sim.Time
	busySys   bool

	// Mailbox.
	unexpected []*message
	posted     []*Request
	msgSeq     uint64

	// Eager flow control: available flow-window bytes per destination
	// global id, and sends queued awaiting window space.
	credits      map[int]int
	pendingSends []*Request
	// inLibraryWait counts nested blocking waits inside MPI calls; while
	// nonzero, the transport is considered drained on arrival (flow-window
	// credits return immediately).
	inLibraryWait int

	finalized bool
	lost      bool // forcibly terminated (node crash / job abort)
}

// --- identity ----------------------------------------------------------

// Rank returns the process's rank in its MPI_COMM_WORLD.
func (r *Rank) Rank() int { return r.rank }

// GlobalID returns the world-unique process id (across spawned groups).
func (r *Rank) GlobalID() int { return r.global }

// Node returns the cluster node index the process runs on.
func (r *Rank) Node() int { return r.node }

// NodeName returns the cluster node's hostname.
func (r *Rank) NodeName() string { return r.w.Spec.Nodes[r.node].Name }

// ProgName returns the program name this rank runs.
func (r *Rank) ProgName() string { return r.progName }

// World returns the process's MPI_COMM_WORLD.
func (r *Rank) World() *Comm { return r.world }

// Size returns the size of MPI_COMM_WORLD.
func (r *Rank) Size() int { return len(r.world.local) }

// Probes exposes the process's instrumentation state to the tool.
func (r *Rank) Probes() *probe.Process { return r.probes }

// Universe returns the World the rank belongs to.
func (r *Rank) Universe() *World { return r.w }

// --- probe.Clock implementation ----------------------------------------

// Now returns the process's local virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// CPUTime returns accumulated user CPU time.
func (r *Rank) CPUTime() sim.Duration { return r.cpuUser }

// SystemTime returns accumulated system (kernel) CPU time.
func (r *Rank) SystemTime() sim.Duration { return r.cpuSys }

// AddOverhead charges instrumentation execution cost: it consumes both wall
// clock and user CPU, modelling inserted measurement instructions.
func (r *Rank) AddOverhead(d sim.Duration) {
	r.cpuUser += d
	r.proc.Sleep(d)
}

// --- computation --------------------------------------------------------

// Compute burns d of user CPU time (and wall clock). CPU accrues
// progressively across the window so samplers observing mid-computation see
// partial progress, as a real CPU-time clock would.
func (r *Rank) Compute(d sim.Duration) {
	r.busyFrom = r.proc.Now()
	r.busyUntil = r.busyFrom.Add(d)
	r.busySys = false
	r.proc.Sleep(d)
	r.busyUntil = 0
	r.cpuUser += d
	if tr := r.w.Tracer; tr != nil {
		tr.Compute(r.probes.Name(), r.NodeName(), r.busyFrom, r.proc.Now(), false)
	}
}

// SystemCompute burns d inside system calls: wall clock and system time
// advance, but *user* CPU does not. Default tool metrics measure user CPU
// only, which is why the system-time benchmark defeats them (Table 2).
func (r *Rank) SystemCompute(d sim.Duration) {
	r.busyFrom = r.proc.Now()
	r.busyUntil = r.busyFrom.Add(d)
	r.busySys = true
	r.proc.Sleep(d)
	r.busyUntil = 0
	r.cpuSys += d
	if tr := r.w.Tracer; tr != nil {
		tr.Compute(r.probes.Name(), r.NodeName(), r.busyFrom, r.proc.Now(), true)
	}
}

// busyOverlap returns how much of an in-progress busy window has elapsed by
// time t.
func (r *Rank) busyOverlap(t sim.Time, system bool) sim.Duration {
	if r.busyUntil == 0 || r.busySys != system {
		return 0
	}
	if t > r.busyUntil {
		t = r.busyUntil
	}
	if t <= r.busyFrom {
		return 0
	}
	return t.Sub(r.busyFrom)
}

// CPUTimeAt returns the user CPU accumulated by time t, including the
// elapsed part of an in-progress computation (for samplers observing from
// event context).
func (r *Rank) CPUTimeAt(t sim.Time) sim.Duration {
	return r.cpuUser + r.busyOverlap(t, false)
}

// SystemTimeAt is CPUTimeAt for kernel time.
func (r *Rank) SystemTimeAt(t sim.Time) sim.Duration {
	return r.cpuSys + r.busyOverlap(t, true)
}

// IdleWait sleeps for d without consuming CPU (e.g. modelling an external
// event the process waits for).
func (r *Rank) IdleWait(d sim.Duration) { r.proc.Sleep(d) }

// Call executes body as a traced application procedure: entry and return
// probes fire around it and it participates in call-graph discovery. module
// is the source file the function belongs to in the Code hierarchy.
func (r *Rank) Call(module, name string, body func()) {
	f := r.w.appFunc(module, name)
	r.probes.Enter(f)
	defer r.probes.Leave(f)
	body()
}

// --- traced MPI call helpers --------------------------------------------

// beginMPI fires the entry probe of the named MPI routine (resolved through
// the personality's symbol naming) and returns the function for endMPI.
func (r *Rank) beginMPI(name string, args ...any) *probe.Function {
	if tr := r.w.Tracer; tr != nil {
		peer, tag, bytes, obj := traceMeta(name, args)
		tr.BeginMPI(r.probes.Name(), r.NodeName(), name, r.Now(), peer, tag, bytes, obj)
	}
	f := r.w.Impl.fn(name)
	r.probes.Enter(f, args...)
	return f
}

// endMPI fires the return probe.
func (r *Rank) endMPI(f *probe.Function, args ...any) {
	r.probes.Leave(f, args...)
	if tr := r.w.Tracer; tr != nil {
		tr.EndMPI(r.probes.Name(), r.Now())
	}
}

// block suspends the process until woken; what appears in deadlock reports.
func (r *Rank) block(what string) { r.proc.Wait(what) }

// enterLibraryWait marks the process as blocked inside the MPI library: its
// transport drains arriving eager messages, returning their flow-window
// bytes immediately. Any already-queued undrained messages drain now.
func (r *Rank) enterLibraryWait() {
	r.inLibraryWait++
	if r.inLibraryWait == 1 {
		for _, m := range r.unexpected {
			m.returnCredit(r.Now())
		}
	}
}

func (r *Rank) exitLibraryWait() { r.inLibraryWait-- }

// wakeAt wakes the process at time t if it is blocked.
func (r *Rank) wakeAt(t sim.Time) { r.proc.WakeAt(t) }

// --- init / finalize ----------------------------------------------------

// Init performs MPI_Init: all ranks of the group synchronize before any
// proceeds. It is called automatically when a launched program starts.
func (r *Rank) Init() {
	f := r.beginMPI("MPI_Init")
	r.SystemCompute(50 * sim.Microsecond) // library startup cost
	r.world.initSync.wait(r, "MPI_Init")
	r.endMPI(f)
}

// Finalize performs MPI_Finalize: collective over the group. Called
// automatically at program end if the program did not call it.
func (r *Rank) Finalize() {
	if r.finalized {
		return
	}
	f := r.beginMPI("MPI_Finalize")
	r.world.finalizeSync().wait(r, "MPI_Finalize")
	r.endMPI(f)
	r.finalized = true
}

// TypeSize is MPI_Type_size, traced like the real call (the MDL byte-count
// metrics invoke it on probe arguments).
func (r *Rank) TypeSize(dt Datatype) int {
	f := r.beginMPI("MPI_Type_size", dt)
	sz := dt.Size()
	r.endMPI(f, dt)
	return sz
}

// ParentComm returns the spawn-parent intercommunicator without tracing —
// for tool-side inspection (the traced application call is GetParent).
func (r *Rank) ParentComm() *Comm { return r.parentComm }

// GetParent is MPI_Comm_get_parent: the intercommunicator to the group that
// spawned this process, or nil for initially launched processes.
func (r *Rank) GetParent() *Comm {
	f := r.beginMPI("MPI_Comm_get_parent")
	defer r.endMPI(f)
	return r.parentComm
}

// Lose forcibly terminates the process (node crash / job abort): its
// simulated process is killed and ProcessLost hooks fire. Returns false if
// the process had already finished (or was already lost). Must be called
// from scheduler context.
func (r *Rank) Lose(reason string) bool {
	if r.lost || !r.proc.Kill(reason) {
		return false
	}
	r.lost = true
	r.w.fireProcessLost(r, reason)
	return true
}

// Lost reports whether the process was forcibly terminated.
func (r *Rank) Lost() bool { return r.lost }

// Finished reports whether the underlying process has terminated — by
// clean exit, loss, or abort. Still-running ranks are the ones a respawned
// daemon incarnation re-attaches to.
func (r *Rank) Finished() bool { return r.proc.Done() }

// Abort terminates the process like Lose but reports an observed exit
// (ProcessExited) instead of lost data: when the launcher tears the job down
// the tool watches it happen, so the rank's collected data stays
// trustworthy. Returns false if the process had already finished or was
// already lost.
func (r *Rank) Abort(reason string) bool {
	if r.lost || !r.proc.Kill(reason) {
		return false
	}
	for _, h := range r.w.hooks {
		if h.ProcessExited != nil {
			h.ProcessExited(r)
		}
	}
	return true
}

func (r *Rank) String() string {
	return fmt.Sprintf("rank %d (%s on %s)", r.rank, r.progName, r.NodeName())
}

// ProcStatus reports the underlying process's scheduling state for
// diagnostics ("done", "ready", "running", or "waiting: <reason>").
func (r *Rank) ProcStatus() string { return r.proc.Status() }
