package mpi

import (
	"errors"
	"testing"

	"pperf/internal/probe"
	"pperf/internal/sim"
)

func TestFencePutGetData(t *testing.T) {
	for _, kind := range []ImplKind{LAM, MPICH2, Reference} {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, kind, 2, 1)
			got := make([]byte, 4)
			runProgram(t, w, 2, func(r *Rank, _ []string) {
				c := r.World()
				win, err := c.WinCreate(r, 64, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				win.Fence(0)
				if r.Rank() == 0 {
					if err := win.Put([]byte{1, 2, 3, 4}, 4, Byte, 1, 0, 4, Byte); err != nil {
						t.Error(err)
					}
				}
				win.Fence(0)
				if r.Rank() == 0 {
					if err := win.Get(got, 4, Byte, 1, 0, 4, Byte); err != nil {
						t.Error(err)
					}
				}
				win.Fence(0)
				win.Free()
			})
			if got[0] != 1 || got[3] != 4 {
				t.Errorf("%s: got %v after put+get round trip", kind, got)
			}
		})
	}
}

func TestAccumulateSumDouble(t *testing.T) {
	w := newTestWorld(t, Reference, 3, 1)
	var result []float64
	runProgram(t, w, 3, func(r *Rank, _ []string) {
		c := r.World()
		win, err := c.WinCreate(r, 8, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		win.Fence(0)
		// Everyone accumulates its (rank+1) into rank 0's window.
		vals := floatsToBytes([]float64{float64(r.Rank() + 1)})
		if err := win.Accumulate(vals, 1, Double, 0, 0, 1, Double, OpSum); err != nil {
			t.Error(err)
		}
		win.Fence(0)
		if r.Rank() == 0 {
			result = bytesToFloats(win.LocalBuffer())
		}
		win.Free()
	})
	if len(result) != 1 || result[0] != 6 { // 1+2+3
		t.Errorf("accumulate result = %v, want [6]", result)
	}
}

func TestFenceSynchronizesLateRank(t *testing.T) {
	// winfenceSync pattern: rank 0 is late to the fence; others wait.
	w := newTestWorld(t, MPICH2, 2, 2)
	leave := make([]sim.Time, 3)
	runProgram(t, w, 3, func(r *Rank, _ []string) {
		c := r.World()
		win, _ := c.WinCreate(r, 16, 1, nil)
		if r.Rank() == 0 {
			r.Compute(1 * sim.Second)
		}
		win.Fence(0)
		leave[r.Rank()] = r.Now()
		win.Free()
	})
	for i, tt := range leave {
		if tt < sim.Time(1*sim.Second) {
			t.Errorf("rank %d left fence at %v, before rank 0 arrived", i, tt)
		}
	}
}

func TestLAMFenceNestsBarrier(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	nested := 0
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		if r.Rank() == 0 {
			r.Probes().Insert("MPI_Barrier", probe.Entry, probe.Append, func(ev *probe.Event) {
				if ev.Proc.InFunction("MPI_Win_fence") {
					nested++
				}
			})
		}
		win, _ := r.World().WinCreate(r, 16, 1, nil)
		win.Fence(0)
		win.Free()
	})
	if nested == 0 {
		t.Error("LAM MPI_Win_fence should call MPI_Barrier (the Oned finding)")
	}
}

func TestMPICH2FenceDoesNotNestBarrier(t *testing.T) {
	w := newTestWorld(t, MPICH2, 2, 1)
	nested := 0
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		r.Probes().Insert("MPI_Barrier", probe.Entry, probe.Append, func(*probe.Event) { nested++ })
		win, _ := r.World().WinCreate(r, 16, 1, nil)
		win.Fence(0)
		win.Free()
	})
	if nested != 0 {
		t.Error("MPICH2 fence should synchronize internally, not via MPI_Barrier")
	}
}

func TestPSCWBlockingDiffersByImpl(t *testing.T) {
	// The MPI-2 standard lets either Win_start or Win_complete block waiting
	// for Win_post; LAM blocks in start, MPICH2 in complete (§5.2.1.1).
	for _, tc := range []struct {
		kind         ImplKind
		blockInStart bool
	}{{LAM, true}, {MPICH2, false}} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			w := newTestWorld(t, tc.kind, 2, 1)
			var startDur, completeDur sim.Duration
			runProgram(t, w, 2, func(r *Rank, _ []string) {
				c := r.World()
				win, _ := c.WinCreate(r, 32, 1, nil)
				if r.Rank() == 0 {
					// Late target: wastes time before posting.
					r.Compute(1 * sim.Second)
					win.Post([]int{1}, 0)
					win.WaitEpoch()
				} else {
					t0 := r.Now()
					win.Start([]int{0}, 0)
					startDur = r.Now().Sub(t0)
					win.Put(nil, 4, Byte, 0, 0, 4, Byte)
					t1 := r.Now()
					win.Complete()
					completeDur = r.Now().Sub(t1)
				}
				win.Free()
			})
			if tc.blockInStart && startDur < 500*sim.Millisecond {
				t.Errorf("%s: Win_start took %v, expected it to block for the post", tc.kind, startDur)
			}
			if !tc.blockInStart && completeDur < 500*sim.Millisecond {
				t.Errorf("%s: Win_complete took %v, expected it to block for the post", tc.kind, completeDur)
			}
		})
	}
}

func TestWindowIDReuseAndUniqueNames(t *testing.T) {
	// §4.2.1: the implementation may reuse a window id after MPI_Win_free,
	// so the tool's N-M identifiers must stay unique.
	w := newTestWorld(t, LAM, 2, 1)
	var uniques []string
	var implIDs []int
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		for i := 0; i < 3; i++ {
			win, err := c.WinCreate(r, 8, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if r.Rank() == 0 {
				uniques = append(uniques, win.UniqueID())
				implIDs = append(implIDs, win.ImplID())
			}
			win.Free()
		}
	})
	if implIDs[0] != implIDs[1] || implIDs[1] != implIDs[2] {
		t.Errorf("impl ids = %v, want reuse of the same id", implIDs)
	}
	seen := map[string]bool{}
	for _, u := range uniques {
		if seen[u] {
			t.Errorf("duplicate unique id %q in %v", u, uniques)
		}
		seen[u] = true
	}
}

func TestPassiveTargetUnsupportedOnLAMAndMPICH2(t *testing.T) {
	for _, kind := range []ImplKind{LAM, MPICH2} {
		w := newTestWorld(t, kind, 2, 1)
		var lockErr error
		runProgram(t, w, 2, func(r *Rank, _ []string) {
			win, _ := r.World().WinCreate(r, 8, 1, nil)
			if r.Rank() == 0 {
				lockErr = win.Lock(LockExclusive, 1, 0)
			}
			win.Free()
		})
		var uns *ErrUnsupported
		if !errors.As(lockErr, &uns) {
			t.Errorf("%s: Lock error = %v, want ErrUnsupported", kind, lockErr)
		}
	}
}

func TestPassiveTargetReferenceImpl(t *testing.T) {
	w := newTestWorld(t, Reference, 2, 1)
	got := make([]byte, 2)
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		win, _ := c.WinCreate(r, 16, 1, nil)
		win.Fence(0)
		if r.Rank() == 0 {
			if err := win.Lock(LockExclusive, 1, 0); err != nil {
				t.Error(err)
			}
			win.Put([]byte{5, 6}, 2, Byte, 1, 0, 2, Byte)
			if err := win.Unlock(1); err != nil {
				t.Error(err)
			}
			win.Lock(LockShared, 1, 0)
			win.Get(got, 2, Byte, 1, 0, 2, Byte)
			win.Unlock(1)
		} else {
			r.Compute(200 * sim.Millisecond) // target not explicitly involved
		}
		win.Fence(0)
		win.Free()
	})
	if got[0] != 5 || got[1] != 6 {
		t.Errorf("passive-target round trip got %v", got)
	}
}

func TestLockExclusionSerializes(t *testing.T) {
	w := newTestWorld(t, Reference, 3, 1)
	var holds []int
	runProgram(t, w, 3, func(r *Rank, _ []string) {
		c := r.World()
		win, _ := c.WinCreate(r, 8, 1, nil)
		if r.Rank() != 0 {
			if err := win.Lock(LockExclusive, 0, 0); err != nil {
				t.Error(err)
			}
			holds = append(holds, r.Rank())
			r.Compute(100 * sim.Millisecond)
			holds = append(holds, r.Rank())
			win.Unlock(0)
		}
		win.Free()
	})
	// With exclusive locks, hold intervals cannot interleave: the log must
	// be [a a b b], not [a b a b].
	if len(holds) != 4 || holds[0] != holds[1] || holds[2] != holds[3] {
		t.Errorf("holds = %v, want serialized pairs", holds)
	}
}

func TestRMAErrorsOnBadUsage(t *testing.T) {
	w := newTestWorld(t, Reference, 2, 1)
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		win, _ := c.WinCreate(r, 8, 1, nil)
		if r.Rank() == 0 {
			if err := win.Put(nil, 1, Byte, 99, 0, 1, Byte); err == nil {
				t.Error("Put to out-of-range rank should fail")
			}
			if err := win.Complete(); err == nil {
				t.Error("Complete without Start should fail")
			}
			if err := win.Unlock(1); err == nil {
				t.Error("Unlock without Lock should fail")
			}
		}
		win.Free()
	})
}

func TestWinSetNamePropagatesToInternalComm(t *testing.T) {
	// LAM stores window names in the window's communicator (Fig 23).
	w := newTestWorld(t, LAM, 2, 1)
	var named []string
	w.AddHooks(&Hooks{
		NameSet: func(r *Rank, obj any, name string) { named = append(named, name) },
	})
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		win, _ := r.World().WinCreate(r, 8, 1, nil)
		if r.Rank() == 0 {
			win.SetName("ParentChildWindow")
			if win.InternalComm() == nil {
				t.Error("LAM window should carry an internal communicator")
			} else if win.InternalComm().Name() != "ParentChildWindow" {
				t.Errorf("internal comm name = %q", win.InternalComm().Name())
			}
		}
		win.Free()
	})
	if len(named) == 0 || named[0] != "ParentChildWindow" {
		t.Errorf("NameSet hooks = %v", named)
	}
}

func TestWinCreatedHookAndFreeRetires(t *testing.T) {
	w := newTestWorld(t, MPICH2, 2, 1)
	created, freed := 0, 0
	w.AddHooks(&Hooks{
		WinCreated: func(r *Rank, win *Win) { created++ },
		WinFreed:   func(r *Rank, win *Win) { freed++ },
	})
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		win, _ := r.World().WinCreate(r, 8, 1, nil)
		win.Free()
		if !win.Freed() {
			t.Error("window should be marked freed")
		}
	})
	if created != 2 || freed != 2 {
		t.Errorf("created=%d freed=%d, want 2/2 (per rank)", created, freed)
	}
}
