package mpi

import (
	"fmt"

	"pperf/internal/cluster"
	"pperf/internal/sim"
)

// Spawn is MPI_Comm_spawn: collectively start maxprocs new processes running
// the registered program named command, returning the parent↔child
// intercommunicator. Placement follows the implementation's rules: LAM
// honours the lam_spawn_file Info key naming an application schema in the
// world's FS (§4.2.2); otherwise children round-robin across nodes. There is
// deliberately no implementation-independent way to learn where the children
// started from the call's arguments — the tool must intercept the call or
// consult the process table, exactly the §4.2.2 problem.
//
// Probe args mirror C MPI: (command, argv, maxprocs, info, root, comm,
// intercomm, errcodes) — the intercommunicator is visible at the return
// probe.
func (c *Comm) Spawn(r *Rank, command string, argv []string, maxprocs int, info Info, root int) (*Comm, error) {
	f := r.beginMPI("MPI_Comm_spawn", command, argv, maxprocs, info, root, c, nil)
	w := c.w

	if !w.Impl.SupportsSpawn {
		r.endMPI(f, command, argv, maxprocs, info, root, c, nil)
		return nil, &ErrUnsupported{w.Impl.Kind, "dynamic process creation"}
	}
	if maxprocs < 1 {
		r.endMPI(f, command, argv, maxprocs, info, root, c, nil)
		return nil, fmt.Errorf("mpi: MPI_Comm_spawn: maxprocs must be >= 1, got %d", maxprocs)
	}
	prog, ok := w.programs[command]
	if !ok {
		r.endMPI(f, command, argv, maxprocs, info, root, c, nil)
		return nil, fmt.Errorf("mpi: MPI_Comm_spawn: no program registered as %q", command)
	}

	// The spawn is collective over the parent communicator: everyone
	// synchronizes before and after the root does the work.
	sync := c.collectiveSync()
	sync.wait(r, "MPI_Comm_spawn (enter)")

	if c.RankOf(r) == root {
		// The intercept method's wrapper (tool daemon startup) inflates the
		// spawn operation itself — the measurable drawback of §4.2.2.
		if w.SpawnInterceptor != nil {
			r.Compute(w.SpawnInterceptor(r, maxprocs))
		}
		r.Compute(w.Impl.SpawnBase + sim.Duration(maxprocs)*w.Impl.SpawnPerProc)

		placements, err := w.spawnPlacements(maxprocs, info)
		if err != nil {
			c.spawnResult = nil
			c.spawnErr = err
		} else {
			childWorld := w.startGroup(command, prog, placements, argv, nil)
			inter := w.newComm(c.local, childWorld.local)
			inter.name = fmt.Sprintf("intercomm-%d", inter.id)
			for _, child := range childWorld.local {
				child.parentComm = inter
			}
			c.spawnResult = inter
			c.spawnErr = nil
			if w.Tracer != nil {
				for _, child := range childWorld.local {
					w.traceEdge("spawn", r, child, r.Now(), r.Now(), 0, 0, 0, true)
				}
			}
			w.fireCommCreated(r, inter)
			for _, h := range w.hooks {
				if h.Spawned != nil {
					h.Spawned(r, childWorld.local)
				}
			}
		}
	}

	sync.wait(r, "MPI_Comm_spawn (exit)")
	inter, err := c.spawnResult, c.spawnErr
	r.endMPI(f, command, argv, maxprocs, info, root, c, inter)
	return inter, err
}

// spawnPlacements decides where spawned children run.
func (w *World) spawnPlacements(maxprocs int, info Info) ([]cluster.Placement, error) {
	if file, ok := info["lam_spawn_file"]; ok && w.Impl.Kind == LAM {
		text, ok := w.FS[file]
		if !ok {
			return nil, fmt.Errorf("mpi: lam_spawn_file %q not found", file)
		}
		schema, err := cluster.ParseBootSchema(text)
		if err != nil {
			return nil, fmt.Errorf("mpi: bad application schema: %w", err)
		}
		var placements []cluster.Placement
		for rank := 0; rank < maxprocs; rank++ {
			host := schema.Nodes[rank%schema.NumNodes()].Name
			node := -1
			for i, nd := range w.Spec.Nodes {
				if nd.Name == host {
					node = i
					break
				}
			}
			if node < 0 {
				return nil, fmt.Errorf("mpi: schema host %q not in LAM session", host)
			}
			placements = append(placements, cluster.Placement{Rank: rank, Node: node})
		}
		return placements, nil
	}
	// Implementation-dependent default: round-robin over the session nodes.
	placements := make([]cluster.Placement, maxprocs)
	for i := range placements {
		placements[i] = cluster.Placement{Rank: i, Node: i % w.Spec.NumNodes()}
	}
	return placements, nil
}
