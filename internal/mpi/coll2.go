package mpi

// Additional collectives and point-to-point modes rounding out the MPI-1
// surface real applications use: synchronous-mode send, gather/scatter,
// allgather, and all-to-all. Like the core collectives they run over the
// shadow context through traced point-to-point calls, so the tool observes
// their internals.

const (
	gatherTag   = 1<<20 + 300
	scatterTag  = 1<<20 + 400
	alltoallTag = 1<<20 + 500
)

// Ssend is MPI_Ssend: synchronous-mode send — it completes only when the
// matching receive has started, regardless of message size (i.e. it always
// uses the rendezvous path). Probe args match MPI_Send.
func (c *Comm) Ssend(r *Rank, data []byte, count int, dt Datatype, dest, tag int) error {
	f := r.beginMPI("MPI_Ssend", data, count, dt, dest, tag, c)
	defer r.endMPI(f, data, count, dt, dest, tag, c)
	r.SystemCompute(c.w.Impl.Cost.SendOverhead)
	peer, err := c.peer(r, dest)
	if err != nil {
		return err
	}
	rq := &Request{
		owner: r, isSend: true, dst: peer, commID: c.id,
		srcRank: c.RankOf(r), sendTag: tag, bytes: count * dt.Size(), data: data,
	}
	m := &message{
		src: r, dst: peer, commID: c.id, srcRank: rq.srcRank,
		tag: tag, bytes: rq.bytes, rendezvous: true, sreq: rq,
	}
	m.sentAt = r.Now()
	m.arrival = r.Now().Add(c.w.MsgTime(r.Now(), r.node, peer.node, 0))
	r.w.Eng.At(m.arrival, m.deliver)
	r.waitInternal(rq, r.waitDescr(rq))
	return nil
}

// Gather is MPI_Gather: every rank contributes count elements; the root
// returns the concatenation in rank order (nil elsewhere). Probe args:
// (sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root, comm).
func (c *Comm) Gather(r *Rank, data []byte, count int, dt Datatype, root int) ([]byte, error) {
	f := r.beginMPI("MPI_Gather", data, count, dt, nil, count, dt, root, c)
	defer r.endMPI(f, data, count, dt, nil, count, dt, root, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	sh := c.shadowComm()
	n := len(c.localGroup(r))
	me := c.RankOf(r)
	width := count * dt.Size()
	if me != root {
		return nil, sh.Send(r, padTo(data, width), count, dt, root, gatherTag)
	}
	out := make([]byte, width*n)
	copy(out[width*me:], padTo(data, width))
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		rq, err := sh.Recv(r, nil, count, dt, i, gatherTag)
		if err != nil {
			return nil, err
		}
		copy(out[width*i:], rq.Data())
	}
	return out, nil
}

// Scatter is MPI_Scatter: the root distributes consecutive count-element
// slices of data to each rank; everyone returns their slice. Probe args:
// (sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root, comm).
func (c *Comm) Scatter(r *Rank, data []byte, count int, dt Datatype, root int) ([]byte, error) {
	f := r.beginMPI("MPI_Scatter", data, count, dt, nil, count, dt, root, c)
	defer r.endMPI(f, data, count, dt, nil, count, dt, root, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	sh := c.shadowComm()
	n := len(c.localGroup(r))
	me := c.RankOf(r)
	width := count * dt.Size()
	if me == root {
		data = padTo(data, width*n)
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			if err := sh.Send(r, data[width*i:width*(i+1)], count, dt, i, scatterTag); err != nil {
				return nil, err
			}
		}
		return data[width*me : width*(me+1)], nil
	}
	rq, err := sh.Recv(r, nil, count, dt, root, scatterTag)
	if err != nil {
		return nil, err
	}
	return rq.Data(), nil
}

// Allgather is MPI_Allgather: Gather to rank 0 followed by Bcast, the
// straightforward implementation. Probe args: (sendbuf, sendcount,
// sendtype, recvbuf, recvcount, recvtype, comm).
func (c *Comm) Allgather(r *Rank, data []byte, count int, dt Datatype) ([]byte, error) {
	f := r.beginMPI("MPI_Allgather", data, count, dt, nil, count, dt, c)
	defer r.endMPI(f, data, count, dt, nil, count, dt, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	n := len(c.localGroup(r))
	gathered, err := c.gatherInternal(r, data, count, dt)
	if err != nil {
		return nil, err
	}
	sh := c.shadowComm()
	me := c.RankOf(r)
	width := count * dt.Size()
	// Binomial broadcast of the gathered vector from rank 0.
	if me != 0 {
		parent := me - lowestPow2LE(me)
		rq, err := sh.Recv(r, nil, count*n, dt, parent%n, gatherTag+1)
		if err != nil {
			return nil, err
		}
		gathered = rq.Data()
	}
	for mask := nextPow2GE(me + 1); me+mask < n; mask *= 2 {
		if err := sh.Send(r, gathered, count*n, dt, me+mask, gatherTag+1); err != nil {
			return nil, err
		}
	}
	_ = width
	return gathered, nil
}

// gatherInternal is Gather-to-0 without the traced MPI_Gather wrapper (used
// inside Allgather).
func (c *Comm) gatherInternal(r *Rank, data []byte, count int, dt Datatype) ([]byte, error) {
	sh := c.shadowComm()
	n := len(c.localGroup(r))
	me := c.RankOf(r)
	width := count * dt.Size()
	if me != 0 {
		return nil, sh.Send(r, padTo(data, width), count, dt, 0, gatherTag+2)
	}
	out := make([]byte, width*n)
	copy(out, padTo(data, width))
	for i := 1; i < n; i++ {
		rq, err := sh.Recv(r, nil, count, dt, i, gatherTag+2)
		if err != nil {
			return nil, err
		}
		copy(out[width*i:], rq.Data())
	}
	return out, nil
}

// Alltoall is MPI_Alltoall: rank i's slice j goes to rank j's slot i,
// pairwise-exchanged with Sendrecv. Probe args: (sendbuf, sendcount,
// sendtype, recvbuf, recvcount, recvtype, comm).
func (c *Comm) Alltoall(r *Rank, data []byte, count int, dt Datatype) ([]byte, error) {
	f := r.beginMPI("MPI_Alltoall", data, count, dt, nil, count, dt, c)
	defer r.endMPI(f, data, count, dt, nil, count, dt, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	sh := c.shadowComm()
	n := len(c.localGroup(r))
	me := c.RankOf(r)
	width := count * dt.Size()
	data = padTo(data, width*n)
	out := make([]byte, width*n)
	copy(out[width*me:], data[width*me:width*(me+1)])
	// Pairwise exchange: in step k, exchange with me^k fails for non-power
	// sizes, so use the rotation schedule (me+k, me-k).
	for k := 1; k < n; k++ {
		to := (me + k) % n
		from := (me - k + n) % n
		rq, err := sh.Sendrecv(r, data[width*to:width*(to+1)], count, dt, to, alltoallTag+k,
			nil, count, dt, from, alltoallTag+k)
		if err != nil {
			return nil, err
		}
		copy(out[width*from:], rq.Data())
	}
	return out, nil
}

// padTo returns data extended with zeros to exactly n bytes (synthetic
// payloads may be nil or short).
func padTo(data []byte, n int) []byte {
	if len(data) >= n {
		return data[:n]
	}
	out := make([]byte, n)
	copy(out, data)
	return out
}

// Wtime is MPI_Wtime: the process's wall clock in seconds.
func (r *Rank) Wtime() float64 { return r.Now().Seconds() }

// Wtick is MPI_Wtime's resolution (one virtual nanosecond).
func (r *Rank) Wtick() float64 { return 1e-9 }

// ProcessorName is MPI_Get_processor_name: the node hostname.
func (r *Rank) ProcessorName() string { return r.NodeName() }
