package mpi

// Message probing: MPI_Probe, MPI_Iprobe and MPI_Get_count. Programs like
// wrong-way's defensive variants use these to inspect pending messages
// before posting receives; the blocking probe accrues synchronization
// waiting time like a receive.

// Status describes a pending or received message.
type Status struct {
	Source int
	Tag    int
	bytes  int
}

// GetCount is MPI_Get_count: the element count of the message in dt units
// (-1 if the byte count is not divisible, mirroring MPI_UNDEFINED).
func (st *Status) GetCount(dt Datatype) int {
	if sz := dt.Size(); sz > 0 && st.bytes%sz == 0 {
		return st.bytes / sz
	}
	return -1
}

// findUnexpectedPeek finds (without consuming) the first queued message
// matching (commID, src, tag).
func (r *Rank) findUnexpectedPeek(commID, src, tag int) *message {
	for _, m := range r.unexpected {
		if m.commID == commID &&
			(src == AnySource || src == m.srcRank) &&
			(tag == AnyTag || tag == m.tag) {
			return m
		}
	}
	return nil
}

// Iprobe is MPI_Iprobe: a non-blocking check for a matching pending
// message. Probe args: (source, tag, comm, flag, status).
func (c *Comm) Iprobe(r *Rank, src, tag int) (bool, *Status, error) {
	f := r.beginMPI("MPI_Iprobe", src, tag, c, nil, nil)
	defer r.endMPI(f, src, tag, c, nil, nil)
	r.SystemCompute(c.w.Impl.Cost.RecvOverhead / 4)
	if m := r.findUnexpectedPeek(c.id, src, tag); m != nil {
		return true, &Status{Source: m.srcRank, Tag: m.tag, bytes: m.bytes}, nil
	}
	return false, nil, nil
}

// ProbeMsg is MPI_Probe: block until a matching message is pending, without
// receiving it. Probe args: (source, tag, comm, status).
func (c *Comm) ProbeMsg(r *Rank, src, tag int) (*Status, error) {
	f := r.beginMPI("MPI_Probe", src, tag, c, nil)
	defer r.endMPI(f, src, tag, c, nil)
	r.SystemCompute(c.w.Impl.Cost.RecvOverhead / 4)
	r.enterLibraryWait()
	defer r.exitLibraryWait()
	for {
		if m := r.findUnexpectedPeek(c.id, src, tag); m != nil {
			return &Status{Source: m.srcRank, Tag: m.tag, bytes: m.bytes}, nil
		}
		r.block("MPI_Probe")
	}
}
