package mpi

import (
	"fmt"

	"pperf/internal/cluster"
	"pperf/internal/probe"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// Program is the body of a simulated MPI application process.
type Program func(r *Rank, args []string)

// Hooks are resource-discovery callbacks. The performance tool's daemons
// register hooks to learn about new processes, communicators, RMA windows,
// spawn operations, and name changes at run time — the events behind the
// dynamic resource hierarchy of §4.2. All fields are optional.
type Hooks struct {
	ProcessStarted func(r *Rank)
	ProcessExited  func(r *Rank)
	CommCreated    func(r *Rank, c *Comm)
	WinCreated     func(r *Rank, w *Win)
	WinFreed       func(r *Rank, w *Win)
	// NameSet fires for MPI_Comm_set_name / MPI_Win_set_name; obj is the
	// *Comm or *Win.
	NameSet func(r *Rank, obj any, name string)
	// Spawned fires once per spawn operation, from the root parent's
	// context, after the child ranks exist but before they start running.
	Spawned func(parent *Rank, children []*Rank)
	// ProcessLost fires when a process is forcibly terminated (node crash,
	// job abort) rather than exiting cleanly. ProcessExited does NOT fire
	// for lost processes.
	ProcessLost func(r *Rank, reason string)
}

// ProcEntry is one row of the MPIR debugging-interface process table
// (§4.2.2's attach method queries this).
type ProcEntry struct {
	GlobalID int
	Node     int
	Program  string
	Rank     int
}

// World is a simulated MPI universe: the cluster, the implementation
// personality, the set of processes, and the program registry for spawn.
type World struct {
	Eng  *sim.Engine
	Spec *cluster.Spec
	Impl *Impl

	// Net, when non-nil, overlays fault-injected link conditions (latency
	// spikes, bandwidth collapse, severed links) on the implementation's
	// cost model. Nil (the default) costs nothing on the message path.
	Net *cluster.Network

	// FS is a tiny in-memory filesystem for things like LAM application
	// schema files named by Info keys.
	FS map[string]string

	// SpawnInterceptor models the intercept method of spawn support
	// (§4.2.2): a PMPI wrapper that replaces the spawned command with the
	// tool daemon, adding overhead to the spawn operation itself. When set,
	// its return value is charged to the spawning root.
	SpawnInterceptor func(parent *Rank, maxprocs int) sim.Duration

	// Tracer, when non-nil, receives every MPI call span, compute interval,
	// and happens-before edge the runtime generates. Nil (the default) costs
	// one pointer check per hook site and allocates nothing.
	Tracer *trace.Tracer

	programs  map[string]Program
	hooks     []*Hooks
	ranks     []*Rank
	appFuncs  map[string]*probe.Function
	nextComm  int
	winFree   []int // freed implementation window ids (reused by LAM-like impls)
	winNext   int
	winSerial int
	proctable []ProcEntry
}

// NewWorld creates a simulated MPI universe on the given cluster with the
// given implementation personality.
func NewWorld(eng *sim.Engine, spec *cluster.Spec, impl *Impl) *World {
	return &World{
		Eng:      eng,
		Spec:     spec,
		Impl:     impl,
		FS:       map[string]string{},
		programs: map[string]Program{},
		appFuncs: map[string]*probe.Function{},
	}
}

// Register adds a named program so it can be launched or spawned.
func (w *World) Register(name string, p Program) { w.programs[name] = p }

// AddHooks registers resource-discovery callbacks.
func (w *World) AddHooks(h *Hooks) { w.hooks = append(w.hooks, h) }

// Ranks returns every rank ever created, by global id.
func (w *World) Ranks() []*Rank { return w.ranks }

// MsgTime returns the transit duration of a message entering the network at
// virtual time now, applying any fault-injected link conditions. With no
// Network installed it is exactly the cost model's MsgTime.
func (w *World) MsgTime(now sim.Time, fromNode, toNode, bytes int) sim.Duration {
	if w.Net == nil {
		return w.Impl.Cost.MsgTime(fromNode, toNode, bytes)
	}
	lat, bw := w.Impl.Cost.LinkParams(fromNode, toNode)
	lat, bw, hold := w.Net.Apply(now, fromNode, toNode, lat, bw)
	return hold + lat + sim.Duration(float64(bytes)/bw*float64(sim.Second))
}

// KillNode forcibly terminates every unfinished process on the named node
// (modelling a node crash) and fires ProcessLost hooks for each. It returns
// how many processes were killed. Must be called from scheduler context.
func (w *World) KillNode(name, reason string) int {
	idx := -1
	for i, nd := range w.Spec.Nodes {
		if nd.Name == name {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	n := 0
	for _, r := range w.ranks {
		if r.node == idx && r.Lose(reason) {
			n++
		}
	}
	return n
}

// AbortAll forcibly terminates every unfinished process in the world — the
// equivalent of mpirun tearing the job down after it notices a node failure.
// Survivors are reported as observed exits (Abort), not as lost data: only
// the processes that vanished before the teardown degrade coverage. Returns
// how many processes were killed.
func (w *World) AbortAll(reason string) int {
	n := 0
	for _, r := range w.ranks {
		if r.Abort(reason) {
			n++
		}
	}
	return n
}

// fireProcessLost notifies hooks that a process was forcibly terminated.
func (w *World) fireProcessLost(r *Rank, reason string) {
	for _, h := range w.hooks {
		if h.ProcessLost != nil {
			h.ProcessLost(r, reason)
		}
	}
}

// Proctable returns the MPIR-style process table: every application process
// with its location. Debugger-style tools use it for the attach method.
func (w *World) Proctable() []ProcEntry { return append([]ProcEntry(nil), w.proctable...) }

// Launch starts the named program on the given placements, returning the
// group's MPI_COMM_WORLD. The processes begin running when the engine runs.
func (w *World) Launch(prog string, placements []cluster.Placement, args []string) (*Comm, error) {
	p, ok := w.programs[prog]
	if !ok {
		return nil, fmt.Errorf("mpi: no program registered as %q", prog)
	}
	return w.startGroup(prog, p, placements, args, nil), nil
}

// LaunchN is Launch with simple block placement: ranks fill each node's CPU
// slots in order, wrapping if oversubscribed.
func (w *World) LaunchN(prog string, n int, args []string) (*Comm, error) {
	placements := make([]cluster.Placement, n)
	total := w.Spec.NumCPUs()
	for i := range placements {
		placements[i] = cluster.Placement{Rank: i, Node: w.Spec.CPUToNode(i % total)}
	}
	return w.Launch(prog, placements, args)
}

// startGroup creates the ranks of one COMM_WORLD (initial launch or spawn)
// and starts their processes at the current virtual time.
func (w *World) startGroup(progName string, p Program, placements []cluster.Placement, args []string, parent *Comm) *Comm {
	group := make([]*Rank, len(placements))
	comm := w.newComm(group, nil)
	comm.name = "MPI_COMM_WORLD"
	if len(group) == 0 {
		return comm
	}
	for i, pl := range placements {
		r := &Rank{
			w:          w,
			global:     len(w.ranks),
			rank:       i,
			node:       pl.Node,
			world:      comm,
			parentComm: parent,
			progName:   progName,
			credits:    map[int]int{},
		}
		r.probes = probe.NewProcess(fmt.Sprintf("%s{%d}", progName, r.global), r)
		group[i] = r
		w.ranks = append(w.ranks, r)
		w.proctable = append(w.proctable, ProcEntry{
			GlobalID: r.global, Node: pl.Node, Program: progName, Rank: i,
		})
	}
	comm.initSync = &syncPoint{n: len(group)}
	w.fireCommCreated(group[0], comm)
	for _, r := range group {
		r := r
		r.proc = w.Eng.StartProc(r.probes.Name(), func(sp *sim.Proc) {
			sp.Val = r
			for _, h := range w.hooks {
				if h.ProcessStarted != nil {
					h.ProcessStarted(r)
				}
			}
			r.Init()
			p(r, args)
			if !r.finalized {
				r.Finalize()
			}
			for _, h := range w.hooks {
				if h.ProcessExited != nil {
					h.ProcessExited(r)
				}
			}
		})
	}
	return comm
}

// newComm allocates a communicator over the given local (and, for
// intercommunicators, remote) groups.
func (w *World) newComm(local, remote []*Rank) *Comm {
	w.nextComm++
	return &Comm{w: w, id: w.nextComm, local: local, remote: remote}
}

// allocWinID hands out an implementation window id, reusing freed ids when
// the personality does (this is what forces the tool's N-M unique naming).
func (w *World) allocWinID() (implID int, unique string) {
	w.winSerial++
	if w.Impl.ReusesWindowIDs && len(w.winFree) > 0 {
		implID = w.winFree[0]
		w.winFree = w.winFree[1:]
	} else {
		implID = w.winNext
		w.winNext++
	}
	return implID, fmt.Sprintf("%d-%d", implID, w.winSerial)
}

func (w *World) freeWinID(id int) {
	if w.Impl.ReusesWindowIDs {
		// Lowest-id-first reuse.
		pos := 0
		for pos < len(w.winFree) && w.winFree[pos] < id {
			pos++
		}
		w.winFree = append(w.winFree[:pos], append([]int{id}, w.winFree[pos:]...)...)
	}
}

// appFunc returns (creating once) the probe.Function for an application
// procedure in the given source module.
func (w *World) appFunc(module, name string) *probe.Function {
	key := module + "\x00" + name
	f, ok := w.appFuncs[key]
	if !ok {
		f = &probe.Function{Name: name, Module: module}
		w.appFuncs[key] = f
	}
	return f
}

// fireCommCreated notifies hooks of a new communicator resource.
func (w *World) fireCommCreated(r *Rank, c *Comm) {
	for _, h := range w.hooks {
		if h.CommCreated != nil {
			h.CommCreated(r, c)
		}
	}
}

// syncPoint is a reusable N-party internal barrier used for the
// implementation-internal synchronization of MPI_Init, MPI_Win_create,
// collective spawn, etc. It is invisible to the tool (no probes fire).
type syncPoint struct {
	n       int
	arrived int
	gen     int
	maxT    sim.Time
	cond    sim.Cond
}

// wait blocks the rank until all n parties have arrived; everyone resumes at
// the latest arrival time.
func (sp *syncPoint) wait(r *Rank, what string) {
	if sp.n <= 1 {
		return
	}
	if tr := r.w.Tracer; tr != nil {
		tr.SyncArrive(sp, r.probes.Name())
	}
	gen := sp.gen
	if r.Now() > sp.maxT {
		sp.maxT = r.Now()
	}
	sp.arrived++
	if sp.arrived == sp.n {
		release := sp.maxT
		sp.arrived = 0
		sp.maxT = 0
		sp.gen++
		if tr := r.w.Tracer; tr != nil {
			tr.SyncRelease(sp, what, r.probes.Name(), release)
		}
		sp.cond.Broadcast(release)
		return
	}
	r.enterLibraryWait()
	for gen == sp.gen {
		sp.cond.Wait(r.proc, what)
	}
	r.exitLibraryWait()
}
