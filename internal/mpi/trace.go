package mpi

import (
	"strconv"

	"pperf/internal/sim"
)

// traceMeta extracts a call's trace metadata — peer rank, tag, payload
// bytes, and communicator/window name — from the probe argument list (which
// mirrors the C MPI signatures). Only called when tracing is enabled.
func traceMeta(name string, args []any) (peer string, tag, bytes int, obj string) {
	intArg := func(i int) int {
		if i < len(args) {
			if v, ok := args[i].(int); ok {
				return v
			}
		}
		return 0
	}
	sized := func() int {
		if len(args) > 2 {
			if dt, ok := args[2].(Datatype); ok {
				return intArg(1) * dt.Size()
			}
		}
		return 0
	}
	peerOf := func(rank int) string {
		if rank == AnySource {
			return "any"
		}
		return strconv.Itoa(rank)
	}
	switch name {
	case "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Sendrecv":
		// (buf, count, datatype, peer, tag, ...) — Sendrecv's leading half
		// has the same shape.
		peer = peerOf(intArg(3))
		tag = intArg(4)
		bytes = sized()
	case "MPI_Put", "MPI_Get", "MPI_Accumulate":
		// (origin, count, datatype, target_rank, ...)
		peer = peerOf(intArg(3))
		bytes = sized()
	case "MPI_Bcast", "MPI_Reduce":
		// (buf, count, datatype, [op,] root, comm)
		bytes = sized()
	}
	for _, a := range args {
		switch v := a.(type) {
		case *Comm:
			if v != nil && obj == "" {
				obj = v.Name()
			}
		case *Win:
			if v != nil && obj == "" {
				obj = "win " + v.UniqueID()
			}
		}
	}
	return peer, tag, bytes, obj
}

// traceEdge records a happens-before edge on the destination rank's track.
// Callers must have checked w.Tracer != nil.
func (w *World) traceEdge(kind string, from, to *Rank, fromT, toT sim.Time, tag, bytes int, flow uint64, wait bool) {
	w.Tracer.Edge(kind, from.probes.Name(), to.probes.Name(), to.NodeName(), fromT, toT, tag, bytes, flow, wait)
}
