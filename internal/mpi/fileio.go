package mpi

import (
	"fmt"

	"pperf/internal/sim"
)

// File-access modes for FileOpen.
const (
	ModeRDOnly = 1 << iota
	ModeWROnly
	ModeRDWR
	ModeCreate
)

// File is an MPI-I/O file handle. MPI-I/O here is deliberately small — the
// paper discusses it as a tool-support concern (§3) but evaluates RMA, spawn
// and naming; this implementation exists so the tool's I/O metrics have a
// first-class MPI-I/O source in addition to socket time.
type File struct {
	comm    *Comm
	name    string
	amode   int
	open    bool
	written int64
	read    int64
}

// FileOpen is MPI_File_open: collective over comm. Probe args: (comm,
// filename, amode, info).
func (c *Comm) FileOpen(r *Rank, filename string, amode int, info Info) (*File, error) {
	f := r.beginMPI("MPI_File_open", c, filename, amode, info)
	defer r.endMPI(f, c, filename, amode, info)
	c.collectiveSync().wait(r, "MPI_File_open")
	r.IdleWait(c.w.Impl.IOLatency)
	return &File{comm: c, name: filename, amode: amode, open: true}, nil
}

// WriteAt is MPI_File_write_at: write count elements of dt at the given
// offset. The wall time spent here is I/O blocking time, not CPU. Probe
// args: (file, offset, buf, count, datatype).
func (fl *File) WriteAt(r *Rank, offset int64, buf []byte, count int, dt Datatype) error {
	f := r.beginMPI("MPI_File_write_at", fl, offset, buf, count, dt)
	defer r.endMPI(f, fl, offset, buf, count, dt)
	if err := fl.check("MPI_File_write_at"); err != nil {
		return err
	}
	bytes := count * dt.Size()
	fl.written += int64(bytes)
	r.IdleWait(fl.ioTime(bytes))
	return nil
}

// ReadAt is MPI_File_read_at. Probe args: (file, offset, buf, count,
// datatype).
func (fl *File) ReadAt(r *Rank, offset int64, buf []byte, count int, dt Datatype) error {
	f := r.beginMPI("MPI_File_read_at", fl, offset, buf, count, dt)
	defer r.endMPI(f, fl, offset, buf, count, dt)
	if err := fl.check("MPI_File_read_at"); err != nil {
		return err
	}
	bytes := count * dt.Size()
	fl.read += int64(bytes)
	r.IdleWait(fl.ioTime(bytes))
	return nil
}

// Close is MPI_File_close: collective. Probe args: (file).
func (fl *File) Close(r *Rank) error {
	f := r.beginMPI("MPI_File_close", fl)
	defer r.endMPI(f, fl)
	if err := fl.check("MPI_File_close"); err != nil {
		return err
	}
	fl.comm.collectiveSync().wait(r, "MPI_File_close")
	fl.open = false
	return nil
}

// BytesWritten and BytesRead expose transfer totals for verification.
func (fl *File) BytesWritten() int64 { return fl.written }
func (fl *File) BytesRead() int64    { return fl.read }

func (fl *File) ioTime(bytes int) sim.Duration {
	im := fl.comm.w.Impl
	return im.IOLatency + sim.Duration(float64(bytes)/im.IOBandwidth*float64(sim.Second))
}

func (fl *File) check(op string) error {
	if !fl.open {
		return fmt.Errorf("mpi: %s on closed file %q", op, fl.name)
	}
	return nil
}
