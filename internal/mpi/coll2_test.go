package mpi

import (
	"bytes"
	"testing"

	"pperf/internal/sim"
)

func TestSsendWaitsForReceiver(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var elapsed sim.Duration
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			t0 := r.Now()
			if err := c.Ssend(r, []byte{1}, 1, Byte, 1, 0); err != nil {
				t.Error(err)
			}
			elapsed = r.Now().Sub(t0)
		} else {
			r.Compute(1 * sim.Second)
			c.Recv(r, nil, 1, Byte, 0, 0)
		}
	})
	// Unlike eager MPI_Send, Ssend must wait ≈1s for the receive to start
	// even for a 1-byte message.
	if elapsed < 900*sim.Millisecond {
		t.Errorf("Ssend took %v; synchronous mode must wait for the receiver", elapsed)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		w := newTestWorld(t, MPICH2, 3, 2)
		var gathered []byte
		slices := make([][]byte, n)
		runProgram(t, w, n, func(r *Rank, _ []string) {
			c := r.World()
			mine := []byte{byte(r.Rank() + 10), byte(r.Rank() + 20)}
			g, err := c.Gather(r, mine, 2, Byte, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if r.Rank() == 0 {
				gathered = g
			}
			sl, err := c.Scatter(r, g, 2, Byte, 0)
			if err != nil {
				t.Error(err)
				return
			}
			slices[r.Rank()] = sl
		})
		if len(gathered) != 2*n {
			t.Fatalf("n=%d gathered len %d", n, len(gathered))
		}
		for i := 0; i < n; i++ {
			want := []byte{byte(i + 10), byte(i + 20)}
			if gathered[2*i] != want[0] || gathered[2*i+1] != want[1] {
				t.Errorf("n=%d gathered[%d] = %v", n, i, gathered[2*i:2*i+2])
			}
			// Scatter of the gathered data returns each rank its own slice.
			if !bytes.Equal(slices[i], want) {
				t.Errorf("n=%d scatter slice %d = %v, want %v", n, i, slices[i], want)
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	const n = 4
	w := newTestWorld(t, LAM, 2, 2)
	results := make([][]byte, n)
	runProgram(t, w, n, func(r *Rank, _ []string) {
		c := r.World()
		out, err := c.Allgather(r, []byte{byte(r.Rank())}, 1, Byte)
		if err != nil {
			t.Error(err)
			return
		}
		results[r.Rank()] = out
	})
	for rk, out := range results {
		if len(out) != n {
			t.Fatalf("rank %d got %v", rk, out)
		}
		for i := 0; i < n; i++ {
			if out[i] != byte(i) {
				t.Errorf("rank %d slot %d = %d", rk, i, out[i])
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		w := newTestWorld(t, MPICH, 2, 2)
		results := make([][]byte, n)
		runProgram(t, w, n, func(r *Rank, _ []string) {
			c := r.World()
			// Rank i sends byte 10*i+j to rank j.
			data := make([]byte, n)
			for j := 0; j < n; j++ {
				data[j] = byte(10*r.Rank() + j)
			}
			out, err := c.Alltoall(r, data, 1, Byte)
			if err != nil {
				t.Error(err)
				return
			}
			results[r.Rank()] = out
		})
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if results[j][i] != byte(10*i+j) {
					t.Errorf("n=%d rank %d slot %d = %d, want %d", n, j, i, results[j][i], 10*i+j)
				}
			}
		}
	}
}

func TestWtimeAndProcessorName(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		t0 := r.Wtime()
		r.Compute(500 * sim.Millisecond)
		if d := r.Wtime() - t0; d < 0.49 || d > 0.52 {
			t.Errorf("Wtime delta = %v", d)
		}
		if r.Wtick() <= 0 {
			t.Error("Wtick must be positive")
		}
		want := "node" + string(rune('0'+r.Node()))
		if r.ProcessorName() != want {
			t.Errorf("processor name = %q, want %q", r.ProcessorName(), want)
		}
	})
}

func TestProbeAndGetCount(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			r.Compute(500 * sim.Millisecond)
			c.Send(r, nil, 6, Int, 1, 9)
			return
		}
		// Iprobe before arrival: nothing pending.
		if found, _, _ := c.Iprobe(r, 0, 9); found {
			t.Error("Iprobe should find nothing yet")
		}
		// Blocking probe waits for arrival and reports size without consuming.
		t0 := r.Now()
		st, err := c.ProbeMsg(r, AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		if r.Now().Sub(t0) < 400*sim.Millisecond {
			t.Error("Probe should have blocked for the message")
		}
		if st.Source != 0 || st.Tag != 9 || st.GetCount(Int) != 6 {
			t.Errorf("status = %+v count=%d", st, st.GetCount(Int))
		}
		if st.GetCount(Double) != 3 || st.GetCount(Byte) != 24 {
			t.Errorf("counts: double=%d byte=%d", st.GetCount(Double), st.GetCount(Byte))
		}
		// Iprobe now sees it; the message is still receivable.
		if found, st2, _ := c.Iprobe(r, 0, 9); !found || st2.Source != 0 {
			t.Error("Iprobe should see the pending message")
		}
		if _, err := c.Recv(r, nil, 6, Int, 0, 9); err != nil {
			t.Error(err)
		}
		if r.UnexpectedCount() != 0 {
			t.Error("queue should be drained")
		}
	})
}

func TestGetCountUndefined(t *testing.T) {
	st := &Status{bytes: 7}
	if st.GetCount(Int) != -1 {
		t.Error("non-divisible count should be -1 (MPI_UNDEFINED)")
	}
}

func TestMPITest(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			r.Compute(500 * sim.Millisecond)
			c.Send(r, nil, 1, Byte, 1, 0)
			return
		}
		rq, _ := c.Irecv(r, nil, 1, Byte, 0, 0)
		if r.Test(rq) {
			t.Error("Test should be false before arrival")
		}
		r.Compute(1 * sim.Second)
		if !r.Test(rq) {
			t.Error("Test should be true after arrival")
		}
	})
}
