package mpi

import "fmt"

// Comm is a communicator. Intracommunicators have only a local group;
// intercommunicators (from MPI_Comm_spawn) also carry a remote group, and
// sends address ranks of the remote group as MPI requires.
type Comm struct {
	w      *World
	id     int
	name   string
	local  []*Rank
	remote []*Rank // nil for intracommunicators

	// shadow is the hidden communication context collectives use, so that
	// their internal messages can never match user receives (the simulated
	// equivalent of MPI context ids).
	shadow *Comm

	initSync *syncPoint
	finSync  *syncPoint
	collSync *syncPoint

	// In-flight collective window creation (first arrival allocates, the
	// rest join until everyone has).
	pendingWin     *winShared
	pendingWinLeft int

	// Result slots of an in-flight collective spawn, written by the root.
	spawnResult *Comm
	spawnErr    error

	// Intercommunicator merge state (MPI_Intercomm_merge).
	merged    *Comm
	mergeSync *syncPoint

	// In-flight MPI_Comm_dup / MPI_Comm_split state.
	opState *commOpState
}

// ID returns the communicator id the implementation assigned.
func (c *Comm) ID() int { return c.id }

// Name returns the user-assigned name (MPI_Comm_set_name), or a default
// derived from the id.
func (c *Comm) Name() string {
	if c.name != "" {
		return c.name
	}
	return fmt.Sprintf("comm-%d", c.id)
}

// IsInter reports whether this is an intercommunicator.
func (c *Comm) IsInter() bool { return c.remote != nil }

// Size returns the local group size.
func (c *Comm) Size() int { return len(c.local) }

// RemoteSize returns the remote group size (0 for intracommunicators).
func (c *Comm) RemoteSize() int { return len(c.remote) }

// RankOf returns r's rank in the communicator's local group, or its rank in
// the remote group for the other side of an intercommunicator. Returns -1
// if r is not a member.
func (c *Comm) RankOf(r *Rank) int {
	for i, m := range c.local {
		if m == r {
			return i
		}
	}
	for i, m := range c.remote {
		if m == r {
			return i
		}
	}
	return -1
}

// peer resolves a destination/source rank number from r's perspective: the
// local group for intracommunicators, the opposite group for
// intercommunicators.
func (c *Comm) peer(r *Rank, rank int) (*Rank, error) {
	group := c.local
	if c.remote != nil {
		// Which side is r on?
		onLocal := false
		for _, m := range c.local {
			if m == r {
				onLocal = true
				break
			}
		}
		if onLocal {
			group = c.remote
		}
	}
	if rank < 0 || rank >= len(group) {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d) on %s", rank, len(group), c.Name())
	}
	return group[rank], nil
}

// localGroup returns the group r belongs to within this communicator.
func (c *Comm) localGroup(r *Rank) []*Rank {
	if c.remote == nil {
		return c.local
	}
	for _, m := range c.local {
		if m == r {
			return c.local
		}
	}
	return c.remote
}

// shadowComm returns (creating once) the hidden collective context. Its
// creation is reported to resource hooks: tools observe the implementation-
// internal communicator collectives run over, which is how the paper's PC
// identified the communicator behind MPICH's barrier traffic (Fig 9).
func (c *Comm) shadowComm() *Comm {
	if c.shadow == nil {
		c.shadow = c.w.newComm(c.local, c.remote)
		c.shadow.name = fmt.Sprintf("%s (internal)", c.Name())
		if len(c.local) > 0 {
			c.w.fireCommCreated(c.local[0], c.shadow)
		}
	}
	return c.shadow
}

// finalizeSync returns the group's MPI_Finalize barrier.
func (c *Comm) finalizeSync() *syncPoint {
	if c.finSync == nil {
		c.finSync = &syncPoint{n: len(c.local)}
	}
	return c.finSync
}

// collectiveSync returns the internal barrier used for setup collectives
// (window creation, spawn) on this communicator.
func (c *Comm) collectiveSync() *syncPoint {
	if c.collSync == nil {
		c.collSync = &syncPoint{n: len(c.local)}
	}
	return c.collSync
}

// Merge is MPI_Intercomm_merge: collectively combines an
// intercommunicator's two groups into one intracommunicator (what
// spawnwinSync needs to create an RMA window spanning parent and child
// processes). The local group of the side calling with high=false comes
// first in the new ranking.
func (c *Comm) Merge(r *Rank, high bool) (*Comm, error) {
	f := r.beginMPI("MPI_Intercomm_merge", c, high, nil)
	defer r.endMPI(f, c, high, nil)
	if c.remote == nil {
		return nil, fmt.Errorf("mpi: MPI_Intercomm_merge on intracommunicator %s", c.Name())
	}
	if c.mergeSync == nil {
		c.mergeSync = &syncPoint{n: len(c.local) + len(c.remote)}
	}
	if c.merged == nil {
		all := make([]*Rank, 0, len(c.local)+len(c.remote))
		all = append(all, c.local...)
		all = append(all, c.remote...)
		c.merged = c.w.newComm(all, nil)
		c.merged.name = fmt.Sprintf("merged-%d", c.merged.id)
		c.w.fireCommCreated(r, c.merged)
	}
	c.mergeSync.wait(r, "MPI_Intercomm_merge")
	return c.merged, nil
}

// SetName performs MPI_Comm_set_name, making the tool display the friendly
// name in the resource hierarchy (§4.2.3).
func (c *Comm) SetName(r *Rank, name string) {
	f := r.beginMPI("MPI_Comm_set_name", c, name)
	c.name = name
	for _, h := range c.w.hooks {
		if h.NameSet != nil {
			h.NameSet(r, c, name)
		}
	}
	r.endMPI(f, c, name)
}
