package mpi

import (
	"fmt"
	"sort"
)

// Communicator management beyond construction: MPI_Comm_dup and
// MPI_Comm_split. Both are collective; both produce new communicators the
// tool discovers as fresh /SyncObject/Message resources, which is how a
// program's communicator structure becomes visible for focus selection.

// commOpState carries one in-flight collective dup/split on a communicator.
type commOpState struct {
	sync    *syncPoint
	arrived int
	colors  map[int]int // comm rank → color
	keys    map[int]int
	results map[int]*Comm // comm rank → new communicator
	dup     *Comm
}

func (c *Comm) commOp() *commOpState {
	if c.opState == nil {
		c.opState = &commOpState{
			sync:    &syncPoint{n: len(c.local)},
			colors:  map[int]int{},
			keys:    map[int]int{},
			results: map[int]*Comm{},
		}
	}
	return c.opState
}

// Dup is MPI_Comm_dup: a collective copy of the communicator with a fresh
// context. Probe args: (comm, newcomm) with the new communicator visible at
// the return probe.
func (c *Comm) Dup(r *Rank) (*Comm, error) {
	f := r.beginMPI("MPI_Comm_dup", c, nil)
	if c.remote != nil {
		r.endMPI(f, c, nil)
		return nil, fmt.Errorf("mpi: MPI_Comm_dup of intercommunicator %s not supported", c.Name())
	}
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	st := c.commOp()
	if st.dup == nil {
		st.dup = c.w.newComm(append([]*Rank(nil), c.local...), nil)
		st.dup.name = c.Name() + " (dup)"
		c.w.fireCommCreated(r, st.dup)
	}
	st.arrived++
	if st.arrived == len(c.local) {
		st.arrived = 0
		dup := st.dup
		st.dup = nil
		st.sync.wait(r, "MPI_Comm_dup")
		r.endMPI(f, c, dup)
		return dup, nil
	}
	dup := st.dup
	st.sync.wait(r, "MPI_Comm_dup")
	r.endMPI(f, c, dup)
	return dup, nil
}

// Split is MPI_Comm_split: collectively partition the communicator by
// color; within a color, ranks order by (key, old rank). A negative color
// (MPI_UNDEFINED) yields a nil communicator for that caller. Probe args:
// (comm, color, key, newcomm).
func (c *Comm) Split(r *Rank, color, key int) (*Comm, error) {
	f := r.beginMPI("MPI_Comm_split", c, color, key, nil)
	if c.remote != nil {
		r.endMPI(f, c, color, key, nil)
		return nil, fmt.Errorf("mpi: MPI_Comm_split of intercommunicator %s not supported", c.Name())
	}
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	st := c.commOp()
	me := c.RankOf(r)
	st.colors[me] = color
	st.keys[me] = key
	st.arrived++
	if st.arrived == len(c.local) {
		// Last arrival computes the partition for everyone.
		st.arrived = 0
		buildSplitResults(c, st)
	}
	st.sync.wait(r, "MPI_Comm_split")
	out := st.results[me]
	r.endMPI(f, c, color, key, out)
	return out, nil
}

// buildSplitResults partitions the communicator by the collected colors.
func buildSplitResults(c *Comm, st *commOpState) {
	groups := map[int][]int{} // color → comm ranks
	for rank, color := range st.colors {
		if color < 0 {
			st.results[rank] = nil
			continue
		}
		groups[color] = append(groups[color], rank)
	}
	colors := make([]int, 0, len(groups))
	for color := range groups {
		colors = append(colors, color)
	}
	sort.Ints(colors)
	for _, color := range colors {
		members := groups[color]
		sort.Slice(members, func(i, j int) bool {
			if st.keys[members[i]] != st.keys[members[j]] {
				return st.keys[members[i]] < st.keys[members[j]]
			}
			return members[i] < members[j]
		})
		ranks := make([]*Rank, len(members))
		for i, m := range members {
			ranks[i] = c.local[m]
		}
		nc := c.w.newComm(ranks, nil)
		nc.name = fmt.Sprintf("%s (split color %d)", c.Name(), color)
		c.w.fireCommCreated(ranks[0], nc)
		for _, m := range members {
			st.results[m] = nc
		}
	}
	st.colors = map[int]int{}
	st.keys = map[int]int{}
}
