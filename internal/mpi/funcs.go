package mpi

import (
	"strings"
	"sync"

	"pperf/internal/probe"
)

// The MPI function table. Every traced routine has both its MPI_ and PMPI_
// symbol registered (the MPI profiling interface requires every routine to
// be callable with a PMPI prefix, §4.1.1). Which symbol a call resolves to
// depends on the implementation personality: MPICH's default weak-symbol
// build resolves user calls to the PMPI_ names.
var mpiFuncNames = []string{
	"MPI_Init", "MPI_Finalize",
	"MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv",
	"MPI_Wait", "MPI_Test", "MPI_Waitall", "MPI_Sendrecv", "MPI_Probe", "MPI_Iprobe",
	"MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
	"MPI_Ssend", "MPI_Gather", "MPI_Scatter", "MPI_Allgather", "MPI_Alltoall",
	"MPI_Comm_spawn", "MPI_Comm_get_parent", "MPI_Comm_set_name",
	"MPI_Intercomm_merge", "MPI_Comm_dup", "MPI_Comm_split",
	"MPI_Win_create", "MPI_Win_free", "MPI_Win_fence",
	"MPI_Win_start", "MPI_Win_complete", "MPI_Win_post", "MPI_Win_wait",
	"MPI_Win_lock", "MPI_Win_unlock", "MPI_Win_set_name",
	"MPI_Put", "MPI_Get", "MPI_Accumulate",
	"MPI_Type_size",
	"MPI_File_open", "MPI_File_close", "MPI_File_read_at", "MPI_File_write_at",
}

// funcTable resolves function names to probe.Function values for one library
// module. Tables are cached per module name.
type funcTable struct {
	byName map[string]*probe.Function
}

var (
	tableMu sync.Mutex
	tables  = map[string]*funcTable{}
)

// libTable returns (building if needed) the function table for a library
// module. It contains MPI_* and PMPI_* entries plus the libc socket entries
// (read/write) used by socket-transport personalities.
func libTable(module string) *funcTable {
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tables[module]; ok {
		return t
	}
	t := &funcTable{byName: map[string]*probe.Function{}}
	for _, name := range mpiFuncNames {
		t.byName[name] = &probe.Function{Name: name, Module: module}
		pname := "P" + name
		t.byName[pname] = &probe.Function{Name: pname, Module: module}
	}
	for _, name := range []string{"read", "write"} {
		t.byName[name] = &probe.Function{Name: name, Module: "libc.so"}
	}
	tables[module] = t
	return t
}

// fn resolves the canonical MPI_* name to the Function the tool observes
// under this personality: the PMPI_* symbol for weak-symbol builds, the
// MPI_* symbol otherwise. Non-MPI names (read, write) pass through.
func (im *Impl) fn(name string) *probe.Function {
	t := libTable(im.LibModule)
	if im.UsesPMPINames && strings.HasPrefix(name, "MPI_") {
		if f, ok := t.byName["P"+name]; ok {
			return f
		}
	}
	f, ok := t.byName[name]
	if !ok {
		panic("mpi: unknown function " + name)
	}
	return f
}

// AllFunctionNames returns every traced MPI function symbol (MPI_ and PMPI_
// variants), used by the tool's metric definitions to build function sets.
func AllFunctionNames() []string {
	out := make([]string, 0, 2*len(mpiFuncNames))
	for _, n := range mpiFuncNames {
		out = append(out, n, "P"+n)
	}
	return out
}
