package mpi

import (
	"pperf/internal/sim"
)

// message is an in-flight or queued point-to-point message. For eager sends
// it carries the payload; for rendezvous sends it is the "ready to send"
// notice that the receiver matches before the transfer happens.
type message struct {
	src, dst   *Rank
	commID     int
	srcRank    int
	tag        int
	bytes      int
	data       []byte
	sentAt     sim.Time // injection time, for trace message edges
	arrival    sim.Time
	rendezvous bool
	sreq       *Request // sender's request (rendezvous completion, credits)
	internal   bool     // exempt from eager flow control (library traffic)
	seq        uint64   // per-receiver arrival order, for FIFO matching
	// creditBytes, when nonzero, is the flow-window charge still owed back
	// to the sender (returned on consume or library drain).
	creditBytes int
}

// Request is a nonblocking operation handle (from Isend/Irecv), completed
// with Wait.
type Request struct {
	owner      *Rank
	isSend     bool
	done       bool
	completeAt sim.Time

	// Receive-side match pattern and result.
	commID  int
	srcRank int // AnySource allowed
	tag     int // AnyTag allowed
	msg     *message
	buf     []byte // destination buffer; filled on completion if non-nil

	// Send side.
	dst      *Rank
	bytes    int
	data     []byte
	sendTag  int
	internal bool
	pending  bool // waiting for an eager flow-control credit
}

// Done reports whether the request has completed.
func (rq *Request) Done() bool { return rq.done }

// Data returns the received payload (nil until completion or for sends).
func (rq *Request) Data() []byte {
	if rq.msg != nil {
		return rq.msg.data
	}
	return nil
}

// Source returns the matched source rank for receive requests (useful with
// AnySource), or -1 before completion.
func (rq *Request) Source() int {
	if rq.msg != nil {
		return rq.msg.srcRank
	}
	return -1
}

// matches reports whether a posted receive pattern matches a message.
func (rq *Request) matches(m *message) bool {
	return !rq.isSend && !rq.done && rq.msg == nil &&
		rq.commID == m.commID &&
		(rq.srcRank == AnySource || rq.srcRank == m.srcRank) &&
		(rq.tag == AnyTag || rq.tag == m.tag)
}

// complete marks a receive request matched by m, completing at time t, and
// wakes the owner if it is blocked.
func (rq *Request) complete(m *message, t sim.Time) {
	rq.msg = m
	rq.done = true
	rq.completeAt = t
	if rq.buf != nil && m != nil && m.data != nil {
		copy(rq.buf, m.data)
	}
	rq.owner.wakeAt(t)
}

// completeSend marks a send request finished at t and wakes the owner.
func (rq *Request) completeSend(t sim.Time) {
	rq.done = true
	rq.completeAt = t
	rq.owner.wakeAt(t)
}

// deliver runs in scheduler (event) context when a message or
// ready-to-send notice arrives at its destination: match a posted receive
// or queue as unexpected.
func (m *message) deliver() {
	dst := m.dst
	dst.msgSeq++
	m.seq = dst.msgSeq
	for i, rq := range dst.posted {
		if rq.matches(m) {
			dst.posted = append(dst.posted[:i], dst.posted[i+1:]...)
			// The receive was already posted, so the receiver was (or will
			// be) blocked on this message: a wait edge.
			m.match(rq, m.arrival, true)
			return
		}
	}
	dst.unexpected = append(dst.unexpected, m)
	if m.creditBytes > 0 && dst.inLibraryWait > 0 {
		// The receiver is blocked inside the MPI library, so its transport
		// is being drained: the flow window frees without a match.
		m.returnCredit(m.arrival)
	}
	// Wake a receiver blocked in MPI_Probe (or any library wait that
	// re-checks the unexpected queue); spurious wakes are harmless.
	if dst.inLibraryWait > 0 {
		dst.wakeAt(m.arrival)
	}
}

// returnCredit schedules the message's flow-window bytes back to the sender.
func (m *message) returnCredit(t sim.Time) {
	if m.creditBytes == 0 {
		return
	}
	bytes := m.creditBytes
	m.creditBytes = 0
	src, dstGID := m.src, m.dst.global
	lat := m.dst.w.MsgTime(t, m.dst.node, m.src.node, 0)
	m.dst.w.Eng.At(t.Add(lat), func() { src.addCredit(dstGID, bytes, t) })
}

// match completes the handshake between message m and receive request rq,
// where tm is the match time (>= both the arrival and the post time).
// waited says the receive was posted before the message arrived (the
// receiver blocked on it), which makes the trace edge a critical-path edge.
func (m *message) match(rq *Request, tm sim.Time, waited bool) {
	w := m.dst.w
	lat := w.MsgTime(tm, m.src.node, m.dst.node, 0) // pure latency
	if !m.rendezvous {
		if tr := w.Tracer; tr != nil {
			w.traceEdge("msg", m.src, m.dst, m.sentAt, tm, m.tag, m.bytes, tr.NewFlow(), waited)
		}
		rq.complete(m, tm)
		m.returnCredit(tm)
		return
	}
	// Rendezvous: clear-to-send travels back, then the payload crosses.
	transfer := w.MsgTime(tm, m.src.node, m.dst.node, m.bytes) - lat
	ctsAt := tm.Add(lat)
	sendDone := ctsAt.Add(transfer)
	recvDone := sendDone.Add(lat)
	sreq := m.sreq
	if tr := w.Tracer; tr != nil {
		// The sender blocks until the clear-to-send arrives and the payload
		// drains; the receiver blocks until the payload lands.
		w.traceEdge("rendezvous", m.dst, m.src, tm, sendDone, m.tag, 0, 0, true)
		w.traceEdge("msg", m.src, m.dst, sendDone, recvDone, m.tag, m.bytes, tr.NewFlow(), true)
	}
	w.Eng.At(sendDone, func() { sreq.completeSend(sendDone) })
	w.Eng.At(recvDone, func() {
		m.data = sreq.data
		rq.complete(m, recvDone)
	})
}

// addCredit returns flow-window bytes for sends to destination global id
// dstGID and dispatches pending sends to that destination that now fit.
// Runs in event context at the credit's arrival time. sentAt is when the
// receiver released the window (for the trace's credit edge).
func (r *Rank) addCredit(dstGID int, bytes int, sentAt sim.Time) {
	r.credits[dstGID] += bytes
	now := r.w.Eng.Now()
	for r.credits[dstGID] > 0 {
		idx := -1
		for i, rq := range r.pendingSends {
			if rq.dst.global == dstGID {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		rq := r.pendingSends[idx]
		charge := rq.bytes + r.w.Impl.Cost.MsgHeaderBytes
		if r.credits[dstGID] < charge {
			return // head-of-line blocks until enough window frees
		}
		r.pendingSends = append(r.pendingSends[:idx], r.pendingSends[idx+1:]...)
		rq.pending = false
		r.credits[dstGID] -= charge
		if tr := r.w.Tracer; tr != nil {
			// The blocked send was released by the peer freeing flow-window
			// space: the credit is what the sender was really waiting on.
			r.w.traceEdge("credit", r.w.ranks[dstGID], r, sentAt, now, 0, charge, 0, true)
		}
		r.dispatchEager(rq, now, charge)
		rq.completeSend(now)
	}
}

// dispatchEager injects an eager message into the network at time t,
// charging creditBytes against the flow window (0 for internal traffic).
func (r *Rank) dispatchEager(rq *Request, t sim.Time, creditBytes int) {
	m := &message{
		src: r, dst: rq.dst, commID: rq.commID, srcRank: rq.srcRank,
		tag: rq.sendTag, bytes: rq.bytes, data: rq.data,
		sentAt:   t,
		arrival:  t.Add(r.w.MsgTime(t, r.node, rq.dst.node, rq.bytes)),
		internal: rq.internal, sreq: rq,
		creditBytes: creditBytes,
	}
	r.w.Eng.At(m.arrival, m.deliver)
}

// findUnexpected scans the unexpected queue (in arrival order) for the first
// message matching the pattern, removing and returning it.
func (r *Rank) findUnexpected(rq *Request) *message {
	for i, m := range r.unexpected {
		if rq.matches(m) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return m
		}
	}
	return nil
}
