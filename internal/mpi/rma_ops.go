package mpi

import (
	"encoding/binary"
	"math"

	"pperf/internal/sim"
)

// RMA data transfers. Argument positions in the fired probes mirror C MPI
// exactly, because the MDL metric definitions of Fig 2 read them by index:
// MPI_Put(origin_addr, origin_count, origin_datatype, target_rank,
// target_disp, target_count, target_datatype, win) — count is $arg[1], the
// datatype $arg[2], and the window $arg[7]. MPI_Accumulate adds op before
// win, putting the window at $arg[8].

// issueTransfer schedules the asynchronous data movement of one RMA op
// (bytes on the wire, for the trace) and registers it in the origin's epoch
// op list.
func (w *Win) issueTransfer(targetRank, bytes int, apply func()) {
	r := w.r
	ws := w.shared
	target := ws.comm.local[targetRank]
	op := &rmaOp{}
	w.ops = append(w.ops, op)
	at := r.Now().Add(ws.w.MsgTime(r.Now(), r.node, target.node, 0))
	if tr := ws.w.Tracer; tr != nil {
		// Origin→target data movement: a flow for the exporters, but not a
		// wait edge — RMA completion blocking happens at the epoch calls.
		ws.w.traceEdge("rma", r, target, r.Now(), at, 0, bytes, tr.NewFlow(), false)
	}
	ws.w.Eng.At(at, func() {
		if apply != nil {
			apply()
		}
		op.done = true
		op.doneAt = at
		r.wakeAt(at)
	})
}

// chargeOrigin computes the wire size of count elements of dt and charges
// the origin's per-op CPU cost plus the bandwidth term (the origin is busy
// injecting the data; the latency part completes asynchronously).
func (w *Win) chargeOrigin(count int, dt Datatype) int {
	r := w.r
	cost := &w.shared.w.Impl.Cost
	bytes := count * dt.Size()
	r.SystemCompute(cost.RMAOverhead)
	r.IdleWait(sim.Duration(float64(bytes) / cost.InterNodeBandwidth * float64(sim.Second)))
	return bytes
}

// Put is MPI_Put: one-sided write of count elements of dt into target's
// window at byte offset disp. data may be nil for synthetic payloads.
func (w *Win) Put(data []byte, count int, dt Datatype, targetRank int, disp int, tcount int, tdt Datatype) error {
	r := w.r
	f := r.beginMPI("MPI_Put", data, count, dt, targetRank, disp, tcount, tdt, w)
	defer r.endMPI(f, data, count, dt, targetRank, disp, tcount, tdt, w)
	if err := w.checkAccess(targetRank, "MPI_Put"); err != nil {
		return err
	}
	bytes := w.chargeOrigin(count, dt)
	payload := append([]byte(nil), data...)
	ws := w.shared
	w.issueTransfer(targetRank, bytes, func() {
		buf := ws.buf[targetRank]
		if payload != nil && disp < len(buf) {
			copy(buf[disp:], payload)
		} else if payload == nil {
			// Synthetic payload: mark the touched region.
			for i := disp; i < disp+bytes && i < len(buf); i++ {
				buf[i] = 0xAA
			}
		}
	})
	return nil
}

// Get is MPI_Get: one-sided read from target's window into buf.
func (w *Win) Get(buf []byte, count int, dt Datatype, targetRank int, disp int, tcount int, tdt Datatype) error {
	r := w.r
	f := r.beginMPI("MPI_Get", buf, count, dt, targetRank, disp, tcount, tdt, w)
	defer r.endMPI(f, buf, count, dt, targetRank, disp, tcount, tdt, w)
	if err := w.checkAccess(targetRank, "MPI_Get"); err != nil {
		return err
	}
	bytes := w.chargeOrigin(count, dt)
	ws := w.shared
	w.issueTransfer(targetRank, bytes, func() {
		src := ws.buf[targetRank]
		if buf != nil && disp < len(src) {
			copy(buf, src[disp:])
		}
	})
	return nil
}

// Accumulate is MPI_Accumulate: one-sided combine into the target window.
// OpSum is supported elementwise for Double and Int; OpReplace behaves like
// Put. Probe args: (origin_addr, origin_count, origin_datatype, target_rank,
// target_disp, target_count, target_datatype, op, win) — win is $arg[8].
func (w *Win) Accumulate(data []byte, count int, dt Datatype, targetRank int, disp int, tcount int, tdt Datatype, op Op) error {
	r := w.r
	f := r.beginMPI("MPI_Accumulate", data, count, dt, targetRank, disp, tcount, tdt, op, w)
	defer r.endMPI(f, data, count, dt, targetRank, disp, tcount, tdt, op, w)
	if err := w.checkAccess(targetRank, "MPI_Accumulate"); err != nil {
		return err
	}
	bytes := w.chargeOrigin(count, dt)
	payload := append([]byte(nil), data...)
	ws := w.shared
	w.issueTransfer(targetRank, bytes, func() {
		buf := ws.buf[targetRank]
		if payload == nil || disp >= len(buf) {
			return
		}
		switch {
		case op == OpReplace:
			copy(buf[disp:], payload)
		case op == OpSum && dt == Double:
			for i := 0; i+8 <= len(payload) && disp+i+8 <= len(buf); i += 8 {
				cur := math.Float64frombits(binary.LittleEndian.Uint64(buf[disp+i:]))
				add := math.Float64frombits(binary.LittleEndian.Uint64(payload[i:]))
				binary.LittleEndian.PutUint64(buf[disp+i:], math.Float64bits(cur+add))
			}
		case op == OpSum && dt == Int:
			for i := 0; i+4 <= len(payload) && disp+i+4 <= len(buf); i += 4 {
				cur := binary.LittleEndian.Uint32(buf[disp+i:])
				add := binary.LittleEndian.Uint32(payload[i:])
				binary.LittleEndian.PutUint32(buf[disp+i:], cur+add)
			}
		default:
			copy(buf[disp:], payload)
		}
	})
	return nil
}

// checkAccess validates that an RMA data transfer is legal in the current
// epoch state: inside a PSCW access epoch the target must be in the start
// group; under passive target a lock must be held; otherwise a fence epoch
// is assumed (fence-to-fence, the MPI default usage).
func (w *Win) checkAccess(targetRank int, op string) error {
	if w.shared.freed {
		return errFreedWindow(op, w)
	}
	if targetRank < 0 || targetRank >= len(w.shared.comm.local) {
		return errBadTarget(op, targetRank, w)
	}
	if w.inAccess {
		for _, t := range w.startGroup {
			if t == targetRank {
				return nil
			}
		}
		return errOutsideGroup(op, targetRank, w)
	}
	return nil
}

func errFreedWindow(op string, w *Win) error {
	return &rmaError{op: op, win: w.UniqueID(), msg: "window has been freed"}
}

func errBadTarget(op string, rank int, w *Win) error {
	return &rmaError{op: op, win: w.UniqueID(), msg: "target rank out of range", rank: rank}
}

func errOutsideGroup(op string, rank int, w *Win) error {
	return &rmaError{op: op, win: w.UniqueID(), msg: "target not in access-epoch group", rank: rank}
}

// rmaError describes an illegal RMA operation.
type rmaError struct {
	op   string
	win  string
	msg  string
	rank int
}

func (e *rmaError) Error() string {
	return "mpi: " + e.op + " on window " + e.win + ": " + e.msg
}

// LocalBuffer exposes the rank's own window memory (for verification in
// tests and examples).
func (w *Win) LocalBuffer() []byte { return w.shared.buf[w.myRank] }
