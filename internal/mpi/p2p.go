package mpi

import "fmt"

// --- internal (untraced) primitives --------------------------------------
//
// The traced MPI routines below are thin wrappers over these. Collectives
// also build on them (over the communicator's shadow context), so that only
// the routines the paper's tool would see through its instrumentation fire
// probes.

// isendInternal starts a send of bytes to dst (a rank number resolved
// against comm from r's perspective).
func (r *Rank) isendInternal(comm *Comm, dst, tag, count int, dt Datatype, data []byte, internal bool) (*Request, error) {
	peer, err := comm.peer(r, dst)
	if err != nil {
		return nil, err
	}
	cost := &r.w.Impl.Cost
	bytes := count * dt.Size()
	rq := &Request{
		owner: r, isSend: true, dst: peer, commID: comm.id,
		srcRank: comm.RankOf(r), sendTag: tag, bytes: bytes, data: data,
		internal: internal,
	}
	if bytes > cost.EagerThreshold {
		// Rendezvous: post a ready-to-send notice; the transfer starts when
		// the receiver matches it.
		m := &message{
			src: r, dst: peer, commID: comm.id, srcRank: rq.srcRank,
			tag: tag, bytes: bytes, rendezvous: true, sreq: rq, internal: internal,
		}
		m.sentAt = r.Now()
		m.arrival = r.Now().Add(r.w.MsgTime(r.Now(), r.node, peer.node, 0))
		r.w.Eng.At(m.arrival, m.deliver)
		return rq, nil
	}
	if internal {
		r.dispatchEager(rq, r.Now(), 0)
		rq.done = true
		rq.completeAt = r.Now()
		return rq, nil
	}
	if _, seen := r.credits[peer.global]; !seen {
		r.credits[peer.global] = cost.FlowCreditBytes
	}
	charge := bytes + cost.MsgHeaderBytes
	if charge > cost.FlowCreditBytes {
		// An eager message larger than the whole flow window (possible when
		// the eager threshold exceeds the buffer size) bypasses windowing:
		// real transports grow their buffers rather than deadlock.
		r.dispatchEager(rq, r.Now(), 0)
		rq.done = true
		rq.completeAt = r.Now()
		return rq, nil
	}
	if r.credits[peer.global] >= charge && !r.hasPendingTo(peer.global) {
		r.credits[peer.global] -= charge
		r.dispatchEager(rq, r.Now(), charge)
		rq.done = true
		rq.completeAt = r.Now()
		return rq, nil
	}
	// No window space: the send waits its turn (finite eager buffering —
	// this is where small-messages' clients accumulate MPI_Send waiting
	// time).
	rq.pending = true
	r.pendingSends = append(r.pendingSends, rq)
	return rq, nil
}

// irecvInternal posts a receive for (src, tag) on comm. src may be
// AnySource and tag AnyTag.
func (r *Rank) irecvInternal(comm *Comm, src, tag, count int, dt Datatype, buf []byte) (*Request, error) {
	if src != AnySource {
		if _, err := comm.peer(r, src); err != nil {
			return nil, err
		}
	}
	rq := &Request{
		owner: r, commID: comm.id, srcRank: src, tag: tag,
		bytes: count * dt.Size(), buf: buf,
	}
	if m := r.findUnexpected(rq); m != nil {
		// The message was already queued when the receive was posted — the
		// receiver never blocked on it, so the edge is not a wait edge.
		m.match(rq, r.Now(), false)
		return rq, nil
	}
	r.posted = append(r.posted, rq)
	return rq, nil
}

// hasPendingTo reports whether earlier sends to the destination are still
// queued for window space (per-pair FIFO ordering).
func (r *Rank) hasPendingTo(dstGID int) bool {
	for _, rq := range r.pendingSends {
		if rq.dst.global == dstGID {
			return true
		}
	}
	return false
}

// waitInternal blocks until the request completes. For personalities whose
// transport blocks in socket system calls, the waiting portion is wrapped in
// a visible read/write call, which is how MPICH's message waiting also
// accrues I/O blocking time (§5.1.2).
func (r *Rank) waitInternal(rq *Request, what string) {
	if rq.done && rq.completeAt <= r.Now() {
		return
	}
	if r.w.Impl.SocketIO {
		name := "read"
		if rq.isSend {
			name = "write"
		}
		f := r.w.Impl.fn(name)
		r.probes.Enter(f)
		defer r.probes.Leave(f)
	}
	r.enterLibraryWait()
	defer r.exitLibraryWait()
	for !rq.done {
		r.block(what)
	}
}

func (r *Rank) waitDescr(rq *Request) string {
	kind := "MPI_Recv"
	if rq.isSend {
		kind = "MPI_Send"
	}
	return fmt.Sprintf("%s(tag=%d, comm=%d) on rank %d", kind, rq.tag, rq.commID, r.rank)
}

// --- traced point-to-point API --------------------------------------------

// Send is MPI_Send: blocking standard-mode send of count elements of dt.
// data may be nil for synthetic payloads. Argument positions in the fired
// probe mirror C MPI: (buf, count, datatype, dest, tag, comm).
func (c *Comm) Send(r *Rank, data []byte, count int, dt Datatype, dest, tag int) error {
	f := r.beginMPI("MPI_Send", data, count, dt, dest, tag, c)
	defer r.endMPI(f, data, count, dt, dest, tag, c)
	r.SystemCompute(c.w.Impl.Cost.SendOverhead)
	rq, err := r.isendInternal(c, dest, tag, count, dt, data, false)
	if err != nil {
		return err
	}
	r.waitInternal(rq, r.waitDescr(rq))
	return nil
}

// Recv is MPI_Recv: blocking receive. src may be AnySource, tag AnyTag.
// Probe args: (buf, count, datatype, source, tag, comm).
func (c *Comm) Recv(r *Rank, buf []byte, count int, dt Datatype, src, tag int) (*Request, error) {
	f := r.beginMPI("MPI_Recv", buf, count, dt, src, tag, c)
	defer r.endMPI(f, buf, count, dt, src, tag, c)
	r.SystemCompute(c.w.Impl.Cost.RecvOverhead)
	rq, err := r.irecvInternal(c, src, tag, count, dt, buf)
	if err != nil {
		return nil, err
	}
	r.waitInternal(rq, r.waitDescr(rq))
	return rq, nil
}

// Isend is MPI_Isend: nonblocking send; complete with Wait.
func (c *Comm) Isend(r *Rank, data []byte, count int, dt Datatype, dest, tag int) (*Request, error) {
	f := r.beginMPI("MPI_Isend", data, count, dt, dest, tag, c)
	defer r.endMPI(f, data, count, dt, dest, tag, c)
	r.SystemCompute(c.w.Impl.Cost.SendOverhead)
	return r.isendInternal(c, dest, tag, count, dt, data, false)
}

// Irecv is MPI_Irecv: nonblocking receive; complete with Wait.
func (c *Comm) Irecv(r *Rank, buf []byte, count int, dt Datatype, src, tag int) (*Request, error) {
	f := r.beginMPI("MPI_Irecv", buf, count, dt, src, tag, c)
	defer r.endMPI(f, buf, count, dt, src, tag, c)
	r.SystemCompute(c.w.Impl.Cost.RecvOverhead)
	return r.irecvInternal(c, src, tag, count, dt, buf)
}

// Wait is MPI_Wait.
func (r *Rank) Wait(rq *Request) {
	f := r.beginMPI("MPI_Wait", rq)
	defer r.endMPI(f, rq)
	r.waitInternal(rq, r.waitDescr(rq))
}

// Test is MPI_Test: non-blocking completion check of a request.
func (r *Rank) Test(rq *Request) bool {
	f := r.beginMPI("MPI_Test", rq, nil)
	defer r.endMPI(f, rq, nil)
	return rq.done && rq.completeAt <= r.Now()
}

// Waitall is MPI_Waitall.
func (r *Rank) Waitall(rqs []*Request) {
	f := r.beginMPI("MPI_Waitall", len(rqs), rqs)
	defer r.endMPI(f, len(rqs), rqs)
	for _, rq := range rqs {
		r.waitInternal(rq, r.waitDescr(rq))
	}
}

// Sendrecv is MPI_Sendrecv: a simultaneous send and receive, deadlock-free.
// Probe args mirror C MPI: (sendbuf, sendcount, sendtype, dest, sendtag,
// recvbuf, recvcount, recvtype, source, recvtag, comm).
func (c *Comm) Sendrecv(r *Rank, sdata []byte, scount int, sdt Datatype, dest, stag int,
	rbuf []byte, rcount int, rdt Datatype, src, rtag int) (*Request, error) {
	f := r.beginMPI("MPI_Sendrecv", sdata, scount, sdt, dest, stag, rbuf, rcount, rdt, src, rtag, c)
	defer r.endMPI(f, sdata, scount, sdt, dest, stag, rbuf, rcount, rdt, src, rtag, c)
	r.SystemCompute(c.w.Impl.Cost.SendOverhead + c.w.Impl.Cost.RecvOverhead)
	rrq, err := r.irecvInternal(c, src, rtag, rcount, rdt, rbuf)
	if err != nil {
		return nil, err
	}
	srq, err := r.isendInternal(c, dest, stag, scount, sdt, sdata, false)
	if err != nil {
		return nil, err
	}
	r.waitInternal(srq, r.waitDescr(srq))
	r.waitInternal(rrq, r.waitDescr(rrq))
	return rrq, nil
}

// UnexpectedCount reports the current unexpected-queue length (observable
// for tests and queue diagnostics).
func (r *Rank) UnexpectedCount() int { return len(r.unexpected) }
