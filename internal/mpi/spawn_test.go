package mpi

import (
	"errors"
	"testing"

	"pperf/internal/sim"
)

func TestSpawnCreatesChildrenWithIntercomm(t *testing.T) {
	w := newTestWorld(t, LAM, 3, 2)
	childRanks := map[int]bool{}
	parentSawChildren := 0
	w.Register("child", func(r *Rank, args []string) {
		childRanks[r.Rank()] = true
		parent := r.GetParent()
		if parent == nil {
			t.Error("child should have a parent intercommunicator")
			return
		}
		if len(args) != 1 || args[0] != "-x" {
			t.Errorf("child args = %v", args)
		}
		// Send a hello to parent rank 0 over the intercommunicator.
		parent.Send(r, nil, 1, Byte, 0, 5)
	})
	w.Register("parent", func(r *Rank, _ []string) {
		c := r.World()
		inter, err := c.Spawn(r, "child", []string{"-x"}, 3, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if inter.RemoteSize() != 3 {
			t.Errorf("remote size = %d, want 3", inter.RemoteSize())
		}
		if r.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if _, err := inter.Recv(r, nil, 1, Byte, AnySource, 5); err != nil {
					t.Error(err)
				}
				parentSawChildren++
			}
		}
	})
	if _, err := w.LaunchN("parent", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(childRanks) != 3 {
		t.Errorf("child ranks = %v, want 3 distinct", childRanks)
	}
	if parentSawChildren != 3 {
		t.Errorf("parent received %d hellos", parentSawChildren)
	}
}

func TestSpawnUnsupportedOnMPICH2(t *testing.T) {
	w := newTestWorld(t, MPICH2, 2, 1)
	var spawnErr error
	w.Register("child", func(r *Rank, _ []string) {})
	runProgram(t, w, 1, func(r *Rank, _ []string) {
		_, spawnErr = r.World().Spawn(r, "child", nil, 2, nil, 0)
	})
	var uns *ErrUnsupported
	if !errors.As(spawnErr, &uns) {
		t.Errorf("spawn error = %v, want ErrUnsupported", spawnErr)
	}
}

func TestSpawnUnknownProgram(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var spawnErr error
	runProgram(t, w, 1, func(r *Rank, _ []string) {
		_, spawnErr = r.World().Spawn(r, "no-such-prog", nil, 1, nil, 0)
	})
	if spawnErr == nil {
		t.Error("spawning an unregistered program should fail")
	}
}

func TestSpawnIsCollective(t *testing.T) {
	// Non-root parents must synchronize with the root through the spawn.
	w := newTestWorld(t, LAM, 2, 2)
	exitTimes := make([]sim.Time, 3)
	w.Register("child", func(r *Rank, _ []string) {})
	runProgram(t, w, 3, func(r *Rank, _ []string) {
		if r.Rank() == 0 {
			r.Compute(1 * sim.Second) // root arrives late
		}
		if _, err := r.World().Spawn(r, "child", nil, 1, nil, 0); err != nil {
			t.Error(err)
		}
		exitTimes[r.Rank()] = r.Now()
	})
	for i, tt := range exitTimes {
		if tt < sim.Time(1*sim.Second) {
			t.Errorf("rank %d finished spawn at %v, before root arrived", i, tt)
		}
	}
}

func TestSpawnLAMSchemaPlacement(t *testing.T) {
	w := newTestWorld(t, LAM, 4, 1)
	w.FS["appschema"] = "node2\nnode3\n"
	childNodes := make([]int, 4)
	w.Register("child", func(r *Rank, _ []string) {
		childNodes[r.Rank()] = r.Node()
	})
	runProgram(t, w, 1, func(r *Rank, _ []string) {
		info := Info{"lam_spawn_file": "appschema"}
		if _, err := r.World().Spawn(r, "child", nil, 4, info, 0); err != nil {
			t.Error(err)
		}
	})
	// 4 children over schema [node2, node3] → 2,3,2,3.
	want := []int{2, 3, 2, 3}
	for i := range want {
		if childNodes[i] != want[i] {
			t.Errorf("childNodes = %v, want %v", childNodes, want)
			break
		}
	}
}

func TestSpawnInterceptorAddsOverhead(t *testing.T) {
	// The intercept method (tool daemon wrapping the spawn) inflates the
	// spawn operation's measured cost — §4.2.2's stated drawback.
	elapsed := func(intercept bool) sim.Duration {
		w := newTestWorld(t, LAM, 2, 1)
		if intercept {
			w.SpawnInterceptor = func(parent *Rank, maxprocs int) sim.Duration {
				return sim.Duration(maxprocs) * 50 * sim.Millisecond
			}
		}
		var d sim.Duration
		w.Register("child", func(r *Rank, _ []string) {})
		w.Register("main", func(r *Rank, _ []string) {
			t0 := r.Now()
			r.World().Spawn(r, "child", nil, 2, nil, 0)
			d = r.Now().Sub(t0)
		})
		if _, err := w.LaunchN("main", 1, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	plain, intercepted := elapsed(false), elapsed(true)
	if intercepted <= plain {
		t.Errorf("intercepted spawn (%v) should cost more than plain (%v)", intercepted, plain)
	}
}

func TestSpawnedHookAndProctable(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var hookChildren int
	w.AddHooks(&Hooks{
		Spawned: func(parent *Rank, children []*Rank) { hookChildren = len(children) },
	})
	w.Register("child", func(r *Rank, _ []string) {})
	runProgram(t, w, 1, func(r *Rank, _ []string) {
		r.World().Spawn(r, "child", nil, 2, nil, 0)
	})
	if hookChildren != 2 {
		t.Errorf("Spawned hook saw %d children, want 2", hookChildren)
	}
	// MPIR-style proctable lists launcher + spawned processes.
	pt := w.Proctable()
	if len(pt) != 3 {
		t.Fatalf("proctable has %d entries, want 3", len(pt))
	}
	children := 0
	for _, e := range pt {
		if e.Program == "child" {
			children++
		}
	}
	if children != 2 {
		t.Errorf("proctable children = %d", children)
	}
}

func TestFileIO(t *testing.T) {
	w := newTestWorld(t, MPICH2, 2, 1)
	var ioElapsed sim.Duration
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		fl, err := c.FileOpen(r, "data.out", ModeCreate|ModeWROnly, nil)
		if err != nil {
			t.Fatal(err)
		}
		t0 := r.Now()
		if err := fl.WriteAt(r, int64(r.Rank())*1024, nil, 1024, Byte); err != nil {
			t.Error(err)
		}
		if err := fl.ReadAt(r, 0, make([]byte, 64), 64, Byte); err != nil {
			t.Error(err)
		}
		ioElapsed = r.Now().Sub(t0)
		if err := fl.Close(r); err != nil {
			t.Error(err)
		}
		if fl.BytesWritten() != 1024 || fl.BytesRead() != 64 {
			t.Errorf("written=%d read=%d", fl.BytesWritten(), fl.BytesRead())
		}
		if err := fl.WriteAt(r, 0, nil, 1, Byte); err == nil {
			t.Error("write after close should fail")
		}
	})
	if ioElapsed <= 0 {
		t.Error("file I/O should consume wall time")
	}
}

func TestCommSetNameHook(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var got string
	w.AddHooks(&Hooks{NameSet: func(r *Rank, obj any, name string) {
		if _, ok := obj.(*Comm); ok {
			got = name
		}
	}})
	runProgram(t, w, 1, func(r *Rank, _ []string) {
		r.World().SetName(r, "Parent&Child")
	})
	if got != "Parent&Child" {
		t.Errorf("NameSet got %q", got)
	}
}

func TestDeterministicTimings(t *testing.T) {
	run := func() sim.Time {
		w := newTestWorld(t, MPICH, 3, 2)
		var end sim.Time
		runProgram(t, w, 6, func(r *Rank, _ []string) {
			c := r.World()
			for i := 0; i < 50; i++ {
				if r.Rank() == 0 {
					for s := 1; s < 6; s++ {
						c.Recv(r, nil, 4, Byte, AnySource, 0)
					}
				} else {
					c.Send(r, nil, 4, Byte, 0, 0)
				}
				c.Barrier(r)
			}
			if r.Rank() == 0 {
				end = r.Now()
			}
		})
		return end
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs ended at %v and %v", a, b)
	}
}
