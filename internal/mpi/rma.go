package mpi

import (
	"fmt"

	"pperf/internal/sim"
)

// ErrUnsupported reports an MPI-2 feature the selected implementation
// personality does not provide (e.g. passive-target RMA under LAM or MPICH2,
// spawn under MPICH2 0.96p2 beta — the real gaps §5.2 works around).
type ErrUnsupported struct {
	Impl    ImplKind
	Feature string
}

func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("mpi: %s does not support %s", e.Impl, e.Feature)
}

// Lock types for passive-target synchronization.
const (
	LockExclusive = iota
	LockShared
)

// winShared is the collective state of an RMA window, shared by all ranks'
// handles.
type winShared struct {
	w      *World
	comm   *Comm
	implID int    // implementation-assigned id; may be reused after free
	unique string // tool-facing "N-M" identifier (§4.2.1)
	name   string
	buf    [][]byte // per-comm-rank exposed memory
	freed  bool

	fenceSync *syncPoint

	// Active-target (PSCW) epoch state, keyed by comm rank.
	posted          map[int]map[int]bool // target → origins granted access
	expectComplete  map[int]int          // target → #origins in its post group
	completeArrived map[int]int          // target → completions received

	// Passive-target lock state, keyed by target comm rank.
	locks map[int]*lockState

	// internalComm models LAM keeping a communicator (which carries the
	// window's name) inside its MPI_Win structure; it surfaces in the
	// tool's Message hierarchy (Fig 23).
	internalComm *Comm
}

type lockState struct {
	exclusive bool
	holders   int
	waiters   sim.Cond
}

// Win is one rank's handle on an RMA window.
type Win struct {
	shared *winShared
	r      *Rank
	myRank int

	// ops are this rank's outstanding data transfers in the current epoch.
	ops []*rmaOp
	// startGroup is the target set of an open PSCW access epoch.
	startGroup []int
	inAccess   bool
	lockedOn   map[int]bool
}

type rmaOp struct {
	done   bool
	doneAt sim.Time
}

// UniqueID returns the tool-facing window identifier ("N-M"): N is the id
// the implementation assigned (and may reuse), M makes the pair unique.
func (w *Win) UniqueID() string { return w.shared.unique }

// ImplID returns the raw implementation window id.
func (w *Win) ImplID() int { return w.shared.implID }

// Name returns the user-assigned window name, or "" if unnamed.
func (w *Win) Name() string { return w.shared.name }

// Comm returns the communicator the window was created over.
func (w *Win) Comm() *Comm { return w.shared.comm }

// InternalComm returns the LAM-style communicator embedded in the window
// structure (nil for personalities that do not create one).
func (w *Win) InternalComm() *Comm { return w.shared.internalComm }

// Freed reports whether the window has been deallocated.
func (w *Win) Freed() bool { return w.shared.freed }

// WinCreate is MPI_Win_create: collective creation of an RMA window exposing
// size bytes at each rank. Probe args mirror C MPI: (base, size, disp_unit,
// info, comm, win) — the window handle argument is populated by the return
// probe, which is where the tool discovers new windows (§4.2.1).
func (c *Comm) WinCreate(r *Rank, size int, dispUnit int, info Info) (*Win, error) {
	f := r.beginMPI("MPI_Win_create", nil, size, dispUnit, info, c, nil)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)

	sync := c.collectiveSync()
	// First arrival allocates the shared state; everyone picks it up after
	// the sync. Stash on the communicator keyed by a creation counter.
	if c.pendingWin == nil {
		implID, unique := c.w.allocWinID()
		ws := &winShared{
			w: c.w, comm: c, implID: implID, unique: unique,
			buf:             make([][]byte, len(c.local)),
			fenceSync:       &syncPoint{n: len(c.local)},
			posted:          map[int]map[int]bool{},
			expectComplete:  map[int]int{},
			completeArrived: map[int]int{},
			locks:           map[int]*lockState{},
		}
		if c.w.Impl.WinNameInComm {
			ws.internalComm = c.w.newComm(c.local, nil)
			ws.internalComm.name = fmt.Sprintf("win-%s-comm", unique)
		}
		c.pendingWin = ws
		c.pendingWinLeft = len(c.local)
	}
	ws := c.pendingWin
	ws.buf[c.RankOf(r)] = make([]byte, size)
	c.pendingWinLeft--
	if c.pendingWinLeft == 0 {
		c.pendingWin = nil
	}
	sync.wait(r, "MPI_Win_create")

	win := &Win{shared: ws, r: r, myRank: c.RankOf(r), lockedOn: map[int]bool{}}
	r.endMPI(f, nil, size, dispUnit, info, c, win)
	for _, h := range c.w.hooks {
		if h.WinCreated != nil {
			h.WinCreated(r, win)
		}
	}
	if ws.internalComm != nil && c.RankOf(r) == 0 {
		c.w.fireCommCreated(r, ws.internalComm)
	}
	return win, nil
}

// WinFree is MPI_Win_free: collective deallocation. The MPI-2 standard
// requires barrier semantics, so it carries synchronization waiting time
// (§4.2.1's rma_sync_wait includes it). Probe args: (win).
func (w *Win) Free() error {
	r := w.r
	f := r.beginMPI("MPI_Win_free", w)
	defer r.endMPI(f, w)
	w.waitMyOps()
	w.shared.fenceSync.wait(r, "MPI_Win_free")
	if !w.shared.freed {
		w.shared.freed = true
		w.shared.w.freeWinID(w.shared.implID)
	}
	for _, h := range w.shared.w.hooks {
		if h.WinFreed != nil {
			h.WinFreed(r, w)
		}
	}
	return nil
}

// SetName is MPI_Win_set_name (§4.2.3). Under LAM the name is stored in the
// window's internal communicator, which renames the Message-hierarchy
// resource as well (Fig 23).
func (w *Win) SetName(name string) {
	r := w.r
	f := r.beginMPI("MPI_Win_set_name", w, name)
	w.shared.name = name
	if w.shared.internalComm != nil {
		w.shared.internalComm.name = name
	}
	for _, h := range w.shared.w.hooks {
		if h.NameSet != nil {
			h.NameSet(r, w, name)
		}
	}
	r.endMPI(f, w, name)
}

// waitMyOps blocks until all transfers this rank issued in the current
// epoch have completed locally.
func (w *Win) waitMyOps() {
	w.r.enterLibraryWait()
	for _, op := range w.ops {
		for !op.done {
			w.r.block("RMA transfer completion")
		}
	}
	w.r.exitLibraryWait()
	w.ops = w.ops[:0]
}

// Fence is MPI_Win_fence. It usually acts as a barrier (MPI-2 standard), so
// it is a focal point for synchronization waiting time. LAM implements it
// with a visible MPI_Barrier call (hence Oned's /SyncObject/Barrier finding,
// Fig 22); MPICH2 synchronizes internally. Probe args: (assert, win).
func (w *Win) Fence(assert int) error {
	r := w.r
	f := r.beginMPI("MPI_Win_fence", assert, w)
	defer r.endMPI(f, assert, w)
	if w.shared.freed {
		return fmt.Errorf("mpi: MPI_Win_fence on freed window %s", w.UniqueID())
	}
	w.waitMyOps()
	if w.shared.w.Impl.FenceViaBarrier {
		return w.shared.comm.Barrier(r)
	}
	w.shared.fenceSync.wait(r, "MPI_Win_fence")
	return nil
}

// Post is MPI_Win_post: expose the window to the origin ranks in group
// (comm ranks) for one PSCW epoch. Probe args: (group, assert, win).
func (w *Win) Post(group []int, assert int) error {
	r := w.r
	f := r.beginMPI("MPI_Win_post", group, assert, w)
	defer r.endMPI(f, group, assert, w)
	r.SystemCompute(w.shared.w.Impl.CollectiveOverhead)
	me := w.myRank
	ws := w.shared
	if ws.posted[me] == nil {
		ws.posted[me] = map[int]bool{}
	}
	for _, o := range group {
		ws.posted[me][o] = true
	}
	ws.expectComplete[me] = len(group)
	// Post notices travel to origins; wake anyone blocked in Win_start.
	for _, o := range group {
		origin := ws.comm.local[o]
		lat := ws.w.MsgTime(r.Now(), r.node, origin.node, 0)
		at := r.Now().Add(lat)
		if ws.w.Tracer != nil {
			ws.w.traceEdge("post", r, origin, r.Now(), at, 0, 0, 0, true)
		}
		ws.w.Eng.At(at, func() { origin.wakeAt(at) })
	}
	return nil
}

// Start is MPI_Win_start: open an access epoch to the target ranks in
// group. The MPI-2 standard lets implementations choose whether this blocks
// until the matching MPI_Win_post calls execute; LAM's does (so winscpwsync
// finds waiting time here), MPICH2 defers blocking to MPI_Win_complete
// (§5.2.1.1). Probe args: (group, assert, win).
func (w *Win) Start(group []int, assert int) error {
	r := w.r
	f := r.beginMPI("MPI_Win_start", group, assert, w)
	defer r.endMPI(f, group, assert, w)
	r.SystemCompute(w.shared.w.Impl.CollectiveOverhead)
	w.startGroup = append([]int(nil), group...)
	w.inAccess = true
	if w.shared.w.Impl.BlockingWinStart {
		w.waitPosts()
	}
	return nil
}

// waitPosts blocks until every target in the start group has posted for us,
// consuming each grant: one MPI_Win_post admits exactly one access epoch per
// origin, so an origin racing ahead of the target waits for the next post.
func (w *Win) waitPosts() {
	me := w.myRank
	w.r.enterLibraryWait()
	for _, t := range w.startGroup {
		for w.shared.posted[t] == nil || !w.shared.posted[t][me] {
			w.r.block(fmt.Sprintf("MPI_Win_post from rank %d on window %s", t, w.UniqueID()))
		}
		delete(w.shared.posted[t], me)
	}
	w.r.exitLibraryWait()
}

// Complete is MPI_Win_complete: close the access epoch; blocks until the
// epoch's transfers finish (and, for non-blocking-start implementations,
// until the matching posts have happened). Probe args: (win).
func (w *Win) Complete() error {
	r := w.r
	f := r.beginMPI("MPI_Win_complete", w)
	defer r.endMPI(f, w)
	if !w.inAccess {
		return fmt.Errorf("mpi: MPI_Win_complete without MPI_Win_start on %s", w.UniqueID())
	}
	if !w.shared.w.Impl.BlockingWinStart {
		w.waitPosts()
	}
	w.waitMyOps()
	ws := w.shared
	for _, t := range w.startGroup {
		target := ws.comm.local[t]
		lat := ws.w.MsgTime(r.Now(), r.node, target.node, 0)
		at := r.Now().Add(lat)
		tt := t
		if ws.w.Tracer != nil {
			ws.w.traceEdge("complete", r, target, r.Now(), at, 0, 0, 0, true)
		}
		ws.w.Eng.At(at, func() {
			ws.completeArrived[tt]++
			target.wakeAt(at)
		})
	}
	w.startGroup = nil
	w.inAccess = false
	return nil
}

// WaitEpoch is MPI_Win_wait: block until all origins of the exposure epoch
// have called MPI_Win_complete. Probe args: (win).
func (w *Win) WaitEpoch() error {
	r := w.r
	f := r.beginMPI("MPI_Win_wait", w)
	defer r.endMPI(f, w)
	ws := w.shared
	me := w.myRank
	r.enterLibraryWait()
	for ws.completeArrived[me] < ws.expectComplete[me] {
		r.block(fmt.Sprintf("MPI_Win_complete notices on window %s (%d/%d)",
			w.UniqueID(), ws.completeArrived[me], ws.expectComplete[me]))
	}
	r.exitLibraryWait()
	ws.completeArrived[me] = 0
	ws.expectComplete[me] = 0
	return nil
}

// Lock is MPI_Win_lock: passive-target synchronization. Unsupported by the
// LAM and MPICH2 personalities, as in 2004 (§5.2.1.1); the Reference
// personality provides it. Probe args: (lock_type, rank, assert, win).
func (w *Win) Lock(lockType, rank, assert int) error {
	r := w.r
	f := r.beginMPI("MPI_Win_lock", lockType, rank, assert, w)
	defer r.endMPI(f, lockType, rank, assert, w)
	if !w.shared.w.Impl.SupportsPassiveTarget {
		return &ErrUnsupported{w.shared.w.Impl.Kind, "passive target synchronization"}
	}
	ws := w.shared
	ls := ws.locks[rank]
	if ls == nil {
		ls = &lockState{}
		ws.locks[rank] = ls
	}
	r.enterLibraryWait()
	for ls.holders > 0 && (ls.exclusive || lockType == LockExclusive) {
		ls.waiters.Wait(r.proc, fmt.Sprintf("MPI_Win_lock on rank %d of %s", rank, w.UniqueID()))
	}
	r.exitLibraryWait()
	ls.holders++
	ls.exclusive = lockType == LockExclusive
	w.lockedOn[rank] = true
	// Acquiring the lock costs a round trip to the target.
	target := ws.comm.local[rank]
	r.IdleWait(2 * ws.w.MsgTime(r.Now(), r.node, target.node, 0))
	return nil
}

// Unlock is MPI_Win_unlock. Per the MPI-2 standard it may not return until
// all the epoch's transfers have completed at both origin and target — the
// reason it appears in the passive-target waiting-time metric. Probe args:
// (rank, win).
func (w *Win) Unlock(rank int) error {
	r := w.r
	f := r.beginMPI("MPI_Win_unlock", rank, w)
	defer r.endMPI(f, rank, w)
	if !w.shared.w.Impl.SupportsPassiveTarget {
		return &ErrUnsupported{w.shared.w.Impl.Kind, "passive target synchronization"}
	}
	if !w.lockedOn[rank] {
		return fmt.Errorf("mpi: MPI_Win_unlock of rank %d without lock on %s", rank, w.UniqueID())
	}
	w.waitMyOps()
	ws := w.shared
	target := ws.comm.local[rank]
	r.IdleWait(2 * ws.w.MsgTime(r.Now(), r.node, target.node, 0))
	delete(w.lockedOn, rank)
	ls := ws.locks[rank]
	ls.holders--
	if ls.holders == 0 {
		ls.exclusive = false
		ls.waiters.Broadcast(r.Now())
	}
	return nil
}
