// Package mpi implements a simulated MPI-1/MPI-2 runtime: communicators,
// point-to-point messaging with eager and rendezvous protocols, collectives,
// one-sided communication (RMA), dynamic process creation, object naming,
// and basic MPI-I/O — running on the deterministic virtual-time cluster of
// internal/sim and internal/cluster.
//
// The runtime stands in for the LAM/MPI, MPICH and MPICH2 implementations
// the paper measures. Three "implementation personalities" reproduce the
// observable differences between them (see impl.go). Every MPI routine is
// routed through the probe layer so the performance tool can dynamically
// instrument it, exactly as Paradyn instruments the real libraries.
package mpi

import "fmt"

// Datatype is an MPI basic datatype. Only the handful the paper's programs
// use are defined; Size is what the rma_*_bytes metrics multiply by (their
// MDL calls MPI_Type_size on the probe's datatype argument).
type Datatype int

const (
	Byte Datatype = iota
	Char
	Int
	Float
	Double
)

// Size returns the datatype's size in bytes, as MPI_Type_size would.
func (d Datatype) Size() int {
	switch d {
	case Byte, Char:
		return 1
	case Int, Float:
		return 4
	case Double:
		return 8
	default:
		panic(fmt.Sprintf("mpi: unknown datatype %d", int(d)))
	}
}

// String returns the MPI constant name.
func (d Datatype) String() string {
	switch d {
	case Byte:
		return "MPI_BYTE"
	case Char:
		return "MPI_CHAR"
	case Int:
		return "MPI_INT"
	case Float:
		return "MPI_FLOAT"
	case Double:
		return "MPI_DOUBLE"
	default:
		return fmt.Sprintf("MPI_DATATYPE(%d)", int(d))
	}
}

// Op is a reduction operation for Reduce/Allreduce/Accumulate.
type Op int

const (
	OpSum Op = iota
	OpMax
	OpMin
	OpReplace // MPI_REPLACE, valid only for Accumulate
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	case OpReplace:
		return "MPI_REPLACE"
	default:
		return fmt.Sprintf("MPI_OP(%d)", int(o))
	}
}

// apply combines two float64 values under the op.
func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpReplace:
		return b
	default:
		panic("mpi: bad op")
	}
}

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Info is the MPI-2 Info object: implementation hints as key/value pairs.
// LAM honours its lam_spawn_file key for spawn placement (§4.2.2).
type Info map[string]string
