package mpi

import (
	"encoding/binary"
	"math"
)

// Collective operations. Each personality implements them the way its real
// counterpart does, *through the traced point-to-point routines on the
// communicator's shadow context*, so the tool can observe the internals —
// e.g. the Performance Consultant discovering that MPICH's PMPI_Barrier is a
// collective communication over PMPI_Sendrecv (Fig 9).

// Barrier is MPI_Barrier. Probe args: (comm).
func (c *Comm) Barrier(r *Rank) error {
	f := r.beginMPI("MPI_Barrier", c)
	defer r.endMPI(f, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	if c.w.Impl.BarrierViaSendrecv {
		return c.disseminationBarrier(r)
	}
	return c.linearBarrier(r)
}

// disseminationBarrier is the MPICH-style algorithm: ceil(log2 n) rounds of
// Sendrecv with rotating partners. Works for any group size.
func (c *Comm) disseminationBarrier(r *Rank) error {
	sh := c.shadowComm()
	n := len(c.localGroup(r))
	if n <= 1 {
		return nil
	}
	me := c.RankOf(r)
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		if _, err := sh.Sendrecv(r, nil, 0, Byte, to, barrierTag+k,
			nil, 0, Byte, from, barrierTag+k); err != nil {
			return err
		}
	}
	return nil
}

// linearBarrier is the LAM-style algorithm: fan-in to rank 0 and fan-out
// release, over visible MPI_Isend/MPI_Irecv/MPI_Waitall (this is also what
// makes LAM's MPI_Win_fence show message-passing synchronization time in
// Fig 24).
func (c *Comm) linearBarrier(r *Rank) error {
	sh := c.shadowComm()
	group := c.localGroup(r)
	n := len(group)
	if n <= 1 {
		return nil
	}
	me := c.RankOf(r)
	if me == 0 {
		reqs := make([]*Request, 0, n-1)
		for i := 1; i < n; i++ {
			rq, err := sh.Irecv(r, nil, 0, Byte, i, barrierTag)
			if err != nil {
				return err
			}
			reqs = append(reqs, rq)
		}
		r.Waitall(reqs)
		reqs = reqs[:0]
		for i := 1; i < n; i++ {
			rq, err := sh.Isend(r, nil, 0, Byte, i, barrierTag+1)
			if err != nil {
				return err
			}
			reqs = append(reqs, rq)
		}
		r.Waitall(reqs)
		return nil
	}
	in, err := sh.Isend(r, nil, 0, Byte, 0, barrierTag)
	if err != nil {
		return err
	}
	out, err := sh.Irecv(r, nil, 0, Byte, 0, barrierTag+1)
	if err != nil {
		return err
	}
	r.Waitall([]*Request{in, out})
	return nil
}

const (
	barrierTag = 1 << 20
	bcastTag   = 1<<20 + 100
	reduceTag  = 1<<20 + 200
)

// Bcast is MPI_Bcast: binomial-tree broadcast of count elements of dt from
// root. It returns the data at every rank. Probe args: (buffer, count,
// datatype, root, comm).
func (c *Comm) Bcast(r *Rank, data []byte, count int, dt Datatype, root int) ([]byte, error) {
	f := r.beginMPI("MPI_Bcast", data, count, dt, root, c)
	defer r.endMPI(f, data, count, dt, root, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)

	sh := c.shadowComm()
	n := len(c.localGroup(r))
	me := c.RankOf(r)
	vrank := (me - root + n) % n

	// Receive from parent (unless root).
	if vrank != 0 {
		parent := (vrank-lowestPow2LE(vrank))%n + root
		rq, err := sh.Recv(r, make([]byte, count*dt.Size()), count, dt, parent%n, bcastTag)
		if err != nil {
			return nil, err
		}
		data = rq.Data()
	}
	// Forward to children.
	for mask := nextPow2GE(vrank + 1); vrank+mask < n; mask *= 2 {
		child := (vrank + mask + root) % n
		if err := sh.Send(r, data, count, dt, child, bcastTag); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Reduce is MPI_Reduce: binomial fan-in combining float64 vectors under op;
// the combined vector is returned at root (nil elsewhere). Probe args:
// (sendbuf, recvbuf, count, datatype, op, root, comm).
func (c *Comm) Reduce(r *Rank, vals []float64, dt Datatype, op Op, root int) ([]float64, error) {
	f := r.beginMPI("MPI_Reduce", vals, nil, len(vals), dt, op, root, c)
	defer r.endMPI(f, vals, nil, len(vals), dt, op, root, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)
	return c.reduceInternal(r, vals, dt, op, root, reduceTag)
}

// reduceInternal runs the binomial fan-in over the shadow context.
func (c *Comm) reduceInternal(r *Rank, vals []float64, dt Datatype, op Op, root, tag int) ([]float64, error) {
	sh := c.shadowComm()
	n := len(c.localGroup(r))
	me := c.RankOf(r)
	vrank := (me - root + n) % n
	acc := append([]float64(nil), vals...)
	count := len(vals)

	for mask := 1; mask < n; mask *= 2 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			err := sh.Send(r, floatsToBytes(acc), count, dt, parent, tag)
			return nil, err
		}
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			rq, err := sh.Recv(r, make([]byte, 8*count), count, dt, child, tag)
			if err != nil {
				return nil, err
			}
			for i, v := range bytesToFloats(rq.Data()) {
				if i < len(acc) {
					acc[i] = op.apply(acc[i], v)
				}
			}
		}
	}
	if me == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce is MPI_Allreduce, implemented as Reduce-to-0 + Bcast (as several
// real implementations do). Probe args: (sendbuf, recvbuf, count, datatype,
// op, comm).
func (c *Comm) Allreduce(r *Rank, vals []float64, dt Datatype, op Op) ([]float64, error) {
	f := r.beginMPI("MPI_Allreduce", vals, nil, len(vals), dt, op, c)
	defer r.endMPI(f, vals, nil, len(vals), dt, op, c)
	r.SystemCompute(c.w.Impl.CollectiveOverhead)

	acc, err := c.reduceInternal(r, vals, dt, op, 0, reduceTag+1)
	if err != nil {
		return nil, err
	}
	sh := c.shadowComm()
	n := len(c.localGroup(r))
	me := c.RankOf(r)
	count := len(vals)
	// Binomial broadcast of the combined vector from rank 0.
	var data []byte
	if me == 0 {
		data = floatsToBytes(acc)
	}
	vrank := me
	if vrank != 0 {
		parent := vrank - lowestPow2LE(vrank)
		rq, err := sh.Recv(r, make([]byte, 8*count), count, dt, parent%n, bcastTag+1)
		if err != nil {
			return nil, err
		}
		data = rq.Data()
	}
	for mask := nextPow2GE(vrank + 1); vrank+mask < n; mask *= 2 {
		if err := sh.Send(r, data, count, dt, vrank+mask, bcastTag+1); err != nil {
			return nil, err
		}
	}
	return bytesToFloats(data), nil
}

// lowestPow2LE returns the highest power of two <= v's lowest set bit
// distance — concretely, the largest power of two p with p <= v such that
// v-p is the binomial-tree parent step (v & -v for v>0).
func lowestPow2LE(v int) int {
	if v <= 0 {
		return 1
	}
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

// nextPow2GE returns the smallest power of two >= v.
func nextPow2GE(v int) int {
	p := 1
	for p < v {
		p *= 2
	}
	return p
}

// floatsToBytes encodes a float64 vector little-endian.
func floatsToBytes(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// bytesToFloats decodes a little-endian float64 vector.
func bytesToFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
