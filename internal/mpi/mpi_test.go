package mpi

import (
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/probe"
	"pperf/internal/sim"
)

// newTestWorld builds a world with nNodes×cpus and the given personality.
func newTestWorld(t *testing.T, kind ImplKind, nNodes, cpus int) *World {
	t.Helper()
	eng := sim.NewEngine(7)
	return NewWorld(eng, cluster.DefaultSpec(nNodes, cpus), NewImpl(kind))
}

// runProgram registers prog under "main", launches n ranks, and runs.
func runProgram(t *testing.T, w *World, n int, prog Program) {
	t.Helper()
	w.Register("main", prog)
	if _, err := w.LaunchN("main", n, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvDeliversData(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var got []byte
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			if err := c.Send(r, []byte("hello"), 5, Byte, 1, 42); err != nil {
				t.Error(err)
			}
		} else {
			rq, err := c.Recv(r, nil, 5, Byte, 0, 42)
			if err != nil {
				t.Error(err)
			}
			got = rq.Data()
		}
	})
	if string(got) != "hello" {
		t.Errorf("got %q, want hello", got)
	}
}

func TestRecvBlocksUntilArrival(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var recvDone, sendStart sim.Time
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			r.Compute(1 * sim.Second)
			sendStart = r.Now()
			c.Send(r, nil, 4, Byte, 1, 0)
		} else {
			c.Recv(r, nil, 4, Byte, 0, 0)
			recvDone = r.Now()
		}
	})
	if recvDone <= sendStart {
		t.Errorf("recv completed at %v, before send at %v", recvDone, sendStart)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var sendElapsed sim.Duration
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			t0 := r.Now()
			c.Send(r, nil, 4, Byte, 1, 0) // small: eager
			sendElapsed = r.Now().Sub(t0)
		} else {
			r.Compute(5 * sim.Second) // receiver busy for a long time
			c.Recv(r, nil, 4, Byte, 0, 0)
		}
	})
	if sendElapsed > 100*sim.Millisecond {
		t.Errorf("eager send took %v; should return without waiting for the recv", sendElapsed)
	}
}

func TestRendezvousSendBlocksForReceiver(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	big := w.Impl.Cost.EagerThreshold + 1
	var sendElapsed sim.Duration
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			t0 := r.Now()
			c.Send(r, nil, big, Byte, 1, 0)
			sendElapsed = r.Now().Sub(t0)
		} else {
			r.Compute(2 * sim.Second)
			c.Recv(r, nil, big, Byte, 0, 0)
		}
	})
	if sendElapsed < 1*sim.Second {
		t.Errorf("rendezvous send took only %v; should wait ~2s for receiver", sendElapsed)
	}
}

func TestEagerFlowControlBlocksSender(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	// Each 4-byte message charges 4+header bytes against the flow window.
	window := w.Impl.Cost.FlowCreditBytes / (4 + w.Impl.Cost.MsgHeaderBytes)
	total := window * 3
	var sendElapsed sim.Duration
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			t0 := r.Now()
			for i := 0; i < total; i++ {
				c.Send(r, nil, 4, Byte, 1, 0)
			}
			sendElapsed = r.Now().Sub(t0)
		} else {
			for i := 0; i < total; i++ {
				r.Compute(1 * sim.Millisecond) // slow consumer outside MPI
				c.Recv(r, nil, 4, Byte, 0, 0)
			}
		}
	})
	// Sender must have throttled to roughly the receiver's consumption
	// pace: it can run ahead by at most the window.
	minElapsed := sim.Duration(total-window-1) * sim.Millisecond
	if sendElapsed < minElapsed {
		t.Errorf("sender finished in %v; flow control should throttle it to ≥%v", sendElapsed, minElapsed)
	}
}

func TestFlowWindowDrainsWhileReceiverBlocked(t *testing.T) {
	// wrong-way's survival property: a receiver blocked inside MPI_Recv
	// drains the transport, so a burst larger than the flow window does not
	// deadlock even though the receiver matches the newest message first.
	w := newTestWorld(t, LAM, 2, 1)
	burst := w.Impl.Cost.FlowCreditBytes/(4+w.Impl.Cost.MsgHeaderBytes) + 50
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			for m := 0; m < burst; m++ {
				c.Send(r, nil, 4, Byte, 1, m)
			}
		} else {
			for m := burst - 1; m >= 0; m-- {
				c.Recv(r, nil, 4, Byte, 0, m)
			}
		}
	})
}

func TestMessageOrderFIFO(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var tags []int
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(r, nil, 1, Byte, 1, i)
			}
		} else {
			for i := 0; i < 10; i++ {
				rq, _ := c.Recv(r, nil, 1, Byte, 0, AnyTag)
				tags = append(tags, rq.msg.tag)
			}
		}
	})
	for i, tag := range tags {
		if tag != i {
			t.Fatalf("tags = %v, want FIFO order", tags)
		}
	}
}

func TestRecvByTagReordersAndQueuesUnexpected(t *testing.T) {
	// wrong-way pattern: receiver asks for the LAST tag first.
	w := newTestWorld(t, LAM, 2, 1)
	const n = 8
	var order []int
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(r, nil, 1, Byte, 1, i)
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				c.Recv(r, nil, 1, Byte, 0, i)
				order = append(order, i)
			}
			if r.UnexpectedCount() != 0 {
				t.Errorf("unexpected queue not drained: %d", r.UnexpectedCount())
			}
		}
	})
	if len(order) != n || order[0] != n-1 {
		t.Errorf("order = %v", order)
	}
}

func TestAnySource(t *testing.T) {
	w := newTestWorld(t, LAM, 3, 1)
	seen := map[int]bool{}
	runProgram(t, w, 3, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < 2; i++ {
				rq, err := c.Recv(r, nil, 1, Byte, AnySource, 7)
				if err != nil {
					t.Error(err)
				}
				seen[rq.Source()] = true
			}
		} else {
			c.Send(r, nil, 1, Byte, 0, 7)
		}
	})
	if !seen[1] || !seen[2] {
		t.Errorf("sources seen = %v, want both 1 and 2", seen)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 1)
	var data []byte
	runProgram(t, w, 2, func(r *Rank, _ []string) {
		c := r.World()
		if r.Rank() == 0 {
			rq, err := c.Isend(r, []byte{9, 8, 7}, 3, Byte, 1, 1)
			if err != nil {
				t.Error(err)
			}
			r.Compute(10 * sim.Millisecond)
			r.Wait(rq)
		} else {
			rq, err := c.Irecv(r, make([]byte, 3), 3, Byte, 0, 1)
			if err != nil {
				t.Error(err)
			}
			r.Wait(rq)
			data = rq.Data()
		}
	})
	if len(data) != 3 || data[0] != 9 {
		t.Errorf("data = %v", data)
	}
}

func TestSendrecvBidirectionalNoDeadlock(t *testing.T) {
	for _, kind := range []ImplKind{LAM, MPICH, MPICH2} {
		w := newTestWorld(t, kind, 2, 1)
		big := w.Impl.Cost.EagerThreshold * 2 // rendezvous both ways
		runProgram(t, w, 2, func(r *Rank, _ []string) {
			c := r.World()
			other := 1 - r.Rank()
			if _, err := c.Sendrecv(r, nil, big, Byte, other, 3,
				nil, big, Byte, other, 3); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, kind := range []ImplKind{LAM, MPICH, MPICH2} {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, kind, 3, 2)
			after := make([]sim.Time, 5)
			runProgram(t, w, 5, func(r *Rank, _ []string) {
				c := r.World()
				r.Compute(sim.Duration(r.Rank()+1) * 100 * sim.Millisecond)
				if err := c.Barrier(r); err != nil {
					t.Error(err)
				}
				after[r.Rank()] = r.Now()
			})
			// Nobody leaves before the slowest (500ms) arrives.
			for i, tt := range after {
				if tt < sim.Time(500*sim.Millisecond) {
					t.Errorf("%s: rank %d left barrier at %v, before slowest arrival", kind, i, tt)
				}
			}
		})
	}
}

func TestMPICHBarrierUsesSendrecvProbes(t *testing.T) {
	// The tool can observe that MPICH implements PMPI_Barrier as a
	// collective communication over PMPI_Sendrecv (Fig 9).
	w := newTestWorld(t, MPICH, 2, 2)
	sendrecvInsideBarrier := 0
	runProgram(t, w, 4, func(r *Rank, _ []string) {
		if r.Rank() == 0 {
			r.Probes().Insert("PMPI_Sendrecv", probe.Entry, probe.Append, func(ev *probe.Event) {
				if ev.Proc.InFunction("PMPI_Barrier") {
					sendrecvInsideBarrier++
				}
			})
		}
		r.World().Barrier(r)
	})
	if sendrecvInsideBarrier == 0 {
		t.Error("expected PMPI_Sendrecv calls nested inside PMPI_Barrier for MPICH")
	}
}

func TestLAMBarrierUsesIsendWaitall(t *testing.T) {
	w := newTestWorld(t, LAM, 2, 2)
	isendInside, sendrecvInside := 0, 0
	runProgram(t, w, 4, func(r *Rank, _ []string) {
		if r.Rank() == 1 {
			r.Probes().Insert("MPI_Isend", probe.Entry, probe.Append, func(ev *probe.Event) {
				if ev.Proc.InFunction("MPI_Barrier") {
					isendInside++
				}
			})
			r.Probes().Insert("MPI_Sendrecv", probe.Entry, probe.Append, func(ev *probe.Event) {
				sendrecvInside++
			})
		}
		r.World().Barrier(r)
	})
	if isendInside == 0 {
		t.Error("LAM barrier should nest MPI_Isend")
	}
	if sendrecvInside != 0 {
		t.Error("LAM barrier should not use MPI_Sendrecv")
	}
}

func TestPMPINameResolution(t *testing.T) {
	// MPICH's weak-symbol default resolves user calls to PMPI_* names
	// (§4.1.1); LAM exposes MPI_* names.
	wm := newTestWorld(t, MPICH, 2, 1)
	sawPMPI := false
	wm.Register("main", func(r *Rank, _ []string) {
		r.Probes().OnFirstCall = func(f *probe.Function) {
			if f.Name == "PMPI_Send" {
				sawPMPI = true
			}
			if f.Name == "MPI_Send" {
				t.Error("MPICH should resolve MPI_Send to PMPI_Send")
			}
		}
		c := r.World()
		if r.Rank() == 0 {
			c.Send(r, nil, 1, Byte, 1, 0)
		} else {
			c.Recv(r, nil, 1, Byte, 0, 0)
		}
	})
	if _, err := wm.LaunchN("main", 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := wm.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawPMPI {
		t.Error("never saw PMPI_Send under MPICH")
	}
}

func TestSocketIOShowsReadWriteCalls(t *testing.T) {
	// MPICH's blocking waits appear inside libc read/write (Fig 3's
	// ExcessiveIOBlockingTime); LAM's (sysv shared memory) do not.
	for _, tc := range []struct {
		kind ImplKind
		want bool
	}{{MPICH, true}, {LAM, false}} {
		w := newTestWorld(t, tc.kind, 2, 1)
		sawRead := false
		runProgram(t, w, 2, func(r *Rank, _ []string) {
			c := r.World()
			if r.Rank() == 0 {
				r.Compute(100 * sim.Millisecond)
				c.Send(r, nil, 1, Byte, 1, 0)
			} else {
				r.Probes().Insert("read", probe.Entry, probe.Append, func(*probe.Event) {
					sawRead = true
				})
				c.Recv(r, nil, 1, Byte, 0, 0) // blocks → read under MPICH
			}
		})
		if sawRead != tc.want {
			t.Errorf("%s: sawRead = %v, want %v", tc.kind, sawRead, tc.want)
		}
	}
}

func TestBcastDistributesData(t *testing.T) {
	w := newTestWorld(t, MPICH2, 3, 2)
	got := make([][]byte, 5)
	runProgram(t, w, 5, func(r *Rank, _ []string) {
		c := r.World()
		var data []byte
		if r.Rank() == 2 {
			data = []byte("bcast-payload")
		}
		out, err := c.Bcast(r, data, 13, Byte, 2)
		if err != nil {
			t.Error(err)
		}
		got[r.Rank()] = out
	})
	for i, d := range got {
		if string(d) != "bcast-payload" {
			t.Errorf("rank %d got %q", i, d)
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		w := newTestWorld(t, LAM, 4, 2)
		sums := make([]float64, n)
		runProgram(t, w, n, func(r *Rank, _ []string) {
			c := r.World()
			vals := []float64{float64(r.Rank() + 1)}
			res, err := c.Reduce(r, vals, Double, OpSum, 0)
			if err != nil {
				t.Error(err)
			}
			if r.Rank() == 0 {
				want := float64(n*(n+1)) / 2
				if res[0] != want {
					t.Errorf("n=%d Reduce = %v, want %v", n, res[0], want)
				}
			}
			all, err := c.Allreduce(r, vals, Double, OpSum)
			if err != nil {
				t.Error(err)
			}
			sums[r.Rank()] = all[0]
		})
		want := float64(n*(n+1)) / 2
		for i := 0; i < n; i++ {
			if sums[i] != want {
				t.Errorf("n=%d rank %d Allreduce = %v, want %v", n, i, sums[i], want)
			}
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	w := newTestWorld(t, MPICH, 2, 2)
	runProgram(t, w, 4, func(r *Rank, _ []string) {
		c := r.World()
		vals := []float64{float64(r.Rank())}
		mx, err := c.Allreduce(r, vals, Double, OpMax)
		if err != nil || mx[0] != 3 {
			t.Errorf("max = %v err=%v", mx, err)
		}
		mn, err := c.Allreduce(r, vals, Double, OpMin)
		if err != nil || mn[0] != 0 {
			t.Errorf("min = %v err=%v", mn, err)
		}
	})
}
