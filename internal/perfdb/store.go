package perfdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pperf/internal/session"
)

// A Store is a directory of compacted run archives plus a metadata index:
//
//	<dir>/index.json      the run index (this file is the store)
//	<dir>/runs/<id>.ppdb  one chunked archive per stored run
//
// IDs are assigned sequentially (r0001, r0002, …) so a scripted sequence
// of adds is deterministic. The index is rewritten atomically (temp file
// + rename) on every mutation; files in runs/ not referenced by the index
// are garbage a GC sweep removes.
type Store struct {
	dir   string
	index storeIndex
}

// indexVersion versions index.json; Open refuses a newer index rather
// than silently dropping fields.
const indexVersion = 1

type storeIndex struct {
	Version int       `json:"version"`
	NextID  int       `json:"next_id"`
	Runs    []RunMeta `json:"runs"`
}

// RunMeta is one stored run's index entry. The descriptive fields come
// from the archive header's Meta map (stamped by the recording harness);
// Verdict is the Consultant's exported summary, supplied by the caller at
// add time (the store itself never replays).
type RunMeta struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`

	Program string `json:"program,omitempty"`
	Impl    string `json:"impl,omitempty"`
	Seed    string `json:"seed,omitempty"`
	Procs   string `json:"procs,omitempty"`
	Nodes   string `json:"nodes,omitempty"`
	Faults  string `json:"faults,omitempty"`
	Runtime string `json:"runtime,omitempty"`

	Verdict string `json:"verdict,omitempty"`

	Events    int   `json:"events"`
	Bytes     int64 `json:"bytes"`
	Truncated bool  `json:"truncated,omitempty"`
}

// Describe renders the one-line summary `db list` prints.
func (m RunMeta) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-18s %-9s seed=%-10s", m.ID, orDash(m.Program), orDash(m.Impl), orDash(m.Seed))
	fmt.Fprintf(&b, " runtime=%-9s events=%-7d", orDash(m.Runtime), m.Events)
	if m.Faults != "" {
		fmt.Fprintf(&b, " faults=%q", m.Faults)
	}
	if m.Label != "" {
		fmt.Fprintf(&b, " label=%q", m.Label)
	}
	if m.Truncated {
		b.WriteString(" [truncated]")
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Open opens (creating if needed) the store at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, index: storeIndex{Version: indexVersion, NextID: 1}}
	data, err := os.ReadFile(st.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &st.index); err != nil {
		return nil, fmt.Errorf("perfdb: corrupt store index %s: %v", st.indexPath(), err)
	}
	if st.index.Version > indexVersion {
		return nil, fmt.Errorf("perfdb: store index version %d; this build reads version %d", st.index.Version, indexVersion)
	}
	if st.index.NextID < 1 {
		st.index.NextID = 1
	}
	return st, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) indexPath() string { return filepath.Join(st.dir, "index.json") }

// RunPath returns the archive path of a stored run.
func (st *Store) RunPath(id string) string {
	return filepath.Join(st.dir, "runs", id+".ppdb")
}

// Runs returns the index entries in store order.
func (st *Store) Runs() []RunMeta {
	return append([]RunMeta(nil), st.index.Runs...)
}

// Get returns the index entry for id.
func (st *Store) Get(id string) (RunMeta, error) {
	for _, m := range st.index.Runs {
		if m.ID == id || (m.Label != "" && m.Label == id) {
			return m, nil
		}
	}
	return RunMeta{}, fmt.Errorf("perfdb: no run %q in store %s (try `db list`)", id, st.dir)
}

// saveIndex writes index.json atomically.
func (st *Store) saveIndex() error {
	data, err := json.MarshalIndent(&st.index, "", "  ")
	if err != nil {
		return err
	}
	tmp := st.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, st.indexPath())
}

// metaFromHeader fills the descriptive fields from an archive header.
func metaFromHeader(m *RunMeta, h session.Header) {
	m.Program = h.Meta["program"]
	m.Impl = h.Meta["impl"]
	m.Seed = h.Meta["seed"]
	m.Procs = h.Meta["procs"]
	m.Nodes = h.Meta["nodes"]
	m.Faults = h.Meta["faults"]
	m.Runtime = h.Meta["runtime"]
}

// nextID reserves the next sequential run ID.
func (st *Store) nextID() string {
	id := fmt.Sprintf("r%04d", st.index.NextID)
	st.index.NextID++
	return id
}

// AddMeta carries the caller-supplied parts of an index entry.
type AddMeta struct {
	// Label is an optional human alias (Get resolves it like an ID).
	Label string
	// Verdict is the Consultant's exported summary for the run, or "".
	Verdict string
}

// AddArchive stores a loaded session archive, re-encoding it in chunked
// compacted form, and appends its index entry. The source archive may be
// either format — this is how v1 `-record` files are ingested.
func (st *Store) AddArchive(a *session.Archive, am AddMeta) (RunMeta, error) {
	if err := st.checkLabel(am.Label); err != nil {
		return RunMeta{}, err
	}
	id := st.nextID()
	path := st.RunPath(id)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return RunMeta{}, err
	}
	if err := WriteArchive(f, a); err != nil {
		f.Close()
		os.Remove(tmp)
		return RunMeta{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return RunMeta{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return RunMeta{}, err
	}
	return st.commitMeta(id, path, a.Header, len(a.Events), a.Truncated, am)
}

// NewRecorder opens a streaming recorder that records straight into the
// store: the live run's event stream lands in chunked compacted form
// without an intermediate buffer-everything archive. Commit the recorder
// when the run finishes; an uncommitted temp file is GC fodder.
func (st *Store) NewRecorder() (*StreamRecorder, error) {
	id := st.nextID()
	if err := st.saveIndex(); err != nil {
		// Persist the reservation so a concurrent add cannot collide
		// with the recording in flight.
		return nil, err
	}
	return NewStreamRecorder(st.RunPath(id))
}

// Commit finalizes a recorder obtained from NewRecorder and appends the
// run's index entry.
func (st *Store) Commit(rec *StreamRecorder, am AddMeta) (RunMeta, error) {
	if err := st.checkLabel(am.Label); err != nil {
		rec.Abort()
		return RunMeta{}, err
	}
	if err := rec.Close(); err != nil {
		return RunMeta{}, err
	}
	path := rec.Path()
	id := strings.TrimSuffix(filepath.Base(path), ".ppdb")
	return st.commitMeta(id, path, rec.Header(), rec.EventCount(), false, am)
}

func (st *Store) commitMeta(id, path string, h session.Header, events int, truncated bool, am AddMeta) (RunMeta, error) {
	m := RunMeta{ID: id, Label: am.Label, Verdict: am.Verdict, Events: events, Truncated: truncated}
	metaFromHeader(&m, h)
	if fi, err := os.Stat(path); err == nil {
		m.Bytes = fi.Size()
	}
	st.index.Runs = append(st.index.Runs, m)
	if err := st.saveIndex(); err != nil {
		return RunMeta{}, err
	}
	return m, nil
}

// checkLabel refuses a label that collides with an existing ID or label,
// keeping Get unambiguous.
func (st *Store) checkLabel(label string) error {
	if label == "" {
		return nil
	}
	for _, m := range st.index.Runs {
		if m.ID == label || m.Label == label {
			return fmt.Errorf("perfdb: label %q collides with stored run %s", label, m.ID)
		}
	}
	return nil
}

// Load loads a stored run's archive.
func (st *Store) Load(id string) (*session.Archive, error) {
	m, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	return LoadArchive(st.RunPath(m.ID))
}

// OpenRun loads a stored run and materializes its full DataSource view.
func (st *Store) OpenRun(id string) (*RunView, error) {
	m, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	a, err := LoadArchive(st.RunPath(m.ID))
	if err != nil {
		return nil, err
	}
	return NewRunView(a, m), nil
}

// Remove drops a run from the index and deletes its archive.
func (st *Store) Remove(id string) error {
	m, err := st.Get(id)
	if err != nil {
		return err
	}
	kept := st.index.Runs[:0]
	for _, r := range st.index.Runs {
		if r.ID != m.ID {
			kept = append(kept, r)
		}
	}
	st.index.Runs = kept
	if err := st.saveIndex(); err != nil {
		return err
	}
	return os.Remove(st.RunPath(m.ID))
}

// GC removes files under runs/ that no index entry references — crashed
// recordings' temp files, archives of removed runs — and returns the
// removed names, sorted.
func (st *Store) GC() ([]string, error) {
	referenced := map[string]bool{}
	for _, m := range st.index.Runs {
		referenced[m.ID+".ppdb"] = true
	}
	entries, err := os.ReadDir(filepath.Join(st.dir, "runs"))
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() || referenced[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(st.dir, "runs", e.Name())); err != nil {
			return removed, err
		}
		removed = append(removed, e.Name())
	}
	sort.Strings(removed)
	return removed, nil
}
