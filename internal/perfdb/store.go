package perfdb

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pperf/internal/session"
)

// A Store is a directory of compacted run archives plus a metadata index:
//
//	<dir>/index.json      the run index (this file is the store)
//	<dir>/runs/<id>.ppdb  one chunked archive per stored run
//	<dir>/sync/           partial transfers staged by push/pull peers
//	<dir>/.lock           advisory flock serializing mutations
//
// IDs are assigned sequentially (r0001, r0002, …) so a scripted sequence
// of adds is deterministic. The index is rewritten atomically (temp file
// + rename) on every mutation, and every mutation runs under the store's
// advisory file lock with a freshly reloaded index — concurrent processes
// (a live `-db` recording, the CLI, a `db serve` server) interleave
// safely. Files in runs/ not referenced by the index or by a live
// recording reservation are garbage a GC sweep removes.
type Store struct {
	dir string

	// GCTmpAge is how long a reserved recording's temp file may go
	// unmodified before GC declares the recording crashed and sweeps it
	// (0 means defaultGCTmpAge). Stale partial sync downloads age out on
	// the same clock.
	GCTmpAge time.Duration

	mu    sync.Mutex // serializes in-process access to index
	index storeIndex
}

// indexVersion versions index.json; Open refuses a newer index rather
// than silently dropping fields.
const indexVersion = 1

// defaultGCTmpAge is the default crash-detection age for reserved temp
// files and stale partial downloads.
const defaultGCTmpAge = 15 * time.Minute

type storeIndex struct {
	Version int       `json:"version"`
	NextID  int       `json:"next_id"`
	Runs    []RunMeta `json:"runs"`
	// Reserved lists IDs handed to still-open streaming recorders. A
	// reservation pins the recorder's rNNNN.ppdb.tmp against GC and keeps
	// concurrent adds off the ID; Commit (or Discard) releases it.
	Reserved []string `json:"reserved,omitempty"`
}

// RunMeta is one stored run's index entry. The descriptive fields come
// from the archive header's Meta map (stamped by the recording harness);
// Verdict is the Consultant's exported summary, supplied by the caller at
// add time (the store itself never replays).
type RunMeta struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`

	Program string `json:"program,omitempty"`
	Impl    string `json:"impl,omitempty"`
	Seed    string `json:"seed,omitempty"`
	Procs   string `json:"procs,omitempty"`
	Nodes   string `json:"nodes,omitempty"`
	Faults  string `json:"faults,omitempty"`
	Runtime string `json:"runtime,omitempty"`

	Verdict string `json:"verdict,omitempty"`

	Events    int   `json:"events"`
	Bytes     int64 `json:"bytes"`
	Truncated bool  `json:"truncated,omitempty"`

	// Hash is the SHA-256 of the archive file — the run's content address.
	// The chunked encoding is byte-deterministic, so identical recordings
	// hash identically; sync dedupe keys on it.
	Hash string `json:"hash,omitempty"`
}

// Describe renders the one-line summary `db list` prints.
func (m RunMeta) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-18s %-9s seed=%-10s", m.ID, orDash(m.Program), orDash(m.Impl), orDash(m.Seed))
	fmt.Fprintf(&b, " runtime=%-9s events=%-7d", orDash(m.Runtime), m.Events)
	if m.Faults != "" {
		fmt.Fprintf(&b, " faults=%q", m.Faults)
	}
	if m.Label != "" {
		fmt.Fprintf(&b, " label=%q", m.Label)
	}
	if m.Truncated {
		b.WriteString(" [truncated]")
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Open opens (creating if needed) the store at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir}
	if err := st.loadIndex(); err != nil {
		return nil, err
	}
	return st, nil
}

// loadIndex (re)reads index.json from disk, resetting to the empty index
// when the file does not exist yet.
func (st *Store) loadIndex() error {
	st.index = storeIndex{Version: indexVersion, NextID: 1}
	data, err := os.ReadFile(st.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &st.index); err != nil {
		return fmt.Errorf("perfdb: corrupt store index %s: %v", st.indexPath(), err)
	}
	if st.index.Version > indexVersion {
		return fmt.Errorf("perfdb: store index version %d; this build reads version %d", st.index.Version, indexVersion)
	}
	if st.index.NextID < 1 {
		st.index.NextID = 1
	}
	return nil
}

// withLock runs one index mutation under the store's advisory file lock,
// reloading the index first (another process may have mutated it since we
// last looked). fn persists its own changes via saveIndex before the lock
// is released.
func (st *Store) withLock(fn func() error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	unlock, err := acquireLock(filepath.Join(st.dir, ".lock"))
	if err != nil {
		return fmt.Errorf("perfdb: lock store %s: %w", st.dir, err)
	}
	defer unlock()
	if err := st.loadIndex(); err != nil {
		return err
	}
	return fn()
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) indexPath() string { return filepath.Join(st.dir, "index.json") }

// RunPath returns the archive path of a stored run.
func (st *Store) RunPath(id string) string {
	return filepath.Join(st.dir, "runs", id+".ppdb")
}

// syncDir returns the staging directory for partial transfers.
func (st *Store) syncDir() string { return filepath.Join(st.dir, "sync") }

// Runs returns the index entries in store order.
func (st *Store) Runs() []RunMeta {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]RunMeta(nil), st.index.Runs...)
}

// RunsFor returns the index entries of every stored run of the named
// program, in store order — the run sequence a trend query fits.
func (st *Store) RunsFor(program string) []RunMeta {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []RunMeta
	for _, m := range st.index.Runs {
		if m.Program == program {
			out = append(out, m)
		}
	}
	return out
}

// Get returns the index entry for id (an ID or a label).
func (st *Store) Get(id string) (RunMeta, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.getLocked(id)
}

func (st *Store) getLocked(id string) (RunMeta, error) {
	for _, m := range st.index.Runs {
		if m.ID == id || (m.Label != "" && m.Label == id) {
			return m, nil
		}
	}
	return RunMeta{}, fmt.Errorf("perfdb: no run %q in store %s (try `db list`)", id, st.dir)
}

// FindByHash returns the index entry whose archive content hashes to h.
func (st *Store) FindByHash(h string) (RunMeta, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.findByHashLocked(h)
}

func (st *Store) findByHashLocked(h string) (RunMeta, bool) {
	if h == "" {
		return RunMeta{}, false
	}
	for _, m := range st.index.Runs {
		if m.Hash == h {
			return m, true
		}
	}
	return RunMeta{}, false
}

// saveIndex writes index.json atomically.
func (st *Store) saveIndex() error {
	data, err := json.MarshalIndent(&st.index, "", "  ")
	if err != nil {
		return err
	}
	tmp := st.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, st.indexPath())
}

// metaFromHeader fills the descriptive fields from an archive header.
func metaFromHeader(m *RunMeta, h session.Header) {
	m.Program = h.Meta["program"]
	m.Impl = h.Meta["impl"]
	m.Seed = h.Meta["seed"]
	m.Procs = h.Meta["procs"]
	m.Nodes = h.Meta["nodes"]
	m.Faults = h.Meta["faults"]
	m.Runtime = h.Meta["runtime"]
}

// peekID formats the next sequential run ID without consuming it.
func (st *Store) peekID() string {
	return fmt.Sprintf("r%04d", st.index.NextID)
}

// fileSHA256 returns the hex SHA-256 of the file at path.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// AddMeta carries the caller-supplied parts of an index entry.
type AddMeta struct {
	// Label is an optional human alias (Get resolves it like an ID).
	Label string
	// Verdict is the Consultant's exported summary for the run, or "".
	Verdict string
}

// createRunFile creates an archive temp file; a test seam for exercising
// the add-failure path.
var createRunFile = os.Create

// AddArchive stores a loaded session archive, re-encoding it in chunked
// compacted form, and appends its index entry. The source archive may be
// either format — this is how v1 `-record` files are ingested. The run ID
// is consumed only once the archive is safely on disk: a failed add
// followed by a successful one leaves no hole in the ID sequence.
func (st *Store) AddArchive(a *session.Archive, am AddMeta) (RunMeta, error) {
	var m RunMeta
	err := st.withLock(func() error {
		if err := st.checkLabel(am.Label); err != nil {
			return err
		}
		id := st.peekID()
		path := st.RunPath(id)
		tmp := path + ".tmp"
		f, err := createRunFile(tmp)
		if err != nil {
			return err
		}
		if err := WriteArchive(f, a); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return err
		}
		st.index.NextID++
		m, err = st.commitMetaLocked(id, path, a.Header, len(a.Events), a.Truncated, am.Label, am.Verdict)
		return err
	})
	return m, err
}

// NewRecorder opens a streaming recorder that records straight into the
// store: the live run's event stream lands in chunked compacted form
// without an intermediate buffer-everything archive. The reserved ID is
// persisted in the index, so concurrent adds cannot collide with the
// recording in flight and GC knows its temp file is live. Commit the
// recorder when the run finishes (or Discard it on failure); a
// reservation whose temp file goes quiet past GCTmpAge is GC fodder.
func (st *Store) NewRecorder() (*StreamRecorder, error) {
	var rec *StreamRecorder
	err := st.withLock(func() error {
		id := st.peekID()
		st.index.NextID++
		st.index.Reserved = append(st.index.Reserved, id)
		if err := st.saveIndex(); err != nil {
			return err
		}
		var err error
		rec, err = NewStreamRecorder(st.RunPath(id))
		return err
	})
	return rec, err
}

// recorderID recovers the reserved run ID from a recorder's destination
// path.
func recorderID(rec *StreamRecorder) string {
	return strings.TrimSuffix(filepath.Base(rec.Path()), ".ppdb")
}

// Commit finalizes a recorder obtained from NewRecorder, releases its
// reservation, and appends the run's index entry. A label that collides
// with an existing run does not discard the recording: the run is
// committed unlabeled and the returned warning explains why — a CLI typo
// must never destroy a fully recorded run.
func (st *Store) Commit(rec *StreamRecorder, am AddMeta) (RunMeta, string, error) {
	id := recorderID(rec)
	if err := rec.Close(); err != nil {
		// The recorder already removed its temp file; release the
		// reservation so the dead ID does not pin GC state forever.
		st.withLock(func() error {
			if st.dropReservationLocked(id) {
				return st.saveIndex()
			}
			return nil
		})
		return RunMeta{}, "", err
	}
	var (
		m       RunMeta
		warning string
	)
	err := st.withLock(func() error {
		label := am.Label
		if err := st.checkLabel(label); err != nil {
			warning = fmt.Sprintf("%v; run committed unlabeled", err)
			label = ""
		}
		var err error
		m, err = st.commitMetaLocked(id, rec.Path(), rec.Header(), rec.EventCount(), false, label, am.Verdict)
		return err
	})
	return m, warning, err
}

// Discard aborts an uncommitted recorder and releases its reservation, so
// an abandoned run leaves nothing behind for GC to age out.
func (st *Store) Discard(rec *StreamRecorder) {
	rec.Abort()
	id := recorderID(rec)
	st.withLock(func() error {
		if st.dropReservationLocked(id) {
			return st.saveIndex()
		}
		return nil
	})
}

// dropReservationLocked removes id from the reservation list, reporting
// whether it was present.
func (st *Store) dropReservationLocked(id string) bool {
	for i, r := range st.index.Reserved {
		if r == id {
			st.index.Reserved = append(st.index.Reserved[:i], st.index.Reserved[i+1:]...)
			return true
		}
	}
	return false
}

// commitMetaLocked appends one run's index entry (stamping size and
// content hash from the on-disk archive) and persists the index. The
// caller holds the store lock.
func (st *Store) commitMetaLocked(id, path string, h session.Header, events int, truncated bool, label, verdict string) (RunMeta, error) {
	m := RunMeta{ID: id, Label: label, Verdict: verdict, Events: events, Truncated: truncated}
	metaFromHeader(&m, h)
	if fi, err := os.Stat(path); err == nil {
		m.Bytes = fi.Size()
	}
	if hash, err := fileSHA256(path); err == nil {
		m.Hash = hash
	}
	st.dropReservationLocked(id)
	st.index.Runs = append(st.index.Runs, m)
	if err := st.saveIndex(); err != nil {
		return RunMeta{}, err
	}
	return m, nil
}

// IngestFile moves a verified chunked archive already on the store's
// filesystem (a completed sync transfer) into the store under a fresh
// local ID, carrying the peer's descriptive metadata instead of replaying.
// Content identical to an existing run is a no-op returning that run. The
// peer's label is kept unless it collides locally, in which case the run
// lands unlabeled and the returned warning says so.
func (st *Store) IngestFile(src string, meta RunMeta) (RunMeta, string, error) {
	var (
		m       RunMeta
		warning string
	)
	err := st.withLock(func() error {
		if existing, ok := st.findByHashLocked(meta.Hash); ok {
			m = existing
			warning = fmt.Sprintf("identical content already stored as %s", existing.ID)
			os.Remove(src)
			return nil
		}
		label := meta.Label
		if err := st.checkLabel(label); err != nil {
			warning = fmt.Sprintf("%v; run ingested unlabeled", err)
			label = ""
		}
		id := st.peekID()
		path := st.RunPath(id)
		if err := os.Rename(src, path); err != nil {
			return err
		}
		st.index.NextID++
		m = meta
		m.ID = id
		m.Label = label
		if fi, err := os.Stat(path); err == nil {
			m.Bytes = fi.Size()
		}
		st.index.Runs = append(st.index.Runs, m)
		return st.saveIndex()
	})
	return m, warning, err
}

// EnsureHashes backfills content hashes for runs stored by builds that
// predate content addressing; sync dedupe keys on them.
func (st *Store) EnsureHashes() error {
	return st.withLock(func() error {
		changed := false
		for i := range st.index.Runs {
			if st.index.Runs[i].Hash != "" {
				continue
			}
			h, err := fileSHA256(st.RunPath(st.index.Runs[i].ID))
			if err != nil {
				return fmt.Errorf("perfdb: hash %s: %w", st.index.Runs[i].ID, err)
			}
			st.index.Runs[i].Hash = h
			changed = true
		}
		if changed {
			return st.saveIndex()
		}
		return nil
	})
}

// checkLabel refuses a label that collides with an existing ID or label,
// keeping Get unambiguous.
func (st *Store) checkLabel(label string) error {
	if label == "" {
		return nil
	}
	for _, m := range st.index.Runs {
		if m.ID == label || m.Label == label {
			return fmt.Errorf("perfdb: label %q collides with stored run %s", label, m.ID)
		}
	}
	return nil
}

// Load loads a stored run's archive.
func (st *Store) Load(id string) (*session.Archive, error) {
	m, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	return LoadArchive(st.RunPath(m.ID))
}

// OpenRun loads a stored run and materializes its full DataSource view.
func (st *Store) OpenRun(id string) (*RunView, error) {
	m, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	a, err := LoadArchive(st.RunPath(m.ID))
	if err != nil {
		return nil, err
	}
	return NewRunView(a, m), nil
}

// Remove drops a run from the index and deletes its archive.
func (st *Store) Remove(id string) error {
	var path string
	err := st.withLock(func() error {
		m, err := st.getLocked(id)
		if err != nil {
			return err
		}
		path = st.RunPath(m.ID)
		kept := st.index.Runs[:0]
		for _, r := range st.index.Runs {
			if r.ID != m.ID {
				kept = append(kept, r)
			}
		}
		st.index.Runs = kept
		return st.saveIndex()
	})
	if err != nil {
		return err
	}
	return os.Remove(path)
}

func (st *Store) gcTmpAge() time.Duration {
	if st.GCTmpAge > 0 {
		return st.GCTmpAge
	}
	return defaultGCTmpAge
}

// GC removes files under runs/ that neither an index entry nor a live
// recording reservation references — crashed recordings' temp files,
// archives of removed runs — plus stale partial transfers under sync/,
// and returns the removed names, sorted. A reservation counts as live
// while its rNNNN.ppdb.tmp keeps being modified; one whose temp file has
// gone quiet past GCTmpAge (or vanished) is a crashed recording, so the
// reservation is released and the file swept. An in-flight `-db`
// recording is therefore never collected: its reservation pins both the
// temp file and the final name.
func (st *Store) GC() ([]string, error) {
	var removed []string
	err := st.withLock(func() error {
		age := st.gcTmpAge()
		referenced := map[string]bool{}
		for _, m := range st.index.Runs {
			referenced[m.ID+".ppdb"] = true
		}
		var live []string
		for _, id := range st.index.Reserved {
			fi, err := os.Stat(st.RunPath(id) + ".tmp")
			if err == nil && time.Since(fi.ModTime()) < age {
				referenced[id+".ppdb"] = true
				referenced[id+".ppdb.tmp"] = true
				live = append(live, id)
			}
			// Otherwise the recording crashed (stale temp) or never
			// started (no temp): release the reservation and let the
			// sweep below take the file.
		}
		if len(live) != len(st.index.Reserved) {
			st.index.Reserved = live
			if err := st.saveIndex(); err != nil {
				return err
			}
		}
		entries, err := os.ReadDir(filepath.Join(st.dir, "runs"))
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || referenced[e.Name()] {
				continue
			}
			if err := os.Remove(filepath.Join(st.dir, "runs", e.Name())); err != nil {
				return err
			}
			removed = append(removed, e.Name())
		}
		// Partial sync transfers resume across invocations, so only
		// stale ones are garbage.
		if entries, err := os.ReadDir(st.syncDir()); err == nil {
			for _, e := range entries {
				fi, err := e.Info()
				if err != nil || e.IsDir() || time.Since(fi.ModTime()) < age {
					continue
				}
				if err := os.Remove(filepath.Join(st.syncDir(), e.Name())); err != nil {
					return err
				}
				removed = append(removed, "sync/"+e.Name())
			}
		}
		sort.Strings(removed)
		return nil
	})
	return removed, err
}
