package perfdb

import (
	"os"
	"syscall"
)

// acquireLock takes an exclusive advisory flock on path (creating the file
// if needed), blocking until the lock is available, and returns the release
// func. Advisory locks serialize index mutations across *processes*: the
// CLI, a live `-db` recording, and a `db serve` server can all touch the
// same store without corrupting index.json. Readers that only consume a
// point-in-time snapshot (list, show, diff) stay lock-free — the index is
// replaced atomically, so they always see a complete file.
func acquireLock(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
