package perfdb

import (
	"fmt"
	"os"
	"sync"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/session"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// StreamRecorder is the bounded-memory counterpart of session.Recorder:
// instead of buffering the whole event stream in RAM and writing it on
// Save, it streams events through the chunk writer to disk as the run
// progresses, holding at most one chunk's worth of events (plus the file
// buffer) regardless of run length. It implements session.Sink, so it
// plugs into core.Options.Recorder / pperfmark.RunOptions.Record exactly
// like the in-memory recorder.
//
// Write errors are latched and surfaced at Close — the recording hooks
// sit on the front end's ingest path and must not fail mid-run.
type StreamRecorder struct {
	mu     sync.Mutex
	w      *Writer
	f      *os.File
	tmp    string
	path   string
	header session.Header
	closed bool
	err    error
}

var _ session.Sink = (*StreamRecorder)(nil)

// NewStreamRecorder opens a streaming recorder writing to path (through a
// temp file renamed into place on Close, so a crashed run never leaves a
// file that parses as complete).
func NewStreamRecorder(path string) (*StreamRecorder, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return &StreamRecorder{
		w: w, f: f, tmp: tmp, path: path,
		header: session.Header{Version: session.Version, Meta: map[string]string{}},
	}, nil
}

// SetChunkEvents overrides the chunk granularity (events per chunk)
// before recording starts; tests use small chunks to assert the memory
// bound tightly.
func (r *StreamRecorder) SetChunkEvents(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.w.FlushEvents = n
}

// SetHistogram records the front end's histogram configuration. Called by
// core.NewSession before any event, it also triggers the provisional
// header chunk so truncated archives replay with the right bin layout.
func (r *StreamRecorder) SetHistogram(numBins int, binWidth sim.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.header.NumBins, r.header.BinWidth = numBins, binWidth
}

// SetMeta stores one descriptive key/value pair (written with the trailer).
func (r *StreamRecorder) SetMeta(k, v string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.header.Meta[k] = v
}

// SetExtra stores the harness's opaque run description (written with the
// trailer).
func (r *StreamRecorder) SetExtra(b []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.header.Extra = b
}

// EventCount returns the number of events recorded so far.
func (r *StreamRecorder) EventCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.w.EventCount()
}

// PeakBufferedEvents returns the most events ever held in memory at once —
// the figure the bounded-memory test asserts stays at the chunk size no
// matter how long the run.
func (r *StreamRecorder) PeakBufferedEvents() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.w.PeakBuffered()
}

// append streams one event, emitting the provisional header chunk first.
func (r *StreamRecorder) append(ev session.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.closed {
		return
	}
	if r.w.EventCount() == 0 {
		if err := r.w.writeHeaderChunk(provisionalHeader(r.header)); err != nil {
			r.err = err
			return
		}
	}
	if err := r.w.Append(ev); err != nil {
		r.err = err
	}
}

// RecordSamples captures a sample batch. The batch is copied: the front
// end keeps ownership of its slice, and the copy lives only until its
// chunk flushes.
func (r *StreamRecorder) RecordSamples(batch []datasource.Sample) {
	cp := make([]datasource.Sample, len(batch))
	copy(cp, batch)
	r.append(session.Event{Kind: session.EvSamples, Samples: cp})
}

// RecordUpdate captures one resource-update report.
func (r *StreamRecorder) RecordUpdate(u datasource.Update) {
	r.append(session.Event{Kind: session.EvUpdate, Update: u})
}

// RecordEnable captures a metric-enable outcome.
func (r *StreamRecorder) RecordEnable(metricName string, focus resource.Focus, errMsg string) {
	r.append(session.Event{Kind: session.EvEnable, Metric: metricName, Focus: focus, Err: errMsg})
}

// RecordStale captures a liveness verdict.
func (r *StreamRecorder) RecordStale(daemonName string, t sim.Time) {
	r.append(session.Event{Kind: session.EvStale, Daemon: daemonName, Time: t})
}

// RecordGap captures one unmeasured outage window.
func (r *StreamRecorder) RecordGap(g datasource.Gap) {
	r.append(session.Event{Kind: session.EvGap, Gap: g})
}

// RecordShard captures one trace shard.
func (r *StreamRecorder) RecordShard(sh trace.Shard) {
	r.append(session.Event{Kind: session.EvShard, Shard: sh})
}

// RecordUndelivered captures undelivered-span accounting.
func (r *StreamRecorder) RecordUndelivered(proc string, n int64) {
	r.append(session.Event{Kind: session.EvUndelivered, Proc: proc, N: n})
}

// RecordBarrier stamps a consumer read barrier into the stream.
func (r *StreamRecorder) RecordBarrier() {
	r.append(session.Event{Kind: session.EvBarrier})
}

// Header returns the finalized header (valid after Close).
func (r *StreamRecorder) Header() session.Header {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.header
}

// Path returns the destination path the archive lands at on Close.
func (r *StreamRecorder) Path() string { return r.path }

// Close flushes the final chunk, writes the trailer with the finalized
// header, syncs the temp file, and renames it into place. It reports the
// first error from anywhere in the recording.
func (r *StreamRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.err == nil && r.w.EventCount() == 0 {
		// Empty recording: still emit the header chunk so the file is a
		// valid (if eventless) archive.
		r.err = r.w.writeHeaderChunk(provisionalHeader(r.header))
	}
	if r.err == nil {
		r.header.NumEvents = r.w.EventCount()
		r.err = r.w.Close(r.header)
	}
	if cerr := r.f.Close(); r.err == nil {
		r.err = cerr
	}
	if r.err != nil {
		os.Remove(r.tmp)
		return fmt.Errorf("perfdb: stream recording failed: %w", r.err)
	}
	if err := os.Rename(r.tmp, r.path); err != nil {
		r.err = err
		return err
	}
	return nil
}

// Abort discards the recording, removing the temp file.
func (r *StreamRecorder) Abort() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.f.Close()
	os.Remove(r.tmp)
}
