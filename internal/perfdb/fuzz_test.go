package perfdb

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzChunkDecoder: ReadArchive over arbitrary bytes must return an
// archive or an error — never panic, never allocate unboundedly from a
// corrupt length field.
func FuzzChunkDecoder(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 40, 600} {
		var buf bytes.Buffer
		if err := WriteArchive(&buf, syntheticArchive(rng, n)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Seed some deliberate corruptions so coverage starts past the
		// magic check.
		mut := append([]byte(nil), buf.Bytes()...)
		mut[10] ^= 0xff
		f.Add(mut)
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte("PPDBA1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadArchive(bytes.NewReader(data))
		if err == nil && a == nil {
			t.Error("nil archive with nil error")
		}
	})
}

// FuzzUnpackSamples: the delta codec's decoder must be total.
func FuzzUnpackSamples(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 30} {
		f.Add(packSamples(randomBatch(rng, n)))
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := unpackSamples(data)
		if err == nil {
			// A clean decode must re-encode losslessly (bit-exact floats).
			again, err2 := unpackSamples(packSamples(batch))
			if err2 != nil || len(again) != len(batch) {
				t.Errorf("re-encode of a clean decode failed: %v (%d vs %d samples)", err2, len(again), len(batch))
			}
		}
	})
}
