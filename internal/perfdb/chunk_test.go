package perfdb

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/session"
	"pperf/internal/sim"
)

// syntheticArchive builds an archive exercising every event kind.
func syntheticArchive(rng *rand.Rand, nEvents int) *session.Archive {
	a := &session.Archive{Header: session.Header{
		Version:  session.Version,
		NumBins:  100,
		BinWidth: 50 * sim.Millisecond,
		Meta:     map[string]string{"program": "synthetic", "seed": "1"},
		Extra:    []byte("opaque harness payload"),
	}}
	focus := resource.Focus{CodePath: "/Code", MachinePath: "/Machine", SyncPath: "/SyncObject"}
	a.Events = append(a.Events,
		session.Event{Kind: session.EvEnable, Metric: "m1", Focus: focus},
		session.Event{Kind: session.EvEnable, Metric: "m2", Focus: focus, Err: "daemon refused"},
	)
	for len(a.Events) < nEvents {
		switch rng.Intn(6) {
		case 0, 1, 2:
			a.Events = append(a.Events, session.Event{Kind: session.EvSamples, Samples: randomBatch(rng, 1+rng.Intn(16))})
		case 3:
			a.Events = append(a.Events, session.Event{Kind: session.EvUpdate, Update: datasource.Update{
				Kind: datasource.UpAddResource, Path: "/Machine/node0/p{0}", Time: sim.Time(rng.Intn(1e9)), Daemon: "paradynd@node0",
			}})
		case 4:
			a.Events = append(a.Events, session.Event{Kind: session.EvBarrier})
		default:
			a.Events = append(a.Events, session.Event{Kind: session.EvGap, Gap: datasource.Gap{Node: "node1", From: 1, To: 2}})
		}
	}
	a.Header.NumEvents = len(a.Events)
	return a
}

// archivesEquivalent compares two archives field by field, comparing
// sample batches bit-exactly (DeepEqual rejects NaN) and treating nil and
// empty batches as equal.
func archivesEquivalent(t *testing.T, want, got *session.Archive) {
	t.Helper()
	if !reflect.DeepEqual(want.Header, got.Header) {
		t.Fatalf("header mismatch:\nwant %+v\ngot  %+v", want.Header, got.Header)
	}
	if len(want.Events) != len(got.Events) {
		t.Fatalf("event count %d round-tripped to %d", len(want.Events), len(got.Events))
	}
	for i := range want.Events {
		we, ge := want.Events[i], got.Events[i]
		if we.Kind == session.EvSamples && ge.Kind == session.EvSamples {
			if len(we.Samples) != len(ge.Samples) {
				t.Fatalf("event %d: batch size %d -> %d", i, len(we.Samples), len(ge.Samples))
			}
			for j := range we.Samples {
				if !sampleEqual(we.Samples[j], ge.Samples[j]) {
					t.Fatalf("event %d sample %d: %+v -> %+v", i, j, we.Samples[j], ge.Samples[j])
				}
			}
			continue
		}
		we.Samples, ge.Samples = nil, nil
		if !reflect.DeepEqual(we, ge) {
			t.Fatalf("event %d mismatch:\nwant %+v\ngot  %+v", i, we, ge)
		}
	}
}

func TestChunkedArchiveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 3, 50, 700, 1500} {
		a := syntheticArchive(rng, n)
		var buf bytes.Buffer
		if err := WriteArchive(&buf, a); err != nil {
			t.Fatal(err)
		}
		got, err := ReadArchive(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Truncated {
			t.Fatalf("n=%d: complete archive loaded as truncated", n)
		}
		archivesEquivalent(t, a, got)
	}
}

func TestChunkedArchiveDeterministic(t *testing.T) {
	a := syntheticArchive(rand.New(rand.NewSource(9)), 300)
	var b1, b2 bytes.Buffer
	if err := WriteArchive(&b1, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteArchive(&b2, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two encodings of the same archive differ")
	}
}

func TestTruncatedChunkedArchive(t *testing.T) {
	a := syntheticArchive(rand.New(rand.NewSource(5)), 1200) // several chunks
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cutting anywhere after the header chunk must load as a truncated
	// archive whose events are a prefix of the original — or error (cuts
	// inside the header chunk or magic), never panic or misdecode.
	seenTruncated := false
	for cut := 0; cut < len(full)-1; cut += 257 {
		got, err := ReadArchive(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		if !got.Truncated {
			t.Fatalf("cut at %d: complete-looking archive from a truncated stream", cut)
		}
		seenTruncated = true
		if len(got.Events) > len(a.Events) {
			t.Fatalf("cut at %d: %d events from %d", cut, len(got.Events), len(a.Events))
		}
		// The surviving prefix must be faithful.
		want := &session.Archive{Header: got.Header, Events: a.Events[:len(got.Events)]}
		wantHdr := provisionalHeader(a.Header)
		wantHdr.NumEvents = len(got.Events)
		if !reflect.DeepEqual(got.Header, wantHdr) {
			t.Fatalf("cut at %d: truncated header %+v, want provisional %+v", cut, got.Header, wantHdr)
		}
		want.Header = got.Header
		archivesEquivalent(t, want, got)
	}
	if !seenTruncated {
		t.Error("no cut position produced a truncated archive")
	}
}

func TestCorruptChunkRejected(t *testing.T) {
	a := syntheticArchive(rand.New(rand.NewSource(6)), 400)
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one byte inside a chunk payload (past magic + frame header):
	// the CRC must catch it.
	for _, pos := range []int{20, len(full) / 2, len(full) - 3} {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x40
		_, err := ReadArchive(bytes.NewReader(mut))
		if err == nil {
			t.Errorf("flip at %d: corrupt archive loaded cleanly", pos)
			continue
		}
		if !strings.Contains(err.Error(), "CRC") && !strings.Contains(err.Error(), "corrupt") {
			t.Errorf("flip at %d: unexpected error %v", pos, err)
		}
	}
	// Garbage after the trailer is refused.
	if _, err := ReadArchive(bytes.NewReader(append(append([]byte(nil), full...), 'x'))); err == nil {
		t.Error("data beyond the trailer loaded cleanly")
	}
	// Wrong magic is refused.
	bad := append([]byte("NOTFMT"), full[6:]...)
	if _, err := ReadArchive(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic loaded cleanly")
	}
}

func TestLoadAnyReadsBothFormats(t *testing.T) {
	a := syntheticArchive(rand.New(rand.NewSource(8)), 120)
	dir := t.TempDir()

	chunked := filepath.Join(dir, "c.ppdb")
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(chunked, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	flat := filepath.Join(dir, "f.pparch")
	rec := session.NewRecorder()
	rec.SetHistogram(a.Header.NumBins, a.Header.BinWidth)
	for k, v := range a.Header.Meta {
		rec.SetMeta(k, v)
	}
	rec.SetExtra(a.Header.Extra)
	replayEventsInto(rec, a.Events)
	if err := rec.Save(flat); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{chunked, flat} {
		got, err := LoadAny(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		archivesEquivalent(t, a, got)
	}
}

// replayEventsInto re-records an event stream through the Sink interface.
func replayEventsInto(rec session.Sink, events []session.Event) {
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case session.EvSamples:
			rec.RecordSamples(ev.Samples)
		case session.EvUpdate:
			rec.RecordUpdate(ev.Update)
		case session.EvEnable:
			rec.RecordEnable(ev.Metric, ev.Focus, ev.Err)
		case session.EvStale:
			rec.RecordStale(ev.Daemon, ev.Time)
		case session.EvShard:
			rec.RecordShard(ev.Shard)
		case session.EvUndelivered:
			rec.RecordUndelivered(ev.Proc, ev.N)
		case session.EvBarrier:
			rec.RecordBarrier()
		case session.EvGap:
			rec.RecordGap(ev.Gap)
		}
	}
}
