package perfdb

import (
	"sort"
	"strings"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/session"
)

// Pair names one enabled metric-focus pair of a stored run.
type Pair struct {
	Metric string
	Focus  resource.Focus
}

// Key returns the pair's registry key, the unit of cross-run alignment.
func (p Pair) Key() string { return datasource.SeriesKey(p.Metric, p.Focus) }

// RunView is a stored run materialized for querying: the full recorded
// event stream applied to a datasource.View (the same query plane the
// live front end exposes), plus the run's index entry. Unlike
// session.ReplaySource — which replays incrementally so a re-driven
// Consultant sees the live evaluation windows — a RunView is the run's
// end state: every recorded pair enabled, every event applied.
type RunView struct {
	*session.ReplaySource
	Meta RunMeta

	pairs    []Pair
	faultLog []string
}

// RunView serves DataSource queries like any other source.
var _ datasource.DataSource = (*RunView)(nil)

// NewRunView materializes an archive's end state. Pairs whose live
// enable failed are left out — they never collected data.
func NewRunView(a *session.Archive, m RunMeta) *RunView {
	rs := session.NewReplaySource(a)
	rv := &RunView{ReplaySource: rs, Meta: m}
	if log := a.Header.Meta["fault-log"]; log != "" {
		rv.faultLog = strings.Split(log, "\n")
	}
	seen := map[string]bool{}
	// Register every successfully-enabled pair before applying events:
	// the view drops samples for unregistered pairs.
	for i := range a.Events {
		ev := &a.Events[i]
		if ev.Kind != session.EvEnable || ev.Err != "" {
			continue
		}
		p := Pair{Metric: ev.Metric, Focus: ev.Focus}
		if seen[p.Key()] {
			continue
		}
		seen[p.Key()] = true
		if _, err := rs.EnableMetric(ev.Metric, ev.Focus); err == nil {
			rv.pairs = append(rv.pairs, p)
		}
	}
	sort.Slice(rv.pairs, func(i, j int) bool {
		a, b := rv.pairs[i], rv.pairs[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		return a.Focus.Key() < b.Focus.Key()
	})
	rs.Drain()
	return rv
}

// Pairs returns the run's enabled metric-focus pairs, sorted by metric
// then focus.
func (rv *RunView) Pairs() []Pair {
	return append([]Pair(nil), rv.pairs...)
}

// SeriesFor returns the collected series of one pair (nil if the run
// never enabled it).
func (rv *RunView) SeriesFor(p Pair) *datasource.Series {
	return rv.Series(p.Metric, p.Focus)
}

// FaultLog returns the run's fired-fault audit trail as recorded in the
// archive header (empty for a healthy run, or for archives recorded
// before the log was persisted).
func (rv *RunView) FaultLog() []string {
	return append([]string(nil), rv.faultLog...)
}
