package perfdb

// Machine-readable renderings of the analytics plane for CI pipelines:
// `pperf db show|diff|trend -format=json` emit these. Field names are a
// stable interface, documented in PERFDB.md; additions are allowed,
// renames and removals are not. Every float that can be undefined (a
// relative change against a zero base) is a pointer omitted when absent,
// keeping the documents valid JSON (no NaNs).

import (
	"encoding/json"
	"math"

	"pperf/internal/stats"
)

// jsonWindow is the "window" object of a windowed diff document.
type jsonWindow struct {
	FromS      float64  `json:"from_s"`
	ToS        *float64 `json:"to_s,omitempty"` // absent: open-ended
	SinceFault bool     `json:"since_fault,omitempty"`
}

// jsonPair names one metric-focus pair.
type jsonPair struct {
	Metric string `json:"metric"`
	Focus  string `json:"focus"`
}

// jsonDelta is one compared pair of a diff document.
type jsonDelta struct {
	jsonPair
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`

	BaseRate  float64    `json:"base_rate"`
	NewRate   float64    `json:"new_rate"`
	MeanDiff  float64    `json:"mean_diff"`
	CI        [2]float64 `json:"ci"`
	RelChange *float64   `json:"rel_change,omitempty"`
	Bins      int        `json:"bins"`
	BinWidthS float64    `json:"bin_width_s"`
}

// jsonDiff is the `db diff -format=json` document.
type jsonDiff struct {
	Base RunMeta `json:"base"`
	New  RunMeta `json:"new"`

	Window    *jsonWindow `json:"window,omitempty"`
	Alpha     float64     `json:"alpha"`
	MinEffect float64     `json:"min_effect,omitempty"`

	Deltas   []jsonDelta `json:"deltas"`
	OnlyBase []jsonPair  `json:"only_base,omitempty"`
	OnlyNew  []jsonPair  `json:"only_new,omitempty"`

	Pairs       int `json:"pairs"`
	Significant int `json:"significant"`
	Regressions int `json:"regressions"`
}

func finite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func ciArray(ci stats.Interval) [2]float64 { return [2]float64{ci.Lo, ci.Hi} }

func pairJSON(p Pair) jsonPair {
	return jsonPair{Metric: p.Metric, Focus: p.Focus.String()}
}

// RenderJSON produces the report's stable machine-readable form,
// indented, with a trailing newline, ready for stdout.
func (r *DiffReport) RenderJSON() ([]byte, error) {
	doc := jsonDiff{Base: r.Base, New: r.New, Alpha: r.Alpha, MinEffect: r.MinEffect}
	if r.Window.Enabled() {
		w := &jsonWindow{FromS: r.Window.From.Seconds(), SinceFault: r.SinceFault}
		if r.Window.To > 0 {
			to := r.Window.To.Seconds()
			w.ToS = &to
		}
		doc.Window = w
	}
	doc.Deltas = []jsonDelta{} // an empty report still carries the key
	for _, d := range r.Deltas {
		jd := jsonDelta{
			jsonPair: pairJSON(d.Pair),
			Verdict:  string(d.Verdict),
			Reason:   d.Skipped,
		}
		if d.Skipped == "" {
			jd.BaseRate = d.BaseRate
			jd.NewRate = d.NewRate
			jd.MeanDiff = d.MeanDiff
			jd.CI = ciArray(d.CI)
			jd.RelChange = finite(d.RelChange)
			jd.Bins = d.Bins
			jd.BinWidthS = d.BinWidth.Seconds()
		}
		doc.Deltas = append(doc.Deltas, jd)
		if d.Verdict == VerdictRegression || d.Verdict == VerdictImprovement {
			doc.Significant++
		}
		if d.Verdict == VerdictRegression {
			doc.Regressions++
		}
	}
	doc.Pairs = len(r.Deltas)
	for _, p := range r.OnlyBase {
		doc.OnlyBase = append(doc.OnlyBase, pairJSON(p))
	}
	for _, p := range r.OnlyNew {
		doc.OnlyNew = append(doc.OnlyNew, pairJSON(p))
	}
	return marshalDoc(doc)
}

// jsonSeriesTrend is one fitted series of a trend document.
type jsonSeriesTrend struct {
	jsonPair
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`

	Rates    []float64  `json:"rates,omitempty"`
	Slope    float64    `json:"slope"`
	CI       [2]float64 `json:"ci"`
	RelSlope *float64   `json:"rel_slope,omitempty"`
	FirstBad string     `json:"first_bad,omitempty"`
}

// jsonTrend is the `db trend -format=json` document.
type jsonTrend struct {
	Program   string    `json:"program"`
	Runs      []RunMeta `json:"runs"`
	Alpha     float64   `json:"alpha"`
	MinEffect float64   `json:"min_effect"`

	Series []jsonSeriesTrend `json:"series"`

	Fit      int `json:"fit"`
	Drifting int `json:"drifting"`
}

// RenderJSON produces the trend report's stable machine-readable form.
func (r *TrendReport) RenderJSON() ([]byte, error) {
	doc := jsonTrend{
		Program: r.Program, Runs: r.Runs,
		Alpha: r.Alpha, MinEffect: r.MinEffect,
		Series: []jsonSeriesTrend{},
	}
	for _, s := range r.Series {
		js := jsonSeriesTrend{
			jsonPair: pairJSON(s.Pair),
			Verdict:  string(s.Verdict),
			Reason:   s.Skipped,
			FirstBad: s.FirstBad,
		}
		if s.Skipped == "" {
			js.Rates = s.Rates
			js.Slope = s.Slope
			js.CI = ciArray(s.CI)
			js.RelSlope = finite(s.RelSlope)
		}
		doc.Series = append(doc.Series, js)
		if s.Verdict.Drifting() {
			doc.Drifting++
		}
	}
	doc.Fit = len(r.Series)
	return marshalDoc(doc)
}

// jsonSeriesInfo is one collected series of a show document.
type jsonSeriesInfo struct {
	jsonPair
	Total     float64 `json:"total"`
	Bins      int     `json:"bins"`
	BinWidthS float64 `json:"bin_width_s"`
}

// jsonShow is the `db show -format=json` document.
type jsonShow struct {
	Run       RunMeta          `json:"run"`
	Coverage  float64          `json:"coverage"`
	Processes int              `json:"processes"`
	Series    []jsonSeriesInfo `json:"series"`
}

// SummaryJSON produces the run's stable machine-readable summary — the
// JSON form of `db show`.
func (rv *RunView) SummaryJSON() ([]byte, error) {
	doc := jsonShow{
		Run:       rv.Meta,
		Coverage:  rv.Coverage(),
		Processes: rv.ProcessCount(),
		Series:    []jsonSeriesInfo{},
	}
	for _, p := range rv.Pairs() {
		h := rv.SeriesFor(p).Histogram()
		doc.Series = append(doc.Series, jsonSeriesInfo{
			jsonPair:  pairJSON(p),
			Total:     h.Total(),
			Bins:      h.NumFilled(),
			BinWidthS: h.BinWidth().Seconds(),
		})
	}
	return marshalDoc(doc)
}

// marshalDoc indents and newline-terminates a document for stdout.
func marshalDoc(doc any) ([]byte, error) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
