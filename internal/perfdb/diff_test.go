package perfdb

import (
	"math"
	"strings"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/session"
	"pperf/internal/sim"
)

var testFocus = resource.Focus{CodePath: "/Code", MachinePath: "/Machine", SyncPath: "/SyncObject"}

// rateArchive builds a run archive whose metric accumulates the given
// per-bin deltas at 50ms bins (numBins controls folding: deltas past the
// array force the histogram to coarser widths).
func rateArchive(metricName string, numBins int, deltas []float64) *session.Archive {
	a := &session.Archive{Header: session.Header{
		Version:  session.Version,
		NumBins:  numBins,
		BinWidth: 50 * sim.Millisecond,
		Meta:     map[string]string{"program": "synthetic"},
	}}
	a.Events = append(a.Events, session.Event{Kind: session.EvEnable, Metric: metricName, Focus: testFocus})
	for i, d := range deltas {
		a.Events = append(a.Events, session.Event{Kind: session.EvSamples, Samples: []datasource.Sample{{
			Metric: metricName, Focus: testFocus, Proc: "p{0}",
			Time: sim.Time(i) * sim.Time(50*sim.Millisecond), Delta: d, Value: d,
		}}})
	}
	a.Header.NumEvents = len(a.Events)
	return a
}

func view(a *session.Archive, id string) *RunView {
	return NewRunView(a, RunMeta{ID: id})
}

func flat(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestDiffDetectsRegressionAndImprovement(t *testing.T) {
	base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
	worse := view(rateArchive("m", 100, flat(40, 2.0)), "worse")
	better := view(rateArchive("m", 100, flat(40, 0.5)), "better")

	rep := Diff(base, worse)
	if len(rep.Deltas) != 1 {
		t.Fatalf("deltas: %+v", rep.Deltas)
	}
	d := rep.Deltas[0]
	if d.Verdict != VerdictRegression {
		t.Errorf("doubled rate: verdict %s (%+v)", d.Verdict, d)
	}
	if math.Abs(d.RelChange-1.0) > 1e-9 {
		t.Errorf("doubled rate: RelChange %v, want 1.0", d.RelChange)
	}
	if len(rep.Regressions()) != 1 {
		t.Errorf("Regressions(): %+v", rep.Regressions())
	}

	if d := Diff(base, better).Deltas[0]; d.Verdict != VerdictImprovement {
		t.Errorf("halved rate: verdict %s", d.Verdict)
	}
	if d := Diff(base, view(rateArchive("m", 100, flat(40, 1.0)), "same")).Deltas[0]; d.Verdict != VerdictUnchanged {
		t.Errorf("identical rate: verdict %s", d.Verdict)
	}
}

func TestDiffRebinsFoldedHistograms(t *testing.T) {
	// The new run's 10-bin histogram folds twice over 40 samples
	// (50ms -> 200ms); the base's 100-bin histogram never folds. The
	// comparison must rebin base to 200ms and report no change for equal
	// totals.
	base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
	folded := view(rateArchive("m", 10, flat(40, 1.0)), "folded")
	if got := folded.SeriesFor(Pair{Metric: "m", Focus: testFocus}).Histogram().BinWidth(); got != 200*sim.Millisecond {
		t.Fatalf("folded histogram width %v, want 200ms", got)
	}
	rep := Diff(base, folded)
	d := rep.Deltas[0]
	if d.Verdict != VerdictUnchanged {
		t.Errorf("equal data at different granularities: %s (%+v)", d.Verdict, d)
	}
	if d.BinWidth != 200*sim.Millisecond {
		t.Errorf("compared at %v, want the coarser 200ms", d.BinWidth)
	}
}

func TestDiffDisjointPairs(t *testing.T) {
	base := view(rateArchive("only_base", 100, flat(40, 1.0)), "a")
	neu := view(rateArchive("only_new", 100, flat(40, 1.0)), "b")
	rep := Diff(base, neu)
	if len(rep.Deltas) != 0 || len(rep.OnlyBase) != 1 || len(rep.OnlyNew) != 1 {
		t.Errorf("disjoint runs: deltas=%d onlyBase=%v onlyNew=%v", len(rep.Deltas), rep.OnlyBase, rep.OnlyNew)
	}
	if !strings.Contains(rep.Render(), "only in base: only_base") {
		t.Error("render omits one-sided pairs")
	}
}

func TestDiffRenderDeterministic(t *testing.T) {
	mk := func() string {
		base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
		worse := view(rateArchive("m", 100, flat(40, 3.0)), "worse")
		return Diff(base, worse).Render()
	}
	if mk() != mk() {
		t.Error("diff render differs across identical rebuilds")
	}
}

func TestDiffTooFewBinsSkips(t *testing.T) {
	base := view(rateArchive("m", 100, flat(2, 1.0)), "base")
	neu := view(rateArchive("m", 100, flat(2, 2.0)), "new")
	d := Diff(base, neu).Deltas[0]
	if d.Verdict != VerdictSkipped || d.Skipped == "" {
		t.Errorf("2-bin series: %s %q", d.Verdict, d.Skipped)
	}
}
