package perfdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"pperf/internal/session"
	"pperf/internal/sim"
	"pperf/internal/wire"
)

// Chunked archive format, version 1:
//
//	6 bytes  magic "PPDBA1"
//	chunk 'H'  provisional header (gob session.Header: version + histogram
//	           config — everything known before the first event)
//	chunk 'E'* event chunks (delta-packed sample batches + gob rest)
//	chunk 'T'  trailer (gob: final session.Header with Meta/Extra,
//	           NumEvents, NumChunks)
//
// Every chunk is framed [1 kind][uint32 payload len][uint32 CRC32-IEEE of
// payload][payload], so corruption is detected per chunk instead of
// garbage-decoded, and a file cut mid-write loads as a Truncated archive
// holding the complete-chunk prefix (the trailer doubles as the
// completeness mark, like the v1 format's up-front event count). The
// final header lives in the trailer because a *streaming* writer does not
// know Meta/Extra — the run description pperfmark stamps at the end of
// the run — until the recording finishes.
var chunkMagic = []byte("PPDBA1")

// ChunkVersion is the chunked-archive format version. The session.Header
// inside carries session.Version for the event schema; this constant
// versions the framing itself.
const ChunkVersion = 1

const (
	chunkHeader  = 'H'
	chunkEvents  = 'E'
	chunkTrailer = 'T'
)

// maxChunkPayload bounds a frame's declared payload so corrupt length
// fields cannot drive giant allocations.
const maxChunkPayload = 1 << 30

// headerWire is the on-disk form of session.Header. The Meta map rides
// as parallel sorted key/value slices because gob serializes maps in
// random iteration order — with it, encoding the same archive twice
// yields byte-identical files (content comparison and dedup work).
type headerWire struct {
	Version   int
	NumEvents int
	NumBins   int
	BinWidth  sim.Duration
	MetaKeys  []string
	MetaVals  []string
	Extra     []byte
}

func toWire(h session.Header) headerWire {
	w := headerWire{
		Version:   h.Version,
		NumEvents: h.NumEvents,
		NumBins:   h.NumBins,
		BinWidth:  h.BinWidth,
		Extra:     h.Extra,
	}
	for k := range h.Meta {
		w.MetaKeys = append(w.MetaKeys, k)
	}
	sort.Strings(w.MetaKeys)
	for _, k := range w.MetaKeys {
		w.MetaVals = append(w.MetaVals, h.Meta[k])
	}
	return w
}

func fromWire(w headerWire) (session.Header, error) {
	if len(w.MetaKeys) != len(w.MetaVals) {
		return session.Header{}, fmt.Errorf("perfdb: corrupt header: %d meta keys, %d values", len(w.MetaKeys), len(w.MetaVals))
	}
	h := session.Header{
		Version:   w.Version,
		NumEvents: w.NumEvents,
		NumBins:   w.NumBins,
		BinWidth:  w.BinWidth,
		Extra:     w.Extra,
	}
	if len(w.MetaKeys) > 0 {
		h.Meta = make(map[string]string, len(w.MetaKeys))
		for i, k := range w.MetaKeys {
			h.Meta[k] = w.MetaVals[i]
		}
	}
	return h, nil
}

// trailer is the 'T' chunk payload.
type trailer struct {
	Header    headerWire
	NumEvents int
	NumChunks int // event chunks written
}

// eventsChunk is the intermediate form of an 'E' chunk: sample batches
// ride as delta-packed blobs, everything else as gob of session.Event
// (one encoder per chunk, so chunks stay independently decodable).
//
// Payload layout:
//
//	uvarint nEvents
//	nEvents bytes: 1 = next event is a packed sample batch, 0 = from gob
//	uvarint nPacked; per blob: uvarint len + bytes
//	remaining: gob of []session.Event (the non-sample events, in order)
func encodeEventsChunk(events []session.Event) ([]byte, error) {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	put(uint64(len(events)))
	var rest []session.Event
	var packed [][]byte
	for i := range events {
		if events[i].Kind == session.EvSamples {
			out = append(out, 1)
			packed = append(packed, packSamples(events[i].Samples))
		} else {
			out = append(out, 0)
			rest = append(rest, events[i])
		}
	}
	put(uint64(len(packed)))
	for _, b := range packed {
		put(uint64(len(b)))
		out = append(out, b...)
	}
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(rest); err != nil {
		return nil, fmt.Errorf("perfdb: encode events chunk: %w", err)
	}
	return append(out, gobBuf.Bytes()...), nil
}

// decodeEventsChunk reverses encodeEventsChunk. Corrupt input yields an
// error, never a panic.
func decodeEventsChunk(data []byte) ([]session.Event, error) {
	pos := 0
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("perfdb: corrupt events chunk: bad uvarint at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	nEvents, err := getU()
	if err != nil {
		return nil, err
	}
	if nEvents > uint64(len(data)) {
		return nil, fmt.Errorf("perfdb: corrupt events chunk: %d events in %d bytes", nEvents, len(data))
	}
	if uint64(len(data)-pos) < nEvents {
		return nil, errors.New("perfdb: corrupt events chunk: flag bytes overrun input")
	}
	flags := data[pos : pos+int(nEvents)]
	pos += int(nEvents)
	wantPacked := 0
	for _, f := range flags {
		if f == 1 {
			wantPacked++
		} else if f != 0 {
			return nil, fmt.Errorf("perfdb: corrupt events chunk: bad event flag %d", f)
		}
	}
	nPacked, err := getU()
	if err != nil {
		return nil, err
	}
	if nPacked != uint64(wantPacked) {
		return nil, fmt.Errorf("perfdb: corrupt events chunk: %d packed batches, flags promise %d", nPacked, wantPacked)
	}
	samples := make([][]byte, nPacked)
	for i := range samples {
		l, err := getU()
		if err != nil {
			return nil, err
		}
		if l > uint64(len(data)-pos) {
			return nil, fmt.Errorf("perfdb: corrupt events chunk: packed batch %d overruns input", i)
		}
		samples[i] = data[pos : pos+int(l)]
		pos += int(l)
	}
	var rest []session.Event
	if err := gob.NewDecoder(bytes.NewReader(data[pos:])).Decode(&rest); err != nil {
		return nil, fmt.Errorf("perfdb: corrupt events chunk: %v", err)
	}
	nRest := 0
	for _, f := range flags {
		if f == 0 {
			nRest++
		}
	}
	if len(rest) != nRest {
		return nil, fmt.Errorf("perfdb: corrupt events chunk: %d gob events, flags promise %d", len(rest), nRest)
	}
	out := make([]session.Event, 0, nEvents)
	pi, ri := 0, 0
	for _, f := range flags {
		if f == 1 {
			batch, err := unpackSamples(samples[pi])
			pi++
			if err != nil {
				return nil, err
			}
			out = append(out, session.Event{Kind: session.EvSamples, Samples: batch})
		} else {
			ev := rest[ri]
			ri++
			if ev.Kind == session.EvSamples {
				return nil, errors.New("perfdb: corrupt events chunk: sample event outside the packed section")
			}
			out = append(out, ev)
		}
	}
	return out, nil
}

// Writer streams session events into a chunked archive. It buffers at
// most FlushEvents events before encoding them as one CRC'd chunk and
// handing the bytes to the underlying writer — the recorder's memory is
// bounded by the chunk size, not the run length.
type Writer struct {
	w   *bufio.Writer
	buf []session.Event

	// FlushEvents is the chunk granularity (events per chunk). Smaller
	// chunks bound memory tighter and localize corruption; larger ones
	// amortize gob type descriptors better. Set before the first Append.
	FlushEvents int

	events int
	chunks int
	peak   int
	err    error
}

// DefaultFlushEvents is the default chunk granularity.
const DefaultFlushEvents = 512

// NewWriter writes the archive magic and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(chunkMagic); err != nil {
		return nil, err
	}
	return &Writer{w: bw, FlushEvents: DefaultFlushEvents}, nil
}

// writeChunk frames and emits one chunk.
func (w *Writer) writeChunk(kind byte, payload []byte) error {
	if len(payload) > maxChunkPayload {
		return fmt.Errorf("perfdb: chunk payload %d bytes exceeds format limit", len(payload))
	}
	var hdr [9]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:9], wire.Checksum(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// writeHeaderChunk emits the provisional 'H' chunk once, before the first
// event chunk. Histogram configuration is known at session construction
// (core.NewSession calls SetHistogram before anything records), so a
// truncated archive still replays with the right bin layout.
func (w *Writer) writeHeaderChunk(h session.Header) error {
	var buf bytes.Buffer
	hw := toWire(h)
	if err := gob.NewEncoder(&buf).Encode(&hw); err != nil {
		return err
	}
	return w.writeChunk(chunkHeader, buf.Bytes())
}

// Append adds one event to the pending chunk, flushing it when full. The
// event is stored as given: callers that reuse slices must copy first
// (StreamRecorder does).
func (w *Writer) Append(ev session.Event) error {
	if w.err != nil {
		return w.err
	}
	w.buf = append(w.buf, ev)
	w.events++
	if len(w.buf) > w.peak {
		w.peak = len(w.buf)
	}
	if len(w.buf) >= w.flushEvents() {
		w.err = w.flush()
	}
	return w.err
}

func (w *Writer) flushEvents() int {
	if w.FlushEvents <= 0 {
		return DefaultFlushEvents
	}
	return w.FlushEvents
}

func (w *Writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	payload, err := encodeEventsChunk(w.buf)
	if err != nil {
		return err
	}
	// Release the buffered events before writing: the writer never holds
	// events and encoded bytes at once longer than necessary.
	w.buf = w.buf[:0]
	w.chunks++
	return w.writeChunk(chunkEvents, payload)
}

// EventCount returns the number of events appended so far.
func (w *Writer) EventCount() int { return w.events }

// PeakBuffered returns the maximum number of events ever held in memory —
// the bounded-memory guarantee a test can assert (≤ FlushEvents).
func (w *Writer) PeakBuffered() int { return w.peak }

// Close flushes the final partial chunk and writes the trailer carrying
// the finalized header. The Writer must not be used afterwards.
func (w *Writer) Close(h session.Header) error {
	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		w.err = err
		return err
	}
	h.Version = session.Version
	h.NumEvents = w.events
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&trailer{Header: toWire(h), NumEvents: w.events, NumChunks: w.chunks}); err != nil {
		w.err = err
		return err
	}
	if err := w.writeChunk(chunkTrailer, buf.Bytes()); err != nil {
		w.err = err
		return err
	}
	w.err = w.w.Flush()
	return w.err
}

// WriteArchive re-encodes a loaded session archive in chunked, compacted
// form — the store's ingest path for v1 archives.
func WriteArchive(w io.Writer, a *session.Archive) error {
	cw, err := NewWriter(w)
	if err != nil {
		return err
	}
	if err := cw.writeHeaderChunk(provisionalHeader(a.Header)); err != nil {
		return err
	}
	for i := range a.Events {
		if err := cw.Append(a.Events[i]); err != nil {
			return err
		}
	}
	return cw.Close(a.Header)
}

// provisionalHeader strips a header to what a streaming writer knows up
// front: format version and histogram configuration.
func provisionalHeader(h session.Header) session.Header {
	return session.Header{Version: session.Version, NumBins: h.NumBins, BinWidth: h.BinWidth}
}

// ReadArchive parses a chunked archive. CRC mismatches, bad framing, and
// decode failures are errors; a stream that simply ends before its
// trailer (recorder killed mid-run) loads as a Truncated archive holding
// the complete-chunk prefix under the provisional header.
func ReadArchive(r io.Reader) (*session.Archive, error) {
	got := make([]byte, len(chunkMagic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("perfdb: not a chunked pperf archive (short file: %v)", err)
	}
	if !bytes.Equal(got, chunkMagic) {
		return nil, errors.New("perfdb: not a chunked pperf archive (bad magic)")
	}
	var (
		a         session.Archive
		gotHeader bool
		chunks    int
		err2      error
	)
	for i := 0; ; i++ {
		var hdr [9]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Clean end or mid-frame cut without a trailer: the
				// writer was killed. The complete chunks are a faithful
				// prefix of the session.
				if !gotHeader {
					return nil, errors.New("perfdb: archive truncated before its header chunk")
				}
				a.Truncated = true
				a.Header.NumEvents = len(a.Events)
				return &a, nil
			}
			return nil, fmt.Errorf("perfdb: corrupt archive at chunk %d: %v", i, err)
		}
		kind := hdr[0]
		plen := binary.BigEndian.Uint32(hdr[1:5])
		wantCRC := binary.BigEndian.Uint32(hdr[5:9])
		if plen > maxChunkPayload {
			return nil, fmt.Errorf("perfdb: corrupt archive: chunk %d declares %d-byte payload", i, plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if !gotHeader {
					return nil, errors.New("perfdb: archive truncated before its header chunk")
				}
				a.Truncated = true
				a.Header.NumEvents = len(a.Events)
				return &a, nil
			}
			return nil, fmt.Errorf("perfdb: corrupt archive: chunk %d payload: %v", i, err)
		}
		if crc := wire.Checksum(payload); crc != wantCRC {
			return nil, fmt.Errorf("perfdb: corrupt archive: chunk %d CRC mismatch (stored %08x, computed %08x)", i, wantCRC, crc)
		}
		switch kind {
		case chunkHeader:
			if gotHeader {
				return nil, errors.New("perfdb: corrupt archive: duplicate header chunk")
			}
			var hw headerWire
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hw); err != nil {
				return nil, fmt.Errorf("perfdb: corrupt archive header: %v", err)
			}
			if a.Header, err2 = fromWire(hw); err2 != nil {
				return nil, err2
			}
			if a.Header.Version != session.Version {
				return nil, fmt.Errorf("perfdb: archive event-schema version %d; this build reads version %d", a.Header.Version, session.Version)
			}
			gotHeader = true
		case chunkEvents:
			if !gotHeader {
				return nil, errors.New("perfdb: corrupt archive: events before the header chunk")
			}
			evs, err := decodeEventsChunk(payload)
			if err != nil {
				return nil, err
			}
			a.Events = append(a.Events, evs...)
			chunks++
		case chunkTrailer:
			if !gotHeader {
				return nil, errors.New("perfdb: corrupt archive: trailer before the header chunk")
			}
			var t trailer
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&t); err != nil {
				return nil, fmt.Errorf("perfdb: corrupt archive trailer: %v", err)
			}
			if t.NumEvents != len(a.Events) {
				return nil, fmt.Errorf("perfdb: corrupt archive: trailer declares %d events, chunks hold %d", t.NumEvents, len(a.Events))
			}
			if t.NumChunks != chunks {
				return nil, fmt.Errorf("perfdb: corrupt archive: trailer declares %d event chunks, read %d", t.NumChunks, chunks)
			}
			if t.Header.Version != session.Version {
				return nil, fmt.Errorf("perfdb: archive event-schema version %d; this build reads version %d", t.Header.Version, session.Version)
			}
			if a.Header, err2 = fromWire(t.Header); err2 != nil {
				return nil, err2
			}
			// Anything after the trailer means the file was appended to
			// or two archives were concatenated; refuse rather than guess.
			var one [1]byte
			if _, err := io.ReadFull(r, one[:]); err != io.EOF {
				return nil, errors.New("perfdb: corrupt archive: data beyond the trailer chunk")
			}
			return &a, nil
		default:
			return nil, fmt.Errorf("perfdb: corrupt archive: unknown chunk kind %q", kind)
		}
	}
}

// LoadArchive reads a chunked archive from path.
func LoadArchive(path string) (*session.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadArchive(f)
}

// LoadAny loads a session archive in either format, sniffing the magic:
// "PPARCH" (the v1 buffer-everything format) dispatches to session.Load,
// "PPDBA1" (chunked) to LoadArchive.
func LoadAny(path string) (*session.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(chunkMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, fmt.Errorf("perfdb: not a pperf archive (short file: %v)", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if bytes.Equal(magic, chunkMagic) {
		return ReadArchive(f)
	}
	return session.Read(f)
}
