package perfdb

// Sync-plane tests: push/pull round trips must reproduce archives byte
// for byte — on a clean network, under seeded fault plans, and across
// interrupted transfers resumed at chunk granularity.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"pperf/internal/faults"
	"pperf/internal/wire"
)

// testSyncConfig returns a client config tuned for fast tests: small
// chunks (so modest archives span many frames) and tight backoff.
func testSyncConfig() SyncConfig {
	cfg := DefaultSyncConfig()
	cfg.ChunkBytes = 512
	cfg.BaseBackoff = time.Millisecond
	cfg.MaxBackoff = 5 * time.Millisecond
	return cfg
}

// storeWithRun creates a store holding one synthetic run.
func storeWithRun(t *testing.T, seed int64, events int, label string) (*Store, RunMeta) {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.AddArchive(syntheticArchive(rand.New(rand.NewSource(seed)), events), AddMeta{Label: label})
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// serveStore exposes a fresh empty store on a free loopback port.
func serveStore(t *testing.T) (*Store, *SyncServer) {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return st, srv
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSyncPushPullRoundTrip is the acceptance bar: push a run to a peer,
// pull it back into a third store, and both copies must be byte-identical
// to the original; identical re-transfers are no-ops.
func TestSyncPushPullRoundTrip(t *testing.T) {
	src, m := storeWithRun(t, 1, 400, "base")
	peer, srv := serveStore(t)

	res, err := Push(src, m.ID, srv.Addr(), testSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := mustReadFile(t, src.RunPath(m.ID))
	if res.Deduped || res.RemoteID == "" {
		t.Fatalf("push result: %+v", res)
	}
	if res.Bytes != int64(len(want)) {
		t.Errorf("pushed %d bytes; archive is %d", res.Bytes, len(want))
	}
	if got := mustReadFile(t, peer.RunPath(res.RemoteID)); !bytes.Equal(want, got) {
		t.Fatal("pushed archive differs from the original")
	}
	// The peer carried over the descriptive metadata and the label.
	pm, err := peer.Get("base")
	if err != nil || pm.Program != "synthetic" || pm.Hash != m.Hash {
		t.Errorf("peer meta: %+v, %v", pm, err)
	}

	// Re-pushing identical content is a dedupe no-op.
	res2, err := Push(src, m.ID, srv.Addr(), testSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Deduped || res2.RemoteID != res.RemoteID || res2.Bytes != 0 {
		t.Errorf("re-push: %+v; want dedupe no-op", res2)
	}

	// A third store pulls the run back down, byte-identically.
	sink, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pulls, _, err := Pull(sink, srv.Addr(), "", testSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pulls) != 1 || pulls[0].Skipped || pulls[0].LocalID == "" {
		t.Fatalf("pull results: %+v", pulls)
	}
	if got := mustReadFile(t, sink.RunPath(pulls[0].LocalID)); !bytes.Equal(want, got) {
		t.Fatal("pulled archive differs from the original")
	}
	if sm, err := sink.Get("base"); err != nil || sm.ID != pulls[0].LocalID {
		t.Errorf("pulled label not resolvable: %+v, %v", sm, err)
	}

	// Pulling again skips: the content is already held.
	pulls2, _, err := Pull(sink, srv.Addr(), "base", testSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pulls2) != 1 || !pulls2[0].Skipped {
		t.Errorf("re-pull: %+v; want skip", pulls2)
	}

	// Unknown remote runs are refused by name.
	if _, _, err := Pull(sink, srv.Addr(), "no-such-run", testSyncConfig()); err == nil {
		t.Error("pull of an unknown remote run succeeded")
	}
}

// TestSyncUnderFaultPlan shapes sync traffic with the same plan language
// the report transport uses: dropped frames and a degraded link must cost
// retries, never bytes.
func TestSyncUnderFaultPlan(t *testing.T) {
	plan, err := faults.Parse("seed=7; t=0s drop-transport client n=3 chan=sync; t=0s degrade-link * lat=1 bw=0.9")
	if err != nil {
		t.Fatal(err)
	}
	src, m := storeWithRun(t, 2, 500, "faulted")
	peer, srv := serveStore(t)

	cfg := testSyncConfig()
	cfg.Faults = plan
	cfg.Seed = plan.Seed
	cfg.MaxAttempts = 8
	res, err := Push(src, m.ID, srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retries < 3 || res.Stats.InjectedDrops < 3 {
		t.Errorf("fault plan not exercised: %+v", res.Stats)
	}
	want := mustReadFile(t, src.RunPath(m.ID))
	if got := mustReadFile(t, peer.RunPath(res.RemoteID)); !bytes.Equal(want, got) {
		t.Fatal("archive pushed under faults differs from the original")
	}

	// Pull under the same plan: also byte-identical.
	sink, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pulls, stats, err := Pull(sink, srv.Addr(), "faulted", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries < 3 {
		t.Errorf("pull under faults: %+v", *stats)
	}
	if got := mustReadFile(t, sink.RunPath(pulls[0].LocalID)); !bytes.Equal(want, got) {
		t.Fatal("archive pulled under faults differs from the original")
	}
}

// TestSyncPushResume cuts a push mid-transfer and checks the retry picks
// up from the server's partial instead of starting over.
func TestSyncPushResume(t *testing.T) {
	src, m := storeWithRun(t, 3, 2000, "")
	peer, srv := serveStore(t)
	size := int64(len(mustReadFile(t, src.RunPath(m.ID))))

	cfg := testSyncConfig()
	cfg.ChunkBytes = 256
	cfg.MaxAttempts = 2
	chunks := 0
	cfg.FaultHook = func(op string, seq uint64, attempt int) error {
		if op != "push-chunk" {
			return nil
		}
		chunks++
		if chunks > 3 {
			return errors.New("link cut")
		}
		return nil
	}
	if _, err := Push(src, m.ID, srv.Addr(), cfg); err == nil {
		t.Fatal("push survived a permanently cut link")
	}
	partial := peer.syncDir() + "/" + m.Hash + ".partial"
	fi, err := os.Stat(partial)
	if err != nil {
		t.Fatalf("no server-side partial after the cut: %v", err)
	}
	if fi.Size() <= 0 || fi.Size() >= size {
		t.Fatalf("partial holds %d of %d bytes", fi.Size(), size)
	}

	res, err := Push(src, m.ID, srv.Addr(), testSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedAt != fi.Size() {
		t.Errorf("resumed at %d; partial held %d", res.ResumedAt, fi.Size())
	}
	if res.Bytes != size-res.ResumedAt {
		t.Errorf("retransferred %d bytes; want only the missing %d", res.Bytes, size-res.ResumedAt)
	}
	want := mustReadFile(t, src.RunPath(m.ID))
	if got := mustReadFile(t, peer.RunPath(res.RemoteID)); !bytes.Equal(want, got) {
		t.Fatal("resumed push produced a different archive")
	}
	if _, err := os.Stat(partial); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("completed transfer left its partial behind: %v", err)
	}
}

// TestSyncPullResume: the client-side mirror of push resume.
func TestSyncPullResume(t *testing.T) {
	src, m := storeWithRun(t, 4, 2000, "")
	_, srv := serveStore(t)
	if res, err := Push(src, m.ID, srv.Addr(), testSyncConfig()); err != nil || res.Deduped {
		t.Fatalf("seeding push: %+v, %v", res, err)
	}
	size := int64(len(mustReadFile(t, src.RunPath(m.ID))))

	sink, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSyncConfig()
	cfg.ChunkBytes = 256
	cfg.MaxAttempts = 2
	chunks := 0
	cfg.FaultHook = func(op string, seq uint64, attempt int) error {
		if op != "pull-chunk" {
			return nil
		}
		chunks++
		if chunks > 3 {
			return errors.New("link cut")
		}
		return nil
	}
	if _, _, err := Pull(sink, srv.Addr(), "", cfg); err == nil {
		t.Fatal("pull survived a permanently cut link")
	}
	partial := sink.syncDir() + "/" + m.Hash + ".partial"
	fi, err := os.Stat(partial)
	if err != nil {
		t.Fatalf("no client-side partial after the cut: %v", err)
	}
	if fi.Size() <= 0 || fi.Size() >= size {
		t.Fatalf("partial holds %d of %d bytes", fi.Size(), size)
	}

	pulls, _, err := Pull(sink, srv.Addr(), "", testSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pulls[0].ResumedAt != fi.Size() {
		t.Errorf("resumed at %d; partial held %d", pulls[0].ResumedAt, fi.Size())
	}
	want := mustReadFile(t, src.RunPath(m.ID))
	if got := mustReadFile(t, sink.RunPath(pulls[0].LocalID)); !bytes.Equal(want, got) {
		t.Fatal("resumed pull produced a different archive")
	}
}

// TestSyncPullLabelCollision: a pulled run whose label is already taken
// locally lands unlabeled with a warning — never an error, never a
// clobbered local run.
func TestSyncPullLabelCollision(t *testing.T) {
	src, m := storeWithRun(t, 5, 300, "base")
	_, srv := serveStore(t)
	if _, err := Push(src, m.ID, srv.Addr(), testSyncConfig()); err != nil {
		t.Fatal(err)
	}
	// The sink already owns the label with different content.
	sink, local := storeWithRun(t, 6, 100, "base")
	pulls, _, err := Pull(sink, srv.Addr(), "", testSyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pulls) != 1 || pulls[0].Skipped {
		t.Fatalf("pull results: %+v", pulls)
	}
	if pulls[0].Warning == "" || !strings.Contains(pulls[0].Warning, "collides") {
		t.Errorf("warning %q; want a label-collision note", pulls[0].Warning)
	}
	got, err := sink.Get(pulls[0].LocalID)
	if err != nil || got.Label != "" {
		t.Errorf("ingested run: %+v, %v; want unlabeled", got, err)
	}
	if owner, err := sink.Get("base"); err != nil || owner.ID != local.ID {
		t.Errorf("local label owner changed: %+v, %v", owner, err)
	}
}

// TestSyncServerUploadLocksReaped is the regression test for the server's
// once-unbounded per-hash upload-lock map: after any amount of push churn —
// fresh hashes, dedupe re-pushes, and a transfer cut mid-flight — the lock
// table must return to empty, not grow one mutex per hash forever.
func TestSyncServerUploadLocksReaped(t *testing.T) {
	_, srv := serveStore(t)
	for i := 0; i < 4; i++ {
		src, m := storeWithRun(t, int64(10+i), 150, fmt.Sprintf("churn-%d", i))
		if _, err := Push(src, m.ID, srv.Addr(), testSyncConfig()); err != nil {
			t.Fatal(err)
		}
		// Dedupe re-push of the same content exercises the lock again.
		if _, err := Push(src, m.ID, srv.Addr(), testSyncConfig()); err != nil {
			t.Fatal(err)
		}
	}
	// A push cut mid-transfer leaves a partial on disk — but no lock entry.
	src, m := storeWithRun(t, 20, 2000, "")
	cfg := testSyncConfig()
	cfg.ChunkBytes = 256
	cfg.MaxAttempts = 2
	chunks := 0
	cfg.FaultHook = func(op string, seq uint64, attempt int) error {
		if op == "push-chunk" {
			if chunks++; chunks > 3 {
				return errors.New("link cut")
			}
		}
		return nil
	}
	if _, err := Push(src, m.ID, srv.Addr(), cfg); err == nil {
		t.Fatal("push survived a permanently cut link")
	}
	// The server handler may still be draining its last frame; give it a
	// moment to quiesce before asserting steady state.
	deadline := time.Now().Add(2 * time.Second)
	for srv.UploadLocks() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.UploadLocks(); got != 0 {
		t.Errorf("upload locks at steady state = %d, want 0", got)
	}
}

// TestSyncChunkReplayIdempotent drives the server's chunk handler
// directly: replayed frames (lost acks) and gapped frames (swept
// partials) are answered with the authoritative offset, never
// double-applied.
func TestSyncChunkReplayIdempotent(t *testing.T) {
	_, srv := serveStore(t)
	hash := strings.Repeat("ab", 32)
	if resp := srv.pushBegin(&syncReq{Hash: hash, Size: 64}); !resp.OK || resp.Offset != 0 {
		t.Fatalf("push-begin: %+v", resp)
	}
	payload := []byte("0123456789abcdef")
	req := &syncReq{Op: opPushChunk, Hash: hash, Offset: 0, Data: payload, CRC: wire.Checksum(payload)}
	if resp := srv.pushChunk(req); !resp.OK || resp.Offset != 16 {
		t.Fatalf("first chunk: %+v", resp)
	}
	// Exact replay: absorbed, authoritative offset returned.
	if resp := srv.pushChunk(req); !resp.OK || resp.Offset != 16 {
		t.Fatalf("replayed chunk: %+v", resp)
	}
	if srv.DuplicateFrames() != 1 {
		t.Errorf("duplicate frames: %d; want 1", srv.DuplicateFrames())
	}
	// A gap (client ahead of the server): rewind, don't corrupt.
	gap := &syncReq{Op: opPushChunk, Hash: hash, Offset: 32, Data: payload, CRC: wire.Checksum(payload)}
	if resp := srv.pushChunk(gap); !resp.OK || resp.Offset != 16 {
		t.Fatalf("gapped chunk: %+v", resp)
	}
	// Transit corruption is refused per frame.
	bad := &syncReq{Op: opPushChunk, Hash: hash, Offset: 16, Data: payload, CRC: req.CRC + 1}
	if resp := srv.pushChunk(bad); resp.OK || !strings.Contains(resp.Err, "CRC") {
		t.Fatalf("corrupt chunk accepted: %+v", resp)
	}
	// Bad content addresses never touch the filesystem.
	if resp := srv.pushBegin(&syncReq{Hash: "../../etc/passwd", Size: 1}); resp.OK {
		t.Fatal("path-traversal hash accepted")
	}
}
